package verdictdb

import (
	"math"
	"testing"

	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

func newConn(t testing.TB) (*Conn, *engine.Engine) {
	t.Helper()
	conn, eng, err := OpenInMemory(7, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.LoadInsta(eng, 0.05, 7); err != nil {
		t.Fatal(err)
	}
	return conn, eng
}

func TestPublicAPISampleStatements(t *testing.T) {
	conn, _ := newConn(t)
	if err := conn.Exec("create uniform sample of order_products ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec("create stratified sample of orders on (order_dow) ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec("create hashed sample of orders on (user_id) ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	a, err := conn.Query("show samples")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("show samples rows: %d", len(a.Rows))
	}
	samples, err := conn.Samples()
	if err != nil || len(samples) != 3 {
		t.Fatalf("Samples(): %d, %v", len(samples), err)
	}
}

func TestPublicAPIApproximateQuery(t *testing.T) {
	conn, eng := newConn(t)
	if err := conn.Exec("create uniform sample of order_products ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	a, err := conn.Query("select count(*) as c, sum(price) as rev from order_products")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approximate {
		t.Fatalf("status: %v", a.Status)
	}
	truth := float64(eng.RowCount("order_products"))
	if math.Abs(a.Float(0, "c")-truth)/truth > 0.1 {
		t.Fatalf("count %v want ~%v", a.Float(0, "c"), truth)
	}
	if lo, hi, ok := a.ConfidenceInterval(0, 0); !ok || lo >= hi {
		t.Fatalf("interval: %v %v %v", lo, hi, ok)
	}
}

func TestPublicAPIBypass(t *testing.T) {
	conn, _ := newConn(t)
	if err := conn.Exec("create uniform sample of order_products ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	a, err := conn.Query("bypass select count(*) as c from order_products")
	if err != nil {
		t.Fatal(err)
	}
	if a.Approximate {
		t.Fatal("bypass was approximated")
	}
	if a.Float(0, "c") == 0 {
		t.Fatal("bypass returned nothing")
	}
}

func TestPublicAPIPassthroughDDL(t *testing.T) {
	conn, eng := newConn(t)
	if err := conn.Exec("create table note (id int, body string)"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec("insert into note values (1, 'hello')"); err != nil {
		t.Fatal(err)
	}
	if eng.RowCount("note") != 1 {
		t.Fatal("DDL/DML did not reach engine")
	}
}

func TestSamplesSurviveReconnect(t *testing.T) {
	conn, eng := newConn(t)
	if err := conn.Exec("create uniform sample of orders ratio 0.05"); err != nil {
		t.Fatal(err)
	}
	// A new connection over the same engine rediscovers metadata.
	conn2, err := Open(conn.DB(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	samples, err := conn2.Samples()
	if err != nil || len(samples) != 1 {
		t.Fatalf("reconnect lost samples: %d, %v", len(samples), err)
	}
	a, err := conn2.Query("select count(*) as c from orders")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approximate {
		t.Fatal("reconnected conn did not use samples")
	}
	_ = eng
}

func TestDefaultRatioApplied(t *testing.T) {
	conn, _ := newConn(t)
	if err := conn.Exec("create uniform sample of order_products"); err != nil {
		t.Fatal(err)
	}
	samples, _ := conn.Samples()
	if len(samples) != 1 || samples[0].Ratio != 0.01 {
		t.Fatalf("default ratio: %+v", samples)
	}
}

func TestExplainStatement(t *testing.T) {
	conn, _ := newConn(t)
	if err := conn.Exec("create uniform sample of order_products ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	a, err := conn.Query("explain select count(*) as c from order_products")
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, r := range a.Rows {
		out += r[0].(string) + ": " + r[1].(string) + "\n"
	}
	for _, want := range []string{"support: supported", "plan 1", "verdict_sid", "variational subsampling"} {
		if !containsStr(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Unsupported query explains the passthrough.
	a2, err := conn.Query("explain select * from orders")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range a2.Rows {
		if r[0] == "execution" {
			found = true
		}
	}
	if !found {
		t.Error("explain of unsupported query lacks execution row")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
