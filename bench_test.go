package verdictdb_test

// Benchmarks regenerating the paper's tables and figures via testing.B.
// Each benchmark corresponds to one experiment in DESIGN.md's index; the
// full paper-shaped output comes from cmd/benchrunner, these give
// -benchmem-style measurements of the same code paths.

import (
	"io"
	"math/rand"
	"testing"

	verdictdb "verdictdb"
	"verdictdb/internal/bench"
	"verdictdb/internal/core"
	"verdictdb/internal/meta"
	"verdictdb/internal/stats"
	"verdictdb/internal/workload"
)

var benchCfg = bench.Config{TPCHScale: 0.05, InstaScale: 0.05, Seed: 42}

func tpchEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.NewTPCHEnv(benchCfg, bench.DriverByName("generic"))
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func instaEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.NewInstaEnv(benchCfg, bench.DriverByName("generic"))
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func queryByID(b *testing.B, id string) workload.Query {
	b.Helper()
	for _, q := range workload.AllQueries() {
		if q.ID == id {
			return q
		}
	}
	b.Fatalf("no query %s", id)
	return workload.Query{}
}

// --- Figures 4 and 9 (E1): exact vs approximate latency per engine ------

func benchQuery(b *testing.B, env *bench.Env, sql string, bypass bool) {
	b.Helper()
	if bypass {
		sql = "bypass " + sql
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Conn.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_TQ1_Exact(b *testing.B) { benchQuery(b, tpchEnv(b), queryByID(b, "tq-1").SQL, true) }
func BenchmarkFig4_TQ1_Approx(b *testing.B) {
	benchQuery(b, tpchEnv(b), queryByID(b, "tq-1").SQL, false)
}
func BenchmarkFig4_TQ6_Exact(b *testing.B) { benchQuery(b, tpchEnv(b), queryByID(b, "tq-6").SQL, true) }
func BenchmarkFig4_TQ6_Approx(b *testing.B) {
	benchQuery(b, tpchEnv(b), queryByID(b, "tq-6").SQL, false)
}
func BenchmarkFig4_TQ14_Exact(b *testing.B) {
	benchQuery(b, tpchEnv(b), queryByID(b, "tq-14").SQL, true)
}
func BenchmarkFig4_TQ14_Approx(b *testing.B) {
	benchQuery(b, tpchEnv(b), queryByID(b, "tq-14").SQL, false)
}
func BenchmarkFig4_IQ7_Exact(b *testing.B) {
	benchQuery(b, instaEnv(b), queryByID(b, "iq-7").SQL, true)
}
func BenchmarkFig4_IQ7_Approx(b *testing.B) {
	benchQuery(b, instaEnv(b), queryByID(b, "iq-7").SQL, false)
}

// --- Figure 5 (E3): speedup growth with data size ------------------------

func BenchmarkFig5_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ScalingExperiment(io.Discard, []float64{0.02, 0.05}, 1000, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6 (E4): integrated AQP vs VerdictDB --------------------------

func BenchmarkFig6_Snappy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.SnappyExperiment(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2 (E5): native approximate aggregates -------------------------

func BenchmarkTable2_Native(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.NativeExperiment(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7 (E6): error-estimation method overhead ---------------------

func benchEstimatorMethod(b *testing.B, method core.ErrorMethod, sql string) {
	env, err := bench.NewInstaEnv(benchCfg, bench.DriverByName("generic"))
	if err != nil {
		b.Fatal(err)
	}
	opts := verdictdb.Defaults()
	opts.Method = method
	cat, err := meta.Open(env.DB)
	if err != nil {
		b.Fatal(err)
	}
	mw := core.New(env.DB, cat, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := mw.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		if !a.Approximate {
			b.Fatalf("not approximated: %v", a.Status)
		}
	}
}

const fig7FlatSQL = "select order_dow, count(*) as c, avg(days_since_prior) as g from orders group by order_dow"

func BenchmarkFig7_Flat_NoError(b *testing.B) {
	benchEstimatorMethod(b, core.MethodNone, fig7FlatSQL)
}
func BenchmarkFig7_Flat_Variational(b *testing.B) {
	benchEstimatorMethod(b, core.MethodVariational, fig7FlatSQL)
}
func BenchmarkFig7_Flat_TraditionalSubsampling(b *testing.B) {
	benchEstimatorMethod(b, core.MethodTraditionalSubsampling, fig7FlatSQL)
}
func BenchmarkFig7_Flat_ConsolidatedBootstrap(b *testing.B) {
	benchEstimatorMethod(b, core.MethodConsolidatedBootstrap, fig7FlatSQL)
}

// --- Figure 8 (E7/E8): correctness sweeps --------------------------------

func BenchmarkFig8a_Selectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.CorrectnessSelectivity(io.Discard, 1_000_000, 10_000, 20, 42)
	}
}

func BenchmarkFig8b_SampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.CorrectnessSampleSize(io.Discard, []int{100_000}, 3, 100, 42)
	}
}

// --- Figure 11 (E9): sample preparation ----------------------------------

func BenchmarkFig11_Prep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.PrepExperiment(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 12-14 (E10-E12): estimator micro-benchmarks ----------------

func BenchmarkFig12_Bootstrap_n100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := gaussian(100_000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.BootstrapInterval(stats.EstimateAvg, xs, 0, 0.95, 100, rng)
	}
}

func BenchmarkFig12_TraditionalSubsampling_n100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := gaussian(100_000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.SubsamplingInterval(stats.EstimateAvg, xs, 0, 0.95, 100, 316, rng)
	}
}

func BenchmarkFig12_Variational_n100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := gaussian(100_000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.VariationalInterval(stats.EstimateAvg, xs, 0, 0.95, 316, 316, rng)
	}
}

func BenchmarkFig13_Variational_b500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := gaussian(1_000_000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.VariationalInterval(stats.EstimateAvg, xs, 0, 0.95, 500, 2000, rng)
	}
}

func BenchmarkFig14_NsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.NsSweep(io.Discard, 100_000, 2, 42)
	}
}

// --- Lemma 1 (E14): staircase computation --------------------------------

func BenchmarkLemma1_Staircase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.Staircase(100, 10_000_000, 0.001, 16)
	}
}

func gaussian(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 10*rng.NormFloat64()
	}
	return xs
}
