// TPC-H speedups: runs a subset of the paper's tq-* queries exactly and
// approximately on each simulated engine dialect (Impala, Spark SQL,
// Redshift), printing the per-query speedups — a miniature Figure 4.
package main

import (
	"fmt"
	"log"
	"time"

	verdictdb "verdictdb"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

func main() {
	const scale = 0.3 // 180k lineitem rows

	for _, mk := range []struct {
		name string
		make func(*engine.Engine) *drivers.Driver
	}{
		{"redshift", drivers.NewRedshift},
		{"sparksql", drivers.NewSparkSQL},
		{"impala", drivers.NewImpala},
	} {
		eng := engine.NewSeeded(11)
		if err := workload.LoadTPCH(eng, scale, 11); err != nil {
			log.Fatal(err)
		}
		conn, err := verdictdb.Open(mk.make(eng), verdictdb.Defaults())
		if err != nil {
			log.Fatal(err)
		}
		for _, stmt := range []string{
			"create uniform sample of lineitem ratio 0.01",
			"create stratified sample of lineitem on (l_returnflag, l_linestatus) ratio 0.01",
			"create uniform sample of orders ratio 0.01",
			"create hashed sample of partsupp on (ps_suppkey) ratio 0.01",
		} {
			if err := conn.Exec(stmt); err != nil {
				log.Fatal(err)
			}
		}

		fmt.Printf("\n=== engine: %s ===\n", mk.name)
		fmt.Printf("%-7s %12s %12s %9s %8s\n", "query", "exact", "approx", "speedup", "approx?")
		for _, q := range workload.TPCHQueries {
			switch q.ID {
			case "tq-1", "tq-6", "tq-12", "tq-14", "tq-18", "tq-19":
			default:
				continue // keep the example fast; benchrunner runs all 33
			}
			exactStart := time.Now()
			if _, err := conn.Query("bypass " + q.SQL); err != nil {
				log.Fatalf("%s exact: %v", q.ID, err)
			}
			exactDur := time.Since(exactStart)

			a, err := conn.Query(q.SQL)
			if err != nil {
				log.Fatalf("%s approx: %v", q.ID, err)
			}
			approxDur := time.Duration(a.ElapsedNanos)
			fmt.Printf("%-7s %12v %12v %8.1fx %8v\n",
				q.ID, exactDur.Round(time.Microsecond), approxDur.Round(time.Microsecond),
				float64(exactDur)/float64(approxDur), a.Approximate)
		}
	}
}
