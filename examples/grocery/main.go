// Grocery dashboard: the paper's motivating scenario — interactive
// analytics over an Instacart-like sales database. Builds the default
// sample set (uniform + hashed + stratified), then answers dashboard
// queries approximately, printing speedups and error bars, including a
// count-distinct answered from a universe (hashed) sample.
package main

import (
	"fmt"
	"log"

	verdictdb "verdictdb"
	"verdictdb/internal/workload"
)

func main() {
	conn, eng, err := verdictdb.OpenInMemory(7, verdictdb.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loading instacart-like dataset (scale 0.5: ~500k order_products)...")
	if err := workload.LoadInsta(eng, 0.5, 7); err != nil {
		log.Fatal(err)
	}

	// Sample preparation (offline stage in the paper's workflow).
	fmt.Println("preparing samples...")
	for _, stmt := range []string{
		"create uniform sample of order_products ratio 0.01",
		"create hashed sample of order_products on (order_id) ratio 0.01",
		"create stratified sample of orders on (order_dow) ratio 0.01",
		"create hashed sample of orders on (user_id) ratio 0.01",
		"create uniform sample of orders ratio 0.01",
	} {
		if err := conn.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	samples, _ := conn.Samples()
	for _, s := range samples {
		fmt.Printf("  %-45s %8d rows (of %d)\n", s.SampleTable, s.SampleRows, s.BaseRows)
	}

	dashboard := []struct {
		title string
		sql   string
	}{
		{"orders by day of week",
			"select order_dow, count(*) as c from orders group by order_dow order by order_dow"},
		{"revenue by department (top 5)",
			`select d.department, sum(op.price) as revenue
			 from order_products op
			 inner join products p on op.product_id = p.product_id
			 inner join departments d on p.department_id = d.department_id
			 group by d.department order by revenue desc limit 5`},
		{"distinct active users",
			"select count(distinct user_id) as users from orders"},
		{"average basket value (nested aggregate)",
			`select avg(basket) as avg_basket from
			 (select op.order_id as oid, sum(op.price) as basket
			  from order_products op group by op.order_id) as b`},
	}

	for _, q := range dashboard {
		approx, err := conn.Query(q.sql)
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		exact, err := conn.Query("bypass " + q.sql)
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(exact.RowsScanned) / float64(maxI64(approx.RowsScanned, 1))
		fmt.Printf("\n== %s  (approx=%v, %0.1fx fewer rows scanned)\n", q.title, approx.Approximate, speedup)
		for i := range approx.Rows {
			fmt.Printf("  ")
			for j := range approx.Rows[i] {
				if lo, hi, ok := approx.ConfidenceInterval(i, j); ok {
					fmt.Printf("%v ±%.0f  ", approx.Rows[i][j], (hi-lo)/2)
				} else {
					fmt.Printf("%v  ", approx.Rows[i][j])
				}
			}
			if i < len(exact.Rows) {
				fmt.Printf("   (exact: %v)", exact.Rows[i])
			}
			fmt.Println()
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
