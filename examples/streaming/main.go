// Streaming appends: demonstrates incremental sample maintenance
// (Appendix D). New data batches are appended to the base table and folded
// into existing samples with the original sampling parameters, keeping
// approximate answers fresh without rebuilding.
package main

import (
	"fmt"
	"log"
	"math/rand"

	verdictdb "verdictdb"
	"verdictdb/internal/engine"
)

func loadBatch(eng *engine.Engine, table string, n int, day int, rng *rand.Rand) error {
	rows := make([][]engine.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []engine.Value{
			fmt.Sprintf("2026-06-%02d", day),
			[]string{"mobile", "web", "store"}[rng.Intn(3)],
			25 + 10*rng.NormFloat64(),
		})
	}
	return eng.InsertRows(table, rows)
}

func main() {
	conn, eng, err := verdictdb.OpenInMemory(3, verdictdb.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	if err := eng.CreateTable("events", []engine.Column{
		{Name: "day", Type: engine.TString},
		{Name: "channel", Type: engine.TString},
		{Name: "value", Type: engine.TFloat},
	}); err != nil {
		log.Fatal(err)
	}
	if err := loadBatch(eng, "events", 300_000, 1, rng); err != nil {
		log.Fatal(err)
	}
	si, err := conn.CreateStratifiedSample("events", []string{"channel"}, 0.008)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial sample: %d rows of %d\n", si.SampleRows, si.BaseRows)

	query := "select channel, sum(value) as total from events group by channel order by channel"
	for day := 2; day <= 4; day++ {
		// A new day's data arrives as a staging batch.
		batch := fmt.Sprintf("events_batch_%d", day)
		if err := eng.CreateTable(batch, []engine.Column{
			{Name: "day", Type: engine.TString},
			{Name: "channel", Type: engine.TString},
			{Name: "value", Type: engine.TFloat},
		}); err != nil {
			log.Fatal(err)
		}
		if err := loadBatch(eng, batch, 100_000, day, rng); err != nil {
			log.Fatal(err)
		}
		// Append to base and fold into the sample with stored probabilities.
		if err := conn.Exec(fmt.Sprintf("bypass insert into events select * from %s", batch)); err != nil {
			log.Fatal(err)
		}
		stale, err := conn.Builder().IsStale(si)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nday %d appended; sample stale: %v\n", day, stale)
		si, err = conn.Builder().AppendBatch(si, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sample refreshed: %d rows of %d\n", si.SampleRows, si.BaseRows)

		a, err := conn.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		ex, err := conn.Query("bypass " + query)
		if err != nil {
			log.Fatal(err)
		}
		for i := range a.Rows {
			fmt.Printf("  %-7v approx %12.0f   exact %12.0f   (err %.2f%%)\n",
				a.Rows[i][0], a.Float(i, "total"), ex.Float(i, "total"),
				100*abs(a.Float(i, "total")-ex.Float(i, "total"))/ex.Float(i, "total"))
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
