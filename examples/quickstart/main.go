// Quickstart: load a table, build a sample, and compare an approximate
// answer (with confidence intervals) against the exact one.
package main

import (
	"fmt"
	"log"
	"math/rand"

	verdictdb "verdictdb"
	"verdictdb/internal/engine"
)

func main() {
	// 1. Open VerdictDB over a fresh in-memory engine (any drivers.DB
	// works: the middleware only ever sends SQL).
	conn, eng, err := verdictdb.OpenInMemory(42, verdictdb.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load a million-row sales table.
	if err := eng.CreateTable("sales", []engine.Column{
		{Name: "region", Type: engine.TString},
		{Name: "amount", Type: engine.TFloat},
	}); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	regions := []string{"east", "west", "north", "south"}
	rows := make([][]engine.Value, 0, 1_000_000)
	for i := 0; i < 1_000_000; i++ {
		rows = append(rows, []engine.Value{
			regions[rng.Intn(len(regions))],
			50 + 20*rng.NormFloat64(),
		})
	}
	if err := eng.InsertRows("sales", rows); err != nil {
		log.Fatal(err)
	}

	// 3. Build a 1% uniform sample — one SQL statement under the hood.
	if err := conn.Exec("create uniform sample of sales ratio 0.01"); err != nil {
		log.Fatal(err)
	}

	// 4. Ask an aggregate question. VerdictDB rewrites it against the
	// sample and estimates the error with variational subsampling.
	query := "select region, count(*) as orders, sum(amount) as revenue from sales group by region order by region"
	approx, err := conn.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := conn.Query("bypass " + query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("approximate answer (scanned %d rows instead of %d):\n",
		approx.RowsScanned, exact.RowsScanned)
	fmt.Printf("%-8s %14s %20s %16s\n", "region", "orders(approx)", "revenue(approx)", "revenue(exact)")
	for i := range approx.Rows {
		lo, hi, _ := approx.ConfidenceInterval(i, 2)
		fmt.Printf("%-8s %14.0f %11.0f ±%6.0f %16.0f\n",
			approx.Rows[i][0],
			approx.Float(i, "orders"),
			approx.Float(i, "revenue"), (hi-lo)/2,
			exact.Float(i, "revenue"))
	}
	fmt.Printf("\nsamples used: %v\n", approx.SampleTables)
	fmt.Printf("worst relative error at 95%% confidence: %.2f%%\n", 100*approx.MaxRelativeError())
}
