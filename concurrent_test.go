package verdictdb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"verdictdb/internal/engine"
)

// These tests exercise the concurrent serving layer. Run them under -race:
// they mix approximate queries, sample DDL (create/drop), and AppendBatch
// maintenance across many goroutines, and assert that (a) concurrent
// answers are identical to serial ones while the catalog is stable, and
// (b) nothing panics or errors when the catalog churns mid-flight.

// fingerprintAnswer canonicalizes an Answer for equality checks.
func fingerprintAnswer(a *Answer) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(a.Cols, ","))
	sb.WriteByte('|')
	for _, row := range a.Rows {
		for _, v := range row {
			sb.WriteString(engine.GroupKey(v))
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

var concurrentQueries = []string{
	"select count(*) as c from order_products",
	"select order_dow, count(*) as c from orders group by order_dow order by order_dow",
	"select reordered, avg(price) as avg_price, count(*) as c from order_products group by reordered order by reordered",
	"select o.order_dow, sum(op.price) as revenue from orders o inner join order_products op on o.order_id = op.order_id group by o.order_dow order by o.order_dow",
	"select count(distinct user_id) as users from orders",
	"select product_id from products limit 5",
}

// TestConcurrentConnQueriesMatchSerial: with a fixed catalog, ≥8 goroutines
// hammering one Conn must observe exactly the answers a serial client gets
// — through the plan cache and past each other.
func TestConcurrentConnQueriesMatchSerial(t *testing.T) {
	conn, _ := newConn(t)
	for _, stmt := range []string{
		"create uniform sample of order_products ratio 0.02",
		"create uniform sample of orders ratio 0.02",
		"create hashed sample of orders on (user_id) ratio 0.02",
	} {
		if err := conn.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	serial := make([]string, len(concurrentQueries))
	for i, q := range concurrentQueries {
		a, err := conn.Query(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		serial[i] = fingerprintAnswer(a)
	}

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, q := range concurrentQueries {
					a, err := conn.Query(q)
					if err != nil {
						errCh <- fmt.Errorf("client %d: %q: %w", c, q, err)
						return
					}
					if fingerprintAnswer(a) != serial[i] {
						errCh <- fmt.Errorf("client %d: query %d diverged from serial answer", c, i)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if hits, _ := conn.CacheStats(); hits == 0 {
		t.Fatal("concurrent clients never hit the plan cache")
	}
}

// TestConcurrentQueriesDDLAndAppend mixes ≥8 concurrent clients: query
// loops, sample create/drop churn, and AppendBatch maintenance. Queries
// must never fail (a mid-flight dropped sample falls back to exact
// execution), the catalog version must advance, and the plan cache must
// have been invalidated and repopulated along the way.
func TestConcurrentQueriesDDLAndAppend(t *testing.T) {
	conn, _ := newConn(t)
	if err := conn.Exec("create uniform sample of order_products ratio 0.02"); err != nil {
		t.Fatal(err)
	}
	uniformOrders, err := conn.CreateUniformSample("orders", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// A batch staged for append maintenance (schema = orders).
	if err := conn.Exec("create table orders_batch as select * from orders limit 200"); err != nil {
		t.Fatal(err)
	}

	v0 := conn.CatalogVersion()
	const (
		queryClients = 5
		ddlClients   = 2 // one create/drop churner + one appender
		reps         = 6
	)
	var wg sync.WaitGroup
	var queryErrs atomic.Int64
	errCh := make(chan error, queryClients+ddlClients+1)

	for c := 0; c < queryClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				for _, q := range concurrentQueries {
					if _, err := conn.Query(q); err != nil {
						queryErrs.Add(1)
						errCh <- fmt.Errorf("query client %d: %q: %w", c, q, err)
						return
					}
				}
			}
		}(c)
	}

	// Sample DDL churn: create and drop a stratified sample repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reps; i++ {
			si, err := conn.CreateStratifiedSample("orders", []string{"order_dow"}, 0.02)
			if err != nil {
				errCh <- fmt.Errorf("create sample: %w", err)
				return
			}
			if err := conn.DropSample(si.SampleTable); err != nil {
				errCh <- fmt.Errorf("drop sample: %w", err)
				return
			}
		}
	}()

	// Append maintenance on the uniform orders sample.
	wg.Add(1)
	go func() {
		defer wg.Done()
		si := uniformOrders
		for i := 0; i < reps; i++ {
			next, err := conn.Builder().AppendBatch(si, "orders_batch")
			if err != nil {
				errCh <- fmt.Errorf("append batch: %w", err)
				return
			}
			si = next
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := queryErrs.Load(); n > 0 {
		t.Fatalf("%d queries failed under catalog churn", n)
	}
	if v1 := conn.CatalogVersion(); v1 <= v0 {
		t.Fatalf("catalog version did not advance under DDL: %d -> %d", v0, v1)
	}
	_, misses := conn.CacheStats()
	if misses < 2 {
		t.Fatalf("expected version bumps to invalidate cached plans (misses=%d)", misses)
	}
	// The system must still answer correctly after the churn.
	a, err := conn.Query("select count(*) as c from orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 {
		t.Fatalf("post-churn answer shape: %d rows", len(a.Rows))
	}
}

// TestConcurrentSQLDriverMatchesSerial drives the database/sql pool from 8
// goroutines over one shared DSN and checks every result against a serial
// baseline.
func TestConcurrentSQLDriverMatchesSerial(t *testing.T) {
	db := openSQL(t, "dataset=insta;scale=0.05;seed=11;samples=auto")
	db.SetMaxOpenConns(8)
	q := "select order_dow, count(*) as c from orders group by order_dow order by order_dow"
	readAll := func() (string, error) {
		rows, err := db.Query(q)
		if err != nil {
			return "", err
		}
		defer rows.Close()
		var sb strings.Builder
		for rows.Next() {
			var dow int64
			var c float64
			if err := rows.Scan(&dow, &c); err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%d=%v;", dow, c)
		}
		return sb.String(), rows.Err()
	}
	serial, err := readAll()
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				got, err := readAll()
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if got != serial {
					errCh <- fmt.Errorf("client %d: diverged from serial scan", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
