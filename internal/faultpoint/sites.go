// Site registry: the catalog of fault-injection sites compiled into the
// engine and middleware. This file carries no build tag — both the armed
// (faultinject) and no-op implementations share it, and verdictlint's
// faultsite analyzer checks every Hit/Set*/Clear/Count call site against
// these constants, so a misspelled site name is a build-time diagnostic
// instead of a test that silently tests nothing.
package faultpoint

import "sort"

// Registered fault-injection sites. Naming: <layer>.<operator>.<step>.
const (
	// SiteEngineQuery fires once per query at the top of engine execution.
	SiteEngineQuery = "engine.query"
	// SiteEngineScanChunk fires per chunk on the vectorized scan path.
	SiteEngineScanChunk = "engine.scan.chunk"
	// SiteEngineScanRows fires per morsel on the row-fallback scan path.
	SiteEngineScanRows = "engine.scan.rows"
	// SiteEngineJoinBuild fires per chunk while building a join hash table.
	SiteEngineJoinBuild = "engine.join.build"
	// SiteEngineJoinProbe fires per morsel on the join probe side.
	SiteEngineJoinProbe = "engine.join.probe"
	// SiteCoreProgressivePrefix fires per block-prefix in the progressive
	// (online-aggregation) answer loop.
	SiteCoreProgressivePrefix = "core.progressive.prefix"
	// SiteCoreMergePrefix fires while merging per-block partial answers
	// into a prefix answer.
	SiteCoreMergePrefix = "core.merge.prefix"
	// SiteStorageSegmentWrite fires before a segment file is created/written.
	SiteStorageSegmentWrite = "storage.segment.write"
	// SiteStorageSegmentFsync fires before a written segment is fsynced.
	SiteStorageSegmentFsync = "storage.segment.fsync"
	// SiteStorageSegmentRead fires per chunk load from a segment file.
	SiteStorageSegmentRead = "storage.segment.read"
	// SiteStorageSegmentChecksum fires at chunk checksum verification; an
	// injected error is reported as corruption (quarantine path).
	SiteStorageSegmentChecksum = "storage.segment.checksum"
	// SiteStorageManifestWrite fires before a manifest save commits.
	SiteStorageManifestWrite = "storage.manifest.write"
)

// sites is the lookup form of the catalog above.
var sites = map[string]bool{
	SiteEngineQuery:            true,
	SiteEngineScanChunk:        true,
	SiteEngineScanRows:         true,
	SiteEngineJoinBuild:        true,
	SiteEngineJoinProbe:        true,
	SiteCoreProgressivePrefix:  true,
	SiteCoreMergePrefix:        true,
	SiteStorageSegmentWrite:    true,
	SiteStorageSegmentFsync:    true,
	SiteStorageSegmentRead:     true,
	SiteStorageSegmentChecksum: true,
	SiteStorageManifestWrite:   true,
}

// IsSite reports whether name is a registered fault-injection site.
func IsSite(name string) bool { return sites[name] }

// Sites returns the registered site names in sorted order.
func Sites() []string {
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// PanicValue is the value injected panics carry, so recovery boundaries
// (and tests) can recognize a synthetic crash. It lives in this untagged
// file so both build configurations expose it.
type PanicValue struct{ Site string }

func (p PanicValue) String() string { return "faultpoint: injected panic at " + p.Site }
