//go:build faultinject

// Fault-injection enabled: every Hit consults the armed-fault registry.
// See faultpoint_off.go for the package contract and the env-var syntax.
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

type mode int

const (
	modePanic mode = iota
	modeError
	modeStall
)

type fault struct {
	mode  mode
	err   error
	stall time.Duration
}

var (
	mu     sync.Mutex
	armed  = map[string]fault{}
	counts = map[string]int64{}
)

func init() {
	// VERDICT_FAULTPOINTS="site=panic,site=error:msg,site=stall:50ms"
	spec := os.Getenv("VERDICT_FAULTPOINTS")
	if spec == "" {
		return
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, action, ok := strings.Cut(part, "=")
		if !ok {
			panic(fmt.Sprintf("faultpoint: bad VERDICT_FAULTPOINTS entry %q", part))
		}
		if !IsSite(site) {
			panic(fmt.Sprintf("faultpoint: unknown site %q (known: %v)", site, Sites()))
		}
		kind, arg, _ := strings.Cut(action, ":")
		switch kind {
		case "panic":
			SetPanic(site)
		case "error":
			if arg == "" {
				arg = "injected error at " + site
			}
			SetError(site, errors.New("faultpoint: "+arg))
		case "stall":
			d, err := time.ParseDuration(arg)
			if err != nil {
				panic(fmt.Sprintf("faultpoint: bad stall duration %q: %v", arg, err))
			}
			SetStall(site, d)
		default:
			panic(fmt.Sprintf("faultpoint: unknown fault kind %q in %q", kind, part))
		}
	}
}

// Enabled reports whether fault injection is compiled in.
func Enabled() bool { return true }

// Hit marks one execution of a named site, firing whatever fault is armed
// there: panics for SetPanic, sleeps for SetStall, the armed error for
// SetError (nil when the site is disarmed).
func Hit(site string) error {
	mu.Lock()
	counts[site]++
	f, ok := armed[site]
	mu.Unlock()
	if !ok {
		return nil
	}
	switch f.mode {
	case modePanic:
		panic(PanicValue{Site: site})
	case modeStall:
		time.Sleep(f.stall)
		return nil
	default:
		return f.err
	}
}

// SetPanic arms site to panic (with a PanicValue) on every Hit.
func SetPanic(site string) { set(site, fault{mode: modePanic}) }

// SetError arms site to return err from every Hit.
func SetError(site string, err error) { set(site, fault{mode: modeError, err: err}) }

// SetStall arms site to sleep d on every Hit.
func SetStall(site string, d time.Duration) { set(site, fault{mode: modeStall, stall: d}) }

func set(site string, f fault) {
	mu.Lock()
	armed[site] = f
	mu.Unlock()
}

// Clear disarms one site (hit counts are kept).
func Clear(site string) {
	mu.Lock()
	delete(armed, site)
	mu.Unlock()
}

// Reset disarms every site and zeroes hit counts.
func Reset() {
	mu.Lock()
	armed = map[string]fault{}
	counts = map[string]int64{}
	mu.Unlock()
}

// Count reports how many times site has been hit since the last Reset.
func Count(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return counts[site]
}
