//go:build !faultinject

// Package faultpoint is a deterministic fault-injection hook for the
// robustness test suite: named sites in the engine's scan/join paths and
// the middleware's merge/progressive paths call Hit, and tests arm a site
// to panic, stall, or return an error on that exact call. The real
// implementation is compiled only under the "faultinject" build tag
// (`go test -tags faultinject`); in normal builds every function here is an
// inlinable no-op, so production code pays nothing for the hooks.
//
// Under the tag, sites can also be armed from the environment without test
// code, e.g.:
//
//	VERDICT_FAULTPOINTS="engine.scan.chunk=panic,engine.join.probe=stall:50ms"
//
// The site catalog lives in the README's Robustness section.
package faultpoint

import "time"

// Enabled reports whether fault injection is compiled in.
func Enabled() bool { return false }

// Hit marks one execution of a named site. No-op without the faultinject
// build tag.
func Hit(site string) error { return nil }

// SetPanic arms site to panic on every Hit.
func SetPanic(site string) {}

// SetError arms site to return err from every Hit.
func SetError(site string, err error) {}

// SetStall arms site to sleep d on every Hit.
func SetStall(site string, d time.Duration) {}

// Clear disarms one site.
func Clear(site string) {}

// Reset disarms every site and zeroes hit counts.
func Reset() {}

// Count reports how many times site has been hit since the last Reset.
func Count(site string) int64 { return 0 }
