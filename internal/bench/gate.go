package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// This file is the benchmark regression gate: it compares a freshly
// measured report against the committed BENCH_*.json baseline and turns
// "the numbers moved" into a pass/fail decision CI can act on.
//
// The thresholds are variance-aware, not exact-match. Single-run wall-clock
// numbers on shared CI hardware jitter by tens of percent, so per-benchmark
// time ratios get a generous limit, while allocation counts — which are
// near-deterministic — get a tight one. The serve and progressive suites
// measure dozens of per-query latencies whose individual jitter is worse
// still; those are judged by the median of per-entry ratios, which one
// noisy query cannot move. Metrics whose baseline sits below an absolute
// floor are skipped outright: a 3µs benchmark doubling is scheduler noise,
// not a regression.

// GateConfig holds the regression thresholds. A candidate/baseline ratio
// above a Max*Ratio limit is a violation; baselines below the matching
// floor are not compared at all.
type GateConfig struct {
	MaxNsRatio     float64 // per-benchmark ns/op ratio limit
	MaxAllocsRatio float64 // per-benchmark allocs/op ratio limit (allocs are near-deterministic)
	MaxBytesRatio  float64 // per-benchmark bytes/op ratio limit
	MaxMedianRatio float64 // serve/progressive median-of-latency-ratios limit

	NsFloor     float64 // skip ns/op comparisons when the baseline is faster than this
	AllocsFloor float64 // skip allocs/op comparisons below this many allocations
	BytesFloor  float64 // skip bytes/op comparisons below this many bytes
	MsFloor     float64 // skip per-entry latency ratios when the baseline is below this many ms
}

// DefaultGateConfig returns the thresholds `make bench-gate` runs with.
func DefaultGateConfig() GateConfig {
	return GateConfig{
		MaxNsRatio:     1.5,
		MaxAllocsRatio: 1.15,
		MaxBytesRatio:  1.5,
		MaxMedianRatio: 1.4,
		NsFloor:        100_000, // 100µs
		AllocsFloor:    64,
		BytesFloor:     1 << 16,
		MsFloor:        1.0,
	}
}

// Violation is one metric that moved past its threshold (or disappeared
// from the candidate run, which hides regressions and fails too).
type Violation struct {
	Metric string
	Base   float64
	Cand   float64
	Ratio  float64
	Limit  float64
}

func (v Violation) String() string {
	if math.IsInf(v.Ratio, 1) {
		return fmt.Sprintf("%s: present in baseline (%.6g) but missing from candidate run", v.Metric, v.Base)
	}
	return fmt.Sprintf("%s: %.6g -> %.6g (%.2fx, limit %.2fx)", v.Metric, v.Base, v.Cand, v.Ratio, v.Limit)
}

// ratioViolation compares one metric pair against its limit, honoring the
// baseline floor. A zero baseline above the floor cannot yield a finite
// ratio and is skipped (nothing meaningful to compare against).
func ratioViolation(metric string, base, cand, floor, limit float64, out []Violation) []Violation {
	if base < floor || base == 0 {
		return out
	}
	if r := cand / base; r > limit {
		out = append(out, Violation{Metric: metric, Base: base, Cand: cand, Ratio: r, Limit: limit})
	}
	return out
}

func missingViolation(metric string, base float64, out []Violation) []Violation {
	return append(out, Violation{Metric: metric, Base: base, Ratio: math.Inf(1)})
}

// GateEngine compares the engine microbenchmark suite benchmark-by-
// benchmark: each is a multi-iteration average over a fixed dataset, so
// per-benchmark ratios are trustworthy enough to judge individually.
func GateEngine(base, cand *EngineBenchReport, cfg GateConfig) []Violation {
	byName := make(map[string]EngineBenchResult, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		byName[b.Name] = b
	}
	var out []Violation
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			out = missingViolation(b.Name, b.NsPerOp, out)
			continue
		}
		out = ratioViolation(b.Name+" ns_per_op", b.NsPerOp, c.NsPerOp, cfg.NsFloor, cfg.MaxNsRatio, out)
		out = ratioViolation(b.Name+" allocs_per_op", b.AllocsPerOp, c.AllocsPerOp, cfg.AllocsFloor, cfg.MaxAllocsRatio, out)
		out = ratioViolation(b.Name+" bytes_per_op", b.BytesPerOp, c.BytesPerOp, cfg.BytesFloor, cfg.MaxBytesRatio, out)
	}
	return out
}

// GateServe compares the serving suite. Individual query shapes are single
// measurements and far too noisy to gate on alone, so cold and warm
// latencies are judged by the median of per-shape ratios — a robust
// location estimate one outlier shape cannot drag past the limit.
func GateServe(base, cand *ServeReport, cfg GateConfig) []Violation {
	byID := make(map[string]ServeShape, len(cand.Shapes))
	for _, s := range cand.Shapes {
		byID[s.ID] = s
	}
	var out []Violation
	var coldRatios, warmRatios []float64
	for _, b := range base.Shapes {
		c, ok := byID[b.ID]
		if !ok {
			out = missingViolation("shape "+b.ID, b.WarmMs, out)
			continue
		}
		if b.ColdMs >= cfg.MsFloor && b.ColdMs > 0 {
			coldRatios = append(coldRatios, c.ColdMs/b.ColdMs)
		}
		if b.WarmMs >= cfg.MsFloor && b.WarmMs > 0 {
			warmRatios = append(warmRatios, c.WarmMs/b.WarmMs)
		}
	}
	out = medianViolation("shapes cold_ms median ratio", coldRatios, cfg.MaxMedianRatio, out)
	out = medianViolation("shapes warm_ms median ratio", warmRatios, cfg.MaxMedianRatio, out)
	return out
}

// GateProgressive compares the progressive suite's end-to-end latencies,
// keyed by (dataset, query, target), again via the median of ratios.
func GateProgressive(base, cand *ProgressiveReport, cfg GateConfig) []Violation {
	key := func(r ProgressiveResult) string {
		return fmt.Sprintf("%s/%s@%g", r.Dataset, r.Query, r.Target)
	}
	byKey := make(map[string]ProgressiveResult, len(cand.Results))
	for _, r := range cand.Results {
		byKey[key(r)] = r
	}
	var out []Violation
	var ratios []float64
	for _, b := range base.Results {
		c, ok := byKey[key(b)]
		if !ok {
			out = missingViolation("result "+key(b), b.ElapsedMs, out)
			continue
		}
		if b.ElapsedMs >= cfg.MsFloor && b.ElapsedMs > 0 {
			ratios = append(ratios, c.ElapsedMs/b.ElapsedMs)
		}
	}
	return medianViolation("results elapsed_ms median ratio", ratios, cfg.MaxMedianRatio, out)
}

// medianViolation appends a violation when the median of ratios exceeds
// the limit. An empty ratio set (everything under the floor) passes.
func medianViolation(metric string, ratios []float64, limit float64, out []Violation) []Violation {
	if len(ratios) == 0 {
		return out
	}
	m := median(ratios)
	if m > limit {
		out = append(out, Violation{Metric: metric, Base: 1, Cand: m, Ratio: m, Limit: limit})
	}
	return out
}

// median returns the middle value (mean of the middle two for even n).
// It sorts a copy; the caller's slice is untouched.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// LoadGateReport reads one BENCH_*.json into the matching report type:
// kind is "engine", "serve", or "progressive".
func LoadGateReport(kind, path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep any
	switch kind {
	case "engine":
		rep = &EngineBenchReport{}
	case "serve":
		rep = &ServeReport{}
	case "progressive":
		rep = &ProgressiveReport{}
	default:
		return nil, fmt.Errorf("benchgate: unknown report kind %q", kind)
	}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	return rep, nil
}

// Gate dispatches to the kind-specific comparison. base and cand must both
// come from LoadGateReport with the same kind.
func Gate(kind string, base, cand any, cfg GateConfig) ([]Violation, error) {
	switch kind {
	case "engine":
		return GateEngine(base.(*EngineBenchReport), cand.(*EngineBenchReport), cfg), nil
	case "serve":
		return GateServe(base.(*ServeReport), cand.(*ServeReport), cfg), nil
	case "progressive":
		return GateProgressive(base.(*ProgressiveReport), cand.(*ProgressiveReport), cfg), nil
	}
	return nil, fmt.Errorf("benchgate: unknown report kind %q", kind)
}
