package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"verdictdb/internal/core"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
	"verdictdb/internal/stats"
)

// This file holds the ablation studies DESIGN.md calls out: each isolates
// one design choice of the system and quantifies its effect.

// SampleTypeAblation compares uniform vs stratified samples for a grouped
// query over skewed strata — the design decision behind Section 3.2. The
// metric is the worst per-group relative error: uniform samples starve rare
// groups; stratified samples guarantee per-stratum minimums.
type SampleTypeAblationResult struct {
	SampleType    string
	WorstGroupErr float64
	MissingGroups int
}

// AblationSampleType runs the uniform-vs-stratified comparison.
func AblationSampleType(w io.Writer, seed int64) ([]SampleTypeAblationResult, error) {
	eng := engine.NewSeeded(seed)
	if err := eng.CreateTable("skewed", []engine.Column{
		{Name: "grp", Type: engine.TString},
		{Name: "x", Type: engine.TFloat},
	}); err != nil {
		return nil, err
	}
	// Strata sizes: 200k, 20k, 2k, 200, 50 — three orders of magnitude.
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{200_000, 20_000, 2_000, 200, 50}
	var rows [][]engine.Value
	for g, size := range sizes {
		for i := 0; i < size; i++ {
			rows = append(rows, []engine.Value{
				fmt.Sprintf("g%d", g), 10 + 10*rng.NormFloat64(),
			})
		}
	}
	if err := eng.InsertRows("skewed", rows); err != nil {
		return nil, err
	}
	db := drivers.NewGeneric(eng)
	cat, err := meta.Open(db)
	if err != nil {
		return nil, err
	}
	builder := sampling.NewBuilder(db, cat)
	if _, err := builder.CreateUniform("skewed", 0.01); err != nil {
		return nil, err
	}
	if _, err := builder.CreateStratified("skewed", []string{"grp"}, 0.01); err != nil {
		return nil, err
	}

	exact, err := db.Query("select grp, count(*) as c, avg(x) as m from skewed group by grp order by grp")
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "## Ablation: sample type for grouped queries over skewed strata\n")
	fmt.Fprintf(w, "%-12s %16s %15s\n", "sample", "worst group err", "missing groups")
	var out []SampleTypeAblationResult
	for _, typ := range []sqlparser.SampleType{sqlparser.UniformSample, sqlparser.StratifiedSample} {
		// Force the plan by registering only the one sample in a scratch
		// catalog view: simplest is a fresh planner-facing middleware whose
		// catalog holds just this sample.
		all, err := cat.List()
		if err != nil {
			return nil, err
		}
		var only []meta.SampleInfo
		for _, si := range all {
			if si.Type == typ {
				only = append(only, si)
			}
		}
		res := SampleTypeAblationResult{SampleType: typ.String()}
		// Per-group estimates straight from the forced sample, using the
		// rewriter directly.
		sel, err := sqlparser.ParseSelect("select grp, count(*) as c, avg(x) as m from skewed group by grp")
		if err != nil {
			return nil, err
		}
		plan, err := forcedPlan(sel, only)
		if err != nil {
			return nil, err
		}
		ro, err := core.Rewrite(sel, plan, []int{1, 2}, true)
		if err != nil {
			return nil, err
		}
		rs, err := db.Query(drivers.Render(db, ro.Stmt))
		if err != nil {
			return nil, err
		}
		got := map[string]float64{}
		for _, r := range rs.Rows {
			c, _ := engine.ToFloat(r[1])
			got[engine.ToStr(r[0])] = c
		}
		for _, er := range exact.Rows {
			g := engine.ToStr(er[0])
			want, _ := engine.ToFloat(er[1])
			gv, ok := got[g]
			if !ok {
				res.MissingGroups++
				continue
			}
			re := abs(gv-want) / want
			if re > res.WorstGroupErr {
				res.WorstGroupErr = re
			}
		}
		out = append(out, res)
		fmt.Fprintf(w, "%-12s %15.2f%% %15d\n", res.SampleType, 100*res.WorstGroupErr, res.MissingGroups)
	}
	return out, nil
}

// forcedPlan builds a CandidatePlan that maps the single-table query's
// occurrence onto the given sample.
func forcedPlan(sel *sqlparser.SelectStmt, samples []meta.SampleInfo) (core.CandidatePlan, error) {
	if len(samples) != 1 {
		return core.CandidatePlan{}, fmt.Errorf("bench: forcedPlan wants exactly one sample, got %d", len(samples))
	}
	occ, err := core.OccurrencesOf(sel)
	if err != nil {
		return core.CandidatePlan{}, err
	}
	plan := core.CandidatePlan{Choices: map[string]core.TableChoice{}}
	for alias, o := range occ {
		si := samples[0]
		plan.Choices[alias] = core.TableChoice{Occurrence: o, Sample: &si}
	}
	return plan, nil
}

// AblationStaircaseDelta measures how often the per-stratum minimum of
// Equation 1 is violated for different delta settings of Lemma 1 — the
// design knob behind the staircase function.
type StaircaseDeltaResult struct {
	Delta         float64
	ViolationRate float64
}

// AblationStaircase sweeps delta and reports empirical violation rates.
func AblationStaircase(w io.Writer, trials int, seed int64) []StaircaseDeltaResult {
	rng := rand.New(rand.NewSource(seed))
	const m, n = 50, 5000
	fmt.Fprintf(w, "## Ablation: Lemma 1 delta vs per-stratum guarantee violations (m=%d, n=%d)\n", m, n)
	fmt.Fprintf(w, "%-10s %16s %16s\n", "delta", "sampling prob", "violation rate")
	var out []StaircaseDeltaResult
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		p := stats.MinSamplingProb(m, n, delta)
		violations := 0
		for trial := 0; trial < trials; trial++ {
			k := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			if k < m {
				violations++
			}
		}
		rate := float64(violations) / float64(trials)
		out = append(out, StaircaseDeltaResult{Delta: delta, ViolationRate: rate})
		fmt.Fprintf(w, "%-10g %16.5f %15.3f%%\n", delta, p, 100*rate)
	}
	return out
}

// AblationTopK measures planning time and achieved plan score as the
// heuristic prune width k (Appendix E.2) varies, over a join query with
// many candidate samples per table.
type TopKResult struct {
	K        int
	PlanTime time.Duration
	Score    float64
}

// AblationPlannerTopK sweeps the prune width.
func AblationPlannerTopK(w io.Writer, cfg Config) ([]TopKResult, error) {
	env, err := NewInstaEnv(cfg, drivers.NewGeneric)
	if err != nil {
		return nil, err
	}
	cat, err := meta.Open(env.DB)
	if err != nil {
		return nil, err
	}
	// Register extra uniform samples at assorted ratios to widen the
	// candidate space.
	builder := sampling.NewBuilder(env.DB, cat)
	for _, r := range []float64{0.002, 0.004, 0.006, 0.008} {
		if _, err := builder.CreateUniform("order_products", r); err != nil {
			return nil, err
		}
		// Re-register under a distinct name so they coexist.
		all, _ := cat.List()
		for _, si := range all {
			if si.Type == sqlparser.UniformSample && si.BaseTable == "order_products" && si.Ratio == r {
				si.SampleTable = fmt.Sprintf("%s_r%d", si.SampleTable, int(r*1000))
				_ = env.DB.Exec(fmt.Sprintf("create table %s as select * from %s",
					si.SampleTable, sampling.SampleName("order_products", sqlparser.UniformSample, nil)))
				_ = cat.Register(si)
			}
		}
	}
	all, err := cat.List()
	if err != nil {
		return nil, err
	}
	sql := `select o.order_dow, sum(op.price) as rev from orders o
		inner join order_products op on o.order_id = op.order_id group by o.order_dow`
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	occ, err := core.OccurrencesOf(sel)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "## Ablation: planner prune width k (Appendix E.2)\n")
	fmt.Fprintf(w, "%-6s %14s %12s\n", "k", "plan time", "score")
	var out []TopKResult
	for _, k := range []int{1, 2, 4, 10} {
		pcfg := core.DefaultPlannerConfig()
		pcfg.TopK = k
		planner := core.NewPlanner(pcfg, all)
		start := time.Now()
		var score float64
		const reps = 200
		for i := 0; i < reps; i++ {
			plans, _, ok, err := planner.PlanQuery(sel, occ)
			if err != nil {
				return nil, err
			}
			if ok {
				score = plans[0].Plan.Score
			}
		}
		res := TopKResult{K: k, PlanTime: time.Since(start) / reps, Score: score}
		out = append(out, res)
		fmt.Fprintf(w, "%-6d %14v %12.5f\n", k, res.PlanTime.Round(time.Microsecond), res.Score)
	}
	return out, nil
}
