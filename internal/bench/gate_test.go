package bench

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func engineReport(scale float64) *EngineBenchReport {
	return &EngineBenchReport{
		Benchmarks: []EngineBenchResult{
			{Name: "E1GroupedAgg", NsPerOp: 16e6 * scale, AllocsPerOp: 2400, BytesPerOp: 110_000},
			{Name: "E1FilterAgg", NsPerOp: 6e6 * scale, AllocsPerOp: 190, BytesPerOp: 46_000},
			{Name: "E1HashJoin", NsPerOp: 36e6 * scale, AllocsPerOp: 10_600, BytesPerOp: 18e6},
		},
	}
}

func TestGateEngineIdenticalPasses(t *testing.T) {
	base := engineReport(1)
	if v := GateEngine(base, engineReport(1), DefaultGateConfig()); len(v) != 0 {
		t.Fatalf("identical reports should pass, got %v", v)
	}
}

// TestGateEngineCatchesDoubledNs is the gate's reason to exist: a synthetic
// 2x ns/op regression on every benchmark must fail.
func TestGateEngineCatchesDoubledNs(t *testing.T) {
	base := engineReport(1)
	cand := engineReport(2)
	v := GateEngine(base, cand, DefaultGateConfig())
	if len(v) != len(base.Benchmarks) {
		t.Fatalf("want %d ns violations, got %d: %v", len(base.Benchmarks), len(v), v)
	}
	for _, viol := range v {
		if !strings.Contains(viol.Metric, "ns_per_op") {
			t.Errorf("unexpected metric in %v", viol)
		}
		if viol.Ratio < 1.9 || viol.Ratio > 2.1 {
			t.Errorf("ratio should be ~2.0: %v", viol)
		}
	}
}

func TestGateEngineCatchesAllocRegression(t *testing.T) {
	base := engineReport(1)
	cand := engineReport(1)
	cand.Benchmarks[0].AllocsPerOp *= 1.3 // past the tight 1.15x allocation limit
	v := GateEngine(base, cand, DefaultGateConfig())
	if len(v) != 1 || !strings.Contains(v[0].Metric, "allocs_per_op") {
		t.Fatalf("want one allocs violation, got %v", v)
	}
}

// TestGateEngineFloorSkipsNoise: a microsecond-scale benchmark doubling is
// scheduler noise, not a regression — the absolute floor skips it.
func TestGateEngineFloorSkipsNoise(t *testing.T) {
	base := &EngineBenchReport{Benchmarks: []EngineBenchResult{
		{Name: "Tiny", NsPerOp: 3_000, AllocsPerOp: 4, BytesPerOp: 256},
	}}
	cand := &EngineBenchReport{Benchmarks: []EngineBenchResult{
		{Name: "Tiny", NsPerOp: 30_000, AllocsPerOp: 40, BytesPerOp: 2560},
	}}
	if v := GateEngine(base, cand, DefaultGateConfig()); len(v) != 0 {
		t.Fatalf("sub-floor metrics should be skipped, got %v", v)
	}
}

// TestGateEngineMissingBenchmarkFails: dropping a benchmark from the run
// hides regressions, so lost coverage is itself a failure.
func TestGateEngineMissingBenchmarkFails(t *testing.T) {
	base := engineReport(1)
	cand := engineReport(1)
	cand.Benchmarks = cand.Benchmarks[1:]
	v := GateEngine(base, cand, DefaultGateConfig())
	if len(v) != 1 || !math.IsInf(v[0].Ratio, 1) {
		t.Fatalf("want one missing-benchmark violation, got %v", v)
	}
	if !strings.Contains(v[0].String(), "missing from candidate") {
		t.Fatalf("violation should explain the missing run: %s", v[0])
	}
}

func serveReport(warmScale float64) *ServeReport {
	shapes := make([]ServeShape, 0, 7)
	for _, id := range []string{"tq-1", "tq-3", "tq-5", "tq-6", "tq-9", "iq-1", "iq-2"} {
		shapes = append(shapes, ServeShape{ID: id, ColdMs: 40, WarmMs: 30 * warmScale})
	}
	return &ServeReport{Shapes: shapes}
}

// TestGateServeMedianRobustToOutlier: one shape tripling while the rest
// hold steady is per-query jitter; the median-of-ratios must absorb it.
func TestGateServeMedianRobustToOutlier(t *testing.T) {
	base := serveReport(1)
	cand := serveReport(1)
	cand.Shapes[0].WarmMs *= 3
	cand.Shapes[0].ColdMs *= 3
	if v := GateServe(base, cand, DefaultGateConfig()); len(v) != 0 {
		t.Fatalf("single outlier shape should pass the median gate, got %v", v)
	}
}

func TestGateServeCatchesBroadSlowdown(t *testing.T) {
	base := serveReport(1)
	v := GateServe(base, serveReport(2), DefaultGateConfig())
	if len(v) != 1 || !strings.Contains(v[0].Metric, "warm_ms") {
		t.Fatalf("want one warm-latency median violation, got %v", v)
	}
}

func TestGateServeMissingShapeFails(t *testing.T) {
	base := serveReport(1)
	cand := serveReport(1)
	cand.Shapes = cand.Shapes[:len(cand.Shapes)-1]
	v := GateServe(base, cand, DefaultGateConfig())
	if len(v) != 1 || !math.IsInf(v[0].Ratio, 1) {
		t.Fatalf("want one missing-shape violation, got %v", v)
	}
}

func progressiveReport(scale float64) *ProgressiveReport {
	var rs []ProgressiveResult
	for _, q := range []string{"tq-1", "tq-6", "iq-1"} {
		for _, tgt := range []float64{0.01, 0.05} {
			rs = append(rs, ProgressiveResult{Dataset: "tpch", Query: q, Target: tgt, ElapsedMs: 12 * scale})
		}
	}
	return &ProgressiveReport{Results: rs}
}

func TestGateProgressive(t *testing.T) {
	base := progressiveReport(1)
	if v := GateProgressive(base, progressiveReport(1.1), DefaultGateConfig()); len(v) != 0 {
		t.Fatalf("10%% drift should pass, got %v", v)
	}
	v := GateProgressive(base, progressiveReport(2), DefaultGateConfig())
	if len(v) != 1 || !strings.Contains(v[0].Metric, "elapsed_ms") {
		t.Fatalf("want one elapsed-median violation, got %v", v)
	}
}

// TestGateLoadsCommittedBaselines: the checked-in BENCH_*.json files must
// stay parseable by the gate, and each must pass when compared to itself.
func TestGateLoadsCommittedBaselines(t *testing.T) {
	for kind, file := range map[string]string{
		"engine":      "BENCH_engine.json",
		"serve":       "BENCH_serve.json",
		"progressive": "BENCH_progressive.json",
	} {
		path := filepath.Join("..", "..", file)
		rep, err := LoadGateReport(kind, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		v, err := Gate(kind, rep, rep, DefaultGateConfig())
		if err != nil {
			t.Fatalf("gating %s: %v", kind, err)
		}
		if len(v) != 0 {
			t.Fatalf("%s vs itself should pass, got %v", file, v)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}
