package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	verdictdb "verdictdb"
	"verdictdb/internal/drivers"
	"verdictdb/internal/workload"
)

// The progressive experiment measures time-to-accuracy over the mixed
// TPC-H/Insta workload: each query runs once per target relative error with
// accuracy-driven progressive execution, recording how many scramble blocks
// (and rows) the executor scanned before the variational error estimate met
// the target, plus the per-prefix curve. The interesting outcome is early
// termination: loose targets should answer grouped-aggregate queries from a
// strict prefix of the sample, and targetRelErr=0 must match Conn.Query.

// ProgressivePoint is one block prefix on a query's time-to-accuracy curve.
type ProgressivePoint struct {
	Blocks      int     `json:"blocks"`
	RowsScanned int64   `json:"rows_scanned"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	EstRelErr   float64 `json:"est_rel_err"`
}

// ProgressiveResult is one (query, target) measurement.
type ProgressiveResult struct {
	Dataset       string             `json:"dataset"`
	Query         string             `json:"query"`
	Target        float64            `json:"target"`
	Progressive   bool               `json:"progressive"`
	EarlyStop     bool               `json:"early_stop"`
	BlocksScanned int                `json:"blocks_scanned"`
	BlocksTotal   int                `json:"blocks_total"`
	RowsScanned   int64              `json:"rows_scanned"`
	FullRows      int64              `json:"full_rows_scanned"`
	ElapsedMs     float64            `json:"elapsed_ms"`
	EstRelErr     float64            `json:"est_rel_err"`
	TrueRelErr    float64            `json:"true_rel_err"`
	Curve         []ProgressivePoint `json:"curve,omitempty"`
}

// ProgressiveReport is the BENCH_progressive.json payload.
type ProgressiveReport struct {
	Timestamp  string              `json:"timestamp"`
	TPCHScale  float64             `json:"tpch_scale"`
	InstaScale float64             `json:"insta_scale"`
	BlockRows  int64               `json:"block_rows"`
	Targets    []float64           `json:"targets"`
	Results    []ProgressiveResult `json:"results"`
}

// finiteRelErr maps MaxRelativeError's "accuracy unknown" NaN to 0 for the
// JSON reports (encoding/json rejects NaN).
func finiteRelErr(a *verdictdb.Answer) float64 {
	if re := a.MaxRelativeError(); !math.IsNaN(re) {
		return re
	}
	return 0
}

// ProgressiveExperiment runs the block-prefix time-to-accuracy sweep and
// writes the report to outPath ("" skips the file).
func ProgressiveExperiment(w io.Writer, cfg Config, outPath string, targets []float64) (*ProgressiveReport, error) {
	if len(targets) == 0 {
		targets = []float64{0.01, 0.02, 0.05, 0.10}
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 256
	}
	rep := &ProgressiveReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		TPCHScale:  cfg.TPCHScale,
		InstaScale: cfg.InstaScale,
		BlockRows:  cfg.BlockRows,
		Targets:    targets,
	}

	type dataset struct {
		name    string
		env     *Env
		queries []workload.Query
	}
	tpchEnv, err := NewTPCHEnv(cfg, drivers.NewGeneric)
	if err != nil {
		return nil, err
	}
	instaEnv, err := NewInstaEnv(cfg, drivers.NewGeneric)
	if err != nil {
		return nil, err
	}
	sets := []dataset{
		{"tpch", tpchEnv, workload.TPCHQueries},
		{"insta", instaEnv, workload.InstaQueries},
	}

	fmt.Fprintf(w, "## Progressive execution: time-to-accuracy over block-partitioned scrambles\n")
	fmt.Fprintf(w, "block size %d rows; targets %v\n", cfg.BlockRows, targets)
	fmt.Fprintf(w, "%-7s %-7s %7s %14s %12s %10s %10s\n",
		"query", "target", "blocks", "rows(full)", "elapsed", "est-err", "true-err")

	for _, ds := range sets {
		for _, q := range ds.queries {
			exact, err := ds.env.Conn.Query("bypass " + q.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s exact: %w", q.ID, err)
			}
			// Full-sample reference: rows scanned with no early stopping.
			full, err := ds.env.Conn.QueryWithAccuracy(q.SQL, 0)
			if err != nil {
				return nil, fmt.Errorf("%s full: %w", q.ID, err)
			}
			for _, target := range targets {
				var curve []ProgressivePoint
				a, err := ds.env.Conn.QueryProgressive(q.SQL, target,
					func(u verdictdb.ProgressiveUpdate) bool {
						curve = append(curve, ProgressivePoint{
							Blocks:      u.BlocksScanned,
							RowsScanned: u.Answer.RowsScanned,
							ElapsedMs:   float64(u.Answer.ElapsedNanos) / 1e6,
							EstRelErr:   finiteRelErr(u.Answer),
						})
						return true
					})
				if err != nil {
					return nil, fmt.Errorf("%s target %g: %w", q.ID, target, err)
				}
				res := ProgressiveResult{
					Dataset:       ds.name,
					Query:         q.ID,
					Target:        target,
					Progressive:   a.BlocksTotal > 0,
					EarlyStop:     a.BlocksTotal > 0 && a.BlocksScanned < a.BlocksTotal,
					BlocksScanned: a.BlocksScanned,
					BlocksTotal:   a.BlocksTotal,
					RowsScanned:   a.RowsScanned,
					FullRows:      full.RowsScanned,
					ElapsedMs:     float64(a.ElapsedNanos) / 1e6,
					EstRelErr:     a.MaxRelativeError(),
					TrueRelErr:    trueRelativeError(exact, a),
					Curve:         curve,
				}
				rep.Results = append(rep.Results, res)
				if res.Progressive {
					fmt.Fprintf(w, "%-7s %-7.3g %3d/%-3d %6d/%-7d %10.2fms %9.3f%% %9.3f%%\n",
						q.ID, target, res.BlocksScanned, res.BlocksTotal,
						res.RowsScanned, res.FullRows, res.ElapsedMs,
						100*res.EstRelErr, 100*res.TrueRelErr)
				}
			}
		}
	}

	// Summary: how often loose targets terminate early.
	fmt.Fprintf(w, "\n%-8s %12s %14s %16s\n", "target", "progressive", "early-stopped", "mean blocks frac")
	for _, target := range targets {
		prog, early := 0, 0
		fracSum := 0.0
		for _, r := range rep.Results {
			if r.Target != target || !r.Progressive {
				continue
			}
			prog++
			if r.EarlyStop {
				early++
			}
			fracSum += float64(r.BlocksScanned) / float64(r.BlocksTotal)
		}
		if prog == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8.3g %12d %14d %15.1f%%\n",
			target, prog, early, 100*fracSum/float64(prog))
	}

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return rep, nil
}
