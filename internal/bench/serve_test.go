package bench

import (
	"io"
	"testing"
	"time"
)

func TestServeExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := ServeExperiment(io.Discard, QuickConfig(), "", []int{1, 2}, 2, time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shapes) == 0 {
		t.Fatal("no usable workload shapes")
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("rounds: %d, want 2", len(rep.Rounds))
	}
	for _, r := range rep.Rounds {
		if r.QPS <= 0 || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Fatalf("implausible round stats: %+v", r)
		}
		// The workload was fully warmed during the cold/warm phase, so the
		// throughput rounds must run entirely on cached plans.
		if r.CacheMisses != 0 || r.CacheHits != int64(r.Queries) {
			t.Fatalf("rounds should be all cache hits: %+v", r)
		}
	}
	if rep.ColdTotalMs <= 0 || rep.WarmTotalMs <= 0 {
		t.Fatalf("cold/warm totals missing: %+v", rep)
	}
	// Cached execution skips parse/flatten/plan/rewrite and the ndv probes;
	// summed over all shapes it must not be slower than cold execution.
	// (Per-shape noise is possible; the aggregate is stable.)
	if !raceEnabled && rep.WarmTotalMs > rep.ColdTotalMs {
		t.Errorf("warm total %.1fms slower than cold %.1fms", rep.WarmTotalMs, rep.ColdTotalMs)
	}
}

func TestServeExperimentRobustnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := ServeExperiment(io.Discard, QuickConfig(), "", []int{2}, 4,
		time.Millisecond, 15*time.Millisecond, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineMs != 15 || rep.CancelRate != 0.5 {
		t.Fatalf("robustness knobs not recorded: %+v", rep)
	}
	for _, r := range rep.Rounds {
		// Every query is accounted for as completed, degraded, deadline-cut,
		// or cancelled; the experiment fails outright on any other error, so
		// reaching here means the injected churn explained all failures.
		churn := r.Degraded + r.DeadlineErrors + r.Cancelled
		if churn > int64(r.Queries) {
			t.Fatalf("more churn outcomes than queries: %+v", r)
		}
		if r.DegradedFrac < 0 || r.DegradedFrac > 1 {
			t.Fatalf("bad degraded fraction: %+v", r)
		}
	}
}
