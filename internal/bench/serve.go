package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	verdictdb "verdictdb"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// Serve experiment: the concurrent serving layer under load. N goroutine
// clients drive the mixed TPC-H + Insta workload through two shared Conns,
// measuring aggregate QPS and per-query latency percentiles at increasing
// worker counts, plus the plan/rewrite cache's effect on repeated shapes
// (cold first-execution vs warm cached latency per shape).
//
// The per-query engine overhead is really slept (drivers.SetOverhead with
// simulate=true), standing in for the warehouse round-trip the paper's
// middleware pays per query — the latency concurrent clients overlap. Scan
// parallelism is pinned to 1 so the scaling measured is the serving
// layer's, not the morsel scheduler's.

// ServeShape is one query shape's cold (first execution, cache miss) vs
// warm (cached plan) latency.
type ServeShape struct {
	ID          string  `json:"id"`
	Approximate bool    `json:"approximate"`
	ColdMs      float64 `json:"cold_ms"`
	WarmMs      float64 `json:"warm_ms"`
}

// ServeRound is one worker-count measurement. The robustness counters are
// populated only when the round ran with a per-query deadline or cancel
// rate: Degraded counts progressive answers cut short by the deadline but
// still returned (Answer.Degraded()), DeadlineErrors counts queries whose
// deadline expired before any block prefix completed, and Cancelled counts
// queries whose context was cancelled mid-flight. Latency percentiles cover
// only queries that ran to completion.
type ServeRound struct {
	Workers        int     `json:"workers"`
	Queries        int     `json:"queries"`
	WallMs         float64 `json:"wall_ms"`
	QPS            float64 `json:"qps"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	SpeedupVs1     float64 `json:"speedup_vs_1"`
	Degraded       int64   `json:"degraded,omitempty"`
	DegradedFrac   float64 `json:"degraded_frac,omitempty"`
	DeadlineErrors int64   `json:"deadline_errors,omitempty"`
	Cancelled      int64   `json:"cancelled,omitempty"`
}

// ServeReport is the BENCH_serve.json payload.
type ServeReport struct {
	Timestamp           string       `json:"timestamp"`
	GoMaxProcs          int          `json:"go_max_procs"`
	SimulatedOverheadMs float64      `json:"simulated_overhead_ms"`
	TPCHScale           float64      `json:"tpch_scale"`
	InstaScale          float64      `json:"insta_scale"`
	DeadlineMs          float64      `json:"deadline_ms,omitempty"`
	CancelRate          float64      `json:"cancel_rate,omitempty"`
	Shapes              []ServeShape `json:"shapes"`
	ColdTotalMs         float64      `json:"cold_total_ms"`
	WarmTotalMs         float64      `json:"warm_total_ms"`
	PlanCacheSpeedup    float64      `json:"plan_cache_speedup"`
	Rounds              []ServeRound `json:"rounds"`
}

// serveRobustTarget is the progressive target relative error used when the
// serve experiment runs with a deadline: tight enough that most queries ramp
// through several block prefixes, giving the deadline partial answers to
// degrade to.
const serveRobustTarget = 0.002

// ServeExperiment measures serving-layer throughput and writes the report
// to outPath ("" skips the file). workerCounts defaults to {1, 2, 4, 8};
// perWorker is the number of queries each worker issues per round.
//
// deadline > 0 gives every throughput-round query a context deadline and
// routes it through progressive execution, so an expiring deadline returns
// the last completed block prefix's partial answer (counted in Degraded)
// instead of an error. cancelRate in (0, 1] cancels that fraction of queries
// at a random point mid-flight; a cancelled query must return promptly with
// ctx.Err() and leave the engine consistent for the other workers — the
// round fails if any query errors in a way the injected churn cannot explain.
func ServeExperiment(w io.Writer, cfg Config, outPath string, workerCounts []int, perWorker int, overhead time.Duration, deadline time.Duration, cancelRate float64) (*ServeReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if perWorker <= 0 {
		perWorker = 32
	}
	if overhead <= 0 {
		overhead = 25 * time.Millisecond
	}
	mk := func(e *engine.Engine) *drivers.Driver {
		d := drivers.NewGeneric(e)
		d.SetOverhead(overhead, true)
		return d
	}
	tpch, err := NewTPCHEnv(cfg, mk)
	if err != nil {
		return nil, err
	}
	insta, err := NewInstaEnv(cfg, mk)
	if err != nil {
		return nil, err
	}
	// Pin scan parallelism so worker scaling measures the serving layer.
	tpch.Eng.SetParallelism(1)
	insta.Eng.SetParallelism(1)

	rep := &ServeReport{
		Timestamp:           time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		SimulatedOverheadMs: float64(overhead.Nanoseconds()) / 1e6,
		TPCHScale:           cfg.TPCHScale,
		InstaScale:          cfg.InstaScale,
		DeadlineMs:          float64(deadline.Nanoseconds()) / 1e6,
		CancelRate:          cancelRate,
	}

	// Cold vs warm: the first-ever execution of each shape pays the full
	// parse→plan→rewrite pipeline (plus ndv probes); repeats hit the plan
	// cache. Also the round workload below, fully warmed.
	type boundQuery struct {
		env *Env
		q   workload.Query
	}
	var work []boundQuery
	for _, q := range workload.TPCHQueries {
		work = append(work, boundQuery{tpch, q})
	}
	for _, q := range workload.InstaQueries {
		work = append(work, boundQuery{insta, q})
	}
	fmt.Fprintf(w, "## Serve: plan/rewrite cache, cold vs warm per shape (overhead %.1fms slept per engine query)\n", rep.SimulatedOverheadMs)
	var usable []boundQuery
	for _, bq := range work {
		t0 := time.Now()
		a, err := bq.env.Conn.Query(bq.q.SQL)
		cold := time.Since(t0)
		if err != nil {
			fmt.Fprintf(w, "%-8s SKIP (%v)\n", bq.q.ID, err)
			continue
		}
		warm := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			t0 = time.Now()
			if _, err := bq.env.Conn.Query(bq.q.SQL); err != nil {
				return nil, fmt.Errorf("serve warm %s: %w", bq.q.ID, err)
			}
			if d := time.Since(t0); d < warm {
				warm = d
			}
		}
		rep.Shapes = append(rep.Shapes, ServeShape{
			ID:          bq.q.ID,
			Approximate: a.Approximate,
			ColdMs:      float64(cold.Nanoseconds()) / 1e6,
			WarmMs:      float64(warm.Nanoseconds()) / 1e6,
		})
		rep.ColdTotalMs += float64(cold.Nanoseconds()) / 1e6
		rep.WarmTotalMs += float64(warm.Nanoseconds()) / 1e6
		usable = append(usable, bq)
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("serve: no usable workload queries")
	}
	if rep.WarmTotalMs > 0 {
		rep.PlanCacheSpeedup = rep.ColdTotalMs / rep.WarmTotalMs
	}
	fmt.Fprintf(w, "%d shapes; total cold %.1fms, warm %.1fms (cache-hit path %.2fx faster)\n",
		len(rep.Shapes), rep.ColdTotalMs, rep.WarmTotalMs, rep.PlanCacheSpeedup)

	cacheTotals := func() (h, m int64) {
		h1, m1 := tpch.Conn.CacheStats()
		h2, m2 := insta.Conn.CacheStats()
		return h1 + h2, m1 + m2
	}

	fmt.Fprintf(w, "\n## Serve: mixed TPC-H/Insta throughput vs concurrent clients (%d queries/worker)\n", perWorker)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %8s\n", "workers", "qps", "p50(ms)", "p99(ms)", "wall(ms)", "vs 1")
	var qps1 float64
	for _, n := range workerCounts {
		// Round the total up to whole passes over the workload so every
		// round executes the identical query mix — QPS across rounds stays
		// comparable.
		total := perWorker * n
		if rem := total % len(usable); rem != 0 {
			total += len(usable) - rem
		}
		var next atomic.Int64
		var errCount atomic.Int64
		var degraded, deadlined, cancelled atomic.Int64
		latencies := make([][]time.Duration, n)
		h0, m0 := cacheTotals()
		start := time.Now()
		var wg sync.WaitGroup
		for wkr := 0; wkr < n; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				// Per-worker RNG: which queries get cancelled is deterministic
				// given seed and worker, independent of scheduling.
				rng := rand.New(rand.NewSource(cfg.Seed<<8 + int64(wkr)))
				lats := make([]time.Duration, 0, perWorker+1)
				for {
					i := next.Add(1) - 1
					if i >= int64(total) {
						break
					}
					bq := usable[int(i)%len(usable)]
					ctx, cancel := context.Background(), context.CancelFunc(func() {})
					if deadline > 0 {
						ctx, cancel = context.WithTimeout(ctx, deadline)
					}
					injectCancel := cancelRate > 0 && rng.Float64() < cancelRate
					var cancelTimer *time.Timer
					if injectCancel {
						var c2 context.CancelFunc
						ctx, c2 = context.WithCancel(ctx)
						// Fire at a random point inside the query's expected
						// lifetime (the slept overhead plus some scan time).
						window := overhead + 2*time.Millisecond
						cancelTimer = time.AfterFunc(time.Duration(rng.Int63n(int64(window))), c2)
					}
					t0 := time.Now()
					var a *verdictdb.Answer
					var err error
					if deadline > 0 {
						a, err = bq.env.Conn.QueryWithAccuracyContext(ctx, bq.q.SQL, serveRobustTarget)
					} else {
						a, err = bq.env.Conn.QueryContext(ctx, bq.q.SQL)
					}
					elapsed := time.Since(t0)
					if cancelTimer != nil {
						cancelTimer.Stop()
					}
					cancel()
					switch {
					case err == nil && a != nil && a.Degraded():
						degraded.Add(1)
					case err == nil:
						lats = append(lats, elapsed)
					case errors.Is(err, context.Canceled) && injectCancel:
						cancelled.Add(1)
					case errors.Is(err, context.DeadlineExceeded) && deadline > 0:
						deadlined.Add(1)
					default:
						errCount.Add(1)
					}
				}
				latencies[wkr] = lats
			}(wkr)
		}
		wg.Wait()
		wall := time.Since(start)
		if ec := errCount.Load(); ec > 0 {
			return nil, fmt.Errorf("serve: %d queries failed at %d workers", ec, n)
		}
		var all []time.Duration
		for _, l := range latencies {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		h1, m1 := cacheTotals()
		round := ServeRound{
			Workers:        n,
			Queries:        total,
			WallMs:         float64(wall.Nanoseconds()) / 1e6,
			QPS:            float64(total) / wall.Seconds(),
			P50Ms:          float64(percentileDur(all, 50).Nanoseconds()) / 1e6,
			P99Ms:          float64(percentileDur(all, 99).Nanoseconds()) / 1e6,
			CacheHits:      h1 - h0,
			CacheMisses:    m1 - m0,
			Degraded:       degraded.Load(),
			DeadlineErrors: deadlined.Load(),
			Cancelled:      cancelled.Load(),
		}
		round.DegradedFrac = float64(round.Degraded) / float64(total)
		if qps1 == 0 {
			qps1 = round.QPS
		}
		round.SpeedupVs1 = round.QPS / qps1
		rep.Rounds = append(rep.Rounds, round)
		fmt.Fprintf(w, "%-8d %10.1f %10.2f %10.2f %10.1f %7.2fx   (cache %d hit / %d miss)\n",
			n, round.QPS, round.P50Ms, round.P99Ms, round.WallMs, round.SpeedupVs1,
			round.CacheHits, round.CacheMisses)
		if deadline > 0 || cancelRate > 0 {
			fmt.Fprintf(w, "%-8s %10s degraded %d (%.1f%%), deadline-errored %d, cancelled %d\n",
				"", "", round.Degraded, 100*round.DegradedFrac, round.DeadlineErrors, round.Cancelled)
		}
	}

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return rep, nil
}

// percentileDur returns the p-th percentile of sorted durations.
func percentileDur(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}
