package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"verdictdb/internal/engine"
)

// Engine microbenchmarks: the same E1-style scan→filter→aggregate queries
// as internal/engine's BenchmarkE1* functions, run outside the testing
// framework so cmd/benchrunner can persist machine-readable numbers
// (BENCH_engine.json) for cross-PR perf diffs.

// EngineBenchResult is one measured query. AllocsPerOp tracks the
// row→columnar trajectory: the vectorized scan path is expected to run
// orders of magnitude below the boxed row-at-a-time pipeline.
type EngineBenchResult struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// EngineBenchReport is the BENCH_engine.json payload.
type EngineBenchReport struct {
	Timestamp   string              `json:"timestamp"`
	GoMaxProcs  int                 `json:"go_max_procs"`
	Parallelism int                 `json:"parallelism"`
	Benchmarks  []EngineBenchResult `json:"benchmarks"`
}

const engineBenchRows = 200_000

var engineBenchQueries = []struct{ name, sql string }{
	{"E1GroupedAgg", `
		select g, flag, sum(x) as sx, sum(x * (1 - y)) as sxy,
		       avg(x) as ax, count(*) as c
		from fact where d <= '1998-09-02' group by g, flag`},
	{"E1FilterAgg", `
		select sum(x * y) as revenue from fact
		where d >= '1994-01-01' and d < '1995-01-01'
		  and y between 0.05 and 0.07 and x < 24`},
	{"E1Project", `
		select g, x * (1 - y) as net, substr(d, 1, 4) as yr
		from fact where flag <> 'N'`},
	{"E1StringFilter", `
		select count(*) as c, sum(x) as sx from fact where flag = 'A'`},
	{"E1ProjectWide", `
		select g, flag, x, y, d from fact`},
	{"E1HashJoin", `
		select d.cat, sum(f.x * (1 - f.y)) as rev, avg(f.x) as ax, count(*) as c
		from fact f inner join dim d on f.g = d.g
		where f.d <= '1998-09-02' and f.flag <> 'N'
		group by d.cat`},
}

// EngineBench measures the engine hot path and writes the report to
// outPath ("" skips the file).
func EngineBench(w io.Writer, outPath string, iters int) (*EngineBenchReport, error) {
	if iters < 1 {
		iters = 5
	}
	eng := engine.NewSeeded(7)
	if err := eng.CreateTable("fact", []engine.Column{
		{Name: "g", Type: engine.TInt},
		{Name: "flag", Type: engine.TString},
		{Name: "x", Type: engine.TFloat},
		{Name: "y", Type: engine.TFloat},
		{Name: "d", Type: engine.TString},
	}); err != nil {
		return nil, err
	}
	flags := []string{"A", "N", "R"}
	rows := make([][]engine.Value, engineBenchRows)
	for i := range rows {
		rows[i] = []engine.Value{
			int64(i % 25),
			flags[i%3],
			float64((i*7919)%100000) / 1000,
			float64((i*104729)%1000) / 1000,
			fmt.Sprintf("1994-%02d-%02d", i%12+1, i%28+1),
		}
	}
	if err := eng.InsertRows("fact", rows); err != nil {
		return nil, err
	}
	// Dimension table for E1HashJoin: one row per fact.g value.
	if err := eng.CreateTable("dim", []engine.Column{
		{Name: "g", Type: engine.TInt},
		{Name: "cat", Type: engine.TString},
	}); err != nil {
		return nil, err
	}
	cats := []string{"AUTO", "BLDG", "FURN", "HSLD", "MACH"}
	drows := make([][]engine.Value, 25)
	for g := range drows {
		drows[g] = []engine.Value{int64(g), cats[g%len(cats)]}
	}
	if err := eng.InsertRows("dim", drows); err != nil {
		return nil, err
	}

	rep := &EngineBenchReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: eng.Parallelism(),
	}
	fmt.Fprintf(w, "## Engine scan→filter→aggregate microbenchmarks (%d rows, %d iters)\n",
		engineBenchRows, iters)
	measure := func(name, sql string, pre func()) error {
		if _, err := eng.Query(sql); err != nil { // warmup
			return fmt.Errorf("%s: %w", name, err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if pre != nil {
				pre()
			}
			if _, err := eng.Query(sql); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		perOp := float64(elapsed.Nanoseconds()) / float64(iters)
		allocsPerOp := float64(after.Mallocs-before.Mallocs) / float64(iters)
		bytesPerOp := float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
		rep.Benchmarks = append(rep.Benchmarks, EngineBenchResult{
			Name: name, Rows: engineBenchRows, Iters: iters,
			NsPerOp: perOp, AllocsPerOp: allocsPerOp, BytesPerOp: bytesPerOp,
		})
		fmt.Fprintf(w, "%-16s %12.0f ns/op %12.0f allocs/op %14.0f B/op\n",
			name, perOp, allocsPerOp, bytesPerOp)
		return nil
	}
	for _, q := range engineBenchQueries {
		if err := measure(q.name, q.sql, nil); err != nil {
			return nil, err
		}
	}

	// Disk-backed variants: flush every sealed chunk into a scratch segment
	// directory and re-measure the grouped-aggregate scan with a warm chunk
	// cache (steady state: one cache hit per chunk) and cold (cache dropped
	// before each scan, so every chunk pays checksum + decode from disk).
	dir, err := os.MkdirTemp("", "verdict-bench-seg-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if _, err := eng.AttachDataDir(dir); err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.Flush(); err != nil {
		return nil, err
	}
	scanSQL := engineBenchQueries[0].sql // E1GroupedAgg: the scan-dominated shape
	if err := measure("E1DiskScanWarm", scanSQL, nil); err != nil {
		return nil, err
	}
	if err := measure("E1DiskScanCold", scanSQL, eng.DropChunkCache); err != nil {
		return nil, err
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return rep, nil
}
