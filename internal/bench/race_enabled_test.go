//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Timing-shape assertions (real CPU vs modeled costs) are skipped under it:
// instrumentation slows computation ~10x but leaves modeled costs unchanged,
// inverting shapes that hold in every normal build.
const raceEnabled = true
