package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	verdictdb "verdictdb"
	"verdictdb/internal/baselines"
	"verdictdb/internal/core"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sampling"
	"verdictdb/internal/stats"
	"verdictdb/internal/workload"
)

// DriverByName returns the simulated engine constructor for a name.
func DriverByName(name string) func(*engine.Engine) *drivers.Driver {
	switch name {
	case "impala":
		return drivers.NewImpala
	case "sparksql", "spark":
		return drivers.NewSparkSQL
	case "redshift":
		return drivers.NewRedshift
	}
	return drivers.NewGeneric
}

// ---------------------------------------------------------------------------
// E1 + E2: Figures 4, 9, 10 — per-query speedups and actual errors.
// ---------------------------------------------------------------------------

// SpeedupExperiment runs all 33 benchmark queries on one engine and prints
// per-query speedups (Figures 4 and 9) and true relative errors (Figure 10).
func SpeedupExperiment(w io.Writer, cfg Config, driverName string) ([]QueryResult, error) {
	mk := DriverByName(driverName)
	tpch, err := NewTPCHEnv(cfg, mk)
	if err != nil {
		return nil, err
	}
	insta, err := NewInstaEnv(cfg, mk)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "## Figure 4/9 (%s): per-query speedup; Figure 10: actual relative error\n", driverName)
	fmt.Fprintf(w, "%-7s %12s %12s %9s %9s %9s\n", "query", "exact", "approx", "speedup", "approx?", "rel.err")
	var out []QueryResult
	run := func(env *Env, queries []workload.Query) error {
		for _, q := range queries {
			res, err := RunQueryPair(env, q)
			if err != nil {
				return err
			}
			out = append(out, res)
			fmt.Fprintf(w, "%-7s %12v %12v %8.2fx %9v %8.2f%%\n",
				res.ID, res.ExactTime.Round(time.Microsecond), res.ApproxTime.Round(time.Microsecond),
				res.Speedup, res.Approximate, 100*res.MaxRelErrTrue)
		}
		return nil
	}
	if err := run(tpch, workload.TPCHQueries); err != nil {
		return nil, err
	}
	if err := run(insta, workload.InstaQueries); err != nil {
		return nil, err
	}
	// Summary row (the paper reports per-engine averages).
	var sum float64
	var maxS float64
	n := 0
	for _, r := range out {
		if r.Approximate {
			sum += r.Speedup
			if r.Speedup > maxS {
				maxS = r.Speedup
			}
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(w, "average speedup over %d approximated queries: %.2fx (max %.2fx)\n", n, sum/float64(n), maxS)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E3: Figure 5 — speedup vs data size at fixed sample size.
// ---------------------------------------------------------------------------

// ScalingResult is one point of Figure 5.
type ScalingResult struct {
	Scale   float64
	Rows    int
	Speedup map[string]float64 // query id -> speedup
}

// ScalingExperiment fixes the sample size and grows the base data,
// reproducing Figure 5's rising speedup curves for tq-6 and tq-14.
func ScalingExperiment(w io.Writer, scales []float64, fixedSampleRows int64, seed int64) ([]ScalingResult, error) {
	fmt.Fprintf(w, "## Figure 5: speedup vs original data size (sample fixed at ~%d rows)\n", fixedSampleRows)
	fmt.Fprintf(w, "%-10s %12s %10s %10s\n", "scale", "lineitem", "tq-6", "tq-14")
	queries := map[string]workload.Query{}
	for _, q := range workload.TPCHQueries {
		if q.ID == "tq-6" || q.ID == "tq-14" {
			queries[q.ID] = q
		}
	}
	var out []ScalingResult
	for _, scale := range scales {
		eng := engine.NewSeeded(seed)
		if err := workload.LoadTPCH(eng, scale, seed); err != nil {
			return nil, err
		}
		db := drivers.NewGeneric(eng)
		conn, err := verdictdb.Open(db, verdictdb.Defaults())
		if err != nil {
			return nil, err
		}
		n := eng.RowCount("lineitem")
		ratio := float64(fixedSampleRows) / float64(n)
		if ratio > 1 {
			ratio = 1
		}
		if _, err := conn.CreateUniformSample("lineitem", ratio); err != nil {
			return nil, err
		}
		res := ScalingResult{Scale: scale, Rows: n, Speedup: map[string]float64{}}
		env := &Env{Eng: eng, Conn: conn, DB: db}
		for id, q := range queries {
			qr, err := RunQueryPair(env, q)
			if err != nil {
				return nil, err
			}
			res.Speedup[id] = qr.Speedup
		}
		out = append(out, res)
		fmt.Fprintf(w, "%-10.2f %12d %9.2fx %9.2fx\n", scale, n, res.Speedup["tq-6"], res.Speedup["tq-14"])
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E4: Figure 6 — VerdictDB vs tightly-integrated AQP (SnappyData).
// ---------------------------------------------------------------------------

// SnappyResult is one Figure 6 bar pair.
type SnappyResult struct {
	ID            string
	SnappyTime    time.Duration
	VerdictTime   time.Duration
	JoinOfSamples bool
}

// SnappyExperiment compares VerdictDB to the integrated baseline. The
// paper's finding: comparable on flat queries, VerdictDB faster on queries
// joining two samples (SnappyData falls back to base tables there).
func SnappyExperiment(w io.Writer, cfg Config) ([]SnappyResult, error) {
	env, err := NewInstaEnv(cfg, drivers.NewGeneric)
	if err != nil {
		return nil, err
	}
	cat, err := meta.Open(env.DB)
	if err != nil {
		return nil, err
	}
	snappy, err := baselines.NewSnappy(env.DB, cat)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "## Figure 6: integrated AQP (SnappyData-like) vs VerdictDB\n")
	fmt.Fprintf(w, "%-7s %14s %14s %12s\n", "query", "snappy", "verdictdb", "sample-join?")
	var out []SnappyResult
	for _, q := range workload.InstaQueries {
		sStart := time.Now()
		if _, err := snappy.Query(q.SQL); err != nil {
			return nil, fmt.Errorf("snappy %s: %w", q.ID, err)
		}
		sDur := time.Since(sStart)
		a, err := env.Conn.Query(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("verdict %s: %w", q.ID, err)
		}
		vDur := time.Duration(a.ElapsedNanos)
		joins := len(a.SampleTables) > 1
		out = append(out, SnappyResult{ID: q.ID, SnappyTime: sDur, VerdictTime: vDur, JoinOfSamples: joins})
		fmt.Fprintf(w, "%-7s %14v %14v %12v\n", q.ID,
			sDur.Round(time.Microsecond), vDur.Round(time.Microsecond), joins)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E5: Table 2 — sampling-based AQP vs native approximate aggregates.
// ---------------------------------------------------------------------------

// NativeResult is one Table 2 cell pair.
type NativeResult struct {
	Metric      string
	VerdictTime time.Duration
	VerdictErr  float64
	NativeTime  time.Duration
	NativeErr   float64
}

// NativeExperiment reproduces Table 2: approximate count-distinct and
// median via VerdictDB's samples vs native full-scan sketches.
func NativeExperiment(w io.Writer, cfg Config) ([]NativeResult, error) {
	env, err := NewInstaEnv(cfg, drivers.NewGeneric)
	if err != nil {
		return nil, err
	}
	d := env.DB.(*drivers.Driver)
	native := baselines.NewNativeApprox(d.Engine())

	exactUsers, err := env.Conn.Query("bypass select count(distinct user_id) as d from orders")
	if err != nil {
		return nil, err
	}
	trueD := exactUsers.Float(0, "d")
	exactMed, err := env.Conn.Query("bypass select percentile(price, 0.5) as m from order_products")
	if err != nil {
		return nil, err
	}
	trueM := exactMed.Float(0, "m")

	var out []NativeResult

	// count-distinct.
	a, err := env.Conn.Query("select count(distinct user_id) as d from orders")
	if err != nil {
		return nil, err
	}
	ndv, _, nTime, err := native.NDV("orders", "user_id")
	if err != nil {
		return nil, err
	}
	out = append(out, NativeResult{
		Metric:      "count-distinct",
		VerdictTime: time.Duration(a.ElapsedNanos),
		VerdictErr:  abs(a.Float(0, "d")-trueD) / trueD,
		NativeTime:  nTime,
		NativeErr:   abs(ndv-trueD) / trueD,
	})

	// median.
	a2, err := env.Conn.Query("select percentile(price, 0.5) as m from order_products")
	if err != nil {
		return nil, err
	}
	med, _, mTime, err := native.ApproxMedian("order_products", "price")
	if err != nil {
		return nil, err
	}
	out = append(out, NativeResult{
		Metric:      "median",
		VerdictTime: time.Duration(a2.ElapsedNanos),
		VerdictErr:  abs(a2.Float(0, "m")-trueM) / trueM,
		NativeTime:  mTime,
		NativeErr:   abs(med-trueM) / trueM,
	})

	fmt.Fprintf(w, "## Table 2: sampling-based AQP vs native approximation\n")
	fmt.Fprintf(w, "%-16s %14s %10s %14s %10s\n", "metric", "verdict", "err", "native", "err")
	for _, r := range out {
		fmt.Fprintf(w, "%-16s %14v %9.2f%% %14v %9.2f%%\n", r.Metric,
			r.VerdictTime.Round(time.Microsecond), 100*r.VerdictErr,
			r.NativeTime.Round(time.Microsecond), 100*r.NativeErr)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E6: Figure 7 — runtime of error-estimation methods (flat/join/nested).
// ---------------------------------------------------------------------------

// EstimatorResult is one Figure 7 bar.
type EstimatorResult struct {
	QueryKind string
	Method    string
	Elapsed   time.Duration
}

// EstimatorOverheadExperiment measures query latency under each
// error-estimation method for flat, join, and nested queries.
func EstimatorOverheadExperiment(w io.Writer, cfg Config) ([]EstimatorResult, error) {
	queries := []struct{ kind, sql string }{
		{"flat", "select order_dow, count(*) as c, sum(days_since_prior) as s from orders group by order_dow"},
		{"join", `select o.order_dow, sum(op.price) as rev from orders o
			inner join order_products op on o.order_id = op.order_id group by o.order_dow`},
		{"nested", `select avg(basket) as ab from
			(select op.order_id as oid, sum(op.price) as basket from order_products op group by op.order_id) as b`},
	}
	methods := []struct {
		name   string
		method core.ErrorMethod
	}{
		{"none", core.MethodNone},
		{"variational", core.MethodVariational},
		{"traditional", core.MethodTraditionalSubsampling},
		{"bootstrap", core.MethodConsolidatedBootstrap},
	}
	fmt.Fprintf(w, "## Figure 7: query latency by error-estimation method\n")
	fmt.Fprintf(w, "%-8s %-14s %14s\n", "query", "method", "latency")
	var out []EstimatorResult
	for _, mdef := range methods {
		opts := verdictdb.Defaults()
		opts.Method = mdef.method
		env, err := newInstaEnvWithOpts(cfg, opts)
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			if mdef.method == core.MethodTraditionalSubsampling || mdef.method == core.MethodConsolidatedBootstrap {
				if q.kind == "nested" {
					// The SQL-expressed baselines support flat and join
					// queries; the paper's nested numbers use the same
					// O(b*n) blowup, approximated here by the join shape.
					continue
				}
			}
			a, err := env.Conn.Query(q.sql)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", q.kind, mdef.name, err)
			}
			if !a.Approximate {
				return nil, fmt.Errorf("%s/%s: not approximated (%v)", q.kind, mdef.name, a.Status)
			}
			out = append(out, EstimatorResult{QueryKind: q.kind, Method: mdef.name, Elapsed: time.Duration(a.ElapsedNanos)})
			fmt.Fprintf(w, "%-8s %-14s %14v\n", q.kind, mdef.name, time.Duration(a.ElapsedNanos).Round(time.Microsecond))
		}
	}
	return out, nil
}

func newInstaEnvWithOpts(cfg Config, opts verdictdb.Options) (*Env, error) {
	eng := engine.NewSeeded(cfg.Seed + 1)
	if err := workload.LoadInsta(eng, cfg.InstaScale, cfg.Seed+1); err != nil {
		return nil, err
	}
	db := drivers.NewGeneric(eng)
	// Keep samples large enough (>=1000 rows) that grouped queries stay
	// approximable at reduced test scales.
	ratioFor := func(table string) float64 {
		n := eng.RowCount(table)
		r := 1000.0 / float64(n)
		if r < 0.01 {
			r = 0.01
		}
		if r > 0.5 {
			r = 0.5
		}
		return r
	}
	// The budget must admit those samples — this experiment compares
	// error-estimation overheads, not budget policy.
	maxRatio := ratioFor("orders")
	if r := ratioFor("order_products"); r > maxRatio {
		maxRatio = r
	}
	if opts.IOBudget < 1.2*maxRatio {
		opts.IOBudget = 1.2 * maxRatio
		opts.Planner.IOBudget = opts.IOBudget
	}
	conn, err := verdictdb.Open(db, opts)
	if err != nil {
		return nil, err
	}
	for _, stmt := range []string{
		fmt.Sprintf("create uniform sample of order_products ratio %g", ratioFor("order_products")),
		fmt.Sprintf("create hashed sample of order_products on (order_id) ratio %g", ratioFor("order_products")),
		fmt.Sprintf("create uniform sample of orders ratio %g", ratioFor("orders")),
	} {
		if err := conn.Exec(stmt); err != nil {
			return nil, err
		}
	}
	return &Env{Eng: eng, Conn: conn, DB: db}, nil
}

// ---------------------------------------------------------------------------
// E7 + E8: Figure 8 — correctness of variational subsampling.
// ---------------------------------------------------------------------------

// SelectivityPoint is one Figure 8a point.
type SelectivityPoint struct {
	Selectivity   float64
	GroundTruth   float64 // true relative error of the count estimate
	EstimatedP5   float64
	EstimatedMean float64
	EstimatedP95  float64
}

// CorrectnessSelectivity reproduces Figure 8a: estimated vs ground-truth
// relative error of a count query across selectivities.
func CorrectnessSelectivity(w io.Writer, popN int, sampleN int, trials int, seed int64) []SelectivityPoint {
	rng := rand.New(rand.NewSource(seed))
	tau := float64(sampleN) / float64(popN)
	z := stats.ZScore(0.95)
	fmt.Fprintf(w, "## Figure 8a: estimated error vs selectivity (count query, n=%d)\n", sampleN)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", "selectivity", "groundtruth", "est.p5", "est.mean", "est.p95")
	var out []SelectivityPoint
	for _, sel := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		trueCount := sel * float64(popN)
		// Ground-truth relative error: z * SE(count estimate) / count.
		gt := z * math.Sqrt(sel*float64(popN)*(1-tau)/tau) / trueCount
		var rels []float64
		for trial := 0; trial < trials; trial++ {
			// Draw the sample's matching-tuple count.
			k := 0
			for i := 0; i < sampleN; i++ {
				if rng.Float64() < sel {
					k++
				}
			}
			iv := stats.CountEstimate(int64(k), tau, 0.95)
			if iv.Estimate > 0 {
				rels = append(rels, iv.HalfWidth()/iv.Estimate)
			}
		}
		sort.Float64s(rels)
		out = append(out, SelectivityPoint{
			Selectivity:   sel,
			GroundTruth:   gt,
			EstimatedP5:   stats.Quantile(rels, 0.05),
			EstimatedMean: stats.Mean(rels),
			EstimatedP95:  stats.Quantile(rels, 0.95),
		})
		p := out[len(out)-1]
		fmt.Fprintf(w, "%-12.1f %11.3f%% %11.3f%% %11.3f%% %11.3f%%\n",
			sel, 100*gt, 100*p.EstimatedP5, 100*p.EstimatedMean, 100*p.EstimatedP95)
	}
	return out
}

// SampleSizePoint is one Figure 8b group of bars.
type SampleSizePoint struct {
	N       int
	Methods map[string]float64 // method -> mean estimated relative error
	Truth   float64
}

// CorrectnessSampleSize reproduces Figure 8b: error estimates from CLT,
// bootstrap, traditional subsampling, and variational subsampling across
// sample sizes, for an avg query on the synthetic distribution
// (mean 10, sd 10).
func CorrectnessSampleSize(w io.Writer, sizes []int, trials int, b int, seed int64) []SampleSizePoint {
	rng := rand.New(rand.NewSource(seed))
	z := stats.ZScore(0.95)
	fmt.Fprintf(w, "## Figure 8b: estimated error by method and sample size (avg query)\n")
	fmt.Fprintf(w, "%-10s %12s %10s %10s %12s %12s\n", "n", "groundtruth", "CLT", "bootstrap", "subsampling", "variational")
	var out []SampleSizePoint
	for _, n := range sizes {
		truth := z * 10.0 / math.Sqrt(float64(n)) / 10.0 // rel. error of mean
		sums := map[string]float64{}
		for trial := 0; trial < trials; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 10 + 10*rng.NormFloat64()
			}
			ns := int(math.Sqrt(float64(n)))
			ivs := map[string]stats.Interval{
				"clt":         stats.CLTInterval(stats.EstimateAvg, xs, 0, 0.95),
				"bootstrap":   stats.BootstrapInterval(stats.EstimateAvg, xs, 0, 0.95, b, rng),
				"subsampling": stats.SubsamplingInterval(stats.EstimateAvg, xs, 0, 0.95, b, ns, rng),
				"variational": stats.VariationalInterval(stats.EstimateAvg, xs, 0, 0.95, n/ns, ns, rng),
			}
			for k, iv := range ivs {
				if iv.Estimate != 0 {
					sums[k] += iv.HalfWidth() / math.Abs(iv.Estimate)
				}
			}
		}
		p := SampleSizePoint{N: n, Methods: map[string]float64{}, Truth: truth}
		for k, s := range sums {
			p.Methods[k] = s / float64(trials)
		}
		out = append(out, p)
		fmt.Fprintf(w, "%-10d %11.3f%% %9.3f%% %9.3f%% %11.3f%% %11.3f%%\n",
			n, 100*truth, 100*p.Methods["clt"], 100*p.Methods["bootstrap"],
			100*p.Methods["subsampling"], 100*p.Methods["variational"])
	}
	return out
}

// ---------------------------------------------------------------------------
// E9: Figure 11 — sample preparation time vs data-transfer baselines.
// ---------------------------------------------------------------------------

// PrepResult is the Figure 11 bar set.
type PrepResult struct {
	TransferRemote  time.Duration // modeled scp to a remote cluster
	TransferCluster time.Duration // modeled HDFS upload
	VerdictSampling time.Duration // measured stratified + uniform build
	SnappySampling  time.Duration // measured integrated (in-process) build
	DatasetBytes    int64
}

// PrepExperiment measures VerdictDB's sampling time and compares it with
// modeled data-transfer costs (the unavoidable data-preparation work the
// paper benchmarks against) and an integrated in-process sampler.
func PrepExperiment(w io.Writer, cfg Config) (*PrepResult, error) {
	eng := engine.NewSeeded(cfg.Seed + 2)
	if err := workload.LoadInsta(eng, cfg.InstaScale, cfg.Seed+2); err != nil {
		return nil, err
	}
	db := drivers.NewGeneric(eng)
	cat, err := meta.Open(db)
	if err != nil {
		return nil, err
	}
	builder := sampling.NewBuilder(db, cat)

	// Approximate dataset size: ~40 bytes per order_products row plus
	// ~24 per orders row (CSV-ish).
	bytes := int64(eng.RowCount("order_products"))*40 + int64(eng.RowCount("orders"))*24

	start := time.Now()
	if _, err := builder.CreateStratified("orders", []string{"order_dow"}, 0.01); err != nil {
		return nil, err
	}
	if _, err := builder.CreateUniform("order_products", 0.01); err != nil {
		return nil, err
	}
	verdictDur := time.Since(start)

	// Integrated sampler: direct in-process pass (no SQL round trips).
	start = time.Now()
	t, err := eng.Lookup("order_products")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))
	kept := 0
	for i := 0; i < t.NumRows(); i++ {
		if rng.Float64() < 0.01 {
			kept++
		}
	}
	_ = kept
	snappyDur := time.Since(start)

	// Modeled transfer throughputs: 30 MB/s WAN scp, 100 MB/s HDFS put
	// (same order as the paper's measured 25.8h vs 7.15h for 370 GB).
	res := &PrepResult{
		TransferRemote:  time.Duration(float64(bytes) / (30 << 20) * float64(time.Second)),
		TransferCluster: time.Duration(float64(bytes) / (100 << 20) * float64(time.Second)),
		VerdictSampling: verdictDur,
		SnappySampling:  snappyDur,
		DatasetBytes:    bytes,
	}
	fmt.Fprintf(w, "## Figure 11: sample prep vs data-transfer (dataset %.1f MB)\n", float64(bytes)/(1<<20))
	fmt.Fprintf(w, "%-28s %14v\n", "transfer to remote cluster", res.TransferRemote.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %14v\n", "transfer within cluster", res.TransferCluster.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %14v\n", "verdictdb sampling (SQL)", res.VerdictSampling.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %14v\n", "integrated sampling", res.SnappySampling.Round(time.Millisecond))
	return res, nil
}

// ---------------------------------------------------------------------------
// E10 + E11 + E12: Figures 12, 13, 14 — time-error tradeoffs.
// ---------------------------------------------------------------------------

// TradeoffPoint is one (accuracy, latency) measurement for one method.
type TradeoffPoint struct {
	Param   int // n for Figure 12, b for Figure 13
	Method  string
	RelErr  float64 // relative error of the estimated error bound
	Latency time.Duration
}

// boundRelErr computes |estimated bound - true bound| / true mean, the
// Appendix B.3 accuracy metric for error estimates.
func boundRelErr(iv stats.Interval, trueMean, trueBound float64) float64 {
	est := iv.Hi - iv.Estimate
	return math.Abs(est-trueBound) / trueMean
}

// TradeoffN reproduces Figure 12: accuracy and latency of the three
// resampling methods as the sample size n grows.
func TradeoffN(w io.Writer, sizes []int, trials, bFixed int, seed int64) []TradeoffPoint {
	rng := rand.New(rand.NewSource(seed))
	z := stats.ZScore(0.95)
	fmt.Fprintf(w, "## Figure 12: accuracy/latency of error bounds vs sample size (b=%d; variational b=sqrt(n))\n", bFixed)
	fmt.Fprintf(w, "%-8s %-13s %12s %14s\n", "n", "method", "bound.err", "latency")
	var out []TradeoffPoint
	for _, n := range sizes {
		trueBound := z * 10.0 / math.Sqrt(float64(n))
		type m struct {
			name string
			run  func(xs []float64) stats.Interval
		}
		ns := int(math.Sqrt(float64(n)))
		methods := []m{
			{"bootstrap", func(xs []float64) stats.Interval {
				return stats.BootstrapInterval(stats.EstimateAvg, xs, 0, 0.95, bFixed, rng)
			}},
			{"subsampling", func(xs []float64) stats.Interval {
				return stats.SubsamplingInterval(stats.EstimateAvg, xs, 0, 0.95, bFixed, ns, rng)
			}},
			{"variational", func(xs []float64) stats.Interval {
				return stats.VariationalInterval(stats.EstimateAvg, xs, 0, 0.95, n/ns, ns, rng)
			}},
		}
		for _, meth := range methods {
			var errSum float64
			var elapsed time.Duration
			for trial := 0; trial < trials; trial++ {
				xs := make([]float64, n)
				for i := range xs {
					xs[i] = 10 + 10*rng.NormFloat64()
				}
				start := time.Now()
				iv := meth.run(xs)
				elapsed += time.Since(start)
				errSum += boundRelErr(iv, 10.0, trueBound)
			}
			p := TradeoffPoint{
				Param: n, Method: meth.name,
				RelErr:  errSum / float64(trials),
				Latency: elapsed / time.Duration(trials),
			}
			out = append(out, p)
			fmt.Fprintf(w, "%-8d %-13s %11.3f%% %14v\n", n, meth.name, 100*p.RelErr, p.Latency.Round(time.Microsecond))
		}
	}
	return out
}

// TradeoffB reproduces Figure 13: accuracy and latency as the number of
// resamples b grows, n fixed.
func TradeoffB(w io.Writer, n int, bs []int, trials int, seed int64) []TradeoffPoint {
	rng := rand.New(rand.NewSource(seed))
	z := stats.ZScore(0.95)
	trueBound := z * 10.0 / math.Sqrt(float64(n))
	ns := int(math.Sqrt(float64(n)))
	fmt.Fprintf(w, "## Figure 13: accuracy/latency of error bounds vs resamples b (n=%d)\n", n)
	fmt.Fprintf(w, "%-8s %-13s %12s %14s\n", "b", "method", "bound.err", "latency")
	var out []TradeoffPoint
	for _, b := range bs {
		methods := []struct {
			name string
			run  func(xs []float64) stats.Interval
		}{
			{"bootstrap", func(xs []float64) stats.Interval {
				return stats.BootstrapInterval(stats.EstimateAvg, xs, 0, 0.95, b, rng)
			}},
			{"subsampling", func(xs []float64) stats.Interval {
				return stats.SubsamplingInterval(stats.EstimateAvg, xs, 0, 0.95, b, ns, rng)
			}},
			{"variational", func(xs []float64) stats.Interval {
				return stats.VariationalInterval(stats.EstimateAvg, xs, 0, 0.95, b, n/b, rng)
			}},
		}
		for _, meth := range methods {
			var errSum float64
			var elapsed time.Duration
			for trial := 0; trial < trials; trial++ {
				xs := make([]float64, n)
				for i := range xs {
					xs[i] = 10 + 10*rng.NormFloat64()
				}
				start := time.Now()
				iv := meth.run(xs)
				elapsed += time.Since(start)
				errSum += boundRelErr(iv, 10.0, trueBound)
			}
			p := TradeoffPoint{
				Param: b, Method: meth.name,
				RelErr:  errSum / float64(trials),
				Latency: elapsed / time.Duration(trials),
			}
			out = append(out, p)
			fmt.Fprintf(w, "%-8d %-13s %11.3f%% %14v\n", b, meth.name, 100*p.RelErr, p.Latency.Round(time.Microsecond))
		}
	}
	return out
}

// NsPoint is one Figure 14 bar.
type NsPoint struct {
	Label  string
	Ns     int
	RelErr float64
}

// NsSweep reproduces Figure 14: the effect of the subsample size ns on
// variational subsampling's error-bound accuracy (n fixed). The paper's
// claim: ns = n^(1/2) minimizes the error.
//
// The data must be skewed for the sweep to be meaningful: with Gaussian
// values, subsample means are exactly normal at every ns and the small-ns
// penalty (the n_s^{-1/2} term of Appendix B.3) vanishes. A lognormal with
// the synthetic dataset's moments (mean 10, sd 10) supplies the skew.
func NsSweep(w io.Writer, n, trials int, seed int64) []NsPoint {
	rng := rand.New(rand.NewSource(seed))
	z := stats.ZScore(0.95)
	const lnSigma = 0.8325546111576977 // sqrt(ln 2): sd = mean for lognormal
	lnMu := math.Log(10.0) - lnSigma*lnSigma/2
	trueBound := z * 10.0 / math.Sqrt(float64(n))
	exps := []struct {
		label string
		e     float64
	}{
		{"n^1/4", 0.25}, {"n^1/3", 1.0 / 3}, {"n^1/2", 0.5}, {"n^2/3", 2.0 / 3}, {"n^3/4", 0.75},
	}
	fmt.Fprintf(w, "## Figure 14: error of variational subsampling vs subsample size (n=%d)\n", n)
	fmt.Fprintf(w, "%-8s %10s %12s\n", "ns", "value", "bound.err")
	var out []NsPoint
	for _, ex := range exps {
		ns := int(math.Pow(float64(n), ex.e))
		if ns < 2 {
			ns = 2
		}
		b := n / ns
		if b < 2 {
			b = 2
		}
		var errSum float64
		for trial := 0; trial < trials; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Exp(lnMu + lnSigma*rng.NormFloat64())
			}
			iv := stats.VariationalInterval(stats.EstimateAvg, xs, 0, 0.95, b, ns, rng)
			errSum += boundRelErr(iv, 10.0, trueBound)
		}
		p := NsPoint{Label: ex.label, Ns: ns, RelErr: errSum / float64(trials)}
		out = append(out, p)
		fmt.Fprintf(w, "%-8s %10d %11.3f%%\n", p.Label, p.Ns, 100*p.RelErr)
	}
	return out
}
