// Package bench is the experiment harness regenerating every table and
// figure of the paper's evaluation (Section 6 and Appendix B). Each
// experiment prints paper-shaped rows; cmd/benchrunner and the root
// bench_test.go both drive it.
package bench

import (
	"fmt"
	"time"

	verdictdb "verdictdb"
	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// Env is a fully prepared benchmark environment: data loaded, samples
// built, connections open.
type Env struct {
	Eng  *engine.Engine
	Conn *verdictdb.Conn
	DB   drivers.DB
}

// Config controls dataset sizes so tests can shrink them.
type Config struct {
	TPCHScale  float64 // 1.0 = 600k lineitem
	InstaScale float64 // 1.0 = 1M order_products
	Seed       int64
	// BlockRows overrides the sample builder's scramble block size for the
	// environments' samples (0 keeps the builder default). The progressive
	// experiment shrinks it so block-prefix curves have enough points.
	BlockRows int64
}

// DefaultConfig is used by cmd/benchrunner.
func DefaultConfig() Config { return Config{TPCHScale: 0.35, InstaScale: 0.35, Seed: 42} }

// QuickConfig keeps unit tests fast.
func QuickConfig() Config { return Config{TPCHScale: 0.05, InstaScale: 0.05, Seed: 42} }

// NewTPCHEnv loads the TPC-H-like dataset with the paper's sample set:
// 1% uniform samples on fact tables, universe samples on join keys, and
// stratified samples on the common grouping attributes.
func NewTPCHEnv(cfg Config, mkDriver func(*engine.Engine) *drivers.Driver) (*Env, error) {
	eng := engine.NewSeeded(cfg.Seed)
	if err := workload.LoadTPCH(eng, cfg.TPCHScale, cfg.Seed); err != nil {
		return nil, err
	}
	db := mkDriver(eng)
	conn, err := verdictdb.Open(db, verdictdb.Defaults())
	if err != nil {
		return nil, err
	}
	if cfg.BlockRows > 0 {
		conn.Builder().BlockRows = cfg.BlockRows //verdict:unguarded bench setup: conn was just created and is not yet shared
	}
	// The paper's I/O budget is 2%; use it fully (it also allowed up to 80%
	// of the budget specifically for stratified samples).
	for _, stmt := range []string{
		"create uniform sample of lineitem ratio 0.02",
		"create stratified sample of lineitem on (l_returnflag, l_linestatus) ratio 0.02",
		"create hashed sample of lineitem on (l_orderkey) ratio 0.02",
		"create uniform sample of orders ratio 0.02",
		"create hashed sample of orders on (o_orderkey) ratio 0.02",
		"create uniform sample of partsupp ratio 0.02",
		"create hashed sample of partsupp on (ps_suppkey) ratio 0.02",
	} {
		if err := conn.Exec(stmt); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", stmt, err)
		}
	}
	return &Env{Eng: eng, Conn: conn, DB: db}, nil
}

// NewInstaEnv loads the insta-like dataset with its sample set.
func NewInstaEnv(cfg Config, mkDriver func(*engine.Engine) *drivers.Driver) (*Env, error) {
	eng := engine.NewSeeded(cfg.Seed + 1)
	if err := workload.LoadInsta(eng, cfg.InstaScale, cfg.Seed+1); err != nil {
		return nil, err
	}
	db := mkDriver(eng)
	conn, err := verdictdb.Open(db, verdictdb.Defaults())
	if err != nil {
		return nil, err
	}
	if cfg.BlockRows > 0 {
		conn.Builder().BlockRows = cfg.BlockRows //verdict:unguarded bench setup: conn was just created and is not yet shared
	}
	for _, stmt := range []string{
		"create uniform sample of order_products ratio 0.02",
		"create hashed sample of order_products on (order_id) ratio 0.02",
		"create uniform sample of orders ratio 0.02",
		"create hashed sample of orders on (user_id) ratio 0.02",
		"create hashed sample of orders on (order_id) ratio 0.02",
		"create stratified sample of orders on (order_dow) ratio 0.02",
		"create stratified sample of orders on (order_hour) ratio 0.02",
	} {
		if err := conn.Exec(stmt); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", stmt, err)
		}
	}
	return &Env{Eng: eng, Conn: conn, DB: db}, nil
}

// QueryResult is one measured query execution pair.
type QueryResult struct {
	ID          string
	ExactTime   time.Duration
	ApproxTime  time.Duration
	Speedup     float64
	Approximate bool
	// MaxRelErrTrue is the worst observed relative error of aggregate
	// cells vs the exact answer (Figure 10's metric).
	MaxRelErrTrue float64
}

// RunQueryPair measures the exact and approximate execution of one query.
// One untimed exact warmup run stabilizes allocator and cache effects.
func RunQueryPair(env *Env, q workload.Query) (QueryResult, error) {
	if _, err := env.Conn.Query("bypass " + q.SQL); err != nil {
		return QueryResult{}, fmt.Errorf("%s warmup: %w", q.ID, err)
	}
	exStart := time.Now()
	exact, err := env.Conn.Query("bypass " + q.SQL)
	if err != nil {
		return QueryResult{}, fmt.Errorf("%s exact: %w", q.ID, err)
	}
	exactDur := time.Since(exStart) + env.DB.Overhead()

	approx, err := env.Conn.Query(q.SQL)
	if err != nil {
		return QueryResult{}, fmt.Errorf("%s approx: %w", q.ID, err)
	}
	approxDur := time.Duration(approx.ElapsedNanos)
	if approxDur <= 0 {
		approxDur = time.Nanosecond
	}
	res := QueryResult{
		ID:          q.ID,
		ExactTime:   exactDur,
		ApproxTime:  approxDur,
		Speedup:     float64(exactDur) / float64(approxDur),
		Approximate: approx.Approximate,
	}
	if approx.Approximate {
		res.MaxRelErrTrue = trueRelativeError(exact, approx)
	}
	return res, nil
}

// trueRelativeError compares approximate aggregate cells to exact ones,
// matching rows by the non-aggregate (group) cells.
func trueRelativeError(exact *verdictdb.Answer, approx *verdictdb.Answer) float64 {
	if len(exact.Rows) == 0 || len(approx.Rows) == 0 {
		return 0
	}
	// Identify numeric columns with error estimates (aggregates) and group
	// columns (everything else).
	nc := len(approx.Cols)
	isAgg := make([]bool, nc)
	for c := 0; c < nc && c < len(exact.Cols); c++ {
		for r := range approx.Rows {
			if _, _, ok := approx.ConfidenceInterval(r, c); ok {
				isAgg[c] = true
				break
			}
		}
	}
	keyOf := func(row []engine.Value) string {
		k := ""
		for c := 0; c < nc && c < len(row); c++ {
			if !isAgg[c] {
				k += engine.GroupKey(row[c]) + "\x1f"
			}
		}
		return k
	}
	exactByKey := map[string][]engine.Value{}
	for _, row := range exact.Rows {
		exactByKey[keyOf(row)] = row
	}
	worst := 0.0
	for _, arow := range approx.Rows {
		erow, ok := exactByKey[keyOf(arow)]
		if !ok {
			continue
		}
		for c := 0; c < nc && c < len(erow); c++ {
			if !isAgg[c] {
				continue
			}
			av, aok := engine.ToFloat(arow[c])
			ev, eok := engine.ToFloat(erow[c])
			if !aok || !eok || ev == 0 {
				continue
			}
			re := abs(av-ev) / abs(ev)
			if re > worst {
				worst = re
			}
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
