package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"verdictdb/internal/workload"
)

// The experiments at QuickConfig scale double as integration tests: every
// table/figure generator must run end-to-end and produce paper-shaped
// results.

func TestSpeedupExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	results, err := SpeedupExperiment(&sb, QuickConfig(), "generic")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 33 {
		t.Fatalf("ran %d queries, want 33", len(results))
	}
	approximated, fast := 0, 0
	for _, r := range results {
		if r.Approximate {
			approximated++
			if r.Speedup > 2 {
				fast++
			}
		}
	}
	// The paper approximates most queries and speeds up the large scans.
	if approximated < 15 {
		t.Errorf("only %d/33 queries approximated", approximated)
	}
	if fast < 10 {
		t.Errorf("only %d approximated queries exceeded 2x speedup", fast)
	}
	out := sb.String()
	for _, want := range []string{"tq-1", "iq-15", "average speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestScalingExperimentMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ScalingExperiment(io.Discard, []float64{0.02, 0.1, 0.3}, 1200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("points: %d", len(res))
	}
	// Figure 5's claim: at fixed sample size, speedup grows with data size.
	if res[2].Speedup["tq-6"] <= res[0].Speedup["tq-6"] {
		t.Errorf("tq-6 speedup not increasing: %.2f -> %.2f",
			res[0].Speedup["tq-6"], res[2].Speedup["tq-6"])
	}
}

func TestSnappyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := SnappyExperiment(io.Discard, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(workload.InstaQueries) {
		t.Fatalf("rows: %d", len(res))
	}
}

func TestNativeExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Needs enough rows that sampling beats a full scan, and enough
	// distinct users that the universe sample clears the key floor.
	cfg := QuickConfig()
	cfg.InstaScale = 0.3
	res, err := NativeExperiment(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("metrics: %d", len(res))
	}
	for _, r := range res {
		// Table 2's shape: sampling-based answers are faster than native
		// full-scan sketches (43.5x average in the paper).
		if r.VerdictTime > r.NativeTime {
			t.Errorf("%s: verdict %v slower than native %v", r.Metric, r.VerdictTime, r.NativeTime)
		}
		if r.VerdictErr > 0.5 {
			t.Errorf("%s: verdict error %.2f", r.Metric, r.VerdictErr)
		}
	}
}

func TestEstimatorOverheadOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := EstimatorOverheadExperiment(io.Discard, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]time.Duration{}
	for _, r := range res {
		byKey[r.QueryKind+"/"+r.Method] = r.Elapsed
	}
	// Figure 7's shape: variational is vastly cheaper than the O(b*n)
	// methods and close to no-error-estimation.
	for _, kind := range []string{"flat", "join"} {
		v := byKey[kind+"/variational"]
		trad := byKey[kind+"/traditional"]
		boot := byKey[kind+"/bootstrap"]
		if trad < 2*v {
			t.Errorf("%s: traditional %v not >> variational %v", kind, trad, v)
		}
		if boot < 2*v {
			t.Errorf("%s: bootstrap %v not >> variational %v", kind, boot, v)
		}
	}
	if _, ok := byKey["nested/variational"]; !ok {
		t.Error("nested variational missing")
	}
}

func TestCorrectnessSelectivityShape(t *testing.T) {
	pts := CorrectnessSelectivity(io.Discard, 1_000_000, 10_000, 60, 42)
	if len(pts) != 9 {
		t.Fatalf("points: %d", len(pts))
	}
	// Figure 8a: relative error decreases with selectivity, and the mean
	// estimated error tracks ground truth closely.
	if pts[0].GroundTruth <= pts[len(pts)-1].GroundTruth {
		t.Error("ground-truth error should fall as selectivity rises")
	}
	for _, p := range pts {
		rel := abs(p.EstimatedMean-p.GroundTruth) / p.GroundTruth
		if rel > 0.15 {
			t.Errorf("selectivity %.1f: estimate %.4f vs truth %.4f (off %.0f%%)",
				p.Selectivity, p.EstimatedMean, p.GroundTruth, 100*rel)
		}
	}
}

func TestCorrectnessSampleSizeShape(t *testing.T) {
	pts := CorrectnessSampleSize(io.Discard, []int{20_000, 100_000}, 8, 80, 42)
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	for _, p := range pts {
		for method, est := range p.Methods {
			rel := abs(est-p.Truth) / p.Truth
			if rel > 0.5 {
				t.Errorf("n=%d %s: estimated rel err %.4f vs truth %.4f", p.N, method, est, p.Truth)
			}
		}
	}
	// Errors shrink with n.
	if pts[1].Methods["variational"] >= pts[0].Methods["variational"] {
		t.Error("variational error estimate should shrink with n")
	}
}

func TestPrepExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("timing-shape assertion vs modeled costs; meaningless under -race instrumentation")
	}
	res, err := PrepExperiment(io.Discard, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11's shape: sampling is far cheaper than shipping the data to
	// a remote cluster, and the integrated sampler beats SQL-based.
	if res.VerdictSampling > res.TransferRemote {
		t.Errorf("sampling %v slower than remote transfer %v", res.VerdictSampling, res.TransferRemote)
	}
	if res.SnappySampling > res.VerdictSampling {
		t.Errorf("integrated sampling %v slower than SQL sampling %v", res.SnappySampling, res.VerdictSampling)
	}
}

func TestTradeoffNShape(t *testing.T) {
	pts := TradeoffN(io.Discard, []int{10_000, 40_000}, 3, 200, 42)
	byKey := map[string]TradeoffPoint{}
	for _, p := range pts {
		byKey[p.Method+string(rune(p.Param))] = p
	}
	// Figure 12b: variational is orders of magnitude faster than bootstrap
	// at the same n.
	for _, n := range []int{10_000, 40_000} {
		var boot, vs time.Duration
		for _, p := range pts {
			if p.Param == n {
				switch p.Method {
				case "bootstrap":
					boot = p.Latency
				case "variational":
					vs = p.Latency
				}
			}
		}
		if vs >= boot {
			t.Errorf("n=%d: variational %v not faster than bootstrap %v", n, vs, boot)
		}
	}
}

func TestNsSweepMinimumAtSqrtN(t *testing.T) {
	pts := NsSweep(io.Discard, 200_000, 24, 42)
	if len(pts) != 5 {
		t.Fatalf("points: %d", len(pts))
	}
	var sqrtErr float64
	worst := 0.0
	for _, p := range pts {
		if p.Label == "n^1/2" {
			sqrtErr = p.RelErr
		}
		if p.RelErr > worst {
			worst = p.RelErr
		}
	}
	// Figure 14: ns = sqrt(n) should be at or near the minimum. Absolute
	// ratios are unstable at test-scale trial counts (the best error can be
	// arbitrarily close to zero), so assert by rank: sqrt(n) must land in
	// the better half of the five choices.
	rank := 0
	for _, p := range pts {
		if p.RelErr < sqrtErr {
			rank++
		}
	}
	if rank > 2 {
		t.Errorf("sqrt(n) error %.5f ranks %d/5 (worst %.5f)", sqrtErr, rank+1, worst)
	}
}

func TestAblationSampleType(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := AblationSampleType(io.Discard, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results: %d", len(res))
	}
	var uni, strat SampleTypeAblationResult
	for _, r := range res {
		if r.SampleType == "uniform" {
			uni = r
		} else {
			strat = r
		}
	}
	// The design claim: stratified samples protect rare groups.
	if strat.MissingGroups != 0 {
		t.Errorf("stratified sample missing %d groups", strat.MissingGroups)
	}
	if uni.MissingGroups == 0 && uni.WorstGroupErr < strat.WorstGroupErr {
		t.Error("uniform sample should be worse on skewed strata")
	}
}

func TestAblationStaircaseCalibrated(t *testing.T) {
	res := AblationStaircase(io.Discard, 3000, 42)
	if len(res) != 3 {
		t.Fatalf("results: %d", len(res))
	}
	for _, r := range res {
		// Violation rate must not exceed ~delta (with MC slack).
		if r.ViolationRate > 3*r.Delta+0.01 {
			t.Errorf("delta %g: violation rate %.4f", r.Delta, r.ViolationRate)
		}
	}
	// Tighter delta -> fewer violations.
	if res[0].ViolationRate < res[2].ViolationRate {
		t.Error("violations should decrease with delta")
	}
}

func TestAblationPlannerTopK(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := AblationPlannerTopK(io.Discard, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results: %d", len(res))
	}
	// Pruning must not lose plan quality here (scores equal), and must not
	// be slower than the unpruned search.
	for _, r := range res[1:] {
		if r.Score < res[0].Score-1e-9 {
			t.Errorf("k=%d lost score: %v vs %v", r.K, r.Score, res[0].Score)
		}
	}
}

func TestProgressiveExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickConfig()
	cfg.BlockRows = 64
	rep, err := ProgressiveExperiment(io.Discard, cfg, "", []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2*33 {
		t.Fatalf("ran %d (query, target) pairs, want %d", len(rep.Results), 2*33)
	}
	progressive := 0
	for _, r := range rep.Results {
		if !r.Progressive {
			continue
		}
		progressive++
		if r.BlocksTotal < 1 || r.BlocksScanned < 1 || r.BlocksScanned > r.BlocksTotal {
			t.Fatalf("%s target %g: blocks %d/%d", r.Query, r.Target, r.BlocksScanned, r.BlocksTotal)
		}
		// targetRelErr=0 must scan the whole sample in one shot.
		if r.Target == 0 && r.BlocksScanned != r.BlocksTotal {
			t.Fatalf("%s: target 0 stopped early (%d/%d)", r.Query, r.BlocksScanned, r.BlocksTotal)
		}
		if r.EarlyStop && r.EstRelErr > r.Target {
			t.Fatalf("%s: early stop with estimated error %v above target %v",
				r.Query, r.EstRelErr, r.Target)
		}
	}
	if progressive == 0 {
		t.Fatal("no query took the progressive path")
	}
}
