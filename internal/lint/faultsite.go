package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// FaultSite keeps the fault-injection surface honest in both directions:
//
//  1. Call sites: the site-name argument of every faultpoint entry point
//     (Hit, SetPanic, SetError, SetStall, Clear, Count) must be a
//     compile-time constant whose value is registered in the package's site
//     catalog (the Site* constants in sites.go). A typo'd or unregistered
//     name arms a site nothing ever hits — the test passes while testing
//     nothing. Calls inside the faultpoint package itself are exempt (the
//     env-var parser necessarily handles arbitrary strings).
//
//  2. Build-tag parity: faultpoint_on.go (-tags faultinject) and
//     faultpoint_off.go must declare identical exported APIs. The two files
//     are never compiled together, so the compiler cannot catch drift; a
//     function added to one file only breaks the *other* build
//     configuration, usually in CI long after the commit. The analyzer
//     parses the build-excluded twin (via the vet config's IgnoredFiles)
//     and diffs exported functions and types.
//
// No suppression token: both rules are structural, and an exception would
// defeat them.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "faultpoint call sites use registered site names; on/off build-tag files expose identical APIs",
	Run:  runFaultSite,
}

// faultEntryPoints maps faultpoint functions to the index of their
// site-name argument.
var faultEntryPoints = map[string]int{
	"Hit": 0, "SetPanic": 0, "SetError": 0, "SetStall": 0, "Clear": 0, "Count": 0,
}

func runFaultSite(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	if strings.HasSuffix(pass.Pkg.Path(), "faultpoint") {
		checkTagParity(pass)
		return nil
	}
	checkCallSites(pass)
	return nil
}

// registeredSites collects the values of exported Site* string constants
// from the imported faultpoint package.
func registeredSites(fp *types.Package) map[string]bool {
	sites := map[string]bool{}
	scope := fp.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !strings.HasPrefix(name, "Site") {
			continue
		}
		if c.Val().Kind() == constant.String {
			sites[constant.StringVal(c.Val())] = true
		}
	}
	return sites
}

func checkCallSites(pass *Pass) {
	var fp *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if strings.HasSuffix(imp.Path(), "faultpoint") {
			fp = imp
			break
		}
	}
	if fp == nil {
		return
	}
	sites := registeredSites(fp)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() != fp {
				return true
			}
			argIdx, ok := faultEntryPoints[fn.Name()]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			arg := call.Args[argIdx]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "",
					"faultpoint.%s: site name %s is not a compile-time constant; use a registered Site* constant so the catalog stays checkable", fn.Name(), exprString(pass, arg))
				return true
			}
			site := constant.StringVal(tv.Value)
			if !sites[site] {
				pass.Reportf(arg.Pos(), "",
					"faultpoint.%s: site %q is not in the registry (sites.go); a misspelled site arms a fault nothing ever hits — add a Site* constant or fix the name", fn.Name(), site)
			}
			return true
		})
	}
}

// apiDecl is one exported declaration relevant to tag parity.
type apiDecl struct {
	kind string // "func" or "type"
	sig  string // name-insensitive signature rendering ("" for types)
}

// checkTagParity diffs exported APIs between the compiled faultpoint_*.go
// file and its build-excluded twin.
func checkTagParity(pass *Pass) {
	var compiled *ast.File
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasPrefix(name, "faultpoint_") && !strings.HasSuffix(name, "_test.go") {
			compiled = f
			break
		}
	}
	if compiled == nil {
		return
	}
	var twinPath string
	for _, ig := range pass.IgnoredFiles {
		name := filepath.Base(ig)
		if strings.HasPrefix(name, "faultpoint_") && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			twinPath = ig
			break
		}
	}
	if twinPath == "" {
		return
	}
	twinFset := token.NewFileSet()
	twin, err := parser.ParseFile(twinFset, twinPath, nil, parser.SkipObjectResolution)
	if err != nil {
		pass.Reportf(compiled.Name.Pos(), "", "faultsite: cannot parse build-tag twin %s: %v", filepath.Base(twinPath), err)
		return
	}

	have := exportedAPI(pass.Fset, compiled)
	want := exportedAPI(twinFset, twin)
	anchor := compiled.Name.Pos()
	twinName := filepath.Base(twinPath)
	thisName := filepath.Base(pass.Fset.Position(compiled.Pos()).Filename)

	var names []string
	for name := range want {
		names = append(names, name)
	}
	for name := range have {
		if _, ok := want[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h, inHave := have[name]
		w, inWant := want[name]
		switch {
		case !inHave:
			pass.Reportf(anchor, "",
				"build-tag parity: %s %s exists in %s but not in %s; the APIs must be identical or one build configuration breaks", w.kind, name, twinName, thisName)
		case !inWant:
			pass.Reportf(anchor, "",
				"build-tag parity: %s %s exists in %s but not in %s; the APIs must be identical or one build configuration breaks", h.kind, name, thisName, twinName)
		case h.sig != w.sig:
			pass.Reportf(anchor, "",
				"build-tag parity: %s declared as %s in %s but %s in %s", name, h.sig, thisName, w.sig, twinName)
		}
	}
}

// exportedAPI maps exported top-level names to their kind and (for
// functions) a parameter-name-insensitive signature rendering.
func exportedAPI(fset *token.FileSet, f *ast.File) map[string]apiDecl {
	api := map[string]apiDecl{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil || !d.Name.IsExported() {
				continue
			}
			api[d.Name.Name] = apiDecl{kind: "func", sig: funcSig(fset, d.Type)}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				api[ts.Name.Name] = apiDecl{kind: "type"}
			}
		}
	}
	return api
}

// funcSig renders a function type using parameter/result types only, so
// differing parameter names don't count as drift.
func funcSig(fset *token.FileSet, ft *ast.FuncType) string {
	render := func(fl *ast.FieldList) string {
		if fl == nil {
			return ""
		}
		var parts []string
		for _, field := range fl.List {
			var buf bytes.Buffer
			printer.Fprint(&buf, fset, field.Type)
			n := max(len(field.Names), 1)
			for i := 0; i < n; i++ {
				parts = append(parts, buf.String())
			}
		}
		return strings.Join(parts, ", ")
	}
	return fmt.Sprintf("func(%s) (%s)", render(ft.Params), render(ft.Results))
}
