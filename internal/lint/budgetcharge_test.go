package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

// TestBudgetCharge covers direct charges, the local fixpoint, the
// //verdict:nocharge suppression, and — via the internal/engine/bdep
// dependency — the charges fact crossing the package boundary.
func TestBudgetCharge(t *testing.T) {
	linttest.Run(t, "internal/engine/bcharge", lint.BudgetCharge)
}
