package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestErrWrapIs(t *testing.T) {
	linttest.Run(t, "internal/engine/ewrap", lint.ErrWrapIs)
}
