package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc bans per-lane allocation in the engine's hottest code: the
// bodies of vectorized kernels (eval methods returning (*vec, error)),
// compiled row closures (func([]Value) (Value, error)), and selection-
// vector loops (`for ... range sel` over []int32) that the morsel workers
// drive once per surviving lane. An allocation there is multiplied by the
// row count and shows up directly in BENCH_engine.json allocs_per_op —
// the per-batch amortization the vectorized design exists to buy.
//
// Inside a per-lane loop the analyzer flags:
//
//   - composite literals — a fresh object per lane; hoist it out
//   - non-constant string concatenation — builds a new string per lane
//   - boxing a concrete value into an interface element or via explicit
//     conversion (Value = any, so `out[i] = lanes[i]` is an allocation)
//   - append to a slice not prepared in-function with make(cap) or a
//     [:0] reslice — amortized growth reallocates mid-batch
//
// A deliberate allocation (error path, once-per-batch spill) is annotated
// //verdict:alloc <why>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no per-lane allocation (composite literals, string concat, interface boxing, unsized append) inside vector kernels and selection loops (suppress: //verdict:alloc)",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	if !pass.PathIn("internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if sig, ok := pass.Info.TypeOf(x).(*types.Signature); ok && isCompiledExprSig(sig) {
					// A compiled closure runs once per row: its whole body
					// is lane-hot, loop or not.
					checkHotBody(pass, x.Body, preparedSlices(pass, x.Body), "compiled closure")
					return false
				}
			case *ast.FuncDecl:
				if x.Recv != nil && x.Name.Name == "eval" && x.Body != nil {
					if fn, ok := pass.Info.Defs[x.Name].(*types.Func); ok && isVecKernelSig(fn.Type().(*types.Signature)) {
						checkKernelLoops(pass, x.Body, "vector kernel")
						return false
					}
				}
			case *ast.RangeStmt:
				if isSelectionRange(pass, x) {
					prepared := preparedSlices(pass, enclosingBody(f, x))
					checkHotBody(pass, x.Body, prepared, "selection loop")
					return false
				}
			}
			return true
		})
	}
	return nil
}

// checkKernelLoops applies the per-lane rules to every loop body inside a
// vector kernel. Straight-line kernel code runs once per batch and may
// allocate (the output vec itself, for one); only the loops are per-lane.
func checkKernelLoops(pass *Pass, body *ast.BlockStmt, kind string) {
	prepared := preparedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			checkHotBody(pass, l.Body, prepared, kind+" loop")
			return false
		case *ast.RangeStmt:
			checkHotBody(pass, l.Body, prepared, kind+" loop")
			return false
		}
		return true
	})
}

// isSelectionRange reports whether rs ranges over a selection vector
// ([]int32 of surviving lane indexes) — the engine's morsel inner loop.
func isSelectionRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int32
}

// preparedSlices collects objects the body readies for amortized growth:
// `v := make(T, len, cap)` and `v = v[:0]` (ring reuse). Appending to these
// inside a lane loop stays allocation-free until the prepared capacity is
// exhausted, which is the caller's sizing contract, not a per-lane cost.
func preparedSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	prepared := map[types.Object]bool{}
	if body == nil {
		return prepared
	}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				prepared[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				prepared[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "make" && len(r.Args) == 3 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						mark(as.Lhs[i])
					}
				}
			case *ast.SliceExpr:
				// v = v[:0] — reusing retained capacity.
				if r.High != nil && isZeroLit(r.High) && r.Low == nil {
					mark(as.Lhs[i])
				}
			}
		}
		return true
	})
	return prepared
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// enclosingBody returns the body of the innermost function declaration or
// literal in f that contains n, for prepared-slice scanning.
func enclosingBody(f *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(f, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m.Pos() > n.Pos() || m.End() < n.End() {
			return m.Pos() <= n.Pos() && m.End() >= n.End()
		}
		switch d := m.(type) {
		case *ast.FuncDecl:
			if d.Body != nil && d.Body.Pos() <= n.Pos() && d.Body.End() >= n.End() {
				body = d.Body
			}
		case *ast.FuncLit:
			if d.Body.Pos() <= n.Pos() && d.Body.End() >= n.End() {
				body = d.Body
			}
		}
		return true
	})
	return body
}

// checkHotBody applies the per-lane allocation rules to one hot region.
func checkHotBody(pass *Pass, body *ast.BlockStmt, prepared map[types.Object]bool, kind string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(x.Pos(), "alloc",
				"composite literal inside a %s allocates per lane; hoist the value out of the loop or annotate //verdict:alloc with why it is cold", kind)
		case *ast.BinaryExpr:
			if x.Op.String() == "+" && isStringConcat(pass, x) {
				pass.Reportf(x.Pos(), "alloc",
					"string concatenation inside a %s builds a new string per lane; precompute it or annotate //verdict:alloc with why it is cold", kind)
			}
		case *ast.CallExpr:
			checkHotCall(pass, x, prepared, kind)
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) {
					checkBoxingStore(pass, lhs, x.Rhs[i], kind)
				}
			}
		}
		return true
	})
}

// isStringConcat reports whether x is a non-constant string concatenation.
func isStringConcat(pass *Pass, x *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Value != nil { // constant-folded at compile time
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkHotCall flags unsized appends and explicit interface conversions.
func checkHotCall(pass *Pass, call *ast.CallExpr, prepared map[types.Object]bool, kind string) {
	// Explicit conversion to an interface type: I(x) with concrete x.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type.Underlying()) {
			if at := pass.Info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at.Underlying()) {
				pass.Reportf(call.Pos(), "alloc",
					"converting %s to %s inside a %s boxes per lane; keep lanes typed or annotate //verdict:alloc with why this is cold",
					at, tv.Type, kind)
			}
		}
		return
	}
	if !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
		return
	}
	// append into an interface-element slice boxes each appended value.
	if st := pass.Info.TypeOf(call.Args[0]); st != nil && call.Ellipsis == 0 {
		if sl, ok := st.Underlying().(*types.Slice); ok && types.IsInterface(sl.Elem().Underlying()) {
			for _, arg := range call.Args[1:] {
				if at := pass.Info.TypeOf(arg); at != nil && !types.IsInterface(at.Underlying()) {
					pass.Reportf(arg.Pos(), "alloc",
						"appending concrete %s into %s inside a %s boxes per lane; keep lanes typed or annotate //verdict:alloc with why this is cold",
						at, st, kind)
				}
			}
		}
	}
	// Unsized append: growth target not prepared with capacity in-function.
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil && prepared[obj] {
			return
		}
	}
	pass.Reportf(call.Pos(), "alloc",
		"append inside a %s without make(..., 0, cap) or a [:0] reslice in this function reallocates mid-batch; presize the buffer or annotate //verdict:alloc with why growth is bounded", kind)
}

// checkBoxingStore flags `dst = v` where dst has interface type (directly,
// or as an element of []Value) and v is concrete — implicit boxing.
func checkBoxingStore(pass *Pass, lhs, rhs ast.Expr, kind string) {
	lt := pass.Info.TypeOf(lhs)
	rt := pass.Info.TypeOf(rhs)
	if lt == nil || rt == nil {
		return
	}
	if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); !ok {
		return // only element stores: locals of interface type are rare and cheap to audit by eye
	}
	if !types.IsInterface(lt.Underlying()) || types.IsInterface(rt.Underlying()) {
		return
	}
	if isUntypedNil(pass, rhs) {
		return
	}
	pass.Reportf(lhs.Pos(), "alloc",
		"storing concrete %s into interface element %s inside a %s boxes per lane; keep lanes typed or annotate //verdict:alloc with why this is cold",
		rt, exprString(pass, lhs), kind)
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
