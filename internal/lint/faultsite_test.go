package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestFaultSiteCallSites(t *testing.T) {
	linttest.Run(t, "internal/engine/fsite", lint.FaultSite)
}

func TestFaultSiteParityClean(t *testing.T) {
	linttest.Run(t, "internal/faultpoint", lint.FaultSite)
}

func TestFaultSiteParityDrift(t *testing.T) {
	linttest.Run(t, "internal/badfaultpoint", lint.FaultSite)
}
