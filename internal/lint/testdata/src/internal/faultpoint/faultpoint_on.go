//go:build faultinject

package faultpoint

// Enabled reports whether fault injection is compiled in.
func Enabled() bool { return true }

// Hit triggers any armed fault at site.
func Hit(site string) { _ = site }

// SetError arms site to return an error.
func SetError(site, msg string) { _, _ = site, msg }

// Clear disarms site.
func Clear(site string) { _ = site }

// Count reports how many times site was hit.
func Count(site string) int { _ = site; return 0 }
