// Fixture mirror of the real faultpoint registry: untagged site catalog
// shared by both build configurations.
package faultpoint

const (
	SiteEngineQuery     = "engine.query"
	SiteEngineJoinBuild = "engine.join.build"
)

var sites = map[string]bool{
	SiteEngineQuery:     true,
	SiteEngineJoinBuild: true,
}

// IsSite reports whether site is registered in the catalog.
func IsSite(site string) bool { return sites[site] }
