//go:build !faultinject

package faultpoint

// Enabled reports whether fault injection is compiled in.
func Enabled() bool { return false }

// Hit is a no-op in the default build.
func Hit(site string) { _ = site }

// SetError arms nothing in the default build.
func SetError(site, msg string) { _, _ = site, msg }

// Clear is a no-op in the default build.
func Clear(site string) { _ = site }

// Count always reports zero in the default build.
func Count(site string) int { _ = site; return 0 }
