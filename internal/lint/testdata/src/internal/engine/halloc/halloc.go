// Golden cases for the hotalloc analyzer: no per-lane allocation inside
// vector kernels, compiled row closures, or selection-vector loops.
package halloc

type Value any

type vec struct {
	i64  []int64
	anys []Value
}

type pair struct{ a, b int64 }

// vnAdd is allocation-clean: output presized once, loop writes typed lanes.
type vnAdd struct{ x []int64 }

func (n *vnAdd) eval(sel []int32) (*vec, error) {
	out := &vec{i64: make([]int64, len(n.x))}
	for _, k := range sel {
		out.i64[k] = n.x[k] + 1
	}
	return out, nil
}

// vnDirty allocates per lane three different ways.
type vnDirty struct {
	x   []int64
	s   []string
	pfx string
}

func (n *vnDirty) eval(sel []int32) (*vec, error) {
	out := &vec{i64: make([]int64, len(n.x)), anys: make([]Value, len(n.x))}
	for _, k := range sel {
		p := pair{a: n.x[k]} // want "composite literal inside a vector kernel loop"
		out.i64[k] = p.a + p.b
		s := n.pfx + n.s[k] // want "string concatenation inside a vector kernel loop"
		_ = s
		out.anys[k] = n.x[k] // want "storing concrete int64 into interface element out.anys\[k\] inside a vector kernel loop"
	}
	return out, nil
}

// vnGrow appends to an unprepared slice: reallocation mid-batch.
type vnGrow struct{ x []int64 }

func (n *vnGrow) eval(sel []int32) (*vec, error) {
	var hits []int64
	for _, k := range sel {
		hits = append(hits, n.x[k]) // want "append inside a vector kernel loop without make"
	}
	return &vec{i64: hits}, nil
}

// vnSized presizes its output; the loop appends within prepared capacity.
type vnSized struct{ x []int64 }

func (n *vnSized) eval(sel []int32) (*vec, error) {
	hits := make([]int64, 0, len(sel))
	for _, k := range sel {
		hits = append(hits, n.x[k])
	}
	return &vec{i64: hits}, nil
}

// vnBoxAppend boxes every lane into the interface-element output.
type vnBoxAppend struct{ x []int64 }

func (n *vnBoxAppend) eval(sel []int32) (*vec, error) {
	anys := make([]Value, 0, len(sel))
	for _, k := range sel {
		anys = append(anys, n.x[k]) // want "appending concrete int64 into .*Value inside a vector kernel loop"
	}
	return &vec{anys: anys}, nil
}

// vnFallback deliberately boxes into the TAny lane: annotated, no finding.
type vnFallback struct{ x []int64 }

func (n *vnFallback) eval(sel []int32) (*vec, error) {
	out := &vec{anys: make([]Value, len(n.x))}
	for _, k := range sel {
		out.anys[k] = n.x[k] //verdict:alloc golden fixture: TAny fallback lane
	}
	return out, nil
}

// compileBad builds a fresh composite per row: a compiled closure's whole
// body is lane-hot, loop or not.
func compileBad(base int64) func(row []Value) (Value, error) {
	return func(row []Value) (Value, error) {
		p := pair{a: base} // want "composite literal inside a compiled closure"
		return p.a, nil
	}
}

// compileHoisted allocates once at compile time and closes over the value.
func compileHoisted(base int64) func(row []Value) (Value, error) {
	p := pair{a: base}
	return func(row []Value) (Value, error) {
		return p.a + p.b, nil
	}
}

// gatherTyped keeps lanes typed: clean.
func gatherTyped(sel []int32, src, dst []int64) {
	for _, k := range sel {
		dst[k] = src[k]
	}
}

// gatherBoxed stores concrete lanes into interface elements per lane.
func gatherBoxed(sel []int32, src []int64, out []Value) {
	for _, k := range sel {
		out[k] = src[k] // want "storing concrete int64 into interface element out\[k\] inside a selection loop"
	}
}

// filterPresized appends within capacity prepared in this function.
func filterPresized(sel []int32, src []int64) []int64 {
	keep := make([]int64, 0, len(sel))
	for _, k := range sel {
		if src[k] > 0 {
			keep = append(keep, src[k])
		}
	}
	return keep
}

// filterUnsized grows an unprepared slice per lane.
func filterUnsized(sel []int32, src []int64) []int64 {
	var keep []int64
	for _, k := range sel {
		keep = append(keep, src[k]) // want "append inside a selection loop without make"
	}
	return keep
}

// reuseBuffer reslices retained capacity to zero length: prepared.
func reuseBuffer(buf []int64, sel []int32, src []int64) []int64 {
	buf = buf[:0]
	for _, k := range sel {
		buf = append(buf, src[k])
	}
	return buf
}

// convertExplicit boxes via an explicit conversion per lane.
func convertExplicit(sel []int32, src []int64, out []Value) {
	for _, k := range sel {
		v := Value(src[k]) // want "converting int64 to .*Value inside a selection loop boxes per lane"
		out[k] = v
	}
}
