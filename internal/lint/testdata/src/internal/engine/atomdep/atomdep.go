// Dependency fixture for the atomicfield cross-package test: the atomic-use
// fact on Gauge.N is exported here and must flag plain accesses in
// internal/engine/atomfx after the gob round trip.
package atomdep

import "sync/atomic"

// Gauge is a counter driven through sync/atomic.
type Gauge struct {
	N int64
}

// Inc bumps the gauge.
func Inc(g *Gauge) {
	atomic.AddInt64(&g.N, 1)
}
