// Dependent fixture for the lockguard cross-package test: every diagnostic
// here fires off facts imported from internal/engine/lgdep — nothing in this
// package declares an annotation of its own.
package lguardx

import "internal/engine/lgdep"

func racyRead(r *lgdep.Registry) int {
	return r.Items["k"] // want "access to r.Items without Registry.Mu held"
}

func lockedRead(r *lgdep.Registry) int {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return r.Items["k"]
}

func forgotLock(r *lgdep.Registry) {
	r.PutLocked("k", 1) // want "call to PutLocked requires Registry.Mu held"
}

func heldCall(r *lgdep.Registry) {
	r.Mu.Lock()
	r.PutLocked("k", 1)
	r.Mu.Unlock()
}

func reenter(r *lgdep.Registry) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	r.Put("k", 1) // want "Put acquires Registry.Mu, which is already held here"
}
