// Golden cases for the faultsite call-site rule.
package fsite

import "internal/faultpoint"

func scan(dynamic string) {
	// Registered constant: the canonical idiom.
	faultpoint.Hit(faultpoint.SiteEngineQuery)

	// A literal is fine as long as its value is in the registry.
	faultpoint.Hit("engine.join.build")

	faultpoint.Hit("engine.qury") // want "is not in the registry"

	faultpoint.SetError(dynamic, "boom") // want "is not a compile-time constant"

	faultpoint.Clear(faultpoint.SiteEngineJoinBuild)

	// Non-entry-point helpers take arbitrary strings freely.
	_ = faultpoint.IsSite(dynamic)
}
