// Golden cases for the budgetcharge analyzer: growth sites must reach a
// charge primitive in-function, through a local helper (fixpoint), or
// through an imported helper whose charges fact crossed the package
// boundary.
package bcharge

import "internal/engine/bdep"

type queryCtx struct{ used int64 }

func (qc *queryCtx) chargeMem(n int64) { qc.used += n }

type groupTable struct {
	order []string
	m     map[string][]int
	idx   map[string]int
}

func (t *groupTable) putRaw(k string, v int) {
	t.order = append(t.order, k) // want "append to field t.order in putRaw"
	t.m[k] = append(t.m[k], v)   // want "append into element t.m\[k\] in putRaw"
	t.idx[k] = v                 // want "insert into field map t.idx in putRaw"
}

func (t *groupTable) putCharged(qc *queryCtx, k string, v int) {
	qc.chargeMem(int64(len(k)) + 8)
	t.order = append(t.order, k)
	t.m[k] = append(t.m[k], v)
	t.idx[k] = v
}

// putViaHelper never charges directly: the local fixpoint sees the hop
// through charge, which reaches the budget via the imported helper.
func (t *groupTable) putViaHelper(qc *bdep.QueryCtx, k string) {
	t.charge(qc, k)
	t.order = append(t.order, k)
}

func (t *groupTable) charge(qc *bdep.QueryCtx, k string) {
	bdep.ChargeRows(qc, int64(len(k)))
}

// putImported charges through the cross-package fact alone.
func (t *groupTable) putImported(qc *bdep.QueryCtx, k string, v int) {
	bdep.ChargeRows(qc, 16)
	t.m[k] = append(t.m[k], v)
}

func (t *groupTable) putAnnotated(k string) {
	t.order = append(t.order, k) //verdict:nocharge golden fixture: bounded by plan size
}

// growLocal appends to a local: per-call state, not tracked per-query state.
func growLocal(vals []int) []int {
	out := []int{}
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}
