// Golden cases for the detmaprange analyzer.
package dmr

import "sort"

func flagged(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m has nondeterministic order"
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func conditionalCollectThenSort(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		} else {
			keys = append(keys, "-"+k)
		}
	}
	sort.Strings(keys)
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map m has nondeterministic order"
		keys = append(keys, k)
	}
	return keys
}

func annotated(m map[string]int) int {
	n := 0
	//verdict:unordered commutative sum; order cannot leak
	for _, v := range m {
		n += v
	}
	return n
}

func sliceRangeIsFine(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
