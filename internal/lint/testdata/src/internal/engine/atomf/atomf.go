// Golden cases for the atomicfield analyzer: a field driven through the
// sync/atomic free functions anywhere must be accessed atomically everywhere.
package atomf

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) racyRead() int64 {
	return c.hits // want "plain access to c.hits"
}

func (c *counter) racyWrite() {
	c.hits = 0 // want "plain access to c.hits"
}

// misses is never touched atomically, so plain access is fine.
func (c *counter) miss() {
	c.misses++
}

func newCounter(seed int64) *counter {
	c := &counter{}
	c.hits = seed //verdict:nonatomic pre-publication: c is unshared until returned
	return c
}
