// Golden cases for the lockguard analyzer: fields annotated
// //verdict:guardedby must only be touched with their mutex held, helpers
// annotated //verdict:locked must only be called under the lock, and
// locking a mutex the caller already holds self-deadlocks.
package lguard

import "sync"

type cache struct {
	free    int // unguarded sibling: never flagged
	mu      sync.Mutex
	entries map[string]int //verdict:guardedby mu
}

func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[k]
}

func (c *cache) getRacy(k string) int {
	c.free++
	return c.entries[k] // want "access to c.entries without cache.mu held"
}

func (c *cache) putRacy(k string, v int) {
	c.entries[k] = v // want "write to c.entries without cache.mu held"
}

func (c *cache) unlockTooEarly(k string) {
	c.mu.Lock()
	c.entries[k] = 1
	c.mu.Unlock()
	c.entries[k] = 2 // want "write to c.entries without cache.mu held"
}

func (c *cache) branchLocalLock(k string, fast bool) int {
	if fast {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.entries[k]
	}
	// The branch above locked only its own clone of the lock-set.
	return c.entries[k] // want "access to c.entries without cache.mu held"
}

// putLocked writes an entry; the caller holds c.mu.
//
//verdict:locked mu
func (c *cache) putLocked(k string, v int) {
	c.entries[k] = v
}

func (c *cache) put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, v)
}

func (c *cache) putForgot(k string, v int) {
	c.putLocked(k, v) // want "call to putLocked requires cache.mu held"
}

func (c *cache) reenter(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get(k) // want "get acquires cache.mu, which is already held here"
}

func (c *cache) spawn(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		// A goroutine body runs later, under no inherited locks.
		c.entries[k] = 1 // want "write to c.entries without cache.mu held"
	}()
}

func (c *cache) closureUnderLock(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Synchronous closures inherit the locks held where they are created.
	visit := func() int { return c.entries[k] }
	return visit()
}

func newCache() *cache {
	c := &cache{}
	c.entries = map[string]int{} //verdict:unguarded construction: c is unshared until returned
	return c
}

type index struct {
	mu   sync.RWMutex
	rows []int //verdict:guardedby mu
}

func (ix *index) read(i int) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.rows[i]
}

func (ix *index) upgradeRacy(i, v int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.rows[i] = v // want "write to ix.rows requires index.mu held exclusively"
}

func (ix *index) write(i, v int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.rows[i] = v
}

type snap struct {
	mu   sync.Mutex
	head *int //verdict:guardedby mu:write reads are lock-free pointer loads
}

// peek reads without the lock: fine under the write-only contract.
func (s *snap) peek() int { return *s.head }

func (s *snap) swapRacy(p *int) {
	s.head = p // want "write to s.head without snap.mu held"
}

func (s *snap) swap(p *int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.head = p
}

type broken struct {
	//verdict:guardedby missing
	data int // want "verdict:guardedby missing does not name a sync.Mutex/RWMutex field"
}

func use(b *broken) int { return b.data }
