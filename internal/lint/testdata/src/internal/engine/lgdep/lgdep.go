// Dependency fixture for the lockguard cross-package test: the guarded-field
// and lock-contract facts exported here must survive the gob round trip and
// bind access sites in internal/engine/lguardx. This package itself is
// clean — every diagnostic the test expects fires in the dependent.
package lgdep

import "sync"

// Registry is a shared name→id map guarded by Mu.
type Registry struct {
	Mu    sync.Mutex
	Items map[string]int //verdict:guardedby Mu
}

// PutLocked stores an entry; the caller holds Mu.
//
//verdict:locked Mu
func (r *Registry) PutLocked(k string, v int) {
	r.Items[k] = v
}

// Put stores an entry under the lock.
func (r *Registry) Put(k string, v int) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	r.Items[k] = v
}
