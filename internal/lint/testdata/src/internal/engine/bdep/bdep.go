// Dependency fixture for the budgetcharge cross-package test: ChargeRows
// reaches the memGauge.add primitive, so its charges fact — carried across
// the package boundary — lets growth sites in internal/engine/bcharge pass
// without a charge of their own.
package bdep

type memGauge struct{ used int64 }

func (g *memGauge) add(n int64) { g.used += n }

// QueryCtx is a minimal mirror of the engine's per-query budget handle.
type QueryCtx struct{ gauge memGauge }

// ChargeRows charges n estimated bytes against the query budget.
func ChargeRows(qc *QueryCtx, n int64) {
	qc.gauge.add(n)
}
