// Golden cases for the ctxpoll analyzer: row/chunk-scale loops must reach
// the lifecycle poll hooks at depth one.
package cpoll

// Minimal mirrors of the engine's execution types: ctxpoll keys on the
// type names (chunk, entry, Value) and the hook names (tick, pollAbort).
type Value any

type chunk struct {
	n    int
	data [][]Value
}

func (c *chunk) rows() [][]Value { return c.data }

type entry struct{ row []Value }

type queryCtx struct{}

func (qc *queryCtx) tick() error      { return nil }
func (qc *queryCtx) pollAbort() error { return nil }

func use(v any) {}

func pollingChunkLoop(qc *queryCtx, chunks []*chunk) error {
	for _, ch := range chunks {
		if err := qc.pollAbort(); err != nil {
			return err
		}
		use(ch)
	}
	return nil
}

func unpolledChunkLoop(chunks []*chunk) {
	for _, ch := range chunks { // want "never calls the lifecycle poll hooks"
		use(ch)
	}
}

func unpolledRowLoop(rows [][]Value) {
	for _, r := range rows { // want "never calls the lifecycle poll hooks"
		use(r)
	}
}

func unpolledEntryLoop(entries []*entry) {
	for _, en := range entries { // want "never calls the lifecycle poll hooks"
		use(en)
	}
}

// tickingHelper calls a hook directly, so loops calling it poll at depth
// one.
func tickingHelper(qc *queryCtx, r []Value) error {
	if err := qc.tick(); err != nil {
		return err
	}
	use(r)
	return nil
}

func loopViaHelper(qc *queryCtx, rows [][]Value) error {
	for _, r := range rows {
		if err := tickingHelper(qc, r); err != nil {
			return err
		}
	}
	return nil
}

// deepHelper only reaches a hook two calls down; that is too far — the
// hooks belong at (or one call from) the loop.
func deepHelper(qc *queryCtx, r []Value) error { return tickingHelper(qc, r) }

func loopViaDeepHelper(qc *queryCtx, rows [][]Value) error {
	for _, r := range rows { // want "never calls the lifecycle poll hooks"
		if err := deepHelper(qc, r); err != nil {
			return err
		}
	}
	return nil
}

// A local closure that ticks directly counts as a depth-one hook.
func loopViaClosure(qc *queryCtx, rows [][]Value) error {
	probe := func(r []Value) error {
		if err := qc.tick(); err != nil {
			return err
		}
		use(r)
		return nil
	}
	for _, r := range rows {
		if err := probe(r); err != nil {
			return err
		}
	}
	return nil
}

// Ranging over one chunk's rows is chunk-bounded: the caller polls per
// chunk.
func chunkBounded(ch *chunk) {
	for _, r := range ch.rows() {
		use(r)
	}
}

// O(1)-per-element bookkeeping needs no poll.
func trivialLoop(chunks []*chunk) int {
	n := 0
	for _, ch := range chunks {
		n += ch.n
	}
	return n
}

func annotatedLoop(chunks []*chunk) {
	//verdict:nopoll golden fixture: bounded input by construction
	for _, ch := range chunks {
		use(ch)
	}
}
