package cpoll

import "context"

type engine struct{}

func (e *engine) QueryContext(ctx context.Context, sql string) (int, error) {
	_ = ctx
	_ = sql
	return 0, nil
}

// A context-free delegation shim — body is a single return — is the
// documented home for context.Background().
func (e *engine) Query(sql string) (int, error) {
	return e.QueryContext(context.Background(), sql)
}

func (e *engine) sneakyBackground(sql string) (int, error) {
	n, err := e.QueryContext(context.Background(), sql) // want "outside a top-level delegation shim"
	return n + 1, err
}

func (e *engine) annotatedBackground(sql string) (int, error) {
	n, err := e.QueryContext(context.Background(), sql) //verdict:ctx-shim golden fixture: documented exception
	return n + 1, err
}

func stray() context.Context {
	ctx := context.TODO() // want "outside a top-level delegation shim"
	return ctx
}
