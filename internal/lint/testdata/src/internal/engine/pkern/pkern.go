// Golden cases for the purekernel analyzer.
package pkern

import (
	"math/rand"
	"time"
)

// Minimal mirrors of the engine's kernel types: purekernel keys on the
// compiledExpr shape func([]Value) (Value, error) and on eval methods
// returning (*vec, error).
type Value any

type vec struct{ i64 []int64 }

type vecCtx struct{}

type chunk struct{ n int }

type compiledExpr func(row []Value) (Value, error)

// compileNow closes over a wall-clock read taken per row — run-dependent
// output.
func compileNow() compiledExpr {
	return func(row []Value) (Value, error) {
		return time.Now().Unix(), nil // want "time.Now inside a compiled closure"
	}
}

// compileCapturedClock reads the clock once at compile time and closes over
// the value: deterministic per query.
func compileCapturedClock() compiledExpr {
	now := time.Now().Unix()
	return func(row []Value) (Value, error) {
		return now, nil
	}
}

func compileRand() compiledExpr {
	return func(row []Value) (Value, error) {
		return rand.Int63(), nil // want "global rand.Int63 inside a compiled closure"
	}
}

func compileSeededRand(src *rand.Rand) compiledExpr {
	return func(row []Value) (Value, error) {
		return src.Int63(), nil
	}
}

func compileMapRange(weights map[string]int64) compiledExpr {
	return func(row []Value) (Value, error) {
		var sum int64
		for _, w := range weights { // want "map iteration inside a compiled closure"
			sum += w
		}
		return sum, nil
	}
}

func compileAnnotated(weights map[string]int64) compiledExpr {
	return func(row []Value) (Value, error) {
		var sum int64
		//verdict:impure golden fixture: commutative sum, order cannot leak
		for _, w := range weights {
			sum += w
		}
		return sum, nil
	}
}

type vnClock struct{}

func (n *vnClock) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	out := &vec{i64: make([]int64, ch.n)}
	for i := range out.i64 {
		out.i64[i] = time.Now().UnixNano() // want "time.Now inside a vector kernel"
	}
	return out, nil
}

type vnPure struct{}

func (n *vnPure) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	out := &vec{i64: make([]int64, ch.n)}
	for i := range out.i64 {
		out.i64[i] = int64(i)
	}
	return out, nil
}

// helperLoop is not a kernel (wrong shape): map iteration here is
// detmaprange's business, not purekernel's.
func helperLoop(weights map[string]int64) int64 {
	var sum int64
	//verdict:unordered commutative sum
	for _, w := range weights {
		sum += w
	}
	return sum
}
