// Golden cases for the errwrapis analyzer.
package ewrap

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBudget is a package-level sentinel, like engine.ErrMemoryBudget.
var ErrBudget = errors.New("budget exceeded")

func work() error { return ErrBudget }

func identityCompare() bool {
	err := work()
	return err == ErrBudget // want "comparing errors with =="
}

func identityCompareFlipped() bool {
	err := work()
	return ErrBudget != err // want "comparing errors with !="
}

func errorsIsIsFine() bool {
	err := work()
	return errors.Is(err, ErrBudget)
}

func nilCompareIsFine() bool {
	err := work()
	return err == nil
}

func annotatedCompare() bool {
	err := work()
	//verdict:errstr golden fixture: documented exception
	return err == ErrBudget
}

func lossyWrap() error {
	return fmt.Errorf("query failed: %v", ErrBudget) // want "without %w"
}

func properWrap() error {
	return fmt.Errorf("query failed: %w", ErrBudget)
}

func nonSentinelFormat(n int) error {
	return fmt.Errorf("query failed: %d", n)
}

func stringProbe() bool {
	err := work()
	return strings.Contains(err.Error(), "budget") // want "probes error text instead of identity"
}

func prefixProbe() bool {
	err := work()
	return strings.HasPrefix(err.Error(), "budget") // want "probes error text instead of identity"
}

func annotatedProbe() bool {
	err := work()
	//verdict:errstr golden fixture: no sentinel taxonomy for this error
	return strings.Contains(err.Error(), "budget")
}

func ordinaryContains(s string) bool {
	return strings.Contains(s, "budget")
}
