// Dependent fixture for the atomicfield cross-package test: Gauge.N is
// atomic per the fact imported from internal/engine/atomdep; nothing in
// this package uses sync/atomic on it first.
package atomfx

import (
	"sync/atomic"

	"internal/engine/atomdep"
)

func racy(g *atomdep.Gauge) int64 {
	return g.N // want "plain access to g.N"
}

func safe(g *atomdep.Gauge) int64 {
	return atomic.LoadInt64(&g.N)
}
