// Golden cases for the mergecomplete analyzer.
package mcomp

import "fmt"

type Value any

type accumulator interface {
	add(v Value) error
	addStar()
	result() Value
	merge(other accumulator) error
}

// complete implements the full core contract plus a matched typed pair.
type complete struct{ n int64 }

func (a *complete) add(v Value) error              { a.n++; return nil }
func (a *complete) addStar()                       { a.n++ }
func (a *complete) result() Value                  { return a.n }
func (a *complete) merge(other accumulator) error  { return nil }
func (a *complete) addInt(v int64)                 { a.n++ }
func (a *complete) addFloat(v float64)             { a.n++ }

// mergeless looks like an accumulator but cannot combine worker partials.
type mergeless struct{ n int64 } // want "missing \{merge\}"

func (a *mergeless) add(v Value) error { a.n++; return nil }
func (a *mergeless) addStar()          { a.n++ }
func (a *mergeless) result() Value     { return a.n }

// halfTyped implements only one of the typed fast-path pair.
type halfTyped struct{ n int64 } // want "implements addInt but not addFloat"

func (a *halfTyped) add(v Value) error             { a.n++; return nil }
func (a *halfTyped) addStar()                      { a.n++ }
func (a *halfTyped) result() Value                 { return a.n }
func (a *halfTyped) merge(other accumulator) error { return nil }
func (a *halfTyped) addInt(v int64)                { a.n += v }

// strOnly has a string lane the dispatcher will never consult.
type strOnly struct{ s []string }

func (a *strOnly) add(v Value) error             { return nil }
func (a *strOnly) addStar()                      {}
func (a *strOnly) result() Value                 { return len(a.s) }
func (a *strOnly) merge(other accumulator) error { return nil }
func (a *strOnly) addStr(v string)               { a.s = append(a.s, v) } // want "implements addStr without the numeric pair"

// badShape pairs the typed adders but with the wrong parameter type.
type badShape struct{ n int64 }

func (a *badShape) add(v Value) error             { a.n++; return nil }
func (a *badShape) addStar()                      { a.n++ }
func (a *badShape) result() Value                 { return a.n }
func (a *badShape) merge(other accumulator) error { return nil }
func (a *badShape) addInt(v int) { a.n += int64(v) } // want "addInt must have shape addInt\(int64\)"
func (a *badShape) addFloat(v float64)            { a.n++ }

// badMerge takes no argument, so partials cannot flow in.
type badMerge struct{ n int64 }

func (a *badMerge) add(v Value) error { a.n++; return nil }
func (a *badMerge) addStar()          { a.n++ }
func (a *badMerge) result() Value     { return a.n }
func (a *badMerge) merge() error      { return nil } // want "merge must have shape merge\(other\) error"

// answerMerger has an add with a completely different contract — it is not
// an accumulator and must not be flagged.
type answerMerger struct{ rows map[string][]Value }

func (m *answerMerger) add(rows [][]Value, cols []string) { _ = rows; _ = cols }
func (m *answerMerger) result() ([][]Value, error)        { return nil, fmt.Errorf("empty") }
