//go:build !faultinject

// Package badfaultpoint drifts its build-tag twin on purpose: Enabled is
// missing here, Hit's signature differs, and PanicValue exists only here.
package badfaultpoint // want "func Enabled exists in faultpoint_on.go but not in faultpoint_off.go" "Hit declared as func\(string\) \(error\) in faultpoint_off.go but func\(string\) \(\) in faultpoint_on.go" "type PanicValue exists in faultpoint_off.go but not in faultpoint_on.go"

// PanicValue has no twin in the faultinject build.
type PanicValue struct{ Site string }

// Hit returns an error here but not in the faultinject build.
func Hit(site string) error { _ = site; return nil }
