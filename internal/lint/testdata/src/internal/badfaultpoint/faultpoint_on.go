//go:build faultinject

package badfaultpoint

// Enabled has no twin in the default build.
func Enabled() bool { return true }

// Hit drops the error return its twin declares.
func Hit(site string) { _ = site }
