package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "internal/engine/atomf", lint.AtomicField)
}

// TestAtomicFieldCrossPackage proves the atomic-use fact crosses the
// package boundary: internal/engine/atomfx never uses sync/atomic on
// Gauge.N itself, so its plain access can only be flagged via the fact
// imported from internal/engine/atomdep.
func TestAtomicFieldCrossPackage(t *testing.T) {
	linttest.Run(t, "internal/engine/atomfx", lint.AtomicField)
}
