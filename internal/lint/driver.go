package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
)

// This file implements the `go vet -vettool` driver protocol (the same
// contract golang.org/x/tools/go/analysis/unitchecker speaks, rebuilt on the
// standard library): the go command invokes the tool once per package with a
// JSON .cfg file naming the source files and the export data of every
// dependency, and expects
//
//   - `tool -V=full`  → a reproducible version line (build cache key)
//   - `tool -flags`   → a JSON description of supported flags
//   - `tool pkg.cfg`  → diagnostics on stderr, non-zero exit when any fired,
//     and a .vetx output file so the go command can cache the run.
//
// The .vetx files carry the suite's cross-package facts (facts.go): before
// analyzing a package the driver decodes the .vetx of every dependency the
// go command staged (vetConfig.PackageVetx), and afterwards it re-encodes
// the union of imported and newly exported facts, so facts reach transitive
// dependents even though the go command stages direct dependencies only.
//
// Invoked with package patterns instead of a .cfg file, the driver re-execs
// itself through `go vet -vettool=<self>`, so `verdictlint ./...` works
// standalone with identical semantics.

// vetConfig mirrors the fields of the go command's vet config that the
// driver consumes. Unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string // dependency import path → .vetx fact file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/verdictlint.
func Main(analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("verdictlint: ")
	registerFactTypes(analyzers)

	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "verdictlint: verdictdb's invariant checkers\n\n")
		fmt.Fprintf(os.Stderr, "usage: verdictlint [packages...]   # standalone, runs go vet -vettool\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which verdictlint) [packages...]\n\nrules:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *printFlags {
		// The go command asks for the flag inventory up front so it can
		// forward user-supplied analyzer flags.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{a.Name, true, a.Doc})
		}
		data, err := json.Marshal(out)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) == 1 && filepath.Ext(args[0]) == ".cfg" {
		var active []*Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				active = append(active, a)
			}
		}
		runConfig(args[0], active)
		return
	}

	// Standalone: delegate to go vet so package loading, build tags, and
	// test variants match the real build exactly.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(err)
	}
}

// versionFlag implements -V=full: the go command hashes the output into its
// action cache key, so it must identify this exact binary.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(self)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel buildID=%02x\n", self, h.Sum(nil))
	os.Exit(0)
	return nil
}

// goMinorVersion trims a toolchain version like "go1.24.0" to the
// major.minor form go/types accepts.
var goMinorVersion = regexp.MustCompile(`^go\d+\.\d+`)

// runConfig analyzes the single package described by cfgFile and exits.
func runConfig(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}

	facts := newFactSet()
	if err := importDepFacts(facts, cfg); err != nil {
		log.Fatalf("decoding dependency facts for %s: %v", cfg.ImportPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	parseFailed := false
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			parseFailed = true
			break
		}
		files = append(files, f)
	}

	var pkg *types.Package
	info := newInfo()
	if !parseFailed {
		pkg, err = typecheck(fset, files, info, cfg)
	}
	if parseFailed || err != nil {
		// The go command sets SucceedOnTypecheckFailure when the compiler
		// itself will report the errors; duplicate noise helps nobody.
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg, facts)
			os.Exit(0)
		}
		log.Fatalf("typechecking %s failed: %v", cfg.ImportPath, err)
	}

	diags := runAnalyzers(analyzers, &Pass{
		Fset:         fset,
		Files:        files,
		Pkg:          pkg,
		Info:         info,
		Module:       cfg.ModulePath,
		IgnoredFiles: cfg.IgnoredFiles,
		facts:        facts,
	})

	writeVetx(cfg, facts)
	if cfg.VetxOnly || len(diags) == 0 {
		os.Exit(0)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s\n", relativize(pos), d.Message)
	}
	os.Exit(2)
}

// importDepFacts decodes every dependency .vetx the go command staged into
// the run's fact set. Deterministic order: later decodes overwrite earlier
// slots, and while distinct packages cannot collide on a fact key, sorting
// keeps the run reproducible byte-for-byte regardless.
func importDepFacts(facts *factSet, cfg *vetConfig) error {
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			// A missing dependency vetx means the dep was built by a tool
			// without facts (or never analyzed); treat as fact-free.
			continue
		}
		if err := facts.decodeInto(data); err != nil {
			return fmt.Errorf("%s: %w", cfg.PackageVetx[p], err)
		}
	}
	return nil
}

// runAnalyzers runs every analyzer over the pass and returns the combined
// diagnostics in file/position order. Each analyzer runs with its own fact
// namespace installed on the shared pass.
func runAnalyzers(analyzers []*Analyzer, pass *Pass) []Diagnostic {
	var diags []Diagnostic
	pass.Report = func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		pass.analyzer = a.Name
		if err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// newInfo allocates a types.Info with every map analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// typecheck type-checks the package against the export data the go command
// staged for its dependencies.
func typecheck(fset *token.FileSet, files []*ast.File, info *types.Info, cfg *vetConfig) (*types.Package, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: goMinorVersion.FindString(cfg.GoVersion),
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	return tc.Check(cfg.ImportPath, fset, files, info)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// writeVetx emits the analysis output the go command caches for dependency
// runs: the gob-encoded union of imported and newly exported facts (see
// facts.go). Written even when no facts exist — an empty fact file is what
// dependents expect to find.
func writeVetx(cfg *vetConfig, facts *factSet) {
	if cfg.VetxOutput == "" {
		return
	}
	var data []byte
	if facts != nil && len(facts.m) > 0 {
		var err error
		if data, err = facts.encode(); err != nil {
			log.Fatalf("encoding facts for %s: %v", cfg.ImportPath, err)
		}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

// relativize shortens an absolute diagnostic position to the working
// directory when possible, matching go vet's own output style.
func relativize(pos token.Position) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !filepath.IsAbs(rel) && rel[0] != '.' {
			pos.Filename = rel
		}
	}
	return pos.String()
}
