package lint

import (
	"go/ast"
	"go/types"
)

// PureKernel keeps the hot paths deterministic: a compiled row closure or a
// vector kernel runs millions of times, interleaved across morsel workers,
// and its output must be a pure function of its inputs or byte-identical
// answers at any parallelism are gone. Inside kernel bodies this analyzer
// bans:
//
//   - time.Now / time.Since — wall-clock reads make output run-dependent;
//     capture timestamps once at query setup and close over the value
//   - global math/rand functions — the shared source is both nondeterministic
//     and lock-contended; seeded per-query sources passed in are fine
//   - `for range` over a map — iteration order varies per execution
//
// Kernel bodies are recognized structurally: function literals with the
// compiledExpr shape func(row []Value) (Value, error), and eval methods with
// the vector-node shape returning (*vec, error). Suppress a finding with
// //verdict:impure <why>.
var PureKernel = &Analyzer{
	Name: "purekernel",
	Doc:  "no wall-clock, global rand, or map iteration inside compiled closures and vector kernels (suppress: //verdict:impure)",
	Run:  runPureKernel,
}

func runPureKernel(pass *Pass) error {
	if !pass.PathIn("internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if sig, ok := pass.Info.TypeOf(x).(*types.Signature); ok && isCompiledExprSig(sig) {
					checkKernelBody(pass, x.Body, "compiled closure")
					return false // inner literals are checked as part of this body
				}
			case *ast.FuncDecl:
				if x.Recv != nil && x.Name.Name == "eval" && x.Body != nil {
					if fn, ok := pass.Info.Defs[x.Name].(*types.Func); ok && isVecKernelSig(fn.Type().(*types.Signature)) {
						checkKernelBody(pass, x.Body, "vector kernel")
						return false
					}
				}
			}
			return true
		})
	}
	return nil
}

// isCompiledExprSig matches func(row []Value) (Value, error).
func isCompiledExprSig(sig *types.Signature) bool {
	if sig.Recv() != nil || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	if !isValueRow(sig.Params().At(0).Type()) {
		return false
	}
	return isNamed(sig.Results().At(0).Type(), "Value") && implementsError(sig.Results().At(1).Type())
}

// isVecKernelSig matches the vnode eval shape: results (*vec, error).
func isVecKernelSig(sig *types.Signature) bool {
	if sig.Results().Len() != 2 {
		return false
	}
	res0, ok := sig.Results().At(0).Type().(*types.Pointer)
	return ok && isNamed(res0, "vec") && implementsError(sig.Results().At(1).Type())
}

func checkKernelBody(pass *Pass, body *ast.BlockStmt, kind string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "impure",
						"map iteration inside a %s is order-nondeterministic per execution; iterate sorted keys or annotate //verdict:impure with why order cannot leak", kind)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(x.Pos(), "impure",
						"time.%s inside a %s makes output run-dependent; capture the clock once at query setup and close over the value", fn.Name(), kind)
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(x.Pos(), "impure",
						"global %s.%s inside a %s is nondeterministic and contended; thread a per-query seeded source instead", fn.Pkg().Name(), fn.Name(), kind)
				}
			}
		}
		return true
	})
}
