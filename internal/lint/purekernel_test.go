package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestPureKernel(t *testing.T) {
	linttest.Run(t, "internal/engine/pkern", lint.PureKernel)
}
