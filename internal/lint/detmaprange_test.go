package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestDetMapRange(t *testing.T) {
	linttest.Run(t, "internal/engine/dmr", lint.DetMapRange)
}
