package lint

import (
	"go/ast"
	"go/types"
)

// BudgetCharge enforces the memory-accounting contract of the engine's
// query budget (queryCtx.chargeMem / memGauge.add): any function on the
// engine's execution paths that grows per-query state without bound —
// appending to struct-field slices, inserting into maps, growing map- or
// slice-element buckets — must account for that growth against the budget,
// either by charging in-function or by calling a helper that (transitively)
// charges. Otherwise a hostile or merely large query blows past
// vd_mem_budget silently, which defeats the reason the budget exists:
// ErrMemoryBudget instead of the OOM killer.
//
// "Charges" is a transitive property: a local fixpoint propagates it
// through same-package call chains, and the chargesFnFact exports it into
// the .vetx file so helpers charging in one package satisfy growth sites
// in another. Growth that is genuinely bounded (fixed-size ring, value
// overwritten in place, state charged by the single caller) is annotated
// //verdict:nocharge <why>.
var BudgetCharge = &Analyzer{
	Name:      "budgetcharge",
	Doc:       "unbounded growth on engine exec paths must charge the query memory budget, directly or via a charging helper (suppress: //verdict:nocharge)",
	Run:       runBudgetCharge,
	FactTypes: []Fact{(*chargesFnFact)(nil)},
}

// chargesFnFact marks a function that charges the query memory budget,
// directly or through its callees.
type chargesFnFact struct{}

func (*chargesFnFact) AFact() {}

func runBudgetCharge(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	// The budget contract binds the engine's execution paths; other
	// packages charge through engine entry points or not at all.
	if !pass.PathIn("internal/engine") {
		return nil
	}

	// Collect package function declarations.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Seed: functions that charge directly (or via an imported helper whose
	// fact says it charges), plus the local call graph for the fixpoint.
	charges := map[*types.Func]bool{}
	callees := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil {
				return true
			}
			if isChargePrimitive(callee) {
				charges[fn] = true
				return true
			}
			if _, local := decls[callee]; local {
				callees[fn] = append(callees[fn], callee)
			} else if pass.ImportObjectFact(callee, new(chargesFnFact)) {
				charges[fn] = true
			}
			return true
		})
	}

	// Fixpoint: charging propagates caller-ward through local calls.
	for changed := true; changed; {
		changed = false
		for fn := range decls {
			if charges[fn] {
				continue
			}
			for _, c := range callees[fn] {
				if charges[c] {
					charges[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn := range charges {
		pass.ExportObjectFact(fn, &chargesFnFact{})
	}

	// Every growth site inside a non-charging function is unaccounted.
	for fn, fd := range decls {
		if charges[fn] || pass.isTestFile(fd.Pos()) {
			continue
		}
		fnName := fd.Name.Name
		// Closure bodies are walked as part of the enclosing declaration:
		// they share its (non-)charging verdict.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			site := growthSite(pass, as)
			if site == "" {
				return true
			}
			pass.Reportf(as.Pos(), "nocharge",
				"%s in %s grows per-query state but no call path from this function reaches qc.chargeMem/memGauge.add; charge the estimated bytes or annotate //verdict:nocharge with why growth is bounded",
				site, fnName)
			return true
		})
	}
	return nil
}

// isChargePrimitive reports whether fn is one of the budget's charging
// entry points: queryCtx.chargeMem or memGauge.add.
func isChargePrimitive(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOrPointee(sig.Recv().Type())
	if recv == nil {
		return false
	}
	switch {
	case fn.Name() == "chargeMem" && recv.Obj().Name() == "queryCtx":
		return true
	case fn.Name() == "add" && recv.Obj().Name() == "memGauge":
		return true
	}
	return false
}

// growthSite classifies an assignment as unbounded per-query growth and
// returns a short description, or "" if it is not one. Recognized shapes:
//
//	x.f = append(x.f, ...)   struct state grows per row
//	m[k] = append(m[k], ...) map/slice bucket grows per row
//	x.f[k] = v               field map gains a key per distinct value
func growthSite(pass *Pass, as *ast.AssignStmt) string {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return ""
	}
	lhs := ast.Unparen(as.Lhs[0])
	rhs := ast.Unparen(as.Rhs[0])

	if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if fv := fieldOf(pass, l); fv != nil {
				return "append to field " + exprString(pass, l)
			}
		case *ast.IndexExpr:
			return "append into element " + exprString(pass, l)
		}
		return ""
	}

	// Map insert through a field: x.f[k] = v.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := pass.Info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok && fieldOf(pass, sel) != nil {
					return "insert into field map " + exprString(pass, sel)
				}
			}
		}
	}
	return ""
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
