package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestMergeComplete(t *testing.T) {
	linttest.Run(t, "internal/engine/mcomp", lint.MergeComplete)
}
