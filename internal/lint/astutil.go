package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// walkPath is ast.Inspect with the ancestor chain: fn receives each node and
// the path of enclosing nodes (outermost first, excluding n itself).
// Returning false skips the subtree.
func walkPath(root ast.Node, fn func(n ast.Node, path []ast.Node) bool) {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		if !fn(n, path) {
			// ast.Inspect still sends the matching nil pop only when we
			// descend, so balance the stack by not pushing.
			return false
		}
		path = append(path, n)
		return true
	})
}

// containsNode reports whether needle appears within root.
func containsNode(root, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a (short) expression for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "?"
	}
	s := buf.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// calleeFunc resolves a call to its static *types.Func (package function or
// concrete/interface method), or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedOrPointee unwraps one pointer level and returns the *types.Named
// beneath, or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// methodOf returns the method with the given name on t (through a pointer
// receiver), or nil. pkg is needed so unexported names resolve.
func methodOf(t types.Type, pkg *types.Package, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pkg, name)
	fn, _ := obj.(*types.Func)
	return fn
}
