package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// This file implements the cross-package facts side of the unitchecker
// protocol (the analogue of golang.org/x/tools/go/analysis facts plus
// internal/facts serialization, rebuilt on the standard library): an
// analyzer running on package P can attach a Fact to one of P's objects —
// a function, type, method, or struct field — and the driver gob-encodes
// every fact into P's .vetx output file. When a dependent package Q is
// analyzed, the go command hands the driver the .vetx files of Q's
// dependencies (vetConfig.PackageVetx); the driver decodes them and the
// same analyzer can query facts about imported objects through
// Pass.ImportObjectFact. Facts are namespaced per analyzer and per concrete
// fact type, exactly like x/tools, so analyzers cannot observe each other's
// facts.
//
// Object naming: x/tools uses golang.org/x/tools/go/types/objectpath to
// name objects across export-data boundaries. verdictlint's analyzers only
// attach facts to package-level functions, types, methods, and struct
// fields of package-level named types, so a much simpler two-segment key
// suffices:
//
//	"Name"        package-scope object (func, var, type)
//	"Type.Member" method of Type, or field of Type's struct underlying
//
// Keys resolve identically on both sides of the boundary because export
// data preserves struct fields and method sets byte-for-byte.

// Fact is analyzer-derived knowledge about an object, serialized into the
// package's .vetx file and visible when dependent packages are analyzed.
// Implementations must be gob-encodable pointer types, registered via the
// Analyzer.FactTypes list.
type Fact interface{ AFact() }

// gobFact is the wire form of one fact in a .vetx file.
type gobFact struct {
	Analyzer string // namespacing analyzer name
	PkgPath  string // package of the object the fact is about
	ObjKey   string // object key within the package ("" = package fact)
	Fact     Fact
}

// factKey identifies one fact slot: analyzer x object x concrete fact type.
type factKey struct {
	analyzer string
	pkgPath  string
	objKey   string
	factType string
}

// factSet is the fact store for one package's analysis run: everything
// decoded from dependency .vetx files plus everything exported while
// analyzing the package itself. The final .vetx re-exports the union, so
// facts flow transitively even when the go command stages only direct
// dependencies.
type factSet struct {
	m map[factKey]Fact
}

func newFactSet() *factSet { return &factSet{m: map[factKey]Fact{}} }

func factTypeName(f Fact) string { return reflect.TypeOf(f).String() }

// add records one fact, overwriting any previous fact of the same slot.
func (fs *factSet) add(analyzer, pkgPath, objKey string, f Fact) {
	fs.m[factKey{analyzer, pkgPath, objKey, factTypeName(f)}] = f
}

// get copies the fact of ptr's concrete type for the given slot into *ptr
// and reports whether one was found.
func (fs *factSet) get(analyzer, pkgPath, objKey string, ptr Fact) bool {
	f, ok := fs.m[factKey{analyzer, pkgPath, objKey, factTypeName(ptr)}]
	if !ok {
		return false
	}
	pv := reflect.ValueOf(ptr)
	if pv.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: ImportObjectFact got non-pointer fact %T", ptr))
	}
	pv.Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// encode serializes the set deterministically (sorted by key, so .vetx
// bytes are reproducible and cache-friendly).
func (fs *factSet) encode() ([]byte, error) {
	keys := make([]factKey, 0, len(fs.m))
	for k := range fs.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.pkgPath != b.pkgPath {
			return a.pkgPath < b.pkgPath
		}
		if a.objKey != b.objKey {
			return a.objKey < b.objKey
		}
		return a.factType < b.factType
	})
	out := make([]gobFact, 0, len(keys))
	for _, k := range keys {
		out = append(out, gobFact{Analyzer: k.analyzer, PkgPath: k.pkgPath, ObjKey: k.objKey, Fact: fs.m[k]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeInto merges the facts serialized in data (one dependency's .vetx)
// into the set. Empty input is a valid empty fact file.
func (fs *factSet) decodeInto(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return err
	}
	for _, gf := range in {
		if gf.Fact == nil {
			continue
		}
		fs.add(gf.Analyzer, gf.PkgPath, gf.ObjKey, gf.Fact)
	}
	return nil
}

// registerFactTypes registers every analyzer's fact types with gob so the
// interface-typed Fact fields round-trip. Safe to call more than once per
// process for distinct analyzer lists; duplicate concrete types would
// panic inside gob, which is the bug we want loud.
func registerFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// objFactKey returns the stable cross-package key for obj ("Name" or
// "Type.Member"), or ok=false for objects facts cannot name (locals,
// builtins, fields of anonymous types).
func objFactKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	scope := obj.Pkg().Scope()
	if scope.Lookup(obj.Name()) == obj {
		return obj.Name(), true
	}
	// Method: the receiver's named type provides the first segment.
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if n := namedOrPointee(recv.Type()); n != nil {
				return n.Obj().Name() + "." + fn.Name(), true
			}
		}
		return "", false
	}
	// Struct field: scan the package scope for the named type owning it.
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return name + "." + v.Name(), true
				}
			}
		}
	}
	return "", false
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis; it becomes visible to this analyzer in every dependent
// package via ImportObjectFact. Facts on objects outside the current
// package are silently dropped (matching x/tools, which panics — but a
// lint driver should not die on an analyzer bug in a foreign tree).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key, ok := objFactKey(obj)
	if !ok {
		return
	}
	p.facts.add(p.analyzer, obj.Pkg().Path(), key, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type previously
// exported for obj — by this analyzer, in this package or any dependency —
// into *ptr, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := objFactKey(obj)
	if !ok {
		return false
	}
	return p.facts.get(p.analyzer, obj.Pkg().Path(), key, ptr)
}

// ExportPackageFact attaches a fact to the package under analysis itself.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.add(p.analyzer, p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies the package-level fact of ptr's concrete type
// exported for pkg into *ptr, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.get(p.analyzer, pkg.Path(), "", ptr)
}

// AllObjectFacts returns every (pkgPath, objKey) pair carrying a fact of
// ptr's concrete type for this analyzer — the discovery side of the fact
// API (e.g. "which imported fields are atomic?"). The result is sorted.
func (p *Pass) AllObjectFacts(ptr Fact) []FactRef {
	if p.facts == nil {
		return nil
	}
	ft := factTypeName(ptr)
	var out []FactRef
	for k := range p.facts.m {
		if k.analyzer == p.analyzer && k.factType == ft && k.objKey != "" {
			out = append(out, FactRef{PkgPath: k.pkgPath, ObjKey: k.objKey})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		return out[i].ObjKey < out[j].ObjKey
	})
	return out
}

// FactCarrier is the linttest harness's handle on a fact set, letting it
// replay the driver's cross-package flow (run dependency → serialize →
// deserialize → run dependent) without exporting the Pass internals.
type FactCarrier struct{ fs *factSet }

// NewFactCarrier registers the analyzers' fact types with gob and returns
// an empty carrier.
func NewFactCarrier(analyzers []*Analyzer) *FactCarrier {
	registerFactTypes(analyzers)
	return &FactCarrier{fs: newFactSet()}
}

// Install points the pass at the carrier's current fact set, namespaced to
// the named analyzer.
func (c *FactCarrier) Install(p *Pass, analyzer string) {
	p.facts = c.fs
	p.analyzer = analyzer
}

// RoundTrip serializes the facts through the .vetx gob encoding and decodes
// them into a fresh set, exactly as a dependent package's driver run would.
// Subsequent Install calls hand out the decoded copy, so a broken encoder,
// decoder, or key scheme surfaces as missing facts in the dependent run.
func (c *FactCarrier) RoundTrip() error {
	data, err := c.fs.encode()
	if err != nil {
		return err
	}
	fresh := newFactSet()
	if err := fresh.decodeInto(data); err != nil {
		return err
	}
	c.fs = fresh
	return nil
}

// FactRef names one object carrying a fact.
type FactRef struct {
	PkgPath string
	ObjKey  string // "Name" or "Type.Member"
}

// String renders the ref for diagnostics.
func (r FactRef) String() string {
	return r.PkgPath + "." + r.ObjKey
}
