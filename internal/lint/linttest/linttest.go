// Package linttest is the golden-file harness for verdictlint analyzers —
// the in-tree analogue of golang.org/x/tools/go/analysis/analysistest
// (which the offline build cannot vendor). Fixture packages live under
// internal/lint/testdata/src/ and mirror real import paths (e.g.
// testdata/src/internal/engine/cpoll), so path-scoped analyzers behave
// identically under the harness and under `go vet -vettool`.
//
// Expectations are `// want "regexp"` comments on the line a diagnostic
// should anchor to; several quoted regexps on one comment expect several
// diagnostics on that line. A diagnostic with no matching expectation, or
// an expectation no diagnostic matched, fails the test — so every golden
// case fails loudly if its analyzer is disabled or its rule regresses.
package linttest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"verdictdb/internal/lint"
)

// Run loads the fixture package at testdata/src/<pkgPath> (relative to the
// calling test's working directory), runs the analyzer over it, and checks
// the diagnostics against the fixture's `// want` expectations.
//
// For analyzers with FactTypes, the harness mirrors the real driver's
// cross-package flow: the analyzer first runs over every fixture dependency
// (in dependency order), the accumulated facts are serialized through the
// same gob encoding the .vetx files use and decoded back — so a fixture
// test fails if fact serialization or import is broken, not just the
// analyzer logic — and `// want` expectations are checked across all
// fixture packages involved.
func Run(t *testing.T, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	ld := &loader{
		fset:   token.NewFileSet(),
		root:   filepath.Join("testdata", "src"),
		pkgs:   map[string]*types.Package{},
		source: importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
	pkg, files, ignored, err := ld.loadFixture(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var diags []lint.Diagnostic
	report := func(d lint.Diagnostic) { diags = append(diags, d) }

	allFiles := files
	var facts *lint.FactCarrier
	if len(a.FactTypes) > 0 {
		facts = lint.NewFactCarrier([]*lint.Analyzer{a})
		// Dependency fixtures finished loading before their dependents
		// (loadFixture registers a package only after its imports resolve),
		// so ld.order is already a valid analysis order.
		for _, dep := range ld.order {
			if dep == pkgPath {
				continue
			}
			pass := &lint.Pass{
				Fset:         ld.fset,
				Files:        ld.files[dep],
				Pkg:          ld.pkgs[dep],
				Info:         ld.infos[dep],
				Module:       "",
				IgnoredFiles: ld.ignored[dep],
				Report:       report,
			}
			facts.Install(pass, a.Name)
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s on dependency %s: %v", a.Name, dep, err)
			}
			// Round-trip through the .vetx wire encoding between packages,
			// exactly as the unitchecker protocol would.
			if err := facts.RoundTrip(); err != nil {
				t.Fatalf("fact round-trip after %s: %v", dep, err)
			}
			allFiles = append(allFiles, ld.files[dep]...)
		}
	}

	pass := &lint.Pass{
		Fset:         ld.fset,
		Files:        files,
		Pkg:          pkg,
		Info:         ld.infos[pkgPath],
		Module:       "", // fixtures are module-agnostic; module-scoped rules stay active
		IgnoredFiles: ignored,
		Report:       report,
	}
	if facts != nil {
		facts.Install(pass, a.Name)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkExpectations(t, ld.fset, allFiles, diags)
}

// expectation is one `// want "re"` entry, keyed by file:line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, q[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// loader typechecks fixture packages, resolving fixture-to-fixture imports
// under testdata/src and everything else from GOROOT source.
type loader struct {
	fset    *token.FileSet
	root    string
	pkgs    map[string]*types.Package
	infos   map[string]*types.Info
	files   map[string][]*ast.File
	ignored map[string][]string
	order   []string // fixture packages in completion (= dependency) order
	source  types.Importer
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(ld.root, path); dirExists(dir) {
		pkg, _, _, err := ld.loadFixture(path)
		return pkg, err
	}
	return ld.source.Import(path)
}

func (ld *loader) loadFixture(pkgPath string) (*types.Package, []*ast.File, []string, error) {
	dir := filepath.Join(ld.root, pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	var ignored []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		// Honor build constraints the same way the go command does, so
		// tagged fixture twins (faultpoint_on.go) land in IgnoredFiles.
		if ok, merr := build.Default.MatchFile(dir, name); merr != nil {
			return nil, nil, nil, merr
		} else if !ok {
			ignored = append(ignored, filepath.Join(dir, name))
			continue
		}
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	if ld.infos == nil {
		ld.infos = map[string]*types.Info{}
	}
	ld.infos[pkgPath] = info
	tc := &types.Config{Importer: ld}
	pkg, err := tc.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typecheck: %w", err)
	}
	ld.pkgs[pkgPath] = pkg
	if ld.files == nil {
		ld.files = map[string][]*ast.File{}
		ld.ignored = map[string][]string{}
	}
	ld.files[pkgPath] = files
	ld.ignored[pkgPath] = ignored
	ld.order = append(ld.order, pkgPath)
	return pkg, files, ignored, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
