// Package lint is verdictdb's in-tree static-analysis suite: a small
// go/analysis-style framework (the container build has no network access to
// golang.org/x/tools, so the driver and pass plumbing are implemented on the
// standard library alone) plus the repo-contract analyzers that keep the
// engine's determinism, lifecycle, and error guarantees refactor-proof.
//
// The analyzers encode invariants the paper-level guarantees depend on —
// byte-identical answers at any parallelism, unbiased partial answers,
// ctx-polled and budget-charged execution — as compiler-checked rules:
//
//   - detmaprange: no map iteration in order-sensitive engine/core code
//   - ctxpoll: chunk/row loops poll the lifecycle hooks; no stray
//     context.Background outside delegation shims
//   - mergecomplete: accumulator implementations are complete (merge plus
//     matched typed entry points)
//   - errwrapis: sentinels wrap with %w and compare with errors.Is
//   - purekernel: compiled closures and vector kernels stay deterministic
//   - faultsite: faultpoint call sites use registered site constants, and
//     the on/off build-tag implementations expose identical APIs
//
// A rule is suppressed at one site with a `//verdict:<token>` comment on the
// flagged line or the line directly above it (each analyzer documents its
// token). Suppressions are deliberate, greppable statements that a human
// checked the invariant by hand.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier, also the CLI flag name
	Doc  string // one-line contract description
	Run  func(*Pass) error

	// FactTypes lists the analyzer's cross-package fact prototypes (one
	// zero value per concrete type; must be gob-encodable pointers). An
	// analyzer with facts sees its own exports from dependency packages
	// through Pass.ImportObjectFact; see facts.go.
	FactTypes []Fact
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass is the per-package unit of work handed to each analyzer: parsed
// files, type information, and a Report sink. The same Pass value is shared
// by every analyzer run on the package (analyzers only read from it).
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Module is the module path the package belongs to ("" when unknown,
	// e.g. test fixtures). Module-scoped analyzers skip foreign modules so
	// a `go vet -vettool` run over stdlib dependencies stays quiet.
	Module string

	// IgnoredFiles lists build-constrained files of the package directory
	// that are excluded from this build configuration (e.g. the armed
	// faultpoint implementation when the faultinject tag is off). faultsite
	// parses them to check cross-tag API parity.
	IgnoredFiles []string

	// Report receives diagnostics; the driver owns ordering and output.
	Report func(Diagnostic)

	// facts is the cross-package fact store shared by the whole run;
	// analyzer is the name of the analyzer currently running, namespacing
	// its fact reads and writes. Both are owned by the driver (and the
	// linttest harness).
	facts    *factSet
	analyzer string

	annots map[*ast.File]map[int]map[string]string
}

// Reportf reports a diagnostic at pos unless a `//verdict:<suppress>`
// annotation covers the line (suppress == "" means the rule has no escape
// hatch).
func (p *Pass) Reportf(pos token.Pos, suppress, format string, args ...any) {
	if suppress != "" && p.Suppressed(pos, suppress) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a `//verdict:token` comment annotates pos: on
// the same line, or on the line immediately above (a standalone annotation
// comment).
func (p *Pass) Suppressed(pos token.Pos, token string) bool {
	if !pos.IsValid() {
		return false
	}
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	lines := p.annotations(file)
	line := p.Fset.Position(pos).Line
	_, same := lines[line][token]
	_, above := lines[line-1][token]
	return same || above
}

// AnnotationArg returns the first word following a `//verdict:token`
// annotation covering pos (same line or the line above) — e.g. the mutex
// name of `//verdict:guardedby mu caller-facing note`. ok is false when no
// such annotation covers the line.
func (p *Pass) AnnotationArg(pos token.Pos, token string) (arg string, ok bool) {
	if !pos.IsValid() {
		return "", false
	}
	file := p.fileOf(pos)
	if file == nil {
		return "", false
	}
	lines := p.annotations(file)
	line := p.Fset.Position(pos).Line
	rest, ok := lines[line][token]
	if !ok {
		rest, ok = lines[line-1][token]
	}
	if !ok {
		return "", false
	}
	arg, _, _ = strings.Cut(strings.TrimSpace(rest), " ")
	return arg, true
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// annotations lazily indexes a file's `//verdict:` comments by line,
// mapping each token to the text following it (arguments + justification).
func (p *Pass) annotations(f *ast.File) map[int]map[string]string {
	if p.annots == nil {
		p.annots = map[*ast.File]map[int]map[string]string{}
	}
	if m, ok := p.annots[f]; ok {
		return m
	}
	m := map[int]map[string]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//verdict:")
			if !ok {
				continue
			}
			// The token ends at the first space; what follows is the
			// argument (when the rule takes one) and the human-readable
			// justification.
			tok, rest, _ := strings.Cut(text, " ")
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			if m[line] == nil {
				m[line] = map[string]string{}
			}
			m[line][tok] = rest
		}
	}
	p.annots[f] = m
	return m
}

// InModule reports whether the pass's package belongs to the verdictdb
// module (or to a fixture/unknown module, which module-scoped analyzers
// treat as in-scope so the analysistest harness exercises them).
func (p *Pass) InModule() bool {
	return p.Module == "" || p.Module == "verdictdb"
}

// PathIn reports whether the package's import path contains any of the
// given fragments. Fixture packages under internal/lint/testdata mirror the
// real layout (e.g. testdata/src/internal/engine/...), so path scoping
// behaves identically under go vet and under the test harness.
func (p *Pass) PathIn(fragments ...string) bool {
	path := p.Pkg.Path()
	for _, fr := range fragments {
		if strings.Contains(path, fr) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is an _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// All returns the full verdictlint suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		BudgetCharge,
		CtxPoll,
		DetMapRange,
		ErrWrapIs,
		FaultSite,
		HotAlloc,
		LockGuard,
		MergeComplete,
		PureKernel,
	}
}
