package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestLockGuard(t *testing.T) {
	linttest.Run(t, "internal/engine/lguard", lint.LockGuard)
}

// TestLockGuardCrossPackage proves the guarded-field and lock-contract
// facts survive the .vetx gob round trip: every diagnostic fires in
// internal/engine/lguardx off annotations declared in internal/engine/lgdep.
func TestLockGuardCrossPackage(t *testing.T) {
	linttest.Run(t, "internal/engine/lguardx", lint.LockGuard)
}
