package lint

import (
	"go/types"
	"strings"
)

// MergeComplete guards the aggregation contract: an accumulator type is the
// unit the morsel scheduler parallelizes over, so a partial implementation
// fails silently rather than loudly.
//
// Any named type carrying at least two of the four core accumulator methods
// (add, addStar, result, merge) is treated as an accumulator and must carry
// all four with the canonical shapes — in particular merge, without which
// per-worker partials cannot be combined and parallel GROUP BY drops rows.
//
// The typed fast-path entry points come in matched sets: addInt and addFloat
// must appear together (addLane dispatches on the typedAdder pair — a lone
// half is a silently dead fast path), and addStr requires both (stringAdder
// is only consulted after the numeric pair). Accumulators that reject
// strings in add() simply implement neither — the ISSUE's literal
// "all three always" reading is unsound because addStr has no error channel
// while add(stringValue) deliberately returns one.
var MergeComplete = &Analyzer{
	Name: "mergecomplete",
	Doc:  "accumulator types must implement the complete core contract and matched typed fast-path sets",
	Run:  runMergeComplete,
}

// coreAccMethods are the four methods every accumulator must have.
var coreAccMethods = []string{"add", "addStar", "result", "merge"}

func runMergeComplete(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		checkAccumulator(pass, named)
	}
	return nil
}

func checkAccumulator(pass *Pass, named *types.Named) {
	get := func(name string) *types.Func { return methodOf(named, pass.Pkg, name) }

	// A type is accumulator-shaped when its add has the canonical
	// one-value-in-error-out contract AND it carries at least one more core
	// method. Types with an unrelated add (e.g. the middleware's answer
	// merger takes a whole result set) are not accumulators.
	add := get("add")
	if add == nil {
		return
	}
	if sig := add.Type().(*types.Signature); sig.Params().Len() != 1 ||
		sig.Results().Len() != 1 || !implementsError(sig.Results().At(0).Type()) {
		return
	}

	var present, missing []string
	for _, m := range coreAccMethods {
		if get(m) != nil {
			present = append(present, m)
		} else {
			missing = append(missing, m)
		}
	}
	if len(present) < 2 {
		return // a lone canonical add is not enough signal
	}
	tname := named.Obj().Name()
	pos := named.Obj().Pos()
	if len(missing) > 0 {
		pass.Reportf(pos, "",
			"accumulator %s implements {%s} but is missing {%s}; a partial accumulator breaks parallel merge — implement the full core contract",
			tname, strings.Join(present, ", "), strings.Join(missing, ", "))
		return
	}

	// Core shape checks: merge must take one argument and return error,
	// add must return error, result must return a value.
	if m := get("merge"); m != nil {
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 1 || sig.Results().Len() != 1 || !implementsError(sig.Results().At(0).Type()) {
			pass.Reportf(m.Pos(), "",
				"accumulator %s: merge must have shape merge(other) error so worker partials combine under the scheduler's error path", tname)
		}
	}
	// Typed fast-path pairing.
	addInt, addFloat, addStr := get("addInt"), get("addFloat"), get("addStr")
	wrongShape := func(m *types.Func, want types.Type) bool {
		sig := m.Type().(*types.Signature)
		return sig.Params().Len() != 1 || sig.Results().Len() != 0 ||
			!types.Identical(sig.Params().At(0).Type(), want)
	}
	if (addInt == nil) != (addFloat == nil) {
		have, want := "addInt", "addFloat"
		if addInt == nil {
			have, want = "addFloat", "addInt"
		}
		pass.Reportf(pos, "",
			"accumulator %s implements %s but not %s; the typed fast path dispatches on the pair, so half of it is silently dead — implement both or neither", tname, have, want)
	}
	if addStr != nil && (addInt == nil || addFloat == nil) {
		pass.Reportf(addStr.Pos(), "",
			"accumulator %s implements addStr without the numeric pair addInt/addFloat; the string lane is only consulted after the numeric fast path", tname)
	}
	if addInt != nil && wrongShape(addInt, types.Typ[types.Int64]) {
		pass.Reportf(addInt.Pos(), "", "accumulator %s: addInt must have shape addInt(int64) to satisfy the typedAdder fast path", tname)
	}
	if addFloat != nil && wrongShape(addFloat, types.Typ[types.Float64]) {
		pass.Reportf(addFloat.Pos(), "", "accumulator %s: addFloat must have shape addFloat(float64) to satisfy the typedAdder fast path", tname)
	}
	if addStr != nil && wrongShape(addStr, types.Typ[types.String]) {
		pass.Reportf(addStr.Pos(), "", "accumulator %s: addStr must have shape addStr(string) to satisfy the stringAdder fast path", tname)
	}
}
