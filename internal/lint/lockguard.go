package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockGuard enforces declared mutex discipline: a struct field annotated
//
//	//verdict:guardedby mu            (reads and writes need mu held)
//	//verdict:guardedby mu:write      (writes need mu; reads go through an
//	                                   atomic snapshot and are lock-free)
//	//verdict:guardedby Type.mu       (guarded by another type's mutex —
//	                                   e.g. container-guards-element state)
//
// may only be accessed while the named sync.Mutex/RWMutex is held. Lock
// ownership is tracked intra-procedurally: a linear walk over each function
// body maintains the set of mutexes held (Lock/RLock add, Unlock/RUnlock
// remove, deferred unlocks keep the mutex held to function exit; locks
// taken inside a branch do not leak past it). The tracking is
// receiver-blind — holding ANY instance's mu counts for all instances of
// that field — which is exactly the granularity the annotation declares.
//
// Two function-level facts cross package boundaries (and package-internal
// call graphs):
//
//   - a function annotated `//verdict:locked mu` documents "caller must
//     hold mu"; its body is checked with mu pre-held, and every call to it
//     from a context not holding mu is flagged — even from another package.
//   - a function that acquires a mutex itself exports an "acquires" fact;
//     calling it while already holding the same mutex is flagged as a
//     self-deadlock (sync.Mutex is not reentrant).
//
// Closures inherit the lock-set at their creation point (sort.Slice
// comparators and friends run synchronously under the caller's locks);
// goroutine bodies (`go func(){...}`) start with an empty set. Suppress a
// finding with //verdict:unguarded <why>.
var LockGuard = &Analyzer{
	Name:      "lockguard",
	Doc:       "fields annotated //verdict:guardedby <mu> are only touched with the mutex held (suppress: //verdict:unguarded)",
	Run:       runLockGuard,
	FactTypes: []Fact{(*guardedFact)(nil), (*lockFnFact)(nil)},
}

// guardedFact marks a struct field as protected by a mutex, identified by
// its fully qualified key "pkgpath.Type.field".
type guardedFact struct {
	Mutex string
	Write bool // write accesses only; reads are lock-free by design
}

func (*guardedFact) AFact() {}

// lockFnFact is a function's lock contract: mutexes the caller must hold
// (declared via //verdict:locked) and mutexes the body acquires itself.
type lockFnFact struct {
	Requires []string
	Acquires []string
}

func (*lockFnFact) AFact() {}

// lockHeld is the lock-set during the walk: mutex key → 'r' (read) or 'w'.
type lockHeld map[string]byte

func (h lockHeld) clone() lockHeld {
	c := make(lockHeld, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// lgCtx is the per-package analysis state.
type lgCtx struct {
	pass *Pass
	// guards maps guarded fields of THIS package to their facts; foreign
	// fields resolve through ImportObjectFact.
	guards map[*types.Var]*guardedFact
	// fnFacts maps this package's functions to their lock contracts.
	fnFacts map[*types.Func]*lockFnFact
}

func runLockGuard(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	lg := &lgCtx{pass: pass, guards: map[*types.Var]*guardedFact{}, fnFacts: map[*types.Func]*lockFnFact{}}
	lg.collectGuards()
	lg.collectFnFacts()
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := lockHeld{}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				if fact := lg.fnFacts[obj]; fact != nil {
					for _, m := range fact.Requires {
						held[m] = 'w'
					}
				}
			}
			lg.walkStmts(fd.Body.List, held)
		}
	}
	return nil
}

// collectGuards parses //verdict:guardedby annotations off struct fields,
// validates the mutex reference, and exports the field facts.
func (lg *lgCtx) collectGuards() {
	pass := lg.pass
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
			if owner == nil {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := pass.AnnotationArg(field.Pos(), "guardedby")
				if !ok {
					continue
				}
				muRef, mode, _ := strings.Cut(arg, ":")
				key, ok := lg.resolveMutexRef(owner, muRef)
				if !ok {
					pass.Reportf(field.Pos(), "",
						"//verdict:guardedby %s does not name a sync.Mutex/RWMutex field (use a sibling field name or Type.field)", muRef)
					continue
				}
				fact := &guardedFact{Mutex: key, Write: mode == "write"}
				for _, name := range field.Names {
					if fv, ok := pass.Info.Defs[name].(*types.Var); ok {
						lg.guards[fv] = fact
						pass.ExportObjectFact(fv, fact)
					}
				}
			}
			return true
		})
	}
}

// resolveMutexRef resolves "mu" (sibling field of owner) or "Type.mu"
// (field of another package-scope type) to a fully qualified mutex key.
func (lg *lgCtx) resolveMutexRef(owner *types.TypeName, ref string) (string, bool) {
	pass := lg.pass
	typeName, fieldName := owner.Name(), ref
	if t, f, ok := strings.Cut(ref, "."); ok {
		typeName, fieldName = t, f
		tn, ok := pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return "", false
		}
		owner = tn
	}
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if fv.Name() == fieldName && isMutexType(fv.Type()) {
			return pass.Pkg.Path() + "." + typeName + "." + fieldName, true
		}
	}
	return "", false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// collectFnFacts gathers every function's lock contract: Requires from
// //verdict:locked annotations, Acquires from Lock calls in the body.
func (lg *lgCtx) collectFnFacts() {
	pass := lg.pass
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := &lockFnFact{}
			if arg, ok := pass.AnnotationArg(fd.Pos(), "locked"); ok {
				if key, resolved := lg.resolveLockedRef(fd, arg); resolved {
					fact.Requires = append(fact.Requires, key)
				} else {
					pass.Reportf(fd.Pos(), "",
						"//verdict:locked %s does not name a sync.Mutex/RWMutex field on the receiver (or Type.field)", arg)
				}
			}
			// Acquires: any mutex the body locks outside nested closures.
			acquired := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if key, op, ok := lg.mutexOp(call); ok && (op == "Lock" || op == "RLock") {
						acquired[key] = true
					}
				}
				return true
			})
			for key := range acquired {
				fact.Acquires = append(fact.Acquires, key)
			}
			sort.Strings(fact.Acquires)
			if len(fact.Requires) > 0 || len(fact.Acquires) > 0 {
				lg.fnFacts[obj] = fact
				pass.ExportObjectFact(obj, fact)
			}
		}
	}
}

// resolveLockedRef resolves a //verdict:locked argument against the
// function's receiver type ("mu") or a package-scope type ("Type.mu").
func (lg *lgCtx) resolveLockedRef(fd *ast.FuncDecl, ref string) (string, bool) {
	if strings.Contains(ref, ".") {
		// Type-qualified: resolve like guardedby's Type.field form; the
		// owner argument is unused for qualified refs, any type works.
		if tn := lg.anyTypeName(); tn != nil {
			return lg.resolveMutexRef(tn, ref)
		}
		return "", false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	rt := lg.pass.Info.TypeOf(fd.Recv.List[0].Type)
	n := namedOrPointee(rt)
	if n == nil {
		return "", false
	}
	tn, ok := n.Obj().Pkg().Scope().Lookup(n.Obj().Name()).(*types.TypeName)
	if !ok {
		return "", false
	}
	return lg.resolveMutexRef(tn, ref)
}

// anyTypeName returns an arbitrary package-scope TypeName (resolveMutexRef
// only needs one as a namespace anchor for qualified refs).
func (lg *lgCtx) anyTypeName() *types.TypeName {
	scope := lg.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			return tn
		}
	}
	return nil
}

// mutexOp matches sel.mu.Lock()/Unlock()/RLock()/RUnlock() (or a call on a
// package-scope mutex var) and returns the mutex key and operation name.
func (lg *lgCtx) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = fun.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recv := ast.Unparen(fun.X)
	pass := lg.pass
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		// instance.mu.Lock(): the mutex is a struct field.
		if sel, ok := pass.Info.Selections[x]; ok {
			if fv, ok := sel.Obj().(*types.Var); ok && fv.IsField() && isMutexType(fv.Type()) {
				if k, ok := objFactKey(fv); ok {
					return fv.Pkg().Path() + "." + k, op, true
				}
			}
		}
	case *ast.Ident:
		// mu.Lock() on a package-level mutex var.
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok && !obj.IsField() && isMutexType(obj.Type()) && obj.Pkg() != nil {
			if obj.Pkg().Scope().Lookup(obj.Name()) == obj {
				return obj.Pkg().Path() + "." + obj.Name(), op, true
			}
		}
	}
	return "", "", false
}

// walkStmts walks a statement sequence, threading the lock-set through it.
func (lg *lgCtx) walkStmts(stmts []ast.Stmt, held lockHeld) {
	for _, s := range stmts {
		lg.walkStmt(s, held)
	}
}

// walkStmt processes one statement: lock operations mutate held in place;
// branch bodies get clones so a branch-local Lock cannot vouch for code
// after the branch.
func (lg *lgCtx) walkStmt(s ast.Stmt, held lockHeld) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if key, op, ok := lg.mutexOp(call); ok {
				switch op {
				case "Lock":
					held[key] = 'w'
				case "RLock":
					if held[key] != 'w' {
						held[key] = 'r'
					}
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		lg.checkExpr(x.X, held, false)
	case *ast.DeferStmt:
		if key, op, ok := lg.mutexOp(x.Call); ok {
			// Deferred unlock: the mutex stays held to function exit.
			// Deferred Lock would be a bug, but not this analyzer's.
			_, _ = key, op
			return
		}
		lg.checkExpr(x.Call, held, false)
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			lg.checkExpr(lhs, held, true)
		}
		for _, rhs := range x.Rhs {
			lg.checkExpr(rhs, held, false)
		}
	case *ast.IncDecStmt:
		lg.checkExpr(x.X, held, true)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			lg.checkExpr(r, held, false)
		}
	case *ast.SendStmt:
		lg.checkExpr(x.Chan, held, false)
		lg.checkExpr(x.Value, held, false)
	case *ast.IfStmt:
		if x.Init != nil {
			lg.walkStmt(x.Init, held)
		}
		lg.checkExpr(x.Cond, held, false)
		lg.walkStmts(x.Body.List, held.clone())
		if x.Else != nil {
			lg.walkStmt(x.Else, held.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if x.Init != nil {
			lg.walkStmt(x.Init, inner)
		}
		if x.Cond != nil {
			lg.checkExpr(x.Cond, inner, false)
		}
		lg.walkStmts(x.Body.List, inner)
		if x.Post != nil {
			lg.walkStmt(x.Post, inner)
		}
	case *ast.RangeStmt:
		lg.checkExpr(x.X, held, false)
		lg.walkStmts(x.Body.List, held.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			lg.walkStmt(x.Init, held)
		}
		if x.Tag != nil {
			lg.checkExpr(x.Tag, held, false)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lg.checkExpr(e, held, false)
				}
				lg.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			lg.walkStmt(x.Init, held)
		}
		lg.walkStmt(x.Assign, held)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lg.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lg.walkStmt(cc.Comm, held.clone())
				}
				lg.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.BlockStmt:
		lg.walkStmts(x.List, held)
	case *ast.LabeledStmt:
		lg.walkStmt(x.Stmt, held)
	case *ast.GoStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			// A goroutine body runs later, under no inherited locks.
			lg.walkStmts(lit.Body.List, lockHeld{})
			for _, arg := range x.Call.Args {
				lg.checkExpr(arg, held, false)
			}
			return
		}
		lg.checkExpr(x.Call, held, false)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lg.checkExpr(v, held, false)
					}
				}
			}
		}
	}
}

// checkExpr validates guarded-field accesses and callee lock contracts
// within one expression. write marks the top-level expression as a write
// target (assignment LHS / IncDec operand).
func (lg *lgCtx) checkExpr(e ast.Expr, held lockHeld, write bool) {
	if e == nil {
		return
	}
	top := ast.Unparen(e)
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Closures inherit the locks held where they are created;
			// synchronous callees (sort comparators, map callbacks) run
			// under them. Goroutine bodies are handled in walkStmt.
			lg.walkStmts(x.Body.List, held.clone())
			return false
		case *ast.SelectorExpr:
			lg.checkFieldAccess(x, held, write && unwrapIndex(top) == x)
		case *ast.CallExpr:
			lg.checkCallContract(x, held)
			// atomic-store style writes through a guarded field:
			// x.f.Store(v) mutates f's pointee state.
			if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch fun.Sel.Name {
				case "Store", "Swap", "CompareAndSwap":
					if inner, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
						lg.checkFieldAccess(inner, held, true)
					}
				}
			}
		}
		return true
	})
}

// unwrapIndex strips index expressions: `x.f[i]` writes into x.f.
func unwrapIndex(e ast.Expr) ast.Expr {
	for {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = ix.X
	}
}

// checkFieldAccess flags an access to a guarded field without its mutex.
func (lg *lgCtx) checkFieldAccess(sel *ast.SelectorExpr, held lockHeld, write bool) {
	pass := lg.pass
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return
	}
	fv, ok := selection.Obj().(*types.Var)
	if !ok || !fv.IsField() {
		return
	}
	fact := lg.guards[fv]
	if fact == nil {
		imported := new(guardedFact)
		if !pass.ImportObjectFact(fv, imported) {
			return
		}
		fact = imported
	}
	if fact.Write && !write {
		return // lock-free reads by design (atomic snapshot)
	}
	switch held[fact.Mutex] {
	case 'w':
		return
	case 'r':
		if !write {
			return
		}
		pass.Reportf(sel.Pos(), "unguarded",
			"write to %s requires %s held exclusively, but only a read lock is held; take Lock or annotate //verdict:unguarded with why",
			exprString(pass, sel), shortMutex(fact.Mutex))
		return
	}
	kind := "access to"
	if write {
		kind = "write to"
	}
	pass.Reportf(sel.Pos(), "unguarded",
		"%s %s without %s held (//verdict:guardedby contract); lock it, mark the function //verdict:locked %s, or annotate //verdict:unguarded with why",
		kind, exprString(pass, sel), shortMutex(fact.Mutex), shortMutex(fact.Mutex))
}

// checkCallContract flags calls violating the callee's lock contract.
func (lg *lgCtx) checkCallContract(call *ast.CallExpr, held lockHeld) {
	pass := lg.pass
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	fact := lg.fnFacts[fn]
	if fact == nil {
		imported := new(lockFnFact)
		if !pass.ImportObjectFact(fn, imported) {
			return
		}
		fact = imported
	}
	for _, m := range fact.Requires {
		if held[m] == 0 {
			pass.Reportf(call.Pos(), "unguarded",
				"call to %s requires %s held (//verdict:locked contract) but it is not; lock first or annotate //verdict:unguarded with why",
				fn.Name(), shortMutex(m))
		}
	}
	for _, m := range fact.Acquires {
		if held[m] != 0 {
			pass.Reportf(call.Pos(), "unguarded",
				"%s acquires %s, which is already held here — sync mutexes are not reentrant, this self-deadlocks; drop the outer lock or call the locked variant",
				fn.Name(), shortMutex(m))
		}
	}
}

// shortMutex trims the package path off a mutex key for diagnostics.
func shortMutex(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	// Drop the package segment too: "engine.Engine.mu" → "Engine.mu".
	if parts := strings.Split(key, "."); len(parts) > 2 {
		return strings.Join(parts[len(parts)-2:], ".")
	}
	return key
}
