package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestCtxPoll(t *testing.T) {
	linttest.Run(t, "internal/engine/cpoll", lint.CtxPoll)
}
