package lint_test

import (
	"testing"

	"verdictdb/internal/lint"
	"verdictdb/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "internal/engine/halloc", lint.HotAlloc)
}
