package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll enforces the query-lifecycle contract from PR 6: engine execution
// must observe cancellation, deadlines, and memory-budget overruns promptly,
// and context plumbing must not be short-circuited.
//
// Rule 1 (internal/engine): every `for range` loop over per-row or
// per-chunk data ([]*chunk, [][]Value, []*entry) that does real work must
// call the lifecycle.go hooks — qc.tick() / qc.pollAbort() — either
// directly in the loop body or through a helper/closure it calls that
// invokes a hook directly (one level deep: the hooks belong AT the loop,
// not buried down a call chain where a refactor can silently detach them).
// Loops that are chunk-bounded (ranging over ch.rows() of one chunk) or do
// O(1) work per element (no calls, no nested loops) are exempt; anything
// else needs a `//verdict:nopoll <why>` annotation.
//
// Rule 2 (internal/engine + internal/core): context.Background() and
// context.TODO() may appear only in the documented context-free delegation
// shims — functions whose whole body is a single return delegating to the
// Context-taking variant — or under a `//verdict:ctx-shim <why>`
// annotation. Anywhere else they detach execution from the caller's
// cancellation and budget.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "engine row/chunk loops must call the lifecycle poll hooks; no stray context.Background (suppress: //verdict:nopoll, //verdict:ctx-shim)",
	Run:  runCtxPoll,
}

// pollHookNames are the lifecycle.go cooperative-abort hooks.
var pollHookNames = map[string]bool{"pollAbort": true, "tick": true}

func runCtxPoll(pass *Pass) error {
	if !pass.PathIn("internal/engine", "internal/core") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		checkBackgroundCalls(pass, f)
	}
	if !pass.PathIn("internal/engine") {
		return nil
	}
	// pollers: package functions whose body calls a hook directly, so a
	// loop calling them polls at depth one.
	pollers := directPollers(pass)
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		checkLoops(pass, f, pollers)
	}
	return nil
}

// checkBackgroundCalls flags context.Background/TODO outside delegation
// shims.
func checkBackgroundCalls(pass *Pass, f *ast.File) {
	walkPath(f, func(n ast.Node, path []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if inDelegationShim(path) {
			return true
		}
		pass.Reportf(call.Pos(), "ctx-shim",
			"context.%s() outside a top-level delegation shim detaches execution from the caller's cancellation/budget; thread ctx or annotate //verdict:ctx-shim with why", fn.Name())
		return true
	})
}

// inDelegationShim reports whether the path's innermost function is a
// context-free delegation shim: a body that is exactly one return statement
// (e.g. `return e.QueryContext(context.Background(), sql)`).
func inDelegationShim(path []ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		var body *ast.BlockStmt
		switch fd := path[i].(type) {
		case *ast.FuncDecl:
			body = fd.Body
		case *ast.FuncLit:
			body = fd.Body
		default:
			continue
		}
		if body == nil || len(body.List) != 1 {
			return false
		}
		_, isReturn := body.List[0].(*ast.ReturnStmt)
		return isReturn
	}
	return false
}

// directPollers collects package-level functions and methods (plus, per
// enclosing function, local closures — handled separately in loopPolls)
// whose bodies call tick/pollAbort directly.
func directPollers(pass *Pass) map[*types.Func]bool {
	pollers := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if callsHookDirectly(pass, fd.Body) {
				pollers[obj] = true
			}
		}
	}
	return pollers
}

// callsHookDirectly reports whether body contains a call to a poll hook
// (a method named tick/pollAbort), not counting nested function literals —
// a closure that polls only polls when *it* runs.
func callsHookDirectly(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && fn.Type().(*types.Signature).Recv() != nil && pollHookNames[fn.Name()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkLoops flags row/chunk-scale range loops that never reach a poll
// hook.
func checkLoops(pass *Pass, f *ast.File, pollers map[*types.Func]bool) {
	// Local closures of each function that poll directly count as hooks at
	// depth one; gather them per file walk.
	localPollers := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && callsHookDirectly(pass, lit.Body) {
				localPollers[obj] = true
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rowScaleRange(pass, rs) {
			return true
		}
		if trivialBody(rs.Body) {
			return true
		}
		if loopPolls(pass, rs.Body, pollers, localPollers) {
			return true
		}
		pass.Reportf(rs.Pos(), "nopoll",
			"row/chunk-scale loop never calls the lifecycle poll hooks (qc.tick/qc.pollAbort); cancellation and memory budgets go unobserved here — poll in the loop or annotate //verdict:nopoll with why")
		return true
	})
}

// rowScaleRange reports whether rs ranges over data that scales with the
// relation: []*chunk, [][]Value, or []*entry. Ranging over one chunk's row
// view (ch.rows()) is chunk-bounded and exempt — its caller polls per
// chunk.
func rowScaleRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem()
	switch {
	case isNamed(elem, "chunk") || isNamed(elem, "entry"):
	case isValueRow(elem):
		// Exempt `range ch.rows()`: bounded by one chunk.
		if call, ok := ast.Unparen(rs.X).(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "rows" {
				if recv := pass.Info.TypeOf(sel.X); recv != nil && isNamed(recv, "chunk") {
					return false
				}
			}
		}
	default:
		return false
	}
	return true
}

// isNamed reports whether t is the named type (or pointer to it) with the
// given base name.
func isNamed(t types.Type, name string) bool {
	n := namedOrPointee(t)
	return n != nil && n.Obj().Name() == name
}

// isValueRow reports whether t is []Value — one boxed row.
func isValueRow(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamed(sl.Elem(), "Value")
}

// trivialBody reports whether the loop body does O(1) bookkeeping per
// element: no calls (builtins aside) and no nested loops.
func trivialBody(body *ast.BlockStmt) bool {
	trivial := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			trivial = false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "len", "cap", "append", "make", "max", "min", "int", "int64", "int32", "float64", "string":
					return true
				}
			}
			trivial = false
		}
		return trivial
	})
	return trivial
}

// loopPolls reports whether the loop body reaches a poll hook at depth one:
// a direct hook call, a call to a package function that polls directly, or
// a call to a local closure that polls directly.
func loopPolls(pass *Pass, body *ast.BlockStmt, pollers map[*types.Func]bool, localPollers map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil {
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil && pollHookNames[fn.Name()] {
				found = true
			}
			if pollers[fn] {
				found = true
			}
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && localPollers[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
