package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrapIs keeps the error taxonomy from PR 6 load-bearing: sentinels like
// ErrMemoryBudget and ErrCatalogChanged are only useful if every layer
// preserves them (wrap with %w) and every consumer matches them robustly
// (errors.Is). Three rules, one suppression token (//verdict:errstr <why>):
//
//  1. `err == sentinel` / `err != sentinel` — identity comparison breaks as
//     soon as any intermediate layer wraps; use errors.Is.
//  2. fmt.Errorf("... %v ...", sentinel) — formatting a sentinel with a
//     non-%w verb strips it from the unwrap chain.
//  3. strings.Contains(err.Error(), ...) — string matching on error text is
//     a change-detector, not a contract; match the sentinel with errors.Is.
var ErrWrapIs = &Analyzer{
	Name: "errwrapis",
	Doc:  "error sentinels wrap with %w and match with errors.Is, never == or string probing (suppress: //verdict:errstr)",
	Run:  runErrWrapIs,
}

func runErrWrapIs(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, x)
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
				checkErrStringProbe(pass, x)
			}
			return true
		})
	}
	return nil
}

// sentinelObj returns the package-level error variable e refers to, or nil.
// A sentinel is a var of (exactly) type error at package scope — io.EOF,
// engine.ErrMemoryBudget, a local ErrFoo — not an arbitrary error-typed
// expression.
func sentinelObj(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	// Sentinels are declared as the universe `error` type itself (io.EOF,
	// ErrMemoryBudget); note the named type, not its underlying interface.
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return v
}

// checkErrCompare flags ==/!= between an error value and a sentinel.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	var sentinel *types.Var
	if s := sentinelObj(pass, be.X); s != nil && isErrorExpr(pass, be.Y) {
		sentinel = s
	}
	if s := sentinelObj(pass, be.Y); s != nil && isErrorExpr(pass, be.X) {
		sentinel = s
	}
	if sentinel == nil {
		return
	}
	pass.Reportf(be.OpPos, "errstr",
		"comparing errors with %s breaks once any layer wraps the sentinel; use errors.Is(err, %s)", be.Op, sentinel.Name())
}

func isErrorExpr(pass *Pass, e ast.Expr) bool {
	return implementsError(pass.Info.TypeOf(e))
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel through a
// non-%w verb, dropping it from the errors.Is chain.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wrapped := strings.Contains(format, "%w")
	if wrapped {
		return
	}
	for _, arg := range call.Args[1:] {
		if s := sentinelObj(pass, arg); s != nil {
			pass.Reportf(arg.Pos(), "errstr",
				"fmt.Errorf formats sentinel %s without %%w, so errors.Is can no longer see it downstream; wrap with %%w", s.Name())
		}
	}
}

// checkErrStringProbe flags strings.Contains(err.Error(), ...) and friends.
func checkErrStringProbe(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(inner.Args) != 0 {
			continue
		}
		if isErrorExpr(pass, sel.X) {
			pass.Reportf(call.Pos(), "errstr",
				"strings.%s on err.Error() probes error text instead of identity; export a sentinel and use errors.Is (or //verdict:errstr if no taxonomy exists for this error)", fn.Name())
			return
		}
	}
}
