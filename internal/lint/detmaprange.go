package lint

import (
	"go/ast"
	"go/types"
)

// DetMapRange enforces the determinism contract of PRs 1/4/5: answers are
// byte-identical at any parallelism, so nothing in the engine or middleware
// may let Go's randomized map iteration order reach an output row, a
// rendered group/join key, or a partial-answer merge. Inside
// internal/engine and internal/core (non-test files), every `for range`
// over a map must either be the collect-keys-then-sort idiom or carry a
// `//verdict:unordered <why>` annotation stating that iteration order
// provably cannot affect observable output.
var DetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc:  "no unordered map iteration in order-sensitive engine/core code (suppress: //verdict:unordered)",
	Run:  runDetMapRange,
}

func runDetMapRange(pass *Pass) error {
	if !pass.PathIn("internal/engine", "internal/core") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		walkPath(f, func(n ast.Node, path []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedCollect(pass, rs, path) {
				return true
			}
			pass.Reportf(rs.Pos(), "unordered",
				"range over map %s has nondeterministic order in an order-sensitive package; iterate sorted keys or annotate //verdict:unordered with why order cannot leak", exprString(pass, rs.X))
			return true
		})
	}
	return nil
}

// sortedCollect recognizes the canonical deterministic idiom: a loop whose
// body only appends keys/values to one slice, where that slice is later
// passed through a sort (sort.* or slices.Sort*) in the same enclosing
// block.
func sortedCollect(pass *Pass, rs *ast.RangeStmt, path []ast.Node) bool {
	target := appendOnlyTarget(pass, rs.Body)
	if target == nil {
		return false
	}
	// Find the statement list containing the range and scan what follows it.
	for i := len(path) - 1; i >= 0; i-- {
		block, ok := path[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		after := false
		for _, st := range block.List {
			if st == ast.Stmt(rs) || containsNode(st, rs) {
				after = true
				continue
			}
			if after && stmtSorts(pass, st, target) {
				return true
			}
		}
		if after {
			return false
		}
	}
	return false
}

// appendOnlyTarget returns the single local slice variable the loop body
// appends into, or nil when the body does anything else. Conditional
// appends (if/else chains whose branches only append to the same slice)
// count — `if cond { s = append(s, a) } else { s = append(s, b) }` is still
// the collect idiom.
func appendOnlyTarget(pass *Pass, body *ast.BlockStmt) types.Object {
	var target types.Object
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, st := range stmts {
			switch s := st.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return false
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" || len(call.Args) < 1 {
					return false
				}
				arg0, ok := call.Args[0].(*ast.Ident)
				if !ok || arg0.Name != lhs.Name {
					return false
				}
				obj := pass.Info.Uses[lhs]
				if obj == nil {
					obj = pass.Info.Defs[lhs]
				}
				if obj == nil || (target != nil && target != obj) {
					return false
				}
				target = obj
			case *ast.IfStmt:
				if s.Init != nil || !walk(s.Body.List) {
					return false
				}
				switch el := s.Else.(type) {
				case nil:
				case *ast.BlockStmt:
					if !walk(el.List) {
						return false
					}
				case *ast.IfStmt:
					if !walk([]ast.Stmt{el}) {
						return false
					}
				default:
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(body.List) {
		return nil
	}
	return target
}

// stmtSorts reports whether st contains a call into package sort or slices
// that mentions target.
func stmtSorts(pass *Pass, st ast.Stmt, target types.Object) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName); !ok ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, target) {
				found = true
			}
		}
		return !found
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
