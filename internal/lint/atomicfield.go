package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity: once any code anywhere —
// including another package, via the exported fact — touches a struct field
// through the sync/atomic free functions (atomic.AddInt64(&x.f, ...),
// atomic.LoadUint32(&x.f), ...), every access to that field must be
// atomic. A single plain load racing an atomic store is still a data race,
// and one the race detector only catches when the schedule cooperates; the
// analyzer makes the mixed-access pattern unrepresentable instead.
//
// Fields of the sync/atomic wrapper types (atomic.Int64, atomic.Pointer)
// are immune by construction — this rule exists for the transitional and
// FFI-ish cases where a plain int field is driven through the free
// functions. Sound exceptions (pre-publication initialization in a
// constructor, access under the mutex that serializes all writers) are
// annotated //verdict:nonatomic <why>.
var AtomicField = &Analyzer{
	Name:      "atomicfield",
	Doc:       "a field accessed via sync/atomic anywhere must be accessed atomically everywhere, across packages (suppress: //verdict:nonatomic)",
	Run:       runAtomicField,
	FactTypes: []Fact{(*atomicUseFact)(nil)},
}

// atomicUseFact marks a struct field as participating in sync/atomic
// operations somewhere in the program.
type atomicUseFact struct{}

func (*atomicUseFact) AFact() {}

func runAtomicField(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	// Phase 1: find fields used atomically in THIS package, and remember
	// the exact selector nodes inside atomic calls so phase 2 can exempt
	// them.
	atomicLocal := map[*types.Var]bool{}
	atomicSite := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // wrapper-type method: inherently safe API
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(pass, sel); fv != nil {
					atomicSite[sel] = true
					if !pass.isTestFile(sel.Pos()) {
						atomicLocal[fv] = true
						pass.ExportObjectFact(fv, &atomicUseFact{})
					}
				}
			}
			return true
		})
	}

	// Phase 2: every other access to an atomic field — locally marked or
	// imported via fact — is a mixed-atomicity race.
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if atomicSite[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil {
				return true
			}
			if !atomicLocal[fv] && !pass.ImportObjectFact(fv, new(atomicUseFact)) {
				return true
			}
			pass.Reportf(sel.Pos(), "nonatomic",
				"plain access to %s, which is accessed via sync/atomic elsewhere — mixed atomicity is a data race; use the atomic API here or annotate //verdict:nonatomic with why this access cannot race",
				exprString(pass, sel))
			return true
		})
	}
	return nil
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return nil
	}
	fv, ok := selection.Obj().(*types.Var)
	if !ok || !fv.IsField() {
		return nil
	}
	return fv
}
