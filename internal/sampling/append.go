package sampling

import (
	"fmt"
	"math"
	"strings"

	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// AppendBatch implements the incremental sample maintenance of Appendix D:
// when a new batch of rows (already loaded into batchTable, same schema as
// the base table) is appended to the base table, the sample is extended by
// sampling the batch with the same parameters.
//
//   - uniform samples Bernoulli-sample the batch with the stored tau;
//   - hashed samples apply the same hash predicate (so universe membership
//     stays consistent);
//   - stratified samples reuse each existing stratum's recorded inclusion
//     probability (read back from the sample's verdict_prob column); rows of
//     strata never seen before are taken whole (probability 1), matching the
//     paper's "new sampling probabilities are generated" rule.
//
// The caller is responsible for also inserting the batch into the base
// table; AppendBatch updates only the sample and its metadata. Like sample
// creation, the multi-statement append (insert + count + register) is
// serialized by the builder's mutex.
func (b *Builder) AppendBatch(si meta.SampleInfo, batchTable string) (meta.SampleInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cols, err := b.db.Columns(si.BaseTable)
	if err != nil {
		return si, err
	}
	colList := strings.Join(cols, ", ")
	sampleCols, err := b.db.Columns(si.SampleTable)
	if err != nil {
		return si, err
	}

	// The batch size feeds the block-extension estimate and the metadata
	// refresh, so count it before inserting.
	rsB, err := b.db.Query("select count(*) from " + batchTable)
	if err != nil {
		return si, err
	}
	batchRows := int64(0)
	if v, ok := toInt(rsB.Rows[0][0]); ok {
		batchRows = v
	}

	// The appended rows must match the sample table's column list: current
	// builds always carry the block column (even single-block ones), while a
	// catalog rediscovered from an older deployment may not — probe the
	// table itself rather than trusting metadata.
	blockSel := ""
	if hasCol(sampleCols, BlockCol) {
		expr := "1"
		if si.BlockRows > 0 {
			// Expected appended sample rows from the sample's OBSERVED
			// acceptance rate: stratified staircase probabilities can sit far
			// above the nominal tau, and underestimating here would overfill
			// the open block instead of spilling.
			ratio := si.EffectiveRatio()
			if ratio == 0 {
				ratio = si.Ratio
			}
			expr = b.appendBlockExpr(si, float64(batchRows)*ratio)
		}
		blockSel = fmt.Sprintf(", %s as %s", expr, BlockCol)
	}

	// The sampled batch rows are staged in a scratch table first: the row and
	// per-block counts then come from the (small) delta alone, instead of
	// register's full recount over the whole sample — append cost stays
	// O(batch), not O(sample). Creation keeps using register so the two paths
	// cross-check each other (see TestAppendBatchIncrementalCountsMatchRecount).
	stage := si.SampleTable + "_verdict_stage"
	if err := b.exec("drop table if exists " + stage); err != nil {
		return si, err
	}
	var sql string
	switch si.Type {
	case sqlparser.UniformSample:
		sql = fmt.Sprintf(
			`create table %s as select %s, %.10g as %s, 1 + floor(rand() * %d) as %s%s from %s where rand() < %.10g`,
			stage, colList, si.Ratio, ProbCol, si.Subsamples, SidCol, blockSel, batchTable, si.Ratio)
	case sqlparser.HashedSample:
		col := si.Columns[0]
		sql = fmt.Sprintf(
			`create table %s as select %s, %.10g as %s, 1 + hash_bucket(%s, %d) as %s%s from %s where hash01(%s) < %.10g`,
			stage, colList, si.Ratio, ProbCol, col, si.Subsamples, SidCol, blockSel, batchTable, col, si.Ratio)
	case sqlparser.StratifiedSample:
		onConds := make([]string, len(si.Columns))
		groupCols := make([]string, len(si.Columns))
		for i, c := range si.Columns {
			onConds[i] = fmt.Sprintf("verdict_b.%s = verdict_p.%s", c, c)
			groupCols[i] = c
		}
		qualCols := make([]string, len(cols))
		for i, c := range cols {
			qualCols[i] = "verdict_b." + c
		}
		probs := fmt.Sprintf("(select %s, min(%s) as old_prob from %s group by %s)",
			strings.Join(groupCols, ", "), ProbCol, si.SampleTable, strings.Join(groupCols, ", "))
		sql = fmt.Sprintf(
			`create table %s as select %s, coalesce(verdict_p.old_prob, 1.0) as %s, 1 + floor(rand() * %d) as %s%s `+
				`from %s as verdict_b left join %s as verdict_p on %s `+
				`where rand() < coalesce(verdict_p.old_prob, 1.0)`,
			stage, strings.Join(qualCols, ", "), ProbCol, si.Subsamples, SidCol, blockSel,
			batchTable, probs, strings.Join(onConds, " and "))
	default:
		return si, fmt.Errorf("sampling: cannot append to %s sample", si.Type)
	}
	if err := b.exec(sql); err != nil {
		return si, err
	}
	defer func() { _ = b.exec("drop table if exists " + stage) }()

	stageRows, err := b.baseRows(stage)
	if err != nil {
		return si, err
	}
	var deltas []int64
	if si.BlockRows > 0 && hasCol(sampleCols, BlockCol) {
		if deltas, err = b.blockCounts(stage); err != nil {
			return si, err
		}
	}
	insCols := colList + ", " + ProbCol + ", " + SidCol
	if blockSel != "" {
		insCols += ", " + BlockCol
	}
	if err := b.exec(fmt.Sprintf("insert into %s select %s from %s", si.SampleTable, insCols, stage)); err != nil {
		return si, err
	}

	si.BaseRows += batchRows
	si.SampleRows += stageRows
	if len(deltas) > 0 {
		n := len(si.BlockCounts)
		if len(deltas) > n {
			n = len(deltas)
		}
		counts := make([]int64, n)
		copy(counts, si.BlockCounts)
		for i, d := range deltas {
			counts[i] += d
		}
		si.BlockCounts = counts
	}
	if err := b.cat.Register(si); err != nil {
		return si, err
	}
	return si, nil
}

// appendBlockExpr renders the block assignment for ~expectedRows appended
// sample rows: the last open block absorbs rows with probability equal to
// its remaining capacity's share of the batch, the rest spread uniformly
// over the new blocks needed beyond it.
func (b *Builder) appendBlockExpr(si meta.SampleInfo, expectedRows float64) string {
	last := int64(len(si.BlockCounts))
	if last == 0 {
		last = 1
	}
	var lastFill int64
	if len(si.BlockCounts) > 0 {
		lastFill = si.BlockCounts[last-1]
	}
	space := float64(si.BlockRows - lastFill)
	if space < 0 {
		space = 0
	}
	if expectedRows <= space || expectedRows <= 0 {
		return fmt.Sprintf("%d", last) // the open block absorbs the whole batch
	}
	newBlocks := int64(math.Ceil((expectedRows - space) / float64(si.BlockRows)))
	if newBlocks < 1 {
		newBlocks = 1
	}
	p := space / expectedRows
	if p <= 0 {
		if newBlocks == 1 {
			return fmt.Sprintf("%d", last+1)
		}
		return fmt.Sprintf("%d + floor(rand() * %d)", last+1, newBlocks)
	}
	return fmt.Sprintf("case when rand() < %.10g then %d else %d + floor(rand() * %d) end",
		p, last, last+1, newBlocks)
}

// IsStale reports whether a sample's recorded base-row count disagrees with
// the base table's current cardinality — the cheap staleness check the
// paper suggests for append-only workloads.
func (b *Builder) IsStale(si meta.SampleInfo) (bool, error) {
	n, err := b.baseRows(si.BaseTable)
	if err != nil {
		return false, err
	}
	return n != si.BaseRows, nil
}

func hasCol(cols []string, name string) bool {
	for _, c := range cols {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

func toInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		return int64(x), true
	}
	return 0, false
}
