package sampling

import (
	"fmt"
	"math"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// newTestDB loads a base table with skewed group sizes.
func newTestDB(t testing.TB, driver func(*engine.Engine) *drivers.Driver) (drivers.DB, *Builder) {
	t.Helper()
	e := engine.NewSeeded(11)
	if err := e.CreateTable("sales", []engine.Column{
		{Name: "id", Type: engine.TInt},
		{Name: "city", Type: engine.TString},
		{Name: "amount", Type: engine.TFloat},
	}); err != nil {
		t.Fatal(err)
	}
	// Skewed strata: city-0 has 10 rows, city-1 has 100, city-2 has 1000,
	// city-3 has 10000.
	var rows [][]engine.Value
	id := 0
	for c, size := range []int{10, 100, 1000, 10000} {
		for i := 0; i < size; i++ {
			id++
			rows = append(rows, []engine.Value{int64(id), fmt.Sprintf("city-%d", c), float64(id % 97)})
		}
	}
	if err := e.InsertRows("sales", rows); err != nil {
		t.Fatal(err)
	}
	db := driver(e)
	cat, err := meta.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, NewBuilder(db, cat)
}

func TestCreateUniform(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if si.SampleRows < 800 || si.SampleRows > 1400 {
		t.Fatalf("10%% of 11110 rows gave %d", si.SampleRows)
	}
	if si.BaseRows != 11110 {
		t.Errorf("base rows %d", si.BaseRows)
	}
	// Sample table has the verdict columns.
	rs, err := db.Query("select min(verdict_prob), max(verdict_prob), min(verdict_sid), max(verdict_sid) from " + si.SampleTable)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := engine.ToFloat(rs.Rows[0][0]); p != 0.1 {
		t.Errorf("prob %v", p)
	}
	if lo, _ := engine.ToInt(rs.Rows[0][2]); lo < 1 {
		t.Errorf("sid lo %v", lo)
	}
	if hi, _ := engine.ToInt(rs.Rows[0][3]); hi > si.Subsamples {
		t.Errorf("sid hi %v > b %v", hi, si.Subsamples)
	}
}

func TestCreateUniformImpalaDialect(t *testing.T) {
	// Impala path exercises the no-rand-in-where rewrite.
	_, b := newTestDB(t, drivers.NewImpala)
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if si.SampleRows < 800 || si.SampleRows > 1400 {
		t.Fatalf("impala uniform sample rows %d", si.SampleRows)
	}
}

func TestCreateUniformRedshiftDialect(t *testing.T) {
	_, b := newTestDB(t, drivers.NewRedshift)
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if si.SampleRows < 800 || si.SampleRows > 1400 {
		t.Fatalf("redshift uniform sample rows %d", si.SampleRows)
	}
}

func TestCreateHashed(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	si, err := b.CreateHashed("sales", "id", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if si.SampleRows < 1600 || si.SampleRows > 2900 {
		t.Fatalf("20%% universe sample rows %d", si.SampleRows)
	}
	// Hashed sampling is deterministic: rebuilding yields identical rows.
	rs1, _ := db.Query("select count(*) from " + si.SampleTable)
	si2, err := b.CreateHashed("sales", "id", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := db.Query("select count(*) from " + si2.SampleTable)
	if rs1.Rows[0][0] != rs2.Rows[0][0] {
		t.Fatal("hashed sample not deterministic")
	}
}

func TestHashedSamplesAgreeAcrossTables(t *testing.T) {
	// Two tables sharing key values must sample the same keys — the
	// property that makes universe-sample joins work (Section 5.1).
	e := engine.NewSeeded(3)
	e.CreateTable("t1", []engine.Column{{Name: "k", Type: engine.TInt}})
	e.CreateTable("t2", []engine.Column{{Name: "k", Type: engine.TInt}})
	for i := 0; i < 5000; i++ {
		e.InsertRows("t1", [][]engine.Value{{int64(i)}})
		e.InsertRows("t2", [][]engine.Value{{int64(i)}})
	}
	db := drivers.NewGeneric(e)
	cat, _ := meta.Open(db)
	b := NewBuilder(db, cat)
	s1, err := b.CreateHashed("t1", "k", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.CreateHashed("t2", "k", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := db.Query(fmt.Sprintf(
		"select count(*) from %s a inner join %s b on a.k = b.k", s1.SampleTable, s2.SampleTable))
	if err != nil {
		t.Fatal(err)
	}
	joined, _ := engine.ToInt(rs.Rows[0][0])
	if joined != s1.SampleRows || joined != s2.SampleRows {
		t.Fatalf("universe join lost keys: joined=%d s1=%d s2=%d", joined, s1.SampleRows, s2.SampleRows)
	}
}

func TestCreateStratifiedGuarantee(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	b.MinStratumRows = 10
	si, err := b.CreateStratified("sales", []string{"city"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Equation 1: every stratum keeps at least min(m, stratum size) rows.
	rs, err := db.Query("select city, count(*) from " + si.SampleTable + " group by city order by city")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("strata in sample: %d", len(rs.Rows))
	}
	sizes := map[string]int64{"city-0": 10, "city-1": 100, "city-2": 1000, "city-3": 10000}
	m := int64(math.Ceil(11110 * 0.05 / 4)) // = 139
	for _, r := range rs.Rows {
		city := r[0].(string)
		got, _ := engine.ToInt(r[1])
		want := m
		if sizes[city] < want {
			want = sizes[city]
		}
		if got < want {
			t.Errorf("stratum %s: %d rows < required %d", city, got, want)
		}
	}
	// Small strata are taken whole.
	rs2, _ := db.Query("select count(*) from " + si.SampleTable + " where city = 'city-0'")
	if v, _ := engine.ToInt(rs2.Rows[0][0]); v != 10 {
		t.Errorf("tiny stratum: %d rows, want all 10", v)
	}
}

func TestStratifiedProbColumnMatchesCounts(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	si, err := b.CreateStratified("sales", []string{"city"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// HT estimate of total rows from the stratified sample should be close
	// to the true 11110.
	rs, err := db.Query("select sum(1.0 / verdict_prob) from " + si.SampleTable)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := engine.ToFloat(rs.Rows[0][0])
	if math.Abs(est-11110)/11110 > 0.1 {
		t.Fatalf("HT total from stratified sample: %v want ~11110", est)
	}
}

func TestCreateStratifiedImpala(t *testing.T) {
	_, b := newTestDB(t, drivers.NewImpala)
	si, err := b.CreateStratified("sales", []string{"city"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if si.SampleRows == 0 {
		t.Fatal("empty stratified sample")
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	if _, err := b.CreateUniform("sales", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateStratified("sales", []string{"city"}, 0.05); err != nil {
		t.Fatal(err)
	}
	cat, err := meta.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := cat.ForTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("catalog entries: %d", len(infos))
	}
	var sawStrat bool
	for _, si := range infos {
		if si.Type == sqlparser.StratifiedSample {
			sawStrat = true
			if len(si.Columns) != 1 || si.Columns[0] != "city" {
				t.Errorf("stratified columns: %v", si.Columns)
			}
		}
	}
	if !sawStrat {
		t.Error("stratified sample not in catalog")
	}
}

func TestCatalogReplaceOnReRegister(t *testing.T) {
	_, b := newTestDB(t, drivers.NewGeneric)
	if _, err := b.CreateUniform("sales", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateUniform("sales", 0.2); err != nil {
		t.Fatal(err)
	}
	infos, err := b.cat.ForTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("re-registering same sample duplicated catalog rows: %d", len(infos))
	}
	if infos[0].Ratio != 0.2 {
		t.Errorf("ratio not updated: %v", infos[0].Ratio)
	}
}

func TestCreateAuto(t *testing.T) {
	_, b := newTestDB(t, drivers.NewGeneric)
	b.AutoTargetRows = 1000 // scaled-down default policy
	infos, err := b.CreateAuto("sales")
	if err != nil {
		t.Fatal(err)
	}
	var uni, hashed, strat int
	for _, si := range infos {
		switch si.Type {
		case sqlparser.UniformSample:
			uni++
		case sqlparser.HashedSample:
			hashed++
		case sqlparser.StratifiedSample:
			strat++
		}
	}
	if uni != 1 {
		t.Errorf("uniform samples: %d", uni)
	}
	// id has 11110 distinct values (>1% of rows) -> hashed; city has 4
	// (<1%) -> stratified. amount has 97 (<1%) -> stratified.
	if hashed < 1 {
		t.Errorf("hashed samples: %d", hashed)
	}
	if strat < 1 {
		t.Errorf("stratified samples: %d", strat)
	}
}

func TestAppendBatchUniform(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	before := si.SampleRows
	// New batch of 5000 rows.
	if err := db.Exec("create table batch as select id, city, amount from sales limit 5000"); err != nil {
		t.Fatal(err)
	}
	si2, err := b.AppendBatch(si, "batch")
	if err != nil {
		t.Fatal(err)
	}
	added := si2.SampleRows - before
	if added < 350 || added > 700 {
		t.Fatalf("appended sample rows: %d (want ~500)", added)
	}
	if si2.BaseRows != si.BaseRows+5000 {
		t.Errorf("base rows: %d", si2.BaseRows)
	}
}

func TestAppendBatchStratifiedKeepsProbs(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	si, err := b.CreateStratified("sales", []string{"city"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Batch contains known strata plus a brand-new one.
	if err := db.Exec("create table batch as select id, city, amount from sales where city = 'city-3' limit 1000"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("insert into batch values (999999, 'city-new', 1.0)"); err != nil {
		t.Fatal(err)
	}
	si2, err := b.AppendBatch(si, "batch")
	if err != nil {
		t.Fatal(err)
	}
	// The brand-new stratum must be present (probability 1).
	rs, err := db.Query("select count(*) from " + si2.SampleTable + " where city = 'city-new'")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := engine.ToInt(rs.Rows[0][0]); v != 1 {
		t.Fatalf("new stratum rows: %d", v)
	}
}

func TestIsStale(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := b.IsStale(si)
	if err != nil || stale {
		t.Fatalf("fresh sample reported stale (err %v)", err)
	}
	if err := db.Exec("insert into sales values (999999, 'city-0', 5.0)"); err != nil {
		t.Fatal(err)
	}
	stale, err = b.IsStale(si)
	if err != nil || !stale {
		t.Fatalf("appended base not reported stale (err %v)", err)
	}
}

func TestSampleNameDeterministic(t *testing.T) {
	a := SampleName("Orders", sqlparser.StratifiedSample, []string{"City", "state"})
	b := SampleName("orders", sqlparser.StratifiedSample, []string{"city", "State"})
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
}

func TestCreateRejectsBadTau(t *testing.T) {
	_, b := newTestDB(t, drivers.NewGeneric)
	if _, err := b.CreateUniform("sales", 0); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := b.CreateUniform("sales", 1.5); err == nil {
		t.Error("tau>1 accepted")
	}
	if _, err := b.CreateStratified("sales", nil, 0.1); err == nil {
		t.Error("stratified without columns accepted")
	}
}

func TestBlockPartitioning(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	b.BlockRows = 100
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if si.BlockRows != 100 {
		t.Fatalf("BlockRows: %d", si.BlockRows)
	}
	// ~1111 expected sample rows at 100 rows/block: around 12 blocks.
	if len(si.BlockCounts) < 8 || len(si.BlockCounts) > 16 {
		t.Fatalf("block count: %d (%v)", len(si.BlockCounts), si.BlockCounts)
	}
	if si.TotalBlockRows() != si.SampleRows {
		t.Fatalf("block counts sum %d != sample rows %d", si.TotalBlockRows(), si.SampleRows)
	}
	// The block column holds only ids in [1, len(BlockCounts)].
	rs, err := db.Query("select min(_vdb_block), max(_vdb_block) from " + si.SampleTable)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := engine.ToInt(rs.Rows[0][0])
	hi, _ := engine.ToInt(rs.Rows[0][1])
	if lo < 1 || hi > int64(len(si.BlockCounts)) {
		t.Fatalf("block id range [%d, %d] vs %d blocks", lo, hi, len(si.BlockCounts))
	}
}

func TestBlockPartitioningAllTypes(t *testing.T) {
	_, b := newTestDB(t, drivers.NewGeneric)
	b.BlockRows = 64
	if si, err := b.CreateHashed("sales", "id", 0.1); err != nil {
		t.Fatal(err)
	} else if si.TotalBlockRows() != si.SampleRows || len(si.BlockCounts) == 0 {
		t.Fatalf("hashed blocks: %v vs %d rows", si.BlockCounts, si.SampleRows)
	}
	if si, err := b.CreateStratified("sales", []string{"city"}, 0.05); err != nil {
		t.Fatal(err)
	} else if si.TotalBlockRows() != si.SampleRows || len(si.BlockCounts) == 0 {
		t.Fatalf("stratified blocks: %v vs %d rows", si.BlockCounts, si.SampleRows)
	}
}

func TestAppendBatchExtendsLastOpenBlock(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	b.BlockRows = 200
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	blocksBefore := len(si.BlockCounts)
	lastBefore := si.BlockCounts[blocksBefore-1]
	// A small batch (~50 expected sample rows) should flow into the open
	// block, not start a fresh one.
	if err := db.Exec("create table smallbatch as select id, city, amount from sales limit 500"); err != nil {
		t.Fatal(err)
	}
	si2, err := b.AppendBatch(si, "smallbatch")
	if err != nil {
		t.Fatal(err)
	}
	if si2.TotalBlockRows() != si2.SampleRows {
		t.Fatalf("block counts sum %d != sample rows %d", si2.TotalBlockRows(), si2.SampleRows)
	}
	if len(si2.BlockCounts) > blocksBefore+1 {
		t.Fatalf("small append grew blocks %d -> %d", blocksBefore, len(si2.BlockCounts))
	}
	if si2.SampleRows > si.SampleRows && si2.BlockCounts[blocksBefore-1] < lastBefore {
		t.Fatalf("last open block shrank: %d -> %d", lastBefore, si2.BlockCounts[blocksBefore-1])
	}

	// A large batch must spill into new blocks.
	if err := db.Exec("create table bigbatch as select id, city, amount from sales"); err != nil {
		t.Fatal(err)
	}
	si3, err := b.AppendBatch(si2, "bigbatch")
	if err != nil {
		t.Fatal(err)
	}
	if si3.TotalBlockRows() != si3.SampleRows {
		t.Fatalf("block counts sum %d != sample rows %d", si3.TotalBlockRows(), si3.SampleRows)
	}
	if len(si3.BlockCounts) <= len(si2.BlockCounts) {
		t.Fatalf("large append did not open new blocks: %d -> %d",
			len(si2.BlockCounts), len(si3.BlockCounts))
	}
}

func TestAppendBatchWithBlockPartitioningDisabled(t *testing.T) {
	// BlockRows <= 0 disables block partitioning, but the sample table still
	// carries the (single-valued) block column — appends must match its
	// column list instead of erroring on a width mismatch.
	db, b := newTestDB(t, drivers.NewGeneric)
	b.BlockRows = 0
	si, err := b.CreateUniform("sales", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("create table nbbatch as select id, city, amount from sales limit 1000"); err != nil {
		t.Fatal(err)
	}
	si2, err := b.AppendBatch(si, "nbbatch")
	if err != nil {
		t.Fatalf("append to block-disabled sample: %v", err)
	}
	if si2.SampleRows < si.SampleRows {
		t.Fatalf("sample shrank: %d -> %d", si.SampleRows, si2.SampleRows)
	}
}

// TestAppendBatchIncrementalCountsMatchRecount cross-checks AppendBatch's
// incremental bookkeeping (counted on the staged delta only) against a full
// register recount over the final sample table: SampleRows and every
// per-block count must agree exactly, for every sample type.
func TestAppendBatchIncrementalCountsMatchRecount(t *testing.T) {
	db, b := newTestDB(t, drivers.NewGeneric)
	b.BlockRows = 150
	for _, tc := range []struct {
		name   string
		create func() (meta.SampleInfo, error)
	}{
		{"uniform", func() (meta.SampleInfo, error) { return b.CreateUniform("sales", 0.1) }},
		{"hashed", func() (meta.SampleInfo, error) { return b.CreateHashed("sales", "id", 0.1) }},
		{"stratified", func() (meta.SampleInfo, error) { return b.CreateStratified("sales", []string{"city"}, 0.05) }},
	} {
		si, err := tc.create()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		batch := "batch_" + tc.name
		if err := db.Exec("create table " + batch + " as select id, city, amount from sales limit 4000"); err != nil {
			t.Fatal(err)
		}
		si2, err := b.AppendBatch(si, batch)
		if err != nil {
			t.Fatalf("%s append: %v", tc.name, err)
		}
		recount, err := b.register(si2)
		if err != nil {
			t.Fatalf("%s recount: %v", tc.name, err)
		}
		if si2.SampleRows != recount.SampleRows {
			t.Errorf("%s: incremental SampleRows %d != recount %d", tc.name, si2.SampleRows, recount.SampleRows)
		}
		if len(si2.BlockCounts) != len(recount.BlockCounts) {
			t.Errorf("%s: incremental blocks %v != recount %v", tc.name, si2.BlockCounts, recount.BlockCounts)
			continue
		}
		for i := range si2.BlockCounts {
			if si2.BlockCounts[i] != recount.BlockCounts[i] {
				t.Errorf("%s: block %d incremental %d != recount %d",
					tc.name, i+1, si2.BlockCounts[i], recount.BlockCounts[i])
			}
		}
		if si2.TotalBlockRows() != si2.SampleRows {
			t.Errorf("%s: block counts sum %d != sample rows %d", tc.name, si2.TotalBlockRows(), si2.SampleRows)
		}
		// The staging table must not linger.
		if _, err := db.Query("select count(*) from " + si2.SampleTable + "_verdict_stage"); err == nil {
			t.Errorf("%s: staging table left behind", tc.name)
		}
	}
}
