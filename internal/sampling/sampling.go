// Package sampling creates VerdictDB's sample tables using nothing but SQL
// issued to the underlying database — the core constraint of Section 3.
// Uniform and hashed (universe) samples are single Bernoulli-filtered CTAS
// statements; stratified samples use the two-pass probabilistic scheme of
// Section 3.2, with the staircase CASE expression derived from Lemma 1.
//
// Every sample table carries two extra columns:
//
//	verdict_prob — the tuple's inclusion probability (Section 3.1)
//	verdict_sid  — the tuple's variational-subsample id in [1, b]
//
// verdict_sid implements the variational table of Definition 1 with
// b = sqrt(sample size) subsamples, materialized at creation time like the
// released VerdictDB (the rewritten query of Appendix G reads a stored
// sid).
package sampling

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
	"verdictdb/internal/stats"
)

// Reserved sample-table column names.
const (
	ProbCol = "verdict_prob"
	SidCol  = "verdict_sid"
	// BlockCol partitions a scramble into fixed-size blocks. Block ids are
	// 1-based and assigned independently of tuple values, so any block
	// prefix is itself a uniform random subsample of the sample — the
	// property the progressive executor's early stopping relies on.
	BlockCol = "_vdb_block"
)

// Builder creates samples against one underlying database. It is safe for
// concurrent use: sample DDL (creation, append maintenance) is serialized
// by an internal mutex — multi-statement builds (drop + CTAS + register)
// must not interleave — while queries against finished samples proceed
// concurrently through the engine.
type Builder struct {
	db  drivers.DB
	cat *meta.Catalog

	// mu serializes sample DDL. Tuning fields below are read under it too,
	// so adjust them before sharing the builder across goroutines.
	mu sync.Mutex

	// Delta is the per-stratum failure probability of Lemma 1 (default
	// 0.001, the paper's default).
	Delta float64 //verdict:guardedby mu
	// MinStratumRows floors the per-stratum minimum m (Equation 1's
	// |T| tau / d can be tiny for many-strata tables).
	MinStratumRows int64 //verdict:guardedby mu
	// StaircaseLevels is the number of CASE rungs (default 16).
	StaircaseLevels int //verdict:guardedby mu
	// AutoTargetRows drives the default sampling parameter of Appendix F:
	// tau = AutoTargetRows / |T| (paper default: 10M rows; scaled deployments
	// lower it).
	AutoTargetRows int64 //verdict:guardedby mu
	// BlockRows is the target rows per scramble block (the block size knob
	// of the progressive executor). Samples are partitioned into
	// ceil(rows/BlockRows) blocks at build time; <= 0 disables block
	// partitioning.
	BlockRows int64 //verdict:guardedby mu
}

// NewBuilder returns a Builder with the paper's defaults.
func NewBuilder(db drivers.DB, cat *meta.Catalog) *Builder {
	return &Builder{
		db:              db,
		cat:             cat,
		Delta:           0.001,
		MinStratumRows:  10,
		StaircaseLevels: 16,
		AutoTargetRows:  10_000_000,
		BlockRows:       1024,
	}
}

// SampleName builds the deterministic sample-table name for a base table,
// sample type, and ON-column list.
func SampleName(base string, typ sqlparser.SampleType, cols []string) string {
	name := strings.ToLower(base) + "_vdb_" + typ.String()
	if len(cols) > 0 {
		low := make([]string, len(cols))
		for i, c := range cols {
			low[i] = strings.ToLower(c)
		}
		name += "_" + strings.Join(low, "_")
	}
	return name
}

func (b *Builder) baseRows(table string) (int64, error) {
	rs, err := b.db.Query("select count(*) from " + table)
	if err != nil {
		return 0, err
	}
	n, _ := engine.ToInt(rs.Rows[0][0])
	return n, nil
}

// render converts a canonical SQL statement into the driver's dialect and
// executes it — the Syntax Changer path of Figure 1b.
func (b *Builder) render(canonical string) (string, error) {
	stmt, err := sqlparser.Parse(canonical)
	if err != nil {
		return "", fmt.Errorf("sampling: internal SQL failed to parse: %w (sql: %s)", err, canonical)
	}
	return drivers.Render(b.db, stmt), nil
}

func (b *Builder) exec(canonical string) error {
	sql, err := b.render(canonical)
	if err != nil {
		return err
	}
	return b.db.Exec(sql)
}

// subsampleCount picks b = sqrt(n) (Appendix B.3: ns = sqrt(n) minimizes
// the asymptotic error, and b = n / ns = sqrt(n)).
func subsampleCount(expectedRows float64) int64 {
	bb := int64(math.Round(math.Sqrt(expectedRows)))
	if bb < 2 {
		bb = 2
	}
	return bb
}

// blockCount picks the number of scramble blocks for an expected sample size.
//
//verdict:locked mu
func (b *Builder) blockCount(expectedRows float64) int64 {
	if b.BlockRows <= 0 {
		return 1
	}
	n := int64(math.Ceil(expectedRows / float64(b.BlockRows)))
	if n < 1 {
		n = 1
	}
	return n
}

// blockExpr renders the block-id assignment for fresh sample rows: a uniform
// random block in [1, nBlocks], independent of tuple values.
func blockExpr(nBlocks int64) string {
	if nBlocks <= 1 {
		return "1"
	}
	return fmt.Sprintf("1 + floor(rand() * %d)", nBlocks)
}

// CreateUniform builds a uniform (Bernoulli) sample with parameter tau.
func (b *Builder) CreateUniform(table string, tau float64) (meta.SampleInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.createUniform(table, tau)
}

//verdict:locked mu
func (b *Builder) createUniform(table string, tau float64) (meta.SampleInfo, error) {
	if tau <= 0 || tau > 1 {
		return meta.SampleInfo{}, fmt.Errorf("sampling: tau %v out of (0,1]", tau)
	}
	n, err := b.baseRows(table)
	if err != nil {
		return meta.SampleInfo{}, err
	}
	cols, err := b.db.Columns(table)
	if err != nil {
		return meta.SampleInfo{}, err
	}
	name := SampleName(table, sqlparser.UniformSample, nil)
	bb := subsampleCount(tau * float64(n))
	nBlocks := b.blockCount(tau * float64(n))
	colList := strings.Join(cols, ", ")

	var sql string
	if b.db.Dialect().NoRandInWhere {
		// Impala-style: rand() must move out of the predicate.
		sql = fmt.Sprintf(
			`create table %s as select %s, %.10g as %s, 1 + floor(rand() * %d) as %s, %s as %s `+
				`from (select *, rand() as verdict_r from %s) as verdict_t0 where verdict_r < %.10g order by %s`,
			name, colList, tau, ProbCol, bb, SidCol, blockExpr(nBlocks), BlockCol, table, tau, BlockCol)
	} else {
		sql = fmt.Sprintf(
			`create table %s as select %s, %.10g as %s, 1 + floor(rand() * %d) as %s, %s as %s `+
				`from %s where rand() < %.10g order by %s`,
			name, colList, tau, ProbCol, bb, SidCol, blockExpr(nBlocks), BlockCol, table, tau, BlockCol)
	}
	if err := b.exec("drop table if exists " + name); err != nil {
		return meta.SampleInfo{}, err
	}
	if err := b.exec(sql); err != nil {
		return meta.SampleInfo{}, err
	}
	return b.register(meta.SampleInfo{
		SampleTable: name, BaseTable: table, Type: sqlparser.UniformSample,
		Ratio: tau, BaseRows: n, Subsamples: bb, BlockRows: b.BlockRows,
	})
}

// CreateHashed builds a hashed (universe) sample on one column: tuples whose
// hash01(column) falls below tau. Joining two hashed samples built on the
// join key with the same tau preserves the join (Section 5.1).
func (b *Builder) CreateHashed(table, column string, tau float64) (meta.SampleInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.createHashed(table, column, tau)
}

//verdict:locked mu
func (b *Builder) createHashed(table, column string, tau float64) (meta.SampleInfo, error) {
	if tau <= 0 || tau > 1 {
		return meta.SampleInfo{}, fmt.Errorf("sampling: tau %v out of (0,1]", tau)
	}
	n, err := b.baseRows(table)
	if err != nil {
		return meta.SampleInfo{}, err
	}
	cols, err := b.db.Columns(table)
	if err != nil {
		return meta.SampleInfo{}, err
	}
	name := SampleName(table, sqlparser.HashedSample, []string{column})
	bb := subsampleCount(tau * float64(n))
	nBlocks := b.blockCount(tau * float64(n))
	colList := strings.Join(cols, ", ")
	// The subsample id is derived from the hash of the sampled column so
	// that identical keys land in identical subsamples on every table —
	// which is what makes universe-sample joins estimable. The block id
	// stays value-independent (rand), so a block prefix thins rows per key
	// rather than shrinking the key universe.
	sql := fmt.Sprintf(
		`create table %s as select %s, %.10g as %s, 1 + hash_bucket(%s, %d) as %s, %s as %s `+
			`from %s where hash01(%s) < %.10g order by %s`,
		name, colList, tau, ProbCol, column, bb, SidCol, blockExpr(nBlocks), BlockCol, table, column, tau, BlockCol)
	if err := b.exec("drop table if exists " + name); err != nil {
		return meta.SampleInfo{}, err
	}
	if err := b.exec(sql); err != nil {
		return meta.SampleInfo{}, err
	}
	// Record how many distinct hash keys the universe holds: the planner
	// refuses degenerate universes (Appendix F builds hashed samples only
	// on high-cardinality columns).
	rsKeys, err := b.db.Query(fmt.Sprintf("select count(distinct %s) from %s", column, name))
	if err != nil {
		return meta.SampleInfo{}, err
	}
	keys, _ := engine.ToInt(rsKeys.Rows[0][0])
	return b.register(meta.SampleInfo{
		SampleTable: name, BaseTable: table, Type: sqlparser.HashedSample,
		Ratio: tau, Columns: []string{strings.ToLower(column)},
		BaseRows: n, Subsamples: bb, UniverseKeys: keys, BlockRows: b.BlockRows,
	})
}

// CreateStratified builds a stratified sample on a column set using the
// paper's two-pass scheme: pass one counts stratum sizes; pass two joins the
// counts back and Bernoulli-samples with the staircase probability, which
// guarantees (w.p. 1-Delta per stratum) at least m tuples per stratum,
// m = max(MinStratumRows, |T| tau / d) as in Equation 1.
func (b *Builder) CreateStratified(table string, columns []string, tau float64) (meta.SampleInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.createStratified(table, columns, tau)
}

//verdict:locked mu
func (b *Builder) createStratified(table string, columns []string, tau float64) (meta.SampleInfo, error) {
	if len(columns) == 0 {
		return meta.SampleInfo{}, fmt.Errorf("sampling: stratified sample needs ON columns")
	}
	if tau <= 0 || tau > 1 {
		return meta.SampleInfo{}, fmt.Errorf("sampling: tau %v out of (0,1]", tau)
	}
	n, err := b.baseRows(table)
	if err != nil {
		return meta.SampleInfo{}, err
	}
	cols, err := b.db.Columns(table)
	if err != nil {
		return meta.SampleInfo{}, err
	}
	name := SampleName(table, sqlparser.StratifiedSample, columns)
	sizesTable := name + "_sizes"
	colList := strings.Join(columns, ", ")

	// Pass 1: stratum sizes.
	if err := b.exec("drop table if exists " + sizesTable); err != nil {
		return meta.SampleInfo{}, err
	}
	pass1 := fmt.Sprintf("create table %s as select %s, count(*) as strata_size from %s group by %s",
		sizesTable, colList, table, colList)
	if err := b.exec(pass1); err != nil {
		return meta.SampleInfo{}, err
	}

	// Stratum statistics for the staircase.
	rs, err := b.db.Query(fmt.Sprintf("select count(*), max(strata_size) from %s", sizesTable))
	if err != nil {
		return meta.SampleInfo{}, err
	}
	d, _ := engine.ToInt(rs.Rows[0][0])
	maxSize, _ := engine.ToInt(rs.Rows[0][1])
	if d == 0 {
		return meta.SampleInfo{}, fmt.Errorf("sampling: table %s is empty", table)
	}
	m := int64(math.Ceil(float64(n) * tau / float64(d)))
	if m < b.MinStratumRows {
		m = b.MinStratumRows
	}
	steps := stats.Staircase(m, maxSize, b.Delta, b.StaircaseLevels)
	caseExpr := stats.StaircaseCaseSQL(steps, "verdict_g.strata_size")

	// Expected sample size (for choosing the subsample count b).
	rs2, err := b.db.Query(fmt.Sprintf(
		"select sum(strata_size * (%s)) from %s",
		stats.StaircaseCaseSQL(steps, "strata_size"), sizesTable))
	if err != nil {
		return meta.SampleInfo{}, err
	}
	expected, _ := engine.ToFloat(rs2.Rows[0][0])
	bb := subsampleCount(expected)
	nBlocks := b.blockCount(expected)

	// Pass 2: Bernoulli sampling with per-stratum staircase probabilities.
	onConds := make([]string, len(columns))
	for i, c := range columns {
		onConds[i] = fmt.Sprintf("verdict_t.%s = verdict_g.%s", c, c)
	}
	qualCols := make([]string, len(cols))
	for i, c := range cols {
		qualCols[i] = "verdict_t." + c
	}
	var pass2 string
	if b.db.Dialect().NoRandInWhere {
		innerCols := strings.Join(cols, ", ")
		pass2 = fmt.Sprintf(
			`create table %s as select %s, (%s) as %s, 1 + floor(rand() * %d) as %s, %s as %s `+
				`from (select %s, rand() as verdict_r from %s) as verdict_t `+
				`inner join %s as verdict_g on %s `+
				`where verdict_t.verdict_r < (%s) order by %s`,
			name, strings.Join(qualCols, ", "), caseExpr, ProbCol, bb, SidCol, blockExpr(nBlocks), BlockCol,
			innerCols, table, sizesTable, strings.Join(onConds, " and "), caseExpr, BlockCol)
	} else {
		pass2 = fmt.Sprintf(
			`create table %s as select %s, (%s) as %s, 1 + floor(rand() * %d) as %s, %s as %s `+
				`from %s as verdict_t inner join %s as verdict_g on %s `+
				`where rand() < (%s) order by %s`,
			name, strings.Join(qualCols, ", "), caseExpr, ProbCol, bb, SidCol, blockExpr(nBlocks), BlockCol,
			table, sizesTable, strings.Join(onConds, " and "), caseExpr, BlockCol)
	}
	if err := b.exec("drop table if exists " + name); err != nil {
		return meta.SampleInfo{}, err
	}
	if err := b.exec(pass2); err != nil {
		return meta.SampleInfo{}, err
	}
	if err := b.exec("drop table " + sizesTable); err != nil {
		return meta.SampleInfo{}, err
	}
	low := make([]string, len(columns))
	for i, c := range columns {
		low[i] = strings.ToLower(c)
	}
	return b.register(meta.SampleInfo{
		SampleTable: name, BaseTable: table, Type: sqlparser.StratifiedSample,
		Ratio: tau, Columns: low, BaseRows: n, Subsamples: bb, BlockRows: b.BlockRows,
	})
}

// register counts the created sample's rows and per-block rows, and records
// it in the catalog. Block counts are always recounted from the table itself
// so creation and append maintenance share one source of truth.
func (b *Builder) register(si meta.SampleInfo) (meta.SampleInfo, error) {
	rs, err := b.db.Query("select count(*) from " + si.SampleTable)
	if err != nil {
		return si, err
	}
	si.SampleRows, _ = engine.ToInt(rs.Rows[0][0])
	if si.BlockRows > 0 {
		counts, err := b.blockCounts(si.SampleTable)
		if err != nil {
			return si, err
		}
		si.BlockCounts = counts
	}
	if err := b.cat.Register(si); err != nil {
		return si, err
	}
	return si, nil
}

// blockCounts reads per-block row counts (1-based block ids; blocks the
// random assignment left empty report 0).
func (b *Builder) blockCounts(table string) ([]int64, error) {
	rs, err := b.db.Query(fmt.Sprintf("select %s, count(*) from %s group by %s",
		BlockCol, table, BlockCol))
	if err != nil {
		return nil, err
	}
	byID := map[int64]int64{}
	var maxID int64
	for _, r := range rs.Rows {
		id, ok := engine.ToInt(r[0])
		if !ok || id < 1 {
			continue
		}
		n, _ := engine.ToInt(r[1])
		byID[id] = n
		if id > maxID {
			maxID = id
		}
	}
	counts := make([]int64, maxID)
	for i := range counts {
		counts[i] = byID[int64(i+1)]
	}
	return counts, nil
}

// CreateAuto applies the default sampling policy of Appendix F to a table:
//  1. tau = AutoTargetRows / |T| (capped at 1),
//  2. always a uniform sample,
//  3. hashed samples on up to 10 highest-cardinality columns whose
//     cardinality exceeds 1% of |T|,
//  4. stratified samples on up to 10 lowest-cardinality columns whose
//     cardinality is below 1% of |T|.
func (b *Builder) CreateAuto(table string) ([]meta.SampleInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, err := b.baseRows(table)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("sampling: table %s is empty", table)
	}
	tau := float64(b.AutoTargetRows) / float64(n)
	if tau > 1 {
		tau = 1
	}
	cols, err := b.db.Columns(table)
	if err != nil {
		return nil, err
	}
	type card struct {
		col string
		ndv int64
	}
	cards := make([]card, 0, len(cols))
	for _, c := range cols {
		rs, err := b.db.Query(fmt.Sprintf("select ndv(%s) from %s", c, table))
		if err != nil {
			return nil, err
		}
		v, _ := engine.ToInt(rs.Rows[0][0])
		cards = append(cards, card{col: c, ndv: v})
	}
	var out []meta.SampleInfo
	si, err := b.createUniform(table, tau)
	if err != nil {
		return nil, err
	}
	out = append(out, si)

	threshold := int64(math.Ceil(0.01 * float64(n)))
	var high, low []card
	for _, c := range cards {
		if c.ndv >= threshold {
			high = append(high, c)
		} else if c.ndv > 1 {
			low = append(low, c)
		}
	}
	sort.Slice(high, func(i, j int) bool { return high[i].ndv > high[j].ndv })
	sort.Slice(low, func(i, j int) bool { return low[i].ndv < low[j].ndv })
	for i, c := range high {
		if i >= 10 {
			break
		}
		si, err := b.createHashed(table, c.col, tau)
		if err != nil {
			return nil, err
		}
		out = append(out, si)
	}
	for i, c := range low {
		if i >= 10 {
			break
		}
		si, err := b.createStratified(table, []string{c.col}, tau)
		if err != nil {
			return nil, err
		}
		out = append(out, si)
	}
	return out, nil
}
