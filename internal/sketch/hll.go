// Package sketch implements the streaming summaries that "native"
// approximate aggregates in commercial engines rely on: HyperLogLog for
// count-distinct (Impala's ndv, Redshift's approximate count) and a
// reservoir-based quantile estimator (approx_median / percentile_disc).
//
// In the paper's Table 2 these native features are VerdictDB's comparators:
// they are cheap in memory but must scan the entire table, whereas
// VerdictDB's sampling-based answers scan 1-2%. The implementations here
// preserve exactly that behaviour.
package sketch

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// HLL is a HyperLogLog cardinality estimator with 2^p registers.
// The standard-error of the estimate is roughly 1.04/sqrt(2^p).
type HLL struct {
	p         uint8
	registers []uint8
}

// NewHLL returns a HyperLogLog sketch with precision p in [4, 18].
// p=12 (4096 registers, ~1.6% error) matches common engine defaults.
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	return &HLL{p: p, registers: make([]uint8, 1<<p)}
}

// AddString offers a string element to the sketch.
//
// The hash is domain-separated from Hash01/Hash64 (the sampling hashes):
// without separation, ndv() over a universe sample collapses, because every
// sampled key satisfies hash01(key) < tau and therefore occupies only the
// first tau fraction of HLL registers.
func (h *HLL) AddString(s string) { h.addHash(mix64(hash64str(s) ^ hllSalt)) }

// hllSalt domain-separates the HLL's hash from the sampling hash.
const hllSalt = 0x9e3779b97f4a7c15

// AddInt64 offers an integer element to the sketch.
func (h *HLL) AddInt64(v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.addHash(mix64(hash64bytes(buf[:]) ^ hllSalt))
}

// AddFloat64 offers a float element to the sketch.
func (h *HLL) AddFloat64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.addHash(mix64(hash64bytes(buf[:]) ^ hllSalt))
}

func (h *HLL) addHash(x uint64) {
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Merge folds other into h. Both sketches must share the same precision.
func (h *HLL) Merge(other *HLL) {
	if other == nil || other.p != h.p {
		return
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
}

// Estimate returns the current cardinality estimate, with the small-range
// (linear counting) and bias corrections from the original paper.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := alphaM(len(h.registers))
	raw := alpha * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		// Linear counting for small cardinalities.
		return m * math.Log(m/float64(zeros))
	}
	if raw > (1.0/30.0)*math.Pow(2, 64) {
		return -math.Pow(2, 64) * math.Log(1-raw/math.Pow(2, 64))
	}
	return raw
}

// StdError returns the theoretical relative standard error of the sketch.
func (h *HLL) StdError() float64 { return 1.04 / math.Sqrt(float64(len(h.registers))) }

func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

func hash64str(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func hash64bytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is a finalizer (splitmix64) improving FNV's avalanche behaviour so
// the leading bits used for register selection are well distributed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash64 exposes the mixed 64-bit hash used by the sketches. The engine's
// hash01() SQL function and hashed-sample creation reuse it so that hashed
// samples and subdomain partitioning agree on bucket boundaries.
func Hash64(s string) uint64 { return hash64str(s) }

// Hash01 maps a string uniformly into [0, 1).
func Hash01(s string) float64 {
	return float64(hash64str(s)>>11) / float64(uint64(1)<<53)
}
