package sketch

import (
	"math/rand"
	"sort"
)

// QuantileSketch estimates quantiles from a stream using bounded-size
// reservoir sampling. This mirrors the behaviour of native approximate
// median/percentile features (e.g. Redshift's approximate percentile_disc):
// a full pass over the data feeding a bounded summary.
type QuantileSketch struct {
	capacity int
	seen     int64
	values   []float64
	rng      *rand.Rand
	sorted   bool
}

// NewQuantileSketch returns a sketch keeping at most capacity values.
// A capacity of 4096 gives roughly 1-2% rank error in practice.
func NewQuantileSketch(capacity int, seed int64) *QuantileSketch {
	if capacity < 16 {
		capacity = 16
	}
	return &QuantileSketch{
		capacity: capacity,
		values:   make([]float64, 0, capacity),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Add offers one value to the sketch (reservoir sampling, Algorithm R).
func (q *QuantileSketch) Add(v float64) {
	q.seen++
	q.sorted = false
	if len(q.values) < q.capacity {
		q.values = append(q.values, v)
		return
	}
	j := q.rng.Int63n(q.seen)
	if j < int64(q.capacity) {
		q.values[j] = v
	}
}

// Count returns the number of values offered so far.
func (q *QuantileSketch) Count() int64 { return q.seen }

// Merge folds another sketch into this one. When the union of both
// reservoirs fits in capacity the merge is exact; otherwise capacity values
// are drawn from the two reservoirs with probability proportional to the
// stream sizes they represent, preserving the uniform-sample property
// approximately. Uses q's RNG, so merging in a fixed order is deterministic.
func (q *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.seen == 0 {
		return
	}
	total := q.seen + o.seen
	if len(q.values)+len(o.values) <= q.capacity {
		q.values = append(q.values, o.values...)
		q.seen = total
		q.sorted = false
		return
	}
	// Draw random elements (not prefixes: a prior Quantile call may have
	// sorted either reservoir, and consuming a sorted prefix would bias the
	// merged sample toward small values). Swap-remove keeps draws uniform
	// without replacement; o's reservoir is copied so merge never mutates it.
	merged := make([]float64, 0, q.capacity)
	av := q.values
	bv := append([]float64(nil), o.values...)
	na, nb := len(av), len(bv)
	wa, wb := float64(q.seen), float64(o.seen)
	for len(merged) < q.capacity && (na > 0 || nb > 0) {
		takeA := nb == 0
		if !takeA && na > 0 {
			takeA = q.rng.Float64() < wa/(wa+wb)
		}
		if takeA {
			j := q.rng.Intn(na)
			merged = append(merged, av[j])
			av[j] = av[na-1]
			na--
		} else {
			j := q.rng.Intn(nb)
			merged = append(merged, bv[j])
			bv[j] = bv[nb-1]
			nb--
		}
	}
	q.values = merged
	q.seen = total
	q.sorted = false
}

// Quantile returns the estimated p-quantile (0 <= p <= 1) of the stream.
// It returns 0 for an empty sketch.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if len(q.values) == 0 {
		return 0
	}
	if !q.sorted {
		sort.Float64s(q.values)
		q.sorted = true
	}
	if p <= 0 {
		return q.values[0]
	}
	if p >= 1 {
		return q.values[len(q.values)-1]
	}
	// Linear interpolation between closest ranks.
	pos := p * float64(len(q.values)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(q.values) {
		return q.values[len(q.values)-1]
	}
	return q.values[lo]*(1-frac) + q.values[lo+1]*frac
}

// Median is Quantile(0.5).
func (q *QuantileSketch) Median() float64 { return q.Quantile(0.5) }
