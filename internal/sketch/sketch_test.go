package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		h := NewHLL(12)
		for i := 0; i < n; i++ {
			h.AddString(fmt.Sprintf("key-%d", i))
		}
		est := h.Estimate()
		rel := math.Abs(est-float64(n)) / float64(n)
		if rel > 0.06 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", n, est, rel)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(12)
	for i := 0; i < 100_000; i++ {
		h.AddString(fmt.Sprintf("key-%d", i%500))
	}
	est := h.Estimate()
	if math.Abs(est-500)/500 > 0.1 {
		t.Fatalf("estimate %.0f want ~500", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(12), NewHLL(12)
	for i := 0; i < 5000; i++ {
		a.AddInt64(int64(i))
		b.AddInt64(int64(i + 2500)) // half overlap
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-7500)/7500 > 0.06 {
		t.Fatalf("merged estimate %.0f want ~7500", est)
	}
}

func TestHLLTypedAdds(t *testing.T) {
	h := NewHLL(12)
	for i := 0; i < 1000; i++ {
		h.AddFloat64(float64(i) + 0.5)
	}
	if est := h.Estimate(); math.Abs(est-1000)/1000 > 0.1 {
		t.Fatalf("float adds: %.0f", est)
	}
}

func TestHLLPrecisionClamping(t *testing.T) {
	if got := len(NewHLL(2).registers); got != 16 {
		t.Errorf("low precision clamp: %d registers", got)
	}
	if got := len(NewHLL(30).registers); got != 1<<18 {
		t.Errorf("high precision clamp: %d registers", got)
	}
}

func TestHash01Range(t *testing.T) {
	f := func(s string) bool {
		v := Hash01(s)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash01Uniformity(t *testing.T) {
	// Bucket 100k hashed integers into 10 bins; each should hold ~10%.
	bins := make([]int, 10)
	for i := 0; i < 100_000; i++ {
		v := Hash01(fmt.Sprintf("i%d", i))
		bins[int(v*10)]++
	}
	for b, c := range bins {
		if c < 9_000 || c > 11_000 {
			t.Errorf("bin %d holds %d of 100000", b, c)
		}
	}
}

func TestQuantileSketchExactUnderCapacity(t *testing.T) {
	q := NewQuantileSketch(1024, 1)
	for i := 1; i <= 101; i++ {
		q.Add(float64(i))
	}
	if m := q.Median(); math.Abs(m-51) > 1e-9 {
		t.Fatalf("median %v", m)
	}
	if p := q.Quantile(0.25); math.Abs(p-26) > 1 {
		t.Fatalf("q25 %v", p)
	}
}

func TestQuantileSketchLargeStream(t *testing.T) {
	q := NewQuantileSketch(4096, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500_000; i++ {
		q.Add(rng.Float64() * 100)
	}
	if m := q.Median(); math.Abs(m-50) > 3 {
		t.Fatalf("median %v want ~50", m)
	}
	if q.Count() != 500_000 {
		t.Fatalf("count %d", q.Count())
	}
}

func TestQuantileSketchEdges(t *testing.T) {
	q := NewQuantileSketch(16, 1)
	if q.Median() != 0 {
		t.Error("empty sketch median")
	}
	q.Add(5)
	if q.Quantile(0) != 5 || q.Quantile(1) != 5 {
		t.Error("single-element quantiles")
	}
}

func TestHLLIndependentOfSamplingHash(t *testing.T) {
	// Keys pre-filtered by Hash01 (a universe sample) must still be counted
	// accurately: the HLL hash is domain-separated from the sampling hash.
	h := NewHLL(12)
	kept := 0
	for i := 0; i < 200_000; i++ {
		key := fmt.Sprintf("i%d", i)
		if Hash01(key) < 0.02 {
			h.AddString(key)
			kept++
		}
	}
	est := h.Estimate()
	if math.Abs(est-float64(kept))/float64(kept) > 0.06 {
		t.Fatalf("ndv over universe sample: estimate %.0f want ~%d", est, kept)
	}
}
