package engine

import "testing"

// Row-view baselines for the E1 benchmarks: the same queries with
// SetVectorized(false), which forces scans through the chunks' cached
// boxed-row views — the interpreter-fallback data path. Diffing these
// against BenchmarkE1* isolates what the vectorized pipeline buys on this
// machine (the row→columnar delta also lands in BENCH_engine.json).

func rowPathEngine(b *testing.B) *Engine {
	e := e1Engine(b)
	e.SetVectorized(false)
	return e
}

func BenchmarkE1GroupedAggRowPath(b *testing.B) {
	benchE1Query(b, rowPathEngine(b), `
		select g, flag, sum(x) as sx, sum(x * (1 - y)) as sxy,
		       avg(x) as ax, count(*) as c
		from fact where d <= '1998-09-02' group by g, flag`)
}

func BenchmarkE1FilterAggRowPath(b *testing.B) {
	benchE1Query(b, rowPathEngine(b), `
		select sum(x * y) as revenue from fact
		where d >= '1994-01-01' and d < '1995-01-01'
		  and y between 0.05 and 0.07 and x < 24`)
}

func BenchmarkE1ProjectRowPath(b *testing.B) {
	benchE1Query(b, rowPathEngine(b), `
		select g, x * (1 - y) as net, substr(d, 1, 4) as yr
		from fact where flag <> 'N'`)
}

func BenchmarkE1HashJoinRowPath(b *testing.B) {
	benchE1Query(b, rowPathEngine(b), `
		select d.cat, sum(f.x * (1 - f.y)) as rev, avg(f.x) as ax, count(*) as c
		from fact f inner join dim d on f.g = d.g
		where f.d <= '1998-09-02' and f.flag <> 'N'
		group by d.cat`)
}
