package engine

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"verdictdb/internal/storage"
)

// chunkSlot is one position in a table's sealed-chunk sequence: either a
// resident *chunk or a reference into an on-disk segment loaded on demand.
// The slot carries enough metadata (row count, per-column zone bounds) for
// planning and pruning without touching chunk data, so zone-map pruning of
// a terabyte table reads only manifests and footers.
type chunkSlot interface {
	// slotRows is the chunk's row count.
	slotRows() int
	// slotZone returns the column's zone summary (min, max over non-NULL
	// values; nil, nil for all-NULL columns).
	slotZone(col int) (Value, Value)
	// load returns the chunk, reading and decoding it from its segment if
	// not resident. qc may be nil (context-free table utilities).
	load(qc *queryCtx) (*chunk, error)
}

// Resident chunks are their own slot: load is the identity, so pure
// in-memory tables pay nothing for the indirection.

func (c *chunk) slotRows() int { return c.n }

func (c *chunk) slotZone(col int) (Value, Value) {
	cv := &c.cols[col]
	return cv.min, cv.max
}

func (c *chunk) load(qc *queryCtx) (*chunk, error) { return c, nil }

// segSlot is a chunk spilled to a segment file: loads go through the data
// directory's shared chunk cache, and a per-slot mutex collapses concurrent
// cold loads of the same chunk into one disk read.
type segSlot struct {
	seg   *storage.Segment
	idx   int
	cache *chunkCache

	mu sync.Mutex // serializes cold loads of this slot
}

func (s *segSlot) slotRows() int { return s.seg.Meta.Chunks[s.idx].NRows }

func (s *segSlot) slotZone(col int) (Value, Value) {
	cm := &s.seg.Meta.Chunks[s.idx].Cols[col]
	return cm.Min, cm.Max
}

func (s *segSlot) load(qc *queryCtx) (*chunk, error) {
	if ch := s.cache.get(s); ch != nil {
		return ch, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch := s.cache.get(s); ch != nil {
		return ch, nil // a concurrent loader beat us to it
	}
	sc, err := s.seg.ReadChunk(s.idx)
	if err != nil {
		return nil, fmt.Errorf("engine: loading chunk %d of %s: %w", s.idx, s.seg.Path, err)
	}
	ch := chunkFromStorage(sc)
	s.cache.put(s, ch)
	return ch, nil
}

// chunkCache is the data directory's LRU over decoded segment chunks. Its
// resident bytes are accounted on the same memGauge type the per-query
// budget uses, but the policy differs deliberately: going over capacity
// evicts the least-recently-used chunks instead of aborting anything —
// eviction is always possible because sealed chunks are immutable and
// reloadable. In-flight scans holding an evicted chunk keep it alive via
// ordinary GC reachability; the cache only controls how long chunks stay
// warm.
type chunkCache struct {
	mu    sync.Mutex
	cap   int64
	gauge memGauge // resident decoded bytes (estimate, see chunkBytes)

	ll    *list.List                 //verdict:guardedby mu
	items map[*segSlot]*list.Element //verdict:guardedby mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	slot  *segSlot
	ch    *chunk
	bytes int64
}

// defaultChunkCacheBytes bounds decoded chunks kept warm per data
// directory when the application sets no explicit capacity.
const defaultChunkCacheBytes = 256 << 20

func newChunkCache(capBytes int64) *chunkCache {
	if capBytes <= 0 {
		capBytes = defaultChunkCacheBytes
	}
	return &chunkCache{cap: capBytes, ll: list.New(), items: map[*segSlot]*list.Element{}}
}

func (c *chunkCache) get(s *segSlot) *chunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[s]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).ch
	}
	c.misses.Add(1)
	return nil
}

func (c *chunkCache) put(s *segSlot, ch *chunk) {
	bytes := chunkBytes(ch)
	if bytes > c.cap {
		return // oversized chunk: serve it, never cache it
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[s]; ok {
		return
	}
	c.gauge.add(bytes)
	c.items[s] = c.ll.PushFront(&cacheEntry{slot: s, ch: ch, bytes: bytes}) //verdict:nocharge cache residency is accounted on the cache's own gauge (the add above), evicted not aborted
	for c.gauge.used.Load() > c.cap {
		back := c.ll.Back()
		if back == nil || back == c.ll.Front() {
			break // never evict the entry just inserted
		}
		c.evictLocked(back)
	}
}

//verdict:locked mu
func (c *chunkCache) evictLocked(el *list.Element) {
	en := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, en.slot)
	c.gauge.add(-en.bytes)
	c.evictions.Add(1)
}

// drop removes one slot's entry (compaction retires its segment).
func (c *chunkCache) drop(s *segSlot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[s]; ok {
		c.evictLocked(el)
	}
}

// dropAll empties the cache — the cold-scan knob benches and tests use.
func (c *chunkCache) dropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Back(); el != nil; el = c.ll.Back() {
		c.evictLocked(el)
	}
}

// setCap adjusts capacity, evicting down to the new bound.
func (c *chunkCache) setCap(capBytes int64) {
	if capBytes <= 0 {
		capBytes = defaultChunkCacheBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capBytes
	for c.gauge.used.Load() > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.evictLocked(back)
	}
}

// ChunkCacheStats reports the chunk cache's cumulative counters and
// current residency.
type ChunkCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Resident  int64 // estimated decoded bytes currently cached
	Entries   int
}

func (c *chunkCache) stats() ChunkCacheStats {
	c.mu.Lock()
	entries := len(c.items)
	resident := c.gauge.used.Load()
	c.mu.Unlock()
	return ChunkCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Resident:  resident,
		Entries:   entries,
	}
}

// chunkBytes estimates a decoded chunk's resident footprint for cache
// accounting: vector backing arrays plus string bytes plus per-box
// overhead, matching the flat-cost philosophy of the query gauge.
func chunkBytes(ch *chunk) int64 {
	b := int64(64)
	for j := range ch.cols {
		c := &ch.cols[j]
		b += int64(len(c.ints))*8 + int64(len(c.floats))*8 +
			int64(len(c.bools)) + int64(len(c.nulls)) +
			int64(len(c.codes))*4 + int64(len(c.runEnds))*4 +
			int64(len(c.packed))*8 + int64(len(c.anys))*bytesPerValue
		for _, s := range c.strs {
			b += int64(len(s)) + 16
		}
		for _, s := range c.dict {
			b += int64(len(s)) + 16 + bytesPerValue // entry + shared box
		}
	}
	return b
}

// chunkToStorage mirrors a sealed chunk into the storage package's neutral
// form. Slice headers are shared, not copied — the same bytes that serve
// in-memory scans are what the segment writer serializes.
func chunkToStorage(ch *chunk) *storage.Chunk {
	sc := &storage.Chunk{NRows: ch.n, Cols: make([]storage.Col, len(ch.cols))}
	for j := range ch.cols {
		c := &ch.cols[j]
		sc.Cols[j] = storage.Col{
			Kind: uint8(c.kind), Enc: uint8(c.enc),
			Nulls: c.nulls, Min: c.min, Max: c.max,
			Ints: c.ints, Floats: c.floats, Strs: c.strs, Bools: c.bools, Anys: c.anys,
			Dict: c.dict, Codes: c.codes, RunEnds: c.runEnds,
			Base: c.base, Width: c.width, Packed: c.packed,
		}
	}
	return sc
}

// chunkFromStorage rebuilds the engine chunk from its stored form,
// re-deriving the state the format deliberately omits (shared dictionary
// boxes; dict zone bounds reuse them, byte-identical to seal time).
func chunkFromStorage(sc *storage.Chunk) *chunk {
	ch := &chunk{n: sc.NRows, cols: make([]colVec, len(sc.Cols))}
	for j := range sc.Cols {
		c := &sc.Cols[j]
		cv := &ch.cols[j]
		cv.kind = ColType(c.Kind)
		cv.enc = colEnc(c.Enc)
		cv.nulls = c.Nulls
		cv.min, cv.max = c.Min, c.Max
		cv.ints, cv.floats, cv.strs, cv.bools, cv.anys = c.Ints, c.Floats, c.Strs, c.Bools, c.Anys
		cv.dict, cv.codes, cv.runEnds = c.Dict, c.Codes, c.RunEnds
		cv.base, cv.width, cv.packed = c.Base, c.Width, c.Packed
		if cv.enc == encDict {
			boxed := make([]Value, len(cv.dict))
			for i, s := range cv.dict {
				boxed[i] = s
			}
			cv.dictBoxed = boxed
			if len(boxed) > 0 {
				cv.min, cv.max = boxed[0], boxed[len(boxed)-1]
			}
		}
	}
	return ch
}
