package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verdictdb/internal/storage"
)

// persistRows builds a dataset that exercises every chunk encoding plus the
// boxed fallbacks: dict strings, RLE runs, delta ints, raw floats, NULLs in
// typed columns, and a mixed-type TAny column.
func persistCols() []Column {
	return []Column{
		{Name: "s", Type: TString}, // low cardinality -> dict
		{Name: "r", Type: TInt},    // 64-runs -> RLE
		{Name: "d", Type: TInt},    // small range -> delta
		{Name: "f", Type: TFloat},  // high entropy -> raw
		{Name: "n", Type: TInt},    // delta with NULLs
		{Name: "m", Type: TAny},    // mixed types -> boxed
	}
}

func persistRows(total int) [][]Value {
	vals := []string{"low", "mid", "top"}
	rows := make([][]Value, total)
	for i := range rows {
		var nv Value = int64(i % 97)
		if i%11 == 5 {
			nv = nil
		}
		var mv Value = int64(i)
		switch i % 3 {
		case 1:
			mv = fmt.Sprintf("m%d", i)
		case 2:
			mv = nil
		}
		rows[i] = []Value{vals[i%3], int64(i / 64), int64(i % 200), float64(i) + 0.25, nv, mv}
	}
	return rows
}

// persistQueries cover scans, pruning, grouping, joins-with-self via
// subquery-free shapes, and the row fallback over every stored column.
var persistQueries = []string{
	"select count(*), sum(d), min(f), max(f) from t",
	"select s, count(*), sum(d), avg(f) from t group by s order by s",
	"select r, count(n), sum(n) from t where t.d < 150 group by r order by r",
	"select s, d, f from t where t.d >= 190 and t.s = 'mid' order by d, f",
	"select count(m), count(*) from t where t.r >= 2",
	"select min(d), max(d) from t where t.r = 1",
}

// expectParity checks that got answers every persistence query byte-identically
// to want, at parallelism 1 and 8 and on the row fallback.
func expectParity(t *testing.T, label string, want, got *Engine) {
	t.Helper()
	for _, q := range persistQueries {
		ref := mustQuery(t, want, q)
		for _, par := range []int{1, 8} {
			got.SetParallelism(par)
			encRowsEqual(t, fmt.Sprintf("%s par=%d %s", label, par, q), ref, mustQuery(t, got, q))
		}
		got.SetVectorized(false)
		encRowsEqual(t, fmt.Sprintf("%s rowpath %s", label, q), ref, mustQuery(t, got, q))
		got.SetVectorized(true)
		got.SetParallelism(0)
	}
}

// newPersistEngine loads the standard dataset into a fresh engine; total
// deliberately leaves a partial tail (not a multiple of chunkRows).
func newPersistEngine(t *testing.T, total int) *Engine {
	t.Helper()
	e := NewSeeded(7)
	if err := e.CreateTable("t", persistCols()); err != nil {
		t.Fatal(err)
	}
	if err := e.InsertRows("t", persistRows(total)); err != nil {
		t.Fatal(err)
	}
	return e
}

const persistTotal = 5*chunkRows + 77

// ownDataDir opts a test out of the ENGINE_SPILL scratch-directory knob:
// these tests attach and manage their own data directory, which cannot
// coexist with an env-forced spill dir on the same engine.
func ownDataDir(t *testing.T) {
	t.Setenv(spillEnv, "")
}

func TestPersistFlushAndScanParity(t *testing.T) {
	ownDataDir(t)
	mem := newPersistEngine(t, persistTotal)
	disk := newPersistEngine(t, persistTotal)
	dir := t.TempDir()
	if _, err := disk.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if err := disk.Flush(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := disk.Lookup("t")
	if tbl.persisted != 5 {
		t.Fatalf("persisted %d chunks, want 5", tbl.persisted)
	}
	for i := 0; i < tbl.persisted; i++ {
		if _, ok := tbl.sealed[i].(*segSlot); !ok {
			t.Fatalf("slot %d not segment-backed after flush", i)
		}
	}
	// Warm (cache pre-populated by the flush) ...
	expectParity(t, "warm", mem, disk)
	// ... and cold (cache dropped, every chunk read and decoded from disk).
	disk.DropChunkCache()
	expectParity(t, "cold", mem, disk)
	if st := disk.ChunkCache(); st.Misses == 0 {
		t.Fatalf("cold scans never touched the cache: %+v", st)
	}
}

func TestPersistReopenParity(t *testing.T) {
	ownDataDir(t)
	mem := newPersistEngine(t, persistTotal)
	dir := t.TempDir()
	{
		e := newPersistEngine(t, persistTotal)
		if _, err := e.AttachDataDir(dir); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil { // Close runs the final flush
			t.Fatal(err)
		}
	}
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.Tables != 1 || rep.Rows != persistTotal || len(rep.Quarantined) != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	if re.RowCount("t") != persistTotal {
		t.Fatalf("recovered %d rows, want %d", re.RowCount("t"), persistTotal)
	}
	expectParity(t, "reopen-cold", mem, re)
	expectParity(t, "reopen-warm", mem, re)

	// Appends after reopen keep working and survive another cycle.
	extra := persistRows(persistTotal + 100)[persistTotal:]
	if err := re.InsertRows("t", extra); err != nil {
		t.Fatal(err)
	}
	if err := re.InsertRows("t", nil); err != nil {
		t.Fatal(err)
	}
	if err := mustInsert(mem, extra); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := NewSeeded(7)
	if _, err := re2.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	expectParity(t, "reopen-twice", mem, re2)
}

func mustInsert(e *Engine, rows [][]Value) error { return e.InsertRows("t", rows) }

func TestPersistSpillEnv(t *testing.T) {
	t.Setenv(spillEnv, "1")
	mem := newPersistEngine(t, persistTotal)
	mem2 := NewSeeded(7) // spillForced: every insert spills to a scratch dir
	if err := mem2.CreateTable("t", persistCols()); err != nil {
		t.Fatal(err)
	}
	if err := mem2.InsertRows("t", persistRows(persistTotal)); err != nil {
		t.Fatal(err)
	}
	defer mem2.Close()
	if !mem2.DataDirAttached() {
		t.Fatal("ENGINE_SPILL did not attach a scratch data directory")
	}
	tbl, _ := mem2.Lookup("t")
	if tbl.persisted != 5 {
		t.Fatalf("spill persisted %d chunks, want 5", tbl.persisted)
	}
	// mem was built under the same env before this engine — rebuild a clean
	// reference without spilling by reading the spilled engine against the
	// in-memory one built above (both inserted identical rows).
	expectParity(t, "spill", mem, mem2)
	if st := mem2.ChunkCache(); st.Misses == 0 {
		t.Fatalf("spill reads never went cold: %+v", st)
	}
}

func TestPersistCacheEviction(t *testing.T) {
	ownDataDir(t)
	e := newPersistEngine(t, 20*chunkRows)
	dir := t.TempDir()
	if _, err := e.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.SetChunkCacheBytes(64 << 10) // a couple of chunks at most
	e.DropChunkCache()
	want := mustQuery(t, newPersistEngine(t, 20*chunkRows), "select s, count(*), sum(d), sum(n) from t group by s order by s")
	encRowsEqual(t, "evicting scan", want, mustQuery(t, e, "select s, count(*), sum(d), sum(n) from t group by s order by s"))
	st := e.ChunkCache()
	if st.Evictions == 0 {
		t.Fatalf("tiny cache never evicted: %+v", st)
	}
	if st.Resident > 64<<10 {
		t.Fatalf("resident %d exceeds cap", st.Resident)
	}
	// A second scan is correct even though almost nothing stayed cached.
	encRowsEqual(t, "evicting rescan", want, mustQuery(t, e, "select s, count(*), sum(d), sum(n) from t group by s order by s"))
}

func TestPersistCompaction(t *testing.T) {
	ownDataDir(t)
	mem := NewSeeded(7)
	e := NewSeeded(7)
	for _, en := range []*Engine{mem, e} {
		if err := en.CreateTable("t", persistCols()); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if _, err := e.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	all := persistRows(compactMinSegments * chunkRows)
	for i := 0; i < compactMinSegments; i++ {
		batch := all[i*chunkRows : (i+1)*chunkRows]
		if err := mem.InsertRows("t", batch); err != nil {
			t.Fatal(err)
		}
		if err := e.InsertRows("t", batch); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil { // one segment per flush
			t.Fatal(err)
		}
	}
	// The last flush crossed the threshold and compacted.
	segs := 0
	for _, f := range segFiles(t, dir) {
		if !strings.HasSuffix(f, ".quarantined") {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("expected 1 segment after compaction, found %d", segs)
	}
	expectParity(t, "compacted", mem, e)
	e.DropChunkCache()
	expectParity(t, "compacted-cold", mem, e)
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, en := range ents {
		if strings.Contains(en.Name(), storage.SegmentExt) {
			out = append(out, en.Name())
		}
	}
	return out
}

// flushAndClose builds the standard dataset in dir and returns the data
// segment file names it left behind.
func flushAndClose(t *testing.T, dir string) []string {
	t.Helper()
	e := newPersistEngine(t, persistTotal)
	if _, err := e.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return segFiles(t, dir)
}

func TestPersistRecoveryTruncatedSegment(t *testing.T) {
	ownDataDir(t)
	dir := t.TempDir()
	files := flushAndClose(t, dir)
	if len(files) == 0 {
		t.Fatal("no segments written")
	}
	path := filepath.Join(dir, files[0])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatalf("recovery must quarantine, not fail: %v", err)
	}
	defer re.Close()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != files[0] {
		t.Fatalf("quarantined %v, want [%s]", rep.Quarantined, files[0])
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// The engine still serves what survived (the tail rows at minimum).
	if re.RowCount("t") >= persistTotal || re.RowCount("t") < 77 {
		t.Fatalf("recovered %d rows after losing a segment", re.RowCount("t"))
	}
	mustQuery(t, re, "select count(*), sum(d) from t")
	// A second open sees a manifest that no longer references the bad file.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := NewSeeded(7)
	rep2, err := re2.AttachDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if len(rep2.Quarantined) != 0 {
		t.Fatalf("second open re-quarantined: %v", rep2.Quarantined)
	}
}

func TestPersistRecoveryCorruptChecksum(t *testing.T) {
	ownDataDir(t)
	dir := t.TempDir()
	files := flushAndClose(t, dir)
	path := filepath.Join(dir, files[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40 // flip a bit inside chunk data
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatalf("checksum corruption must quarantine, not fail: %v", err)
	}
	defer re.Close()
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %v, want exactly the corrupt segment", rep.Quarantined)
	}
	mustQuery(t, re, "select count(*) from t")
}

func TestPersistRecoveryHalfWrittenManifest(t *testing.T) {
	ownDataDir(t)
	mem := newPersistEngine(t, persistTotal)
	dir := t.TempDir()
	flushAndClose(t, dir)
	// Simulate a crash mid-save: a garbage temp manifest beside the valid
	// committed one. The committed manifest must stay authoritative.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte("{\"version\": 99, gar"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(rep.Quarantined) != 0 || rep.Rows != persistTotal {
		t.Fatalf("half-written manifest broke recovery: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale MANIFEST.tmp not removed")
	}
	expectParity(t, "half-written-manifest", mem, re)
}

func TestPersistDropTableReconciled(t *testing.T) {
	ownDataDir(t)
	dir := t.TempDir()
	e := newPersistEngine(t, persistTotal)
	if _, err := e.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.DropTable("t", false); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // reconciles the manifest
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.Tables != 0 || re.HasTable("t") {
		t.Fatalf("dropped table resurrected: %+v", rep)
	}
	for _, f := range segFiles(t, dir) {
		t.Fatalf("dropped table left segment %s behind", f)
	}
}

func TestStorageCorruptErrorIdentity(t *testing.T) {
	ownDataDir(t)
	dir := t.TempDir()
	files := flushAndClose(t, dir)
	path := filepath.Join(dir, files[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, err := storage.OpenSegment(path)
	if err != nil {
		// Corruption already detectable at open (footer range): still typed.
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("open error not ErrCorrupt: %v", err)
		}
		return
	}
	defer seg.Close()
	verr := seg.VerifyChecksums()
	if verr == nil {
		t.Fatal("checksum pass missed a flipped bit")
	}
	if !errors.Is(verr, storage.ErrCorrupt) {
		t.Fatalf("verify error not ErrCorrupt: %v", verr)
	}
	var ce *storage.CorruptError
	if !errors.As(verr, &ce) || ce.Path == "" {
		t.Fatalf("verify error carries no path: %v", verr)
	}
}
