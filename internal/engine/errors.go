package engine

import "errors"

// Typed sentinels for name-binding failures in join processing. Callers
// (and tests) match these with errors.Is instead of probing error text;
// every construction site wraps them with %w so the identity survives
// message decoration. See also ErrMemoryBudget in lifecycle.go for the
// budget taxonomy.
var (
	// ErrAmbiguousColumn reports a column reference that resolves to more
	// than one column in scope — an unqualified duplicate name, or a USING
	// column exposed twice on one side of the join.
	ErrAmbiguousColumn = errors.New("engine: ambiguous column")

	// ErrJoinColumnNotFound reports a USING column missing from one or
	// both join inputs: binding it anyway would silently resolve against
	// whichever side happens to know the name.
	ErrJoinColumnNotFound = errors.New("engine: column not found in both join inputs")
)
