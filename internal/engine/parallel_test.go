package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// Tests for the compiled + morsel-parallel scan path: equivalence with the
// serial interpreter, deterministic serial fallback for impure queries, and
// accumulator merge correctness.

// bigEngine builds a table large enough (>= parallelMinRows) that pure
// scans fan out when parallelism is enabled.
func bigEngine(t testing.TB, seed int64) *Engine {
	t.Helper()
	e := NewSeeded(seed)
	if err := e.CreateTable("t", []Column{
		{Name: "g", Type: TInt},
		{Name: "s", Type: TString},
		{Name: "x", Type: TFloat},
		{Name: "n", Type: TInt},
	}); err != nil {
		t.Fatal(err)
	}
	rng := newSplitMix(uint64(seed) + 3)
	rows := make([][]Value, 3*parallelMinRows)
	labels := []string{"red", "green", "blue", "cyan"}
	for i := range rows {
		var x Value
		if rng.Int63n(50) == 0 {
			x = nil // sprinkle NULLs through the aggregate column
		} else {
			x = rng.Float64() * 1000
		}
		rows[i] = []Value{
			rng.Int63n(13),
			labels[rng.Int63n(int64(len(labels)))],
			x,
			rng.Int63n(1000),
		}
	}
	if err := e.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	return e
}

func valuesClose(a, b Value) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		if math.IsNaN(af) && math.IsNaN(bf) {
			return true
		}
		return math.Abs(af-bf) <= 1e-9*math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return Compare(a, b) == 0 && fmt.Sprintf("%T", a) == fmt.Sprintf("%T", b)
}

// assertSameResult requires identical columns and rows (same order; float
// cells within tolerance, since parallel partial sums reassociate).
func assertSameResult(t *testing.T, label string, serial, parallel *ResultSet) {
	t.Helper()
	if strings.Join(serial.Cols, ",") != strings.Join(parallel.Cols, ",") {
		t.Fatalf("%s: cols %v vs %v", label, serial.Cols, parallel.Cols)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("%s: %d rows serial vs %d parallel", label, len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if !valuesClose(serial.Rows[i][j], parallel.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d: serial %v (%T) vs parallel %v (%T)",
					label, i, j, serial.Rows[i][j], serial.Rows[i][j],
					parallel.Rows[i][j], parallel.Rows[i][j])
			}
		}
	}
}

// TestParallelSerialEquivalence runs a spread of scan shapes on two engines
// with identical data, one forced serial and one forced wide, and requires
// identical results.
func TestParallelSerialEquivalence(t *testing.T) {
	queries := []string{
		`select g, count(*) as c, sum(x) as s, avg(x) as a from t group by g`,
		`select s, min(x) as lo, max(x) as hi, stddev(x) as sd, var(x) as v from t group by s`,
		`select count(*) from t`,
		`select sum(x) from t where g < 4 and s <> 'red'`,
		`select g, s, sum(x * (1 + n)) as wsum from t where x between 10 and 900 group by g, s`,
		`select count(distinct g) as dg, sum(distinct n) as dn, avg(distinct n) as an from t`,
		`select percentile(x, 0.9) as p90, median(x) as med from t group by g`,
		`select ndv(n) as approx from t`,
		`select g, x * 2 as xx, upper(s) as us from t where n % 7 = 0`,
		`select s, case when x > 500 then 'hi' when x > 100 then 'mid' else 'lo' end as band,
		        count(*) as c from t group by s, case when x > 500 then 'hi' when x > 100 then 'mid' else 'lo' end`,
		`select g, count(*) as c from t where s in ('red', 'blue') group by g having count(*) > 10 order by c desc, g`,
		`select sum(x) from t where x is null or x > 999999`,
	}
	serial := bigEngine(t, 11)
	serial.SetParallelism(1)
	parallel := bigEngine(t, 11)
	parallel.SetParallelism(8)
	for _, q := range queries {
		rsS, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		rsP, err := parallel.Query(q)
		if err != nil {
			t.Fatalf("parallel %s: %v", q, err)
		}
		assertSameResult(t, q, rsS, rsP)
	}
	if serial.ParallelScans() != 0 {
		t.Fatalf("serial engine ran %d parallel scans", serial.ParallelScans())
	}
	if parallel.ParallelScans() == 0 {
		t.Fatal("parallel engine never took the parallel path")
	}

	// approx_median's reservoir resamples on merge, so parallel may differ
	// from serial by up to the sketch's rank error — compare loosely.
	const amq = "select approx_median(x) as am, percentile(x, 0.5) as exact from t"
	rsS, err := serial.Query(amq)
	if err != nil {
		t.Fatal(err)
	}
	rsP, err := parallel.Query(amq)
	if err != nil {
		t.Fatal(err)
	}
	amS, _ := ToFloat(rsS.Rows[0][0])
	amP, _ := ToFloat(rsP.Rows[0][0])
	exact, _ := ToFloat(rsS.Rows[0][1])
	for _, am := range []float64{amS, amP} {
		if math.Abs(am-exact) > 0.05*math.Abs(exact) {
			t.Fatalf("approx_median off: serial %v parallel %v exact %v", amS, amP, exact)
		}
	}
}

// TestImpureQueriesTakeSerialFallback verifies that rand()-dependent and
// subquery-bearing queries never fan out, and that rand() scrambles are
// byte-identical whatever the parallelism setting — the determinism
// contract sample creation depends on.
func TestImpureQueriesTakeSerialFallback(t *testing.T) {
	mk := func(par int) *Engine {
		e := bigEngine(t, 23)
		e.SetParallelism(par)
		return e
	}
	serial, parallel := mk(1), mk(8)

	// CTAS scramble: impure WHERE and an impure projected column.
	ctas := `create table scramble as
		select g, s, x, rand() as r, 1 + floor(rand() * 10) as sid
		from t where rand() < 0.3`
	for _, e := range []*Engine{serial, parallel} {
		if _, err := e.Exec(ctas); err != nil {
			t.Fatal(err)
		}
	}
	if parallel.ParallelScans() != 0 {
		t.Fatalf("impure CTAS took the parallel path (%d scans)", parallel.ParallelScans())
	}
	rsS, err := serial.Query("select * from scramble")
	if err != nil {
		t.Fatal(err)
	}
	rsP, err := parallel.Query("select * from scramble")
	if err != nil {
		t.Fatal(err)
	}
	if len(rsS.Rows) != len(rsP.Rows) {
		t.Fatalf("scramble sizes differ: %d vs %d", len(rsS.Rows), len(rsP.Rows))
	}
	for i := range rsS.Rows {
		for j := range rsS.Rows[i] {
			// Bit-identical, including the rand()-derived cells.
			if rsS.Rows[i][j] != rsP.Rows[i][j] {
				t.Fatalf("scramble row %d col %d: %v vs %v", i, j, rsS.Rows[i][j], rsP.Rows[i][j])
			}
		}
	}

	// Correlated subqueries must also stay serial.
	before := parallel.ParallelScans()
	if _, err := parallel.Query(`select g, count(*) from t a
		where x > (select avg(b.x) from t b where b.g = a.g) group by g`); err != nil {
		t.Fatal(err)
	}
	if parallel.ParallelScans() != before {
		t.Fatal("correlated subquery query took the parallel path")
	}

	// Sanity: a pure aggregate does fan out on the parallel engine.
	if _, err := parallel.Query("select g, sum(x) from t group by g"); err != nil {
		t.Fatal(err)
	}
	if parallel.ParallelScans() == before {
		t.Fatal("pure aggregate did not take the parallel path")
	}
}

// TestGroupOrderMatchesSerial: the merged parallel group order must equal
// the serial first-seen order (no ORDER BY in the query).
func TestGroupOrderMatchesSerial(t *testing.T) {
	serial := bigEngine(t, 31)
	serial.SetParallelism(1)
	parallel := bigEngine(t, 31)
	parallel.SetParallelism(7)
	q := "select g, s, count(*) from t group by g, s"
	rsS, err := serial.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rsP, err := parallel.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, rsS, rsP)
}

func TestAccumulatorMerge(t *testing.T) {
	feed := func(acc accumulator, vals []Value) {
		for _, v := range vals {
			if err := acc.add(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	vals := make([]Value, 0, 1000)
	rng := newSplitMix(5)
	for i := 0; i < 1000; i++ {
		vals = append(vals, rng.Float64()*100)
	}
	mkMoments := func() *momentsAcc { return &momentsAcc{mode: momentVar} }

	whole := mkMoments()
	feed(whole, vals)
	a, b := mkMoments(), mkMoments()
	feed(a, vals[:313])
	feed(b, vals[313:])
	if err := a.merge(b); err != nil {
		t.Fatal(err)
	}
	w, _ := whole.result().(float64)
	m, _ := a.result().(float64)
	if math.Abs(w-m) > 1e-9*w {
		t.Fatalf("moments merge: %v vs %v", w, m)
	}

	// Distinct sum dedups across partials.
	d1 := &distinctSumAcc{name: "sum", seen: map[string]float64{}}
	d2 := &distinctSumAcc{name: "sum", seen: map[string]float64{}}
	feed(d1, []Value{int64(1), int64(2), int64(3)})
	feed(d2, []Value{int64(3), int64(4)})
	if err := d1.merge(d2); err != nil {
		t.Fatal(err)
	}
	if got, _ := d1.result().(float64); got != 10 {
		t.Fatalf("distinct sum merge: %v", got)
	}

	// Extremes and counts.
	e1 := &extremeAcc{min: true}
	e2 := &extremeAcc{min: true}
	feed(e1, []Value{int64(5)})
	feed(e2, []Value{int64(2)})
	if err := e1.merge(e2); err != nil {
		t.Fatal(err)
	}
	if got, _ := e1.result().(int64); got != 2 {
		t.Fatalf("min merge: %v", got)
	}
	c1, c2 := &countAcc{}, &countAcc{}
	c1.addStar()
	c2.addStar()
	c2.addStar()
	if err := c1.merge(c2); err != nil {
		t.Fatal(err)
	}
	if got, _ := c1.result().(int64); got != 3 {
		t.Fatalf("count merge: %v", got)
	}

	// Integer sums keep their int64 result type across merges.
	s1, s2 := &sumAcc{}, &sumAcc{}
	feed(s1, []Value{int64(4)})
	feed(s2, []Value{int64(8)})
	if err := s1.merge(s2); err != nil {
		t.Fatal(err)
	}
	if got, ok := s1.result().(int64); !ok || got != 12 {
		t.Fatalf("int sum merge: %v", s1.result())
	}
}

// TestCompileExprParity cross-checks serial and parallel evaluation of a
// grab-bag of compiled expression shapes (the interpreted baseline is
// exercised by the rest of the engine test suite, whose expectations
// predate the compiler).
func TestCompileExprParity(t *testing.T) {
	e := bigEngine(t, 41)
	exprs := []string{
		"g + n * 2",
		"x / (n + 1)",
		"-x",
		"not (g > 5)",
		"g between 3 and 9",
		"s like 'r%'",
		"s is not null",
		"x is null",
		"case g when 1 then 'one' when 2 then 'two' else 'many' end",
		"g in (1, 3, 5, 7)",
		"s in ('red', 'nope')",
		"coalesce(x, -1)",
		"substr(s, 1, 2)",
		"upper(s) || '-' || s",
		"abs(x - 500)",
		"cast(x as int)",
		"x > 250.5",
		"g <= 6",
		"s = 'green'",
		"nullif(g, 3)",
	}
	for _, ex := range exprs {
		sql := "select " + ex + " as v from t"
		rsSerial := mustQueryWithParallelism(t, e, 1, sql)
		rsParallel := mustQueryWithParallelism(t, e, 8, sql)
		assertSameResult(t, ex, rsSerial, rsParallel)
	}
}

func mustQueryWithParallelism(t *testing.T, e *Engine, par int, sql string) *ResultSet {
	t.Helper()
	e.SetParallelism(par)
	rs, err := e.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return rs
}
