package engine

import (
	"fmt"
	"sync"
)

// Columnar chunked storage. A table is an append-only sequence of sealed,
// immutable chunks of exactly chunkRows rows stored column-wise — per-column
// typed vectors ([]int64, []float64, []string, []bool) with a null-flag
// vector — plus an open row-major tail holding the most recent < chunkRows
// rows. When the tail fills it is sealed into a chunk: values are packed
// into typed vectors and the per-column zone summaries (min/max over
// non-NULL values) are computed right there, so scan-range pruning never
// needs the lazy locking dance the old row store required.
//
// Sealed chunks are immutable forever, which is what makes the concurrency
// story trivial: readers snapshot the chunk-slice header and the tail-slice
// header under the engine lock and can then scan without coordination,
// exactly as row snapshots used to work. The vectorized execution path
// (vectorize.go, vecexec.go) consumes the typed vectors directly; the
// interpreted fallback path reads rows through the chunk's lazily built,
// cached row view, so its semantics — including dynamic value types — are
// byte-identical to the old row store.

// chunkRows is the sealed chunk size. It doubles as the zone-map pruning
// granularity: every sealed chunk carries its own min/max summaries.
const chunkRows = 256

// colVec is one column of one sealed chunk: a typed vector plus null flags
// and the zone summary computed at seal time.
type colVec struct {
	// kind is the storage representation of this chunk-column. A column
	// whose values in this chunk all share one dynamic type is stored
	// unboxed; mixed-type (or all-NULL) chunk-columns keep the original
	// boxed values in anys. TAny therefore means "boxed", not "untyped".
	kind ColType

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []Value

	// nulls flags NULL rows; nil when the chunk-column has no NULLs. Null
	// slots of the typed vectors hold zero values.
	nulls []bool

	// min/max are the zone summary over non-NULL values (nil when every
	// value is NULL). Comparisons follow Compare, matching the WHERE
	// pushdown tests in zonemap.go.
	min, max Value
}

// isNull reports whether row i of the chunk-column is NULL.
func (c *colVec) isNull(i int) bool {
	if c.kind == TAny {
		return c.anys[i] == nil
	}
	return c.nulls != nil && c.nulls[i]
}

// value boxes row i back into a dynamic Value. The box is freshly
// allocated for typed vectors; TAny columns return the original box.
func (c *colVec) value(i int) Value {
	if c.nulls != nil && c.nulls[i] {
		return nil
	}
	switch c.kind {
	case TInt:
		return c.ints[i]
	case TFloat:
		return c.floats[i]
	case TString:
		return c.strs[i]
	case TBool:
		return c.bools[i]
	}
	return c.anys[i]
}

// chunk is chunkRows rows (fewer only for the ephemeral tail chunk; more for
// one-to-many join outputs) stored column-wise. Immutable after construction,
// except that join-output chunks fill their column vectors lazily (see
// gather below).
type chunk struct {
	cols []colVec
	n    int

	// gather is non-nil for join-output chunks: the chunk holds row
	// references into its probe/build source chunks, and a column vector is
	// gathered into cols only when first touched (late materialization —
	// columns the query never reads are never copied). Plain storage chunks
	// leave it nil.
	gather *joinGather

	// boxed is the lazily built row view for the interpreted fallback
	// path, cached so repeated fallback queries (joins, subqueries) pay
	// the boxing cost once per chunk lifetime. Tail chunks are constructed
	// with the live tail rows as a pre-populated view.
	boxOnce sync.Once
	boxed   [][]Value
}

// col returns column j's vector, gathering it first for join-output chunks.
func (c *chunk) col(j int) *colVec {
	if c.gather != nil {
		c.gather.fill(c, j)
	}
	return &c.cols[j]
}

// colKind reports column j's storage kind without forcing a gather.
func (c *chunk) colKind(j int) ColType {
	if c.gather != nil {
		return c.gather.kindOf(j)
	}
	return c.cols[j].kind
}

// valueAt boxes cell (row i, column j). For join-output chunks it reads
// through the row references without gathering the whole column — the
// cheap path for boxing single rows (group representatives).
func (c *chunk) valueAt(j, i int) Value {
	if c.gather != nil {
		return c.gather.valueAt(j, i)
	}
	return c.cols[j].value(i)
}

// storageKind classifies a non-NULL runtime value for vector storage.
func storageKind(v Value) ColType {
	switch v.(type) {
	case int64:
		return TInt
	case float64:
		return TFloat
	case string:
		return TString
	case bool:
		return TBool
	}
	return TAny
}

// buildChunk seals rows (all of width w) into a columnar chunk, computing
// zone summaries in the same pass when withZones is set. keepRows retains
// the source rows as the chunk's row view — used for the ephemeral tail
// chunk and for chunkified intermediate relations, where the boxed rows
// already exist and cost nothing to keep. Zone summaries only matter for
// table storage (scan pruning reads them); ephemeral chunks skip the
// per-value Compare calls.
func buildChunk(rows [][]Value, w int, keepRows, withZones bool) *chunk {
	n := len(rows)
	ch := &chunk{cols: make([]colVec, w), n: n}
	if keepRows {
		ch.boxed = rows
	}
	for j := 0; j < w; j++ {
		col := &ch.cols[j]
		// Pass 1: storage kind (TAny on mixed types or all NULLs) and the
		// zone summary. min/max reference the existing boxes — no boxing.
		kind := ColType(-1)
		hasNull := false
		for i := 0; i < n; i++ {
			v := rows[i][j]
			if v == nil {
				hasNull = true
				continue
			}
			if t := storageKind(v); kind == -1 {
				kind = t
			} else if kind != t {
				kind = TAny
			}
			if withZones {
				if col.min == nil || Compare(v, col.min) < 0 {
					col.min = v
				}
				if col.max == nil || Compare(v, col.max) > 0 {
					col.max = v
				}
			}
		}
		if kind == -1 || kind == TAny {
			// Boxed storage: reference the original values (NULL = nil box).
			col.kind = TAny
			col.anys = make([]Value, n)
			for i := 0; i < n; i++ {
				col.anys[i] = rows[i][j]
			}
			continue
		}
		col.kind = kind
		if hasNull {
			col.nulls = make([]bool, n)
		}
		// Pass 2: pack the typed vector.
		switch kind {
		case TInt:
			col.ints = make([]int64, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.ints[i] = v.(int64)
				} else {
					col.nulls[i] = true
				}
			}
		case TFloat:
			col.floats = make([]float64, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.floats[i] = v.(float64)
				} else {
					col.nulls[i] = true
				}
			}
		case TString:
			col.strs = make([]string, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.strs[i] = v.(string)
				} else {
					col.nulls[i] = true
				}
			}
		case TBool:
			col.bools = make([]bool, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.bools[i] = v.(bool)
				} else {
					col.nulls[i] = true
				}
			}
		}
	}
	return ch
}

// materializeRow boxes one row of the chunk into a fresh slice.
func (c *chunk) materializeRow(i int) []Value {
	row := make([]Value, len(c.cols))
	for j := range c.cols {
		row[j] = c.valueAt(j, i)
	}
	return row
}

// chunkifyRows slices a row-major relation into ephemeral columnar chunks
// so it can feed the vectorized join as a probe or build input. The boxed
// rows are kept as each chunk's row view (they already exist), and no zone
// summaries are computed (intermediate chunks are never pruned).
func chunkifyRows(rows [][]Value, w int) []*chunk {
	if len(rows) == 0 {
		return nil
	}
	out := make([]*chunk, 0, (len(rows)+chunkRows-1)/chunkRows)
	for lo := 0; lo < len(rows); lo += chunkRows {
		hi := lo + chunkRows
		if hi > len(rows) {
			hi = len(rows)
		}
		out = append(out, buildChunk(rows[lo:hi], w, true, false))
	}
	return out
}

// rows returns the chunk's boxed row view, building and caching it on
// first use. Safe for concurrent callers.
func (c *chunk) rows() [][]Value {
	c.boxOnce.Do(func() {
		if c.boxed != nil {
			return
		}
		out := make([][]Value, c.n)
		for i := range out {
			out[i] = c.materializeRow(i)
		}
		c.boxed = out
	})
	return c.boxed
}

// colSource is one query's snapshot of a table: the (possibly pruned)
// sealed chunks plus the open tail rows. It is created per scan, so its
// lazily built fields need no locking — everything that touches them runs
// before the morsel fan-out.
type colSource struct {
	sealed []*chunk
	tail   [][]Value
	nrows  int

	scan []*chunk  // sealed + ephemeral tail chunk, built on first use
	mat  [][]Value // cached row materialization for the fallback path
}

// scanChunks returns the chunk sequence the vectorized path iterates:
// every sealed chunk followed by an ephemeral chunk over the tail rows.
func (s *colSource) scanChunks() []*chunk {
	if s.scan != nil {
		return s.scan
	}
	if len(s.tail) == 0 {
		s.scan = s.sealed
		return s.scan
	}
	w := len(s.tail[0])
	s.scan = make([]*chunk, 0, len(s.sealed)+1)
	//verdict:nocharge chunk-pointer snapshot: one pointer per existing chunk, data already owned by the table
	s.scan = append(s.scan, s.sealed...)
	s.scan = append(s.scan, buildChunk(s.tail, w, true, false)) //verdict:nocharge one ephemeral chunk over rows the table already stores
	return s.scan
}

// materialize returns the snapshot as boxed rows for the interpreted
// fallback path: cached chunk row views concatenated with the live tail.
func (s *colSource) materialize() [][]Value {
	if s.mat != nil || s.nrows == 0 {
		return s.mat
	}
	out := make([][]Value, 0, s.nrows)
	//verdict:nopoll boxing-only materialization; the interpreted consumers poll per row
	for _, ch := range s.sealed {
		out = append(out, ch.rows()...)
	}
	out = append(out, s.tail...)
	s.mat = out
	return out
}

// appendRow adds one already-normalized row to the table, sealing the tail
// into a columnar chunk when it reaches chunkRows. Callers hold the engine
// write lock.
func (t *Table) appendRow(row []Value) {
	//verdict:nocharge ingest path: table storage outlives any query and is not per-query state
	t.tail = append(t.tail, row)
	t.nrows++
	if len(t.tail) >= chunkRows {
		t.sealed = append(t.sealed, buildChunk(t.tail, len(t.Cols), false, true)) //verdict:nocharge sealing re-shapes rows the tail already holds
		// A fresh slice, not a truncation: concurrent readers may still
		// hold the old tail header.
		t.tail = nil
	}
}

// NumRows returns the table's row count. Unlike Engine.RowCount it does not
// take the engine lock; callers coordinating with concurrent appends should
// go through the engine.
func (t *Table) NumRows() int { return t.nrows }

// ScanColumn calls fn with every value of one column in row order, boxing
// only that column — the single-column analogue of ForEachRow for
// full-scan consumers like the native-approximation baselines. Iteration
// is not synchronized against concurrent appends.
func (t *Table) ScanColumn(col int, fn func(v Value) error) error {
	if col < 0 || col >= len(t.Cols) {
		return fmt.Errorf("engine: column %d out of range for %q", col, t.Name)
	}
	//verdict:nopoll exported table utility with no query context; consumers (baselines, loaders) run outside query execution
	for _, ch := range t.sealed {
		cv := &ch.cols[col]
		for i := 0; i < ch.n; i++ {
			if err := fn(cv.value(i)); err != nil {
				return err
			}
		}
	}
	for _, row := range t.tail {
		if err := fn(row[col]); err != nil {
			return err
		}
	}
	return nil
}

// ForEachRow calls fn for every row in order. The row slice is reused
// between calls — callers must not retain it. Like the old exported Rows
// field, iteration is not synchronized against concurrent appends.
func (t *Table) ForEachRow(fn func(row []Value) error) error {
	buf := make([]Value, len(t.Cols))
	//verdict:nopoll exported table utility with no query context; consumers (baselines, loaders) run outside query execution
	for _, ch := range t.sealed {
		for i := 0; i < ch.n; i++ {
			for j := range ch.cols {
				buf[j] = ch.cols[j].value(i)
			}
			if err := fn(buf); err != nil {
				return err
			}
		}
	}
	for _, row := range t.tail {
		copy(buf, row)
		if err := fn(buf); err != nil {
			return err
		}
	}
	return nil
}
