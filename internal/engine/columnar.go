package engine

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"sort"
	"sync"
)

// Columnar chunked storage. A table is an append-only sequence of sealed,
// immutable chunks of exactly chunkRows rows stored column-wise — per-column
// typed vectors ([]int64, []float64, []string, []bool) with a null-flag
// vector — plus an open row-major tail holding the most recent < chunkRows
// rows. When the tail fills it is sealed into a chunk: values are packed
// into typed vectors and the per-column zone summaries (min/max over
// non-NULL values) are computed right there, so scan-range pruning never
// needs the lazy locking dance the old row store required.
//
// Sealed chunks are immutable forever, which is what makes the concurrency
// story trivial: readers snapshot the chunk-slice header and the tail-slice
// header under the engine lock and can then scan without coordination,
// exactly as row snapshots used to work. The vectorized execution path
// (vectorize.go, vecexec.go) consumes the typed vectors directly; the
// interpreted fallback path reads rows through the chunk's lazily built,
// cached row view, so its semantics — including dynamic value types — are
// byte-identical to the old row store.

// chunkRows is the sealed chunk size. It doubles as the zone-map pruning
// granularity: every sealed chunk carries its own min/max summaries.
const chunkRows = 256

// colEnc identifies the physical encoding of a sealed chunk-column. Only
// table-storage chunks (sealed in Table.appendRow) are encoded; ephemeral
// chunks (tail view, chunkified intermediates, join outputs) stay raw so
// their vectors can be borrowed directly. Every encoding is transparent
// through isNull/value/the typed accessors — the interpreted path and
// scramble construction read identical bytes either way — while the
// vectorized kernels (vectorize.go) pattern-match on enc to run on the
// compressed form.
type colEnc uint8

const (
	encNone  colEnc = iota // raw typed vector (or boxed TAny)
	encDict                // sorted per-chunk dictionary + uint32 codes (strings)
	encRLE                 // run-length: run end offsets + one value slot per run
	encDelta               // int64 offsets from the chunk minimum, bit-packed
)

// colVec is one column of one sealed chunk: a typed vector plus null flags
// and the zone summary computed at seal time.
type colVec struct {
	// kind is the storage representation of this chunk-column. A column
	// whose values in this chunk all share one dynamic type is stored
	// unboxed; mixed-type (or all-NULL) chunk-columns keep the original
	// boxed values in anys. TAny therefore means "boxed", not "untyped".
	kind ColType

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []Value

	// nulls flags NULL rows; nil when the chunk-column has no NULLs. Null
	// slots of the typed vectors hold zero values. Under encRLE the flags
	// are per RUN, not per row (a null-flag change always starts a new run,
	// so runs are uniformly null or non-null); every other encoding keeps
	// per-row flags.
	nulls []bool

	// min/max are the zone summary over non-NULL values (nil when every
	// value is NULL). Comparisons follow Compare, matching the WHERE
	// pushdown tests in zonemap.go.
	min, max Value

	// enc selects which of the encoding field groups below is live.
	enc colEnc

	// encDict: dict holds the chunk's distinct non-NULL strings in sorted
	// order, so code order preserves value order (range predicates compare
	// codes). codes[i] indexes dict; NULL rows keep code 0 and are flagged
	// in nulls. dictBoxed pre-boxes each entry once — every read-through box
	// of a dictionary value is a shared immutable interface, not a fresh
	// allocation. strs is nil.
	dict      []string
	dictBoxed []Value
	codes     []uint32

	// encRLE: runEnds[r] is the exclusive end row of run r; run r's value
	// lives in slot r of the typed vector (truncated to one slot per run).
	runEnds []int32

	// encDelta: row i decodes as base + the width-bit little-endian field
	// starting at bit i*width of packed. NULL rows pack zero. width 0 means
	// every non-NULL value equals base and packed is nil. ints is nil.
	base   int64
	width  uint8
	packed []uint64
}

// isNull reports whether row i of the chunk-column is NULL.
func (c *colVec) isNull(i int) bool {
	if c.kind == TAny {
		return c.anys[i] == nil
	}
	if c.nulls == nil {
		return false
	}
	if c.enc == encRLE {
		return c.nulls[c.runIdx(i)]
	}
	return c.nulls[i]
}

// runIdx returns the run holding row i of an encRLE column: the first run
// whose (exclusive) end offset is past i.
func (c *colVec) runIdx(i int) int {
	lo, hi := 0, len(c.runEnds)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(c.runEnds[mid]) > i {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// deltaAt decodes row i of an encDelta column. The uint64 round trip is
// exact modulo 2^64, so negative bases and full-range deltas reproduce the
// original bits.
func (c *colVec) deltaAt(i int) int64 {
	w := uint(c.width)
	if w == 0 {
		return c.base
	}
	bit := uint(i) * w
	word, off := bit>>6, bit&63
	v := c.packed[word] >> off
	if off+w > 64 {
		v |= c.packed[word+1] << (64 - off)
	}
	v &= 1<<w - 1
	return int64(uint64(c.base) + v)
}

// intAt/floatAt/strAt/boolAt read one typed lane through the encoding.
// Callers have already excluded NULL rows and checked the kind; the encNone
// branch is the plain vector read.

func (c *colVec) intAt(i int) int64 {
	switch c.enc {
	case encDelta:
		return c.deltaAt(i)
	case encRLE:
		return c.ints[c.runIdx(i)]
	}
	return c.ints[i]
}

func (c *colVec) floatAt(i int) float64 {
	if c.enc == encRLE {
		return c.floats[c.runIdx(i)]
	}
	return c.floats[i]
}

func (c *colVec) strAt(i int) string {
	switch c.enc {
	case encDict:
		return c.dict[c.codes[i]]
	case encRLE:
		return c.strs[c.runIdx(i)]
	}
	return c.strs[i]
}

func (c *colVec) boolAt(i int) bool {
	if c.enc == encRLE {
		return c.bools[c.runIdx(i)]
	}
	return c.bools[i]
}

// value boxes row i back into a dynamic Value. The box is freshly
// allocated for typed vectors (dictionary columns return the shared
// pre-boxed entry); TAny columns return the original box.
func (c *colVec) value(i int) Value {
	if c.isNull(i) {
		return nil
	}
	switch c.kind {
	case TInt:
		return c.intAt(i)
	case TFloat:
		return c.floatAt(i)
	case TString:
		if c.enc == encDict {
			return c.dictBoxed[c.codes[i]]
		}
		return c.strAt(i)
	case TBool:
		return c.boolAt(i)
	}
	return c.anys[i]
}

// chunk is chunkRows rows (fewer only for the ephemeral tail chunk; more for
// one-to-many join outputs) stored column-wise. Immutable after construction,
// except that join-output chunks fill their column vectors lazily (see
// gather below).
type chunk struct {
	cols []colVec
	n    int

	// gather is non-nil for join-output chunks: the chunk holds row
	// references into its probe/build source chunks, and a column vector is
	// gathered into cols only when first touched (late materialization —
	// columns the query never reads are never copied). Plain storage chunks
	// leave it nil.
	gather *joinGather

	// boxed is the lazily built row view for the interpreted fallback
	// path, cached so repeated fallback queries (joins, subqueries) pay
	// the boxing cost once per chunk lifetime. Tail chunks are constructed
	// with the live tail rows as a pre-populated view.
	boxOnce sync.Once
	boxed   [][]Value
}

// col returns column j's vector, gathering it first for join-output chunks.
func (c *chunk) col(j int) *colVec {
	if c.gather != nil {
		c.gather.fill(c, j)
	}
	return &c.cols[j]
}

// colKind reports column j's storage kind without forcing a gather.
func (c *chunk) colKind(j int) ColType {
	if c.gather != nil {
		return c.gather.kindOf(j)
	}
	return c.cols[j].kind
}

// valueAt boxes cell (row i, column j). For join-output chunks it reads
// through the row references without gathering the whole column — the
// cheap path for boxing single rows (group representatives).
func (c *chunk) valueAt(j, i int) Value {
	if c.gather != nil {
		return c.gather.valueAt(j, i)
	}
	return c.cols[j].value(i)
}

// storageKind classifies a non-NULL runtime value for vector storage.
func storageKind(v Value) ColType {
	switch v.(type) {
	case int64:
		return TInt
	case float64:
		return TFloat
	case string:
		return TString
	case bool:
		return TBool
	}
	return TAny
}

// buildChunk seals rows (all of width w) into a columnar chunk, computing
// zone summaries in the same pass when withZones is set. keepRows retains
// the source rows as the chunk's row view — used for the ephemeral tail
// chunk and for chunkified intermediate relations, where the boxed rows
// already exist and cost nothing to keep. Zone summaries only matter for
// table storage (scan pruning reads them); ephemeral chunks skip the
// per-value Compare calls.
func buildChunk(rows [][]Value, w int, keepRows, withZones bool) *chunk {
	n := len(rows)
	ch := &chunk{cols: make([]colVec, w), n: n}
	if keepRows {
		ch.boxed = rows
	}
	for j := 0; j < w; j++ {
		col := &ch.cols[j]
		// Pass 1: storage kind (TAny on mixed types or all NULLs) and the
		// zone summary. min/max reference the existing boxes — no boxing.
		kind := ColType(-1)
		hasNull := false
		for i := 0; i < n; i++ {
			v := rows[i][j]
			if v == nil {
				hasNull = true
				continue
			}
			if t := storageKind(v); kind == -1 {
				kind = t
			} else if kind != t {
				kind = TAny
			}
			if withZones {
				if col.min == nil || Compare(v, col.min) < 0 {
					col.min = v
				}
				if col.max == nil || Compare(v, col.max) > 0 {
					col.max = v
				}
			}
		}
		if kind == -1 || kind == TAny {
			// Boxed storage: reference the original values (NULL = nil box).
			col.kind = TAny
			col.anys = make([]Value, n)
			for i := 0; i < n; i++ {
				col.anys[i] = rows[i][j]
			}
			continue
		}
		col.kind = kind
		if hasNull {
			col.nulls = make([]bool, n)
		}
		// Pass 2: pack the typed vector.
		switch kind {
		case TInt:
			col.ints = make([]int64, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.ints[i] = v.(int64)
				} else {
					col.nulls[i] = true
				}
			}
		case TFloat:
			col.floats = make([]float64, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.floats[i] = v.(float64)
				} else {
					col.nulls[i] = true
				}
			}
		case TString:
			col.strs = make([]string, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.strs[i] = v.(string)
				} else {
					col.nulls[i] = true
				}
			}
		case TBool:
			col.bools = make([]bool, n)
			for i := 0; i < n; i++ {
				if v := rows[i][j]; v != nil {
					col.bools[i] = v.(bool)
				} else {
					col.nulls[i] = true
				}
			}
		}
	}
	return ch
}

// Encoding selection. Thresholds are deliberately conservative: an encoding
// must shrink the column (and speed the kernels) decisively before the seal
// pass commits to it, because a bad bet is paid on every scan until the
// table dies.
const (
	rleMaxRunsDiv  = 8  // RLE when runs <= n/rleMaxRunsDiv (mean run length >= 8)
	dictMaxCardDiv = 2  // dict when distinct strings <= n/dictMaxCardDiv
	deltaMaxWidth  = 32 // delta when the packed field fits 32 bits
)

// forceEncodingsEnv is a test knob: when set (non-empty), every sealed
// chunk-column takes some encoding regardless of the thresholds — strings
// dictionary-encode, ints delta-encode (RLE when the range needs >= 64
// bits), floats and bools run-length-encode even with run length 1. CI runs
// the workload parity suite once under it so the encoded kernel paths
// cannot rot behind cardinality heuristics.
const forceEncodingsEnv = "ENGINE_FORCE_ENCODINGS"

func forceEncodings() bool { return os.Getenv(forceEncodingsEnv) != "" }

// laneEq reports whether raw (pre-encoding) rows a and b of the column hold
// the same value for run detection. Floats compare by bit pattern: -0.0 and
// 0.0 (or two NaN payloads) must not collapse into one run, or decode would
// not be byte-identical.
func (c *colVec) laneEq(a, b int) bool {
	an := c.nulls != nil && c.nulls[a]
	bn := c.nulls != nil && c.nulls[b]
	if an || bn {
		return an == bn
	}
	switch c.kind {
	case TInt:
		return c.ints[a] == c.ints[b]
	case TFloat:
		return math.Float64bits(c.floats[a]) == math.Float64bits(c.floats[b])
	case TString:
		return c.strs[a] == c.strs[b]
	}
	return c.bools[a] == c.bools[b]
}

// countRuns counts maximal constant runs (laneEq equivalence) in rows [0,n).
func (c *colVec) countRuns(n int) int {
	runs := 1
	for i := 1; i < n; i++ {
		if !c.laneEq(i-1, i) {
			runs++
		}
	}
	return runs
}

// encodeChunk encodes each column of a freshly sealed storage chunk in
// place and charges the encoded footprint to the query's memory gauge (qc
// may be nil for context-free bulk loads). Runs before the chunk is
// published, so readers only ever see the final form.
func encodeChunk(ch *chunk, qc *queryCtx) {
	force := forceEncodings()
	var bytes int64
	for j := range ch.cols {
		bytes += encodeCol(&ch.cols[j], ch.n, force)
	}
	qc.chargeMem(bytes)
}

// encodeCol picks and applies one encoding for a sealed chunk-column,
// returning the estimated byte footprint of the encoded form (0 when the
// column stays raw). Boxed (TAny) columns — mixed dynamic types or all
// NULLs — never encode.
func encodeCol(c *colVec, n int, force bool) int64 {
	if c.kind == TAny || n == 0 {
		return 0
	}
	runs := c.countRuns(n)
	if !force && runs <= n/rleMaxRunsDiv {
		return c.encodeRLE(n, runs)
	}
	switch c.kind {
	case TString:
		dict := c.sortedDict(n)
		if force || len(dict) <= n/dictMaxCardDiv {
			return c.encodeDict(n, dict)
		}
	case TInt:
		if w := c.deltaWidth(); w <= deltaMaxWidth || (force && w < 64) {
			return c.encodeDelta(n, w)
		} else if force {
			return c.encodeRLE(n, runs)
		}
	case TFloat, TBool:
		if force {
			return c.encodeRLE(n, runs)
		}
	}
	return 0
}

// sortedDict returns the column's distinct non-NULL strings, sorted.
func (c *colVec) sortedDict(n int) []string {
	seen := make(map[string]struct{}, 16)
	dict := make([]string, 0, 16)
	for i := 0; i < n; i++ {
		if c.nulls != nil && c.nulls[i] {
			continue
		}
		s := c.strs[i]
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			dict = append(dict, s)
		}
	}
	sort.Strings(dict)
	return dict
}

func (c *colVec) encodeDict(n int, dict []string) int64 {
	codes := make([]uint32, n)
	for i := 0; i < n; i++ {
		if c.nulls != nil && c.nulls[i] {
			continue
		}
		codes[i] = uint32(sort.SearchStrings(dict, c.strs[i]))
	}
	boxed := make([]Value, len(dict))
	var bytes int64
	for ci, s := range dict {
		boxed[ci] = s
		bytes += int64(len(s))
	}
	c.dict, c.dictBoxed, c.codes = dict, boxed, codes
	c.strs = nil
	c.enc = encDict
	// The sorted dictionary's ends are exact zone bounds — byte-equal to
	// the Compare-derived min/max buildChunk found — and they reuse the
	// boxes downstream pruning already holds.
	c.min, c.max = boxed[0], boxed[len(boxed)-1]
	return bytes + int64(len(dict))*(16+24) + int64(n)*4
}

func (c *colVec) encodeRLE(n, runs int) int64 {
	ends := make([]int32, 0, runs)
	for i := 1; i <= n; i++ {
		if i == n || !c.laneEq(i-1, i) {
			ends = append(ends, int32(i))
		}
	}
	var runNulls []bool
	markNull := func(r int) {
		if runNulls == nil {
			runNulls = make([]bool, len(ends))
		}
		runNulls[r] = true
	}
	elem := int64(8)
	prev := 0
	switch c.kind {
	case TInt:
		vals := make([]int64, len(ends))
		for r, e := range ends {
			if c.nulls != nil && c.nulls[prev] {
				markNull(r)
			} else {
				vals[r] = c.ints[prev]
			}
			prev = int(e)
		}
		c.ints = vals
	case TFloat:
		vals := make([]float64, len(ends))
		for r, e := range ends {
			if c.nulls != nil && c.nulls[prev] {
				markNull(r)
			} else {
				vals[r] = c.floats[prev]
			}
			prev = int(e)
		}
		c.floats = vals
	case TString:
		elem = 16
		vals := make([]string, len(ends))
		for r, e := range ends {
			if c.nulls != nil && c.nulls[prev] {
				markNull(r)
			} else {
				vals[r] = c.strs[prev]
			}
			prev = int(e)
		}
		c.strs = vals
	case TBool:
		elem = 1
		vals := make([]bool, len(ends))
		for r, e := range ends {
			if c.nulls != nil && c.nulls[prev] {
				markNull(r)
			} else {
				vals[r] = c.bools[prev]
			}
			prev = int(e)
		}
		c.bools = vals
	}
	c.nulls = runNulls
	c.runEnds = ends
	c.enc = encRLE
	return int64(len(ends)) * (4 + elem)
}

// deltaWidth returns the bit width needed to pack this int column as
// offsets from its zone minimum. The zone summary is always present for
// storage seals (buildChunk computes it with withZones), and uint64
// subtraction is exact modulo 2^64, so negative ranges work out.
func (c *colVec) deltaWidth() int {
	lo, _ := c.min.(int64)
	hi, _ := c.max.(int64)
	return bits.Len64(uint64(hi) - uint64(lo))
}

func (c *colVec) encodeDelta(n, width int) int64 {
	base, _ := c.min.(int64)
	var packed []uint64
	if width > 0 {
		packed = make([]uint64, (n*width+63)/64)
		for i := 0; i < n; i++ {
			if c.nulls != nil && c.nulls[i] {
				continue
			}
			d := uint64(c.ints[i]) - uint64(base)
			bit := uint(i) * uint(width)
			word, off := bit>>6, bit&63
			packed[word] |= d << off
			if off+uint(width) > 64 {
				packed[word+1] |= d >> (64 - off)
			}
		}
	}
	c.base, c.width, c.packed = base, uint8(width), packed
	c.ints = nil
	c.enc = encDelta
	return int64(len(packed)) * 8
}

// materializeRow boxes one row of the chunk into a fresh slice.
func (c *chunk) materializeRow(i int) []Value {
	row := make([]Value, len(c.cols))
	for j := range c.cols {
		row[j] = c.valueAt(j, i)
	}
	return row
}

// chunkifyRows slices a row-major relation into ephemeral columnar chunks
// so it can feed the vectorized join as a probe or build input. The boxed
// rows are kept as each chunk's row view (they already exist), and no zone
// summaries are computed (intermediate chunks are never pruned).
func chunkifyRows(rows [][]Value, w int) []*chunk {
	if len(rows) == 0 {
		return nil
	}
	out := make([]*chunk, 0, (len(rows)+chunkRows-1)/chunkRows)
	for lo := 0; lo < len(rows); lo += chunkRows {
		hi := lo + chunkRows
		if hi > len(rows) {
			hi = len(rows)
		}
		out = append(out, buildChunk(rows[lo:hi], w, true, false))
	}
	return out
}

// rows returns the chunk's boxed row view, building and caching it on
// first use. Safe for concurrent callers.
func (c *chunk) rows() [][]Value {
	c.boxOnce.Do(func() {
		if c.boxed != nil {
			return
		}
		out := make([][]Value, c.n)
		for i := range out {
			out[i] = c.materializeRow(i)
		}
		c.boxed = out
	})
	return c.boxed
}

// colSource is one query's snapshot of a table: the (possibly pruned)
// sealed chunk slots plus the open tail rows. Slots are resident chunks or
// segment-backed references (chunkslot.go); resolving a slot can therefore
// read from disk and fail. The snapshot is created per scan, so its lazily
// built fields need no locking — everything that touches them runs before
// the morsel fan-out.
type colSource struct {
	sealed []chunkSlot
	tail   [][]Value
	nrows  int

	slots []chunkSlot // sealed + ephemeral tail chunk slot, built on first use
	scan  []*chunk    // resolved chunks, cached by resolveAll
	mat   [][]Value   // cached row materialization for the fallback path
}

// scanSlots returns the slot sequence the vectorized path iterates: every
// sealed slot followed by an ephemeral chunk over the tail rows. Resolving
// slots is left to the caller so parallel scans can load lazily, chunk by
// chunk, under their own cancellation polls.
func (s *colSource) scanSlots() []chunkSlot {
	if s.slots != nil {
		return s.slots
	}
	if len(s.tail) == 0 {
		s.slots = s.sealed
		return s.slots
	}
	w := len(s.tail[0])
	s.slots = make([]chunkSlot, 0, len(s.sealed)+1)
	//verdict:nocharge slot-pointer snapshot: one pointer per existing chunk, data already owned by the table
	s.slots = append(s.slots, s.sealed...)
	s.slots = append(s.slots, buildChunk(s.tail, w, true, false)) //verdict:nocharge one ephemeral chunk over rows the table already stores
	return s.slots
}

// resolveAll loads every slot and caches the chunk sequence — the
// all-at-once path for consumers that need the whole relation resident
// (join inputs, fallback materialization).
func (s *colSource) resolveAll(qc *queryCtx) ([]*chunk, error) {
	if s.scan != nil {
		return s.scan, nil
	}
	slots := s.scanSlots()
	out := make([]*chunk, len(slots)) //verdict:nocharge chunk-pointer slice; loaded chunk bytes are tracked by the chunk cache
	for i, sl := range slots {
		if err := qc.pollAbort(); err != nil {
			return nil, err
		}
		ch, err := sl.load(qc)
		if err != nil {
			return nil, err
		}
		out[i] = ch
	}
	s.scan = out
	return out, nil
}

// materializeCtx returns the snapshot as boxed rows for the interpreted
// fallback path: cached chunk row views concatenated with the live tail.
func (s *colSource) materializeCtx(qc *queryCtx) ([][]Value, error) {
	if s.mat != nil || s.nrows == 0 {
		return s.mat, nil
	}
	// The tail needs no special casing: scanSlots appends it as an
	// ephemeral chunk that keeps the live tail rows as its row view.
	chunks, err := s.resolveAll(qc)
	if err != nil {
		return nil, err
	}
	out := make([][]Value, 0, s.nrows)
	//verdict:nopoll boxing-only materialization; chunk loads poll in resolveAll and the interpreted consumers poll per row
	for _, ch := range chunks {
		out = append(out, ch.rows()...)
	}
	s.mat = out
	return out, nil
}

// appendRow adds one already-normalized row to the table, sealing (and
// encoding) the tail into a columnar chunk when it reaches chunkRows.
// Callers hold the engine write lock. qc is the query charged for encoded
// seal state (dictionaries, code vectors); nil for context-free bulk loads.
func (t *Table) appendRow(row []Value, qc *queryCtx) {
	t.tail = append(t.tail, row)
	t.nrows++
	if len(t.tail) >= chunkRows {
		ch := buildChunk(t.tail, len(t.Cols), false, true)
		encodeChunk(ch, qc)
		t.sealed = append(t.sealed, ch)
		// A fresh slice, not a truncation: concurrent readers may still
		// hold the old tail header.
		t.tail = nil
	}
}

// NumRows returns the table's row count. Unlike Engine.RowCount it does not
// take the engine lock; callers coordinating with concurrent appends should
// go through the engine.
func (t *Table) NumRows() int { return t.nrows }

// ScanColumn calls fn with every value of one column in row order, boxing
// only that column — the single-column analogue of ForEachRow for
// full-scan consumers like the native-approximation baselines. Iteration
// is not synchronized against concurrent appends.
func (t *Table) ScanColumn(col int, fn func(v Value) error) error {
	if col < 0 || col >= len(t.Cols) {
		return fmt.Errorf("engine: column %d out of range for %q", col, t.Name)
	}
	//verdict:nopoll exported table utility with no query context; consumers (baselines, loaders) run outside query execution
	for _, sl := range t.sealed {
		ch, err := sl.load(nil)
		if err != nil {
			return err
		}
		cv := &ch.cols[col]
		for i := 0; i < ch.n; i++ {
			if err := fn(cv.value(i)); err != nil {
				return err
			}
		}
	}
	for _, row := range t.tail {
		if err := fn(row[col]); err != nil {
			return err
		}
	}
	return nil
}

// ForEachRow calls fn for every row in order. The row slice is reused
// between calls — callers must not retain it. Like the old exported Rows
// field, iteration is not synchronized against concurrent appends.
func (t *Table) ForEachRow(fn func(row []Value) error) error {
	buf := make([]Value, len(t.Cols))
	//verdict:nopoll exported table utility with no query context; consumers (baselines, loaders) run outside query execution
	for _, sl := range t.sealed {
		ch, err := sl.load(nil)
		if err != nil {
			return err
		}
		for i := 0; i < ch.n; i++ {
			for j := range ch.cols {
				buf[j] = ch.cols[j].value(i)
			}
			if err := fn(buf); err != nil {
				return err
			}
		}
	}
	for _, row := range t.tail {
		copy(buf, row)
		if err := fn(buf); err != nil {
			return err
		}
	}
	return nil
}
