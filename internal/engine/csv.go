package engine

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ImportCSV loads a CSV file (with a header row) into a new table. Column
// types are inferred from the first data row: integers, floats, booleans,
// and strings; empty cells become NULL. This is the loading path for
// datasets produced by cmd/dbgen or exported from external systems.
func (e *Engine) ImportCSV(table, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return e.ImportCSVReader(table, f)
}

// ImportCSVReader is ImportCSV over any reader.
func (e *Engine) ImportCSVReader(table string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("engine: reading CSV header: %w", err)
	}
	cols := make([]string, len(header))
	copy(cols, header)

	var rows [][]Value
	var types []ColType
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("engine: reading CSV row %d: %w", len(rows)+2, err)
		}
		row := make([]Value, len(rec))
		for i, cell := range rec {
			row[i] = parseCSVCell(cell)
		}
		if types == nil {
			types = make([]ColType, len(row))
			for i, v := range row {
				types[i] = InferType(v)
			}
		}
		rows = append(rows, row)
	}
	colDefs := make([]Column, len(cols))
	for i, c := range cols {
		t := TAny
		if types != nil {
			t = types[i]
		}
		colDefs[i] = Column{Name: c, Type: t}
	}
	if err := e.CreateTable(table, colDefs); err != nil {
		return 0, err
	}
	if err := e.InsertRows(table, rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

func parseCSVCell(cell string) Value {
	if cell == "" {
		return nil
	}
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return f
	}
	switch strings.ToLower(cell) {
	case "true":
		return true
	case "false":
		return false
	}
	return cell
}
