package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Query-lifecycle control: cooperative cancellation, per-query memory
// budgets, and panic containment.
//
// Every query entry point (QueryContext, ExecContext) builds a queryCtx
// carrying the caller's context and an optional memory gauge. Execution
// loops poll the context between chunks (vectorized paths) or every
// pollEvery rows (interpreted paths), so a cancel or deadline expiry stops
// the scan within one chunk's worth of work; morsel workers always drain
// through runChunks' WaitGroup, so cancellation never leaks goroutines or
// publishes half-merged accumulator state. Allocation hot spots — group
// hash tables, the join build side, join-output references, gathered join
// columns, materialized boxed rows — charge the gauge with cheap atomic
// adds; overruns surface at the next poll as ErrMemoryBudget instead of
// OOMing the process. Panics anywhere in execution are recovered at the
// morsel-worker and query boundaries and converted into *InternalError, so
// one query's crash cannot take down other clients sharing the engine.

// ErrMemoryBudget is the sentinel all memory-budget overruns wrap: callers
// test with errors.Is(err, engine.ErrMemoryBudget).
var ErrMemoryBudget = errors.New("engine: query memory budget exceeded")

// BudgetError reports a memory-budget overrun with the accounting that
// tripped it. It wraps ErrMemoryBudget.
type BudgetError struct {
	Limit int64 // configured budget, bytes
	Used  int64 // estimated bytes charged when the query aborted
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("engine: query memory budget exceeded (~%d bytes used, limit %d)", e.Used, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrMemoryBudget }

// InternalError is a contained engine panic: the query keeps its crash, the
// engine keeps serving everyone else. It carries the original panic value
// and the stack captured at recovery.
type InternalError struct {
	Query string // SQL of the query that crashed (when known at the boundary)
	Panic any
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Query != "" {
		return fmt.Sprintf("engine: internal error in query %q: %v", e.Query, e.Panic)
	}
	return fmt.Sprintf("engine: internal error: %v", e.Panic)
}

// containPanic converts a recovered panic into *InternalError through errp.
// Deferred at the query-execution boundaries.
func containPanic(errp *error, query string) {
	if r := recover(); r != nil {
		*errp = &InternalError{Query: query, Panic: r, Stack: debug.Stack()}
	}
}

// stampQuery fills the Query field of an *InternalError recovered below the
// query boundary (morsel workers don't know the SQL).
func stampQuery(err error, query string) error {
	var ie *InternalError
	if errors.As(err, &ie) && ie.Query == "" {
		ie.Query = query
	}
	return err
}

// memGauge is one query's memory accounting: an atomic byte counter checked
// against a fixed limit. Charges never block or fail — overruns are
// surfaced by the next poll — so hot paths pay one atomic add.
type memGauge struct {
	used  atomic.Int64
	limit int64
}

func (g *memGauge) add(n int64) {
	if g != nil {
		g.used.Add(n)
	}
}

func (g *memGauge) check() error {
	if g == nil {
		return nil
	}
	if used := g.used.Load(); used > g.limit {
		return &BudgetError{Limit: g.limit, Used: used}
	}
	return nil
}

type memBudgetKey struct{}

// WithMemoryBudget returns a context carrying a per-query memory budget in
// bytes. It overrides the engine's default budget for queries run under the
// returned context; bytes <= 0 disables the budget for those queries.
func WithMemoryBudget(ctx context.Context, bytes int64) context.Context {
	return context.WithValue(ctx, memBudgetKey{}, bytes)
}

// MemoryBudgetFrom extracts a budget from ctx, or def when none is set.
func MemoryBudgetFrom(ctx context.Context, def int64) int64 {
	if v, ok := ctx.Value(memBudgetKey{}).(int64); ok {
		return v
	}
	return def
}

// SetMemoryBudget sets the engine's default per-query memory budget in
// bytes (0 disables it). Individual queries override it via
// WithMemoryBudget on their context.
func (e *Engine) SetMemoryBudget(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	e.memBudget.Store(bytes)
}

// MemoryBudget reports the engine's default per-query memory budget.
func (e *Engine) MemoryBudget() int64 { return e.memBudget.Load() }

// Byte-cost estimates for gauge charges. The gauge bounds blow-up, it is
// not an allocator: costs are flat per-slot approximations (a boxed Value
// is an interface header plus a small heap cell; map entries carry bucket
// and key overhead).
const (
	bytesPerValue int64 = 24  // boxed Value slot (interface header + cell)
	bytesPerRef   int64 = 16  // packed join row reference + slice slot
	bytesPerGroup int64 = 160 // map entry + rendered key + groupAcc header
	bytesPerAcc   int64 = 96  // one accumulator's state
)

// pollEvery is the row granularity of cancellation/budget checks in
// interpreted (row-at-a-time) loops. Power of two: the check compiles to a
// mask. Vectorized paths poll per chunk (chunkRows rows) instead.
const pollEvery = 1024

// newQueryCtx builds the per-query state for one execution under ctx. The
// memory gauge is created only when ctx or the engine configures a budget.
func (e *Engine) newQueryCtx(ctx context.Context, sql string) *queryCtx {
	if ctx == nil {
		ctx = context.Background() //verdict:ctx-shim nil-ctx guard: context-free API entry points delegate here with nil
	}
	qc := &queryCtx{eng: e, ctx: ctx, query: sql}
	if b := MemoryBudgetFrom(ctx, e.memBudget.Load()); b > 0 {
		qc.mem = &memGauge{limit: b}
	}
	return qc
}

// pollAbort checks for cancellation and budget overrun. Safe from morsel
// workers (no shared mutable state); called per chunk on vectorized paths.
func (qc *queryCtx) pollAbort() error {
	if qc == nil {
		return nil
	}
	if qc.ctx != nil {
		if err := qc.ctx.Err(); err != nil {
			return err
		}
	}
	return qc.mem.check()
}

// tick is pollAbort amortized over pollEvery iterations for serial
// row-at-a-time loops. Not worker-safe: the counter is unsynchronized
// (workers keep a local counter and call pollAbort directly).
func (qc *queryCtx) tick() error {
	qc.polls++
	if qc.polls&(pollEvery-1) != 0 {
		return nil
	}
	return qc.pollAbort()
}

// chargeMem adds n estimated bytes to the query's gauge (no-op without a
// budget). Never fails; the next poll surfaces overruns.
func (qc *queryCtx) chargeMem(n int64) {
	if qc != nil {
		qc.mem.add(n)
	}
}

// materialize returns the relation's boxed row view, charging the gauge
// when boxing actually happens (a columnar source boxes each chunk once;
// row-major relations were charged when produced). Converting a columnar
// source can load segment-backed chunks from disk, hence the error.
func (qc *queryCtx) materialize(r *relation) ([][]Value, error) {
	if r.rows == nil && r.src != nil {
		qc.chargeMem(int64(r.src.nrows) * (int64(r.width()) + 2) * bytesPerValue)
		rows, err := r.src.materializeCtx(qc)
		if err != nil {
			return nil, err
		}
		r.rows = rows
	}
	return r.rows, nil
}
