package engine

import (
	"bytes"

	"verdictdb/internal/faultpoint"
	"verdictdb/internal/sqlparser"
)

// Vectorized execution drivers: the chunk-at-a-time scan→filter→aggregate
// pipeline and the chunk-at-a-time filter→project pipeline for
// non-aggregate selects. Both hand out whole chunks as morsels (contiguous
// chunk ranges per worker, merged/concatenated in chunk order), so results
// and group order match the serial row scan. Any chunk whose vector
// evaluation errors is transparently re-run through the row-compiled
// closures over the chunk's cached row view before any state was mutated —
// semantics, including error behavior, stay identical to the row path.

// vecPlan is a scanPlan lowered to vector kernels.
type vecPlan struct {
	p          *scanPlan
	where      vnode   // nil when the query has no WHERE
	whereConjs []vnode // top-level AND conjuncts of where
	keys       []vnode // GROUP BY keys
	args       []vnode // aggregate arguments; nil for count(*)-style stars
	nbuf       int
}

// buildVecPlan lowers a pure compiled scan plan to vector kernels; nil
// when some expression cannot run on the vectorized path.
func buildVecPlan(p *scanPlan) *vecPlan {
	c := &vecCompiler{eng: p.eng, rel: p.rel}
	vp := &vecPlan{p: p}
	if p.whereAST != nil {
		vp.where, vp.whereConjs = c.lowerWhere(p.whereAST)
		if vp.where == nil {
			return nil
		}
	}
	for _, ke := range p.keyASTs {
		n := c.lower(ke)
		if n == nil {
			return nil
		}
		vp.keys = append(vp.keys, n) //verdict:nocharge plan-size: one vnode per GROUP BY expression
	}
	for _, sp := range p.specs {
		if sp.fc.Star {
			vp.args = append(vp.args, nil) //verdict:nocharge plan-size: one vnode slot per aggregate call
			continue
		}
		n := c.lower(sp.argAST)
		if n == nil {
			return nil
		}
		vp.args = append(vp.args, n) //verdict:nocharge plan-size: one vnode slot per aggregate call
	}
	vp.nbuf = c.nbuf
	return vp
}

func (vp *vecPlan) newCtx() *vecCtx {
	return newVecCtx(vp.nbuf, len(vp.keys), len(vp.args), 0)
}

// run executes the vectorized plan over the snapshot, morsel-parallel when
// the snapshot is large enough.
func (vp *vecPlan) run(src *colSource) ([]*entry, error) {
	slots := src.scanSlots()
	nw := vp.p.eng.scanWorkers(src.nrows)
	if nw > len(slots) {
		nw = len(slots)
	}
	var cg *chunkGroups
	if nw > 1 {
		results := make([]*chunkGroups, nw)
		err := runChunks(nw, len(slots), func(w, lo, hi int) error {
			vc := vp.newCtx()
			g := newChunkGroups()
			results[w] = g
			for _, sl := range slots[lo:hi] {
				if err := vp.p.qc.pollAbort(); err != nil {
					return err
				}
				ch, err := sl.load(vp.p.qc)
				if err != nil {
					return err
				}
				if err := vp.scanChunk(g, vc, ch); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cg, err = mergeChunkGroups(results)
		if err != nil {
			return nil, err
		}
		vp.p.eng.parallelScans.Add(1)
	} else {
		cg = newChunkGroups()
		vc := vp.newCtx()
		for _, sl := range slots {
			if err := vp.p.qc.pollAbort(); err != nil {
				return nil, err
			}
			ch, err := sl.load(vp.p.qc)
			if err != nil {
				return nil, err
			}
			if err := vp.scanChunk(cg, vc, ch); err != nil {
				return nil, err
			}
		}
	}
	return vp.p.finish(cg)
}

// scanChunk filters and partially aggregates one chunk into cg. Vector
// evaluation happens before any accumulator is touched, so an erroring
// kernel can fall back to the row path for the whole chunk.
func (vp *vecPlan) scanChunk(cg *chunkGroups, vc *vecCtx, ch *chunk) error {
	if err := faultpoint.Hit(faultpoint.SiteEngineScanChunk); err != nil {
		return err
	}
	lanes := ch.n
	var sel []int32
	if vp.where != nil {
		var all bool
		var err error
		sel, all, err = evalFilter(vc, ch, vp.where, vp.whereConjs)
		if err != nil {
			return vp.p.scanRowsInto(cg, ch.rows(), true)
		}
		if all {
			sel = nil
		} else {
			lanes = len(sel)
			if lanes == 0 {
				return nil
			}
		}
	}
	for i, kn := range vp.keys {
		v, err := kn.eval(vc, ch, sel)
		if err != nil {
			return vp.p.scanRowsInto(cg, ch.rows(), true)
		}
		vc.keys[i] = v
	}
	for i, an := range vp.args {
		if an == nil {
			vc.args[i] = nil
			continue
		}
		v, err := an.eval(vc, ch, sel)
		if err != nil {
			return vp.p.scanRowsInto(cg, ch.rows(), true)
		}
		vc.args[i] = v
	}

	// Global aggregates (no GROUP BY) hit exactly one group: find or create
	// it once, then let bulk-capable accumulators (count(*)) take the whole
	// batch in O(1) instead of once per lane.
	if len(vp.keys) == 0 && lanes > 0 {
		g, ok := cg.m[""]
		if !ok {
			accs, err := vp.p.newAccs()
			if err != nil {
				return err
			}
			vp.p.qc.chargeMem(vp.p.groupBytes)
			ri := 0
			if sel != nil {
				ri = int(sel[0])
			}
			g = &groupAcc{repr: ch.materializeRow(ri), accs: accs}
			cg.m[""] = g
			cg.order = append(cg.order, "")
		}
		for i := range vp.args {
			av := vc.args[i]
			if av == nil {
				if sa, ok := g.accs[i].(starAdder); ok {
					sa.addStarN(int64(lanes))
					continue
				}
				for k := 0; k < lanes; k++ {
					g.accs[i].addStar()
				}
				continue
			}
			for k := 0; k < lanes; k++ {
				if err := addLane(g.accs[i], av, k); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Lane loop: render the group key from typed lanes, find or create the
	// group, and feed each accumulator through its typed entry point. The
	// one-element group memo catches the global-aggregate case (one group)
	// and runs of identical keys without a map probe.
	buf := vc.keyBuf
	var lastKey []byte
	var lastG *groupAcc
	for k := 0; k < lanes; k++ {
		buf = buf[:0]
		for _, kv := range vc.keys {
			buf = appendGroupKeyLane(buf, kv, k)
			buf = append(buf, keySep)
		}
		g := lastG
		if g == nil || !bytes.Equal(buf, lastKey) {
			var ok bool
			g, ok = cg.m[string(buf)]
			if !ok {
				accs, err := vp.p.newAccs()
				if err != nil {
					vc.keyBuf = buf
					return err
				}
				vp.p.qc.chargeMem(vp.p.groupBytes)
				ri := k
				if sel != nil {
					ri = int(sel[k])
				}
				g = &groupAcc{repr: ch.materializeRow(ri), accs: accs}
				key := string(buf)
				cg.m[key] = g
				cg.order = append(cg.order, key)
			}
			lastKey = append(lastKey[:0], buf...)
			lastG = g
		}
		for i := range vp.args {
			av := vc.args[i]
			if av == nil {
				g.accs[i].addStar()
				continue
			}
			if err := addLane(g.accs[i], av, k); err != nil {
				vc.keyBuf = buf
				return err
			}
		}
	}
	vc.keyBuf = buf
	return nil
}

// appendGroupKeyLane renders lane k of a key vector with the same encoding
// as appendGroupKey, reading typed storage directly.
func appendGroupKeyLane(dst []byte, v *vec, k int) []byte {
	if v.isNull(k) {
		return appendGroupKeyNull(dst)
	}
	switch v.kind {
	case TInt:
		return appendGroupKeyInt(dst, v.ints[k])
	case TFloat:
		return appendGroupKeyFloat(dst, v.floats[k])
	case TString:
		return appendGroupKeyStr(dst, v.str(k))
	case TBool:
		return appendGroupKeyBool(dst, v.bools[k])
	}
	return appendGroupKey(dst, v.anys[k])
}

// addLane feeds lane k of an argument vector into an accumulator, using
// the typed entry points when the accumulator provides them so numeric
// scans never box.
func addLane(acc accumulator, v *vec, k int) error {
	if v.isNull(k) {
		return acc.add(nil)
	}
	switch v.kind {
	case TInt:
		if ta, ok := acc.(typedAdder); ok {
			ta.addInt(v.ints[k])
			return nil
		}
		return acc.add(v.ints[k])
	case TFloat:
		if ta, ok := acc.(typedAdder); ok {
			ta.addFloat(v.floats[k])
			return nil
		}
		return acc.add(v.floats[k])
	case TString:
		if sa, ok := acc.(stringAdder); ok {
			sa.addStr(v.str(k))
			return nil
		}
		if v.dict != nil {
			return acc.add(v.dictBoxed[v.codes[k]]) // shared box, no allocation
		}
		return acc.add(v.strs[k])
	case TBool:
		return acc.add(v.bools[k]) // bool boxes are interned
	}
	return acc.add(v.anys[k])
}

// vecSelect is a non-aggregate SELECT lowered to a fused vectorized
// filter→project pipeline: the WHERE kernel yields a selection vector and
// every output column is computed over the selected lanes, materializing
// boxed rows only at the ResultSet boundary.
type vecSelect struct {
	qc         *queryCtx
	eng        *Engine
	where      vnode
	whereConjs []vnode
	whereFn    compiledExpr // row-path fallback predicate
	items      []vnode
	itemFns    []projCol // row-path fallback projections
	// itemCols[j] >= 0 marks output j as a plain column reference: the
	// kernel eval is skipped and surviving lanes late-materialize straight
	// from chunk storage (boxcol.go) after the filter has shrunk the lane
	// set. -1 means computed expression (eval, then bulk-box the vector).
	itemCols []int
	nbuf     int
}

// buildVecSelect lowers the WHERE and output columns of a non-aggregate
// SELECT; nil when any of them cannot run vectorized.
func buildVecSelect(qc *queryCtx, rel *relation, outCols []outCol, wherePred compiledExpr, whereAST sqlparser.Expr) *vecSelect {
	eng := qc.eng
	c := &vecCompiler{eng: eng, rel: rel}
	vs := &vecSelect{qc: qc, eng: eng, whereFn: wherePred}
	if whereAST != nil {
		vs.where, vs.whereConjs = c.lowerWhere(whereAST)
		if vs.where == nil {
			return nil
		}
	}
	//verdict:nocharge plan-size: one vnode per projected output column
	for _, oc := range outCols {
		if oc.expr == nil {
			vs.items = append(vs.items, &vnCol{id: c.newID(), col: oc.idx}) //verdict:nocharge plan-size
			vs.itemFns = append(vs.itemFns, projCol{idx: oc.idx})           //verdict:nocharge plan-size
			vs.itemCols = append(vs.itemCols, oc.idx)                       //verdict:nocharge plan-size
			continue
		}
		n := c.lower(oc.expr)
		if n == nil {
			return nil
		}
		fn, pure, ok := compileExpr(eng, rel, oc.expr)
		if !ok || !pure {
			return nil
		}
		ci := -1
		if cn, isCol := n.(*vnCol); isCol {
			ci = cn.col // explicit column reference: late-materialize too
		}
		vs.items = append(vs.items, n)                   //verdict:nocharge plan-size
		vs.itemFns = append(vs.itemFns, projCol{fn: fn}) //verdict:nocharge plan-size
		vs.itemCols = append(vs.itemCols, ci)            //verdict:nocharge plan-size
	}
	vs.nbuf = c.nbuf
	return vs
}

func (vs *vecSelect) run(src *colSource) ([][]Value, error) {
	slots := src.scanSlots()
	nw := vs.eng.scanWorkers(src.nrows)
	if nw > len(slots) {
		nw = len(slots)
	}
	if nw <= 1 {
		vc := newVecCtx(vs.nbuf, 0, 0, len(vs.items))
		// Row headers for every source row up front: the filter can only
		// shrink the output, and append-doubling over a six-figure result
		// costs more in copies and GC scanning than the slack.
		vs.qc.chargeMem(int64(src.nrows) * 2 * bytesPerValue)
		out := make([][]Value, 0, src.nrows)
		for _, sl := range slots {
			if err := vs.qc.pollAbort(); err != nil {
				return nil, err
			}
			ch, err := sl.load(vs.qc)
			if err != nil {
				return nil, err
			}
			out, err = vs.projectChunk(out, vc, ch)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	outs := make([][][]Value, nw)
	err := runChunks(nw, len(slots), func(w, lo, hi int) error {
		vc := newVecCtx(vs.nbuf, 0, 0, len(vs.items))
		span := 0
		for _, sl := range slots[lo:hi] {
			span += sl.slotRows()
		}
		vs.qc.chargeMem(int64(span) * 2 * bytesPerValue)
		out := make([][]Value, 0, span)
		for _, sl := range slots[lo:hi] {
			if err := vs.qc.pollAbort(); err != nil {
				return err
			}
			ch, err := sl.load(vs.qc)
			if err != nil {
				return err
			}
			out, err = vs.projectChunk(out, vc, ch)
			if err != nil {
				return err
			}
		}
		outs[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	res := make([][]Value, 0, total)
	for _, o := range outs {
		res = append(res, o...)
	}
	vs.eng.parallelScans.Add(1)
	return res, nil
}

// projectChunk filters and projects one chunk, appending the output rows.
func (vs *vecSelect) projectChunk(out [][]Value, vc *vecCtx, ch *chunk) ([][]Value, error) {
	lanes := ch.n
	var sel []int32
	if vs.where != nil {
		var all bool
		var err error
		sel, all, err = evalFilter(vc, ch, vs.where, vs.whereConjs)
		if err != nil {
			return vs.projectChunkRows(out, ch)
		}
		if all {
			sel = nil
		} else {
			lanes = len(sel)
			if lanes == 0 {
				return out, nil
			}
		}
	}
	// Kernel evaluation for computed items only; plain column references
	// skip it and late-materialize from chunk storage below, decoding only
	// the lanes the filter kept.
	for j, it := range vs.items {
		if vs.itemCols[j] >= 0 {
			vc.items[j] = nil
			continue
		}
		v, err := it.eval(vc, ch, sel)
		if err != nil {
			return vs.projectChunkRows(out, ch)
		}
		vc.items[j] = v
	}
	w := len(vs.items)
	vs.qc.chargeMem(int64(lanes) * (int64(w) + 2) * bytesPerValue)
	// One boxed block per chunk, sliced into rows: surviving lanes are
	// boxed in bulk (boxcol.go), collapsing the old per-row make+box loop
	// into a handful of allocations per chunk.
	block := make([]Value, lanes*w)
	for j := range vs.items {
		if ci := vs.itemCols[j]; ci >= 0 {
			boxColLanes(block[j:], w, ch.col(ci), sel, lanes)
		} else {
			boxVecLanes(block[j:], w, vc.items[j], lanes)
		}
	}
	for k := 0; k < lanes; k++ {
		out = append(out, block[k*w:(k+1)*w:(k+1)*w])
	}
	return out, nil
}

// projectChunkRows is the per-chunk row-path fallback: filter and project
// through the compiled closures over the cached row view.
func (vs *vecSelect) projectChunkRows(out [][]Value, ch *chunk) ([][]Value, error) {
	for _, r := range ch.rows() {
		if vs.whereFn != nil {
			v, err := vs.whereFn(r)
			if err != nil {
				return nil, err
			}
			if b, ok := ToBool(v); !ok || !b {
				continue
			}
		}
		row := make([]Value, len(vs.itemFns))
		for j, it := range vs.itemFns {
			if it.fn == nil {
				row[j] = r[it.idx]
				continue
			}
			v, err := it.fn(r)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		out = append(out, row)
	}
	return out, nil
}
