package engine_test

import (
	"errors"
	"testing"

	"verdictdb/internal/engine"
)

// Join edge-case suite: NULL join keys on each side for all four join
// types, USING with missing/ambiguous columns, duplicate column names
// across sides, empty build/probe sides, mixed-type keys, residuals on
// outer joins, and multi-way joins — each asserted byte-identical between
// the vectorized join path and the row path (SetVectorized(false)), plus a
// morsel-parallel leg at parallelism 8 (join output order is chunk-order
// merged, so even the parallel probe must match bitwise on non-aggregate
// queries).

// joinEngines returns three identically loaded engines: vectorized serial,
// row-path serial, vectorized parallel(8).
func joinEngines(t *testing.T, load func(e *engine.Engine) error) (vec, row, par *engine.Engine) {
	t.Helper()
	vec = engine.NewSeeded(1)
	row = engine.NewSeeded(1)
	par = engine.NewSeeded(1)
	for _, e := range []*engine.Engine{vec, row, par} {
		if err := load(e); err != nil {
			t.Fatal(err)
		}
	}
	vec.SetParallelism(1)
	row.SetParallelism(1)
	row.SetVectorized(false)
	par.SetParallelism(8)
	return vec, row, par
}

// checkJoinIdentical runs one query on all three engines and requires the
// vectorized results to match the row path byte for byte.
func checkJoinIdentical(t *testing.T, vec, row, par *engine.Engine, id, sql string) {
	t.Helper()
	rsRow, err := row.Query(sql)
	if err != nil {
		t.Fatalf("%s row path: %v", id, err)
	}
	rsVec, err := vec.Query(sql)
	if err != nil {
		t.Fatalf("%s vectorized: %v", id, err)
	}
	rowsIdentical(t, id+" vec-vs-row", rsRow, rsVec)
	rsPar, err := par.Query(sql)
	if err != nil {
		t.Fatalf("%s parallel: %v", id, err)
	}
	rowsIdentical(t, id+" par-vs-row", rsRow, rsPar)
}

func loadNullKeyTables(e *engine.Engine) error {
	if err := e.CreateTable("l", []engine.Column{
		{Name: "id", Type: engine.TInt}, {Name: "lv", Type: engine.TString},
	}); err != nil {
		return err
	}
	if err := e.CreateTable("r", []engine.Column{
		{Name: "id", Type: engine.TInt}, {Name: "rv", Type: engine.TString},
	}); err != nil {
		return err
	}
	if err := e.InsertRows("l", [][]engine.Value{
		{int64(1), "a"}, {int64(2), "b"}, {nil, "c"}, {int64(3), "d"}, {int64(2), "e"},
	}); err != nil {
		return err
	}
	return e.InsertRows("r", [][]engine.Value{
		{int64(2), "x"}, {nil, "y"}, {int64(4), "z"}, {int64(2), "w"},
	})
}

func TestJoinNullKeysAllTypes(t *testing.T) {
	vec, row, par := joinEngines(t, loadNullKeyTables)
	for _, jt := range []string{"inner join", "left join", "right join", "full join"} {
		sql := "select l.id, l.lv, r.id, r.rv from l " + jt + " r on l.id = r.id"
		checkJoinIdentical(t, vec, row, par, jt, sql)
	}
	// NULL keys never match: inner join output must only hold id=2 pairs.
	rs, err := vec.Query("select count(*) from l inner join r on l.id = r.id")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0]; got != int64(4) {
		t.Fatalf("inner join over NULL keys: want 4 pairs (2x2 for id=2), got %v", got)
	}
	// LEFT null-extends the NULL-key and unmatched probe rows; FULL adds
	// the unmatched build rows (NULL key + id=4) at the end.
	rs, err = vec.Query("select count(*) from l full join r on l.id = r.id")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0]; got != int64(9) {
		t.Fatalf("full join: want 9 rows (4 matches + 3 left-extended + 2 right-extended), got %v", got)
	}
}

func TestJoinResidualOuterTypes(t *testing.T) {
	vec, row, par := joinEngines(t, loadNullKeyTables)
	for _, jt := range []string{"inner join", "left join", "right join", "full join"} {
		// Residuals over each side of the combined row, and over both.
		for _, res := range []string{"r.rv <> 'x'", "l.lv <> 'b'", "l.lv < r.rv"} {
			sql := "select l.id, l.lv, r.id, r.rv from l " + jt + " r on l.id = r.id and " + res
			checkJoinIdentical(t, vec, row, par, jt+" residual "+res, sql)
		}
	}
	// The residual changes match bookkeeping: id=2 probe rows still match
	// (via rv='w'), but the rv='x' build row must null-extend in FULL.
	rs, err := vec.Query(`select count(*) from l full join r on l.id = r.id and r.rv <> 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0]; got != int64(8) {
		t.Fatalf("full join with residual: want 8 rows, got %v", got)
	}
}

func TestJoinNonEquiAllTypes(t *testing.T) {
	// No equi key: nested-loop path on both engines. RIGHT and FULL used to
	// error with "requires an equi-join condition".
	vec, row, par := joinEngines(t, loadNullKeyTables)
	for _, jt := range []string{"inner join", "left join", "right join", "full join"} {
		sql := "select l.id, l.lv, r.id, r.rv from l " + jt + " r on l.id < r.id"
		checkJoinIdentical(t, vec, row, par, jt+" non-equi", sql)
	}
	rs, err := vec.Query("select count(*) from l right join r on l.id < r.id")
	if err != nil {
		t.Fatal(err)
	}
	// Matches: l.id 1 < {2,4,2} gives 3, l.id 2 (twice) and 3 each < 4 give
	// 3 more = 6; the NULL-key right row never matches and null-extends → 7.
	if got := rs.Rows[0][0]; got != int64(7) {
		t.Fatalf("right non-equi join: want 7 rows, got %v", got)
	}
}

func TestJoinUsingErrors(t *testing.T) {
	vec, row, _ := joinEngines(t, loadNullKeyTables)
	for _, e := range []*engine.Engine{vec, row} {
		// Missing on one side must error, not silently bind unqualified.
		_, err := e.Query("select * from l inner join r using (lv)")
		if !errors.Is(err, engine.ErrJoinColumnNotFound) {
			t.Fatalf("USING with one-sided column: want ErrJoinColumnNotFound, got %v", err)
		}
		// Missing on both sides.
		_, err = e.Query("select * from l inner join r using (nope)")
		if !errors.Is(err, engine.ErrJoinColumnNotFound) {
			t.Fatalf("USING with unknown column: want ErrJoinColumnNotFound, got %v", err)
		}
		// Ambiguous on one side: a derived table exposing the name twice.
		_, err = e.Query("select * from (select id, id from l) x inner join r using (id)")
		if !errors.Is(err, engine.ErrAmbiguousColumn) {
			t.Fatalf("USING with ambiguous column: want ErrAmbiguousColumn, got %v", err)
		}
	}
}

func TestJoinUsingAndDuplicateNames(t *testing.T) {
	vec, row, par := joinEngines(t, loadNullKeyTables)
	// USING works and the combined schema keeps both sides' columns —
	// including the duplicate id — in order.
	sql := "select * from l inner join r using (id)"
	checkJoinIdentical(t, vec, row, par, "using", sql)
	rs, err := vec.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"id", "lv", "id", "rv"}; len(rs.Cols) != len(want) {
		t.Fatalf("USING join columns: got %v", rs.Cols)
	}
	// An unqualified duplicate name in the select list stays ambiguous.
	_, err = vec.Query("select id from l inner join r using (id)")
	if !errors.Is(err, engine.ErrAmbiguousColumn) {
		t.Fatalf("duplicate column select: want ErrAmbiguousColumn, got %v", err)
	}
	// Qualified references disambiguate.
	checkJoinIdentical(t, vec, row, par, "using-qualified",
		"select l.id, r.id from l inner join r using (id)")
}

func TestJoinEmptySides(t *testing.T) {
	load := func(e *engine.Engine) error {
		if err := loadNullKeyTables(e); err != nil {
			return err
		}
		return e.CreateTable("empty", []engine.Column{
			{Name: "id", Type: engine.TInt}, {Name: "ev", Type: engine.TString},
		})
	}
	vec, row, par := joinEngines(t, load)
	for _, jt := range []string{"inner join", "left join", "right join", "full join"} {
		// Empty build (right) side.
		checkJoinIdentical(t, vec, row, par, jt+" empty-build",
			"select l.id, l.lv, e.id, e.ev from l "+jt+" empty e on l.id = e.id")
		// Empty probe (left) side.
		checkJoinIdentical(t, vec, row, par, jt+" empty-probe",
			"select e.id, e.ev, r.id, r.rv from empty e "+jt+" r on e.id = r.id")
	}
	// Aggregates over empty join outputs.
	checkJoinIdentical(t, vec, row, par, "empty agg",
		"select count(*), sum(l.id) from l inner join empty e on l.id = e.id")
}

func TestJoinMixedTypeKeys(t *testing.T) {
	load := func(e *engine.Engine) error {
		if err := e.CreateTable("li", []engine.Column{
			{Name: "k", Type: engine.TInt}, {Name: "v", Type: engine.TString},
		}); err != nil {
			return err
		}
		if err := e.CreateTable("rf", []engine.Column{
			{Name: "k", Type: engine.TFloat}, {Name: "w", Type: engine.TString},
		}); err != nil {
			return err
		}
		if err := e.InsertRows("li", [][]engine.Value{
			{int64(1), "a"}, {int64(2), "b"}, {int64(3), "c"},
		}); err != nil {
			return err
		}
		return e.InsertRows("rf", [][]engine.Value{
			{2.0, "x"}, {2.5, "y"}, {3.0, "z"},
		})
	}
	vec, row, par := joinEngines(t, load)
	// Integral floats join against ints (the group-key encoding renders
	// both as the same fragment, matching Compare's coercion).
	checkJoinIdentical(t, vec, row, par, "int-float keys",
		"select li.k, li.v, rf.k, rf.w from li inner join rf on li.k = rf.k")
	rs, err := vec.Query("select count(*) from li inner join rf on li.k = rf.k")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0]; got != int64(2) {
		t.Fatalf("mixed-type keys: want 2 matches, got %v", got)
	}
}

// TestJoinLargeParallelProbe crosses sealed-chunk boundaries on both sides,
// exercises the morsel-parallel probe, multi-way (join-of-join) inputs, and
// aggregation over the reference-based join output.
func TestJoinLargeParallelProbe(t *testing.T) {
	load := func(e *engine.Engine) error {
		if err := e.CreateTable("fact", []engine.Column{
			{Name: "g", Type: engine.TInt}, {Name: "h", Type: engine.TInt},
			{Name: "x", Type: engine.TFloat},
		}); err != nil {
			return err
		}
		if err := e.CreateTable("dim1", []engine.Column{
			{Name: "g", Type: engine.TInt}, {Name: "cat", Type: engine.TString},
		}); err != nil {
			return err
		}
		if err := e.CreateTable("dim2", []engine.Column{
			{Name: "h", Type: engine.TInt}, {Name: "region", Type: engine.TString},
		}); err != nil {
			return err
		}
		rows := make([][]engine.Value, 8200)
		for i := range rows {
			var g engine.Value
			if i%97 == 0 {
				g = nil // NULL keys sprinkled through the probe side
			} else {
				g = int64(i % 40)
			}
			rows[i] = []engine.Value{g, int64(i % 7), float64(i%1000) / 10}
		}
		if err := e.InsertRows("fact", rows); err != nil {
			return err
		}
		cats := []string{"A", "B", "C"}
		drows := make([][]engine.Value, 0, 38)
		for g := 0; g < 38; g++ { // ids 38,39 dangle on the probe side
			drows = append(drows, []engine.Value{int64(g), cats[g%3]})
		}
		if err := e.InsertRows("dim1", drows); err != nil {
			return err
		}
		d2 := make([][]engine.Value, 0, 7)
		for h := 0; h < 7; h++ {
			d2 = append(d2, []engine.Value{int64(h), string(rune('p' + h))})
		}
		return e.InsertRows("dim2", d2)
	}
	vec, row, par := joinEngines(t, load)

	// Non-aggregate multi-way join: byte-identical even at parallelism 8
	// (probe morsels merge in chunk order).
	checkJoinIdentical(t, vec, row, par, "multiway project", `
		select f.g, d1.cat, d2.region, f.x
		from fact f
		inner join dim1 d1 on f.g = d1.g
		inner join dim2 d2 on f.h = d2.h
		where f.x < 42.5`)

	// Aggregation over the join with LEFT dangling rows. The parallel leg
	// is compared with float tolerance: downstream partial aggregation
	// reassociates sums (the join output itself stays byte-identical, as
	// the projection query above proves).
	aggSQL := `
		select d1.cat, count(*) as c, sum(f.x) as sx
		from fact f left join dim1 d1 on f.g = d1.g
		group by d1.cat`
	rsRow, err := row.Query(aggSQL)
	if err != nil {
		t.Fatal(err)
	}
	rsVec, err := vec.Query(aggSQL)
	if err != nil {
		t.Fatal(err)
	}
	rowsIdentical(t, "left agg vec-vs-row", rsRow, rsVec)
	rsPar, err := par.Query(aggSQL)
	if err != nil {
		t.Fatal(err)
	}
	rowsEquivalent(t, "left agg par-vs-row", rsRow, rsPar)

	// The parallel engine must actually fan the probe out.
	if par.ParallelScans() == 0 {
		t.Fatal("parallel engine never took the morsel-parallel path")
	}
}
