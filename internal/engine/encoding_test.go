package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Tests for the sealed-chunk column encodings: which encoding the seal pass
// picks, transparent read-through, encoding-aware kernels against the row
// path, selection vectors crossing run boundaries, concurrent readers during
// sealing, the kernel-error row fallback, seal-time budget charging, and the
// ENGINE_FORCE_ENCODINGS knob.

// encRowsEqual requires bit-identical result sets: same dynamic types, same
// row order. The serial vectorized pipeline must reproduce the row path
// exactly, encodings included.
func encRowsEqual(t *testing.T, label string, want, got *ResultSet) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: row count %d vs %d", label, len(want.Rows), len(got.Rows))
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			if want.Rows[r][c] != got.Rows[r][c] {
				t.Fatalf("%s row %d col %d: %v (%T) vs %v (%T)", label, r, c,
					want.Rows[r][c], want.Rows[r][c], got.Rows[r][c], got.Rows[r][c])
			}
		}
	}
}

// twinEngines loads the same rows into a vectorized and a row-path engine.
func twinEngines(t *testing.T, cols []Column, rows [][]Value) (vec, row *Engine) {
	t.Helper()
	vec, row = NewSeeded(7), NewSeeded(7)
	for _, e := range []*Engine{vec, row} {
		if err := e.CreateTable("t", cols); err != nil {
			t.Fatal(err)
		}
		if err := e.InsertRows("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	row.SetVectorized(false)
	return vec, row
}

func TestSealPicksEncodings(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("t", []Column{
		{Name: "s", Type: TString}, // 3 distinct, alternating -> dict
		{Name: "r", Type: TInt},    // constant 64-runs -> RLE
		{Name: "d", Type: TInt},    // range 200 -> delta, width 8
		{Name: "f", Type: TFloat},  // high-entropy floats -> raw
	}); err != nil {
		t.Fatal(err)
	}
	vals := []string{"low", "mid", "top"}
	total := 2 * chunkRows
	rows := make([][]Value, total)
	for i := range rows {
		rows[i] = []Value{vals[i%3], int64(i / 64), int64(i % 200), float64(i) + 0.25}
	}
	if err := e.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	ch := sealedChunk(t, tbl, 0)
	if got := ch.cols[0].enc; got != encDict {
		t.Fatalf("s: enc %d, want dict", got)
	}
	if len(ch.cols[0].dict) != 3 || ch.cols[0].strs != nil {
		t.Fatalf("s: dict %v strs %v", ch.cols[0].dict, ch.cols[0].strs)
	}
	// Dictionary ends are the string zone map, same values Compare derives.
	if ch.cols[0].min != "low" || ch.cols[0].max != "top" {
		t.Fatalf("s zones: %v..%v", ch.cols[0].min, ch.cols[0].max)
	}
	if got := ch.cols[1].enc; got != encRLE {
		t.Fatalf("r: enc %d, want RLE", got)
	}
	if runs := len(ch.cols[1].runEnds); runs != chunkRows/64 {
		t.Fatalf("r: %d runs", runs)
	}
	if got := ch.cols[2].enc; got != encDelta {
		t.Fatalf("d: enc %d, want delta", got)
	}
	if ch.cols[2].width > 8 || ch.cols[2].ints != nil {
		t.Fatalf("d: width %d ints %v", ch.cols[2].width, ch.cols[2].ints)
	}
	if got := ch.cols[3].enc; got != encNone {
		t.Fatalf("f: enc %d, want raw", got)
	}
	// Read-through must reproduce the original rows bit for bit.
	got := ch.rows()
	for i := 0; i < chunkRows; i++ {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

func TestDictHighCardinalityFallback(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("t", []Column{{Name: "s", Type: TString}}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, chunkRows)
	for i := range rows {
		rows[i] = []Value{fmt.Sprintf("u%04d", i)} // every value distinct
	}
	if err := e.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Lookup("t")
	cv := &sealedChunk(t, tbl, 0).cols[0]
	if cv.enc != encNone || cv.strs == nil || cv.dict != nil {
		t.Fatalf("high-cardinality strings should stay raw: enc %d", cv.enc)
	}
}

func TestBoxedColumnsNeverEncode(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("t", []Column{
		{Name: "nn", Type: TAny}, // all NULL
		{Name: "mx", Type: TAny}, // mixed int/string
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, chunkRows)
	for i := range rows {
		var mv Value = int64(i)
		if i%2 == 1 {
			mv = fmt.Sprintf("m%d", i)
		}
		rows[i] = []Value{nil, mv}
	}
	if err := e.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Lookup("t")
	for j, cv := range sealedChunk(t, tbl, 0).cols {
		if cv.kind != TAny || cv.enc != encNone {
			t.Fatalf("col %d: kind %v enc %d, want boxed raw", j, cv.kind, cv.enc)
		}
	}
	rs, err := e.Query("select count(*), count(nn), count(mx) from t")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].(int64) != chunkRows || rs.Rows[0][1].(int64) != 0 || rs.Rows[0][2].(int64) != chunkRows {
		t.Fatalf("boxed counts: %v", rs.Rows[0])
	}
}

// Selection vectors that keep every other lane cut across each 32-row run:
// the run-pointer merge walks in the RLE kernels must resolve each selected
// lane to its run, not its lane index.
func TestRLERunsAcrossSelectionBoundaries(t *testing.T) {
	total := 3*chunkRows + 50
	rows := make([][]Value, total)
	for i := range rows {
		y := 0.25
		if i%2 == 1 {
			y = 0.75
		}
		rows[i] = []Value{int64(i / 32), y}
	}
	vec, row := twinEngines(t, []Column{
		{Name: "r", Type: TInt}, {Name: "y", Type: TFloat},
	}, rows)
	if cv := mustSealed(t, vec, "t").cols[0]; cv.enc != encRLE {
		t.Fatalf("r: enc %d, want RLE", cv.enc)
	}
	for _, q := range []string{
		"select count(*), sum(r), min(r), max(r) from t where t.y < 0.5",
		"select r, count(*), sum(y) from t where t.y < 0.5 group by r order by r",
		"select r, y from t where t.y < 0.5 and t.r >= 5",
		"select count(*) from t where t.r = 3 and t.y > 0.5",
	} {
		rsV, err := vec.Query(q)
		if err != nil {
			t.Fatalf("vec %s: %v", q, err)
		}
		rsR, err := row.Query(q)
		if err != nil {
			t.Fatalf("row %s: %v", q, err)
		}
		encRowsEqual(t, q, rsR, rsV)
	}
}

func mustSealed(t *testing.T, e *Engine, name string) *chunk {
	t.Helper()
	tbl, err := e.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.sealed) == 0 {
		t.Fatalf("%s: no sealed chunks", name)
	}
	return sealedChunk(t, tbl, 0)
}

func TestDeltaNegativesAndNulls(t *testing.T) {
	total := 2 * chunkRows
	rows := make([][]Value, total)
	for i := range rows {
		if i%7 == 3 {
			rows[i] = []Value{nil}
			continue
		}
		rows[i] = []Value{int64(i%201) - 100} // range [-100, 100]
	}
	vec, row := twinEngines(t, []Column{{Name: "x", Type: TInt}}, rows)
	cv := &mustSealed(t, vec, "t").cols[0]
	if cv.enc != encDelta {
		t.Fatalf("x: enc %d, want delta", cv.enc)
	}
	if cv.min != int64(-100) {
		t.Fatalf("x min: %v", cv.min)
	}
	got := mustSealed(t, vec, "t").rows()
	for i := 0; i < chunkRows; i++ {
		if got[i][0] != rows[i][0] {
			t.Fatalf("row %d: %v vs %v", i, got[i][0], rows[i][0])
		}
	}
	for _, q := range []string{
		"select count(*), count(x), sum(x), min(x), max(x) from t",
		"select count(*), sum(x) from t where t.x >= 0",
		"select count(*) from t where t.x < -50",
	} {
		rsV, err := vec.Query(q)
		if err != nil {
			t.Fatalf("vec %s: %v", q, err)
		}
		rsR, err := row.Query(q)
		if err != nil {
			t.Fatalf("row %s: %v", q, err)
		}
		encRowsEqual(t, q, rsR, rsV)
	}
}

// Dictionary comparison/IN kernels against the row path, including literals
// that miss the dictionary and literals outside the zone range.
func TestDictKernelsMatchRowPath(t *testing.T) {
	vals := []string{"apple", "cherry", "mango", "pear"}
	total := 2*chunkRows + 30
	rows := make([][]Value, total)
	for i := range rows {
		if i%11 == 5 {
			rows[i] = []Value{nil, int64(i)}
			continue
		}
		rows[i] = []Value{vals[i%4], int64(i)}
	}
	vec, row := twinEngines(t, []Column{
		{Name: "s", Type: TString}, {Name: "k", Type: TInt},
	}, rows)
	if cv := mustSealed(t, vec, "t").cols[0]; cv.enc != encDict {
		t.Fatalf("s: enc %d, want dict", cv.enc)
	}
	for _, q := range []string{
		"select count(*) from t where t.s = 'cherry'",
		"select count(*) from t where t.s = 'banana'", // in range, not in dict
		"select count(*) from t where t.s <> 'mango'",
		"select count(*) from t where t.s < 'mango'",
		"select count(*) from t where t.s >= 'cherry'",
		"select count(*), sum(k) from t where t.s in ('apple', 'pear', 'banana')",
		"select count(*) from t where t.s not in ('apple', 'pear')",
		"select s, count(*) from t group by s order by s",
		"select s, k from t where t.s = 'pear' and t.k < 100",
	} {
		rsV, err := vec.Query(q)
		if err != nil {
			t.Fatalf("vec %s: %v", q, err)
		}
		rsR, err := row.Query(q)
		if err != nil {
			t.Fatalf("row %s: %v", q, err)
		}
		encRowsEqual(t, q, rsR, rsV)
	}
}

// String zone maps come straight from the sorted dictionary ends, so a
// clustered string column prunes chunks exactly like a numeric one, and an
// equality literal above every dictionary skips all sealed chunks.
func TestStringZonePruningFromDict(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("z", []Column{{Name: "s", Type: TString}}); err != nil {
		t.Fatal(err)
	}
	total := 3*chunkRows + 40
	rows := make([][]Value, total)
	for i := range rows {
		// Chunk c cycles 4 values with prefix 'a'+c: clustered and low-card.
		rows[i] = []Value{fmt.Sprintf("%c%d", 'a'+i/chunkRows, i%4)}
	}
	if err := e.InsertRows("z", rows); err != nil {
		t.Fatal(err)
	}
	rs, err := e.Query("select count(*) from z where z.s <= 'a9'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].(int64) != chunkRows {
		t.Fatalf("count: %v", rs.Rows[0][0])
	}
	// Chunk 0 ['a0','a3'] survives; chunks 1,2 have min 'b0'/'c0' > 'a9';
	// the open tail is always scanned.
	if want := int64(chunkRows + 40); rs.RowsScanned != want {
		t.Fatalf("scanned %d rows, want %d", rs.RowsScanned, want)
	}
	rs2, err := e.Query("select count(*) from z where z.s = 'zzz'")
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Rows[0][0].(int64) != 0 || rs2.RowsScanned != 40 {
		t.Fatalf("miss above all zones: count %v scanned %d", rs2.Rows[0][0], rs2.RowsScanned)
	}
}

// A predicate the row path answers by OR short-circuit but whose vectorized
// form errors lane-wise (NOT over a string) must fall back to the row view
// per chunk — encoded chunks included — and produce identical rows.
func TestKernelErrorFallbackOnEncodedChunk(t *testing.T) {
	flags := []string{"A", "B"}
	total := chunkRows + 20
	rows := make([][]Value, total)
	for i := range rows {
		rows[i] = []Value{flags[i%2], 0.25, fmt.Sprintf("d%d", i%3)}
	}
	vec, row := twinEngines(t, []Column{
		{Name: "flag", Type: TString}, {Name: "y", Type: TFloat}, {Name: "d", Type: TString},
	}, rows)
	if cv := mustSealed(t, vec, "t").cols[0]; cv.enc != encDict {
		t.Fatalf("flag: enc %d, want dict", cv.enc)
	}
	q := "select flag, d from t where flag <> 'N' and (y < 0.5 or not d)"
	rsR, err := row.Query(q)
	if err != nil {
		t.Fatalf("row path: %v", err)
	}
	if len(rsR.Rows) != total {
		t.Fatalf("row path kept %d rows, want %d", len(rsR.Rows), total)
	}
	rsV, err := vec.Query(q)
	if err != nil {
		t.Fatalf("vectorized (should fall back, not fail): %v", err)
	}
	encRowsEqual(t, q, rsR, rsV)
}

// Eight readers issue dictionary-kernel queries while a writer seals dict
// chunks underneath them. Run under -race this checks the publish ordering:
// a reader sees a chunk only after it is fully encoded.
func TestConcurrentReadersDuringDictSeal(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("c", []Column{
		{Name: "s", Type: TString}, {Name: "v", Type: TInt},
	}); err != nil {
		t.Fatal(err)
	}
	vals := []string{"aa", "bb", "cc"}
	total := 4 * chunkRows
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rs, err := e.Query("select count(*), sum(v) from c where c.s = 'bb'")
				if err != nil {
					t.Error(err)
					return
				}
				if n := rs.Rows[0][0].(int64); n > int64(total) {
					t.Errorf("reader saw %d matching rows", n)
					return
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		if err := e.InsertRows("c", [][]Value{{vals[i%3], int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	rs, err := e.Query("select count(*) from c where c.s = 'bb'")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].(int64); got != int64(total/3) {
		t.Fatalf("final count: %d, want %d", got, total/3)
	}
}

// Seal-time encoding state (dictionaries, code vectors) is charged to the
// inserting query's gauge: a tiny budget aborts the load with the typed
// budget error, and an aborted CTAS registers nothing.
func TestSealChargesMemoryBudget(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("t", []Column{{Name: "s", Type: TString}}); err != nil {
		t.Fatal(err)
	}
	vals := []string{"xx", "yy", "zz"}
	rows := make([][]Value, 10*chunkRows)
	for i := range rows {
		rows[i] = []Value{vals[i%3]}
	}
	ctx := WithMemoryBudget(context.Background(), 1<<10)
	qc := e.newQueryCtx(ctx, "")
	err := e.insertRowsCtx(qc, "t", rows)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("seal under 1KiB budget: want ErrMemoryBudget, got %v", err)
	}
	// Unbudgeted loads are untouched.
	e2 := NewSeeded(1)
	if err := e2.CreateTable("t", []Column{{Name: "s", Type: TString}}); err != nil {
		t.Fatal(err)
	}
	if err := e2.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	// A CTAS aborted by the budget must not register the target table.
	ctx = WithMemoryBudget(context.Background(), 8<<10)
	if _, err := e2.ExecContext(ctx, "create table c as select * from t"); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("budgeted CTAS: want ErrMemoryBudget, got %v", err)
	}
	if _, err := e2.Lookup("c"); err == nil {
		t.Fatal("aborted CTAS left table c registered")
	}
}

// ENGINE_FORCE_ENCODINGS encodes every sealed column regardless of
// thresholds; results must not move a bit.
func TestForcedEncodingsParity(t *testing.T) {
	t.Setenv(forceEncodingsEnv, "1")
	total := 2*chunkRows + 60
	rows := make([][]Value, total)
	for i := range rows {
		rows[i] = []Value{
			fmt.Sprintf("u%04d", i), // high-card strings: forced dict
			int64(i * 37),           // wide ints: forced delta
			float64(i) * 1.5,        // floats: forced RLE
			i%2 == 0,                // bools: forced RLE
		}
	}
	vec, row := twinEngines(t, []Column{
		{Name: "s", Type: TString}, {Name: "k", Type: TInt},
		{Name: "f", Type: TFloat}, {Name: "b", Type: TBool},
	}, rows)
	ch := mustSealed(t, vec, "t")
	if ch.cols[0].enc != encDict || ch.cols[1].enc != encDelta ||
		ch.cols[2].enc != encRLE || ch.cols[3].enc != encRLE {
		t.Fatalf("forced encodings: %d %d %d %d",
			ch.cols[0].enc, ch.cols[1].enc, ch.cols[2].enc, ch.cols[3].enc)
	}
	for _, q := range []string{
		"select count(*), sum(k), sum(f) from t",
		"select b, count(*), min(s), max(f) from t group by b order by b",
		"select s, k from t where t.s >= 'u0500' and t.b",
		"select count(*) from t where t.f < 100.0 or t.k > 15000",
	} {
		rsV, err := vec.Query(q)
		if err != nil {
			t.Fatalf("vec %s: %v", q, err)
		}
		rsR, err := row.Query(q)
		if err != nil {
			t.Fatalf("row %s: %v", q, err)
		}
		encRowsEqual(t, q, rsR, rsV)
	}
}
