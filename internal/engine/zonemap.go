package engine

import (
	"strings"

	"verdictdb/internal/sqlparser"
)

// Zone maps: per-(chunk, column) min/max summaries enabling scan-range
// pruning — the engine-side analogue of the partition pruning columnar
// warehouses apply to clustered tables. Scrambles are physically clustered
// by their _vdb_block column at build time, so the progressive executor's
// `_vdb_block <= K` prefix predicates skip the chunks holding later blocks
// instead of scanning and filtering them.
//
// Summaries are computed eagerly when a chunk is sealed (buildChunk in
// columnar.go) — the append-only storage makes a sealed chunk immutable, so
// there is nothing to invalidate and no lazy build to lock. Tail rows
// beyond the last sealed chunk are always scanned (never pruned), which
// keeps a concurrent append safe.

// rangePred is one scan-prunable WHERE conjunct: a qualified column compared
// to a literal.
type rangePred struct {
	qual string // lower-case table qualifier (only qualified refs push down)
	col  string
	op   string // <=, <, >=, >, =
	lit  Value
}

// collectRangePreds extracts pushdown candidates from the top-level AND
// conjuncts of a WHERE clause. Only qualified column-vs-literal comparisons
// qualify: an unqualified name could bind to either join side, and pruning
// the wrong table would change results. The conjunct stays in WHERE — the
// scan only skips chunks that provably cannot satisfy it, so join semantics
// (including outer joins, whose null-extended rows fail the comparison
// either way) are preserved.
func collectRangePreds(where sqlparser.Expr) []rangePred {
	var out []rangePred
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		be, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case "AND":
			walk(be.L)
			walk(be.R)
		case "<=", "<", ">=", ">", "=":
			if cr, ok := be.L.(*sqlparser.ColumnRef); ok && cr.Table != "" {
				if lit, ok2 := be.R.(*sqlparser.Literal); ok2 && lit.Val != nil {
					out = append(out, rangePred{
						qual: strings.ToLower(cr.Table), col: cr.Name,
						op: be.Op, lit: Normalize(lit.Val),
					})
				}
				return
			}
			if cr, ok := be.R.(*sqlparser.ColumnRef); ok && cr.Table != "" {
				if lit, ok2 := be.L.(*sqlparser.Literal); ok2 && lit.Val != nil {
					out = append(out, rangePred{
						qual: strings.ToLower(cr.Table), col: cr.Name,
						op: flipCmp(be.Op), lit: Normalize(lit.Val),
					})
				}
			}
		}
	}
	walk(where)
	return out
}

func flipCmp(op string) string {
	switch op {
	case "<=":
		return ">="
	case "<":
		return ">"
	case ">=":
		return "<="
	case ">":
		return "<"
	}
	return op
}

// comparableKinds reports whether Compare is meaningful for the pair —
// both numeric, or both strings. Mixed kinds never prune.
func comparableKinds(a, b Value) bool {
	na := isNumeric(a)
	nb := isNumeric(b)
	if na || nb {
		return na && nb
	}
	_, sa := a.(string)
	_, sb := b.(string)
	return sa && sb
}

func isNumeric(v Value) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

// chunkMaySatisfy reports whether some row of a chunk-column with the given
// zone summary could satisfy `col op lit`. All-NULL columns (nil min)
// satisfy nothing.
func chunkMaySatisfy(min, max Value, op string, lit Value) bool {
	if min == nil {
		return false
	}
	if !comparableKinds(min, lit) || !comparableKinds(max, lit) {
		return true // unprunable, keep
	}
	switch op {
	case "<=":
		return Compare(min, lit) <= 0
	case "<":
		return Compare(min, lit) < 0
	case ">=":
		return Compare(max, lit) >= 0
	case ">":
		return Compare(max, lit) > 0
	case "=":
		return Compare(min, lit) <= 0 && Compare(max, lit) >= 0
	}
	return true
}

// pruneChunks drops whole sealed chunks that cannot satisfy the table's
// pushdown predicates, preserving chunk order. The tail is always kept.
// Returns the source untouched when nothing prunes (the common case), so
// unpruned scans stay allocation-free.
func pruneChunks(t *Table, src *colSource, preds []rangePred) *colSource {
	if len(src.sealed) == 0 {
		return src
	}
	var keep []bool
	for _, p := range preds {
		col := t.ColIndex(p.col)
		if col < 0 { // absent or ambiguous: never prune on it
			continue
		}
		//verdict:nopoll zone-map metadata only: O(1) min/max check per chunk, no row work
		for i, sl := range src.sealed {
			if keep != nil && !keep[i] {
				continue
			}
			min, max := sl.slotZone(col)
			if !chunkMaySatisfy(min, max, p.op, p.lit) {
				if keep == nil {
					keep = make([]bool, len(src.sealed))
					for j := range keep {
						keep[j] = true
					}
				}
				keep[i] = false
			}
		}
	}
	if keep == nil {
		return src
	}
	kept := make([]chunkSlot, 0, len(src.sealed))
	n := len(src.tail)
	for i, sl := range src.sealed {
		if keep[i] {
			kept = append(kept, sl)
			n += sl.slotRows()
		}
	}
	return &colSource{sealed: kept, tail: src.tail, nrows: n}
}
