package engine

import (
	"strings"
	"sync"

	"verdictdb/internal/sqlparser"
)

// Zone maps: per-(table, column) chunk min/max summaries enabling scan-range
// pruning — the engine-side analogue of the partition pruning columnar
// warehouses apply to clustered tables. Scrambles are physically clustered
// by their _vdb_block column at build time, so the progressive executor's
// `_vdb_block <= K` prefix predicates skip the chunks holding later blocks
// instead of scanning and filtering them.
//
// Tables are append-only and rows are never mutated in place, so a chunk
// summary computed once stays valid forever; later scans only extend the
// map with newly completed chunks. Rows beyond the last complete chunk are
// always scanned (never pruned), which keeps a concurrent append safe.

// zoneChunkRows is the pruning granularity.
const zoneChunkRows = 256

// zoneChunk summarizes rows [i*zoneChunkRows, (i+1)*zoneChunkRows) of a
// column: min/max over non-NULL values, nil when every value is NULL.
type zoneChunk struct {
	min, max Value
}

type zoneMap struct {
	chunks []zoneChunk
}

// zoneState is the lazily allocated per-table zone container.
type zoneState struct {
	mu    sync.Mutex
	byCol map[int]*zoneMap
}

// zoneFor returns the column's chunk summaries covering the complete chunks
// of rows, building missing chunks on first use.
func (t *Table) zoneFor(col int, rows [][]Value) []zoneChunk {
	full := len(rows) / zoneChunkRows
	if full == 0 {
		return nil
	}
	t.zone.mu.Lock()
	defer t.zone.mu.Unlock()
	if t.zone.byCol == nil {
		t.zone.byCol = map[int]*zoneMap{}
	}
	z := t.zone.byCol[col]
	if z == nil {
		z = &zoneMap{}
		t.zone.byCol[col] = z
	}
	for len(z.chunks) < full {
		start := len(z.chunks) * zoneChunkRows
		var mn, mx Value
		for _, r := range rows[start : start+zoneChunkRows] {
			v := r[col]
			if v == nil {
				continue
			}
			if mn == nil || Compare(v, mn) < 0 {
				mn = v
			}
			if mx == nil || Compare(v, mx) > 0 {
				mx = v
			}
		}
		z.chunks = append(z.chunks, zoneChunk{min: mn, max: mx})
	}
	return z.chunks[:full]
}

// rangePred is one scan-prunable WHERE conjunct: a qualified column compared
// to a literal.
type rangePred struct {
	qual string // lower-case table qualifier (only qualified refs push down)
	col  string
	op   string // <=, <, >=, >, =
	lit  Value
}

// collectRangePreds extracts pushdown candidates from the top-level AND
// conjuncts of a WHERE clause. Only qualified column-vs-literal comparisons
// qualify: an unqualified name could bind to either join side, and pruning
// the wrong table would change results. The conjunct stays in WHERE — the
// scan only skips chunks that provably cannot satisfy it, so join semantics
// (including outer joins, whose null-extended rows fail the comparison
// either way) are preserved.
func collectRangePreds(where sqlparser.Expr) []rangePred {
	var out []rangePred
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		be, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case "AND":
			walk(be.L)
			walk(be.R)
		case "<=", "<", ">=", ">", "=":
			if cr, ok := be.L.(*sqlparser.ColumnRef); ok && cr.Table != "" {
				if lit, ok2 := be.R.(*sqlparser.Literal); ok2 && lit.Val != nil {
					out = append(out, rangePred{
						qual: strings.ToLower(cr.Table), col: cr.Name,
						op: be.Op, lit: Normalize(lit.Val),
					})
				}
				return
			}
			if cr, ok := be.R.(*sqlparser.ColumnRef); ok && cr.Table != "" {
				if lit, ok2 := be.L.(*sqlparser.Literal); ok2 && lit.Val != nil {
					out = append(out, rangePred{
						qual: strings.ToLower(cr.Table), col: cr.Name,
						op: flipCmp(be.Op), lit: Normalize(lit.Val),
					})
				}
			}
		}
	}
	walk(where)
	return out
}

func flipCmp(op string) string {
	switch op {
	case "<=":
		return ">="
	case "<":
		return ">"
	case ">=":
		return "<="
	case ">":
		return "<"
	}
	return op
}

// comparableKinds reports whether Compare is meaningful for the pair —
// both numeric, or both strings. Mixed kinds never prune.
func comparableKinds(a, b Value) bool {
	na := isNumeric(a)
	nb := isNumeric(b)
	if na || nb {
		return na && nb
	}
	_, sa := a.(string)
	_, sb := b.(string)
	return sa && sb
}

func isNumeric(v Value) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

// chunkMaySatisfy reports whether some row of the chunk could satisfy
// `col op lit`. All-NULL chunks (nil min) satisfy nothing.
func chunkMaySatisfy(c zoneChunk, op string, lit Value) bool {
	if c.min == nil {
		return false
	}
	if !comparableKinds(c.min, lit) || !comparableKinds(c.max, lit) {
		return true // unprunable, keep
	}
	switch op {
	case "<=":
		return Compare(c.min, lit) <= 0
	case "<":
		return Compare(c.min, lit) < 0
	case ">=":
		return Compare(c.max, lit) >= 0
	case ">":
		return Compare(c.max, lit) > 0
	case "=":
		return Compare(c.min, lit) <= 0 && Compare(c.max, lit) >= 0
	}
	return true
}

// pruneScan drops whole chunks that cannot satisfy the table's pushdown
// predicates, preserving row order. The tail beyond the last complete chunk
// is always kept. Returns the original slice untouched when nothing prunes
// (the common case), so unpruned scans stay allocation-free.
func pruneScan(t *Table, rows [][]Value, preds []rangePred) [][]Value {
	var chunks []zoneChunk
	var keep []bool
	for _, p := range preds {
		col := t.ColIndex(p.col)
		if col < 0 {
			continue
		}
		if chunks == nil {
			chunks = t.zoneFor(col, rows)
			if len(chunks) == 0 {
				return rows
			}
			keep = make([]bool, len(chunks))
			for i := range keep {
				keep[i] = true
			}
		} else {
			// Chunk summaries are per column; re-fetch for this predicate.
			chunks = t.zoneFor(col, rows)
		}
		for i, c := range chunks {
			if keep[i] && !chunkMaySatisfy(c, p.op, p.lit) {
				keep[i] = false
			}
		}
	}
	if keep == nil {
		return rows
	}
	pruned := false
	for _, k := range keep {
		if !k {
			pruned = true
			break
		}
	}
	if !pruned {
		return rows
	}
	out := make([][]Value, 0, len(rows))
	for i, k := range keep {
		if k {
			out = append(out, rows[i*zoneChunkRows:(i+1)*zoneChunkRows]...)
		}
	}
	return append(out, rows[len(keep)*zoneChunkRows:]...)
}
