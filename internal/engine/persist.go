package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"verdictdb/internal/storage"
)

// Persistent segment storage. An engine optionally owns a data directory:
// sealed chunks are flushed into immutable segment files (storage package
// format), the open tail is mirrored into a single-chunk tail segment, and
// a versioned manifest commits each flush atomically. Reads go back through
// chunkSlot (chunkslot.go): flushed chunks become segSlots served from an
// LRU cache, so a table's working set — not its full size — bounds memory.
//
// Lock ordering: dataDir.mu strictly before Engine.mu. The flusher holds
// dd.mu across a whole cycle (snapshot under e.mu.RLock, file writes with
// no engine lock, slot swap under e.mu.Lock); appendRow holds e.mu and
// never touches dd. DropTable stays e.mu-only — the next flush reconciles
// the manifest, so a drop is durable one flush later.

// flushInterval is the background flusher's cycle period.
const flushInterval = 2 * time.Second

// compactMinSegments triggers compaction: a table whose sealed chunks are
// spread over at least this many segment files gets them rewritten into one.
const compactMinSegments = 8

// spillEnv forces eager spilling: every bulk insert flushes sealed chunks
// to a lazily created temporary data directory and drops them from memory,
// so the parity suites exercise the cold segment-read path end to end.
// Scoped like ENGINE_FORCE_ENCODINGS — a CI leg runs the workload suites
// under it.
const spillEnv = "ENGINE_SPILL"

func spillForced() bool { return os.Getenv(spillEnv) != "" }

// dataDir is the engine's attached storage directory.
type dataDir struct {
	dir   string
	cache *chunkCache
	temp  bool // ENGINE_SPILL scratch dir: skip manifest durability, remove at Close

	// mu serializes flush, compaction, and close against each other and
	// protects the manifest and segment registry. Always acquired before
	// (never under) Engine.mu.
	mu      sync.Mutex
	man     *storage.Manifest           //verdict:guardedby mu
	segs    map[string]*storage.Segment //verdict:guardedby mu — live data segments by base name
	retired []*storage.Segment          //verdict:guardedby mu — unlinked but possibly still referenced by query snapshots

	// ctx cancels in-flight flush/compaction work at Close; stop/done
	// bracket the background flusher goroutine (nil when not started).
	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}

	flushErr error //verdict:guardedby mu — last background flush failure
}

// RecoveryReport summarizes what AttachDataDir found on disk.
type RecoveryReport struct {
	Tables      int      // tables recovered from the manifest
	Segments    int      // data segments opened and verified
	Rows        int      // total rows recovered (sealed + tail)
	Quarantined []string // segment base names set aside as corrupt
	Orphans     []string // unreferenced segment files removed
}

// AttachDataDir opens (or creates) a data directory, replays its manifest
// into the engine, verifies every referenced segment's checksums —
// quarantining torn or corrupt ones rather than failing the open — and
// starts the background flusher. Recovered tables must not collide with
// tables already in the engine.
func (e *Engine) AttachDataDir(dir string) (*RecoveryReport, error) {
	dd, rep, err := e.openDataDir(dir, false)
	if err != nil {
		return nil, err
	}
	if !e.dd.CompareAndSwap(nil, dd) {
		dd.closeSegments()
		return nil, fmt.Errorf("engine: data directory already attached")
	}
	dd.startFlusher(e)
	return rep, nil
}

// openDataDir loads the manifest, opens and verifies segments, registers
// recovered tables, and returns the ready-to-attach dataDir.
func (e *Engine) openDataDir(dir string, temp bool) (*dataDir, *RecoveryReport, error) {
	man, err := storage.LoadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background()) //verdict:ctx-shim data-directory lifetime root: flush/compaction outlive any one query; Close cancels it
	dd := &dataDir{
		dir:    dir,
		cache:  newChunkCache(0),
		temp:   temp,
		man:    man,
		segs:   make(map[string]*storage.Segment),
		ctx:    ctx,
		cancel: cancel,
	}
	rep := &RecoveryReport{}
	recovered := make([]*Table, 0, len(man.Tables))
	for _, tm := range man.Tables {
		t, err := dd.recoverTable(tm, rep)
		if err != nil {
			cancel()
			dd.closeSegments()
			return nil, nil, err
		}
		recovered = append(recovered, t)
	}
	rep.Tables = len(recovered)
	// Recovery dropped quarantined refs from the in-memory manifest; commit
	// that so the next open does not re-verify known-bad files.
	if len(rep.Quarantined) > 0 && !temp {
		if err := storage.SaveManifest(dir, man); err != nil {
			cancel()
			dd.closeSegments()
			return nil, nil, err
		}
	}
	rep.Orphans = dd.sweepOrphans()
	if err := e.registerRecovered(recovered); err != nil {
		cancel()
		dd.closeSegments()
		return nil, nil, err
	}
	return dd, rep, nil
}

// recoverTable rebuilds one table from its manifest entry: open and verify
// each data segment (quarantining failures and dropping their refs), then
// decode the tail segment back into open rows.
func (dd *dataDir) recoverTable(tm *storage.TableManifest, rep *RecoveryReport) (*Table, error) {
	cols := make([]Column, len(tm.Columns))
	for i, cd := range tm.Columns {
		cols[i] = Column{Name: cd.Name, Type: ColType(cd.Type)}
	}
	t := &Table{Name: tm.Name, Cols: cols}
	t.initColIndex()

	kept := tm.Segments[:0]
	for _, ref := range tm.Segments {
		seg, err := dd.openVerified(filepath.Join(dd.dir, ref.File), len(cols))
		if err != nil {
			rep.Quarantined = append(rep.Quarantined, ref.File) //verdict:nocharge recovery report, bounded by segment files on disk
			continue
		}
		//verdict:nocharge open-time segment registry and table slots, bounded by files on disk, not query state
		dd.segs[ref.File] = seg //verdict:unguarded construction: dd is not shared until AttachDataDir publishes it
		for i := range seg.Meta.Chunks {
			t.sealed = append(t.sealed, &segSlot{seg: seg, idx: i, cache: dd.cache}) //verdict:nocharge recovered table slots, charged per load via the chunk cache
			t.nrows += seg.Meta.Chunks[i].NRows
		}
		kept = append(kept, ref)
		rep.Segments++
	}
	tm.Segments = kept

	if tm.Tail != nil {
		rows, err := dd.recoverTail(filepath.Join(dd.dir, tm.Tail.File), len(cols))
		if err != nil {
			rep.Quarantined = append(rep.Quarantined, tm.Tail.File) //verdict:nocharge recovery report, one entry per table
			tm.Tail = nil
		} else {
			t.tail = rows
			t.nrows += len(rows)
		}
	}
	t.persisted = len(t.sealed)
	t.flushedTailSeals = len(t.sealed)
	t.flushedTailLen = len(t.tail)
	rep.Rows += t.nrows
	return t, nil
}

// openVerified opens a segment and runs the full checksum pass plus shape
// checks; any failure quarantines the file (rename to .quarantined) and
// reports an error.
func (dd *dataDir) openVerified(path string, ncols int) (*storage.Segment, error) {
	seg, err := storage.OpenSegment(path)
	if err != nil {
		quarantinePath(path)
		return nil, err
	}
	if seg.Meta.NCols != ncols {
		seg.Quarantine()
		return nil, &storage.CorruptError{Path: path, Detail: fmt.Sprintf("segment has %d columns, table has %d", seg.Meta.NCols, ncols)}
	}
	if err := seg.VerifyChecksums(); err != nil {
		seg.Quarantine()
		return nil, err
	}
	return seg, nil
}

// quarantinePath renames a file that could not even be opened as a segment.
func quarantinePath(path string) {
	_ = os.Rename(path, path+".quarantined")
}

// recoverTail reads a tail segment (one unencoded chunk) back into boxed
// rows and closes it — tail segments are only ever read here.
func (dd *dataDir) recoverTail(path string, ncols int) ([][]Value, error) {
	seg, err := dd.openVerified(path, ncols)
	if err != nil {
		return nil, err
	}
	defer seg.Close()
	if len(seg.Meta.Chunks) != 1 {
		seg.Quarantine()
		return nil, &storage.CorruptError{Path: path, Detail: fmt.Sprintf("tail segment has %d chunks, want 1", len(seg.Meta.Chunks))}
	}
	sc, err := seg.ReadChunk(0)
	if err != nil {
		seg.Quarantine()
		return nil, err
	}
	ch := chunkFromStorage(sc)
	rows := make([][]Value, ch.n)
	for i := range rows {
		rows[i] = ch.materializeRow(i)
	}
	return rows, nil
}

// sweepOrphans removes .seg files the manifest does not reference —
// leftovers of flushes that crashed before their manifest commit.
// Quarantined files are kept for inspection.
func (dd *dataDir) sweepOrphans() []string {
	entries, err := os.ReadDir(dd.dir)
	if err != nil {
		return nil
	}
	live := dd.man.LiveFiles() //verdict:unguarded construction: sweep runs at open before dd is published
	var removed []string
	for _, en := range entries {
		name := en.Name()
		if !strings.HasSuffix(name, storage.SegmentExt) || live[name] {
			continue
		}
		if os.Remove(filepath.Join(dd.dir, name)) == nil {
			removed = append(removed, name)
		}
	}
	return removed
}

// registerRecovered installs recovered tables into the engine's catalog.
func (e *Engine) registerRecovered(tables []*Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range tables {
		key := strings.ToLower(t.Name)
		if _, ok := e.tables[key]; ok {
			return fmt.Errorf("engine: recovered table %q collides with existing table", t.Name)
		}
	}
	for _, t := range tables {
		e.tables[strings.ToLower(t.Name)] = t //verdict:nocharge catalog entries recovered once at open, not query state
	}
	return nil
}

// startFlusher launches the periodic flush/compaction goroutine. Spill
// scratch directories skip it — spilling there is synchronous.
func (dd *dataDir) startFlusher(e *Engine) {
	if dd.temp {
		return
	}
	dd.stop = make(chan struct{})
	dd.done = make(chan struct{})
	go func() {
		defer close(dd.done)
		tick := time.NewTicker(flushInterval)
		defer tick.Stop()
		for {
			select {
			case <-dd.stop:
				return
			case <-tick.C:
			}
			qc := &queryCtx{ctx: dd.ctx, query: "(background flush)"}
			err := dd.flushAndCompact(e, qc, true)
			dd.mu.Lock()
			dd.flushErr = err
			dd.mu.Unlock()
		}
	}()
}

// Flush forces a synchronous flush of all sealed-but-unflushed chunks and
// dirty tails, committing the manifest. No-op without a data directory.
func (e *Engine) Flush() error {
	dd := e.dd.Load()
	if dd == nil {
		return nil
	}
	return dd.flushAndCompact(e, nil, true)
}

// LastFlushError reports the most recent background flush failure (nil
// when the last cycle succeeded or no directory is attached).
func (e *Engine) LastFlushError() error {
	dd := e.dd.Load()
	if dd == nil {
		return nil
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	return dd.flushErr
}

func (dd *dataDir) flushAndCompact(e *Engine, qc *queryCtx, warmCache bool) error {
	dd.mu.Lock()
	defer dd.mu.Unlock()
	if err := dd.flushLocked(e, qc, warmCache); err != nil {
		return err
	}
	return dd.compactLocked(e, qc)
}

// flushWork is one table's flush snapshot, taken under e.mu.RLock.
type flushWork struct {
	t         *Table
	key       string
	cols      []Column
	slots     []chunkSlot
	persisted int
	tail      [][]Value
	tailDirty bool

	segFile   string // written data segment ("" when no new chunks)
	newChunks []*chunk
	tailFile  string // written tail segment ("" when tail empty or clean)
}

// flushLocked (dd.mu held) writes unflushed sealed chunks and dirty tails
// to segment files, commits the manifest, then swaps the flushed chunks'
// table slots to segment-backed ones. Crash ordering: segment files are
// fsynced before the manifest commit, and files orphaned by a crash in
// between are swept at next open.
//
//verdict:locked mu
func (dd *dataDir) flushLocked(e *Engine, qc *queryCtx, warmCache bool) error {
	work, dropped := dd.snapshotFlush(e)
	if len(work) == 0 && len(dropped) == 0 {
		return nil
	}

	// In-memory manifest edits are only durable after saveManifestLocked.
	// Any pre-commit failure must undo them, or a retried flush would write
	// the same chunks into a second segment and commit references to both,
	// duplicating rows at the next open. Files already written stay behind
	// as orphans; the next open sweeps them.
	var undo []func()
	rollback := func(err error) error {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		return err
	}

	var replacedTails []string
	for i := range work {
		w := &work[i]
		if err := qc.pollAbort(); err != nil {
			return rollback(err)
		}
		tm := dd.manifestTable(w.t.Name, w.cols)
		if len(w.slots) > w.persisted {
			w.newChunks = make([]*chunk, 0, len(w.slots)-w.persisted)
			scs := make([]*storage.Chunk, 0, len(w.slots)-w.persisted)
			rows := 0
			for _, sl := range w.slots[w.persisted:] {
				ch := sl.(*chunk) // invariant: slots past persisted are resident
				w.newChunks = append(w.newChunks, ch)
				scs = append(scs, chunkToStorage(ch))
				rows += ch.n
			}
			file := dd.nextSegFile(tm)
			if err := storage.WriteSegment(filepath.Join(dd.dir, file), len(w.cols), scs); err != nil {
				return rollback(err)
			}
			nsegs := len(tm.Segments)
			tm.Segments = append(tm.Segments, storage.SegmentRef{File: file, Chunks: len(scs), Rows: rows})
			undo = append(undo, func() { tm.Segments = tm.Segments[:nsegs] })
			w.segFile = file
		}
		if w.tailDirty {
			oldTail := tm.Tail
			undo = append(undo, func() { tm.Tail = oldTail })
			if tm.Tail != nil {
				replacedTails = append(replacedTails, tm.Tail.File)
				tm.Tail = nil
			}
			if len(w.tail) > 0 {
				tch := buildChunk(w.tail, len(w.cols), false, false) //verdict:nocharge flush-side staging, freed when the flush returns
				file := dd.nextSegFile(tm)
				if err := storage.WriteSegment(filepath.Join(dd.dir, file), len(w.cols), []*storage.Chunk{chunkToStorage(tch)}); err != nil {
					return rollback(err)
				}
				tm.Tail = &storage.SegmentRef{File: file, Chunks: 1, Rows: len(w.tail)}
				w.tailFile = file
			}
		}
	}
	for _, name := range dropped {
		dd.dropTableLocked(name)
	}
	if err := dd.saveManifestLocked(); err != nil {
		return rollback(err)
	}

	// Manifest committed: open the new data segments and swap table slots.
	for i := range work {
		w := &work[i]
		if w.segFile == "" {
			continue
		}
		seg, err := storage.OpenSegment(filepath.Join(dd.dir, w.segFile))
		if err != nil {
			return err
		}
		dd.segs[w.segFile] = seg
		dd.installSlots(e, w, seg, warmCache)
	}
	// Tail bookkeeping for tables whose only change was the tail.
	e.mu.Lock()
	for i := range work {
		w := &work[i]
		if w.tailDirty && e.tables[w.key] == w.t {
			w.t.flushedTailSeals = len(w.slots)
			w.t.flushedTailLen = len(w.tail)
		}
	}
	e.mu.Unlock()

	for _, f := range replacedTails {
		_ = os.Remove(filepath.Join(dd.dir, f))
	}
	return nil
}

// snapshotFlush collects, under e.mu.RLock, every table with unflushed
// state, plus manifest tables that no longer exist in the engine.
//
//verdict:locked mu
func (dd *dataDir) snapshotFlush(e *Engine) ([]flushWork, []string) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	keys := make([]string, 0, len(e.tables))
	for k := range e.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var work []flushWork
	for _, k := range keys {
		t := e.tables[k]
		tailDirty := len(t.sealed) != t.flushedTailSeals || len(t.tail) != t.flushedTailLen
		if dd.temp {
			// Spill scratch directories only exist to serve sealed chunks
			// from disk; they are never reopened, so the tail needs no
			// durability (a tail segment per insert would fsync constantly).
			tailDirty = false
		}
		if len(t.sealed) == t.persisted && !tailDirty {
			continue
		}
		work = append(work, flushWork{
			t: t, key: k, cols: t.Cols,
			slots: t.sealed, persisted: t.persisted,
			tail: t.tail, tailDirty: tailDirty,
		})
	}
	var dropped []string
	for _, tm := range dd.man.Tables {
		if _, ok := e.tables[strings.ToLower(tm.Name)]; !ok {
			dropped = append(dropped, tm.Name)
		}
	}
	return work, dropped
}

// installSlots swaps a table's freshly flushed chunks to segment-backed
// slots under e.mu.Lock, optionally pre-warming the cache with the chunks
// that are already in memory (spill mode skips the warm-up so reads go
// cold through the disk path).
func (dd *dataDir) installSlots(e *Engine, w *flushWork, seg *storage.Segment, warmCache bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tables[w.key] != w.t {
		return // dropped (or replaced) while flushing; reconciled next cycle
	}
	//verdict:nopoll O(#flushed chunks) pointer swaps under e.mu — no row work, must not abort half-swapped
	for i, ch := range w.newChunks {
		s := &segSlot{seg: seg, idx: i, cache: dd.cache}
		w.t.sealed[w.persisted+i] = s
		if warmCache {
			dd.cache.put(s, ch)
		}
	}
	w.t.persisted = w.persisted + len(w.newChunks)
}

// manifestTable returns (creating if needed) the table's manifest entry,
// refreshing its schema.
//
//verdict:locked mu
func (dd *dataDir) manifestTable(name string, cols []Column) *storage.TableManifest {
	tm := dd.man.Table(name)
	if tm == nil {
		tm = &storage.TableManifest{Name: name}
		dd.man.Tables = append(dd.man.Tables, tm) //verdict:nocharge manifest metadata, one entry per table
	}
	tm.Columns = tm.Columns[:0]
	for _, c := range cols {
		tm.Columns = append(tm.Columns, storage.ColumnDef{Name: c.Name, Type: uint8(c.Type)}) //verdict:nocharge manifest metadata, one entry per column
	}
	return tm
}

// nextSegFile allocates a fresh segment file name for the table, skipping
// any name already live in the manifest (distinct tables can sanitize to
// the same prefix).
//
//verdict:locked mu
func (dd *dataDir) nextSegFile(tm *storage.TableManifest) string {
	live := dd.man.LiveFiles()
	for {
		name := fmt.Sprintf("%s-%d%s", sanitizeFileName(tm.Name), tm.NextGen, storage.SegmentExt)
		tm.NextGen++
		if !live[name] {
			return name
		}
	}
}

// sanitizeFileName maps a table name onto a safe file-name prefix.
func sanitizeFileName(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// dropTableLocked removes a table's manifest entry and retires its files.
//
//verdict:locked mu
func (dd *dataDir) dropTableLocked(name string) {
	tm := dd.man.Table(name)
	if tm == nil {
		return
	}
	for _, ref := range tm.Segments {
		dd.retireFileLocked(ref.File)
	}
	if tm.Tail != nil {
		_ = os.Remove(filepath.Join(dd.dir, tm.Tail.File))
	}
	dd.man.DropTable(name)
}

// retireFileLocked unlinks a data segment but keeps its handle open on the
// retired list: query snapshots taken before the retirement may still hold
// segSlots into it, and an open descriptor keeps the unlinked inode
// readable until Close. Cache entries for retired slots age out via LRU.
//
//verdict:locked mu
func (dd *dataDir) retireFileLocked(file string) {
	if seg, ok := dd.segs[file]; ok {
		dd.retired = append(dd.retired, seg) //verdict:nocharge open-descriptor bookkeeping, bounded by retired segment files
		delete(dd.segs, file)
	}
	_ = os.Remove(filepath.Join(dd.dir, file))
}

// saveManifestLocked commits the manifest unless this is a spill scratch
// directory (never reopened, so durability is skipped for speed).
//
//verdict:locked mu
func (dd *dataDir) saveManifestLocked() error {
	if dd.temp {
		dd.man.Version++
		return nil
	}
	return storage.SaveManifest(dd.dir, dd.man)
}

// compactLocked (dd.mu held) rewrites any table whose sealed chunks sprawl
// across compactMinSegments or more files into a single segment, then
// retires the originals. Pure storage-level rewrite: chunk bytes round-trip
// through the storage codec unchanged.
//
//verdict:locked mu
func (dd *dataDir) compactLocked(e *Engine, qc *queryCtx) error {
	for ti := range dd.man.Tables {
		tm := dd.man.Tables[ti]
		if len(tm.Segments) < compactMinSegments {
			continue
		}
		if err := qc.pollAbort(); err != nil {
			return err
		}
		var scs []*storage.Chunk
		nchunks, nrows := 0, 0
		for _, ref := range tm.Segments {
			seg := dd.segs[ref.File]
			if seg == nil {
				return fmt.Errorf("engine: compacting %s: segment %s not open", tm.Name, ref.File)
			}
			for i := range seg.Meta.Chunks {
				if err := qc.pollAbort(); err != nil {
					return err
				}
				sc, err := seg.ReadChunk(i)
				if err != nil {
					return err
				}
				scs = append(scs, sc)
				nrows += seg.Meta.Chunks[i].NRows
			}
			nchunks += ref.Chunks
		}
		file := dd.nextSegFile(tm)
		if err := storage.WriteSegment(filepath.Join(dd.dir, file), len(tm.Columns), scs); err != nil {
			return err
		}
		old := tm.Segments
		tm.Segments = []storage.SegmentRef{{File: file, Chunks: nchunks, Rows: nrows}}
		if err := dd.saveManifestLocked(); err != nil {
			// Roll back the in-memory manifest; the written file becomes an
			// orphan swept at next open.
			tm.Segments = old
			return err
		}
		seg, err := storage.OpenSegment(filepath.Join(dd.dir, file))
		if err != nil {
			return err
		}
		dd.segs[file] = seg
		dd.swapCompacted(e, tm.Name, nchunks, seg)
		for _, ref := range old {
			dd.retireFileLocked(ref.File)
		}
	}
	return nil
}

// swapCompacted repoints a table's persisted slots at the compacted
// segment. The persisted prefix is exactly the chunks compaction read —
// flushes are serialized under dd.mu and appends only grow the resident
// suffix.
func (dd *dataDir) swapCompacted(e *Engine, name string, nchunks int, seg *storage.Segment) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok || t.persisted != nchunks {
		return
	}
	for i := 0; i < nchunks; i++ {
		if old, ok := t.sealed[i].(*segSlot); ok {
			dd.cache.drop(old)
		}
		t.sealed[i] = &segSlot{seg: seg, idx: i, cache: dd.cache}
	}
}

// maybeSpill eagerly flushes after a bulk insert when ENGINE_SPILL is set,
// lazily attaching a scratch data directory on first use. Flushed chunks
// are not pre-warmed into the cache, so subsequent scans take the cold
// disk path the knob exists to exercise.
func (e *Engine) maybeSpill() {
	if !spillForced() {
		return
	}
	dd := e.dd.Load()
	if dd == nil {
		dir, err := os.MkdirTemp("", "verdictdb-spill-")
		if err != nil {
			return
		}
		ndd, _, err := e.openDataDir(dir, true)
		if err != nil {
			_ = os.RemoveAll(dir)
			return
		}
		if !e.dd.CompareAndSwap(nil, ndd) {
			ndd.closeSegments()
			_ = os.RemoveAll(dir)
		}
		dd = e.dd.Load()
	}
	_ = dd.flushAndCompact(e, nil, false)
}

// SetChunkCacheBytes bounds the decoded-chunk cache (<= 0 restores the
// default). No-op without a data directory.
func (e *Engine) SetChunkCacheBytes(n int64) {
	if dd := e.dd.Load(); dd != nil {
		dd.cache.setCap(n)
	}
}

// ChunkCache reports cache counters (zero stats without a data directory).
func (e *Engine) ChunkCache() ChunkCacheStats {
	if dd := e.dd.Load(); dd != nil {
		return dd.cache.stats()
	}
	return ChunkCacheStats{}
}

// DropChunkCache empties the decoded-chunk cache — the cold-scan switch
// for benchmarks and tests.
func (e *Engine) DropChunkCache() {
	if dd := e.dd.Load(); dd != nil {
		dd.cache.dropAll()
	}
}

// DataDirAttached reports whether the engine has a storage directory.
func (e *Engine) DataDirAttached() bool { return e.dd.Load() != nil }

// Close detaches and shuts down the data directory: stop the flusher, run
// a final flush so everything appended since the last cycle is durable,
// and close every open segment. Engines without a data directory need no
// Close. Safe to call twice.
func (e *Engine) Close() error {
	dd := e.dd.Load()
	if dd == nil || !e.dd.CompareAndSwap(dd, nil) {
		return nil
	}
	if dd.stop != nil {
		close(dd.stop)
		<-dd.done
	}
	var err error
	if !dd.temp {
		err = dd.flushAndCompact(e, nil, true)
	}
	dd.cancel()
	dd.mu.Lock()
	dd.cache.dropAll()
	dd.mu.Unlock()
	dd.closeSegments()
	if dd.temp {
		_ = os.RemoveAll(dd.dir)
	}
	return err
}

// closeSegments closes every open segment handle, live and retired.
func (dd *dataDir) closeSegments() {
	dd.mu.Lock()
	defer dd.mu.Unlock()
	names := make([]string, 0, len(dd.segs))
	for name := range dd.segs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		_ = dd.segs[name].Close()
		delete(dd.segs, name)
	}
	for _, seg := range dd.retired {
		_ = seg.Close()
	}
	dd.retired = nil
}
