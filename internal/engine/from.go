package engine

import (
	"fmt"
	"strings"

	"verdictdb/internal/sqlparser"
)

// buildFrom materializes the FROM clause into a relation. preds carries the
// query's scan-prunable WHERE conjuncts (qualified column-vs-literal
// comparisons): table scans whose qualifier matches use zone maps to skip
// chunks that cannot satisfy them — partition pruning for block-clustered
// scrambles — while the conjunct itself stays in WHERE for exactness.
func buildFrom(qc *queryCtx, from sqlparser.TableExpr, outer *env, preds []rangePred) (*relation, error) {
	if from == nil {
		// FROM-less select: a single empty row.
		return newRelation(nil, nil, [][]Value{{}}), nil
	}
	switch t := from.(type) {
	case *sqlparser.TableRef:
		tbl, src, err := qc.eng.snapshot(t.Name)
		if err != nil {
			return nil, err
		}
		qual := t.Alias
		if qual == "" {
			qual = baseName(t.Name)
		}
		if len(preds) > 0 {
			var mine []rangePred
			lowQual := strings.ToLower(qual)
			for _, p := range preds {
				if p.qual == lowQual {
					mine = append(mine, p)
				}
			}
			if len(mine) > 0 {
				src = pruneChunks(tbl, src, mine)
			}
		}
		qc.scanned += int64(src.nrows)
		quals := make([]string, len(tbl.Cols))
		names := make([]string, len(tbl.Cols))
		for i, c := range tbl.Cols {
			quals[i] = qual
			names[i] = c.Name
		}
		return newColRelation(quals, names, src), nil
	case *sqlparser.DerivedTable:
		rs, err := execSelectWithOuter(qc, t.Select, nil)
		if err != nil {
			return nil, err
		}
		quals := make([]string, len(rs.Cols))
		for i := range quals {
			quals[i] = t.Alias
		}
		return newRelation(quals, rs.Cols, rs.Rows), nil
	case *sqlparser.JoinExpr:
		left, err := buildFrom(qc, t.Left, outer, preds)
		if err != nil {
			return nil, err
		}
		right, err := buildFrom(qc, t.Right, outer, preds)
		if err != nil {
			return nil, err
		}
		return joinRelations(qc, left, right, t, outer)
	}
	return nil, fmt.Errorf("engine: unsupported FROM element %T", from)
}

// baseName strips a schema qualifier: "verdict_meta.samples" -> "samples".
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// joinRelations implements hash-based equi-joins with residual predicates:
// vectorized over columnar chunks with late materialization when the join
// condition lowers to kernels (vecjoin.go), row-at-a-time otherwise, and a
// nested-loop join when no equi-join pair exists.
func joinRelations(qc *queryCtx, left, right *relation, je *sqlparser.JoinExpr, outer *env) (*relation, error) {
	combinedQuals := append(append([]string{}, left.qualifiers...), right.qualifiers...)
	combinedNames := append(append([]string{}, left.names...), right.names...)
	combined := newRelation(combinedQuals, combinedNames, nil)

	on := je.On
	// JOIN ... USING (c1, ...) is sugar for equality on the named columns.
	// Each column must resolve to exactly one column on each side; a silent
	// unqualified ref could bind to the wrong column (or make the equality
	// self-referential), so missing/ambiguous names are errors.
	if len(je.Using) > 0 {
		for _, c := range je.Using {
			lq, err := usingQualifier(left, c, "left")
			if err != nil {
				return nil, err
			}
			rq, err := usingQualifier(right, c, "right")
			if err != nil {
				return nil, err
			}
			eq := &sqlparser.BinaryExpr{
				Op: "=",
				L:  &sqlparser.ColumnRef{Table: lq, Name: c},
				R:  &sqlparser.ColumnRef{Table: rq, Name: c},
			}
			if on == nil {
				on = eq
			} else {
				on = &sqlparser.BinaryExpr{Op: "AND", L: on, R: eq}
			}
		}
	}

	leftKeys, rightKeys, residual := splitJoinCondition(left, right, on)

	// Vectorized hash join: equi-keys whose expressions (and residual)
	// lower to pure vector kernels run chunk-at-a-time with reference-based
	// output; everything else — impure ON, subqueries in ON, no equi-key —
	// keeps the row path below.
	if len(leftKeys) > 0 && !qc.eng.noVec.Load() {
		vj, err := buildVecJoin(qc, left, right, combined, je.Type, leftKeys, rightKeys, residual)
		if err != nil {
			return nil, err
		}
		if vj != nil {
			src, err := vj.run()
			if err != nil {
				return nil, err
			}
			combined.src = src
			return combined, nil
		}
	}

	// Row path: read both sides through the boxed row view.
	if _, err := qc.materialize(left); err != nil {
		return nil, err
	}
	if _, err := qc.materialize(right); err != nil {
		return nil, err
	}

	// Evaluation environments for key extraction.
	lEnv := &env{qc: qc, rel: left, outer: outer}
	rEnv := &env{qc: qc, rel: right, outer: outer}
	combEnv := &env{qc: qc, rel: combined, outer: outer}

	// The residual predicate is probed once per candidate pair: reuse one
	// combined-row buffer instead of allocating per probe, and evaluate a
	// compiled form when the expression supports it.
	var residualFn compiledExpr
	if residual != nil {
		if fn, _, ok := compileExpr(qc.eng, combined, residual); ok {
			residualFn = fn
		}
	}
	combinedBuf := make([]Value, left.width()+right.width())
	// matches is probed once per candidate pair in every row-path variant,
	// so the cancellation/budget tick here covers the O(left × right)
	// nested-loop inner loops — the place a runaway cross join must be
	// interruptible.
	matches := func(lrow, rrow []Value) (bool, error) {
		if err := qc.tick(); err != nil {
			return false, err
		}
		if residual == nil {
			return true, nil
		}
		copy(combinedBuf, lrow)
		copy(combinedBuf[left.width():], rrow)
		var v Value
		var err error
		if residualFn != nil {
			v, err = residualFn(combinedBuf)
		} else {
			combEnv.row = combinedBuf
			v, err = combEnv.eval(residual)
		}
		if err != nil {
			return false, err
		}
		b, ok := ToBool(v)
		return ok && b, nil
	}

	joinedRowBytes := (int64(left.width()+right.width()) + 2) * bytesPerValue
	appendJoined := func(out [][]Value, lrow, rrow []Value) [][]Value {
		qc.chargeMem(joinedRowBytes)
		row := make([]Value, 0, left.width()+right.width())
		if lrow == nil {
			lrow = make([]Value, left.width())
		}
		if rrow == nil {
			rrow = make([]Value, right.width())
		}
		row = append(row, lrow...)
		row = append(row, rrow...)
		return append(out, row)
	}

	var out [][]Value

	if len(leftKeys) == 0 {
		// Nested-loop join (cross join or non-equi condition). A
		// residual-free condition means every pair joins, so the output size
		// is known up front — for CROSS JOIN and INNER JOIN alike.
		if (je.Type == sqlparser.CrossJoin || je.Type == sqlparser.InnerJoin) && residual == nil {
			out = make([][]Value, 0, len(left.rows)*max(1, len(right.rows)))
		}
		// All four outer/inner flavors keep a deterministic order: matched
		// pairs in (left row, right row) order, LEFT/FULL null-extensions in
		// place, RIGHT/FULL unmatched right rows trailing in right order.
		switch je.Type {
		case sqlparser.InnerJoin, sqlparser.CrossJoin:
			for _, lrow := range left.rows {
				for _, rrow := range right.rows {
					ok, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						out = appendJoined(out, lrow, rrow)
					}
				}
			}
		case sqlparser.LeftJoin:
			for _, lrow := range left.rows {
				matched := false
				for _, rrow := range right.rows {
					ok, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						out = appendJoined(out, lrow, rrow)
					}
				}
				if !matched {
					out = appendJoined(out, lrow, nil)
				}
			}
		case sqlparser.RightJoin:
			matchedR := make([]bool, len(right.rows))
			for _, lrow := range left.rows {
				for ri, rrow := range right.rows {
					ok, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						matchedR[ri] = true
						out = appendJoined(out, lrow, rrow)
					}
				}
			}
			for ri, rrow := range right.rows {
				if !matchedR[ri] {
					out = appendJoined(out, nil, rrow)
				}
			}
		case sqlparser.FullJoin:
			matchedR := make([]bool, len(right.rows))
			for _, lrow := range left.rows {
				matched := false
				for ri, rrow := range right.rows {
					ok, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						matchedR[ri] = true
						out = appendJoined(out, lrow, rrow)
					}
				}
				if !matched {
					out = appendJoined(out, lrow, nil)
				}
			}
			for ri, rrow := range right.rows {
				if !matchedR[ri] {
					out = appendJoined(out, nil, rrow)
				}
			}
		}
		combined.rows = out
		return combined, nil
	}

	// Hash join: build on the right, probe from the left. Key expressions
	// are compiled once per join when possible, and composite keys are
	// rendered into a reusable byte buffer (the map only materializes a key
	// string when a new bucket is inserted). RIGHT/FULL joins track matched
	// flags per build-row position, so unmatched right rows — including
	// NULL-key rows, which never enter a bucket but must still null-extend —
	// emit in build order after the probe.
	lKeyFns := compileKeyFns(qc.eng, left, leftKeys)
	rKeyFns := compileKeyFns(qc.eng, right, rightKeys)
	type bucket struct {
		rows [][]Value
		idx  []int // build-row positions, for the matched flags
	}
	build := make(map[string]*bucket, len(right.rows))
	var matched []bool
	if je.Type == sqlparser.RightJoin || je.Type == sqlparser.FullJoin {
		matched = make([]bool, len(right.rows))
	}
	var kbuf []byte
	for ri, rrow := range right.rows {
		if err := qc.tick(); err != nil {
			return nil, err
		}
		var null bool
		var err error
		kbuf, null, err = appendJoinKey(kbuf[:0], rEnv, rrow, rightKeys, rKeyFns)
		if err != nil {
			return nil, err
		}
		if null {
			continue // NULL join keys never match
		}
		qc.chargeMem(bytesPerRef * 2) // bucket slot + row reference
		b, ok := build[string(kbuf)]
		if !ok {
			b = &bucket{}
			build[string(kbuf)] = b
		}
		b.rows = append(b.rows, rrow)
		b.idx = append(b.idx, ri)
	}

	for _, lrow := range left.rows {
		if err := qc.tick(); err != nil {
			return nil, err
		}
		var null bool
		var err error
		kbuf, null, err = appendJoinKey(kbuf[:0], lEnv, lrow, leftKeys, lKeyFns)
		if err != nil {
			return nil, err
		}
		var matchedLeft bool
		if !null {
			if b, ok := build[string(kbuf)]; ok {
				for i, rrow := range b.rows {
					ok2, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok2 {
						matchedLeft = true
						if matched != nil {
							matched[b.idx[i]] = true
						}
						out = appendJoined(out, lrow, rrow)
					}
				}
			}
		}
		if !matchedLeft && (je.Type == sqlparser.LeftJoin || je.Type == sqlparser.FullJoin) {
			out = appendJoined(out, lrow, nil)
		}
	}
	if matched != nil {
		for ri, rrow := range right.rows {
			if !matched[ri] {
				out = appendJoined(out, nil, rrow)
			}
		}
	}
	combined.rows = out
	return combined, nil
}

// usingQualifier resolves a USING column on one join input, returning the
// qualifier of its unique match. Zero matches or several are errors — the
// old behavior of returning an unqualified ref silently bound to whatever
// column the combined scope resolved first.
func usingQualifier(r *relation, col, side string) (string, error) {
	found := -1
	for i, n := range r.names {
		if strings.EqualFold(n, col) {
			if found >= 0 {
				return "", fmt.Errorf("%w: %q in USING is ambiguous on the %s side of the join", ErrAmbiguousColumn, col, side)
			}
			found = i
		}
	}
	if found < 0 {
		return "", fmt.Errorf("%w: %q in USING", ErrJoinColumnNotFound, col)
	}
	return r.qualifiers[found], nil
}

// splitJoinCondition decomposes an ON condition into hash-join key pairs
// (expressions over the left and right inputs respectively) and a residual
// predicate evaluated on combined rows.
func splitJoinCondition(left, right *relation, on sqlparser.Expr) (leftKeys, rightKeys []sqlparser.Expr, residual sqlparser.Expr) {
	if on == nil {
		return nil, nil, nil
	}
	var conjuncts []sqlparser.Expr
	var flatten func(e sqlparser.Expr)
	flatten = func(e sqlparser.Expr) {
		if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
			flatten(be.L)
			flatten(be.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(on)

	sideOf := func(e sqlparser.Expr) int {
		// 1 = resolves only in left, 2 = only in right, 0 = neither/both.
		inLeft, inRight := true, true
		anyCol := false
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok {
				anyCol = true
				if !left.canResolve(cr.Table, cr.Name) {
					inLeft = false
				}
				if !right.canResolve(cr.Table, cr.Name) {
					inRight = false
				}
			}
			if _, ok := x.(*sqlparser.SubqueryExpr); ok {
				inLeft, inRight = false, false
			}
			return true
		})
		if !anyCol {
			return 0
		}
		// A bare column name may resolve in both sides if names collide;
		// such conditions stay residual.
		switch {
		case inLeft && !inRight:
			return 1
		case inRight && !inLeft:
			return 2
		}
		return 0
	}

	for _, c := range conjuncts {
		be, ok := c.(*sqlparser.BinaryExpr)
		if ok && be.Op == "=" {
			ls, rs := sideOf(be.L), sideOf(be.R)
			switch {
			case ls == 1 && rs == 2:
				leftKeys = append(leftKeys, be.L)
				rightKeys = append(rightKeys, be.R)
				continue
			case ls == 2 && rs == 1:
				leftKeys = append(leftKeys, be.R)
				rightKeys = append(rightKeys, be.L)
				continue
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = &sqlparser.BinaryExpr{Op: "AND", L: residual, R: c}
		}
	}
	return leftKeys, rightKeys, residual
}

// compileKeyFns compiles every join-key expression against its input
// relation, or returns nil when any of them needs the interpreted path.
func compileKeyFns(eng *Engine, rel *relation, keys []sqlparser.Expr) []compiledExpr {
	fns := make([]compiledExpr, len(keys))
	for i, k := range keys {
		fn, _, ok := compileExpr(eng, rel, k)
		if !ok {
			return nil
		}
		fns[i] = fn
	}
	return fns
}

// appendJoinKey renders the join-key expressions for one row into buf.
// null is true when any component is NULL.
func appendJoinKey(buf []byte, ev *env, row []Value, keys []sqlparser.Expr, fns []compiledExpr) ([]byte, bool, error) {
	for i, k := range keys {
		var v Value
		var err error
		if fns != nil {
			v, err = fns[i](row)
		} else {
			ev.row = row
			v, err = ev.eval(k)
		}
		if err != nil {
			return buf, false, err
		}
		if v == nil {
			return buf, true, nil
		}
		buf = appendGroupKey(buf, v)
		buf = append(buf, keySep)
	}
	return buf, false, nil
}
