package engine

import (
	"fmt"
	"strings"

	"verdictdb/internal/sqlparser"
)

// buildFrom materializes the FROM clause into a relation.
func buildFrom(qc *queryCtx, from sqlparser.TableExpr, outer *env) (*relation, error) {
	if from == nil {
		// FROM-less select: a single empty row.
		return newRelation(nil, nil, [][]Value{{}}), nil
	}
	switch t := from.(type) {
	case *sqlparser.TableRef:
		tbl, rows, err := qc.eng.snapshot(t.Name)
		if err != nil {
			return nil, err
		}
		qc.scanned += int64(len(rows))
		qual := t.Alias
		if qual == "" {
			qual = baseName(t.Name)
		}
		quals := make([]string, len(tbl.Cols))
		names := make([]string, len(tbl.Cols))
		for i, c := range tbl.Cols {
			quals[i] = qual
			names[i] = c.Name
		}
		return newRelation(quals, names, rows), nil
	case *sqlparser.DerivedTable:
		rs, err := execSelectWithOuter(qc, t.Select, nil)
		if err != nil {
			return nil, err
		}
		quals := make([]string, len(rs.Cols))
		for i := range quals {
			quals[i] = t.Alias
		}
		return newRelation(quals, rs.Cols, rs.Rows), nil
	case *sqlparser.JoinExpr:
		left, err := buildFrom(qc, t.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := buildFrom(qc, t.Right, outer)
		if err != nil {
			return nil, err
		}
		return joinRelations(qc, left, right, t, outer)
	}
	return nil, fmt.Errorf("engine: unsupported FROM element %T", from)
}

// baseName strips a schema qualifier: "verdict_meta.samples" -> "samples".
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// joinRelations implements hash-based equi-joins with residual predicates,
// falling back to a nested-loop join when no equi-join pair exists.
func joinRelations(qc *queryCtx, left, right *relation, je *sqlparser.JoinExpr, outer *env) (*relation, error) {
	combinedQuals := append(append([]string{}, left.qualifiers...), right.qualifiers...)
	combinedNames := append(append([]string{}, left.names...), right.names...)
	combined := newRelation(combinedQuals, combinedNames, nil)

	on := je.On
	// JOIN ... USING (c1, ...) is sugar for equality on the named columns.
	if len(je.Using) > 0 {
		for _, c := range je.Using {
			eq := &sqlparser.BinaryExpr{
				Op: "=",
				L:  &sqlparser.ColumnRef{Table: qualifierFor(left, c), Name: c},
				R:  &sqlparser.ColumnRef{Table: qualifierFor(right, c), Name: c},
			}
			if on == nil {
				on = eq
			} else {
				on = &sqlparser.BinaryExpr{Op: "AND", L: on, R: eq}
			}
		}
	}

	leftKeys, rightKeys, residual := splitJoinCondition(left, right, on)

	// Evaluation environments for key extraction.
	lEnv := &env{qc: qc, rel: left, outer: outer}
	rEnv := &env{qc: qc, rel: right, outer: outer}
	combEnv := &env{qc: qc, rel: combined, outer: outer}

	matches := func(lrow, rrow []Value) (bool, error) {
		if residual == nil {
			return true, nil
		}
		row := make([]Value, 0, len(lrow)+len(rrow))
		row = append(row, lrow...)
		row = append(row, rrow...)
		combEnv.row = row
		v, err := combEnv.eval(residual)
		if err != nil {
			return false, err
		}
		b, ok := ToBool(v)
		return ok && b, nil
	}

	appendJoined := func(out [][]Value, lrow, rrow []Value) [][]Value {
		row := make([]Value, 0, left.width()+right.width())
		if lrow == nil {
			lrow = make([]Value, left.width())
		}
		if rrow == nil {
			rrow = make([]Value, right.width())
		}
		row = append(row, lrow...)
		row = append(row, rrow...)
		return append(out, row)
	}

	var out [][]Value

	if len(leftKeys) == 0 {
		// Nested-loop join (cross join or non-equi condition).
		if je.Type == CrossJoinType() && residual == nil {
			out = make([][]Value, 0, len(left.rows)*max(1, len(right.rows)))
		}
		switch je.Type {
		case sqlparser.InnerJoin, sqlparser.CrossJoin:
			for _, lrow := range left.rows {
				for _, rrow := range right.rows {
					ok, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						out = appendJoined(out, lrow, rrow)
					}
				}
			}
		case sqlparser.LeftJoin:
			for _, lrow := range left.rows {
				matched := false
				for _, rrow := range right.rows {
					ok, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						out = appendJoined(out, lrow, rrow)
					}
				}
				if !matched {
					out = appendJoined(out, lrow, nil)
				}
			}
		default:
			return nil, fmt.Errorf("engine: %s requires an equi-join condition", je.Type)
		}
		combined.rows = out
		return combined, nil
	}

	// Hash join: build on the right, probe from the left.
	type bucket struct {
		rows    [][]Value
		matched []bool
	}
	build := make(map[string]*bucket, len(right.rows))
	for _, rrow := range right.rows {
		rEnv.row = rrow
		key, null, err := evalKey(rEnv, rightKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue // NULL join keys never match
		}
		b, ok := build[key]
		if !ok {
			b = &bucket{}
			build[key] = b
		}
		b.rows = append(b.rows, rrow)
		b.matched = append(b.matched, false)
	}

	for _, lrow := range left.rows {
		lEnv.row = lrow
		key, null, err := evalKey(lEnv, leftKeys)
		if err != nil {
			return nil, err
		}
		var matchedLeft bool
		if !null {
			if b, ok := build[key]; ok {
				for i, rrow := range b.rows {
					ok2, err := matches(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok2 {
						matchedLeft = true
						b.matched[i] = true
						out = appendJoined(out, lrow, rrow)
					}
				}
			}
		}
		if !matchedLeft && (je.Type == sqlparser.LeftJoin || je.Type == sqlparser.FullJoin) {
			out = appendJoined(out, lrow, nil)
		}
	}
	if je.Type == sqlparser.RightJoin || je.Type == sqlparser.FullJoin {
		for _, b := range build {
			for i, rrow := range b.rows {
				if !b.matched[i] {
					out = appendJoined(out, nil, rrow)
				}
			}
		}
	}
	combined.rows = out
	return combined, nil
}

// CrossJoinType returns the cross-join tag (avoids exporting sqlparser in
// signatures above).
func CrossJoinType() sqlparser.JoinType { return sqlparser.CrossJoin }

func qualifierFor(r *relation, col string) string {
	for i, n := range r.names {
		if strings.EqualFold(n, col) {
			return r.qualifiers[i]
		}
	}
	return ""
}

// splitJoinCondition decomposes an ON condition into hash-join key pairs
// (expressions over the left and right inputs respectively) and a residual
// predicate evaluated on combined rows.
func splitJoinCondition(left, right *relation, on sqlparser.Expr) (leftKeys, rightKeys []sqlparser.Expr, residual sqlparser.Expr) {
	if on == nil {
		return nil, nil, nil
	}
	var conjuncts []sqlparser.Expr
	var flatten func(e sqlparser.Expr)
	flatten = func(e sqlparser.Expr) {
		if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
			flatten(be.L)
			flatten(be.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(on)

	sideOf := func(e sqlparser.Expr) int {
		// 1 = resolves only in left, 2 = only in right, 0 = neither/both.
		inLeft, inRight := true, true
		anyCol := false
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok {
				anyCol = true
				if !left.canResolve(cr.Table, cr.Name) {
					inLeft = false
				}
				if !right.canResolve(cr.Table, cr.Name) {
					inRight = false
				}
			}
			if _, ok := x.(*sqlparser.SubqueryExpr); ok {
				inLeft, inRight = false, false
			}
			return true
		})
		if !anyCol {
			return 0
		}
		// A bare column name may resolve in both sides if names collide;
		// such conditions stay residual.
		switch {
		case inLeft && !inRight:
			return 1
		case inRight && !inLeft:
			return 2
		}
		return 0
	}

	for _, c := range conjuncts {
		be, ok := c.(*sqlparser.BinaryExpr)
		if ok && be.Op == "=" {
			ls, rs := sideOf(be.L), sideOf(be.R)
			switch {
			case ls == 1 && rs == 2:
				leftKeys = append(leftKeys, be.L)
				rightKeys = append(rightKeys, be.R)
				continue
			case ls == 2 && rs == 1:
				leftKeys = append(leftKeys, be.R)
				rightKeys = append(rightKeys, be.L)
				continue
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = &sqlparser.BinaryExpr{Op: "AND", L: residual, R: c}
		}
	}
	return leftKeys, rightKeys, residual
}

// evalKey renders the join-key expressions into a composite hash key.
// null is true when any component is NULL.
func evalKey(ev *env, keys []sqlparser.Expr) (string, bool, error) {
	var sb strings.Builder
	for _, k := range keys {
		v, err := ev.eval(k)
		if err != nil {
			return "", false, err
		}
		if v == nil {
			return "", true, nil
		}
		sb.WriteString(GroupKey(v))
		sb.WriteByte('\x1f')
	}
	return sb.String(), false, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
