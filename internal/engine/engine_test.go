package engine

import (
	"fmt"
	"math"
	"testing"
)

// testDB builds a small engine with orders and products tables.
func testDB(t testing.TB) *Engine {
	t.Helper()
	e := NewSeeded(42)
	if err := e.CreateTable("orders", []Column{
		{Name: "order_id", Type: TInt},
		{Name: "city", Type: TString},
		{Name: "product_id", Type: TInt},
		{Name: "price", Type: TFloat},
		{Name: "quantity", Type: TInt},
		{Name: "order_date", Type: TString},
	}); err != nil {
		t.Fatal(err)
	}
	cities := []string{"ann arbor", "detroit", "chicago"}
	rows := make([][]Value, 0, 300)
	for i := 0; i < 300; i++ {
		rows = append(rows, []Value{
			int64(i + 1),
			cities[i%3],
			int64(i%10 + 1),
			float64(10 + i%50),
			int64(1 + i%5),
			fmt.Sprintf("1994-%02d-%02d", i%12+1, i%28+1),
		})
	}
	if err := e.InsertRows("orders", rows); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("products", []Column{
		{Name: "product_id", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "category", Type: TString},
	}); err != nil {
		t.Fatal(err)
	}
	var prows [][]Value
	for i := 1; i <= 10; i++ {
		cat := "food"
		if i > 5 {
			cat = "tools"
		}
		prows = append(prows, []Value{int64(i), fmt.Sprintf("product-%d", i), cat})
	}
	if err := e.InsertRows("products", prows); err != nil {
		t.Fatal(err)
	}
	return e
}

func mustQuery(t testing.TB, e *Engine, sql string) *ResultSet {
	t.Helper()
	rs, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func asFloat(t testing.TB, v Value) float64 {
	t.Helper()
	f, ok := ToFloat(v)
	if !ok {
		t.Fatalf("not numeric: %#v", v)
	}
	return f
}

func TestSelectStar(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select * from orders")
	if len(rs.Rows) != 300 || len(rs.Cols) != 6 {
		t.Fatalf("got %dx%d", len(rs.Rows), len(rs.Cols))
	}
	if rs.RowsScanned != 300 {
		t.Errorf("RowsScanned = %d", rs.RowsScanned)
	}
}

func TestWhereFilter(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select order_id from orders where city = 'detroit' and price >= 20")
	for _, r := range rs.Rows {
		id := r[0].(int64)
		if (id-1)%3 != 1 {
			t.Fatalf("wrong city row %d", id)
		}
	}
	if len(rs.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestAggregatesGlobal(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select count(*) as c, sum(quantity) as s, avg(price) as a, min(price) as lo, max(price) as hi from orders")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if c := rs.Rows[0][0].(int64); c != 300 {
		t.Errorf("count = %d", c)
	}
	var wantSum, wantAvg float64
	for i := 0; i < 300; i++ {
		wantSum += float64(1 + i%5)
		wantAvg += float64(10 + i%50)
	}
	wantAvg /= 300
	if s := asFloat(t, rs.Rows[0][1]); s != wantSum {
		t.Errorf("sum = %v want %v", s, wantSum)
	}
	if a := asFloat(t, rs.Rows[0][2]); math.Abs(a-wantAvg) > 1e-9 {
		t.Errorf("avg = %v want %v", a, wantAvg)
	}
	if lo := asFloat(t, rs.Rows[0][3]); lo != 10 {
		t.Errorf("min = %v", lo)
	}
	if hi := asFloat(t, rs.Rows[0][4]); hi != 59 {
		t.Errorf("max = %v", hi)
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select city, count(*) as c from orders group by city having count(*) > 0 order by c desc, city`)
	if len(rs.Rows) != 3 {
		t.Fatalf("groups: %d", len(rs.Rows))
	}
	for _, r := range rs.Rows {
		if r[1].(int64) != 100 {
			t.Errorf("group %v count %v", r[0], r[1])
		}
	}
	// Tie on count: city ascending.
	if rs.Rows[0][0].(string) != "ann arbor" {
		t.Errorf("order: %v", rs.Rows[0][0])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select count(*), sum(price) from orders where price < 0")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if rs.Rows[0][0].(int64) != 0 {
		t.Errorf("count = %v", rs.Rows[0][0])
	}
	if rs.Rows[0][1] != nil {
		t.Errorf("sum should be NULL, got %v", rs.Rows[0][1])
	}
	// But a grouped query over no rows yields no rows.
	rs2 := mustQuery(t, e, "select city, count(*) from orders where price < 0 group by city")
	if len(rs2.Rows) != 0 {
		t.Errorf("grouped rows: %d", len(rs2.Rows))
	}
}

func TestInnerJoin(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select p.category, sum(o.price) as rev
		from orders o inner join products p on o.product_id = p.product_id
		group by p.category order by p.category`)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	if rs.Rows[0][0].(string) != "food" || rs.Rows[1][0].(string) != "tools" {
		t.Fatalf("categories: %v %v", rs.Rows[0][0], rs.Rows[1][0])
	}
	total := asFloat(t, rs.Rows[0][1]) + asFloat(t, rs.Rows[1][1])
	exact := mustQuery(t, e, "select sum(price) from orders")
	if math.Abs(total-asFloat(t, exact.Rows[0][0])) > 1e-9 {
		t.Errorf("join loses rows: %v vs %v", total, exact.Rows[0][0])
	}
}

func TestLeftJoin(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("a", []Column{{Name: "id", Type: TInt}})
	e.CreateTable("b", []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TString}})
	e.InsertRows("a", [][]Value{{int64(1)}, {int64(2)}, {int64(3)}})
	e.InsertRows("b", [][]Value{{int64(1), "x"}, {int64(1), "y"}})
	rs := mustQuery(t, e, "select a.id, b.v from a left join b on a.id = b.id order by a.id, b.v")
	if len(rs.Rows) != 4 {
		t.Fatalf("rows: %d (%v)", len(rs.Rows), rs.Rows)
	}
	if rs.Rows[2][1] != nil || rs.Rows[3][1] != nil {
		t.Errorf("unmatched rows should have NULL v: %v", rs.Rows)
	}
}

func TestNonEquiJoinResidual(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("a", []Column{{Name: "x", Type: TInt}})
	e.CreateTable("b", []Column{{Name: "y", Type: TInt}})
	e.InsertRows("a", [][]Value{{int64(1)}, {int64(5)}})
	e.InsertRows("b", [][]Value{{int64(2)}, {int64(4)}})
	rs := mustQuery(t, e, "select a.x, b.y from a inner join b on a.x < b.y order by a.x, b.y")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows: %v", rs.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select avg(rev) as a from
		(select city, sum(price) as rev from orders group by city) as t`)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows: %d", len(rs.Rows))
	}
	exact := mustQuery(t, e, "select sum(price) from orders")
	want := asFloat(t, exact.Rows[0][0]) / 3
	if got := asFloat(t, rs.Rows[0][0]); math.Abs(got-want) > 1e-9 {
		t.Errorf("avg rev = %v want %v", got, want)
	}
}

func TestWindowPartition(t *testing.T) {
	e := testDB(t)
	// Total count over all groups, attached to each group row.
	rs := mustQuery(t, e, `select city, count(*) as c, sum(count(*)) over () as total
		from orders group by city`)
	for _, r := range rs.Rows {
		if r[2].(int64) != 300 {
			t.Errorf("window total = %v", r[2])
		}
	}
	// Partitioned window.
	rs2 := mustQuery(t, e, `select city, product_id, count(*) as c,
		sum(count(*)) over (partition by city) as city_total
		from orders group by city, product_id`)
	for _, r := range rs2.Rows {
		if r[3].(int64) != 100 {
			t.Errorf("city_total = %v", r[3])
		}
	}
}

func TestScalarSubquery(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select count(*) from orders where price > (select avg(price) from orders)")
	n := rs.Rows[0][0].(int64)
	if n <= 0 || n >= 300 {
		t.Fatalf("suspicious count %d", n)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	e := testDB(t)
	// Orders priced above their product's average price.
	rs := mustQuery(t, e, `select count(*) from orders o
		where o.price > (select avg(price) from orders i where i.product_id = o.product_id)`)
	n := rs.Rows[0][0].(int64)
	if n <= 0 || n >= 300 {
		t.Fatalf("suspicious count %d", n)
	}
}

func TestInSubquery(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select count(*) from orders where product_id in
		(select product_id from products where category = 'food')`)
	if rs.Rows[0][0].(int64) != 150 {
		t.Fatalf("count = %v", rs.Rows[0][0])
	}
}

func TestExists(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select count(*) from products p where exists
		(select 1 from orders o where o.product_id = p.product_id and o.price > 55)`)
	n := rs.Rows[0][0].(int64)
	if n <= 0 || n > 10 {
		t.Fatalf("exists count %d", n)
	}
}

func TestCaseExpr(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select sum(case when city = 'detroit' then 1 else 0 end) from orders`)
	if asFloat(t, rs.Rows[0][0]) != 100 {
		t.Fatalf("case sum = %v", rs.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select distinct city from orders")
	if len(rs.Rows) != 3 {
		t.Fatalf("distinct rows: %d", len(rs.Rows))
	}
	rs2 := mustQuery(t, e, "select count(distinct product_id) from orders")
	if rs2.Rows[0][0].(int64) != 10 {
		t.Fatalf("count distinct = %v", rs2.Rows[0][0])
	}
}

func TestLimitAndOrderByPosition(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select order_id, price from orders order by 2 desc, 1 limit 5")
	if len(rs.Rows) != 5 {
		t.Fatalf("limit: %d", len(rs.Rows))
	}
	if asFloat(t, rs.Rows[0][1]) != 59 {
		t.Errorf("top price: %v", rs.Rows[0][1])
	}
}

func TestUnionAll(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select city from orders where order_id = 1 union all select city from orders where order_id = 2")
	if len(rs.Rows) != 2 {
		t.Fatalf("union all rows: %d", len(rs.Rows))
	}
	rs2 := mustQuery(t, e, "select city from orders union select city from orders")
	if len(rs2.Rows) != 3 {
		t.Fatalf("union dedup rows: %d", len(rs2.Rows))
	}
}

func TestCTASAndInsertSelect(t *testing.T) {
	e := testDB(t)
	if _, err := e.Exec("create table sample as select * from orders where rand() < 0.5"); err != nil {
		t.Fatal(err)
	}
	n := e.RowCount("sample")
	if n < 100 || n > 200 {
		t.Fatalf("Bernoulli half-sample has %d rows", n)
	}
	if _, err := e.Exec("insert into sample select * from orders where order_id <= 3"); err != nil {
		t.Fatal(err)
	}
	if got := e.RowCount("sample"); got != n+3 {
		t.Fatalf("insert-select: %d want %d", got, n+3)
	}
}

func TestInsertValuesAndNulls(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("t", []Column{{Name: "a", Type: TInt}, {Name: "b", Type: TString}})
	if _, err := e.Exec("insert into t (a, b) values (1, 'x'), (2, null)"); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, e, "select count(*), count(b) from t")
	if rs.Rows[0][0].(int64) != 2 || rs.Rows[0][1].(int64) != 1 {
		t.Fatalf("null counting: %v", rs.Rows[0])
	}
	rs2 := mustQuery(t, e, "select count(*) from t where b is null")
	if rs2.Rows[0][0].(int64) != 1 {
		t.Fatalf("is null: %v", rs2.Rows[0][0])
	}
}

func TestStddevVariance(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("t", []Column{{Name: "x", Type: TFloat}})
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		e.InsertRows("t", [][]Value{{v}})
	}
	rs := mustQuery(t, e, "select var(x), stddev(x) from t")
	// Sample variance of this classic dataset is 32/7.
	if v := asFloat(t, rs.Rows[0][0]); math.Abs(v-32.0/7.0) > 1e-9 {
		t.Errorf("var = %v", v)
	}
	if s := asFloat(t, rs.Rows[0][1]); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Errorf("stddev = %v", s)
	}
}

func TestPercentile(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("t", []Column{{Name: "x", Type: TFloat}})
	for i := 1; i <= 100; i++ {
		e.InsertRows("t", [][]Value{{float64(i)}})
	}
	rs := mustQuery(t, e, "select percentile(x, 0.5), percentile(x, 0.9) from t")
	if m := asFloat(t, rs.Rows[0][0]); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("median = %v", m)
	}
	if p90 := asFloat(t, rs.Rows[0][1]); math.Abs(p90-90.1) > 0.2 {
		t.Errorf("p90 = %v", p90)
	}
}

func TestNDVApproximation(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("t", []Column{{Name: "x", Type: TInt}})
	rows := make([][]Value, 0, 20000)
	for i := 0; i < 20000; i++ {
		rows = append(rows, []Value{int64(i % 5000)})
	}
	e.InsertRows("t", rows)
	rs := mustQuery(t, e, "select ndv(x) from t")
	got := float64(rs.Rows[0][0].(int64))
	if math.Abs(got-5000)/5000 > 0.05 {
		t.Fatalf("ndv = %v want ~5000", got)
	}
}

func TestDateArithmetic(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, `select count(*) from orders
		where order_date >= date '1994-03-01' and order_date < date '1994-03-01' + interval '1' month`)
	want := mustQuery(t, e, `select count(*) from orders where order_date >= '1994-03-01' and order_date < '1994-04-01'`)
	if rs.Rows[0][0] != want.Rows[0][0] {
		t.Fatalf("interval arithmetic: %v vs %v", rs.Rows[0][0], want.Rows[0][0])
	}
}

func TestLikeAndIn(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select count(*) from orders where city like 'ann%'")
	if rs.Rows[0][0].(int64) != 100 {
		t.Fatalf("like: %v", rs.Rows[0][0])
	}
	rs2 := mustQuery(t, e, "select count(*) from orders where city in ('detroit', 'chicago')")
	if rs2.Rows[0][0].(int64) != 200 {
		t.Fatalf("in: %v", rs2.Rows[0][0])
	}
	rs3 := mustQuery(t, e, "select count(*) from orders where city not like '%o%'")
	if rs3.Rows[0][0].(int64) != 0 {
		t.Fatalf("not like: %v", rs3.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	e := NewSeeded(1)
	cases := []struct {
		sql  string
		want float64
	}{
		{"select floor(2.7)", 2},
		{"select ceil(2.1)", 3},
		{"select abs(-4.5)", 4.5},
		{"select round(2.456, 2)", 2.46},
		{"select sqrt(16)", 4},
		{"select pow(2, 10)", 1024},
		{"select mod(17, 5)", 2},
		{"select greatest(1, 9, 3)", 9},
		{"select least(5, 2, 8)", 2},
		{"select coalesce(null, 7)", 7},
		{"select if(1 > 0, 10, 20)", 10},
		{"select length('hello')", 5},
	}
	for _, c := range cases {
		rs := mustQuery(t, e, c.sql)
		if got := asFloat(t, rs.Rows[0][0]); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v want %v", c.sql, got, c.want)
		}
	}
	rs := mustQuery(t, e, "select substr('abcdef', 2, 3), upper('ab'), concat('x', 1)")
	if rs.Rows[0][0] != "bcd" || rs.Rows[0][1] != "AB" || rs.Rows[0][2] != "x1" {
		t.Errorf("string funcs: %v", rs.Rows[0])
	}
}

func TestHash01Deterministic(t *testing.T) {
	e := NewSeeded(1)
	rs1 := mustQuery(t, e, "select hash01('abc')")
	rs2 := mustQuery(t, e, "select hash01('abc')")
	v1, v2 := asFloat(t, rs1.Rows[0][0]), asFloat(t, rs2.Rows[0][0])
	if v1 != v2 {
		t.Fatal("hash01 not deterministic")
	}
	if v1 < 0 || v1 >= 1 {
		t.Fatalf("hash01 out of range: %v", v1)
	}
}

func TestRandSeedReproducible(t *testing.T) {
	a := NewSeeded(7)
	b := NewSeeded(7)
	a.CreateTable("t", []Column{{Name: "x", Type: TInt}})
	b.CreateTable("t", []Column{{Name: "x", Type: TInt}})
	for i := 0; i < 1000; i++ {
		a.InsertRows("t", [][]Value{{int64(i)}})
		b.InsertRows("t", [][]Value{{int64(i)}})
	}
	ra := mustQuery(t, a, "select count(*) from t where rand() < 0.3")
	rb := mustQuery(t, b, "select count(*) from t where rand() < 0.3")
	if ra.Rows[0][0] != rb.Rows[0][0] {
		t.Fatal("same seed should give same sample size")
	}
	n := ra.Rows[0][0].(int64)
	if n < 200 || n > 400 {
		t.Fatalf("Bernoulli(0.3) of 1000 gave %d", n)
	}
}

func TestDivisionSemantics(t *testing.T) {
	e := NewSeeded(1)
	rs := mustQuery(t, e, "select 7 / 2, 7 % 3, 7.0 * 2")
	if asFloat(t, rs.Rows[0][0]) != 3.5 {
		t.Errorf("7/2 = %v", rs.Rows[0][0])
	}
	if rs.Rows[0][1].(int64) != 1 {
		t.Errorf("7%%3 = %v", rs.Rows[0][1])
	}
	// Division by zero yields NULL, not an error.
	rs2 := mustQuery(t, e, "select 1 / 0")
	if rs2.Rows[0][0] != nil {
		t.Errorf("1/0 = %v", rs2.Rows[0][0])
	}
}

func TestErrorCases(t *testing.T) {
	e := testDB(t)
	bad := []string{
		"select * from nope",
		"select nope from orders",
		"select o.x from orders o",
		"select sum(city) from orders", // non-numeric sum
		"select count(*) from orders o1, orders o2 where nope = 1",
		"select unknown_func(1) from orders",
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := testDB(t)
	_, err := e.Query("select product_id from orders o inner join products p on o.product_id = p.product_id")
	if err == nil {
		t.Fatal("ambiguous column should error")
	}
}

func TestDropTable(t *testing.T) {
	e := testDB(t)
	if _, err := e.Exec("drop table products"); err != nil {
		t.Fatal(err)
	}
	if e.HasTable("products") {
		t.Fatal("still present")
	}
	if _, err := e.Exec("drop table products"); err == nil {
		t.Fatal("double drop should error")
	}
	if _, err := e.Exec("drop table if exists products"); err != nil {
		t.Fatal(err)
	}
}

func TestQualifiedStar(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select o.* from orders o inner join products p on o.product_id = p.product_id limit 1")
	if len(rs.Cols) != 6 {
		t.Fatalf("o.* cols: %v", rs.Cols)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := testDB(t)
	rs := mustQuery(t, e, "select substr(order_date, 1, 7) as ym, count(*) from orders group by substr(order_date, 1, 7) order by ym")
	if len(rs.Rows) != 12 {
		t.Fatalf("months: %d", len(rs.Rows))
	}
}
