package engine

import (
	"context"
	"fmt"
	"strings"

	"verdictdb/internal/sqlparser"
)

// relation is an intermediate result: a schema of (qualifier, name) columns
// plus data. A base-table scan carries its columnar snapshot in src and
// materializes boxed rows only when a consumer needs the row view (joins,
// subqueries, interpreted evaluation); derived tables and join outputs are
// row-major from the start.
type relation struct {
	qualifiers []string // per-column table qualifier ("" if none)
	names      []string // per-column name
	rows       [][]Value
	src        *colSource // columnar source for base-table scans, else nil

	// lazily built resolution maps
	qualified map[string]int // "qual.name" (lower) -> index
	bare      map[string]int // "name" (lower) -> index; ambiguousIdx if dup
}

const ambiguousIdx = AmbiguousColIndex

func newRelation(quals, names []string, rows [][]Value) *relation {
	return &relation{qualifiers: quals, names: names, rows: rows}
}

func newColRelation(quals, names []string, src *colSource) *relation {
	return &relation{qualifiers: quals, names: names, src: src}
}

func (r *relation) width() int { return len(r.names) }

// numRows is the relation's cardinality without forcing materialization.
func (r *relation) numRows() int {
	if r.rows == nil && r.src != nil {
		return r.src.nrows
	}
	return len(r.rows)
}

// materialize returns the relation's boxed rows. Columnar sources are
// converted (and charged, and possibly read from disk) only through
// queryCtx.materialize — by the time this is called on a source-backed
// relation, that conversion has already happened.
func (r *relation) materialize() [][]Value { return r.rows }

func (r *relation) buildIndex() {
	if r.bare != nil {
		return
	}
	r.qualified = make(map[string]int, len(r.names))
	r.bare = make(map[string]int, len(r.names))
	//verdict:nocharge name index: one entry per schema column, not row-scale
	for i, n := range r.names {
		low := strings.ToLower(n)
		if q := r.qualifiers[i]; q != "" {
			r.qualified[strings.ToLower(q)+"."+low] = i //verdict:nocharge schema-width
		}
		if prev, ok := r.bare[low]; ok && prev != i {
			r.bare[low] = ambiguousIdx //verdict:nocharge schema-width
		} else {
			r.bare[low] = i //verdict:nocharge schema-width
		}
	}
}

// resolve maps a column reference to a column index.
func (r *relation) resolve(table, name string) (int, error) {
	r.buildIndex()
	low := strings.ToLower(name)
	if table != "" {
		if idx, ok := r.qualified[strings.ToLower(table)+"."+low]; ok {
			return idx, nil
		}
		return -1, fmt.Errorf("engine: unknown column %s.%s", table, name)
	}
	idx, ok := r.bare[low]
	if !ok {
		return -1, fmt.Errorf("engine: unknown column %s", name)
	}
	if idx == ambiguousIdx {
		// Keep the sentinel in the return so callers can tell ambiguity
		// (an error even when enclosing scopes know the name) from absence.
		return ambiguousIdx, fmt.Errorf("%w %s", ErrAmbiguousColumn, name)
	}
	return idx, nil
}

// canResolve reports whether the reference resolves without error.
func (r *relation) canResolve(table, name string) bool {
	_, err := r.resolve(table, name)
	return err == nil
}

// queryCtx carries per-query state through execution.
type queryCtx struct {
	eng     *Engine
	scanned int64 // base-table rows read
	depth   int   // subquery nesting guard

	// Lifecycle control (lifecycle.go): the caller's context, the optional
	// memory gauge, the poll counter for serial loops (unsynchronized —
	// morsel workers call pollAbort directly), and the SQL for InternalError
	// provenance.
	ctx   context.Context
	mem   *memGauge
	polls int
	query string

	// Correlated-subquery memoization: a correlated scalar subquery is
	// re-evaluated for every outer row, but its result depends only on the
	// outer values it references. outerRefs caches those references per
	// subquery; corrCache memoizes results keyed by their values. This
	// turns the O(outer x inner) naive evaluation into O(distinct keys x
	// inner) — the difference between seconds and hours on TPC-H q17.
	outerRefs map[*sqlparser.SelectStmt][]*sqlparser.ColumnRef
	corrCache map[*sqlparser.SelectStmt]map[string]Value
}

// env is the evaluation environment for one row.
type env struct {
	qc      *queryCtx
	rel     *relation
	row     []Value
	aggVals map[*sqlparser.FuncCall]Value // aggregate results, by AST identity
	winVals map[*sqlparser.FuncCall]Value // window results, by AST identity
	outer   *env                          // enclosing scope for correlated subqueries
	// subqueryCache memoizes uncorrelated scalar/IN subquery results at the
	// query level (shared across rows via pointer).
	subqueryCache map[*sqlparser.SelectStmt]Value
	inSetCache    map[*sqlparser.SelectStmt]map[string]bool
}

func (ev *env) child(rel *relation, row []Value) *env {
	return &env{
		qc:            ev.qc,
		rel:           rel,
		row:           row,
		outer:         ev,
		subqueryCache: ev.subqueryCache,
		inSetCache:    ev.inSetCache,
	}
}

// lookupColumn resolves a column in this scope or any enclosing scope. A
// name the innermost scope knows but finds ambiguous is an error — it must
// not fall through to an enclosing scope (or to "unknown column").
func (ev *env) lookupColumn(table, name string) (Value, error) {
	for scope := ev; scope != nil; scope = scope.outer {
		if scope.rel == nil {
			continue
		}
		idx, err := scope.rel.resolve(table, name)
		if err == nil {
			return scope.row[idx], nil
		}
		if idx == ambiguousIdx {
			return nil, err
		}
	}
	return nil, fmt.Errorf("engine: unknown column %s", joinName(table, name))
}

func errCannotNegate(v Value) error {
	return fmt.Errorf("engine: cannot negate %T", v)
}

func errNotNonBool(v Value) error {
	return fmt.Errorf("engine: NOT applied to non-boolean %T", v)
}

func joinName(table, name string) string {
	if table == "" {
		return name
	}
	return table + "." + name
}

// eval evaluates an expression against the environment.
func (ev *env) eval(e sqlparser.Expr) (Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Val, nil
	case *sqlparser.ColumnRef:
		return ev.lookupColumn(x.Table, x.Name)
	case *sqlparser.BinaryExpr:
		return ev.evalBinary(x)
	case *sqlparser.UnaryExpr:
		v, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case nil:
				return nil, nil
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, errCannotNegate(v)
		case "NOT":
			if v == nil {
				return nil, nil
			}
			b, ok := ToBool(v)
			if !ok {
				return nil, errNotNonBool(v)
			}
			return !b, nil
		}
		return nil, fmt.Errorf("engine: unknown unary op %q", x.Op)
	case *sqlparser.FuncCall:
		if x.Over != nil {
			if ev.winVals != nil {
				if v, ok := ev.winVals[x]; ok {
					return v, nil
				}
			}
			return nil, fmt.Errorf("engine: window function %s not available in this context", x.Name)
		}
		if sqlparser.AggregateFuncs[x.Name] {
			if ev.aggVals != nil {
				if v, ok := ev.aggVals[x]; ok {
					return v, nil
				}
			}
			return nil, fmt.Errorf("engine: aggregate %s not allowed here", x.Name)
		}
		return ev.evalScalarFunc(x)
	case *sqlparser.CaseExpr:
		return ev.evalCase(x)
	case *sqlparser.SubqueryExpr:
		return ev.evalScalarSubquery(x.Select)
	case *sqlparser.InExpr:
		return ev.evalIn(x)
	case *sqlparser.BetweenExpr:
		v, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := ev.eval(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := ev.eval(x.Hi)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if x.Not {
			return !in, nil
		}
		return in, nil
	case *sqlparser.LikeExpr:
		v, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		p, err := ev.eval(x.Pattern)
		if err != nil {
			return nil, err
		}
		if v == nil || p == nil {
			return nil, nil
		}
		m := likeMatch(ToStr(v), ToStr(p))
		if x.Not {
			return !m, nil
		}
		return m, nil
	case *sqlparser.IsNullExpr:
		v, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return v != nil, nil
		}
		return v == nil, nil
	case *sqlparser.ExistsExpr:
		rs, err := ev.execSubquery(x.Select)
		if err != nil {
			return nil, err
		}
		found := len(rs.Rows) > 0
		if x.Not {
			return !found, nil
		}
		return found, nil
	case *sqlparser.CastExpr:
		v, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		return castValue(v, x.Type)
	case *sqlparser.IntervalExpr:
		// A bare interval only makes sense inside date arithmetic, which
		// evalBinary handles; reaching here is a query error.
		return nil, fmt.Errorf("engine: INTERVAL outside date arithmetic")
	}
	return nil, fmt.Errorf("engine: cannot evaluate %T", e)
}

func (ev *env) evalBinary(x *sqlparser.BinaryExpr) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := ev.eval(x.L)
		if err != nil {
			return nil, err
		}
		if lb, ok := ToBool(l); ok && !lb {
			return false, nil
		}
		r, err := ev.eval(x.R)
		if err != nil {
			return nil, err
		}
		rb, rok := ToBool(r)
		if rok && !rb {
			return false, nil
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return true, nil
	case "OR":
		l, err := ev.eval(x.L)
		if err != nil {
			return nil, err
		}
		if lb, ok := ToBool(l); ok && lb {
			return true, nil
		}
		r, err := ev.eval(x.R)
		if err != nil {
			return nil, err
		}
		if rb, ok := ToBool(r); ok && rb {
			return true, nil
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return false, nil
	}

	// Date +/- INTERVAL.
	if iv, ok := x.R.(*sqlparser.IntervalExpr); ok && (x.Op == "+" || x.Op == "-") {
		l, err := ev.eval(x.L)
		if err != nil {
			return nil, err
		}
		if l == nil {
			return nil, nil
		}
		return shiftDate(ToStr(l), iv, x.Op == "-")
	}

	l, err := ev.eval(x.L)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l == nil || r == nil {
			return nil, nil
		}
		c := Compare(l, r)
		switch x.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	case "||":
		if l == nil || r == nil {
			return nil, nil
		}
		return ToStr(l) + ToStr(r), nil
	case "+", "-", "*", "/", "%":
		if l == nil || r == nil {
			return nil, nil
		}
		return arith(x.Op, l, r)
	}
	return nil, fmt.Errorf("engine: unknown operator %q", x.Op)
}

// arith applies a numeric operator. Division always yields float64 (the
// middleware's rewrites depend on exact ratios); +,-,* stay integral when
// both operands are integers; % requires integers.
func arith(op string, l, r Value) (Value, error) {
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt && op != "/" {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "%":
			if ri == 0 {
				return nil, nil
			}
			return li % ri, nil
		}
	}
	lf, lok := ToFloat(l)
	rf, rok := ToFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("engine: non-numeric operand for %q (%T, %T)", op, l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, nil
		}
		return lf / rf, nil
	case "%":
		// int64(rf) can be 0 for 0 < |rf| < 1; guard both so the modulo
		// below cannot divide by zero.
		if rf == 0 || int64(rf) == 0 {
			return nil, nil
		}
		return float64(int64(lf) % int64(rf)), nil
	}
	return nil, fmt.Errorf("engine: unknown arithmetic op %q", op)
}

func (ev *env) evalCase(x *sqlparser.CaseExpr) (Value, error) {
	if x.Operand != nil {
		op, err := ev.eval(x.Operand)
		if err != nil {
			return nil, err
		}
		for _, w := range x.Whens {
			wv, err := ev.eval(w.Cond)
			if err != nil {
				return nil, err
			}
			if op != nil && wv != nil && Compare(op, wv) == 0 {
				return ev.eval(w.Then)
			}
		}
	} else {
		for _, w := range x.Whens {
			cv, err := ev.eval(w.Cond)
			if err != nil {
				return nil, err
			}
			if b, ok := ToBool(cv); ok && b {
				return ev.eval(w.Then)
			}
		}
	}
	if x.Else != nil {
		return ev.eval(x.Else)
	}
	return nil, nil
}

func (ev *env) evalIn(x *sqlparser.InExpr) (Value, error) {
	v, err := ev.eval(x.X)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	if x.Subquery != nil {
		set, err := ev.inSubquerySet(x.Subquery)
		if err != nil {
			return nil, err
		}
		found := set[GroupKey(v)]
		if x.Not {
			return !found, nil
		}
		return found, nil
	}
	for _, le := range x.List {
		lv, err := ev.eval(le)
		if err != nil {
			return nil, err
		}
		if lv != nil && Compare(v, lv) == 0 {
			if x.Not {
				return false, nil
			}
			return true, nil
		}
	}
	if x.Not {
		return true, nil
	}
	return false, nil
}

// isCorrelated reports whether sel references columns that do not resolve
// inside its own FROM (a conservative syntactic check: any qualified
// reference whose qualifier is not defined inside sel).
func isCorrelated(sel *sqlparser.SelectStmt) bool {
	local := map[string]bool{}
	var collect func(t sqlparser.TableExpr)
	collect = func(t sqlparser.TableExpr) {
		switch tt := t.(type) {
		case *sqlparser.TableRef:
			name := tt.Alias
			if name == "" {
				name = tt.Name
			}
			local[strings.ToLower(name)] = true
		case *sqlparser.DerivedTable:
			local[strings.ToLower(tt.Alias)] = true
		case *sqlparser.JoinExpr:
			collect(tt.Left)
			collect(tt.Right)
		}
	}
	if sel.From != nil {
		collect(sel.From)
	}
	correlated := false
	check := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok && cr.Table != "" {
				if !local[strings.ToLower(cr.Table)] {
					correlated = true
				}
			}
			return true
		})
	}
	for _, it := range sel.Items {
		check(it.Expr)
	}
	check(sel.Where)
	for _, g := range sel.GroupBy {
		check(g)
	}
	check(sel.Having)
	return correlated
}

func (ev *env) execSubquery(sel *sqlparser.SelectStmt) (*ResultSet, error) {
	if ev.qc.depth > 16 {
		return nil, fmt.Errorf("engine: subquery nesting too deep")
	}
	ev.qc.depth++
	defer func() { ev.qc.depth-- }()
	return execSelectWithOuter(ev.qc, sel, ev)
}

func (ev *env) evalScalarSubquery(sel *sqlparser.SelectStmt) (Value, error) {
	correlated := isCorrelated(sel)
	if ev.subqueryCache != nil && !correlated {
		if v, ok := ev.subqueryCache[sel]; ok {
			return v, nil
		}
	}
	// Correlated subqueries memoize on the outer values they reference.
	var corrKey string
	if correlated {
		key, ok, err := ev.correlationKey(sel)
		if err != nil {
			return nil, err
		}
		if ok {
			corrKey = key
			if byKey := ev.qc.corrCache[sel]; byKey != nil {
				if v, hit := byKey[corrKey]; hit {
					return v, nil
				}
			}
		} else {
			correlated = false // unkeyable: fall through to direct eval
			corrKey = ""
		}
	}
	rs, err := ev.execSubquery(sel)
	if err != nil {
		return nil, err
	}
	var v Value
	switch {
	case len(rs.Rows) == 0:
		v = nil
	case len(rs.Rows) == 1 && len(rs.Rows[0]) == 1:
		v = rs.Rows[0][0]
	case len(rs.Rows[0]) != 1:
		return nil, fmt.Errorf("engine: scalar subquery returned %d columns", len(rs.Rows[0]))
	default:
		return nil, fmt.Errorf("engine: scalar subquery returned %d rows", len(rs.Rows))
	}
	switch {
	case correlated && corrKey != "":
		if ev.qc.corrCache == nil {
			ev.qc.corrCache = map[*sqlparser.SelectStmt]map[string]Value{}
		}
		byKey := ev.qc.corrCache[sel]
		if byKey == nil {
			byKey = map[string]Value{}
			ev.qc.corrCache[sel] = byKey
		}
		byKey[corrKey] = v
	case !correlated && ev.subqueryCache != nil && !isCorrelated(sel):
		ev.subqueryCache[sel] = v
	}
	return v, nil
}

// correlationKey renders the current values of all outer references inside
// sel into a cache key. ok is false when a reference cannot be resolved in
// the current scope (no memoization then).
func (ev *env) correlationKey(sel *sqlparser.SelectStmt) (string, bool, error) {
	refs, cached := ev.qc.outerRefs[sel]
	if !cached {
		refs = collectOuterRefs(sel)
		if ev.qc.outerRefs == nil {
			ev.qc.outerRefs = map[*sqlparser.SelectStmt][]*sqlparser.ColumnRef{}
		}
		ev.qc.outerRefs[sel] = refs //verdict:nocharge memo keyed by subquery AST node: bounded by query size, not data
	}
	var sb strings.Builder
	for _, cr := range refs {
		v, err := ev.lookupColumn(cr.Table, cr.Name)
		if err != nil {
			return "", false, nil //nolint:nilerr // unkeyable, not fatal
		}
		sb.WriteString(GroupKey(v))
		sb.WriteByte('\x1f')
	}
	return sb.String(), true, nil
}

// collectOuterRefs returns the column references inside sel whose qualifier
// is not a relation defined within sel (i.e. references to enclosing
// scopes), in deterministic order.
func collectOuterRefs(sel *sqlparser.SelectStmt) []*sqlparser.ColumnRef {
	local := map[string]bool{}
	var collect func(t sqlparser.TableExpr)
	collect = func(t sqlparser.TableExpr) {
		switch tt := t.(type) {
		case *sqlparser.TableRef:
			name := tt.Alias
			if name == "" {
				name = tt.Name
			}
			local[strings.ToLower(name)] = true
		case *sqlparser.DerivedTable:
			local[strings.ToLower(tt.Alias)] = true
		case *sqlparser.JoinExpr:
			collect(tt.Left)
			collect(tt.Right)
		}
	}
	if sel.From != nil {
		collect(sel.From)
	}
	var refs []*sqlparser.ColumnRef
	visit := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok && cr.Table != "" &&
				!local[strings.ToLower(cr.Table)] {
				refs = append(refs, cr)
			}
			return true
		})
	}
	for _, it := range sel.Items {
		visit(it.Expr)
	}
	visit(sel.Where)
	for _, g := range sel.GroupBy {
		visit(g)
	}
	visit(sel.Having)
	return refs
}

func (ev *env) inSubquerySet(sel *sqlparser.SelectStmt) (map[string]bool, error) {
	correlated := isCorrelated(sel)
	if !correlated && ev.inSetCache != nil {
		if s, ok := ev.inSetCache[sel]; ok {
			return s, nil
		}
	}
	rs, err := ev.execSubquery(sel)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(rs.Rows))
	for _, r := range rs.Rows {
		if len(r) != 1 {
			return nil, fmt.Errorf("engine: IN subquery must return one column")
		}
		if r[0] != nil {
			set[GroupKey(r[0])] = true
		}
	}
	if !correlated && ev.inSetCache != nil {
		ev.inSetCache[sel] = set
	}
	return set, nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeMatchAt(s, pattern)
}

func likeMatchAt(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeMatchAt(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func castValue(v Value, typ string) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch TypeFromSQL(typ) {
	case TInt:
		if i, ok := ToInt(v); ok {
			return i, nil
		}
		return nil, nil
	case TFloat:
		if f, ok := ToFloat(v); ok {
			return f, nil
		}
		return nil, nil
	case TString:
		return ToStr(v), nil
	case TBool:
		if b, ok := ToBool(v); ok {
			return b, nil
		}
		return nil, nil
	}
	return v, nil
}
