package engine_test

import (
	"math"
	"testing"

	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// Property test: for every TPC-H and Insta benchmark query, the
// morsel-parallel engine must produce the same rows as the serial engine —
// same columns, same row count, order-insensitive group match, float cells
// within tolerance (parallel partial sums reassociate). Run with -race this
// also shakes out data races in the worker fan-out.

func loadedPair(t *testing.T, load func(e *engine.Engine) error) (serial, parallel *engine.Engine) {
	t.Helper()
	serial = engine.NewSeeded(42)
	parallel = engine.NewSeeded(42)
	if err := load(serial); err != nil {
		t.Fatal(err)
	}
	if err := load(parallel); err != nil {
		t.Fatal(err)
	}
	serial.SetParallelism(1)
	parallel.SetParallelism(8)
	return serial, parallel
}

func rowsEquivalent(t *testing.T, id string, s, p *engine.ResultSet) {
	t.Helper()
	if len(s.Cols) != len(p.Cols) {
		t.Fatalf("%s: col count %d vs %d", id, len(s.Cols), len(p.Cols))
	}
	if len(s.Rows) != len(p.Rows) {
		t.Fatalf("%s: row count %d vs %d", id, len(s.Rows), len(p.Rows))
	}
	// Group rows by their non-float cells; compare float cells with
	// tolerance. Workload query outputs all carry their group columns, so
	// keys are unique per row (modulo genuinely identical rows, matched
	// greedily).
	type pending struct {
		row  []engine.Value
		used bool
	}
	byKey := map[string][]*pending{}
	keyOf := func(row []engine.Value) string {
		k := ""
		for _, v := range row {
			if _, isF := v.(float64); isF {
				k += "\x1ff"
				continue
			}
			k += "\x1f" + engine.GroupKey(v)
		}
		return k
	}
	for _, row := range s.Rows {
		k := keyOf(row)
		byKey[k] = append(byKey[k], &pending{row: row})
	}
	for ri, row := range p.Rows {
		k := keyOf(row)
		var match *pending
		for _, cand := range byKey[k] {
			if cand.used {
				continue
			}
			ok := true
			for j, v := range row {
				vf, isF := v.(float64)
				if !isF {
					continue
				}
				cf, cok := cand.row[j].(float64)
				if !cok {
					ok = false
					break
				}
				tol := 1e-9 * math.Max(1, math.Max(math.Abs(vf), math.Abs(cf)))
				if math.Abs(vf-cf) > tol {
					ok = false
					break
				}
			}
			if ok {
				match = cand
				break
			}
		}
		if match == nil {
			t.Fatalf("%s: parallel row %d %v has no serial counterpart", id, ri, row)
		}
		match.used = true
	}
}

func TestTPCHParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial, parallel := loadedPair(t, func(e *engine.Engine) error {
		return workload.LoadTPCH(e, 0.02, 42)
	})
	for _, q := range workload.TPCHQueries {
		rsS, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s serial: %v", q.ID, err)
		}
		rsP, err := parallel.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s parallel: %v", q.ID, err)
		}
		rowsEquivalent(t, q.ID, rsS, rsP)
	}
	if parallel.ParallelScans() == 0 {
		t.Fatal("no TPC-H query took the parallel path")
	}
}

func TestInstaParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial, parallel := loadedPair(t, func(e *engine.Engine) error {
		return workload.LoadInsta(e, 0.02, 42)
	})
	for _, q := range workload.InstaQueries {
		rsS, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s serial: %v", q.ID, err)
		}
		rsP, err := parallel.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s parallel: %v", q.ID, err)
		}
		rowsEquivalent(t, q.ID, rsS, rsP)
	}
	if parallel.ParallelScans() == 0 {
		t.Fatal("no Insta query took the parallel path")
	}
}
