package engine_test

import (
	"math"
	"testing"

	"verdictdb/internal/engine"
	"verdictdb/internal/workload"
)

// Property test: for every TPC-H and Insta benchmark query, the
// morsel-parallel engine must produce the same rows as the serial engine —
// same columns, same row count, order-insensitive group match, float cells
// within tolerance (parallel partial sums reassociate). Run with -race this
// also shakes out data races in the worker fan-out.

func loadedPair(t *testing.T, load func(e *engine.Engine) error) (serial, parallel *engine.Engine) {
	t.Helper()
	serial = engine.NewSeeded(42)
	parallel = engine.NewSeeded(42)
	if err := load(serial); err != nil {
		t.Fatal(err)
	}
	if err := load(parallel); err != nil {
		t.Fatal(err)
	}
	serial.SetParallelism(1)
	parallel.SetParallelism(8)
	return serial, parallel
}

func rowsEquivalent(t *testing.T, id string, s, p *engine.ResultSet) {
	t.Helper()
	if len(s.Cols) != len(p.Cols) {
		t.Fatalf("%s: col count %d vs %d", id, len(s.Cols), len(p.Cols))
	}
	if len(s.Rows) != len(p.Rows) {
		t.Fatalf("%s: row count %d vs %d", id, len(s.Rows), len(p.Rows))
	}
	// Group rows by their non-float cells; compare float cells with
	// tolerance. Workload query outputs all carry their group columns, so
	// keys are unique per row (modulo genuinely identical rows, matched
	// greedily).
	type pending struct {
		row  []engine.Value
		used bool
	}
	byKey := map[string][]*pending{}
	keyOf := func(row []engine.Value) string {
		k := ""
		for _, v := range row {
			if _, isF := v.(float64); isF {
				k += "\x1ff"
				continue
			}
			k += "\x1f" + engine.GroupKey(v)
		}
		return k
	}
	for _, row := range s.Rows {
		k := keyOf(row)
		byKey[k] = append(byKey[k], &pending{row: row})
	}
	for ri, row := range p.Rows {
		k := keyOf(row)
		var match *pending
		for _, cand := range byKey[k] {
			if cand.used {
				continue
			}
			ok := true
			for j, v := range row {
				vf, isF := v.(float64)
				if !isF {
					continue
				}
				cf, cok := cand.row[j].(float64)
				if !cok {
					ok = false
					break
				}
				tol := 1e-9 * math.Max(1, math.Max(math.Abs(vf), math.Abs(cf)))
				if math.Abs(vf-cf) > tol {
					ok = false
					break
				}
			}
			if ok {
				match = cand
				break
			}
		}
		if match == nil {
			t.Fatalf("%s: parallel row %d %v has no serial counterpart", id, ri, row)
		}
		match.used = true
	}
}

// rowsIdentical requires byte-identical results: same columns, same row
// order, same dynamic types, float cells equal to the last bit. The serial
// vectorized scan consumes values in exactly the row order of the row-view
// path, so at parallelism 1 the two pipelines must agree bitwise.
func rowsIdentical(t *testing.T, id string, want, got *engine.ResultSet) {
	t.Helper()
	if len(want.Cols) != len(got.Cols) {
		t.Fatalf("%s: col count %d vs %d", id, len(want.Cols), len(got.Cols))
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: row count %d vs %d", id, len(want.Rows), len(got.Rows))
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			wv, gv := want.Rows[r][c], got.Rows[r][c]
			wf, wok := wv.(float64)
			gf, gok := gv.(float64)
			if wok || gok {
				if !wok || !gok || math.Float64bits(wf) != math.Float64bits(gf) {
					t.Fatalf("%s row %d col %d: %v (%T) vs %v (%T)", id, r, c, wv, wv, gv, gv)
				}
				continue
			}
			if wv != gv {
				t.Fatalf("%s row %d col %d: %v (%T) vs %v (%T)", id, r, c, wv, wv, gv, gv)
			}
		}
	}
}

// vecRowViewEquivalence runs every workload query on two identically
// loaded engines — one vectorized, one forced through the chunk row views
// — and requires byte-identical results, plus an order-insensitive match
// against a morsel-parallel vectorized engine.
func vecRowViewEquivalence(t *testing.T, load func(e *engine.Engine) error, queries []workload.Query) {
	t.Helper()
	vecEng := engine.NewSeeded(42)
	rowEng := engine.NewSeeded(42)
	parEng := engine.NewSeeded(42)
	for _, e := range []*engine.Engine{vecEng, rowEng, parEng} {
		if err := load(e); err != nil {
			t.Fatal(err)
		}
	}
	vecEng.SetParallelism(1)
	rowEng.SetParallelism(1)
	rowEng.SetVectorized(false)
	parEng.SetParallelism(8)
	for _, q := range queries {
		rsRow, err := rowEng.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s row-view: %v", q.ID, err)
		}
		rsVec, err := vecEng.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s vectorized: %v", q.ID, err)
		}
		rowsIdentical(t, q.ID, rsRow, rsVec)
		rsPar, err := parEng.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s parallel vectorized: %v", q.ID, err)
		}
		rowsEquivalent(t, q.ID, rsRow, rsPar)
	}
}

func TestTPCHVectorizedRowViewEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	vecRowViewEquivalence(t, func(e *engine.Engine) error {
		return workload.LoadTPCH(e, 0.02, 42)
	}, workload.TPCHQueries)
}

func TestInstaVectorizedRowViewEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	vecRowViewEquivalence(t, func(e *engine.Engine) error {
		return workload.LoadInsta(e, 0.02, 42)
	}, workload.InstaQueries)
}

// The same equivalence bar with every sealed chunk force-encoded: loading
// happens after the knob is set, so each workload column takes whichever
// encoding the override assigns it rather than what thresholds would pick.
func TestTPCHForcedEncodingsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Setenv("ENGINE_FORCE_ENCODINGS", "1")
	vecRowViewEquivalence(t, func(e *engine.Engine) error {
		return workload.LoadTPCH(e, 0.02, 42)
	}, workload.TPCHQueries)
}

func TestInstaForcedEncodingsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Setenv("ENGINE_FORCE_ENCODINGS", "1")
	vecRowViewEquivalence(t, func(e *engine.Engine) error {
		return workload.LoadInsta(e, 0.02, 42)
	}, workload.InstaQueries)
}

func TestTPCHParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial, parallel := loadedPair(t, func(e *engine.Engine) error {
		return workload.LoadTPCH(e, 0.02, 42)
	})
	for _, q := range workload.TPCHQueries {
		rsS, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s serial: %v", q.ID, err)
		}
		rsP, err := parallel.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s parallel: %v", q.ID, err)
		}
		rowsEquivalent(t, q.ID, rsS, rsP)
	}
	if parallel.ParallelScans() == 0 {
		t.Fatal("no TPC-H query took the parallel path")
	}
}

func TestInstaParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial, parallel := loadedPair(t, func(e *engine.Engine) error {
		return workload.LoadInsta(e, 0.02, 42)
	})
	for _, q := range workload.InstaQueries {
		rsS, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s serial: %v", q.ID, err)
		}
		rsP, err := parallel.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s parallel: %v", q.ID, err)
		}
		rowsEquivalent(t, q.ID, rsS, rsP)
	}
	if parallel.ParallelScans() == 0 {
		t.Fatal("no Insta query took the parallel path")
	}
}
