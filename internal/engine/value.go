// Package engine implements a from-scratch, in-memory relational SQL engine:
// storage, expression evaluation, hash joins, hash aggregation, window
// functions, sorting, and DDL/DML including CREATE TABLE AS SELECT.
//
// It is the substrate standing in for the off-the-shelf engines (Impala,
// Spark SQL, Redshift) of the VerdictDB paper: the middleware only ever
// talks to it through SQL strings, exactly as the paper requires. The engine
// deliberately has no approximation logic; everything approximate happens in
// the SQL that VerdictDB sends it.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a runtime SQL value: one of nil, bool, int64, float64, or string.
// Dates are ISO-8601 strings ("2006-01-02"), which order correctly under
// lexicographic comparison.
type Value = any

// ColType is a column's declared type.
type ColType int

// Column types. TAny is used for columns whose type could not be inferred.
const (
	TAny ColType = iota
	TBool
	TInt
	TFloat
	TString
)

func (t ColType) String() string {
	switch t {
	case TBool:
		return "BOOLEAN"
	case TInt:
		return "BIGINT"
	case TFloat:
		return "DOUBLE"
	case TString:
		return "STRING"
	}
	return "ANY"
}

// TypeFromSQL maps a SQL type keyword to a ColType.
func TypeFromSQL(name string) ColType {
	switch strings.ToUpper(name) {
	case "INT", "BIGINT", "INTEGER", "SMALLINT", "TINYINT":
		return TInt
	case "DOUBLE", "FLOAT", "DECIMAL", "REAL", "NUMERIC":
		return TFloat
	case "VARCHAR", "STRING", "CHAR", "TEXT", "DATE":
		return TString
	case "BOOLEAN", "BOOL":
		return TBool
	}
	return TAny
}

// InferType returns the ColType of a runtime value.
func InferType(v Value) ColType {
	switch v.(type) {
	case bool:
		return TBool
	case int64:
		return TInt
	case float64:
		return TFloat
	case string:
		return TString
	}
	return TAny
}

// Normalize converts convenience Go types (int, int32, float32) into the
// engine's canonical runtime types. Bulk-load APIs call it per cell.
func Normalize(v Value) Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case int16:
		return int64(x)
	case int8:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	}
	return v
}

// IsNull reports whether v is SQL NULL.
func IsNull(v Value) bool { return v == nil }

// ToFloat coerces a value to float64. The second return is false for NULL or
// non-numeric values.
func ToFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// ToInt coerces a value to int64.
func ToInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		return int64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		i, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if ferr != nil {
				return 0, false
			}
			return int64(f), true
		}
		return i, true
	}
	return 0, false
}

// ToBool coerces a value to a SQL boolean; NULL yields (false, false).
func ToBool(v Value) (bool, bool) {
	switch x := v.(type) {
	case bool:
		return x, true
	case int64:
		return x != 0, true
	case float64:
		return x != 0, true
	}
	return false, false
}

// ToStr renders a value as a string (used by hash01, concat, CSV output).
func ToStr(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	}
	return fmt.Sprintf("%v", v)
}

// Compare orders two non-null values: -1, 0, or +1. Numeric values compare
// numerically across int64/float64; strings lexically; bools false<true.
// Mixed incomparable types order by type tag for stable sorting.
func Compare(a, b Value) int {
	af, aok := numeric(a)
	bf, bok := numeric(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	as, aIsStr := a.(string)
	bs, bIsStr := b.(string)
	if aIsStr && bIsStr {
		return strings.Compare(as, bs)
	}
	ab, aIsB := a.(bool)
	bb, bIsB := b.(bool)
	if aIsB && bIsB {
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		}
		return 1
	}
	// Incomparable: order by type tag.
	ta, tb := InferType(a), InferType(b)
	switch {
	case ta < tb:
		return -1
	case ta > tb:
		return 1
	}
	return 0
}

func numeric(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// Equal reports SQL equality of two non-null values (numeric coercion
// applies).
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return false
	}
	return Compare(a, b) == 0
}

// keySep separates composite-key fragments in group/join/distinct keys.
const keySep = '\x1f'

// appendGroupKey appends the GroupKey encoding of v to dst without
// allocating. The scan hot path builds composite keys into one reusable
// buffer and only materializes a string when inserting a new map entry
// (map lookups go through the alloc-free string(buf) conversion).
// The encoding must stay byte-identical to GroupKey.
func appendGroupKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return appendGroupKeyNull(dst)
	case int64:
		return appendGroupKeyInt(dst, x)
	case float64:
		return appendGroupKeyFloat(dst, x)
	case string:
		return appendGroupKeyStr(dst, x)
	case bool:
		return appendGroupKeyBool(dst, x)
	}
	return append(dst, fmt.Sprintf("?%v", v)...)
}

// Typed variants of appendGroupKey used by the vectorized scan to render
// keys straight from chunk vectors without boxing. Encodings must stay
// byte-identical to GroupKey.

func appendGroupKeyNull(dst []byte) []byte { return append(dst, '\x00', 'N') }

func appendGroupKeyInt(dst []byte, x int64) []byte {
	dst = append(dst, 'i')
	return strconv.AppendInt(dst, x, 10)
}

func appendGroupKeyFloat(dst []byte, x float64) []byte {
	if x == float64(int64(x)) {
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, int64(x), 10)
	}
	dst = append(dst, 'f')
	return strconv.AppendFloat(dst, x, 'g', -1, 64)
}

func appendGroupKeyStr(dst []byte, x string) []byte {
	dst = append(dst, 's')
	return append(dst, x...)
}

func appendGroupKeyBool(dst []byte, x bool) []byte {
	if x {
		return append(dst, 'b', '1')
	}
	return append(dst, 'b', '0')
}

// GroupKey renders a value into a group-by key fragment. Numeric values that
// are integral produce identical fragments whether stored as int64 or
// float64, so GROUP BY keys match across representations.
func GroupKey(v Value) string {
	switch x := v.(type) {
	case nil:
		return "\x00N"
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case float64:
		if x == float64(int64(x)) {
			return "i" + strconv.FormatInt(int64(x), 10)
		}
		return "f" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s" + x
	case bool:
		if x {
			return "b1"
		}
		return "b0"
	}
	return fmt.Sprintf("?%v", v)
}
