package engine

import (
	"strings"

	"verdictdb/internal/sqlparser"
)

// This file lowers sqlparser.Expr trees into closure chains once per query,
// replacing the per-row tree walk of env.eval on the scan hot path. A
// compiled expression resolves every column reference at compile time (so
// row access is a direct index), bakes operators into per-op closures, and
// records purity. Pure compiled expressions may be evaluated concurrently
// by the morsel-parallel scan in parallel.go; impure ones (rand and
// friends) still benefit from compilation but run on the serial path so
// sampling stays deterministic.
//
// Anything the compiler cannot handle — subqueries (correlated or not),
// aggregate or window references, columns that only resolve in an
// enclosing scope — reports ok=false and execution falls back to the
// interpreted env.eval path unchanged.

// compiledExpr evaluates one expression against a row of the relation it
// was compiled for. Implementations must be reentrant: pure compiled
// expressions are called concurrently by parallel scan workers.
type compiledExpr func(row []Value) (Value, error)

// impureFuncs are the scalar functions whose result depends on engine RNG
// state. Queries containing them never take the parallel path.
var impureFuncs = map[string]bool{
	"rand": true, "random": true, "rand_poisson1": true,
}

type compiler struct {
	eng  *Engine
	rel  *relation
	pure bool
}

// compileExpr lowers e for rows of rel. ok=false means the expression needs
// the interpreted path; pure=false means the closure draws from the engine
// RNG and must run serially in row order.
func compileExpr(eng *Engine, rel *relation, e sqlparser.Expr) (fn compiledExpr, pure, ok bool) {
	c := &compiler{eng: eng, rel: rel, pure: true}
	fn, ok = c.compile(e)
	return fn, c.pure, ok
}

func (c *compiler) compile(e sqlparser.Expr) (compiledExpr, bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		v := x.Val
		return func([]Value) (Value, error) { return v, nil }, true
	case *sqlparser.ColumnRef:
		idx, err := c.rel.resolve(x.Table, x.Name)
		if err != nil {
			// May resolve in an enclosing scope (or not at all: the
			// interpreted path owns the error in either case).
			return nil, false
		}
		return func(row []Value) (Value, error) { return row[idx], nil }, true
	case *sqlparser.BinaryExpr:
		return c.compileBinary(x)
	case *sqlparser.UnaryExpr:
		return c.compileUnary(x)
	case *sqlparser.FuncCall:
		return c.compileFunc(x)
	case *sqlparser.CaseExpr:
		return c.compileCase(x)
	case *sqlparser.InExpr:
		return c.compileIn(x)
	case *sqlparser.BetweenExpr:
		xf, ok1 := c.compile(x.X)
		lo, ok2 := c.compile(x.Lo)
		hi, ok3 := c.compile(x.Hi)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		not := x.Not
		return func(row []Value) (Value, error) {
			v, err := xf(row)
			if err != nil {
				return nil, err
			}
			lv, err := lo(row)
			if err != nil {
				return nil, err
			}
			hv, err := hi(row)
			if err != nil {
				return nil, err
			}
			if v == nil || lv == nil || hv == nil {
				return nil, nil
			}
			in := Compare(v, lv) >= 0 && Compare(v, hv) <= 0
			return in != not, nil
		}, true
	case *sqlparser.LikeExpr:
		xf, ok1 := c.compile(x.X)
		pf, ok2 := c.compile(x.Pattern)
		if !ok1 || !ok2 {
			return nil, false
		}
		not := x.Not
		return func(row []Value) (Value, error) {
			v, err := xf(row)
			if err != nil {
				return nil, err
			}
			p, err := pf(row)
			if err != nil {
				return nil, err
			}
			if v == nil || p == nil {
				return nil, nil
			}
			return likeMatch(ToStr(v), ToStr(p)) != not, nil
		}, true
	case *sqlparser.IsNullExpr:
		xf, ok1 := c.compile(x.X)
		if !ok1 {
			return nil, false
		}
		not := x.Not
		return func(row []Value) (Value, error) {
			v, err := xf(row)
			if err != nil {
				return nil, err
			}
			return (v == nil) != not, nil
		}, true
	case *sqlparser.CastExpr:
		xf, ok1 := c.compile(x.X)
		if !ok1 {
			return nil, false
		}
		typ := x.Type
		return func(row []Value) (Value, error) {
			v, err := xf(row)
			if err != nil {
				return nil, err
			}
			return castValue(v, typ)
		}, true
	}
	// SubqueryExpr, ExistsExpr, IntervalExpr, anything unknown: interpreted.
	return nil, false
}

func (c *compiler) compileUnary(x *sqlparser.UnaryExpr) (compiledExpr, bool) {
	xf, ok := c.compile(x.X)
	if !ok {
		return nil, false
	}
	switch x.Op {
	case "-":
		return func(row []Value) (Value, error) {
			v, err := xf(row)
			if err != nil {
				return nil, err
			}
			switch n := v.(type) {
			case nil:
				return nil, nil
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, errCannotNegate(v)
		}, true
	case "NOT":
		return func(row []Value) (Value, error) {
			v, err := xf(row)
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, nil
			}
			b, ok := ToBool(v)
			if !ok {
				return nil, errNotNonBool(v)
			}
			return !b, nil
		}, true
	}
	return nil, false
}

func (c *compiler) compileBinary(x *sqlparser.BinaryExpr) (compiledExpr, bool) {
	switch x.Op {
	case "AND", "OR":
		lf, ok1 := c.compile(x.L)
		rf, ok2 := c.compile(x.R)
		if !ok1 || !ok2 {
			return nil, false
		}
		if x.Op == "AND" {
			return func(row []Value) (Value, error) {
				l, err := lf(row)
				if err != nil {
					return nil, err
				}
				if lb, ok := ToBool(l); ok && !lb {
					return false, nil
				}
				r, err := rf(row)
				if err != nil {
					return nil, err
				}
				if rb, ok := ToBool(r); ok && !rb {
					return false, nil
				}
				if l == nil || r == nil {
					return nil, nil
				}
				return true, nil
			}, true
		}
		return func(row []Value) (Value, error) {
			l, err := lf(row)
			if err != nil {
				return nil, err
			}
			if lb, ok := ToBool(l); ok && lb {
				return true, nil
			}
			r, err := rf(row)
			if err != nil {
				return nil, err
			}
			if rb, ok := ToBool(r); ok && rb {
				return true, nil
			}
			if l == nil || r == nil {
				return nil, nil
			}
			return false, nil
		}, true
	}

	// Date +/- INTERVAL.
	if iv, ok := x.R.(*sqlparser.IntervalExpr); ok && (x.Op == "+" || x.Op == "-") {
		lf, ok1 := c.compile(x.L)
		if !ok1 {
			return nil, false
		}
		neg := x.Op == "-"
		return func(row []Value) (Value, error) {
			l, err := lf(row)
			if err != nil {
				return nil, err
			}
			if l == nil {
				return nil, nil
			}
			return shiftDate(ToStr(l), iv, neg)
		}, true
	}

	lf, ok1 := c.compile(x.L)
	rf, ok2 := c.compile(x.R)
	if !ok1 || !ok2 {
		return nil, false
	}

	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		return c.compileCompare(x, lf, rf), true
	case "||":
		return func(row []Value) (Value, error) {
			l, err := lf(row)
			if err != nil {
				return nil, err
			}
			r, err := rf(row)
			if err != nil {
				return nil, err
			}
			if l == nil || r == nil {
				return nil, nil
			}
			return ToStr(l) + ToStr(r), nil
		}, true
	case "+", "-", "*", "/", "%":
		op := x.Op
		return func(row []Value) (Value, error) {
			l, err := lf(row)
			if err != nil {
				return nil, err
			}
			r, err := rf(row)
			if err != nil {
				return nil, err
			}
			if l == nil || r == nil {
				return nil, nil
			}
			return arith(op, l, r)
		}, true
	}
	return nil, false
}

// compileCompare builds a comparison closure. When the right side is a
// literal the common column-vs-constant shape gets a type-specialized fast
// path that skips the generic Compare dispatch.
func (c *compiler) compileCompare(x *sqlparser.BinaryExpr, lf, rf compiledExpr) compiledExpr {
	op := x.Op
	test := cmpTest(op)
	if lit, isLit := x.R.(*sqlparser.Literal); isLit && lit.Val != nil {
		switch rv := lit.Val.(type) {
		case string:
			return func(row []Value) (Value, error) {
				l, err := lf(row)
				if err != nil {
					return nil, err
				}
				if l == nil {
					return nil, nil
				}
				if ls, ok := l.(string); ok {
					return test(strings.Compare(ls, rv)), nil
				}
				return test(Compare(l, rv)), nil
			}
		case int64:
			// Compare coerces int64 through float64, so the fast path must
			// too: exact int64 comparison would diverge from the interpreted
			// path for magnitudes >= 2^53.
			rfloat := float64(rv)
			return func(row []Value) (Value, error) {
				l, err := lf(row)
				if err != nil {
					return nil, err
				}
				switch lv := l.(type) {
				case nil:
					return nil, nil
				case int64:
					return test(cmpFloat64(float64(lv), rfloat)), nil
				case float64:
					return test(cmpFloat64(lv, rfloat)), nil
				}
				return test(Compare(l, rv)), nil
			}
		case float64:
			return func(row []Value) (Value, error) {
				l, err := lf(row)
				if err != nil {
					return nil, err
				}
				switch lv := l.(type) {
				case nil:
					return nil, nil
				case int64:
					return test(cmpFloat64(float64(lv), rv)), nil
				case float64:
					return test(cmpFloat64(lv, rv)), nil
				}
				return test(Compare(l, rv)), nil
			}
		}
	}
	return func(row []Value) (Value, error) {
		l, err := lf(row)
		if err != nil {
			return nil, err
		}
		r, err := rf(row)
		if err != nil {
			return nil, err
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return test(Compare(l, r)), nil
	}
}

func cmpTest(op string) func(int) bool {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }
	case "<>":
		return func(c int) bool { return c != 0 }
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default: // ">="
		return func(c int) bool { return c >= 0 }
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func (c *compiler) compileFunc(x *sqlparser.FuncCall) (compiledExpr, bool) {
	if x.Over != nil || sqlparser.AggregateFuncs[x.Name] || x.Star {
		return nil, false
	}
	if impureFuncs[x.Name] {
		c.pure = false
	}
	args := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		af, ok := c.compile(a)
		if !ok {
			return nil, false
		}
		args[i] = af
	}

	// Fast paths for the hottest scan functions (substr over date columns is
	// all over the TPC-H group-by keys).
	switch x.Name {
	case "substr", "substring":
		if len(x.Args) == 3 {
			start, okS := literalInt(x.Args[1])
			length, okL := literalInt(x.Args[2])
			if okS && okL && start >= 1 && length >= 0 {
				sf := args[0]
				return func(row []Value) (Value, error) {
					v, err := sf(row)
					if err != nil {
						return nil, err
					}
					if v == nil {
						return nil, nil
					}
					s := ToStr(v)
					if int(start) > len(s) {
						return "", nil
					}
					rest := s[start-1:]
					if int(length) < len(rest) {
						rest = rest[:length]
					}
					return rest, nil
				}, true
			}
		}
	case "year":
		if len(x.Args) == 1 {
			sf := args[0]
			return func(row []Value) (Value, error) {
				v, err := sf(row)
				if err != nil {
					return nil, err
				}
				if v == nil {
					return nil, nil
				}
				s := ToStr(v)
				if len(s) >= 4 {
					if y, ok := ToInt(s[:4]); ok {
						return y, nil
					}
				}
				return nil, nil
			}, true
		}
	}

	name := x.Name
	eng := c.eng
	return func(row []Value) (Value, error) {
		vals := make([]Value, len(args))
		for i, af := range args {
			v, err := af(row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return callScalar(eng, name, vals)
	}, true
}

func literalInt(e sqlparser.Expr) (int64, bool) {
	lit, ok := e.(*sqlparser.Literal)
	if !ok {
		return 0, false
	}
	i, ok := lit.Val.(int64)
	return i, ok
}

func (c *compiler) compileCase(x *sqlparser.CaseExpr) (compiledExpr, bool) {
	type when struct{ cond, then compiledExpr }
	whens := make([]when, len(x.Whens))
	for i, w := range x.Whens {
		cf, ok1 := c.compile(w.Cond)
		tf, ok2 := c.compile(w.Then)
		if !ok1 || !ok2 {
			return nil, false
		}
		whens[i] = when{cond: cf, then: tf}
	}
	var elseF compiledExpr
	if x.Else != nil {
		ef, ok := c.compile(x.Else)
		if !ok {
			return nil, false
		}
		elseF = ef
	}
	if x.Operand != nil {
		opF, ok := c.compile(x.Operand)
		if !ok {
			return nil, false
		}
		return func(row []Value) (Value, error) {
			op, err := opF(row)
			if err != nil {
				return nil, err
			}
			for _, w := range whens {
				wv, err := w.cond(row)
				if err != nil {
					return nil, err
				}
				if op != nil && wv != nil && Compare(op, wv) == 0 {
					return w.then(row)
				}
			}
			if elseF != nil {
				return elseF(row)
			}
			return nil, nil
		}, true
	}
	return func(row []Value) (Value, error) {
		for _, w := range whens {
			cv, err := w.cond(row)
			if err != nil {
				return nil, err
			}
			if b, ok := ToBool(cv); ok && b {
				return w.then(row)
			}
		}
		if elseF != nil {
			return elseF(row)
		}
		return nil, nil
	}, true
}

func (c *compiler) compileIn(x *sqlparser.InExpr) (compiledExpr, bool) {
	if x.Subquery != nil {
		return nil, false
	}
	xf, ok := c.compile(x.X)
	if !ok {
		return nil, false
	}
	list := make([]compiledExpr, len(x.List))
	for i, le := range x.List {
		lf, ok := c.compile(le)
		if !ok {
			return nil, false
		}
		list[i] = lf
	}
	not := x.Not
	return func(row []Value) (Value, error) {
		v, err := xf(row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		for _, lf := range list {
			lv, err := lf(row)
			if err != nil {
				return nil, err
			}
			if lv != nil && Compare(v, lv) == 0 {
				return !not, nil
			}
		}
		return not, nil
	}, true
}
