package engine

import (
	"sync"

	"verdictdb/internal/faultpoint"
	"verdictdb/internal/sqlparser"
)

// Vectorized hash join with late materialization. The build (right) side is
// scanned chunk-at-a-time: join-key lanes render straight from typed chunk
// vectors into the shared group-key encoding (appendGroupKeyLane), and the
// hash table stores packed (chunkIdx, rowIdx) references — never boxed
// rows. The probe (left) side is scanned chunk-at-a-time too, handed out as
// morsels by parallelJoinProbe (parallel.go) and merged in chunk order, so
// output order is byte-identical to the serial row-at-a-time join at any
// parallelism. Each probe chunk emits one join-output chunk holding a pair
// of row-reference vectors (probe row index + build reference); downstream
// WHERE, GROUP BY, and aggregate kernels read columns through those
// references via joinGather, which copies a column into a typed vector only
// when some kernel first touches it. Boxed rows appear only at the
// ResultSet boundary (or per group representative), exactly like the
// scan-path contract from the columnar storage change.
//
// ON residuals (non-equi conjuncts) are evaluated with the same vector
// kernels over a candidate join-output chunk and refine the pair selection
// before LEFT/FULL null-extension and RIGHT/FULL matched-marking, so outer
// join semantics match the row path bit for bit. Joins that don't fit —
// impure ON expressions, subqueries in ON, no equi-key at all — keep the
// row path in joinRelations, and any chunk whose kernel evaluation errors
// is transparently re-run through the row-compiled closures before state is
// mutated, preserving error identity with the row path.

// nullRef marks a null-extended side in a join-output row reference.
const nullRef = int64(-1)

// packRef encodes a build-side row as chunk index << 32 | row index.
func packRef(ci, ri int) int64 { return int64(ci)<<32 | int64(ri) }

func unpackRef(r int64) (ci, ri int) { return int(r >> 32), int(uint32(r)) }

// joinBucket holds the build-side references sharing one join key, in build
// scan order.
type joinBucket struct{ refs []int64 }

// vecJoin is one lowered hash join: chunked inputs, vector kernels for the
// key and residual expressions, and their row-compiled fallbacks.
type vecJoin struct {
	qc     *queryCtx
	eng    *Engine
	jt     sqlparser.JoinType
	leftW  int
	rightW int

	probeChunks []*chunk
	buildChunks []*chunk
	nProbe      int
	nBuild      int
	buildStart  []int // flat row offset of each build chunk (matched bitmap index)

	// buildKinds caches, per build column, the storage kind shared by every
	// build chunk (TAny when chunks disagree), so gathers pick their typed
	// path once per join instead of per chunk.
	buildKinds []ColType

	lKeyNodes []vnode
	rKeyNodes []vnode
	lKeyFns   []compiledExpr // row fallback, same key encoding
	rKeyFns   []compiledExpr
	lNbuf     int
	rNbuf     int

	resFull  vnode   // nil when the join has no residual
	resConjs []vnode // top-level AND conjuncts of the residual
	resFn    compiledExpr
	resNbuf  int

	buckets map[string]*joinBucket
}

// relationChunks exposes a relation as columnar chunks: base-table scans
// resolve their source slots (loading segment-backed chunks); row-major
// relations (derived tables, row path outputs) are chunkified in place,
// keeping the boxed rows as the chunk row views.
func relationChunks(qc *queryCtx, r *relation) ([]*chunk, error) {
	if r.rows == nil && r.src != nil {
		return r.src.resolveAll(qc)
	}
	return chunkifyRows(r.rows, r.width()), nil
}

// buildVecJoin lowers an equi-join for the vectorized path, or returns nil
// when anything about it (impure or uncompilable keys, unlowerable
// residual) needs the row path. The error is a real failure — a
// segment-backed input chunk that could not be loaded.
func buildVecJoin(qc *queryCtx, left, right, combined *relation, jt sqlparser.JoinType,
	leftKeys, rightKeys []sqlparser.Expr, residual sqlparser.Expr) (*vecJoin, error) {
	eng := qc.eng
	vj := &vecJoin{qc: qc, eng: eng, jt: jt, leftW: left.width(), rightW: right.width()}

	lc := &vecCompiler{eng: eng, rel: left}
	for _, k := range leftKeys {
		n := lc.lower(k)
		if n == nil {
			return nil, nil
		}
		vj.lKeyNodes = append(vj.lKeyNodes, n) //verdict:nocharge plan-size: one vnode per join key
	}
	vj.lNbuf = lc.nbuf
	rc := &vecCompiler{eng: eng, rel: right}
	for _, k := range rightKeys {
		n := rc.lower(k)
		if n == nil {
			return nil, nil
		}
		vj.rKeyNodes = append(vj.rKeyNodes, n) //verdict:nocharge plan-size: one vnode per join key
	}
	vj.rNbuf = rc.nbuf

	// Row-compiled fallbacks: lowering succeeded, so these compile too —
	// the nil checks are belt and braces.
	if vj.lKeyFns = compileKeyFns(eng, left, leftKeys); vj.lKeyFns == nil {
		return nil, nil
	}
	if vj.rKeyFns = compileKeyFns(eng, right, rightKeys); vj.rKeyFns == nil {
		return nil, nil
	}

	if residual != nil {
		cc := &vecCompiler{eng: eng, rel: combined}
		vj.resFull, vj.resConjs = cc.lowerWhere(residual)
		if vj.resFull == nil {
			return nil, nil
		}
		vj.resNbuf = cc.nbuf
		fn, _, ok := compileExpr(eng, combined, residual)
		if !ok {
			return nil, nil
		}
		vj.resFn = fn
	}

	var err error
	vj.probeChunks, err = relationChunks(qc, left)
	if err != nil {
		return nil, err
	}
	vj.buildChunks, err = relationChunks(qc, right)
	if err != nil {
		return nil, err
	}
	for _, ch := range vj.probeChunks {
		vj.nProbe += ch.n
	}
	vj.buildKinds = make([]ColType, vj.rightW)
	for j := range vj.buildKinds {
		kind := ColType(-1)
		//verdict:nopoll plan-time lane-type resolution: O(1) colKind read per chunk
		for _, ch := range vj.buildChunks {
			k := ch.colKind(j)
			if kind == -1 {
				kind = k
			} else if kind != k {
				kind = TAny
				break
			}
		}
		if kind == -1 {
			kind = TAny
		}
		vj.buildKinds[j] = kind
	}
	return vj, nil
}

// run executes the join: serial hash build, then morsel-parallel probe with
// output chunks concatenated in probe-chunk order. The result is the
// combined relation's columnar source.
func (vj *vecJoin) run() (*colSource, error) {
	if err := vj.buildHash(); err != nil {
		return nil, err
	}
	needMatched := vj.jt == sqlparser.RightJoin || vj.jt == sqlparser.FullJoin
	out, matched, err := parallelJoinProbe(vj, needMatched)
	if err != nil {
		return nil, err
	}
	if needMatched {
		tc, err := vj.trailingChunk(matched)
		if err != nil {
			return nil, err
		}
		if tc != nil {
			out = append(out, tc)
		}
	}
	n := 0
	slots := make([]chunkSlot, len(out)) //verdict:nocharge slot-pointer headers over join-output chunks charged during the probe
	for i, ch := range out {
		n += ch.n
		slots[i] = ch
	}
	return &colSource{sealed: slots, nrows: n}, nil
}

func (vj *vecJoin) insert(key []byte, ref int64) {
	b, ok := vj.buckets[string(key)]
	if !ok {
		b = &joinBucket{}
		vj.buckets[string(key)] = b //verdict:nocharge buildHash pre-charges bytesPerRef per build row before inserting the chunk
	}
	b.refs = append(b.refs, ref) //verdict:nocharge covered by buildHash's per-chunk charge
}

// buildHash scans the build side chunk-at-a-time, rendering key lanes from
// typed vectors; rows with a NULL key component never enter the table,
// matching the row path. A chunk whose key kernel errors is re-run through
// the row-compiled keys, so error identity matches a serial row scan.
func (vj *vecJoin) buildHash() error {
	vj.buckets = make(map[string]*joinBucket)
	vc := newVecCtx(vj.rNbuf, 0, 0, 0)
	keys := make([]*vec, len(vj.rKeyNodes))
	var kbuf []byte
	start := 0
	for ci, ch := range vj.buildChunks {
		if err := vj.qc.pollAbort(); err != nil {
			return err
		}
		if err := faultpoint.Hit(faultpoint.SiteEngineJoinBuild); err != nil {
			return err
		}
		// Build-side entries: one packed reference per non-NULL-key row,
		// plus bucket overhead folded into the flat per-row estimate.
		vj.qc.chargeMem(int64(ch.n) * bytesPerRef)
		vj.buildStart = append(vj.buildStart, start)
		kernelOK := true
		for i, kn := range vj.rKeyNodes {
			v, err := kn.eval(vc, ch, nil)
			if err != nil {
				kernelOK = false
				break
			}
			keys[i] = v
		}
		if !kernelOK {
			if err := vj.buildChunkRows(ch, ci); err != nil {
				return err
			}
			start += ch.n
			continue
		}
		for k := 0; k < ch.n; k++ {
			kbuf = kbuf[:0]
			null := false
			for _, kv := range keys {
				if kv.isNull(k) {
					null = true
					break
				}
				kbuf = appendGroupKeyLane(kbuf, kv, k)
				kbuf = append(kbuf, keySep)
			}
			if null {
				continue
			}
			vj.insert(kbuf, packRef(ci, k))
		}
		start += ch.n
	}
	vj.nBuild = start
	return nil
}

// buildChunkRows is the per-chunk row fallback for the hash build.
func (vj *vecJoin) buildChunkRows(ch *chunk, ci int) error {
	var kbuf []byte
	for ri, row := range ch.rows() {
		kbuf = kbuf[:0]
		null := false
		for _, fn := range vj.rKeyFns {
			v, err := fn(row)
			if err != nil {
				return err
			}
			if v == nil {
				null = true
				break
			}
			kbuf = appendGroupKey(kbuf, v)
			kbuf = append(kbuf, keySep)
		}
		if null {
			continue
		}
		vj.insert(kbuf, packRef(ci, ri))
	}
	return nil
}

func (vj *vecJoin) flat(ref int64) int {
	ci, ri := unpackRef(ref)
	return vj.buildStart[ci] + ri
}

// probeCtx is one probe worker's private state.
type probeCtx struct {
	kc      *vecCtx // key kernel buffers
	rc      *vecCtx // residual kernel buffers
	keys    []*vec
	kbuf    []byte
	matched []bool // build-side matched flags (RIGHT/FULL only)
}

func (vj *vecJoin) newProbeCtx(needMatched bool) *probeCtx {
	pc := &probeCtx{kc: newVecCtx(vj.lNbuf, 0, 0, 0), keys: make([]*vec, len(vj.lKeyNodes))}
	if vj.resFull != nil {
		pc.rc = newVecCtx(vj.resNbuf, 0, 0, 0)
	}
	if needMatched {
		pc.matched = make([]bool, vj.nBuild)
	}
	return pc
}

// probeChunk joins one probe chunk against the hash table, returning the
// join-output chunk (nil when no output rows). Pair order replicates the
// row path exactly: probe rows in order, matches within a probe row in
// build insertion order, LEFT/FULL null-extension in place.
func (vj *vecJoin) probeChunk(pc *probeCtx, ch *chunk) (*chunk, error) {
	for i, kn := range vj.lKeyNodes {
		v, err := kn.eval(pc.kc, ch, nil)
		if err != nil {
			return vj.probeChunkRows(pc, ch)
		}
		pc.keys[i] = v
	}

	// Candidate pairs from the hash probe, pre-sized for the common
	// at-most-one-match case.
	sel := make([]int32, 0, ch.n)
	refs := make([]int64, 0, ch.n)
	for k := 0; k < ch.n; k++ {
		pc.kbuf = pc.kbuf[:0]
		null := false
		for _, kv := range pc.keys {
			if kv.isNull(k) {
				null = true
				break
			}
			pc.kbuf = appendGroupKeyLane(pc.kbuf, kv, k)
			pc.kbuf = append(pc.kbuf, keySep)
		}
		if null {
			continue
		}
		if b, ok := vj.buckets[string(pc.kbuf)]; ok {
			for _, r := range b.refs {
				sel = append(sel, int32(k))
				refs = append(refs, r)
			}
		}
	}

	// Residual refinement over the candidate pairs, using the same vector
	// kernels a downstream WHERE would. When the residual keeps every pair,
	// the candidate chunk (with whatever columns the residual already
	// gathered) is reused as the output chunk.
	var cand *chunk
	if vj.resFull != nil && len(sel) > 0 {
		cand = vj.newJoinChunk(ch, sel, refs)
		rsel, all, err := evalFilter(pc.rc, cand, vj.resFull, vj.resConjs)
		if err != nil {
			return vj.probeChunkRows(pc, ch)
		}
		if !all {
			ns := make([]int32, len(rsel))
			nr := make([]int64, len(rsel))
			for i, x := range rsel {
				ns[i] = sel[x]
				nr[i] = refs[x]
			}
			sel, refs = ns, nr
			cand = nil
		}
	}

	// LEFT/FULL: null-extend probe rows with no surviving pair, in place.
	if vj.jt == sqlparser.LeftJoin || vj.jt == sqlparser.FullJoin {
		ns := make([]int32, 0, len(sel)+ch.n)
		nr := make([]int64, 0, len(refs)+ch.n)
		p := 0
		for k := 0; k < ch.n; k++ {
			had := false
			for p < len(sel) && sel[p] == int32(k) {
				ns = append(ns, sel[p])
				nr = append(nr, refs[p])
				p++
				had = true
			}
			if !had {
				ns = append(ns, int32(k))
				nr = append(nr, nullRef)
			}
		}
		if len(ns) != len(sel) {
			sel, refs = ns, nr
			cand = nil
		}
	}

	if pc.matched != nil {
		for _, r := range refs {
			if r >= 0 {
				pc.matched[vj.flat(r)] = true
			}
		}
	}

	if len(sel) == 0 {
		return nil, nil
	}
	if cand != nil {
		return cand, nil
	}
	return vj.newJoinChunk(ch, sel, refs), nil
}

// probeChunkRows is the per-chunk row fallback for the probe: the same
// per-row key render + bucket walk + residual loop as the row-path join,
// emitting references instead of combined rows.
func (vj *vecJoin) probeChunkRows(pc *probeCtx, ch *chunk) (*chunk, error) {
	var sel []int32
	var refs []int64
	var combinedBuf []Value
	if vj.resFn != nil {
		combinedBuf = make([]Value, vj.leftW+vj.rightW)
	}
	for k, lrow := range ch.rows() {
		pc.kbuf = pc.kbuf[:0]
		null := false
		for _, fn := range vj.lKeyFns {
			v, err := fn(lrow)
			if err != nil {
				return nil, err
			}
			if v == nil {
				null = true
				break
			}
			pc.kbuf = appendGroupKey(pc.kbuf, v)
			pc.kbuf = append(pc.kbuf, keySep)
		}
		matchedLeft := false
		if !null {
			if b, ok := vj.buckets[string(pc.kbuf)]; ok {
				for _, r := range b.refs {
					if vj.resFn != nil {
						ci, ri := unpackRef(r)
						copy(combinedBuf, lrow)
						copy(combinedBuf[vj.leftW:], vj.buildChunks[ci].rows()[ri])
						v, err := vj.resFn(combinedBuf)
						if err != nil {
							return nil, err
						}
						if ok2, isB := ToBool(v); !isB || !ok2 {
							continue
						}
					}
					matchedLeft = true
					sel = append(sel, int32(k))
					refs = append(refs, r)
				}
			}
		}
		if !matchedLeft && (vj.jt == sqlparser.LeftJoin || vj.jt == sqlparser.FullJoin) {
			sel = append(sel, int32(k))
			refs = append(refs, nullRef)
		}
	}
	if pc.matched != nil {
		for _, r := range refs {
			if r >= 0 {
				pc.matched[vj.flat(r)] = true
			}
		}
	}
	if len(sel) == 0 {
		return nil, nil
	}
	return vj.newJoinChunk(ch, sel, refs), nil
}

// trailingChunk emits the unmatched build rows of a RIGHT/FULL join after
// every probe morsel has merged its matched flags, in build order — the row
// path's order. NULL-key build rows never entered a bucket, so their flags
// never set: they null-extend here, as SQL requires.
func (vj *vecJoin) trailingChunk(matched []bool) (*chunk, error) {
	var refs []int64
	flat := 0
	for ci, ch := range vj.buildChunks {
		if err := vj.qc.pollAbort(); err != nil {
			return nil, err
		}
		for ri := 0; ri < ch.n; ri++ {
			if !matched[flat] {
				refs = append(refs, packRef(ci, ri))
			}
			flat++
		}
	}
	if len(refs) == 0 {
		return nil, nil
	}
	sel := make([]int32, len(refs))
	for i := range sel {
		sel[i] = -1
	}
	return vj.newJoinChunk(nil, sel, refs), nil
}

// newJoinChunk wraps a pair of row-reference vectors as a join-output
// chunk; columns gather lazily (joinGather) when kernels touch them.
func (vj *vecJoin) newJoinChunk(probe *chunk, sel []int32, refs []int64) *chunk {
	vj.qc.chargeMem(int64(len(sel)) * 2 * bytesPerRef)
	w := vj.leftW + vj.rightW
	return &chunk{
		cols: make([]colVec, w),
		n:    len(sel),
		gather: &joinGather{
			j: vj, probe: probe, probeSel: sel, refs: refs,
			filled: make([]bool, w),
		},
	}
}

// joinGather is the late-materialization state of one join-output chunk:
// per-row references into the probe chunk and the build chunks. fill copies
// one column into a typed vector on first touch; valueAt boxes single cells
// straight through the references (group representatives, fallback row
// views) without gathering whole columns.
type joinGather struct {
	j        *vecJoin
	probe    *chunk  // nil for the trailing unmatched-build chunk
	probeSel []int32 // probe row per output row; -1 = null-extended probe side
	refs     []int64 // packed build ref per output row; nullRef = null-extended build side

	mu     sync.Mutex
	filled []bool //verdict:guardedby mu
}

func (g *joinGather) fill(c *chunk, j int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.filled[j] {
		return
	}
	// A gathered column is one typed vector of c.n slots. fill has no error
	// path, so the charge surfaces at the caller's next poll.
	g.j.qc.chargeMem(int64(c.n) * bytesPerRef)
	if j < g.j.leftW {
		g.fillProbe(c, j)
	} else {
		g.fillBuild(c, j)
	}
	g.filled[j] = true
}

func gatherNull(cv *colVec, n, k int) {
	if cv.nulls == nil {
		cv.nulls = make([]bool, n)
	}
	cv.nulls[k] = true
}

// fillProbe gathers probe-side column j through probeSel. Sources may
// themselves be join-output chunks (multi-way joins); col() recurses.
func (g *joinGather) fillProbe(c *chunk, j int) {
	cv := &c.cols[j]
	n := c.n
	if g.probe == nil {
		cv.kind = TAny
		cv.anys = make([]Value, n)
		return
	}
	scv := g.probe.col(j)
	cv.kind = scv.kind
	switch scv.kind {
	case TInt:
		cv.ints = make([]int64, n)
		for k, i := range g.probeSel {
			if i < 0 || scv.isNull(int(i)) {
				gatherNull(cv, n, k)
				continue
			}
			cv.ints[k] = scv.intAt(int(i))
		}
	case TFloat:
		cv.floats = make([]float64, n)
		for k, i := range g.probeSel {
			if i < 0 || scv.isNull(int(i)) {
				gatherNull(cv, n, k)
				continue
			}
			cv.floats[k] = scv.floatAt(int(i))
		}
	case TString:
		if scv.enc == encDict {
			// Share the source dictionary and gather only codes: the
			// join-output column stays coded, so downstream group-by/filter
			// kernels keep their code-comparison fast paths.
			cv.enc = encDict
			cv.dict, cv.dictBoxed = scv.dict, scv.dictBoxed
			cv.codes = make([]uint32, n)
			for k, i := range g.probeSel {
				if i < 0 || scv.isNull(int(i)) {
					gatherNull(cv, n, k)
					continue
				}
				cv.codes[k] = scv.codes[i]
			}
			return
		}
		cv.strs = make([]string, n)
		for k, i := range g.probeSel {
			if i < 0 || scv.isNull(int(i)) {
				gatherNull(cv, n, k)
				continue
			}
			cv.strs[k] = scv.strAt(int(i))
		}
	case TBool:
		cv.bools = make([]bool, n)
		for k, i := range g.probeSel {
			if i < 0 || scv.isNull(int(i)) {
				gatherNull(cv, n, k)
				continue
			}
			cv.bools[k] = scv.boolAt(int(i))
		}
	default:
		cv.anys = make([]Value, n)
		for k, i := range g.probeSel {
			if i >= 0 {
				cv.anys[k] = scv.anys[i]
			}
		}
	}
}

// fillBuild gathers build-side column j (combined index) through the refs.
// The typed paths apply when every build chunk stores the column with one
// kind; disagreeing chunks (rare: schema-on-read mixes) gather boxed.
func (g *joinGather) fillBuild(c *chunk, j int) {
	cv := &c.cols[j]
	n := c.n
	bj := j - g.j.leftW
	chs := g.j.buildChunks
	srcs := make([]*colVec, len(chs))
	getCol := func(ci int) *colVec {
		if srcs[ci] == nil {
			srcs[ci] = chs[ci].col(bj)
		}
		return srcs[ci]
	}
	kind := g.j.buildKinds[bj]
	cv.kind = kind
	switch kind {
	case TInt:
		cv.ints = make([]int64, n)
		for k, r := range g.refs {
			if r < 0 {
				gatherNull(cv, n, k)
				continue
			}
			ci, ri := unpackRef(r)
			scv := getCol(ci)
			if scv.isNull(ri) {
				gatherNull(cv, n, k)
				continue
			}
			cv.ints[k] = scv.intAt(ri)
		}
	case TFloat:
		cv.floats = make([]float64, n)
		for k, r := range g.refs {
			if r < 0 {
				gatherNull(cv, n, k)
				continue
			}
			ci, ri := unpackRef(r)
			scv := getCol(ci)
			if scv.isNull(ri) {
				gatherNull(cv, n, k)
				continue
			}
			cv.floats[k] = scv.floatAt(ri)
		}
	case TString:
		// Build chunks can disagree on dictionaries (one per chunk), so the
		// build side always materializes strings.
		cv.strs = make([]string, n)
		for k, r := range g.refs {
			if r < 0 {
				gatherNull(cv, n, k)
				continue
			}
			ci, ri := unpackRef(r)
			scv := getCol(ci)
			if scv.isNull(ri) {
				gatherNull(cv, n, k)
				continue
			}
			cv.strs[k] = scv.strAt(ri)
		}
	case TBool:
		cv.bools = make([]bool, n)
		for k, r := range g.refs {
			if r < 0 {
				gatherNull(cv, n, k)
				continue
			}
			ci, ri := unpackRef(r)
			scv := getCol(ci)
			if scv.isNull(ri) {
				gatherNull(cv, n, k)
				continue
			}
			cv.bools[k] = scv.boolAt(ri)
		}
	default:
		cv.kind = TAny
		cv.anys = make([]Value, n)
		for k, r := range g.refs {
			if r >= 0 {
				ci, ri := unpackRef(r)
				cv.anys[k] = chs[ci].valueAt(bj, ri)
			}
		}
	}
}

// kindOf reports a column's storage kind without gathering it.
func (g *joinGather) kindOf(j int) ColType {
	if j < g.j.leftW {
		if g.probe == nil {
			return TAny
		}
		return g.probe.colKind(j)
	}
	return g.j.buildKinds[j-g.j.leftW]
}

// valueAt boxes one cell through the references.
func (g *joinGather) valueAt(j, i int) Value {
	if j < g.j.leftW {
		si := g.probeSel[i]
		if si < 0 {
			return nil
		}
		return g.probe.valueAt(j, int(si))
	}
	r := g.refs[i]
	if r < 0 {
		return nil
	}
	ci, ri := unpackRef(r)
	return g.j.buildChunks[ci].valueAt(j-g.j.leftW, ri)
}
