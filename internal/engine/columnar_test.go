package engine

import (
	"fmt"
	"sync"
	"testing"
)

// Tests for the columnar chunked storage layer: seal boundaries, seal-time
// zone maps with chunk pruning, row-view materialization, column-name
// ambiguity surfacing, and consistency under concurrent appends.

// sealedChunk resolves table tbl's i-th sealed slot to its decoded chunk —
// resident in memory, or loaded from a segment when ENGINE_SPILL moved it
// to disk (white-box encoding assertions hold either way: the storage
// layer round-trips chunk layouts byte for byte).
func sealedChunk(t testing.TB, tbl *Table, i int) *chunk {
	t.Helper()
	ch, err := tbl.sealed[i].load(nil)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestChunkSealBoundaries(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("t", []Column{
		{Name: "x", Type: TInt}, {Name: "s", Type: TString},
	}); err != nil {
		t.Fatal(err)
	}
	total := 2*chunkRows + 88
	for i := 0; i < total; i++ {
		if err := e.InsertRows("t", [][]Value{{int64(i), fmt.Sprintf("v%d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := e.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.sealed) != 2 || len(tbl.tail) != 88 {
		t.Fatalf("sealed %d tail %d", len(tbl.sealed), len(tbl.tail))
	}
	if tbl.NumRows() != total || e.RowCount("t") != total {
		t.Fatalf("row count %d / %d", tbl.NumRows(), e.RowCount("t"))
	}
	// Sealed chunks carry typed vectors and seal-time zone summaries.
	c0 := sealedChunk(t, tbl, 0).cols[0]
	if c0.kind != TInt || c0.min != int64(0) || c0.max != int64(chunkRows-1) {
		t.Fatalf("chunk 0 zone: kind %v min %v max %v", c0.kind, c0.min, c0.max)
	}
	c1 := sealedChunk(t, tbl, 1).cols[0]
	if c1.min != int64(chunkRows) || c1.max != int64(2*chunkRows-1) {
		t.Fatalf("chunk 1 zone: min %v max %v", c1.min, c1.max)
	}
	// Full scan sees every row exactly once.
	rs, err := e.Query("select count(*), sum(x) from t")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := int64(total) * int64(total-1) / 2
	if rs.Rows[0][0].(int64) != int64(total) || rs.Rows[0][1].(int64) != wantSum {
		t.Fatalf("scan over chunks+tail: %v", rs.Rows[0])
	}
}

func TestChunkMixedTypesAndNulls(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("m", []Column{{Name: "v", Type: TAny}}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, chunkRows)
	for i := range rows {
		switch i % 4 {
		case 0:
			rows[i] = []Value{int64(i)}
		case 1:
			rows[i] = []Value{float64(i) + 0.5}
		case 2:
			rows[i] = []Value{nil}
		default:
			rows[i] = []Value{fmt.Sprintf("s%d", i)}
		}
	}
	if err := e.InsertRows("m", rows); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Lookup("m")
	if len(tbl.sealed) != 1 {
		t.Fatalf("expected 1 sealed chunk, got %d", len(tbl.sealed))
	}
	if sealedChunk(t, tbl, 0).cols[0].kind != TAny {
		t.Fatalf("mixed column should store boxed, got %v", sealedChunk(t, tbl, 0).cols[0].kind)
	}
	// The row view must reproduce the original dynamic types bit for bit.
	got := sealedChunk(t, tbl, 0).rows()
	for i := range rows {
		if got[i][0] != rows[i][0] {
			t.Fatalf("row %d: %v (%T) vs %v (%T)", i, got[i][0], got[i][0], rows[i][0], rows[i][0])
		}
	}
	// NULL-aware aggregation over the boxed chunk.
	rs, err := e.Query("select count(*), count(v) from m")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].(int64) != int64(chunkRows) || rs.Rows[0][1].(int64) != int64(chunkRows-chunkRows/4) {
		t.Fatalf("null counting over boxed chunk: %v", rs.Rows[0])
	}
}

func TestZonePruningSkipsChunks(t *testing.T) {
	e := NewSeeded(1)
	if err := e.CreateTable("z", []Column{
		{Name: "blk", Type: TInt}, {Name: "x", Type: TFloat},
	}); err != nil {
		t.Fatal(err)
	}
	// Clustered by blk, 4 sealed chunks + a tail.
	total := 4*chunkRows + 100
	rows := make([][]Value, total)
	for i := range rows {
		rows[i] = []Value{int64(i/chunkRows + 1), float64(i)}
	}
	if err := e.InsertRows("z", rows); err != nil {
		t.Fatal(err)
	}
	// Qualified column-vs-literal conjuncts push into the scan: a blk <= 1
	// prefix keeps chunk 0 plus the always-scanned tail.
	rs, err := e.Query("select count(*) from z where z.blk <= 1")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].(int64) != chunkRows {
		t.Fatalf("count: %v", rs.Rows[0][0])
	}
	if want := int64(chunkRows + 100); rs.RowsScanned != want {
		t.Fatalf("pruned scan read %d rows, want %d", rs.RowsScanned, want)
	}
	// Unqualified references never prune (could bind to either join side).
	rs2, err := e.Query("select count(*) from z where blk <= 1")
	if err != nil {
		t.Fatal(err)
	}
	if rs2.RowsScanned != int64(total) {
		t.Fatalf("unqualified conjunct pruned: scanned %d", rs2.RowsScanned)
	}
	// Pruning must not change results, only the scanned count.
	if rs2.Rows[0][0].(int64) != chunkRows {
		t.Fatalf("count without pruning: %v", rs2.Rows[0][0])
	}
}

func TestColIndexAmbiguity(t *testing.T) {
	tbl := &Table{Cols: []Column{
		{Name: "Price"}, {Name: "price"}, {Name: "qty"},
	}}
	tbl.initColIndex()
	if got := tbl.ColIndex("PRICE"); got != AmbiguousColIndex {
		t.Fatalf("duplicate lowercase name resolved to %d, want AmbiguousColIndex", got)
	}
	if got := tbl.ColIndex("qty"); got != 2 {
		t.Fatalf("qty -> %d", got)
	}
	if got := tbl.ColIndex("missing"); got != -1 {
		t.Fatalf("missing -> %d", got)
	}
	// Without the prebuilt index (hand-constructed tables) the linear scan
	// must agree.
	plain := &Table{Cols: tbl.Cols}
	if got := plain.ColIndex("price"); got != AmbiguousColIndex {
		t.Fatalf("linear scan resolved duplicate to %d", got)
	}
	// ResultSet lookups go through the same index.
	rs := &ResultSet{Cols: []string{"a", "A", "b"}}
	if got := rs.ColIndex("a"); got != AmbiguousColIndex {
		t.Fatalf("ResultSet duplicate -> %d", got)
	}
	if got := rs.ColIndex("b"); got != 2 {
		t.Fatalf("ResultSet b -> %d", got)
	}
}

// TestConcurrentAppendsConsistentPrefix hammers a table with concurrent
// single-row appends (which seal chunks as they fill) while readers run
// vectorized aggregates; every reader must observe a consistent append-only
// prefix: count(*) equals sum(x) for x == 1 rows and never decreases.
func TestConcurrentAppendsConsistentPrefix(t *testing.T) {
	e := NewSeeded(9)
	if err := e.CreateTable("s", []Column{
		{Name: "x", Type: TInt}, {Name: "b", Type: TInt},
	}); err != nil {
		t.Fatal(err)
	}
	seed := make([][]Value, parallelMinRows)
	for i := range seed {
		seed[i] = []Value{int64(1), int64(i / 64)}
	}
	if err := e.InsertRows("s", seed); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter, readers = 4, 600, 4
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := e.InsertRows("s", [][]Value{{int64(1), int64(w*perWriter + i)}}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(0)
			for i := 0; i < 40; i++ {
				rs, err := e.Query("select count(*) as c, sum(x) as s from s")
				if err != nil {
					errCh <- err
					return
				}
				c := rs.Rows[0][0].(int64)
				s, _ := ToInt(rs.Rows[0][1])
				if c != s {
					errCh <- fmt.Errorf("torn snapshot: count %d != sum %d", c, s)
					return
				}
				if c < last {
					errCh <- fmt.Errorf("row count went backwards: %d -> %d", last, c)
					return
				}
				last = c
				// Grouped + zone-prunable shapes under churn.
				if _, err := e.Query("select b, count(*) from s where s.b <= 10 group by b"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := int64(parallelMinRows + writers*perWriter)
	rs, err := e.Query("select count(*) from s")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].(int64); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
}
