package engine

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory columnar table: sealed immutable chunks of typed
// vectors plus an open row-major tail (see columnar.go). Rows are
// append-only; readers take a snapshot of the chunk and tail slice headers
// under the engine lock, so concurrent queries see a consistent prefix.
type Table struct {
	Name string
	Cols []Column

	sealed []chunkSlot // immutable chunkRows-row columnar chunks, resident or segment-backed
	tail   [][]Value   // open rows not yet sealed (< chunkRows)
	nrows  int

	// Persistence bookkeeping (persist.go), mutated only by the flusher
	// under the engine write lock. persisted counts the leading sealed
	// slots durably backed by segment files; flushedTailSeals/Len identify
	// the tail generation (sealing replaces the tail slice, so the sealed
	// count names the generation) and length mirrored by the on-disk tail
	// segment.
	persisted        int
	flushedTailSeals int
	flushedTailLen   int

	// colIdx maps lowercase column names to positions. The engine builds it
	// when it registers a table (columns are immutable afterwards); tables
	// constructed by hand fall back to a linear scan.
	colIdx map[string]int
}

// AmbiguousColIndex is returned by ColIndex when the name matches more than
// one column case-insensitively. It is negative, so callers that only probe
// for existence (idx < 0) keep working — but callers that would otherwise
// silently read the first match can now tell ambiguity from absence.
const AmbiguousColIndex = -2

// buildLowerIndex maps lowercase names to their position; names shared by
// several columns map to AmbiguousColIndex rather than the first match.
func buildLowerIndex(names []string) map[string]int {
	m := make(map[string]int, len(names))
	for i, n := range names {
		low := strings.ToLower(n)
		if _, dup := m[low]; dup {
			m[low] = AmbiguousColIndex
		} else {
			m[low] = i
		}
	}
	return m
}

func (t *Table) initColIndex() {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	t.colIdx = buildLowerIndex(names)
}

// ColIndex returns the index of the named column (case-insensitive), -1
// when absent, or AmbiguousColIndex when several columns share the name.
func (t *Table) ColIndex(name string) int {
	if t.colIdx != nil {
		if i, ok := t.colIdx[strings.ToLower(name)]; ok {
			return i
		}
		return -1
	}
	idx := -1
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			if idx >= 0 {
				return AmbiguousColIndex
			}
			idx = i
		}
	}
	return idx
}

// Engine is an in-memory SQL database. All access is through SQL via Exec
// and Query, plus bulk-load helpers for test and workload data.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*Table //verdict:guardedby mu

	rngMu sync.Mutex
	rng   rngSource

	// maxPar caps scan parallelism; 0 means GOMAXPROCS. parallelScans
	// counts scans that actually fanned out (tests assert the fallback).
	maxPar        atomic.Int32
	parallelScans atomic.Int64

	// noVec disables the vectorized chunk-at-a-time execution path,
	// forcing every query through the row-view fallback. Test knob for
	// columnar ≡ row-view parity checks.
	noVec atomic.Bool

	// memBudget is the default per-query memory budget in bytes (0 = none);
	// see SetMemoryBudget and WithMemoryBudget in lifecycle.go.
	memBudget atomic.Int64

	// dd is the optional persistent data directory (persist.go); nil for
	// pure in-memory engines.
	dd atomic.Pointer[dataDir]
}

// SetParallelism caps the number of workers a single scan may use. n = 1
// forces every query onto the serial path; n <= 0 restores the default
// (GOMAXPROCS).
func (e *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.maxPar.Store(int32(n))
}

// Parallelism reports the current scan-parallelism cap.
func (e *Engine) Parallelism() int {
	if p := e.maxPar.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// SetVectorized toggles the vectorized execution path (on by default).
// With it off, scans read through the chunk row views exactly like the
// interpreted fallback — the parity tests compare the two.
func (e *Engine) SetVectorized(on bool) { e.noVec.Store(!on) }

// ParallelScans returns how many scans have run morsel-parallel since the
// engine was created. Impure queries (rand()) and subquery-bearing ones
// never increment it — they take the serial fallback.
func (e *Engine) ParallelScans() int64 { return e.parallelScans.Load() }

type rngSource interface {
	Float64() float64
	Int63n(int64) int64
}

// New returns an empty engine seeded deterministically.
func New() *Engine { return NewSeeded(1) }

// NewSeeded returns an empty engine whose rand() SQL function is driven by
// the given seed. Deterministic seeds make experiments reproducible.
func NewSeeded(seed int64) *Engine {
	return &Engine{
		tables: make(map[string]*Table),
		rng:    newSplitMix(uint64(seed)),
	}
}

// splitMix64 is a tiny, fast PRNG; good enough for Bernoulli sampling and
// far cheaper than locking math/rand's global source.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed*0x9e3779b97f4a7c15 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) Float64() float64 { return float64(s.next()>>11) / float64(uint64(1)<<53) }

func (s *splitMix) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.next() % uint64(n))
}

func (e *Engine) randFloat() float64 {
	e.rngMu.Lock()
	v := e.rng.Float64()
	e.rngMu.Unlock()
	return v
}

// CreateTable registers an empty table. It fails if the table exists.
func (e *Engine) CreateTable(name string, cols []Column) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.tables[key]; ok {
		return fmt.Errorf("engine: table %q already exists", name)
	}
	t := &Table{Name: name, Cols: append([]Column(nil), cols...)}
	t.initColIndex()
	e.tables[key] = t //verdict:nocharge catalog entry: one per DDL statement, outlives any query
	return nil
}

// DropTable removes a table. Missing tables error unless ifExists.
func (e *Engine) DropTable(name string, ifExists bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("engine: table %q does not exist", name)
	}
	delete(e.tables, key)
	return nil
}

// Lookup returns the named table, or an error.
func (e *Engine) Lookup(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (e *Engine) HasTable(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.tables[strings.ToLower(name)]
	return ok
}

// TableNames returns all table names, sorted.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for _, t := range e.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// RowCount returns the number of rows in the named table (0 if missing).
func (e *Engine) RowCount(name string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if t, ok := e.tables[strings.ToLower(name)]; ok {
		return t.nrows
	}
	return 0
}

// InsertRows bulk-appends rows to a table, normalizing Go convenience types.
// Row width must match the table's column count. Context-free entry point:
// seal-time encoding state is not charged to any query budget.
func (e *Engine) InsertRows(name string, rows [][]Value) error {
	return e.insertRowsCtx(nil, name, rows)
}

// insertRowsCtx is InsertRows under a query context: seal-time encoding
// memory is charged to qc's gauge and long inserts poll for cancellation
// and budget overrun. An abort mid-insert leaves the already-appended
// prefix in place, matching the width-mismatch error path.
func (e *Engine) insertRowsCtx(qc *queryCtx, name string, rows [][]Value) error {
	err := e.insertRowsLocked(qc, name, rows)
	// Spill (when forced) only after the engine lock is released — the
	// flush path takes dataDir.mu before Engine.mu.
	e.maybeSpill()
	return err
}

func (e *Engine) insertRowsLocked(qc *queryCtx, name string, rows [][]Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	for _, r := range rows {
		if qc != nil {
			if err := qc.tick(); err != nil {
				return err
			}
		}
		if len(r) != len(t.Cols) {
			return fmt.Errorf("engine: row width %d != %d columns of %q", len(r), len(t.Cols), name)
		}
		nr := make([]Value, len(r))
		for i, v := range r {
			nr[i] = Normalize(v)
		}
		t.appendRow(nr, qc)
	}
	return nil
}

// snapshot returns the table plus a stable columnar view of its rows.
func (e *Engine) snapshot(name string) (*Table, *colSource, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, &colSource{sealed: t.sealed, tail: t.tail, nrows: t.nrows}, nil
}

// storeResult registers a table materialized from a query result (CTAS).
// Seal-time encoding memory is charged to qc; a budget overrun surfaces
// before the table is registered, so an aborted CTAS leaves no catalog
// entry behind.
func (e *Engine) storeResult(qc *queryCtx, name string, cols []Column, rows [][]Value, ifNotExists bool) error {
	err := e.storeResultLocked(qc, name, cols, rows, ifNotExists)
	e.maybeSpill() // after e.mu is released; see insertRowsCtx
	return err
}

func (e *Engine) storeResultLocked(qc *queryCtx, name string, cols []Column, rows [][]Value, ifNotExists bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("engine: table %q already exists", name)
	}
	t := &Table{Name: name, Cols: cols}
	t.initColIndex()
	for _, r := range rows {
		t.appendRow(r, qc)
	}
	if err := qc.pollAbort(); err != nil {
		return err
	}
	e.tables[key] = t //verdict:nocharge catalog entry: result rows were charged by the query that produced them
	return nil
}
