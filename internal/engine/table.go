package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory row-store table. Rows are append-only; readers take
// a snapshot of the row slice header under the engine lock, so concurrent
// queries see a consistent prefix.
type Table struct {
	Name string
	Cols []Column
	Rows [][]Value
}

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Engine is an in-memory SQL database. All access is through SQL via Exec
// and Query, plus bulk-load helpers for test and workload data.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*Table

	rngMu sync.Mutex
	rng   rngSource
}

type rngSource interface {
	Float64() float64
	Int63n(int64) int64
}

// New returns an empty engine seeded deterministically.
func New() *Engine { return NewSeeded(1) }

// NewSeeded returns an empty engine whose rand() SQL function is driven by
// the given seed. Deterministic seeds make experiments reproducible.
func NewSeeded(seed int64) *Engine {
	return &Engine{
		tables: make(map[string]*Table),
		rng:    newSplitMix(uint64(seed)),
	}
}

// splitMix64 is a tiny, fast PRNG; good enough for Bernoulli sampling and
// far cheaper than locking math/rand's global source.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed*0x9e3779b97f4a7c15 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) Float64() float64 { return float64(s.next()>>11) / float64(uint64(1)<<53) }

func (s *splitMix) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.next() % uint64(n))
}

func (e *Engine) randFloat() float64 {
	e.rngMu.Lock()
	v := e.rng.Float64()
	e.rngMu.Unlock()
	return v
}

// CreateTable registers an empty table. It fails if the table exists.
func (e *Engine) CreateTable(name string, cols []Column) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.tables[key]; ok {
		return fmt.Errorf("engine: table %q already exists", name)
	}
	e.tables[key] = &Table{Name: name, Cols: append([]Column(nil), cols...)}
	return nil
}

// DropTable removes a table. Missing tables error unless ifExists.
func (e *Engine) DropTable(name string, ifExists bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("engine: table %q does not exist", name)
	}
	delete(e.tables, key)
	return nil
}

// Lookup returns the named table, or an error.
func (e *Engine) Lookup(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (e *Engine) HasTable(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.tables[strings.ToLower(name)]
	return ok
}

// TableNames returns all table names, sorted.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for _, t := range e.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// RowCount returns the number of rows in the named table (0 if missing).
func (e *Engine) RowCount(name string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if t, ok := e.tables[strings.ToLower(name)]; ok {
		return len(t.Rows)
	}
	return 0
}

// InsertRows bulk-appends rows to a table, normalizing Go convenience types.
// Row width must match the table's column count.
func (e *Engine) InsertRows(name string, rows [][]Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	for _, r := range rows {
		if len(r) != len(t.Cols) {
			return fmt.Errorf("engine: row width %d != %d columns of %q", len(r), len(t.Cols), name)
		}
		nr := make([]Value, len(r))
		for i, v := range r {
			nr[i] = Normalize(v)
		}
		t.Rows = append(t.Rows, nr)
	}
	return nil
}

// snapshot returns the table plus a stable view of its rows.
func (e *Engine) snapshot(name string) (*Table, [][]Value, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, t.Rows, nil
}

// storeResult registers a table materialized from a query result (CTAS).
func (e *Engine) storeResult(name string, cols []Column, rows [][]Value, ifNotExists bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("engine: table %q already exists", name)
	}
	e.tables[key] = &Table{Name: name, Cols: cols, Rows: rows}
	return nil
}
