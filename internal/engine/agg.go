package engine

import (
	"fmt"
	"math"
	"sort"

	"verdictdb/internal/sketch"
	"verdictdb/internal/sqlparser"
)

// accumulator is the incremental state of one aggregate function over one
// group.
type accumulator interface {
	add(v Value) error
	addStar() // count(*) path: count the row regardless of value
	result() Value
	// merge folds another accumulator of the same concrete type into this
	// one. The morsel-parallel scan builds per-worker partial aggregates
	// and merges them in worker order.
	merge(other accumulator) error
}

func errMergeMismatch(a, b accumulator) error {
	return fmt.Errorf("engine: cannot merge %T into %T", b, a)
}

// typedAdder is the optional unboxed fast path the vectorized scan feeds
// non-NULL numeric lanes through. Implementations must match add()'s
// semantics for the corresponding boxed value exactly (including sum's
// int-only result tracking).
type typedAdder interface {
	addInt(v int64)
	addFloat(f float64)
}

// stringAdder is the optional unboxed fast path for string lanes (min/max
// over string columns).
type stringAdder interface {
	addStr(s string)
}

// starAdder is the optional bulk count(*) entry point: addStarN(n) must
// equal exactly n addStar calls. Only counting accumulators implement it —
// sum/avg hold float state whose rounding depends on per-lane adds, and
// byte-identity with the row path forbids reassociating those.
type starAdder interface {
	addStarN(n int64)
}

// newAccumulator builds an accumulator for the aggregate call fc, bound to
// qc's memory gauge. Fixed-size sketch state (HLL registers, the quantile
// reservoir) is charged here at creation; accumulators whose state scales
// with the data (percentile buffers, DISTINCT key sets) keep qc and charge
// as they grow. qc may be nil (direct unit-test construction): chargeMem
// is a nil-receiver no-op.
func newAccumulator(fc *sqlparser.FuncCall, quantileArg float64, qc *queryCtx) (accumulator, error) {
	if fc.Distinct {
		switch fc.Name {
		case "count":
			return &distinctCountAcc{seen: map[string]bool{}, qc: qc}, nil
		case "sum", "avg":
			return &distinctSumAcc{name: fc.Name, seen: map[string]float64{}, qc: qc}, nil
		}
		return nil, fmt.Errorf("engine: DISTINCT not supported for %s", fc.Name)
	}
	switch fc.Name {
	case "count":
		return &countAcc{}, nil
	case "sum":
		return &sumAcc{}, nil
	case "avg":
		return &avgAcc{}, nil
	case "min":
		return &extremeAcc{min: true}, nil
	case "max":
		return &extremeAcc{}, nil
	case "stddev", "stddev_samp":
		return &momentsAcc{mode: momentStddev}, nil
	case "var", "variance", "var_samp":
		return &momentsAcc{mode: momentVar}, nil
	case "percentile", "quantile":
		return &percentileAcc{p: quantileArg, qc: qc}, nil
	case "median":
		return &percentileAcc{p: 0.5, qc: qc}, nil
	case "approx_median":
		qc.chargeMem(quantileReservoirBytes)
		return &sketchMedianAcc{qs: sketch.NewQuantileSketch(4096, 7)}, nil
	case "ndv", "approx_count_distinct":
		qc.chargeMem(hllRegisterBytes)
		return &hllAcc{h: sketch.NewHLL(12)}, nil
	}
	return nil, fmt.Errorf("engine: unknown aggregate %s", fc.Name)
}

// Creation-time charges for the fixed-footprint sketches: an HLL at
// precision 12 owns 1<<12 one-byte registers; the quantile sketch retains
// at most 4096 float64 samples in its reservoir.
const (
	hllRegisterBytes       = 1 << 12
	quantileReservoirBytes = 4096 * 8
)

type countAcc struct{ n int64 }

func (a *countAcc) add(v Value) error {
	if v != nil {
		a.n++
	}
	return nil
}
func (a *countAcc) addStar()         { a.n++ }
func (a *countAcc) addStarN(n int64) { a.n += n }
func (a *countAcc) addInt(int64)     { a.n++ }
func (a *countAcc) addFloat(float64) { a.n++ }
func (a *countAcc) addStr(string)    { a.n++ }
func (a *countAcc) result() Value    { return a.n }
func (a *countAcc) merge(other accumulator) error {
	o, ok := other.(*countAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	a.n += o.n
	return nil
}

type sumAcc struct {
	sum     float64
	sawAny  bool
	intOnly bool
	started bool
}

func (a *sumAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	f, ok := ToFloat(v)
	if !ok {
		return fmt.Errorf("engine: sum of non-numeric %T", v)
	}
	if !a.started {
		a.intOnly = true
		a.started = true
	}
	if _, isInt := v.(int64); !isInt {
		a.intOnly = false
	}
	a.sum += f
	a.sawAny = true
	return nil
}
func (a *sumAcc) addStar() { _ = a.add(int64(1)) }
func (a *sumAcc) addInt(v int64) {
	if !a.started {
		a.intOnly = true
		a.started = true
	}
	a.sum += float64(v)
	a.sawAny = true
}
func (a *sumAcc) addFloat(f float64) {
	if !a.started {
		a.started = true
	}
	a.intOnly = false
	a.sum += f
	a.sawAny = true
}
func (a *sumAcc) result() Value {
	if !a.sawAny {
		return nil
	}
	if a.intOnly && a.sum == math.Trunc(a.sum) && math.Abs(a.sum) < 1e15 {
		return int64(a.sum)
	}
	return a.sum
}
func (a *sumAcc) merge(other accumulator) error {
	o, ok := other.(*sumAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	if !o.started {
		return nil
	}
	if !a.started {
		*a = *o
		return nil
	}
	a.sum += o.sum
	a.sawAny = a.sawAny || o.sawAny
	a.intOnly = a.intOnly && o.intOnly
	return nil
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	f, ok := ToFloat(v)
	if !ok {
		return fmt.Errorf("engine: avg of non-numeric %T", v)
	}
	a.sum += f
	a.n++
	return nil
}
func (a *avgAcc) addStar()       { _ = a.add(int64(1)) }
func (a *avgAcc) addInt(v int64) { a.sum += float64(v); a.n++ }
func (a *avgAcc) addFloat(f float64) {
	a.sum += f
	a.n++
}
func (a *avgAcc) result() Value {
	if a.n == 0 {
		return nil
	}
	return a.sum / float64(a.n)
}
func (a *avgAcc) merge(other accumulator) error {
	o, ok := other.(*avgAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	a.sum += o.sum
	a.n += o.n
	return nil
}

type extremeAcc struct {
	min  bool
	best Value
}

func (a *extremeAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	if a.best == nil ||
		(a.min && Compare(v, a.best) < 0) ||
		(!a.min && Compare(v, a.best) > 0) {
		a.best = v
	}
	return nil
}
func (a *extremeAcc) addStar() {}
func (a *extremeAcc) addInt(v int64) {
	if bf, ok := numeric(a.best); ok {
		f := float64(v)
		if (a.min && f < bf) || (!a.min && f > bf) {
			a.best = v
		}
		return
	}
	_ = a.add(v) // nil or non-numeric best: generic Compare path
}
func (a *extremeAcc) addFloat(f float64) {
	if bf, ok := numeric(a.best); ok {
		if (a.min && f < bf) || (!a.min && f > bf) {
			a.best = f
		}
		return
	}
	_ = a.add(f)
}
func (a *extremeAcc) addStr(s string) {
	if bs, ok := a.best.(string); ok {
		if (a.min && s < bs) || (!a.min && s > bs) {
			a.best = s
		}
		return
	}
	_ = a.add(s)
}
func (a *extremeAcc) result() Value { return a.best }
func (a *extremeAcc) merge(other accumulator) error {
	o, ok := other.(*extremeAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	if o.best != nil {
		return a.add(o.best)
	}
	return nil
}

type momentMode int

const (
	momentVar momentMode = iota
	momentStddev
)

// momentsAcc computes sample variance/stddev using Welford's algorithm.
type momentsAcc struct {
	mode momentMode
	n    int64
	mean float64
	m2   float64
}

func (a *momentsAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	f, ok := ToFloat(v)
	if !ok {
		return fmt.Errorf("engine: variance of non-numeric %T", v)
	}
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
	return nil
}
func (a *momentsAcc) addStar()       {}
func (a *momentsAcc) addInt(v int64) { a.addFloat(float64(v)) }
func (a *momentsAcc) addFloat(f float64) {
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
}
func (a *momentsAcc) result() Value {
	if a.n < 2 {
		if a.n == 1 {
			return 0.0
		}
		return nil
	}
	v := a.m2 / float64(a.n-1)
	if a.mode == momentStddev {
		return math.Sqrt(v)
	}
	return v
}

// merge combines two Welford states with the parallel-variance formula
// (Chan et al.): m2 = m2a + m2b + delta^2 * na*nb/n.
func (a *momentsAcc) merge(other accumulator) error {
	o, ok := other.(*momentsAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	if o.n == 0 {
		return nil
	}
	if a.n == 0 {
		a.n, a.mean, a.m2 = o.n, o.mean, o.m2
		return nil
	}
	n := a.n + o.n
	delta := o.mean - a.mean
	a.m2 += o.m2 + delta*delta*float64(a.n)*float64(o.n)/float64(n)
	a.mean += delta * float64(o.n) / float64(n)
	a.n = n
	return nil
}

// percentileAcc computes an exact percentile by buffering values; the
// buffer is the whole group's column, so growth is charged to the query's
// memory gauge as the backing array grows.
type percentileAcc struct {
	p       float64
	vals    []float64
	qc      *queryCtx
	capSeen int
}

// grow charges the gauge for any backing-array growth since the last call.
// Charging the capacity delta (not per element) keeps the gauge exact for
// append's doubling while touching the atomic only on actual allocation.
func (a *percentileAcc) grow() {
	if c := cap(a.vals); c != a.capSeen {
		a.qc.chargeMem(int64(c-a.capSeen) * 8)
		a.capSeen = c
	}
}

func (a *percentileAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	f, ok := ToFloat(v)
	if !ok {
		return fmt.Errorf("engine: percentile of non-numeric %T", v)
	}
	a.vals = append(a.vals, f)
	a.grow()
	return nil
}
func (a *percentileAcc) addStar() {}
func (a *percentileAcc) addInt(v int64) {
	a.vals = append(a.vals, float64(v))
	a.grow()
}
func (a *percentileAcc) addFloat(f float64) {
	a.vals = append(a.vals, f)
	a.grow()
}
func (a *percentileAcc) result() Value {
	if len(a.vals) == 0 {
		return nil
	}
	sort.Float64s(a.vals)
	pos := a.p * float64(len(a.vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(a.vals) {
		return a.vals[len(a.vals)-1]
	}
	return a.vals[lo]*(1-frac) + a.vals[lo+1]*frac
}
func (a *percentileAcc) merge(other accumulator) error {
	o, ok := other.(*percentileAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	a.vals = append(a.vals, o.vals...)
	a.grow()
	return nil
}

type sketchMedianAcc struct{ qs *sketch.QuantileSketch }

func (a *sketchMedianAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	f, ok := ToFloat(v)
	if !ok {
		return fmt.Errorf("engine: approx_median of non-numeric %T", v)
	}
	a.qs.Add(f)
	return nil
}
func (a *sketchMedianAcc) addStar()           {}
func (a *sketchMedianAcc) addInt(v int64)     { a.qs.Add(float64(v)) }
func (a *sketchMedianAcc) addFloat(f float64) { a.qs.Add(f) }
func (a *sketchMedianAcc) result() Value {
	if a.qs.Count() == 0 {
		return nil
	}
	return a.qs.Median()
}
func (a *sketchMedianAcc) merge(other accumulator) error {
	o, ok := other.(*sketchMedianAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	a.qs.Merge(o.qs)
	return nil
}

type hllAcc struct{ h *sketch.HLL }

func (a *hllAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	a.h.AddString(GroupKey(v))
	return nil
}
func (a *hllAcc) addStar() {}
func (a *hllAcc) result() Value {
	return int64(math.Round(a.h.Estimate()))
}
func (a *hllAcc) merge(other accumulator) error {
	o, ok := other.(*hllAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	a.h.Merge(o.h)
	return nil
}

type distinctCountAcc struct {
	seen map[string]bool
	qc   *queryCtx
}

func (a *distinctCountAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	k := GroupKey(v)
	if !a.seen[k] {
		a.qc.chargeMem(int64(len(k)) + bytesPerRef)
		a.seen[k] = true
	}
	return nil
}
func (a *distinctCountAcc) addStar()      {}
func (a *distinctCountAcc) result() Value { return int64(len(a.seen)) }
func (a *distinctCountAcc) merge(other accumulator) error {
	o, ok := other.(*distinctCountAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	//verdict:unordered set union into a map; only len(seen) is observable
	for k := range o.seen {
		if !a.seen[k] {
			a.qc.chargeMem(int64(len(k)) + bytesPerRef)
			a.seen[k] = true
		}
	}
	return nil
}

// distinctSumAcc remembers each distinct key's numeric value (in first-seen
// order) so that per-worker partial states can be unioned without
// double-counting — and deterministically: merging in map order would
// reassociate float additions differently on every run.
type distinctSumAcc struct {
	name  string
	seen  map[string]float64
	order []string
	sum   float64
	n     int64
	qc    *queryCtx
}

// chargeKey accounts one new distinct key: the string appears in the map
// and the order slice, plus the map value and slice header share.
func (a *distinctSumAcc) chargeKey(k string) {
	a.qc.chargeMem(2*int64(len(k)) + bytesPerValue)
}

func (a *distinctSumAcc) add(v Value) error {
	if v == nil {
		return nil
	}
	k := GroupKey(v)
	if _, dup := a.seen[k]; dup {
		return nil
	}
	f, ok := ToFloat(v)
	if !ok {
		return fmt.Errorf("engine: %s distinct of non-numeric %T", a.name, v)
	}
	a.chargeKey(k)
	a.seen[k] = f
	a.order = append(a.order, k)
	a.sum += f
	a.n++
	return nil
}
func (a *distinctSumAcc) addStar() {}
func (a *distinctSumAcc) merge(other accumulator) error {
	o, ok := other.(*distinctSumAcc)
	if !ok {
		return errMergeMismatch(a, other)
	}
	for _, k := range o.order {
		if _, dup := a.seen[k]; dup {
			continue
		}
		f := o.seen[k]
		a.chargeKey(k)
		a.seen[k] = f
		a.order = append(a.order, k)
		a.sum += f
		a.n++
	}
	return nil
}
func (a *distinctSumAcc) result() Value {
	if a.n == 0 {
		return nil
	}
	if a.name == "avg" {
		return a.sum / float64(a.n)
	}
	return a.sum
}

// quantileLiteralArg extracts the constant second argument of
// percentile(col, p); returns 0.5 when absent.
func quantileLiteralArg(fc *sqlparser.FuncCall) (float64, error) {
	if len(fc.Args) < 2 {
		return 0.5, nil
	}
	lit, ok := fc.Args[1].(*sqlparser.Literal)
	if !ok {
		return 0, fmt.Errorf("engine: percentile fraction must be a literal")
	}
	f, ok := ToFloat(lit.Val)
	if !ok || f < 0 || f > 1 {
		return 0, fmt.Errorf("engine: percentile fraction must be in [0,1]")
	}
	return f, nil
}
