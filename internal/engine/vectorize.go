package engine

import (
	"sort"
	"strconv"
	"strings"

	"verdictdb/internal/sqlparser"
)

// Chunk-at-a-time vectorized expression evaluation. The row compiler in
// compile.go lowers an expression to a per-row closure; this file lowers
// the same ASTs to vector kernels that consume a sealed chunk's typed
// columns directly and produce typed output vectors, so the scan hot path
// never boxes values. WHERE predicates produce a selection vector; GROUP BY
// keys render straight from typed lanes into the reusable key buffer;
// aggregate arguments feed accumulators through typed entry points
// (agg.go). Every kernel replicates the row path's semantics exactly —
// NULL propagation, numeric coercion through float64, three-valued
// AND/OR — and shapes without a kernel (CASE, subqueries-free scalar
// functions, string concatenation, ...) fall back to evaluating the
// row-compiled closure per selected lane against the chunk's cached row
// view, which by construction matches the interpreter bit for bit. If a
// kernel reports an error the caller re-runs the whole chunk through the
// row path, so even error behavior (e.g. short-circuit AND skipping an
// erroring operand) is identical.
//
// Only pure expressions are ever vectorized: anything drawing from the
// engine RNG keeps the serial row path so sample scrambles stay
// byte-identical.

// vec is a batch of values for the lanes of one chunk (or its selected
// subset). Exactly one typed slice is populated according to kind; TAny
// means boxed values in anys, where a nil box is NULL. For typed kinds,
// nulls flags NULL lanes (nil when none).
type vec struct {
	kind   ColType
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []Value
	nulls  []bool

	// dict is non-nil for a dictionary-coded string vector: kind is
	// TString, strs is nil, and lane k holds dict[codes[k]] (dictBoxed
	// pre-boxes each entry; nulls stays per-lane). Borrowed straight from
	// an encDict chunk-column, so equality/range kernels can compare codes
	// instead of bytes; everything else reads through str/laneValue.
	dict      []string
	dictBoxed []Value
	codes     []uint32
}

func (v *vec) isNull(k int) bool {
	if v.kind == TAny {
		return v.anys[k] == nil
	}
	return v.nulls != nil && v.nulls[k]
}

// str returns string lane k (callers have excluded NULL lanes and non-string
// kinds), reading through the dictionary when the vector is coded.
func (v *vec) str(k int) string {
	if v.dict != nil {
		return v.dict[v.codes[k]]
	}
	return v.strs[k]
}

// laneValue boxes lane k back into a dynamic Value.
func laneValue(v *vec, k int) Value {
	if v.kind == TAny {
		return v.anys[k]
	}
	if v.nulls != nil && v.nulls[k] {
		return nil
	}
	switch v.kind {
	case TInt:
		return v.ints[k]
	case TFloat:
		return v.floats[k]
	case TString:
		if v.dict != nil {
			return v.dictBoxed[v.codes[k]]
		}
		return v.strs[k]
	case TBool:
		return v.bools[k]
	}
	return nil
}

// laneFloat extracts lane k as float64 for Compare-style numeric
// comparison. ok is false for non-numeric kinds (bools are not numeric in
// Compare, matching the row path).
func laneFloat(v *vec, k int) (float64, bool) {
	switch v.kind {
	case TInt:
		return float64(v.ints[k]), true
	case TFloat:
		return v.floats[k], true
	}
	return 0, false
}

// laneStr renders lane k like ToStr (callers have excluded NULL lanes).
func laneStr(v *vec, k int) string {
	switch v.kind {
	case TString:
		return v.str(k)
	case TInt:
		return strconv.FormatInt(v.ints[k], 10)
	case TFloat:
		return strconv.FormatFloat(v.floats[k], 'g', -1, 64)
	case TBool:
		if v.bools[k] {
			return "true"
		}
		return "false"
	}
	return ToStr(v.anys[k])
}

// laneBool mirrors ToBool on lane k: b/ok like ToBool, null for NULL lanes.
func laneBool(v *vec, k int) (b, ok, null bool) {
	if v.isNull(k) {
		return false, false, true
	}
	switch v.kind {
	case TBool:
		return v.bools[k], true, false
	case TInt:
		return v.ints[k] != 0, true, false
	case TFloat:
		return v.floats[k] != 0, true, false
	case TString:
		return false, false, false
	}
	b, ok = ToBool(v.anys[k])
	return b, ok, false
}

// vbuf owns one node's output storage across chunks, so steady-state
// evaluation allocates nothing. The v field is the current view — it may
// alias chunk storage (column references with a full selection), which is
// safe because every kernel writes only its own buffer.
type vbuf struct {
	v      vec
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []Value
	nulls  []bool
	codes  []uint32

	// litLanes caches how many lanes a vnLit has already broadcast into
	// this buffer: the constant never changes, so later chunks reslice
	// instead of refilling.
	litLanes int
}

// vecCtx is one worker's evaluation state: per-node buffers plus reusable
// selection/key scratch. Never shared between goroutines.
type vecCtx struct {
	bufs   []vbuf
	sel    []int32
	sel2   []int32
	keyBuf []byte
	keys   []*vec
	args   []*vec
	items  []*vec
}

func newVecCtx(nbuf, nkeys, nargs, nitems int) *vecCtx {
	return &vecCtx{
		bufs:  make([]vbuf, nbuf),
		keys:  make([]*vec, nkeys),
		args:  make([]*vec, nargs),
		items: make([]*vec, nitems),
	}
}

// out prepares node id's buffer for lanes values of the given kind and
// returns the view to fill.
func (vc *vecCtx) out(id int, kind ColType, lanes int) *vec {
	b := &vc.bufs[id]
	b.v.kind = kind
	b.v.ints, b.v.floats, b.v.strs, b.v.bools, b.v.anys, b.v.nulls = nil, nil, nil, nil, nil, nil
	// Clear any dictionary view a previous chunk left behind: the buffer is
	// reused across chunks and a stale dict would silently re-code lanes.
	b.v.dict, b.v.dictBoxed, b.v.codes = nil, nil, nil
	switch kind {
	case TInt:
		if cap(b.ints) < lanes {
			b.ints = make([]int64, lanes)
		}
		b.v.ints = b.ints[:lanes]
	case TFloat:
		if cap(b.floats) < lanes {
			b.floats = make([]float64, lanes)
		}
		b.v.floats = b.floats[:lanes]
	case TString:
		if cap(b.strs) < lanes {
			b.strs = make([]string, lanes)
		}
		b.v.strs = b.strs[:lanes]
	case TBool:
		if cap(b.bools) < lanes {
			b.bools = make([]bool, lanes)
		}
		b.v.bools = b.bools[:lanes]
	case TAny:
		if cap(b.anys) < lanes {
			b.anys = make([]Value, lanes)
		}
		b.v.anys = b.anys[:lanes]
		for i := range b.v.anys {
			b.v.anys[i] = nil
		}
	}
	return &b.v
}

// nullbuf returns node id's cleared null-flag slice, attaching it to the
// current view. Kernels call it on the first NULL they produce.
func (vc *vecCtx) nullbuf(id, lanes int) []bool {
	b := &vc.bufs[id]
	if cap(b.nulls) < lanes {
		b.nulls = make([]bool, lanes)
	}
	n := b.nulls[:lanes]
	for i := range n {
		n[i] = false
	}
	b.v.nulls = n
	return n
}

func laneCount(ch *chunk, sel []int32) int {
	if sel != nil {
		return len(sel)
	}
	return ch.n
}

// vnode is one vectorized expression node. eval computes the node over the
// chunk's selected lanes (sel nil = all rows) into a context-owned buffer.
type vnode interface {
	eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error)
}

// ---- leaves ----

type vnCol struct {
	id, col int
}

func (n *vnCol) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	// col() gathers the column first on join-output chunks — the point
	// where late materialization actually copies values, and only for
	// columns some kernel references.
	cv := ch.col(n.col)
	switch cv.enc {
	case encDict:
		return n.evalDict(vc, cv, sel, laneCount(ch, sel)), nil
	case encRLE:
		return n.evalRLE(vc, cv, sel, laneCount(ch, sel)), nil
	case encDelta:
		return n.evalDelta(vc, cv, sel, laneCount(ch, sel)), nil
	}
	if sel == nil {
		// Borrow the chunk's storage wholesale — zero copies.
		b := &vc.bufs[n.id]
		b.v = vec{kind: cv.kind, ints: cv.ints, floats: cv.floats,
			strs: cv.strs, bools: cv.bools, anys: cv.anys, nulls: cv.nulls}
		return &b.v, nil
	}
	lanes := len(sel)
	ov := vc.out(n.id, cv.kind, lanes)
	switch cv.kind {
	case TInt:
		for k, i := range sel {
			ov.ints[k] = cv.ints[i]
		}
	case TFloat:
		for k, i := range sel {
			ov.floats[k] = cv.floats[i]
		}
	case TString:
		for k, i := range sel {
			ov.strs[k] = cv.strs[i]
		}
	case TBool:
		for k, i := range sel {
			ov.bools[k] = cv.bools[i]
		}
	case TAny:
		for k, i := range sel {
			ov.anys[k] = cv.anys[i]
		}
	}
	if cv.nulls != nil && cv.kind != TAny {
		var nulls []bool
		for k, i := range sel {
			if cv.nulls[i] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[k] = true
			}
		}
	}
	return ov, nil
}

// evalDict surfaces an encDict column as a dictionary-coded vector: the
// dict is shared and only codes are gathered under a selection, so a string
// column costs 4 bytes/lane to touch regardless of string length.
func (n *vnCol) evalDict(vc *vecCtx, cv *colVec, sel []int32, lanes int) *vec {
	b := &vc.bufs[n.id]
	if sel == nil {
		b.v = vec{kind: TString, nulls: cv.nulls,
			dict: cv.dict, dictBoxed: cv.dictBoxed, codes: cv.codes}
		return &b.v
	}
	if cap(b.codes) < lanes {
		b.codes = make([]uint32, lanes)
	}
	codes := b.codes[:lanes]
	b.v = vec{kind: TString, dict: cv.dict, dictBoxed: cv.dictBoxed, codes: codes}
	for k, i := range sel {
		codes[k] = cv.codes[i]
	}
	if cv.nulls != nil {
		var nulls []bool
		for k, i := range sel {
			if cv.nulls[i] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[k] = true
			}
		}
	}
	return &b.v
}

// evalRLE decodes an encRLE column for generic kernels. The selection walk
// exploits that sel is always ascending: one forward run pointer serves the
// whole gather, O(lanes + runs) instead of a binary search per lane.
func (n *vnCol) evalRLE(vc *vecCtx, cv *colVec, sel []int32, lanes int) *vec {
	ov := vc.out(n.id, cv.kind, lanes)
	var nulls []bool
	if sel == nil {
		start := 0
		for r := 0; r < len(cv.runEnds); r++ {
			end := int(cv.runEnds[r])
			if cv.nulls != nil && cv.nulls[r] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				for i := start; i < end; i++ {
					nulls[i] = true
				}
				start = end
				continue
			}
			switch cv.kind {
			case TInt:
				v := cv.ints[r]
				for i := start; i < end; i++ {
					ov.ints[i] = v
				}
			case TFloat:
				v := cv.floats[r]
				for i := start; i < end; i++ {
					ov.floats[i] = v
				}
			case TString:
				v := cv.strs[r]
				for i := start; i < end; i++ {
					ov.strs[i] = v
				}
			case TBool:
				v := cv.bools[r]
				for i := start; i < end; i++ {
					ov.bools[i] = v
				}
			}
			start = end
		}
		return ov
	}
	r := 0
	for k := 0; k < lanes; k++ {
		i := int(sel[k])
		for int(cv.runEnds[r]) <= i {
			r++
		}
		if cv.nulls != nil && cv.nulls[r] {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		switch cv.kind {
		case TInt:
			ov.ints[k] = cv.ints[r]
		case TFloat:
			ov.floats[k] = cv.floats[r]
		case TString:
			ov.strs[k] = cv.strs[r]
		case TBool:
			ov.bools[k] = cv.bools[r]
		}
	}
	return ov
}

// evalDelta unpacks an encDelta column into a dense int vector.
func (n *vnCol) evalDelta(vc *vecCtx, cv *colVec, sel []int32, lanes int) *vec {
	ov := vc.out(n.id, TInt, lanes)
	var nulls []bool
	if sel == nil {
		for i := 0; i < lanes; i++ {
			if cv.nulls != nil && cv.nulls[i] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[i] = true
				continue
			}
			ov.ints[i] = cv.deltaAt(i)
		}
		return ov
	}
	for k, i := range sel {
		if cv.nulls != nil && cv.nulls[i] {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		ov.ints[k] = cv.deltaAt(int(i))
	}
	return ov
}

type vnLit struct {
	id  int
	val Value
}

func (n *vnLit) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	lanes := laneCount(ch, sel)
	b := &vc.bufs[n.id]
	if b.litLanes >= lanes {
		// Already broadcast at least this wide: reslice the cached fill.
		v := &b.v
		switch v.kind {
		case TInt:
			v.ints = b.ints[:lanes]
		case TFloat:
			v.floats = b.floats[:lanes]
		case TString:
			v.strs = b.strs[:lanes]
		case TBool:
			v.bools = b.bools[:lanes]
		case TAny:
			v.anys = b.anys[:lanes]
		}
		return v, nil
	}
	fill := lanes
	if fill < chunkRows {
		fill = chunkRows // broadcast once at full width for later chunks
	}
	var ov *vec
	switch x := n.val.(type) {
	case int64:
		ov = vc.out(n.id, TInt, fill)
		for k := range ov.ints {
			ov.ints[k] = x
		}
		ov.ints = ov.ints[:lanes]
	case float64:
		ov = vc.out(n.id, TFloat, fill)
		for k := range ov.floats {
			ov.floats[k] = x
		}
		ov.floats = ov.floats[:lanes]
	case string:
		ov = vc.out(n.id, TString, fill)
		for k := range ov.strs {
			ov.strs[k] = x
		}
		ov.strs = ov.strs[:lanes]
	case bool:
		ov = vc.out(n.id, TBool, fill)
		for k := range ov.bools {
			ov.bools[k] = x
		}
		ov.bools = ov.bools[:lanes]
	default:
		// NULL (or exotic) literal: boxed lanes.
		ov = vc.out(n.id, TAny, fill)
		if n.val != nil {
			for k := range ov.anys {
				ov.anys[k] = n.val
			}
		}
		ov.anys = ov.anys[:lanes]
	}
	b.litLanes = fill
	return ov, nil
}

// vnScalar evaluates a pure row-compiled closure per selected lane against
// the chunk's cached row view — the graceful-degradation path for shapes
// without a vector kernel (CASE, coalesce, ||, date arithmetic, ...).
type vnScalar struct {
	id int
	fn compiledExpr
}

func (n *vnScalar) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	rows := ch.rows()
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TAny, lanes)
	for k := 0; k < lanes; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		v, err := n.fn(rows[i])
		if err != nil {
			return nil, err
		}
		ov.anys[k] = v
	}
	return ov, nil
}

// ---- arithmetic ----

type vnArith struct {
	id   int
	op   string
	l, r vnode
}

func (n *vnArith) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	lv, err := n.l.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	lNum := lv.kind == TInt || lv.kind == TFloat
	rNum := rv.kind == TInt || rv.kind == TFloat

	if lv.kind == TInt && rv.kind == TInt && n.op != "/" {
		ov := vc.out(n.id, TInt, lanes)
		var nulls []bool
		setNull := func(k int) {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
		}
		for k := 0; k < lanes; k++ {
			if lv.isNull(k) || rv.isNull(k) {
				setNull(k)
				continue
			}
			a, b := lv.ints[k], rv.ints[k]
			switch n.op {
			case "+":
				ov.ints[k] = a + b
			case "-":
				ov.ints[k] = a - b
			case "*":
				ov.ints[k] = a * b
			case "%":
				if b == 0 {
					setNull(k)
					continue
				}
				ov.ints[k] = a % b
			}
		}
		return ov, nil
	}

	if lNum && rNum {
		ov := vc.out(n.id, TFloat, lanes)
		var nulls []bool
		setNull := func(k int) {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
		}
		for k := 0; k < lanes; k++ {
			if lv.isNull(k) || rv.isNull(k) {
				setNull(k)
				continue
			}
			lf, _ := laneFloat(lv, k)
			rf, _ := laneFloat(rv, k)
			switch n.op {
			case "+":
				ov.floats[k] = lf + rf
			case "-":
				ov.floats[k] = lf - rf
			case "*":
				ov.floats[k] = lf * rf
			case "/":
				if rf == 0 {
					setNull(k)
					continue
				}
				ov.floats[k] = lf / rf
			case "%":
				if rf == 0 || int64(rf) == 0 {
					setNull(k)
					continue
				}
				ov.floats[k] = float64(int64(lf) % int64(rf))
			}
		}
		return ov, nil
	}

	// Mixed/boxed kinds: per-lane through the row path's arith.
	ov := vc.out(n.id, TAny, lanes)
	for k := 0; k < lanes; k++ {
		if lv.isNull(k) || rv.isNull(k) {
			continue // nil box = NULL
		}
		res, err := arith(n.op, laneValue(lv, k), laneValue(rv, k))
		if err != nil {
			return nil, err
		}
		ov.anys[k] = res
	}
	return ov, nil
}

type vnNeg struct {
	id int
	x  vnode
}

func (n *vnNeg) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	switch xv.kind {
	case TInt:
		ov := vc.out(n.id, TInt, lanes)
		var nulls []bool
		for k := 0; k < lanes; k++ {
			if xv.isNull(k) {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[k] = true
				continue
			}
			ov.ints[k] = -xv.ints[k]
		}
		return ov, nil
	case TFloat:
		ov := vc.out(n.id, TFloat, lanes)
		var nulls []bool
		for k := 0; k < lanes; k++ {
			if xv.isNull(k) {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[k] = true
				continue
			}
			ov.floats[k] = -xv.floats[k]
		}
		return ov, nil
	}
	ov := vc.out(n.id, TAny, lanes)
	for k := 0; k < lanes; k++ {
		if xv.isNull(k) {
			continue
		}
		switch x := laneValue(xv, k).(type) {
		case int64:
			ov.anys[k] = -x //verdict:alloc TAny fallback lane: input is already boxed, typed lanes take the branches above
		case float64:
			ov.anys[k] = -x //verdict:alloc TAny fallback lane: input is already boxed, typed lanes take the branches above
		default:
			return nil, errCannotNegate(x)
		}
	}
	return ov, nil
}

// ---- comparisons ----

type vnCmp struct {
	id   int
	op   string
	l, r vnode
}

func (n *vnCmp) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	lv, err := n.l.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	test := cmpTest(n.op)
	var nulls []bool
	setNull := func(k int) {
		if nulls == nil {
			nulls = vc.nullbuf(n.id, lanes)
		}
		nulls[k] = true
	}
	lNum := lv.kind == TInt || lv.kind == TFloat
	rNum := rv.kind == TInt || rv.kind == TFloat
	switch {
	case lNum && rNum:
		for k := 0; k < lanes; k++ {
			if lv.isNull(k) || rv.isNull(k) {
				setNull(k)
				continue
			}
			lf, _ := laneFloat(lv, k)
			rf, _ := laneFloat(rv, k)
			ov.bools[k] = test(cmpFloat64(lf, rf))
		}
	case lv.kind == TString && rv.kind == TString:
		for k := 0; k < lanes; k++ {
			if lv.isNull(k) || rv.isNull(k) {
				setNull(k)
				continue
			}
			a, b := lv.str(k), rv.str(k)
			switch {
			case a < b:
				ov.bools[k] = test(-1)
			case a > b:
				ov.bools[k] = test(1)
			default:
				ov.bools[k] = test(0)
			}
		}
	default:
		for k := 0; k < lanes; k++ {
			if lv.isNull(k) || rv.isNull(k) {
				setNull(k)
				continue
			}
			ov.bools[k] = test(Compare(laneValue(lv, k), laneValue(rv, k)))
		}
	}
	return ov, nil
}

// vnCmpLit is a column-vs-literal comparison specialized for encoded
// storage chunks. Dictionary columns probe the sorted dict once per chunk
// and compare codes (a literal missing from the dictionary decides =/<>
// for every non-NULL lane without touching a byte of string data); RLE
// columns evaluate the predicate once per run; delta columns fuse decode
// and compare. Join-output chunks, raw columns, and kind/literal pairings
// whose comparison is not the plain typed one delegate to the embedded
// generic node, which replicates row-path semantics for every case.
type vnCmpLit struct {
	id   int
	op   string
	col  int
	lit  Value
	test func(int) bool // cmpTest(op), built once at plan time
	fb   vnode
}

func (n *vnCmpLit) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	if ch.gather != nil {
		return n.fb.eval(vc, ch, sel)
	}
	cv := &ch.cols[n.col]
	switch cv.enc {
	case encDict:
		if s, ok := n.lit.(string); ok {
			return n.evalDict(vc, cv, ch, sel, s), nil
		}
	case encRLE:
		if ov, ok := n.evalRLE(vc, cv, ch, sel); ok {
			return ov, nil
		}
	case encDelta:
		if f, ok := numeric(n.lit); ok {
			return n.evalDelta(vc, cv, ch, sel, f), nil
		}
	}
	return n.fb.eval(vc, ch, sel)
}

// codeBounds reduces op against the dictionary boundary pair to interval
// membership over codes: the result for code c is (lo <= c < hi) != neg. lb
// is the first code whose string sorts >= the literal, ub the first sorting
// > it — the sorted dictionary makes every comparison a code comparison
// (dict[c] < lit ⟺ c < lb, dict[c] = lit ⟺ lb <= c < ub, empty when the
// literal misses the dictionary). A plain interval instead of a predicate
// closure: this runs once per chunk on the scan hot path.
func codeBounds(op string, lb, ub uint32) (lo, hi uint32, neg bool) {
	const top = ^uint32(0)
	switch op {
	case "=":
		return lb, ub, false
	case "<>":
		return lb, ub, true
	case "<":
		return 0, lb, false
	case "<=":
		return 0, ub, false
	case ">":
		return ub, top, false
	}
	return lb, top, false // ">="
}

func (n *vnCmpLit) evalDict(vc *vecCtx, cv *colVec, ch *chunk, sel []int32, s string) *vec {
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	lb := sort.SearchStrings(cv.dict, s)
	ub := lb
	if ub < len(cv.dict) && cv.dict[ub] == s {
		ub++
	}
	lo, hi, neg := codeBounds(n.op, uint32(lb), uint32(ub))
	var nulls []bool
	hasNull := cv.nulls != nil
	if sel == nil {
		for i := 0; i < lanes; i++ {
			if hasNull && cv.nulls[i] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[i] = true
				continue
			}
			c := cv.codes[i]
			ov.bools[i] = (c >= lo && c < hi) != neg
		}
		return ov
	}
	for k, i := range sel {
		if hasNull && cv.nulls[i] {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		c := cv.codes[i]
		ov.bools[k] = (c >= lo && c < hi) != neg
	}
	return ov
}

// evalRLE evaluates the comparison once per run — O(runs + lanes) however
// long the runs are. ok is false (delegate to the generic node) when the
// column kind and literal kind do not compare through the plain typed path.
func (n *vnCmpLit) evalRLE(vc *vecCtx, cv *colVec, ch *chunk, sel []int32) (*vec, bool) {
	var litF float64
	var litS string
	var litB bool
	switch cv.kind {
	case TInt, TFloat:
		f, ok := numeric(n.lit)
		if !ok {
			return nil, false
		}
		litF = f
	case TString:
		s, ok := n.lit.(string)
		if !ok {
			return nil, false
		}
		litS = s
	case TBool:
		b, ok := n.lit.(bool)
		if !ok {
			return nil, false
		}
		litB = b
	default:
		return nil, false
	}
	// Per-run verdicts: 0 false, 1 true, 2 NULL. Storage chunks hold at
	// most chunkRows rows, so runs fit a stack array.
	var rres [chunkRows]uint8
	test := n.test
	for r := 0; r < len(cv.runEnds); r++ {
		if cv.nulls != nil && cv.nulls[r] {
			rres[r] = 2
			continue
		}
		var c int
		switch cv.kind {
		case TInt:
			c = cmpFloat64(float64(cv.ints[r]), litF)
		case TFloat:
			c = cmpFloat64(cv.floats[r], litF)
		case TString:
			c = strings.Compare(cv.strs[r], litS)
		case TBool:
			c = cmpBools(cv.bools[r], litB)
		}
		if test(c) {
			rres[r] = 1
		}
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	// The output buffer is reused across chunks, so every lane must be
	// written — false runs included.
	if sel == nil {
		start := 0
		for r := 0; r < len(cv.runEnds); r++ {
			end := int(cv.runEnds[r])
			switch rres[r] {
			case 1:
				for i := start; i < end; i++ {
					ov.bools[i] = true
				}
			case 2:
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				for i := start; i < end; i++ {
					nulls[i] = true
				}
			default:
				for i := start; i < end; i++ {
					ov.bools[i] = false
				}
			}
			start = end
		}
		return ov, true
	}
	r := 0
	for k := 0; k < lanes; k++ {
		i := int(sel[k])
		for int(cv.runEnds[r]) <= i {
			r++
		}
		switch rres[r] {
		case 1:
			ov.bools[k] = true
		case 2:
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
		default:
			ov.bools[k] = false
		}
	}
	return ov, true
}

func (n *vnCmpLit) evalDelta(vc *vecCtx, cv *colVec, ch *chunk, sel []int32, litF float64) *vec {
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	test := n.test
	var nulls []bool
	hasNull := cv.nulls != nil
	if sel == nil {
		for i := 0; i < lanes; i++ {
			if hasNull && cv.nulls[i] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[i] = true
				continue
			}
			ov.bools[i] = test(cmpFloat64(float64(cv.deltaAt(i)), litF))
		}
		return ov
	}
	for k, i := range sel {
		if hasNull && cv.nulls[i] {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		ov.bools[k] = test(cmpFloat64(float64(cv.deltaAt(int(i))), litF))
	}
	return ov
}

// cmpBools orders bools like Compare: false < true.
func cmpBools(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	}
	return 1
}

// vnInLit is IN over a column with an all-literal list, specialized for
// dictionary columns: the list probes the dict once per chunk into a
// boolean LUT indexed by code, so membership is one table load per lane.
// Non-string literals are dropped from the LUT — Compare never equates a
// string with any other type, so they cannot match a string column. Raw
// and join chunks delegate to the embedded generic vnIn.
type vnInLit struct {
	id   int
	col  int
	strs []string
	not  bool
	fb   vnode
}

func (n *vnInLit) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	if ch.gather != nil {
		return n.fb.eval(vc, ch, sel)
	}
	cv := &ch.cols[n.col]
	if cv.enc != encDict {
		return n.fb.eval(vc, ch, sel)
	}
	// Storage chunks hold <= chunkRows rows, so dicts fit a stack LUT.
	var lut [chunkRows]bool
	for _, s := range n.strs {
		if c := sort.SearchStrings(cv.dict, s); c < len(cv.dict) && cv.dict[c] == s {
			lut[c] = true
		}
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	hasNull := cv.nulls != nil
	if sel == nil {
		for i := 0; i < lanes; i++ {
			if hasNull && cv.nulls[i] {
				if nulls == nil {
					nulls = vc.nullbuf(n.id, lanes)
				}
				nulls[i] = true
				continue
			}
			ov.bools[i] = lut[cv.codes[i]] != n.not
		}
		return ov, nil
	}
	for k, i := range sel {
		if hasNull && cv.nulls[i] {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		ov.bools[k] = lut[cv.codes[i]] != n.not
	}
	return ov, nil
}

// ---- logic ----

type vnLogic struct {
	id   int
	and  bool
	l, r vnode
}

func (n *vnLogic) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	lv, err := n.l.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	setNull := func(k int) {
		if nulls == nil {
			nulls = vc.nullbuf(n.id, lanes)
		}
		nulls[k] = true
	}
	// Replicates the row path's three-valued logic exactly, including its
	// treatment of unconvertible (non-bool, non-numeric) operands.
	for k := 0; k < lanes; k++ {
		lb, lok, lnull := laneBool(lv, k)
		rb, rok, rnull := laneBool(rv, k)
		if n.and {
			if (lok && !lb) || (rok && !rb) {
				ov.bools[k] = false
				continue
			}
			if lnull || rnull {
				setNull(k)
				continue
			}
			ov.bools[k] = true
		} else {
			if (lok && lb) || (rok && rb) {
				ov.bools[k] = true
				continue
			}
			if lnull || rnull {
				setNull(k)
				continue
			}
			ov.bools[k] = false
		}
	}
	return ov, nil
}

type vnNot struct {
	id int
	x  vnode
}

func (n *vnNot) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	for k := 0; k < lanes; k++ {
		if xv.isNull(k) {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		b, ok, _ := laneBool(xv, k)
		if !ok {
			return nil, errNotNonBool(laneValue(xv, k))
		}
		ov.bools[k] = !b
	}
	return ov, nil
}

// ---- predicates ----

type vnBetween struct {
	id        int
	x, lo, hi vnode
	not       bool
}

func (n *vnBetween) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lo, err := n.lo.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	hi, err := n.hi.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	setNull := func(k int) {
		if nulls == nil {
			nulls = vc.nullbuf(n.id, lanes)
		}
		nulls[k] = true
	}
	num := func(v *vec) bool { return v.kind == TInt || v.kind == TFloat }
	switch {
	case num(xv) && num(lo) && num(hi):
		for k := 0; k < lanes; k++ {
			if xv.isNull(k) || lo.isNull(k) || hi.isNull(k) {
				setNull(k)
				continue
			}
			xf, _ := laneFloat(xv, k)
			lf, _ := laneFloat(lo, k)
			hf, _ := laneFloat(hi, k)
			in := cmpFloat64(xf, lf) >= 0 && cmpFloat64(xf, hf) <= 0
			ov.bools[k] = in != n.not
		}
	case xv.kind == TString && lo.kind == TString && hi.kind == TString:
		for k := 0; k < lanes; k++ {
			if xv.isNull(k) || lo.isNull(k) || hi.isNull(k) {
				setNull(k)
				continue
			}
			s := xv.str(k)
			in := s >= lo.str(k) && s <= hi.str(k)
			ov.bools[k] = in != n.not
		}
	default:
		for k := 0; k < lanes; k++ {
			if xv.isNull(k) || lo.isNull(k) || hi.isNull(k) {
				setNull(k)
				continue
			}
			x := laneValue(xv, k)
			in := Compare(x, laneValue(lo, k)) >= 0 && Compare(x, laneValue(hi, k)) <= 0
			ov.bools[k] = in != n.not
		}
	}
	return ov, nil
}

type vnIn struct {
	id   int
	x    vnode
	list []vnode
	not  bool
}

func (n *vnIn) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lvs := make([]*vec, len(n.list))
	for i, ln := range n.list {
		lv, err := ln.eval(vc, ch, sel)
		if err != nil {
			return nil, err
		}
		lvs[i] = lv
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	for k := 0; k < lanes; k++ {
		if xv.isNull(k) {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		found := false
		for _, lv := range lvs {
			if lv.isNull(k) {
				continue
			}
			if lanesEqual(xv, lv, k) {
				found = true
				break
			}
		}
		ov.bools[k] = found != n.not
	}
	return ov, nil
}

// lanesEqual mirrors Compare(a, b) == 0 for two non-NULL lanes.
func lanesEqual(a, b *vec, k int) bool {
	af, aok := laneFloat(a, k)
	bf, bok := laneFloat(b, k)
	if aok && bok {
		return cmpFloat64(af, bf) == 0
	}
	if a.kind == TString && b.kind == TString {
		return a.str(k) == b.str(k)
	}
	return Compare(laneValue(a, k), laneValue(b, k)) == 0
}

type vnLike struct {
	id     int
	x, pat vnode
	not    bool
}

func (n *vnLike) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	pv, err := n.pat.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	var nulls []bool
	for k := 0; k < lanes; k++ {
		if xv.isNull(k) || pv.isNull(k) {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		ov.bools[k] = likeMatch(laneStr(xv, k), laneStr(pv, k)) != n.not
	}
	return ov, nil
}

type vnIsNull struct {
	id  int
	x   vnode
	not bool
}

func (n *vnIsNull) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TBool, lanes)
	for k := 0; k < lanes; k++ {
		ov.bools[k] = xv.isNull(k) != n.not
	}
	return ov, nil
}

// ---- scan-hot scalar functions ----

type vnSubstr struct {
	id            int
	x             vnode
	start, length int64
}

func (n *vnSubstr) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TString, lanes)
	var nulls []bool
	for k := 0; k < lanes; k++ {
		if xv.isNull(k) {
			if nulls == nil {
				nulls = vc.nullbuf(n.id, lanes)
			}
			nulls[k] = true
			continue
		}
		s := laneStr(xv, k)
		if int(n.start) > len(s) {
			ov.strs[k] = ""
			continue
		}
		rest := s[n.start-1:]
		if int(n.length) < len(rest) {
			rest = rest[:n.length]
		}
		ov.strs[k] = rest
	}
	return ov, nil
}

type vnYear struct {
	id int
	x  vnode
}

func (n *vnYear) eval(vc *vecCtx, ch *chunk, sel []int32) (*vec, error) {
	xv, err := n.x.eval(vc, ch, sel)
	if err != nil {
		return nil, err
	}
	lanes := laneCount(ch, sel)
	ov := vc.out(n.id, TInt, lanes)
	var nulls []bool
	setNull := func(k int) {
		if nulls == nil {
			nulls = vc.nullbuf(n.id, lanes)
		}
		nulls[k] = true
	}
	for k := 0; k < lanes; k++ {
		if xv.isNull(k) {
			setNull(k)
			continue
		}
		s := laneStr(xv, k)
		if len(s) >= 4 {
			if y, ok := ToInt(s[:4]); ok {
				ov.ints[k] = y
				continue
			}
		}
		setNull(k)
	}
	return ov, nil
}

// ---- lowering ----

type vecCompiler struct {
	eng  *Engine
	rel  *relation
	nbuf int
}

func (c *vecCompiler) newID() int {
	id := c.nbuf
	c.nbuf++
	return id
}

// lower returns a vectorized node for e: a kernel when one exists, else a
// per-lane wrapper around the pure row-compiled closure. nil means e
// cannot run on the vectorized path at all (impure, subqueries, columns
// that resolve only in enclosing scopes).
func (c *vecCompiler) lower(e sqlparser.Expr) vnode {
	if n := c.lowerVec(e); n != nil {
		return n
	}
	fn, pure, ok := compileExpr(c.eng, c.rel, e)
	if !ok || !pure {
		return nil
	}
	return &vnScalar{id: c.newID(), fn: fn}
}

func (c *vecCompiler) lowerVec(e sqlparser.Expr) vnode {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return &vnLit{id: c.newID(), val: x.Val}
	case *sqlparser.ColumnRef:
		idx, err := c.rel.resolve(x.Table, x.Name)
		if err != nil {
			return nil
		}
		return &vnCol{id: c.newID(), col: idx}
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			l, r := c.lower(x.L), c.lower(x.R)
			if l == nil || r == nil {
				return nil
			}
			return &vnLogic{id: c.newID(), and: x.Op == "AND", l: l, r: r}
		case "=", "<>", "<", "<=", ">", ">=":
			l, r := c.lower(x.L), c.lower(x.R)
			if l == nil || r == nil {
				return nil
			}
			generic := &vnCmp{id: c.newID(), op: x.Op, l: l, r: r}
			// Column-vs-literal shapes get the encoding-aware kernel, with
			// the generic node embedded for chunks it cannot handle. A
			// literal on the left mirrors the operator.
			if cn, ok := l.(*vnCol); ok {
				if ln, ok := r.(*vnLit); ok && ln.val != nil {
					return &vnCmpLit{id: c.newID(), op: x.Op, col: cn.col, lit: ln.val,
						test: cmpTest(x.Op), fb: generic}
				}
			}
			if cn, ok := r.(*vnCol); ok {
				if ln, ok := l.(*vnLit); ok && ln.val != nil {
					op := flipCmp(x.Op)
					return &vnCmpLit{id: c.newID(), op: op, col: cn.col, lit: ln.val,
						test: cmpTest(op), fb: generic}
				}
			}
			return generic
		case "+", "-", "*", "/", "%":
			if _, isInterval := x.R.(*sqlparser.IntervalExpr); isInterval {
				return nil // date arithmetic: scalar fallback
			}
			l, r := c.lower(x.L), c.lower(x.R)
			if l == nil || r == nil {
				return nil
			}
			return &vnArith{id: c.newID(), op: x.Op, l: l, r: r}
		}
		return nil
	case *sqlparser.UnaryExpr:
		xn := c.lower(x.X)
		if xn == nil {
			return nil
		}
		switch x.Op {
		case "-":
			return &vnNeg{id: c.newID(), x: xn}
		case "NOT":
			return &vnNot{id: c.newID(), x: xn}
		}
		return nil
	case *sqlparser.BetweenExpr:
		xn, lo, hi := c.lower(x.X), c.lower(x.Lo), c.lower(x.Hi)
		if xn == nil || lo == nil || hi == nil {
			return nil
		}
		return &vnBetween{id: c.newID(), x: xn, lo: lo, hi: hi, not: x.Not}
	case *sqlparser.InExpr:
		if x.Subquery != nil {
			return nil
		}
		xn := c.lower(x.X)
		if xn == nil {
			return nil
		}
		list := make([]vnode, len(x.List))
		for i, le := range x.List {
			ln := c.lower(le)
			if ln == nil {
				return nil
			}
			list[i] = ln
		}
		generic := &vnIn{id: c.newID(), x: xn, list: list, not: x.Not}
		// Column IN (all literals): dictionary LUT kernel. Only the string
		// literals go in the probe set — nothing else can equal a string.
		if cn, ok := xn.(*vnCol); ok {
			var strs []string
			allLit := true
			for _, le := range x.List {
				lit, ok := le.(*sqlparser.Literal)
				if !ok {
					allLit = false
					break
				}
				if s, isStr := lit.Val.(string); isStr {
					strs = append(strs, s)
				}
			}
			if allLit {
				return &vnInLit{id: c.newID(), col: cn.col, strs: strs, not: x.Not, fb: generic}
			}
		}
		return generic
	case *sqlparser.LikeExpr:
		xn, pn := c.lower(x.X), c.lower(x.Pattern)
		if xn == nil || pn == nil {
			return nil
		}
		return &vnLike{id: c.newID(), x: xn, pat: pn, not: x.Not}
	case *sqlparser.IsNullExpr:
		xn := c.lower(x.X)
		if xn == nil {
			return nil
		}
		return &vnIsNull{id: c.newID(), x: xn, not: x.Not}
	case *sqlparser.FuncCall:
		if x.Over != nil || sqlparser.AggregateFuncs[x.Name] || x.Star {
			return nil
		}
		switch x.Name {
		case "substr", "substring":
			if len(x.Args) == 3 {
				start, okS := literalInt(x.Args[1])
				length, okL := literalInt(x.Args[2])
				if okS && okL && start >= 1 && length >= 0 {
					xn := c.lower(x.Args[0])
					if xn == nil {
						return nil
					}
					return &vnSubstr{id: c.newID(), x: xn, start: start, length: length}
				}
			}
		case "year":
			if len(x.Args) == 1 {
				xn := c.lower(x.Args[0])
				if xn == nil {
					return nil
				}
				return &vnYear{id: c.newID(), x: xn}
			}
		}
		return nil // other scalar functions: per-lane fallback
	}
	return nil
}

// lowerConjuncts flattens the top-level AND conjuncts of a WHERE clause
// and lowers each one, so the filter can evaluate them one at a time over
// a shrinking selection vector — the vectorized analogue of the row path's
// short-circuit AND. Returns nil when any conjunct cannot lower (the full
// predicate could not either).
func (c *vecCompiler) lowerConjuncts(e sqlparser.Expr) []vnode {
	var conjs []vnode
	var walk func(e sqlparser.Expr) bool
	walk = func(e sqlparser.Expr) bool {
		if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
			return walk(be.L) && walk(be.R)
		}
		n := c.lower(e)
		if n == nil {
			return false
		}
		conjs = append(conjs, n)
		return true
	}
	if !walk(e) {
		return nil
	}
	return conjs
}

// lowerWhere lowers a WHERE clause for the conjunct-pipeline filter: the
// conjunct list plus the full predicate for evalFilter's unconvertible
// bail path. A single-conjunct clause reuses the conjunct node as the full
// predicate rather than lowering the tree twice. Both nil when the clause
// cannot run vectorized.
func (c *vecCompiler) lowerWhere(e sqlparser.Expr) (full vnode, conjs []vnode) {
	conjs = c.lowerConjuncts(e)
	if conjs == nil {
		return nil, nil
	}
	if len(conjs) == 1 {
		return conjs[0], conjs
	}
	if full = c.lower(e); full == nil {
		return nil, nil
	}
	return full, conjs
}

// evalFilter applies the conjunct pipeline to one chunk: each conjunct is
// evaluated only over the lanes the previous ones kept. NULL conjuncts
// drop the lane (a NULL AND chain is never true), matching filter-level
// ToBool semantics. If a conjunct produces a value ToBool cannot convert —
// where the row path's quirky three-valued AND could still yield true —
// the whole predicate is re-evaluated un-split so semantics stay identical.
// sel == nil with all == true means every row passed.
func evalFilter(vc *vecCtx, ch *chunk, full vnode, conjs []vnode) (sel []int32, all bool, err error) {
	all = true
	for _, cn := range conjs {
		v, err := cn.eval(vc, ch, sel)
		if err != nil {
			return nil, false, err
		}
		lanes := laneCount(ch, sel)
		next, ok := refineSel(vc, v, sel, lanes)
		if !ok {
			// Unconvertible conjunct value: bail to the un-split predicate.
			wv, err := full.eval(vc, ch, nil)
			if err != nil {
				return nil, false, err
			}
			sel, all = buildSel(vc, wv, ch.n)
			if all {
				sel = nil
			}
			return sel, all, nil
		}
		if len(next) == lanes {
			continue // every candidate lane passed; selection unchanged
		}
		all = false
		sel = next
		if len(sel) == 0 {
			return sel, false, nil
		}
	}
	return sel, all, nil
}

// refineSel keeps the lanes of cur (nil = all chunk lanes) where v is
// ToBool-true. ok is false when a non-NULL lane cannot convert to bool —
// the caller must re-evaluate the full predicate instead.
func refineSel(vc *vecCtx, v *vec, cur []int32, lanes int) (next []int32, ok bool) {
	if cap(vc.sel2) < lanes {
		vc.sel2 = make([]int32, 0, lanes)
	}
	out := vc.sel2[:0]
	keep := func(k int) {
		if cur != nil {
			out = append(out, cur[k])
		} else {
			out = append(out, int32(k))
		}
	}
	switch v.kind {
	case TBool:
		for k := 0; k < lanes; k++ {
			if !v.isNull(k) && v.bools[k] {
				keep(k)
			}
		}
	case TInt:
		for k := 0; k < lanes; k++ {
			if !v.isNull(k) && v.ints[k] != 0 {
				keep(k)
			}
		}
	case TFloat:
		for k := 0; k < lanes; k++ {
			if !v.isNull(k) && v.floats[k] != 0 {
				keep(k)
			}
		}
	case TString:
		for k := 0; k < lanes; k++ {
			if !v.isNull(k) {
				return nil, false
			}
		}
	default:
		for k := 0; k < lanes; k++ {
			x := v.anys[k]
			if x == nil {
				continue
			}
			b, bok := ToBool(x)
			if !bok {
				return nil, false
			}
			if b {
				keep(k)
			}
		}
	}
	// Swap buffers so the next conjunct's refine does not overwrite the
	// selection it is iterating.
	vc.sel2 = vc.sel[:0]
	vc.sel = out
	return out, true
}

// buildSel collects the lanes a WHERE vector keeps (ToBool semantics: keep
// when the value converts to true) into the context's reusable selection
// buffer. all reports that every lane passed, letting callers keep the
// full-chunk fast path.
func buildSel(vc *vecCtx, v *vec, lanes int) (sel []int32, all bool) {
	if cap(vc.sel) < lanes {
		vc.sel = make([]int32, 0, lanes)
	}
	out := vc.sel[:0]
	switch v.kind {
	case TBool:
		if v.nulls == nil {
			for k := 0; k < lanes; k++ {
				if v.bools[k] {
					out = append(out, int32(k))
				}
			}
		} else {
			for k := 0; k < lanes; k++ {
				if !v.nulls[k] && v.bools[k] {
					out = append(out, int32(k))
				}
			}
		}
	case TInt:
		for k := 0; k < lanes; k++ {
			if !v.isNull(k) && v.ints[k] != 0 {
				out = append(out, int32(k))
			}
		}
	case TFloat:
		for k := 0; k < lanes; k++ {
			if !v.isNull(k) && v.floats[k] != 0 {
				out = append(out, int32(k))
			}
		}
	case TString:
		// ToBool fails on strings: nothing passes.
	default:
		for k := 0; k < lanes; k++ {
			if b, ok := ToBool(v.anys[k]); ok && b {
				out = append(out, int32(k))
			}
		}
	}
	vc.sel = out
	return out, len(out) == lanes
}
