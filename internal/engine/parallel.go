package engine

import (
	"runtime/debug"
	"sync"

	"verdictdb/internal/faultpoint"
	"verdictdb/internal/sqlparser"
)

// Morsel-parallel scan execution. The snapshot's chunk sequence is
// partitioned into contiguous per-worker ranges; each worker runs the
// vectorized (or compiled row-at-a-time, on fallback) filter + partial
// aggregation over its chunks with a private group map, and the partial
// states merge in chunk order. Because morsels are contiguous and merged in
// order, the output group order equals the serial first-seen scan order, so
// parallel execution is deterministic for a fixed parallelism level. Exact
// float aggregates may differ from serial in the last bits (partial sums
// reassociate); approximate sketch aggregates (approx_median's reservoir)
// resample on merge and may differ from serial by up to the sketch's rank
// error.
//
// Only plans whose every expression compiled pure take this path; impure
// plans (rand()) and uncompilable ones run serially so that RNG draws
// happen in exactly the interpreted order — sample scrambles stay
// byte-identical.

const (
	// parallelMinRows is the snapshot size below which scans stay serial;
	// goroutine fan-out costs more than it saves on small tables.
	parallelMinRows = 4096
	// parallelChunkMin bounds how finely a scan is split.
	parallelChunkMin = 2048
)

// scanWorkers returns how many workers a scan of n rows should use (1 =
// serial).
func (e *Engine) scanWorkers(n int) int {
	if n < parallelMinRows {
		return 1
	}
	p := e.Parallelism()
	if byChunk := n / parallelChunkMin; byChunk < p {
		p = byChunk
	}
	if p < 1 {
		return 1
	}
	return p
}

// runChunks splits [0,n) into nw contiguous ranges and runs fn on each
// concurrently. The returned error is the one from the earliest range, so
// error identity matches a serial scan. A panicking worker is recovered
// into an *InternalError (its range's error slot) rather than crossing the
// goroutine boundary: sibling workers finish their morsels and the
// WaitGroup always drains, so a crash in one morsel leaks nothing.
func runChunks(nw, n int, fn func(w, lo, hi int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, nw)
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = &InternalError{Panic: r, Stack: debug.Stack()}
				}
			}()
			errs[w] = fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serialFilter applies a compiled predicate in row order.
func serialFilter(qc *queryCtx, rows [][]Value, pred compiledExpr) ([][]Value, error) {
	out := rows[:0:0]
	for _, row := range rows {
		if err := qc.tick(); err != nil {
			return nil, err
		}
		v, err := pred(row)
		if err != nil {
			return nil, err
		}
		if b, ok := ToBool(v); ok && b {
			out = append(out, row)
		}
	}
	return out, nil
}

// parallelFilter applies a pure compiled predicate across workers,
// preserving row order by concatenating per-chunk keeps.
func parallelFilter(qc *queryCtx, rows [][]Value, pred compiledExpr, nw int) ([][]Value, error) {
	outs := make([][][]Value, nw)
	err := runChunks(nw, len(rows), func(w, lo, hi int) error {
		var kept [][]Value
		poll := 0
		for _, row := range rows[lo:hi] {
			if poll++; poll&(pollEvery-1) == 0 {
				if err := qc.pollAbort(); err != nil {
					return err
				}
			}
			v, err := pred(row)
			if err != nil {
				return err
			}
			if b, ok := ToBool(v); ok && b {
				kept = append(kept, row)
			}
		}
		outs[w] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	res := make([][]Value, 0, total)
	for _, o := range outs {
		res = append(res, o...)
	}
	qc.eng.parallelScans.Add(1)
	return res, nil
}

// parallelJoinProbe hands the probe side of a vectorized hash join out as
// chunk morsels: contiguous probe-chunk ranges per worker, each probing the
// shared (read-only) hash table with private kernel buffers, output chunks
// concatenated in probe-chunk order — so join output order is identical to
// a serial probe, the same contract the scan morsels keep. needMatched
// allocates per-worker build-side matched bitmaps (RIGHT/FULL joins),
// OR-merged after the barrier.
func parallelJoinProbe(vj *vecJoin, needMatched bool) ([]*chunk, []bool, error) {
	chunks := vj.probeChunks
	nw := vj.eng.scanWorkers(vj.nProbe)
	if nw > len(chunks) {
		nw = len(chunks)
	}
	if nw <= 1 {
		pc := vj.newProbeCtx(needMatched)
		var out []*chunk
		for _, ch := range chunks {
			if err := vj.qc.pollAbort(); err != nil {
				return nil, nil, err
			}
			if err := faultpoint.Hit(faultpoint.SiteEngineJoinProbe); err != nil {
				return nil, nil, err
			}
			oc, err := vj.probeChunk(pc, ch)
			if err != nil {
				return nil, nil, err
			}
			if oc != nil {
				out = append(out, oc)
			}
		}
		return out, pc.matched, nil
	}
	outs := make([][]*chunk, nw)
	bitmaps := make([][]bool, nw)
	err := runChunks(nw, len(chunks), func(w, lo, hi int) error {
		pc := vj.newProbeCtx(needMatched)
		bitmaps[w] = pc.matched
		for _, ch := range chunks[lo:hi] {
			if err := vj.qc.pollAbort(); err != nil {
				return err
			}
			if err := faultpoint.Hit(faultpoint.SiteEngineJoinProbe); err != nil {
				return err
			}
			oc, err := vj.probeChunk(pc, ch)
			if err != nil {
				return err
			}
			if oc != nil {
				outs[w] = append(outs[w], oc)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]*chunk, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	var matched []bool
	if needMatched {
		matched = make([]bool, vj.nBuild)
		for _, bm := range bitmaps {
			if bm == nil {
				continue
			}
			for i, m := range bm {
				if m {
					matched[i] = true
				}
			}
		}
	}
	vj.eng.parallelScans.Add(1)
	return out, matched, nil
}

// aggSpec is one aggregate call with its compiled argument (nil for
// count(*)-style star calls) and the argument AST for vector lowering.
type aggSpec struct {
	fc     *sqlparser.FuncCall
	arg    compiledExpr
	argAST sqlparser.Expr
}

// scanPlan is a fully compiled scan→filter→aggregate pipeline for one
// SELECT block. It keeps the source ASTs so the vectorized path can lower
// them to chunk-at-a-time kernels.
type scanPlan struct {
	qc       *queryCtx
	eng      *Engine
	rel      *relation
	where    compiledExpr // nil when the query has no WHERE
	whereAST sqlparser.Expr
	keyFns   []compiledExpr
	keyASTs  []sqlparser.Expr
	specs    []aggSpec
	pure     bool

	groupBytes int64 // gauge charge per created group
}

// buildScanPlan compiles WHERE, GROUP BY keys, and aggregate arguments.
// ok=false sends the query to the interpreted path (which also owns
// reporting any expression errors, e.g. a bad percentile fraction).
func buildScanPlan(qc *queryCtx, rel *relation, sel *sqlparser.SelectStmt, aggCalls []*sqlparser.FuncCall, wherePred compiledExpr, wherePure bool) (*scanPlan, bool) {
	if sel.Where != nil && wherePred == nil {
		return nil, false
	}
	eng := qc.eng
	p := &scanPlan{qc: qc, eng: eng, rel: rel, where: wherePred, whereAST: sel.Where}
	pure := sel.Where == nil || wherePure
	for _, ge := range sel.GroupBy {
		fn, pu, ok := compileExpr(eng, rel, ge)
		if !ok {
			return nil, false
		}
		pure = pure && pu
		p.keyFns = append(p.keyFns, fn)   //verdict:nocharge plan-size: one entry per GROUP BY expression
		p.keyASTs = append(p.keyASTs, ge) //verdict:nocharge plan-size: one entry per GROUP BY expression
	}
	for _, fc := range aggCalls {
		if fc.Star {
			p.specs = append(p.specs, aggSpec{fc: fc}) //verdict:nocharge plan-size: one spec per aggregate call
			continue
		}
		if len(fc.Args) == 0 {
			return nil, false
		}
		fn, pu, ok := compileExpr(eng, rel, fc.Args[0])
		if !ok {
			return nil, false
		}
		pure = pure && pu
		p.specs = append(p.specs, aggSpec{fc: fc, arg: fn, argAST: fc.Args[0]}) //verdict:nocharge plan-size: one spec per aggregate call
	}
	// Each created group costs a map entry, the accumulators, and a boxed
	// representative row.
	p.groupBytes = bytesPerGroup + int64(len(aggCalls))*bytesPerAcc + int64(rel.width())*bytesPerValue
	// No upfront accumulator validation: newAccumulator errors (unknown
	// aggregate, bad percentile fraction) surface from run() with exactly
	// the message the interpreted path would produce, and validating here
	// would allocate sketch state (reservoirs, HLL registers) just to throw
	// it away.
	p.pure = pure
	return p, true
}

func (p *scanPlan) newAccs() ([]accumulator, error) {
	accs := make([]accumulator, len(p.specs))
	for i, sp := range p.specs {
		q, err := quantileLiteralArg(sp.fc)
		if err != nil {
			return nil, err
		}
		acc, err := newAccumulator(sp.fc, q, p.qc)
		if err != nil {
			return nil, err
		}
		accs[i] = acc
	}
	return accs, nil
}

// groupAcc is one group's partial state: the representative row plus one
// accumulator per aggregate call.
type groupAcc struct {
	repr []Value
	accs []accumulator
}

// chunkGroups is one worker's hash-aggregation state, with insertion order
// preserved for deterministic output.
type chunkGroups struct {
	m     map[string]*groupAcc
	order []string
}

func newChunkGroups() *chunkGroups { return &chunkGroups{m: map[string]*groupAcc{}} }

// scanRowsInto filters (when applyWhere) and partially aggregates rows
// into cg — the row-at-a-time path, used for impure/serial plans and as
// the per-chunk fallback when a vector kernel errors.
func (p *scanPlan) scanRowsInto(cg *chunkGroups, rows [][]Value, applyWhere bool) error {
	if err := faultpoint.Hit(faultpoint.SiteEngineScanRows); err != nil {
		return err
	}
	var buf []byte
	poll := 0 // local counter: this runs inside morsel workers
	for _, row := range rows {
		if poll++; poll&(pollEvery-1) == 0 {
			if err := p.qc.pollAbort(); err != nil {
				return err
			}
		}
		if applyWhere && p.where != nil {
			v, err := p.where(row)
			if err != nil {
				return err
			}
			if b, ok := ToBool(v); !ok || !b {
				continue
			}
		}
		buf = buf[:0]
		for _, kf := range p.keyFns {
			v, err := kf(row)
			if err != nil {
				return err
			}
			buf = appendGroupKey(buf, v)
			buf = append(buf, keySep)
		}
		g, ok := cg.m[string(buf)]
		if !ok {
			accs, err := p.newAccs()
			if err != nil {
				return err
			}
			p.qc.chargeMem(p.groupBytes)
			g = &groupAcc{repr: row, accs: accs}
			key := string(buf)
			cg.m[key] = g
			cg.order = append(cg.order, key)
		}
		for i, sp := range p.specs {
			if sp.arg == nil {
				g.accs[i].addStar()
				continue
			}
			v, err := sp.arg(row)
			if err != nil {
				return err
			}
			if err := g.accs[i].add(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeChunkGroups folds per-worker states together in chunk order, which
// reproduces the global first-seen group order of a serial scan.
func mergeChunkGroups(results []*chunkGroups) (*chunkGroups, error) {
	dst := results[0]
	if dst == nil {
		dst = newChunkGroups()
	}
	for _, src := range results[1:] {
		if src == nil {
			continue
		}
		for _, key := range src.order {
			sg := src.m[key]
			dg, ok := dst.m[key]
			if !ok {
				// Ownership transfer: sg was charged (p.groupBytes) when its
				// worker created it; moving it between tables adds nothing.
				dst.m[key] = sg                    //verdict:nocharge ownership transfer of an already-charged group
				dst.order = append(dst.order, key) //verdict:nocharge ownership transfer of an already-charged group
				continue
			}
			for i := range dg.accs {
				if err := dg.accs[i].merge(sg.accs[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return dst, nil
}

// finish converts the merged group state into output entries, emitting the
// single zero-row entry a global aggregate requires.
func (p *scanPlan) finish(cg *chunkGroups) ([]*entry, error) {
	if len(cg.order) == 0 && len(p.keyFns) == 0 {
		accs, err := p.newAccs()
		if err != nil {
			return nil, err
		}
		cg.m[""] = &groupAcc{repr: make([]Value, p.rel.width()), accs: accs}
		cg.order = append(cg.order, "")
	}
	entries := make([]*entry, 0, len(cg.order))
	for _, key := range cg.order {
		g := cg.m[key]
		av := make(map[*sqlparser.FuncCall]Value, len(p.specs))
		for i, sp := range p.specs {
			av[sp.fc] = g.accs[i].result()
		}
		entries = append(entries, &entry{row: g.repr, aggVals: av})
	}
	return entries, nil
}

// run executes the plan. Pure plans over a columnar source run vectorized,
// chunk-at-a-time morsels (vecexec.go); pure plans over materialized rows
// fan out row morsels; impure plans run serially with the same two-phase
// (filter, then aggregate) structure as the interpreted path so impure
// expressions draw from the engine RNG in the identical order.
func (p *scanPlan) run(rel *relation) ([]*entry, error) {
	if p.pure && rel.rows == nil && rel.src != nil && !p.eng.noVec.Load() {
		if vp := buildVecPlan(p); vp != nil {
			return vp.run(rel.src)
		}
	}
	rows, err := p.qc.materialize(rel)
	if err != nil {
		return nil, err
	}
	nw := 1
	if p.pure {
		nw = p.eng.scanWorkers(len(rows))
	}
	var cg *chunkGroups
	if nw > 1 {
		results := make([]*chunkGroups, nw)
		err := runChunks(nw, len(rows), func(w, lo, hi int) error {
			g := newChunkGroups()
			results[w] = g
			return p.scanRowsInto(g, rows[lo:hi], true)
		})
		if err != nil {
			return nil, err
		}
		cg, err = mergeChunkGroups(results)
		if err != nil {
			return nil, err
		}
		p.eng.parallelScans.Add(1)
	} else {
		if p.where != nil {
			var err error
			rows, err = serialFilter(p.qc, rows, p.where)
			if err != nil {
				return nil, err
			}
		}
		cg = newChunkGroups()
		if err := p.scanRowsInto(cg, rows, false); err != nil {
			return nil, err
		}
	}
	return p.finish(cg)
}

// projCol is one compiled projection column: either a direct copy of a
// source column (fn nil) or a compiled expression.
type projCol struct {
	fn  compiledExpr
	idx int
}

// parallelProject computes the output rows for all entries across workers;
// output order is positional, so the result is identical to a serial pass.
func parallelProject(qc *queryCtx, entries []*entry, items []projCol, nw int) ([][]Value, error) {
	out := make([][]Value, len(entries))
	err := runChunks(nw, len(entries), func(w, lo, hi int) error {
		poll := 0
		for i := lo; i < hi; i++ {
			if poll++; poll&(pollEvery-1) == 0 {
				if err := qc.pollAbort(); err != nil {
					return err
				}
			}
			en := entries[i]
			row := make([]Value, len(items))
			for j, it := range items {
				if it.fn == nil {
					row[j] = en.row[it.idx]
					continue
				}
				v, err := it.fn(en.row)
				if err != nil {
					return err
				}
				row[j] = v
			}
			out[i] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	qc.eng.parallelScans.Add(1)
	return out, nil
}
