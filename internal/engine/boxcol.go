package engine

import "unsafe"

// Bulk lane boxing for the ResultSet boundary (late materialization).
//
// A Go interface holding a non-pointer-shaped concrete type (int64,
// float64, string, bool) is two words: the type descriptor and a pointer to
// the value. The runtime's conversion allocates a fresh heap cell per
// value — the per-row cost that dominated E1Project. But an interface may
// point at any live memory, and sealed chunk storage is immutable for the
// table's lifetime, so the box can alias the column's backing array
// directly: we assemble the two words by hand from a cached type descriptor
// and an interior pointer into the vector. Interior pointers keep the whole
// backing array alive, which the table does anyway.
//
// Kernel-computed vectors live in per-worker buffers that the next chunk
// overwrites, so those are snapshotted into one fresh slice per chunk first
// — a single allocation where per-row boxing paid one per value.
//
// GC safety: eface's fields are unsafe.Pointer, so stores through *eface
// are ordinary pointer stores and get the compiler's write barriers. The
// type word always points at an immortal runtime type descriptor and the
// data word at a live slice element, so the heap is precise at every
// intermediate state. No code ever reads a half-written slot: the blocks
// are worker-local until returned.

type eface struct {
	typ  unsafe.Pointer
	data unsafe.Pointer
}

// typeWordOf extracts the runtime type descriptor word from a boxed value.
func typeWordOf(v Value) unsafe.Pointer {
	return (*eface)(unsafe.Pointer(&v)).typ
}

// Cached descriptor words for the four vector element types.
var (
	int64TypeWord   = typeWordOf(int64(0))
	float64TypeWord = typeWordOf(float64(0))
	stringTypeWord  = typeWordOf("")
	boolTypeWord    = typeWordOf(false)
)

// efaceSlice reinterprets a []Value block as its raw two-word slots for
// bulk construction. Value (interface) and eface share layout.
func efaceSlice(vs []Value) []eface {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*eface)(unsafe.Pointer(&vs[0])), len(vs))
}

// boxColLanes boxes the selected lanes of a storage column into dst at the
// given stride (dst[k*stride] receives lane k), reading through the
// column's encoding. NULL lanes keep the zero (nil) interface the block was
// allocated with. Chunk storage is immutable, so every non-decoding path
// boxes interior pointers and allocates nothing; only delta columns decode
// into one fresh vector per call.
func boxColLanes(dst []Value, stride int, cv *colVec, sel []int32, lanes int) {
	switch cv.enc {
	case encDict:
		for k := 0; k < lanes; k++ {
			i := k
			if sel != nil {
				i = int(sel[k])
			}
			if cv.nulls != nil && cv.nulls[i] {
				continue
			}
			dst[k*stride] = cv.dictBoxed[cv.codes[i]]
		}
		return
	case encRLE:
		eb := efaceSlice(dst)
		r := 0
		for k := 0; k < lanes; k++ {
			i := k
			if sel != nil {
				i = int(sel[k])
			}
			for int(cv.runEnds[r]) <= i {
				r++
			}
			if cv.nulls != nil && cv.nulls[r] {
				continue
			}
			s := k * stride
			switch cv.kind {
			case TInt:
				eb[s].data = unsafe.Pointer(&cv.ints[r])
				eb[s].typ = int64TypeWord
			case TFloat:
				eb[s].data = unsafe.Pointer(&cv.floats[r])
				eb[s].typ = float64TypeWord
			case TString:
				eb[s].data = unsafe.Pointer(&cv.strs[r])
				eb[s].typ = stringTypeWord
			case TBool:
				eb[s].data = unsafe.Pointer(&cv.bools[r])
				eb[s].typ = boolTypeWord
			}
		}
		return
	case encDelta:
		vals := make([]int64, lanes)
		eb := efaceSlice(dst)
		for k := 0; k < lanes; k++ {
			i := k
			if sel != nil {
				i = int(sel[k])
			}
			if cv.nulls != nil && cv.nulls[i] {
				continue
			}
			vals[k] = cv.deltaAt(i)
			s := k * stride
			eb[s].data = unsafe.Pointer(&vals[k])
			eb[s].typ = int64TypeWord
		}
		return
	}
	if cv.kind == TAny {
		for k := 0; k < lanes; k++ {
			i := k
			if sel != nil {
				i = int(sel[k])
			}
			dst[k*stride] = cv.anys[i] // original box (nil = NULL)
		}
		return
	}
	eb := efaceSlice(dst)
	for k := 0; k < lanes; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		if cv.nulls != nil && cv.nulls[i] {
			continue
		}
		s := k * stride
		switch cv.kind {
		case TInt:
			eb[s].data = unsafe.Pointer(&cv.ints[i])
			eb[s].typ = int64TypeWord
		case TFloat:
			eb[s].data = unsafe.Pointer(&cv.floats[i])
			eb[s].typ = float64TypeWord
		case TString:
			eb[s].data = unsafe.Pointer(&cv.strs[i])
			eb[s].typ = stringTypeWord
		case TBool:
			eb[s].data = unsafe.Pointer(&cv.bools[i])
			eb[s].typ = boolTypeWord
		}
	}
}

// boxVecLanes boxes all lanes of a kernel-computed vector into dst at the
// given stride. The vector's typed storage belongs to a reused per-worker
// buffer, so it is snapshotted into one fresh slice the boxes can alias
// (one allocation per chunk-column). Dictionary vectors reuse the shared
// pre-boxed entries and TAny lanes are already boxed — both zero-alloc.
func boxVecLanes(dst []Value, stride int, v *vec, lanes int) {
	if v.kind == TAny {
		for k := 0; k < lanes; k++ {
			dst[k*stride] = v.anys[k]
		}
		return
	}
	if v.dict != nil {
		for k := 0; k < lanes; k++ {
			if v.isNull(k) {
				continue
			}
			dst[k*stride] = v.dictBoxed[v.codes[k]]
		}
		return
	}
	eb := efaceSlice(dst)
	switch v.kind {
	case TInt:
		vals := append([]int64(nil), v.ints...)
		for k := 0; k < lanes; k++ {
			if v.nulls != nil && v.nulls[k] {
				continue
			}
			s := k * stride
			eb[s].data = unsafe.Pointer(&vals[k])
			eb[s].typ = int64TypeWord
		}
	case TFloat:
		vals := append([]float64(nil), v.floats...)
		for k := 0; k < lanes; k++ {
			if v.nulls != nil && v.nulls[k] {
				continue
			}
			s := k * stride
			eb[s].data = unsafe.Pointer(&vals[k])
			eb[s].typ = float64TypeWord
		}
	case TString:
		vals := append([]string(nil), v.strs...)
		for k := 0; k < lanes; k++ {
			if v.nulls != nil && v.nulls[k] {
				continue
			}
			s := k * stride
			eb[s].data = unsafe.Pointer(&vals[k])
			eb[s].typ = stringTypeWord
		}
	case TBool:
		vals := append([]bool(nil), v.bools...)
		for k := 0; k < lanes; k++ {
			if v.nulls != nil && v.nulls[k] {
				continue
			}
			s := k * stride
			eb[s].data = unsafe.Pointer(&vals[k])
			eb[s].typ = boolTypeWord
		}
	}
}
