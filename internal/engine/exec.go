package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"verdictdb/internal/faultpoint"
	"verdictdb/internal/sqlparser"
)

// ResultSet is the output of a query: column names plus rows. RowsScanned
// counts base-table rows read while answering, which the benchmark harness
// uses as an engine-independent I/O measure.
type ResultSet struct {
	Cols        []string
	Rows        [][]Value
	RowsScanned int64

	colOnce sync.Once
	colIdx  map[string]int
}

// ColIndex returns the index of the named output column, -1 when absent,
// or AmbiguousColIndex when several output columns share the name
// case-insensitively. The lowercase lookup map is built once on first use.
func (rs *ResultSet) ColIndex(name string) int {
	rs.colOnce.Do(func() {
		rs.colIdx = buildLowerIndex(rs.Cols)
	})
	if i, ok := rs.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Query parses and executes a SELECT statement.
func (e *Engine) Query(sql string) (*ResultSet, error) {
	return e.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a context: execution polls ctx between chunks
// (or every pollEvery rows on interpreted paths) and returns ctx.Err() with
// every morsel worker drained; a memory budget carried by ctx (or the
// engine default) aborts with ErrMemoryBudget; panics anywhere below are
// contained into *InternalError, leaving the engine usable.
func (e *Engine) QueryContext(ctx context.Context, sql string) (rs *ResultSet, err error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Query requires SELECT, got %T", stmt)
	}
	defer containPanic(&err, sql)
	if err := faultpoint.Hit(faultpoint.SiteEngineQuery); err != nil {
		return nil, err
	}
	qc := e.newQueryCtx(ctx, sql)
	rs, err = execSelectWithOuter(qc, sel, nil)
	if err != nil {
		return nil, stampQuery(err, sql)
	}
	rs.RowsScanned = qc.scanned
	return rs, nil
}

// Exec parses and executes any statement. SELECTs return their result set;
// DDL/DML return an empty result set.
func (e *Engine) Exec(sql string) (*ResultSet, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext is Exec under a context; see QueryContext for the contract.
func (e *Engine) ExecContext(ctx context.Context, sql string) (*ResultSet, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.execStmtContext(ctx, stmt, sql)
}

// ExecStmt executes an already-parsed statement.
func (e *Engine) ExecStmt(stmt sqlparser.Statement) (*ResultSet, error) {
	return e.ExecStmtContext(context.Background(), stmt)
}

// ExecStmtContext executes an already-parsed statement under a context.
func (e *Engine) ExecStmtContext(ctx context.Context, stmt sqlparser.Statement) (*ResultSet, error) {
	return e.execStmtContext(ctx, stmt, "")
}

func (e *Engine) execStmtContext(ctx context.Context, stmt sqlparser.Statement, sql string) (rs *ResultSet, err error) {
	defer containPanic(&err, sql)
	rs, err = e.execStmtInner(ctx, stmt)
	if err != nil {
		return nil, stampQuery(err, sql)
	}
	return rs, nil
}

func (e *Engine) execStmtInner(ctx context.Context, stmt sqlparser.Statement) (*ResultSet, error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		qc := e.newQueryCtx(ctx, "")
		rs, err := execSelectWithOuter(qc, s, nil)
		if err != nil {
			return nil, err
		}
		rs.RowsScanned = qc.scanned
		return rs, nil
	case *sqlparser.CreateTableStmt:
		if s.AsSelect != nil {
			qc := e.newQueryCtx(ctx, "")
			rs, err := execSelectWithOuter(qc, s.AsSelect, nil)
			if err != nil {
				return nil, err
			}
			cols := make([]Column, len(rs.Cols))
			for i, c := range rs.Cols {
				cols[i] = Column{Name: c, Type: inferColType(rs.Rows, i)}
			}
			if err := e.storeResult(qc, s.Name, cols, rs.Rows, s.IfNotExists); err != nil {
				return nil, err
			}
			return &ResultSet{RowsScanned: qc.scanned}, nil
		}
		cols := make([]Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = Column{Name: c.Name, Type: TypeFromSQL(c.Type)}
		}
		if s.IfNotExists && e.HasTable(s.Name) {
			return &ResultSet{}, nil
		}
		if err := e.CreateTable(s.Name, cols); err != nil {
			return nil, err
		}
		return &ResultSet{}, nil
	case *sqlparser.DropTableStmt:
		if err := e.DropTable(s.Name, s.IfExists); err != nil {
			return nil, err
		}
		return &ResultSet{}, nil
	case *sqlparser.InsertStmt:
		return e.execInsert(ctx, s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (e *Engine) execInsert(ctx context.Context, s *sqlparser.InsertStmt) (*ResultSet, error) {
	t, err := e.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	// Map insert columns to table positions.
	var colIdx []int
	if len(s.Columns) > 0 {
		for _, c := range s.Columns {
			idx := t.ColIndex(c)
			if idx == AmbiguousColIndex {
				return nil, fmt.Errorf("%w: %q in insert", ErrAmbiguousColumn, c)
			}
			if idx < 0 {
				return nil, fmt.Errorf("engine: unknown column %q in insert", c)
			}
			colIdx = append(colIdx, idx)
		}
	} else {
		for i := range t.Cols {
			colIdx = append(colIdx, i)
		}
	}
	qc := e.newQueryCtx(ctx, "")
	var srcRows [][]Value
	if s.Select != nil {
		rs, err := execSelectWithOuter(qc, s.Select, nil)
		if err != nil {
			return nil, err
		}
		srcRows = rs.Rows
	} else {
		ev := &env{qc: qc}
		for _, exprRow := range s.Rows {
			row := make([]Value, len(exprRow))
			for i, ex := range exprRow {
				v, err := ev.eval(ex)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}
	out := make([][]Value, 0, len(srcRows))
	for _, src := range srcRows {
		if len(src) != len(colIdx) {
			return nil, fmt.Errorf("engine: insert width mismatch: %d values for %d columns", len(src), len(colIdx))
		}
		row := make([]Value, len(t.Cols))
		for i, idx := range colIdx {
			row[idx] = src[i]
		}
		out = append(out, row)
	}
	if err := e.insertRowsCtx(qc, s.Table, out); err != nil {
		return nil, err
	}
	// Surface a seal-time budget overrun even when the insert was too short
	// for the amortized per-row tick to poll.
	if err := qc.pollAbort(); err != nil {
		return nil, err
	}
	return &ResultSet{}, nil
}

func inferColType(rows [][]Value, col int) ColType {
	for _, r := range rows {
		if r[col] != nil {
			return InferType(r[col])
		}
	}
	return TAny
}

// entry is one candidate output row before projection: the representative
// underlying row plus computed aggregate/window values.
type entry struct {
	row     []Value
	aggVals map[*sqlparser.FuncCall]Value
	winVals map[*sqlparser.FuncCall]Value
}

// execSelectWithOuter runs one SELECT block. outer provides the enclosing
// scope for correlated subqueries, or nil at top level.
func execSelectWithOuter(qc *queryCtx, sel *sqlparser.SelectStmt, outer *env) (*ResultSet, error) {
	// Cancellation gate per SELECT block: subqueries — including correlated
	// ones evaluated per outer row — re-enter here, so even O(outer × inner)
	// interpreted plans observe cancellation promptly.
	if err := qc.pollAbort(); err != nil {
		return nil, err
	}
	rel, err := buildFrom(qc, sel.From, outer, collectRangePreds(sel.Where))
	if err != nil {
		return nil, err
	}

	baseEnv := &env{
		qc:            qc,
		rel:           rel,
		outer:         outer,
		subqueryCache: map[*sqlparser.SelectStmt]Value{},
		inSetCache:    map[*sqlparser.SelectStmt]map[string]bool{},
	}
	if outer != nil {
		baseEnv.subqueryCache = outer.subqueryCache
		baseEnv.inSetCache = outer.inSetCache
	}

	// Compile the WHERE predicate once per query; uncompilable predicates
	// (subqueries, outer references) leave wherePred nil and use the
	// interpreted loop.
	var wherePred compiledExpr
	wherePure := true
	if sel.Where != nil {
		if fn, pure, ok := compileExpr(qc.eng, rel, sel.Where); ok {
			wherePred, wherePure = fn, pure
		}
	}

	// Collect aggregate and window calls from the output clauses.
	aggCalls, winCalls := collectCalls(sel)
	hasAgg := len(aggCalls) > 0 || len(sel.GroupBy) > 0

	var entries []*entry
	var cols []string
	var projRows [][]Value
	var outColsPre []outCol // derived by the vectorized gate, reused by project
	projDone := false
	if hasAgg {
		// Fused compiled scan→filter→aggregate; vectorized chunk-at-a-time
		// over columnar sources, morsel-parallel when every expression is
		// pure, serial otherwise. Falls back to the interpreted pipeline
		// when anything fails to compile.
		if plan, ok := buildScanPlan(qc, rel, sel, aggCalls, wherePred, wherePure); ok {
			entries, err = plan.run(rel)
			if err != nil {
				return nil, err
			}
		} else {
			mat, err := qc.materialize(rel)
			if err != nil {
				return nil, err
			}
			rows, err := filterRows(qc, baseEnv, mat, sel.Where, wherePred, wherePure)
			if err != nil {
				return nil, err
			}
			entries, err = aggregate(baseEnv, rel, rows, sel, aggCalls)
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Non-aggregate select over a columnar source: fused vectorized
		// filter→project when every clause supports it. ORDER BY is
		// restricted to output aliases/positions because the vectorized
		// pipeline never materializes the pre-projection rows the
		// expression form would need.
		if rel.src != nil && rel.rows == nil && !qc.eng.noVec.Load() &&
			len(winCalls) == 0 && sel.Having == nil &&
			(sel.Where == nil || (wherePred != nil && wherePure)) {
			outCols, ocErr := deriveOutCols(rel, sel)
			if ocErr == nil {
				outColsPre = outCols
			}
			if ocErr == nil && orderByOutputsOnly(sel, outCols) {
				if vs := buildVecSelect(qc, rel, outCols, wherePred, sel.Where); vs != nil {
					projRows, err = vs.run(rel.src)
					if err != nil {
						return nil, err
					}
					cols = make([]string, len(outCols))
					for i, oc := range outCols {
						cols[i] = oc.name
					}
					projDone = true
				}
			}
		}
		if !projDone {
			mat, merr := qc.materialize(rel)
			if merr != nil {
				return nil, merr
			}
			rows, ferr := filterRows(qc, baseEnv, mat, sel.Where, wherePred, wherePure)
			if ferr != nil {
				return nil, ferr
			}
			entries = make([]*entry, len(rows))
			for i, row := range rows {
				entries[i] = &entry{row: row}
			}
		}
	}

	// HAVING.
	if sel.Having != nil {
		kept := entries[:0:0]
		for _, en := range entries {
			if err := baseEnv.qc.tick(); err != nil {
				return nil, err
			}
			baseEnv.row = en.row
			baseEnv.aggVals = en.aggVals
			v, err := baseEnv.eval(sel.Having)
			if err != nil {
				return nil, err
			}
			if b, ok := ToBool(v); ok && b {
				kept = append(kept, en)
			}
		}
		entries = kept
	}
	baseEnv.aggVals = nil

	if !projDone {
		// Window functions over the (possibly aggregated) entries.
		if len(winCalls) > 0 {
			if err := computeWindows(baseEnv, entries, winCalls); err != nil {
				return nil, err
			}
		}

		// Projection.
		cols, projRows, err = project(baseEnv, rel, entries, sel, hasAgg, outColsPre)
		if err != nil {
			return nil, err
		}
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]bool{}
		kept := projRows[:0:0]
		keptEntries := entries[:0:0]
		var buf []byte
		for i, pr := range projRows {
			buf = appendRowKey(buf[:0], pr)
			if !seen[string(buf)] {
				seen[string(buf)] = true
				kept = append(kept, pr)
				if i < len(entries) {
					keptEntries = append(keptEntries, entries[i])
				}
			}
		}
		projRows = kept
		entries = keptEntries
	}

	// ORDER BY.
	if len(sel.OrderBy) > 0 {
		if err := orderRows(baseEnv, sel, cols, entries, projRows); err != nil {
			return nil, err
		}
	}

	// LIMIT.
	if sel.Limit != nil {
		baseEnv.row = nil
		lv, err := baseEnv.eval(sel.Limit)
		if err != nil {
			return nil, err
		}
		n, ok := ToInt(lv)
		if !ok || n < 0 {
			return nil, fmt.Errorf("engine: bad LIMIT value %v", lv)
		}
		if int64(len(projRows)) > n {
			projRows = projRows[:n]
		}
	}

	rs := &ResultSet{Cols: cols, Rows: projRows}

	// UNION continuation.
	if sel.Union != nil {
		rhs, err := execSelectWithOuter(qc, sel.Union, outer)
		if err != nil {
			return nil, err
		}
		if len(rhs.Cols) != len(rs.Cols) {
			return nil, fmt.Errorf("engine: UNION column count mismatch (%d vs %d)", len(rs.Cols), len(rhs.Cols))
		}
		combined := append(rs.Rows, rhs.Rows...)
		if !sel.UnionAll {
			seen := map[string]bool{}
			dedup := combined[:0:0]
			var buf []byte
			for _, r := range combined {
				buf = appendRowKey(buf[:0], r)
				if !seen[string(buf)] {
					seen[string(buf)] = true
					dedup = append(dedup, r)
				}
			}
			combined = dedup
		}
		rs.Rows = combined
	}
	return rs, nil
}

// appendRowKey renders a whole row into one reusable dedup-key buffer.
func appendRowKey(buf []byte, row []Value) []byte {
	for _, v := range row {
		buf = appendGroupKey(buf, v)
		buf = append(buf, keySep)
	}
	return buf
}

// filterRows applies the WHERE clause: morsel-parallel for pure compiled
// predicates over large snapshots, serial compiled when impure or small,
// interpreted when the predicate did not compile.
func filterRows(qc *queryCtx, ev *env, rows [][]Value, where sqlparser.Expr, pred compiledExpr, pure bool) ([][]Value, error) {
	if where == nil {
		return rows, nil
	}
	if pred != nil {
		if pure {
			if nw := qc.eng.scanWorkers(len(rows)); nw > 1 {
				return parallelFilter(qc, rows, pred, nw)
			}
		}
		return serialFilter(qc, rows, pred)
	}
	filtered := rows[:0:0]
	for _, row := range rows {
		if err := qc.tick(); err != nil {
			return nil, err
		}
		ev.row = row
		v, err := ev.eval(where)
		if err != nil {
			return nil, err
		}
		if b, ok := ToBool(v); ok && b {
			filtered = append(filtered, row)
		}
	}
	return filtered, nil
}

// collectCalls gathers aggregate calls and window calls referenced by the
// SELECT items, HAVING, and ORDER BY clauses.
func collectCalls(sel *sqlparser.SelectStmt) (aggs, wins []*sqlparser.FuncCall) {
	seenAgg := map[*sqlparser.FuncCall]bool{}
	seenWin := map[*sqlparser.FuncCall]bool{}
	visit := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			fc, ok := x.(*sqlparser.FuncCall)
			if !ok {
				return true
			}
			if fc.Over != nil {
				if !seenWin[fc] {
					seenWin[fc] = true
					wins = append(wins, fc)
				}
				return true // descend: args may contain aggregates
			}
			if sqlparser.AggregateFuncs[fc.Name] {
				if !seenAgg[fc] {
					seenAgg[fc] = true
					aggs = append(aggs, fc)
				}
				return false // no nested aggregates
			}
			return true
		})
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			visit(it.Expr)
		}
	}
	if sel.Having != nil {
		visit(sel.Having)
	}
	for _, o := range sel.OrderBy {
		visit(o.Expr)
	}
	return aggs, wins
}

// aggregate hash-groups rows and computes every aggregate call per group.
func aggregate(baseEnv *env, rel *relation, rows [][]Value, sel *sqlparser.SelectStmt, aggCalls []*sqlparser.FuncCall) ([]*entry, error) {
	type group struct {
		repr []Value
		accs []accumulator
	}
	newGroup := func(repr []Value) (*group, error) {
		g := &group{repr: repr, accs: make([]accumulator, len(aggCalls))}
		for i, fc := range aggCalls {
			q, err := quantileLiteralArg(fc)
			if err != nil {
				return nil, err
			}
			acc, err := newAccumulator(fc, q, baseEnv.qc)
			if err != nil {
				return nil, err
			}
			g.accs[i] = acc
		}
		return g, nil
	}

	groups := map[string]*group{}
	var order []string
	var kb []byte
	for _, row := range rows {
		if err := baseEnv.qc.tick(); err != nil {
			return nil, err
		}
		baseEnv.row = row
		kb = kb[:0]
		for _, ge := range sel.GroupBy {
			v, err := baseEnv.eval(ge)
			if err != nil {
				return nil, err
			}
			kb = appendGroupKey(kb, v)
			kb = append(kb, keySep)
		}
		g, ok := groups[string(kb)]
		if !ok {
			var err error
			g, err = newGroup(row)
			if err != nil {
				return nil, err
			}
			baseEnv.qc.chargeMem(bytesPerGroup + int64(len(aggCalls))*bytesPerAcc)
			key := string(kb)
			groups[key] = g
			order = append(order, key)
		}
		for i, fc := range aggCalls {
			acc := g.accs[i]
			if fc.Star {
				acc.addStar()
				continue
			}
			if len(fc.Args) == 0 {
				return nil, fmt.Errorf("engine: aggregate %s requires an argument", fc.Name)
			}
			v, err := baseEnv.eval(fc.Args[0])
			if err != nil {
				return nil, err
			}
			if err := acc.add(v); err != nil {
				return nil, err
			}
		}
	}

	// A global aggregate over zero rows still yields one output row.
	if len(groups) == 0 && len(sel.GroupBy) == 0 {
		g, err := newGroup(make([]Value, rel.width()))
		if err != nil {
			return nil, err
		}
		groups[""] = g
		order = append(order, "")
	}

	entries := make([]*entry, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		av := make(map[*sqlparser.FuncCall]Value, len(aggCalls))
		for i, fc := range aggCalls {
			av[fc] = g.accs[i].result()
		}
		entries = append(entries, &entry{row: g.repr, aggVals: av})
	}
	return entries, nil
}

// computeWindows fills entry.winVals for every window call. Only aggregate
// functions with OVER (PARTITION BY ...) are supported — the shape
// VerdictDB's rewrites need.
func computeWindows(baseEnv *env, entries []*entry, winCalls []*sqlparser.FuncCall) error {
	for _, wc := range winCalls {
		if !sqlparser.AggregateFuncs[wc.Name] {
			return fmt.Errorf("engine: window function %s not supported", wc.Name)
		}
		// Partition entries.
		parts := map[string][]*entry{}
		var order []string
		var kb []byte
		for _, en := range entries {
			if err := baseEnv.qc.tick(); err != nil {
				return err
			}
			baseEnv.row = en.row
			baseEnv.aggVals = en.aggVals
			kb = kb[:0]
			for _, pe := range wc.Over.PartitionBy {
				v, err := baseEnv.eval(pe)
				if err != nil {
					return err
				}
				kb = appendGroupKey(kb, v)
				kb = append(kb, keySep)
			}
			k := string(kb)
			if _, ok := parts[k]; !ok {
				order = append(order, k)
			}
			parts[k] = append(parts[k], en)
		}
		q, err := quantileLiteralArg(wc)
		if err != nil {
			return err
		}
		for _, k := range order {
			members := parts[k]
			acc, err := newAccumulator(&sqlparser.FuncCall{
				Name: wc.Name, Distinct: wc.Distinct, Star: wc.Star, Args: wc.Args,
			}, q, baseEnv.qc)
			if err != nil {
				return err
			}
			for _, en := range members {
				if err := baseEnv.qc.tick(); err != nil {
					return err
				}
				if wc.Star {
					acc.addStar()
					continue
				}
				baseEnv.row = en.row
				baseEnv.aggVals = en.aggVals
				v, err := baseEnv.eval(wc.Args[0])
				if err != nil {
					return err
				}
				if err := acc.add(v); err != nil {
					return err
				}
			}
			res := acc.result()
			for _, en := range members {
				if en.winVals == nil {
					en.winVals = map[*sqlparser.FuncCall]Value{}
				}
				en.winVals[wc] = res
			}
		}
	}
	baseEnv.aggVals = nil
	return nil
}

// outCol is one output column of a SELECT list: either a direct copy of
// source column idx (expr nil, from star expansion) or an expression.
type outCol struct {
	name string
	expr sqlparser.Expr // nil means direct column copy
	idx  int            // source index for star expansion
}

// deriveOutCols expands the select list into output columns, resolving
// star items against the relation schema.
func deriveOutCols(rel *relation, sel *sqlparser.SelectStmt) ([]outCol, error) {
	var outCols []outCol
	for i, it := range sel.Items {
		switch {
		case it.Star:
			for ci := range rel.names {
				if it.StarTable != "" && !strings.EqualFold(rel.qualifiers[ci], it.StarTable) {
					continue
				}
				outCols = append(outCols, outCol{name: rel.names[ci], expr: nil, idx: ci})
			}
			if it.StarTable != "" {
				found := false
				for ci := range rel.names {
					if strings.EqualFold(rel.qualifiers[ci], it.StarTable) {
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("engine: unknown table %q in %s.*", it.StarTable, it.StarTable)
				}
			}
		default:
			name := it.Alias
			if name == "" {
				name = deriveColName(it.Expr, i)
			}
			outCols = append(outCols, outCol{name: name, expr: it.Expr, idx: -1})
		}
	}
	return outCols, nil
}

// orderByOutputsOnly reports whether every ORDER BY term is a 1-based
// output position or an output alias — the forms orderRows can evaluate
// from the projected rows alone, without the pre-projection entries the
// vectorized pipeline never materializes.
func orderByOutputsOnly(sel *sqlparser.SelectStmt, outCols []outCol) bool {
	for _, ob := range sel.OrderBy {
		if lit, ok := ob.Expr.(*sqlparser.Literal); ok {
			if p, isInt := lit.Val.(int64); isInt && p >= 1 && int(p) <= len(outCols) {
				continue
			}
			return false
		}
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			found := false
			for _, oc := range outCols {
				if strings.EqualFold(oc.name, cr.Name) {
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		return false
	}
	return true
}

// project evaluates the select list for every entry. outCols may carry the
// columns already derived by the caller; nil derives them here.
func project(baseEnv *env, rel *relation, entries []*entry, sel *sqlparser.SelectStmt, hasAgg bool, outCols []outCol) ([]string, [][]Value, error) {
	if outCols == nil {
		var err error
		outCols, err = deriveOutCols(rel, sel)
		if err != nil {
			return nil, nil, err
		}
	}

	cols := make([]string, len(outCols))
	for i, oc := range outCols {
		cols[i] = oc.name
	}

	// Compile each projection item once. Items referencing aggregates,
	// windows, or subqueries stay interpreted; when every item compiles
	// pure, large projections fan out across workers.
	items := make([]projCol, len(outCols))
	allCompiled, allPure := true, true
	for i, oc := range outCols {
		if oc.expr == nil {
			items[i] = projCol{idx: oc.idx}
			continue
		}
		if fn, pure, ok := compileExpr(baseEnv.qc.eng, rel, oc.expr); ok {
			items[i] = projCol{fn: fn}
			allPure = allPure && pure
		} else {
			allCompiled = false
		}
	}
	// Projection output is freshly boxed rows: charge it up front, so a
	// blow-up (huge unaggregated projection) aborts at the next poll.
	baseEnv.qc.chargeMem(int64(len(entries)) * (int64(len(outCols)) + 2) * bytesPerValue)
	if allCompiled && allPure {
		if nw := baseEnv.qc.eng.scanWorkers(len(entries)); nw > 1 {
			rowsOut, err := parallelProject(baseEnv.qc, entries, items, nw)
			if err != nil {
				return nil, nil, err
			}
			return cols, rowsOut, nil
		}
	}

	rowsOut := make([][]Value, len(entries))
	for ei, en := range entries {
		if err := baseEnv.qc.tick(); err != nil {
			return nil, nil, err
		}
		baseEnv.row = en.row
		baseEnv.aggVals = en.aggVals
		baseEnv.winVals = en.winVals
		row := make([]Value, len(outCols))
		for i, oc := range outCols {
			if oc.expr == nil {
				row[i] = en.row[oc.idx]
				continue
			}
			if fn := items[i].fn; fn != nil {
				v, err := fn(en.row)
				if err != nil {
					return nil, nil, err
				}
				row[i] = v
				continue
			}
			v, err := baseEnv.eval(oc.expr)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		rowsOut[ei] = row
	}
	baseEnv.aggVals = nil
	baseEnv.winVals = nil
	return cols, rowsOut, nil
}

func deriveColName(e sqlparser.Expr, pos int) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return x.Name
	case *sqlparser.FuncCall:
		return x.Name
	}
	return fmt.Sprintf("_c%d", pos)
}

// orderRows sorts projRows (and entries, kept in lockstep) by the ORDER BY
// terms. Terms may be output aliases, 1-based positions, or expressions over
// the pre-projection row.
func orderRows(baseEnv *env, sel *sqlparser.SelectStmt, cols []string, entries []*entry, projRows [][]Value) error {
	n := len(projRows)
	keys := make([][]Value, n)
	aliasIdx := func(name string) int {
		for i, c := range cols {
			if strings.EqualFold(c, name) {
				return i
			}
		}
		return -1
	}
	for i := 0; i < n; i++ {
		key := make([]Value, len(sel.OrderBy))
		for j, ob := range sel.OrderBy {
			// Positional: ORDER BY 2.
			if lit, ok := ob.Expr.(*sqlparser.Literal); ok {
				if p, isInt := lit.Val.(int64); isInt && p >= 1 && int(p) <= len(cols) {
					key[j] = projRows[i][p-1]
					continue
				}
			}
			// Output alias.
			if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
				if idx := aliasIdx(cr.Name); idx >= 0 {
					key[j] = projRows[i][idx]
					continue
				}
			}
			if i >= len(entries) {
				return fmt.Errorf("engine: cannot order by expression after DISTINCT")
			}
			baseEnv.row = entries[i].row
			baseEnv.aggVals = entries[i].aggVals
			baseEnv.winVals = entries[i].winVals
			v, err := baseEnv.eval(ob.Expr)
			if err != nil {
				return err
			}
			key[j] = v
		}
		keys[i] = key
	}
	baseEnv.aggVals = nil
	baseEnv.winVals = nil

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j, ob := range sel.OrderBy {
			va, vb := ka[j], kb[j]
			var c int
			switch {
			case va == nil && vb == nil:
				c = 0
			case va == nil:
				c = -1 // NULLs first ascending
			case vb == nil:
				c = 1
			default:
				c = Compare(va, vb)
			}
			if ob.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	permuted := make([][]Value, n)
	for i, id := range idx {
		permuted[i] = projRows[id]
	}
	copy(projRows, permuted)
	if len(entries) == n {
		pe := make([]*entry, n)
		for i, id := range idx {
			pe[i] = entries[id]
		}
		copy(entries, pe)
	}
	return nil
}
