package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// bigDB builds an engine with one wide-ish table large enough that a query
// spans many chunks and poll intervals.
func bigDB(t testing.TB, rows int) *Engine {
	t.Helper()
	e := NewSeeded(7)
	if err := e.CreateTable("t", []Column{
		{Name: "k", Type: TInt},
		{Name: "g", Type: TInt},
		{Name: "v", Type: TFloat},
	}); err != nil {
		t.Fatal(err)
	}
	batch := make([][]Value, 0, 4096)
	for i := 0; i < rows; i++ {
		batch = append(batch, []Value{int64(i), int64(i % 97), float64(i%1000) / 7})
		if len(batch) == cap(batch) {
			if err := e.InsertRows("t", batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := e.InsertRows("t", batch); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestQueryContextCancelled(t *testing.T) {
	e := bigDB(t, 60_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryContext(ctx, "select g, sum(v) from t group by g")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The engine must keep serving after an aborted query.
	rs, err := e.QueryContext(context.Background(), "select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ToInt(rs.Rows[0][0]); n != 60_000 {
		t.Fatalf("count after cancel: %d", n)
	}
}

func TestQueryContextCancelMidFlight(t *testing.T) {
	e := bigDB(t, 120_000)
	// A cross join of the table with itself is far too big to finish; the
	// per-row tick in the nested-loop inner closure must observe the cancel.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(ctx, "select count(*) from t a inner join t b on a.g < b.g")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not stop the query")
	}
	// Identical subsequent execution: the aborted query left no state behind.
	a := mustQuery(t, e, "select g, sum(v) as s from t group by g order by g")
	b := mustQuery(t, e, "select g, sum(v) as s from t group by g order by g")
	if len(a.Rows) != len(b.Rows) || len(a.Rows) != 97 {
		t.Fatalf("rows: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for r := range a.Rows {
		av, _ := ToFloat(a.Rows[r][1])
		bv, _ := ToFloat(b.Rows[r][1])
		if math.Float64bits(av) != math.Float64bits(bv) {
			t.Fatalf("row %d: %v vs %v", r, av, bv)
		}
	}
}

func TestQueryContextDeadline(t *testing.T) {
	e := bigDB(t, 120_000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := e.QueryContext(ctx, "select count(*) from t a inner join t b on a.g < b.g")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// Accumulator sketch state is charged against the gauge: a DISTINCT key
// set or a percentile buffer over one giant group blows a tiny budget even
// though the group hash table itself stays a single entry.
func TestMemoryBudgetAbortsAccumulatorGrowth(t *testing.T) {
	e := bigDB(t, 50_000)
	for _, q := range []string{
		"select count(distinct k) from t",
		"select sum(distinct k) from t",
		"select median(v) from t",
		"select percentile(v, 0.9) from t",
	} {
		ctx := WithMemoryBudget(context.Background(), 64<<10)
		if _, err := e.QueryContext(ctx, q); !errors.Is(err, ErrMemoryBudget) {
			t.Errorf("%s: want ErrMemoryBudget, got %v", q, err)
		}
		ctx = WithMemoryBudget(context.Background(), 1<<30)
		if _, err := e.QueryContext(ctx, q); err != nil {
			t.Errorf("%s under generous budget: %v", q, err)
		}
	}
}

func TestMemoryBudgetAbortsGroupBlowup(t *testing.T) {
	e := bigDB(t, 50_000)
	// Group by a near-unique key under a tiny budget: the group hash table
	// alone blows past it.
	ctx := WithMemoryBudget(context.Background(), 64<<10)
	_, err := e.QueryContext(ctx, "select k, sum(v) from t group by k")
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != 64<<10 || be.Used <= be.Limit {
		t.Fatalf("budget error detail: %+v (%v)", be, err)
	}
	// A generous budget lets the same query through.
	ctx = WithMemoryBudget(context.Background(), 1<<30)
	if _, err := e.QueryContext(ctx, "select k, sum(v) from t group by k"); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
}

func TestMemoryBudgetAbortsJoinBuild(t *testing.T) {
	e := bigDB(t, 50_000)
	ctx := WithMemoryBudget(context.Background(), 32<<10)
	_, err := e.QueryContext(ctx,
		"select count(*) from t a inner join t b on a.k = b.k")
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
}

func TestEngineDefaultMemoryBudget(t *testing.T) {
	e := bigDB(t, 50_000)
	e.SetMemoryBudget(64 << 10)
	_, err := e.Query("select k, sum(v) from t group by k")
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget via engine default, got %v", err)
	}
	// Per-query override disables it.
	ctx := WithMemoryBudget(context.Background(), 0)
	if _, err := e.QueryContext(ctx, "select k, sum(v) from t group by k"); err != nil {
		t.Fatalf("override off: %v", err)
	}
	e.SetMemoryBudget(0)
	if _, err := e.Query("select k, sum(v) from t group by k"); err != nil {
		t.Fatalf("budget cleared: %v", err)
	}
}

// TestWorkerPanicContained exercises the runChunks recovery path white-box:
// a panic in one morsel worker must surface as *InternalError with a stack,
// after every sibling worker drained.
func TestWorkerPanicContained(t *testing.T) {
	err := runChunks(4, 1000, func(w, lo, hi int) error {
		if lo == 0 {
			panic("boom at chunk 0")
		}
		return nil
	})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if fmt.Sprint(ie.Panic) != "boom at chunk 0" {
		t.Fatalf("panic value: %v", ie.Panic)
	}
	if len(ie.Stack) == 0 || !strings.Contains(string(ie.Stack), "runChunks") {
		t.Fatalf("stack not captured: %q", ie.Stack)
	}
}

// TestQueryBoundaryPanicContained forces a panic inside expression
// evaluation (unknown function resolution happens at eval time in some
// paths) — any panic below QueryContext must come back as *InternalError
// carrying the SQL, never crash the process.
func TestQueryBoundaryPanicStampsQuery(t *testing.T) {
	err := stampQuery(&InternalError{Panic: "x"}, "select 1")
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Query != "select 1" {
		t.Fatalf("stampQuery: %+v", err)
	}
	// An already-stamped error keeps its original query.
	err = stampQuery(&InternalError{Query: "inner", Panic: "x"}, "outer")
	if !errors.As(err, &ie) || ie.Query != "inner" {
		t.Fatalf("stampQuery overwrite: %+v", err)
	}
}
