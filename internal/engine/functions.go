package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"verdictdb/internal/sketch"
	"verdictdb/internal/sqlparser"
)

// evalScalarFunc dispatches non-aggregate function calls on the interpreted
// path: it evaluates the arguments and hands off to callScalar, which the
// compiled path (compile.go) shares.
func (ev *env) evalScalarFunc(x *sqlparser.FuncCall) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ev.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return callScalar(ev.qc.eng, x.Name, args)
}

// callScalar applies a scalar function to already-evaluated arguments.
// Function names arrive lower-cased from the parser. Several aliases exist
// so the dialect shims (Impala/Spark/Redshift spellings) all land on the
// same implementation — that is what lets the Syntax Changer stay thin.
func callScalar(eng *Engine, name string, args []Value) (Value, error) {
	switch name {
	case "rand", "random":
		return eng.randFloat(), nil
	case "rand_poisson1":
		// Poisson(1) variate via Knuth's product method (cheap at mean 1):
		// used by the consolidated-bootstrap baseline to draw per-resample
		// tuple multiplicities.
		const invE = 0.36787944117144233 // e^-1
		k := int64(0)
		prod := eng.randFloat()
		for prod > invE {
			k++
			prod *= eng.randFloat()
		}
		return k, nil
	case "floor":
		return unaryMath(args, math.Floor)
	case "ceil", "ceiling":
		return unaryMath(args, math.Ceil)
	case "abs":
		if len(args) == 1 {
			if i, ok := args[0].(int64); ok {
				if i < 0 {
					return -i, nil
				}
				return i, nil
			}
		}
		return unaryMath(args, math.Abs)
	case "sqrt":
		return unaryMath(args, math.Sqrt)
	case "exp":
		return unaryMath(args, math.Exp)
	case "ln", "log":
		return unaryMath(args, math.Log)
	case "sign":
		return unaryMath(args, func(f float64) float64 {
			switch {
			case f > 0:
				return 1
			case f < 0:
				return -1
			}
			return 0
		})
	case "round":
		if len(args) == 0 || args[0] == nil {
			return nil, nil
		}
		f, ok := ToFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("engine: round on non-numeric")
		}
		digits := int64(0)
		if len(args) > 1 && args[1] != nil {
			digits, _ = ToInt(args[1])
		}
		scale := math.Pow(10, float64(digits))
		return math.Round(f*scale) / scale, nil
	case "pow", "power":
		if len(args) != 2 {
			return nil, fmt.Errorf("engine: pow wants 2 args")
		}
		if args[0] == nil || args[1] == nil {
			return nil, nil
		}
		a, _ := ToFloat(args[0])
		b, _ := ToFloat(args[1])
		return math.Pow(a, b), nil
	case "mod":
		if len(args) != 2 {
			return nil, fmt.Errorf("engine: mod wants 2 args")
		}
		if args[0] == nil || args[1] == nil {
			return nil, nil
		}
		return arith("%", args[0], args[1])
	case "greatest", "least":
		var best Value
		for _, v := range args {
			if v == nil {
				continue
			}
			if best == nil ||
				(name == "greatest" && Compare(v, best) > 0) ||
				(name == "least" && Compare(v, best) < 0) {
				best = v
			}
		}
		return best, nil
	case "coalesce":
		for _, v := range args {
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case "nullif":
		if len(args) != 2 {
			return nil, fmt.Errorf("engine: nullif wants 2 args")
		}
		if args[0] != nil && args[1] != nil && Compare(args[0], args[1]) == 0 {
			return nil, nil
		}
		return args[0], nil
	case "if":
		if len(args) != 3 {
			return nil, fmt.Errorf("engine: if wants 3 args")
		}
		if b, ok := ToBool(args[0]); ok && b {
			return args[1], nil
		}
		return args[2], nil
	case "concat":
		var sb strings.Builder
		for _, v := range args {
			if v == nil {
				return nil, nil
			}
			sb.WriteString(ToStr(v))
		}
		return sb.String(), nil
	case "upper":
		return stringFunc(args, strings.ToUpper)
	case "lower":
		return stringFunc(args, strings.ToLower)
	case "trim":
		return stringFunc(args, strings.TrimSpace)
	case "length", "char_length":
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: length wants 1 arg")
		}
		if args[0] == nil {
			return nil, nil
		}
		return int64(len(ToStr(args[0]))), nil
	case "substr", "substring":
		if len(args) < 2 || args[0] == nil {
			return nil, nil
		}
		s := ToStr(args[0])
		start, _ := ToInt(args[1]) // 1-based
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return "", nil
		}
		rest := s[start-1:]
		if len(args) > 2 && args[2] != nil {
			n, _ := ToInt(args[2])
			if n < 0 {
				n = 0
			}
			if int(n) < len(rest) {
				rest = rest[:n]
			}
		}
		return rest, nil
	case "year":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		s := ToStr(args[0])
		if len(s) >= 4 {
			if y, ok := ToInt(s[:4]); ok {
				return y, nil
			}
		}
		return nil, nil
	case "month":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		s := ToStr(args[0])
		if len(s) >= 7 {
			if m, ok := ToInt(s[5:7]); ok {
				return m, nil
			}
		}
		return nil, nil
	case "hash01", "crc32_ratio", "md5_ratio", "bucket_hash":
		// Uniform hash of the value into [0,1): the primitive hashed
		// (universe) samples are built on. Engines spell it differently
		// (crc32, md5 + conversion); all spellings share one implementation
		// so samples hash identically everywhere.
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: hash01 wants 1 arg")
		}
		if args[0] == nil {
			return nil, nil
		}
		return sketch.Hash01(GroupKey(args[0])), nil
	case "hash_bucket":
		// hash_bucket(x, b): stable bucket in [0, b).
		if len(args) != 2 {
			return nil, fmt.Errorf("engine: hash_bucket wants 2 args")
		}
		if args[0] == nil || args[1] == nil {
			return nil, nil
		}
		b, _ := ToInt(args[1])
		if b <= 0 {
			return nil, nil
		}
		return int64(sketch.Hash64(GroupKey(args[0])) % uint64(b)), nil
	case "double", "float64":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		if f, ok := ToFloat(args[0]); ok {
			return f, nil
		}
		return nil, nil
	case "int", "bigint":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		if i, ok := ToInt(args[0]); ok {
			return i, nil
		}
		return nil, nil
	case "date_add":
		if len(args) != 2 || args[0] == nil || args[1] == nil {
			return nil, nil
		}
		n, _ := ToInt(args[1])
		return shiftDate(ToStr(args[0]), &sqlparser.IntervalExpr{Value: fmt.Sprint(n), Unit: "day"}, false)
	}
	return nil, fmt.Errorf("engine: unknown function %s", name)
}

func unaryMath(args []Value, fn func(float64) float64) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("engine: function wants 1 arg")
	}
	if args[0] == nil {
		return nil, nil
	}
	f, ok := ToFloat(args[0])
	if !ok {
		return nil, fmt.Errorf("engine: non-numeric argument %T", args[0])
	}
	return fn(f), nil
}

func stringFunc(args []Value, fn func(string) string) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("engine: function wants 1 arg")
	}
	if args[0] == nil {
		return nil, nil
	}
	return fn(ToStr(args[0])), nil
}

// shiftDate adds or subtracts an interval from an ISO date string.
func shiftDate(date string, iv *sqlparser.IntervalExpr, negate bool) (Value, error) {
	t, err := time.Parse("2006-01-02", strings.TrimSpace(date))
	if err != nil {
		return nil, fmt.Errorf("engine: bad date %q: %v", date, err)
	}
	n, ok := ToInt(iv.Value)
	if !ok {
		return nil, fmt.Errorf("engine: bad interval quantity %q", iv.Value)
	}
	if negate {
		n = -n
	}
	switch iv.Unit {
	case "day":
		t = t.AddDate(0, 0, int(n))
	case "month":
		t = t.AddDate(0, int(n), 0)
	case "year":
		t = t.AddDate(int(n), 0, 0)
	default:
		return nil, fmt.Errorf("engine: unsupported interval unit %q", iv.Unit)
	}
	return t.Format("2006-01-02"), nil
}
