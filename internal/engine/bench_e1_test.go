package engine

import (
	"fmt"
	"testing"
)

// E1-style engine microbenchmarks: the scan→filter→aggregate hot path that
// dominates every latency figure the bench harness regenerates (Figures 4/9).
// cmd/benchrunner's "engine" experiment runs the same queries and writes
// BENCH_engine.json so successive PRs can diff perf.

const e1Rows = 200_000

func e1Engine(b *testing.B) *Engine {
	b.Helper()
	e := NewSeeded(7)
	if err := e.CreateTable("fact", []Column{
		{Name: "g", Type: TInt},
		{Name: "flag", Type: TString},
		{Name: "x", Type: TFloat},
		{Name: "y", Type: TFloat},
		{Name: "d", Type: TString},
	}); err != nil {
		b.Fatal(err)
	}
	flags := []string{"A", "N", "R"}
	rng := newSplitMix(99)
	rows := make([][]Value, e1Rows)
	for i := range rows {
		rows[i] = []Value{
			rng.Int63n(25),
			flags[rng.Int63n(3)],
			rng.Float64() * 100,
			rng.Float64(),
			fmt.Sprintf("1994-%02d-%02d", rng.Int63n(12)+1, rng.Int63n(28)+1),
		}
	}
	if err := e.InsertRows("fact", rows); err != nil {
		b.Fatal(err)
	}
	// Dimension table for the hash-join benchmark: one row per fact.g value.
	if err := e.CreateTable("dim", []Column{
		{Name: "g", Type: TInt},
		{Name: "cat", Type: TString},
	}); err != nil {
		b.Fatal(err)
	}
	cats := []string{"AUTO", "BLDG", "FURN", "HSLD", "MACH"}
	drows := make([][]Value, 25)
	for g := range drows {
		drows[g] = []Value{int64(g), cats[g%len(cats)]}
	}
	if err := e.InsertRows("dim", drows); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchE1Query(b *testing.B, e *Engine, sql string) {
	b.Helper()
	if _, err := e.Query(sql); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1GroupedAgg is the tq-1 shape: scan, date filter, group by two
// low-cardinality columns, several sums/avgs.
// e1GroupedAggSQL is the tq-1 scan shape, shared with the disk-backed
// variants so in-memory and segment-backed numbers are directly comparable.
const e1GroupedAggSQL = `
		select g, flag, sum(x) as sx, sum(x * (1 - y)) as sxy,
		       avg(x) as ax, count(*) as c
		from fact where d <= '1998-09-02' group by g, flag`

func BenchmarkE1GroupedAgg(b *testing.B) {
	benchE1Query(b, e1Engine(b), e1GroupedAggSQL)
}

// BenchmarkE1FilterAgg is the tq-6 shape: selective filter, global sum.
func BenchmarkE1FilterAgg(b *testing.B) {
	benchE1Query(b, e1Engine(b), `
		select sum(x * y) as revenue from fact
		where d >= '1994-01-01' and d < '1995-01-01'
		  and y between 0.05 and 0.07 and x < 24`)
}

// BenchmarkE1Project is a CTAS-style full-table projection with computed
// columns (the sample-creation shape, minus rand()).
func BenchmarkE1Project(b *testing.B) {
	benchE1Query(b, e1Engine(b), `
		select g, x * (1 - y) as net, substr(d, 1, 4) as yr
		from fact where flag <> 'N'`)
}

// BenchmarkE1StringFilter is a selective string-equality scan over a
// dictionary-encoded column: the literal resolves to a code probe per
// chunk, so no string bytes are compared per lane.
func BenchmarkE1StringFilter(b *testing.B) {
	benchE1Query(b, e1Engine(b), `
		select count(*) as c, sum(x) as sx from fact where flag = 'A'`)
}

// BenchmarkE1ProjectWide is an unfiltered five-column projection — the
// pure late-materialization shape where every output cell used to pay a
// boxed-row allocation.
func BenchmarkE1ProjectWide(b *testing.B) {
	benchE1Query(b, e1Engine(b), `
		select g, flag, x, y, d from fact`)
}

// BenchmarkE1HashJoin is the tq-3/tq-5 shape: a big probe-side scan hash
// joined against a dimension table, filtered and grouped downstream — the
// path the vectorized join with late materialization targets.
func BenchmarkE1HashJoin(b *testing.B) {
	benchE1Query(b, e1Engine(b), `
		select d.cat, sum(f.x * (1 - f.y)) as rev, avg(f.x) as ax, count(*) as c
		from fact f inner join dim d on f.g = d.g
		where f.d <= '1998-09-02' and f.flag <> 'N'
		group by d.cat`)
}

// e1DiskEngine flushes the benchmark dataset into a scratch data directory
// so every sealed chunk is segment-backed (the tail stays resident).
func e1DiskEngine(b *testing.B) *Engine {
	b.Helper()
	e := e1Engine(b)
	if _, err := e.AttachDataDir(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = e.Close() })
	return e
}

// BenchmarkE1DiskScanWarm scans segment-backed chunks through a warm chunk
// cache — the steady-state overhead of the storage layer is one cache hit
// per chunk per column scan.
func BenchmarkE1DiskScanWarm(b *testing.B) {
	benchE1Query(b, e1DiskEngine(b), e1GroupedAggSQL)
}

// BenchmarkE1DiskScanCold drops the chunk cache before every iteration, so
// each scan re-reads and decodes every chunk from the segment file (page
// cache stays warm; this isolates checksum + decode + slot-swap cost).
func BenchmarkE1DiskScanCold(b *testing.B) {
	e := e1DiskEngine(b)
	if _, err := e.Query(e1GroupedAggSQL); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DropChunkCache()
		if _, err := e.Query(e1GroupedAggSQL); err != nil {
			b.Fatal(err)
		}
	}
}
