package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Property-based tests on the engine's core invariants.

func TestCompareGroupKeyConsistency(t *testing.T) {
	// Compare(a,b)==0 must imply GroupKey(a)==GroupKey(b) for numerics
	// (GROUP BY correctness across int64/float64 representations).
	f := func(x int32) bool {
		a := Value(int64(x))
		b := Value(float64(x))
		return Compare(a, b) == 0 && GroupKey(a) == GroupKey(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitiveOnInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Value(a), Value(b), Value(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeMatchProperties(t *testing.T) {
	// s LIKE s for wildcard-free s; '%' matches everything; '_'-padded
	// patterns match equal-length strings.
	f := func(raw string) bool {
		s := strings.NewReplacer("%", "", "_", "", "\\", "").Replace(raw)
		if !likeMatch(s, s) {
			return false
		}
		if !likeMatch(s, "%") {
			return false
		}
		return likeMatch(s, strings.Repeat("_", len(s)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToFloatToIntAgree(t *testing.T) {
	f := func(x int32) bool {
		v := Value(int64(x))
		fv, ok1 := ToFloat(v)
		iv, ok2 := ToInt(v)
		return ok1 && ok2 && int64(fv) == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregationSumInvariantUnderGrouping(t *testing.T) {
	// Sum of per-group sums equals the global sum, for random data.
	f := func(seed uint32) bool {
		e := NewSeeded(int64(seed%1000) + 1)
		if err := e.CreateTable("t", []Column{
			{Name: "g", Type: TInt}, {Name: "x", Type: TFloat},
		}); err != nil {
			return false
		}
		rng := newSplitMix(uint64(seed) + 7)
		rows := make([][]Value, 200)
		for i := range rows {
			rows[i] = []Value{int64(rng.Int63n(7)), rng.Float64() * 100}
		}
		if err := e.InsertRows("t", rows); err != nil {
			return false
		}
		grouped, err := e.Query("select g, sum(x) as s from t group by g")
		if err != nil {
			return false
		}
		total, err := e.Query("select sum(x) from t")
		if err != nil {
			return false
		}
		var groupSum float64
		for _, r := range grouped.Rows {
			v, _ := ToFloat(r[1])
			groupSum += v
		}
		want, _ := ToFloat(total.Rows[0][0])
		return math.Abs(groupSum-want) < 1e-6*math.Max(1, math.Abs(want))
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestJoinCountInvariant(t *testing.T) {
	// |A join B on A.k=B.k| == sum over keys of countA(k)*countB(k).
	f := func(seed uint32) bool {
		e := NewSeeded(int64(seed%1000) + 2)
		e.CreateTable("a", []Column{{Name: "k", Type: TInt}})
		e.CreateTable("b", []Column{{Name: "k", Type: TInt}})
		rng := newSplitMix(uint64(seed) + 13)
		ca := map[int64]int64{}
		cb := map[int64]int64{}
		for i := 0; i < 100; i++ {
			k := rng.Int63n(10)
			ca[k]++
			e.InsertRows("a", [][]Value{{k}})
		}
		for i := 0; i < 80; i++ {
			k := rng.Int63n(10)
			cb[k]++
			e.InsertRows("b", [][]Value{{k}})
		}
		var want int64
		for k, na := range ca {
			want += na * cb[k]
		}
		rs, err := e.Query("select count(*) from a inner join b on a.k = b.k")
		if err != nil {
			return false
		}
		got, _ := ToInt(rs.Rows[0][0])
		return got == want
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	e := NewSeeded(1)
	csvData := "id,name,score,ok\n1,alice,9.5,true\n2,bob,,false\n3,carol,7.25,true\n"
	n, err := e.ImportCSVReader("people", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d rows", n)
	}
	rs, err := e.Query("select count(*), count(score), sum(score) from people")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].(int64) != 3 || rs.Rows[0][1].(int64) != 2 {
		t.Fatalf("null handling: %v", rs.Rows[0])
	}
	if s, _ := ToFloat(rs.Rows[0][2]); math.Abs(s-16.75) > 1e-9 {
		t.Fatalf("sum %v", s)
	}
	rs2, err := e.Query("select name from people where ok = true order by name")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Rows) != 2 || rs2.Rows[0][0] != "alice" {
		t.Fatalf("bool col: %v", rs2.Rows)
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := NewSeeded(1)
	e.CreateTable("t", []Column{{Name: "x", Type: TInt}})
	rows := make([][]Value, 10_000)
	for i := range rows {
		rows[i] = []Value{int64(i)}
	}
	e.InsertRows("t", rows)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				rs, err := e.Query("select count(*), sum(x) from t where x % 2 = 0")
				if err != nil {
					done <- err
					return
				}
				if rs.Rows[0][0].(int64) != 5000 {
					done <- fmt.Errorf("count %v", rs.Rows[0][0])
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
