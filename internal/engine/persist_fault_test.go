//go:build faultinject

package engine

import (
	"errors"
	"testing"

	"verdictdb/internal/faultpoint"
	"verdictdb/internal/storage"
)

// Fault-injection coverage for the persistence layer. Each test arms one
// storage faultpoint site and proves the contract the storage layer owes its
// callers: failures surface as typed, wrapped errors (never panics), the
// engine keeps answering queries from whatever state is still good, and
// disarming the site restores full service with no duplicated or lost rows.
//
// Run with: go test -tags faultinject ./internal/engine -run Fault

// faultEnginePair returns a reference in-memory engine and an identical
// engine with a data directory attached (nothing flushed yet).
func faultEnginePair(t *testing.T) (mem, disk *Engine, dir string) {
	t.Helper()
	ownDataDir(t)
	faultpoint.Reset()
	mem = newPersistEngine(t, persistTotal)
	disk = newPersistEngine(t, persistTotal)
	dir = t.TempDir()
	if _, err := disk.AttachDataDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = disk.Close() })
	t.Cleanup(faultpoint.Reset) // LIFO: disarm before Close's final flush
	return mem, disk, dir
}

// flushFaultContract drives the shared scenario for faults on the flush
// write path (segment write, segment fsync): the flush fails typed, no
// table state moves, queries keep working, and the retry after disarming
// persists exactly once.
func flushFaultContract(t *testing.T, site string) {
	t.Helper()
	mem, disk, dir := faultEnginePair(t)
	boom := errors.New("injected: " + site)
	faultpoint.SetError(site, boom)

	err := disk.Flush()
	if !errors.Is(err, boom) {
		t.Fatalf("flush error does not wrap the injected fault: %v", err)
	}
	if faultpoint.Count(site) == 0 {
		t.Fatalf("site %s never hit", site)
	}
	tbl, lerr := disk.Lookup("t")
	if lerr != nil {
		t.Fatal(lerr)
	}
	if tbl.persisted != 0 {
		t.Fatalf("failed flush advanced persisted to %d", tbl.persisted)
	}
	// Queries still serve from the resident chunks while the disk is "down".
	expectParity(t, site+"-armed", mem, disk)

	faultpoint.Clear(site)
	if err := disk.Flush(); err != nil {
		t.Fatalf("flush after disarming %s: %v", site, err)
	}
	if tbl.persisted != 5 {
		t.Fatalf("retry persisted %d chunks, want 5", tbl.persisted)
	}
	disk.DropChunkCache()
	expectParity(t, site+"-cleared", mem, disk)

	// The retried flush must not have double-referenced any chunks: a fresh
	// open of the directory sees exactly the original row count.
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.Rows != persistTotal || len(rep.Quarantined) != 0 {
		t.Fatalf("reopen after retried flush: %+v", rep)
	}
	expectParity(t, site+"-reopen", mem, re)
}

func TestFaultSegmentWriteFlush(t *testing.T) {
	flushFaultContract(t, faultpoint.SiteStorageSegmentWrite)
}

func TestFaultSegmentFsyncFlush(t *testing.T) {
	flushFaultContract(t, faultpoint.SiteStorageSegmentFsync)
}

func TestFaultManifestWriteFlush(t *testing.T) {
	flushFaultContract(t, faultpoint.SiteStorageManifestWrite)
}

func TestFaultSegmentReadColdScan(t *testing.T) {
	mem, disk, _ := faultEnginePair(t)
	if err := disk.Flush(); err != nil {
		t.Fatal(err)
	}
	disk.DropChunkCache()
	boom := errors.New("injected: torn read")
	faultpoint.SetError(faultpoint.SiteStorageSegmentRead, boom)

	if _, err := disk.Query(persistQueries[0]); !errors.Is(err, boom) {
		t.Fatalf("cold scan error does not wrap the injected fault: %v", err)
	}
	// The engine object itself stays healthy: disarm and everything works.
	faultpoint.Clear(faultpoint.SiteStorageSegmentRead)
	expectParity(t, "read-fault-cleared", mem, disk)
}

func TestFaultChecksumTypedCorrupt(t *testing.T) {
	mem, disk, _ := faultEnginePair(t)
	if err := disk.Flush(); err != nil {
		t.Fatal(err)
	}
	disk.DropChunkCache()
	faultpoint.SetError(faultpoint.SiteStorageSegmentChecksum, errors.New("crc mismatch (injected)"))

	_, err := disk.Query(persistQueries[0])
	if err == nil {
		t.Fatal("checksum fault ignored on cold scan")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("checksum failure not typed as corruption: %v", err)
	}
	var ce *storage.CorruptError
	if !errors.As(err, &ce) || ce.Path == "" {
		t.Fatalf("corruption error carries no segment path: %v", err)
	}
	faultpoint.Clear(faultpoint.SiteStorageSegmentChecksum)
	expectParity(t, "checksum-fault-cleared", mem, disk)
}

// TestFaultChecksumQuarantineOnOpen proves recovery under pervasive checksum
// failures quarantines segments instead of panicking or refusing to open.
func TestFaultChecksumQuarantineOnOpen(t *testing.T) {
	ownDataDir(t)
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	dir := t.TempDir()
	flushAndClose(t, dir)

	faultpoint.SetError(faultpoint.SiteStorageSegmentChecksum, errors.New("crc mismatch (injected)"))
	re := NewSeeded(7)
	rep, err := re.AttachDataDir(dir)
	if err != nil {
		t.Fatalf("recovery must quarantine, not fail: %v", err)
	}
	defer re.Close()
	if len(rep.Quarantined) == 0 {
		t.Fatal("no segments quarantined under checksum faults")
	}
	// The table exists and answers queries over whatever survived.
	mustQuery(t, re, "select count(*) from t")
	faultpoint.Clear(faultpoint.SiteStorageSegmentChecksum)
	mustQuery(t, re, "select count(*) from t")
}
