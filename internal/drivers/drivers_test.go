package drivers

import (
	"strings"
	"testing"
	"time"

	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.NewSeeded(1)
	if err := e.CreateTable("t", []engine.Column{
		{Name: "a", Type: engine.TInt},
		{Name: "b", Type: engine.TString},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.InsertRows("t", [][]engine.Value{{int64(i), "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestDialectRendering(t *testing.T) {
	stmt, err := sqlparser.Parse("select a from t where rand() < 0.5")
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t)
	cases := []struct {
		db       DB
		contains string
	}{
		{NewImpala(e), "`a`"},
		{NewRedshift(e), `"a"`},
		{NewRedshift(e), "random()"},
		{NewSparkSQL(e), "rand()"},
		{NewGeneric(e), "rand()"},
	}
	for _, c := range cases {
		out := Render(c.db, stmt)
		if !strings.Contains(out, c.contains) {
			t.Errorf("%s dialect: %q missing %q", c.db.Name(), out, c.contains)
		}
	}
}

func TestDialectRoundTripThroughEngine(t *testing.T) {
	// Every dialect's rendering must be executable by the engine.
	e := newEngine(t)
	stmt, err := sqlparser.Parse("select count(*) as c from t where a >= 50")
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []DB{NewImpala(e), NewRedshift(e), NewSparkSQL(e), NewGeneric(e)} {
		rs, err := db.Query(Render(db, stmt))
		if err != nil {
			t.Fatalf("%s: %v", db.Name(), err)
		}
		if rs.Rows[0][0].(int64) != 50 {
			t.Errorf("%s: count %v", db.Name(), rs.Rows[0][0])
		}
	}
}

func TestOverheadModel(t *testing.T) {
	e := newEngine(t)
	spark := NewSparkSQL(e)
	redshift := NewRedshift(e)
	if spark.Overhead() <= redshift.Overhead() {
		t.Error("Spark should model more fixed overhead than Redshift (Section 6.2)")
	}
	_, dur, err := spark.QueryTimed("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if dur < spark.Overhead() {
		t.Errorf("QueryTimed %v below modeled overhead %v", dur, spark.Overhead())
	}
	if dur > spark.Overhead()+5*time.Second {
		t.Errorf("QueryTimed suspiciously slow: %v", dur)
	}
}

func TestColumnsProbe(t *testing.T) {
	e := newEngine(t)
	db := NewGeneric(e)
	cols, err := db.Columns("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("columns: %v", cols)
	}
	if _, err := db.Columns("missing"); err == nil {
		t.Fatal("missing table should error")
	}
}

func TestImpalaNoRandInWhereFlag(t *testing.T) {
	e := newEngine(t)
	if !NewImpala(e).Dialect().NoRandInWhere {
		t.Fatal("Impala dialect must flag rand()-in-WHERE restriction")
	}
	if NewSparkSQL(e).Dialect().NoRandInWhere {
		t.Fatal("Spark dialect should not flag rand() restriction")
	}
}
