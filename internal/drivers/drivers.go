// Package drivers contains the thin per-engine shims the paper describes in
// Section 2.1: each driver knows one backend's SQL dialect (identifier
// quoting, function spellings, dialect quirks such as Impala's ban on
// rand() in WHERE) and its fixed per-query overhead.
//
// In the paper these wrap JDBC/ODBC connections to real clusters; here they
// wrap the in-memory engine substrate. The overhead model reproduces the
// paper's observation (Section 6.2) that speedups are larger on engines
// with small fixed query overhead (Redshift > Impala > Spark): each driver
// reports a simulated fixed setup cost alongside real execution time rather
// than sleeping, keeping benchmarks honest and fast.
package drivers

import (
	"context"
	"fmt"
	"strings"
	"time"

	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

// DB is the interface VerdictDB's middleware uses to talk to an underlying
// database. Everything is SQL-in, rows-out — exactly the contract the paper
// imposes on itself.
type DB interface {
	// Name identifies the backend ("impala", "sparksql", "redshift", ...).
	Name() string
	// Dialect returns the SQL dialect used when rendering statements.
	Dialect() sqlparser.Dialect
	// Exec runs a DDL/DML statement.
	Exec(sql string) error
	// ExecContext is Exec honoring the caller's context: the statement
	// observes cancellation, deadlines, and any memory budget ctx carries.
	ExecContext(ctx context.Context, sql string) error
	// Query runs a SELECT and returns its result set.
	Query(sql string) (*engine.ResultSet, error)
	// QueryContext is Query honoring the caller's context.
	QueryContext(ctx context.Context, sql string) (*engine.ResultSet, error)
	// QueryTimed runs a SELECT and reports its latency including the
	// engine's modeled fixed overhead.
	QueryTimed(sql string) (*engine.ResultSet, time.Duration, error)
	// QueryTimedContext is QueryTimed honoring the caller's context; a
	// simulated-overhead sleep is interrupted by cancellation too.
	QueryTimedContext(ctx context.Context, sql string) (*engine.ResultSet, time.Duration, error)
	// Columns returns the column names of a table (via a LIMIT 0 probe).
	Columns(table string) ([]string, error)
	// RowCount returns a table's cardinality from the engine's catalog
	// statistics (real engines expose this without scanning).
	RowCount(table string) (int64, error)
	// Overhead is the modeled fixed per-query overhead of this engine.
	Overhead() time.Duration
}

// Driver is a DB implementation wrapping the in-memory engine. It is safe
// for concurrent use once configured: the engine synchronizes table access
// internally and the Driver's own fields are read-only after construction
// (SetOverhead must be called before sharing the driver across goroutines).
type Driver struct {
	name     string
	eng      *engine.Engine
	dialect  sqlparser.Dialect
	overhead time.Duration
	// simulate makes QueryTimed actually sleep the overhead instead of
	// merely adding it to the reported latency — the modeled fixed cost
	// becomes real wall-clock waiting that concurrent clients can overlap,
	// as network round-trips and warehouse queueing would be.
	simulate bool
}

var _ DB = (*Driver)(nil)

// Engine exposes the wrapped engine (tests and data loaders use it).
func (d *Driver) Engine() *engine.Engine { return d.eng }

// Name implements DB.
func (d *Driver) Name() string { return d.name }

// Dialect implements DB.
func (d *Driver) Dialect() sqlparser.Dialect { return d.dialect }

// Overhead implements DB.
func (d *Driver) Overhead() time.Duration { return d.overhead }

// Exec implements DB.
func (d *Driver) Exec(sql string) error {
	return d.ExecContext(context.Background(), sql)
}

// ExecContext implements DB.
func (d *Driver) ExecContext(ctx context.Context, sql string) error {
	_, err := d.eng.ExecContext(ctx, sql)
	return err
}

// Query implements DB.
func (d *Driver) Query(sql string) (*engine.ResultSet, error) {
	return d.eng.Query(sql)
}

// QueryContext implements DB.
func (d *Driver) QueryContext(ctx context.Context, sql string) (*engine.ResultSet, error) {
	return d.eng.QueryContext(ctx, sql)
}

// SetOverhead overrides the modeled fixed per-query overhead. When simulate
// is true the overhead is really slept in QueryTimed (see the simulate
// field); call before the driver is shared across goroutines.
func (d *Driver) SetOverhead(overhead time.Duration, simulate bool) {
	d.overhead = overhead
	d.simulate = simulate
}

// QueryTimed implements DB.
func (d *Driver) QueryTimed(sql string) (*engine.ResultSet, time.Duration, error) {
	return d.QueryTimedContext(context.Background(), sql)
}

// QueryTimedContext implements DB. A simulated overhead sleep races against
// ctx so a cancel or deadline interrupts the modeled network wait, not just
// the engine scan.
func (d *Driver) QueryTimedContext(ctx context.Context, sql string) (*engine.ResultSet, time.Duration, error) {
	start := time.Now()
	if d.simulate && d.overhead > 0 {
		t := time.NewTimer(d.overhead)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, time.Since(start), ctx.Err()
		}
	}
	rs, err := d.eng.QueryContext(ctx, sql)
	elapsed := time.Since(start)
	if !d.simulate {
		elapsed += d.overhead
	}
	return rs, elapsed, err
}

// Columns implements DB with a LIMIT 0 probe — the same trick the paper's
// middleware uses to learn schemas through a plain SQL interface.
func (d *Driver) Columns(table string) ([]string, error) {
	rs, err := d.eng.Query("select * from " + table + " limit 0")
	if err != nil {
		return nil, err
	}
	return rs.Cols, nil
}

// RowCount implements DB from the engine's catalog metadata.
func (d *Driver) RowCount(table string) (int64, error) {
	if !d.eng.HasTable(table) {
		return 0, fmt.Errorf("drivers: unknown table %q", table)
	}
	return int64(d.eng.RowCount(table)), nil
}

// NewGeneric wraps an engine with the canonical dialect and zero overhead.
func NewGeneric(e *engine.Engine) *Driver {
	return &Driver{name: "generic", eng: e, dialect: sqlparser.DefaultDialect}
}

// NewImpala models Apache Impala: backtick identifier quoting, rand()
// disallowed in WHERE predicates, low fixed overhead (Impala daemons keep
// catalogs warm).
func NewImpala(e *engine.Engine) *Driver {
	return &Driver{
		name: "impala",
		eng:  e,
		dialect: sqlparser.Dialect{
			Name:          "impala",
			QuoteIdent:    func(s string) string { return "`" + s + "`" },
			NoRandInWhere: true,
			FuncName: func(f string) string {
				if f == "hash01" {
					return "crc32_ratio" // Impala driver spells the hash via crc32
				}
				return f
			},
		},
		overhead: 3 * time.Millisecond,
	}
}

// NewSparkSQL models Spark SQL: unquoted identifiers, rand() everywhere,
// high fixed overhead (job scheduling, catalog access dominate short
// queries — the paper's reason Spark shows the smallest speedups).
func NewSparkSQL(e *engine.Engine) *Driver {
	return &Driver{
		name:     "sparksql",
		eng:      e,
		dialect:  sqlparser.Dialect{Name: "sparksql"},
		overhead: 12 * time.Millisecond,
	}
}

// NewRedshift models Amazon Redshift: double-quote identifier quoting,
// random() instead of rand(), minimal fixed overhead (the paper reports the
// largest speedups on Redshift).
func NewRedshift(e *engine.Engine) *Driver {
	return &Driver{
		name: "redshift",
		eng:  e,
		dialect: sqlparser.Dialect{
			Name:       "redshift",
			QuoteIdent: func(s string) string { return `"` + s + `"` },
			FuncName: func(f string) string {
				switch f {
				case "rand":
					return "random"
				case "hash01":
					return "md5_ratio"
				}
				return f
			},
		},
		overhead: 1 * time.Millisecond,
	}
}

// Render renders a statement in this driver's dialect — the Syntax Changer
// step of Figure 1b.
func Render(d DB, stmt sqlparser.Statement) string {
	return sqlparser.FormatDialect(stmt, d.Dialect())
}

// QualifyTemp builds an engine-safe scratch table name.
func QualifyTemp(parts ...string) string {
	return "verdict_tmp_" + strings.Join(parts, "_")
}
