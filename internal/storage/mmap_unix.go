//go:build linux || darwin

package storage

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. Returns nil (pread fallback) when
// the map fails or the file is empty — mapping is an optimization, never a
// requirement.
func mmapFile(f *os.File, size int64) []byte {
	if size <= 0 || int64(int(size)) != size {
		return nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return data
}

func munmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
