// Package storage is the on-disk persistence layer for the engine's sealed
// columnar chunks: immutable segment files holding encoded chunks exactly as
// they live in memory (PR 9's dict/RLE/delta layouts serialize as-is), plus
// a crash-safe versioned manifest recording which segments make up each
// table.
//
// The package is deliberately engine-agnostic: it speaks in neutral mirror
// types (Chunk, Col) whose slices the engine aliases directly — converting a
// sealed in-memory chunk to a storage.Chunk copies slice headers, never
// data. Keeping the format code here (and out of internal/engine) means the
// byte layout has exactly one owner, and the engine's scan paths stay
// byte-identical whether a chunk came from memory or disk.
//
// Durability contract: a segment file is immutable once written (write,
// fsync, then record it in the manifest); the manifest commits via
// write-temp + fsync + atomic rename. A crash therefore leaves either the
// old manifest (new segments are unreferenced orphans, swept at open) or the
// new one (segments fully fsynced before the rename). Torn or bit-rotted
// segments are detected by per-chunk CRC32 checksums and a footer checksum,
// and quarantined at open rather than trusted.
package storage

import (
	"errors"
	"fmt"
)

// Format identifiers. The head magic versions the chunk-block layout; the
// foot magic proves the footer was written completely (a torn write cannot
// end with it).
const (
	segMagic     = "VDBSEG1\n"
	segFootMagic = "VDBSEGF\n"
	// FormatVersion is the segment meta-section version.
	FormatVersion = 1
)

// Column kinds, mirroring engine.ColType by value. Stored as one byte.
const (
	KindAny uint8 = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// Column encodings, mirroring the engine's colEnc by value.
const (
	EncNone uint8 = iota
	EncDict
	EncRLE
	EncDelta
)

// ErrCorrupt is the sentinel wrapped by every corruption detection —
// checksum mismatches, truncated files, bad magics, malformed payloads.
// Callers test with errors.Is(err, storage.ErrCorrupt) and quarantine.
var ErrCorrupt = errors.New("storage: corrupt segment")

// CorruptError reports where and how a segment failed validation. It wraps
// ErrCorrupt.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: corrupt segment %s: %s", e.Path, e.Detail)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corrupt(path, format string, args ...any) error {
	return &CorruptError{Path: path, Detail: fmt.Sprintf(format, args...)}
}

// Chunk is the serializable mirror of one sealed engine chunk: per-column
// encoded vectors plus row count. The engine converts by sharing slice
// headers in both directions.
type Chunk struct {
	NRows int
	Cols  []Col
}

// Col mirrors the engine's colVec. Which field groups are live follows Enc
// and Kind exactly as in memory:
//
//   - EncNone: the Kind-matching typed vector (Anys for KindAny, where nil
//     boxes are the NULLs and Nulls stays nil).
//   - EncDict: Dict (sorted distinct strings) + Codes; strings live only in
//     the dictionary.
//   - EncRLE: RunEnds + one value slot per run in the typed vector; Nulls is
//     per RUN.
//   - EncDelta: Base + Width + Packed words; Ints is nil.
//
// Nulls (when non-nil) flags NULL slots; null slots of typed vectors hold
// zero values. Min/Max are the zone summary boxes (nil for all-NULL
// columns); they ride in the segment footer so pruning works without
// loading chunk data.
type Col struct {
	Kind uint8
	Enc  uint8

	Nulls []bool
	Min   any
	Max   any

	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Anys   []any

	Dict  []string
	Codes []uint32

	RunEnds []int32

	Base   int64
	Width  uint8
	Packed []uint64
}

// ColMeta is the footer-resident description of one chunk-column: enough
// for zone pruning and cache sizing without touching the chunk block.
type ColMeta struct {
	Kind     uint8
	Enc      uint8
	HasNulls bool
	Min      any
	Max      any
}

// ChunkMeta locates and describes one chunk inside a segment file.
type ChunkMeta struct {
	Offset uint64 // byte offset of the chunk block
	Length uint64 // byte length of the chunk block
	CRC    uint32 // CRC32-C over the chunk block
	NRows  int
	Cols   []ColMeta
}

// SegMeta is a segment's decoded footer.
type SegMeta struct {
	NCols  int
	Chunks []ChunkMeta
}

// Rows sums the segment's chunk row counts.
func (m *SegMeta) Rows() int {
	n := 0
	for i := range m.Chunks {
		n += m.Chunks[i].NRows
	}
	return n
}
