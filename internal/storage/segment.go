package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"

	"verdictdb/internal/faultpoint"
)

// crcTable is the Castagnoli polynomial: hardware-accelerated on amd64 and
// arm64, which matters because every chunk load verifies its checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Segment file layout (all integers little-endian):
//
//	[8]  head magic "VDBSEG1\n"
//	     chunk blocks, back to back (see encodeChunkBlock)
//	     meta section (see encodeMeta)
//	[4]  CRC32-C over the meta section
//	[8]  meta section length (uint64)
//	[8]  foot magic "VDBSEGF\n"
//
// Chunk block, per column in order:
//
//	[1] kind  [1] enc  [1] flags (bit0: has nulls)
//	EncNone:  nulls? bitmap(n) | payload by kind — ints/floats 8n bytes,
//	          bools bitmap(n), strings offsets(u32×(n+1))+bytes,
//	          any tagged-value×n (nil tag = NULL; Nulls bitmap absent)
//	EncDict:  nulls? bitmap(n) | u32 dictLen | offsets(u32×(dictLen+1)) |
//	          dict bytes | codes u32×n
//	EncRLE:   u32 runs | runEnds i32×runs | nulls? bitmap(runs) |
//	          run values by kind (one slot per run, strings as offsets+bytes)
//	EncDelta: nulls? bitmap(n) | i64 base | u8 width | u32 words | u64×words
//
// Tagged value: [1] tag (0 nil, 1 int64, 2 float64 bits, 3 string, 4 bool)
// followed by the payload (strings as u32 length + bytes).

// --- encoding helpers -------------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// appendBitmap bit-packs a bool slice (LSB-first within each byte).
func appendBitmap(b []byte, flags []bool) []byte {
	nb := (len(flags) + 7) / 8
	start := len(b)
	b = append(b, make([]byte, nb)...)
	for i, f := range flags {
		if f {
			b[start+i>>3] |= 1 << (i & 7)
		}
	}
	return b
}

// appendStrings writes a string vector as u32 end-offsets then the bytes.
func appendStrings(b []byte, strs []string) []byte {
	b = appendU32(b, uint32(len(strs)))
	off := uint32(0)
	for _, s := range strs {
		off += uint32(len(s))
		b = appendU32(b, off)
	}
	for _, s := range strs {
		b = append(b, s...)
	}
	return b
}

// Tagged dynamic values (zone bounds, KindAny lanes).
const (
	tagNil uint8 = iota
	tagInt
	tagFloat
	tagString
	tagBool
)

func appendTagged(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case int64:
		return appendU64(append(b, tagInt), uint64(x)), nil
	case float64:
		return appendU64(append(b, tagFloat), math.Float64bits(x)), nil
	case string:
		b = appendU32(append(b, tagString), uint32(len(x)))
		return append(b, x...), nil
	case bool:
		if x {
			return append(b, tagBool, 1), nil
		}
		return append(b, tagBool, 0), nil
	}
	return b, fmt.Errorf("storage: unsupported dynamic value type %T", v)
}

// encodeChunkBlock serializes one chunk's column payloads.
func encodeChunkBlock(b []byte, ch *Chunk) ([]byte, error) {
	n := ch.NRows
	for ci := range ch.Cols {
		c := &ch.Cols[ci]
		flags := uint8(0)
		if c.Nulls != nil {
			flags |= 1
		}
		b = append(b, c.Kind, c.Enc, flags)
		var err error
		switch c.Enc {
		case EncNone:
			if c.Nulls != nil {
				b = appendBitmap(b, c.Nulls)
			}
			switch c.Kind {
			case KindInt:
				for _, v := range c.Ints {
					b = appendU64(b, uint64(v))
				}
			case KindFloat:
				for _, v := range c.Floats {
					b = appendU64(b, math.Float64bits(v))
				}
			case KindString:
				b = appendStrings(b, c.Strs)
			case KindBool:
				b = appendBitmap(b, c.Bools)
			case KindAny:
				for _, v := range c.Anys {
					if b, err = appendTagged(b, v); err != nil {
						return nil, err
					}
				}
			}
		case EncDict:
			if c.Nulls != nil {
				b = appendBitmap(b, c.Nulls)
			}
			b = appendStrings(b, c.Dict)
			for _, code := range c.Codes {
				b = appendU32(b, code)
			}
		case EncRLE:
			b = appendU32(b, uint32(len(c.RunEnds)))
			for _, e := range c.RunEnds {
				b = appendU32(b, uint32(e))
			}
			if c.Nulls != nil {
				b = appendBitmap(b, c.Nulls)
			}
			switch c.Kind {
			case KindInt:
				for _, v := range c.Ints {
					b = appendU64(b, uint64(v))
				}
			case KindFloat:
				for _, v := range c.Floats {
					b = appendU64(b, math.Float64bits(v))
				}
			case KindString:
				b = appendStrings(b, c.Strs)
			case KindBool:
				b = appendBitmap(b, c.Bools)
			}
		case EncDelta:
			if c.Nulls != nil {
				b = appendBitmap(b, c.Nulls)
			}
			b = appendU64(b, uint64(c.Base))
			b = append(b, c.Width)
			b = appendU32(b, uint32(len(c.Packed)))
			for _, w := range c.Packed {
				b = appendU64(b, w)
			}
		default:
			return nil, fmt.Errorf("storage: unknown column encoding %d", c.Enc)
		}
		_ = n
	}
	return b, nil
}

// encodeMeta serializes the footer meta section for the given chunk metas.
func encodeMeta(b []byte, ncols int, chunks []ChunkMeta) ([]byte, error) {
	b = appendU32(b, FormatVersion)
	b = appendU32(b, uint32(len(chunks)))
	b = appendU32(b, uint32(ncols))
	var err error
	for i := range chunks {
		cm := &chunks[i]
		b = appendU64(b, cm.Offset)
		b = appendU64(b, cm.Length)
		b = appendU32(b, cm.CRC)
		b = appendU32(b, uint32(cm.NRows))
		for j := range cm.Cols {
			col := &cm.Cols[j]
			flags := uint8(0)
			if col.HasNulls {
				flags |= 1
			}
			b = append(b, col.Kind, col.Enc, flags)
			if b, err = appendTagged(b, col.Min); err != nil {
				return nil, err
			}
			if b, err = appendTagged(b, col.Max); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// WriteSegment writes chunks as one immutable segment file and fsyncs it.
// The file is complete and durable when WriteSegment returns nil; the caller
// then records it in the manifest. ncols must match every chunk's width.
// A failed write leaves at worst an orphan file the next open sweeps.
func WriteSegment(path string, ncols int, chunks []*Chunk) (retErr error) {
	if err := faultpoint.Hit(faultpoint.SiteStorageSegmentWrite); err != nil {
		return fmt.Errorf("storage: writing segment %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("storage: closing segment %s: %w", path, cerr)
		}
	}()

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, segMagic...)
	metas := make([]ChunkMeta, len(chunks))
	for i, ch := range chunks {
		if len(ch.Cols) != ncols {
			return fmt.Errorf("storage: chunk %d has %d columns, segment has %d", i, len(ch.Cols), ncols)
		}
		start := len(buf)
		buf, err = encodeChunkBlock(buf, ch)
		if err != nil {
			return err
		}
		block := buf[start:]
		cm := &metas[i]
		cm.Offset = uint64(start)
		cm.Length = uint64(len(block))
		cm.CRC = crc32.Checksum(block, crcTable)
		cm.NRows = ch.NRows
		cm.Cols = make([]ColMeta, ncols)
		for j := range ch.Cols {
			c := &ch.Cols[j]
			cm.Cols[j] = ColMeta{
				Kind: c.Kind, Enc: c.Enc, HasNulls: c.Nulls != nil,
				Min: c.Min, Max: c.Max,
			}
		}
	}
	metaStart := len(buf)
	buf, err = encodeMeta(buf, ncols, metas)
	if err != nil {
		return err
	}
	meta := buf[metaStart:]
	buf = appendU32(buf, crc32.Checksum(meta, crcTable))
	buf = appendU64(buf, uint64(len(meta)))
	buf = append(buf, segFootMagic...)

	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("storage: writing segment %s: %w", path, err)
	}
	if err := faultpoint.Hit(faultpoint.SiteStorageSegmentFsync); err != nil {
		return fmt.Errorf("storage: syncing segment %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: syncing segment %s: %w", path, err)
	}
	return nil
}

// --- decoding ---------------------------------------------------------------

// byteReader is a bounds-checked cursor over a decoded byte region. All
// reads after an overrun return zero values; callers check err once at the
// end (corrupt input degrades to an error, never a panic).
type byteReader struct {
	b   []byte
	pos int
	err error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated data at offset %d", r.pos)
	}
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *byteReader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *byteReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *byteReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *byteReader) bitmap(n int) []bool {
	raw := r.take((n + 7) / 8)
	if raw == nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i>>3]&(1<<(i&7)) != 0
	}
	return out
}

func (r *byteReader) strings() []string {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	ends := make([]uint32, n)
	prev := uint32(0)
	for i := range ends {
		ends[i] = r.u32()
		if ends[i] < prev {
			r.fail()
			return nil
		}
		prev = ends[i]
	}
	var total uint32
	if n > 0 {
		total = ends[n-1]
	}
	bytes := r.take(int(total))
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	start := uint32(0)
	for i := range out {
		out[i] = string(bytes[start:ends[i]])
		start = ends[i]
	}
	return out
}

func (r *byteReader) tagged() any {
	switch r.u8() {
	case tagNil:
		return nil
	case tagInt:
		return int64(r.u64())
	case tagFloat:
		return math.Float64frombits(r.u64())
	case tagString:
		n := int(r.u32())
		if b := r.take(n); b != nil {
			return string(b)
		}
		return nil
	case tagBool:
		return r.u8() != 0
	default:
		r.fail()
		return nil
	}
}

// decodeChunkBlock parses one chunk block (already CRC-verified) back into
// a Chunk. Zone bounds come from the footer meta, not the block.
func decodeChunkBlock(block []byte, cm *ChunkMeta) (*Chunk, error) {
	r := &byteReader{b: block}
	n := cm.NRows
	ch := &Chunk{NRows: n, Cols: make([]Col, len(cm.Cols))}
	for ci := range ch.Cols {
		c := &ch.Cols[ci]
		c.Kind = r.u8()
		c.Enc = r.u8()
		hasNulls := r.u8()&1 != 0
		c.Min = cm.Cols[ci].Min
		c.Max = cm.Cols[ci].Max
		switch c.Enc {
		case EncNone:
			if hasNulls {
				c.Nulls = r.bitmap(n)
			}
			switch c.Kind {
			case KindInt:
				c.Ints = make([]int64, n)
				for i := range c.Ints {
					c.Ints[i] = int64(r.u64())
				}
			case KindFloat:
				c.Floats = make([]float64, n)
				for i := range c.Floats {
					c.Floats[i] = math.Float64frombits(r.u64())
				}
			case KindString:
				c.Strs = r.strings()
				if r.err == nil && len(c.Strs) != n {
					r.fail()
				}
			case KindBool:
				c.Bools = r.bitmap(n)
			case KindAny:
				c.Anys = make([]any, n)
				for i := range c.Anys {
					c.Anys[i] = r.tagged()
				}
			default:
				r.fail()
			}
		case EncDict:
			if hasNulls {
				c.Nulls = r.bitmap(n)
			}
			c.Dict = r.strings()
			c.Codes = make([]uint32, n)
			for i := range c.Codes {
				c.Codes[i] = r.u32()
				if r.err == nil && int(c.Codes[i]) >= len(c.Dict) {
					r.fail()
				}
			}
		case EncRLE:
			runs := int(r.u32())
			if r.err != nil || runs < 0 || runs > len(block) {
				r.fail()
				break
			}
			c.RunEnds = make([]int32, runs)
			for i := range c.RunEnds {
				c.RunEnds[i] = int32(r.u32())
			}
			if runs > 0 && r.err == nil && int(c.RunEnds[runs-1]) != n {
				r.fail()
			}
			if hasNulls {
				c.Nulls = r.bitmap(runs)
			}
			switch c.Kind {
			case KindInt:
				c.Ints = make([]int64, runs)
				for i := range c.Ints {
					c.Ints[i] = int64(r.u64())
				}
			case KindFloat:
				c.Floats = make([]float64, runs)
				for i := range c.Floats {
					c.Floats[i] = math.Float64frombits(r.u64())
				}
			case KindString:
				c.Strs = r.strings()
				if r.err == nil && len(c.Strs) != runs {
					r.fail()
				}
			case KindBool:
				c.Bools = r.bitmap(runs)
			default:
				r.fail()
			}
		case EncDelta:
			if hasNulls {
				c.Nulls = r.bitmap(n)
			}
			c.Base = int64(r.u64())
			c.Width = r.u8()
			words := int(r.u32())
			if r.err != nil || words < 0 || words > len(block) {
				r.fail()
				break
			}
			if words > 0 {
				c.Packed = make([]uint64, words)
				for i := range c.Packed {
					c.Packed[i] = r.u64()
				}
			}
		default:
			r.fail()
		}
		if r.err != nil {
			return nil, fmt.Errorf("column %d: %w", ci, r.err)
		}
	}
	return ch, nil
}

// --- segment reader ---------------------------------------------------------

// Segment is one open segment file: parsed footer plus either an mmap of
// the whole file (unix) or pread access. Immutable and safe for concurrent
// ReadChunk calls. Close unmaps and closes; on Linux the file may already
// be unlinked (compaction retires segments that way) — reads keep working
// until Close.
type Segment struct {
	Path string
	Meta SegMeta

	f    *os.File
	data []byte // mmap of the whole file; nil when mmap is unavailable
	size int64

	mu     sync.Mutex
	closed bool
}

// OpenSegment opens and validates a segment file: both magics, the footer
// length/CRC, and the meta section parse. Chunk payloads are NOT verified
// here (VerifyChecksums does a full pass; ReadChunk verifies per load).
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: opening segment %s: %w", path, err)
	}
	s := &Segment{Path: path, f: f, size: st.Size()}
	s.data = mmapFile(f, st.Size())
	if err := s.parseFooter(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// readRange returns bytes [off, off+n) of the file, from the mmap when
// available.
func (s *Segment) readRange(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > s.size {
		return nil, corrupt(s.Path, "range [%d,+%d) outside file of %d bytes", off, n, s.size)
	}
	if s.data != nil {
		return s.data[off : off+int64(n)], nil
	}
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: reading segment %s: %w", s.Path, err)
	}
	return buf, nil
}

func (s *Segment) parseFooter() error {
	const footLen = 4 + 8 + 8 // metaCRC + metaLen + foot magic
	minSize := int64(len(segMagic) + footLen + 11)
	if s.size < minSize {
		return corrupt(s.Path, "file too small (%d bytes)", s.size)
	}
	head, err := s.readRange(0, len(segMagic))
	if err != nil {
		return err
	}
	if string(head) != segMagic {
		return corrupt(s.Path, "bad head magic")
	}
	foot, err := s.readRange(s.size-footLen, footLen)
	if err != nil {
		return err
	}
	if string(foot[12:]) != segFootMagic {
		return corrupt(s.Path, "bad foot magic (torn write?)")
	}
	metaCRC := binary.LittleEndian.Uint32(foot[0:4])
	metaLen := int64(binary.LittleEndian.Uint64(foot[4:12]))
	metaOff := s.size - footLen - metaLen
	if metaLen <= 0 || metaOff < int64(len(segMagic)) {
		return corrupt(s.Path, "bad meta length %d", metaLen)
	}
	meta, err := s.readRange(metaOff, int(metaLen))
	if err != nil {
		return err
	}
	if crc32.Checksum(meta, crcTable) != metaCRC {
		return corrupt(s.Path, "meta checksum mismatch")
	}

	r := &byteReader{b: meta}
	if v := r.u32(); v != FormatVersion {
		return corrupt(s.Path, "unsupported format version %d", v)
	}
	nchunks := int(r.u32())
	ncols := int(r.u32())
	if nchunks < 0 || ncols < 0 || nchunks > int(s.size) {
		return corrupt(s.Path, "implausible chunk/column counts %d/%d", nchunks, ncols)
	}
	s.Meta.NCols = ncols
	s.Meta.Chunks = make([]ChunkMeta, nchunks)
	for i := range s.Meta.Chunks {
		cm := &s.Meta.Chunks[i]
		cm.Offset = r.u64()
		cm.Length = r.u64()
		cm.CRC = r.u32()
		cm.NRows = int(r.u32())
		cm.Cols = make([]ColMeta, ncols)
		for j := range cm.Cols {
			col := &cm.Cols[j]
			col.Kind = r.u8()
			col.Enc = r.u8()
			col.HasNulls = r.u8()&1 != 0
			col.Min = r.tagged()
			col.Max = r.tagged()
		}
		if r.err != nil {
			return corrupt(s.Path, "meta parse: %v", r.err)
		}
		end := cm.Offset + cm.Length
		if cm.Offset < uint64(len(segMagic)) || end > uint64(metaOff) || end < cm.Offset {
			return corrupt(s.Path, "chunk %d block [%d,+%d) outside data region", i, cm.Offset, cm.Length)
		}
	}
	return nil
}

// ReadChunk loads, checksum-verifies, and decodes chunk i. Every load pays
// the CRC pass — a segment that rots on disk after open is still detected.
func (s *Segment) ReadChunk(i int) (*Chunk, error) {
	if i < 0 || i >= len(s.Meta.Chunks) {
		return nil, fmt.Errorf("storage: chunk %d out of range in %s", i, s.Path)
	}
	if err := faultpoint.Hit(faultpoint.SiteStorageSegmentRead); err != nil {
		return nil, fmt.Errorf("storage: reading chunk %d of %s: %w", i, s.Path, err)
	}
	cm := &s.Meta.Chunks[i]
	block, err := s.readRange(int64(cm.Offset), int(cm.Length))
	if err != nil {
		return nil, err
	}
	if err := faultpoint.Hit(faultpoint.SiteStorageSegmentChecksum); err != nil {
		return nil, corrupt(s.Path, "chunk %d checksum: %v", i, err)
	}
	if crc32.Checksum(block, crcTable) != cm.CRC {
		return nil, corrupt(s.Path, "chunk %d checksum mismatch", i)
	}
	ch, err := decodeChunkBlock(block, cm)
	if err != nil {
		return nil, corrupt(s.Path, "chunk %d: %v", i, err)
	}
	return ch, nil
}

// VerifyChecksums checks every chunk payload against its recorded CRC
// without decoding — the full-file integrity pass recovery runs before
// trusting a segment.
func (s *Segment) VerifyChecksums() error {
	for i := range s.Meta.Chunks {
		cm := &s.Meta.Chunks[i]
		block, err := s.readRange(int64(cm.Offset), int(cm.Length))
		if err != nil {
			return err
		}
		if err := faultpoint.Hit(faultpoint.SiteStorageSegmentChecksum); err != nil {
			return corrupt(s.Path, "chunk %d checksum: %v", i, err)
		}
		if crc32.Checksum(block, crcTable) != cm.CRC {
			return corrupt(s.Path, "chunk %d checksum mismatch", i)
		}
	}
	return nil
}

// Close unmaps and closes the file. Idempotent.
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.data != nil {
		munmapFile(s.data)
		s.data = nil
	}
	return s.f.Close()
}

// Quarantine closes the segment and renames its file aside with a
// .quarantined suffix so recovery never re-reads it as live data. The
// renamed path is returned.
func (s *Segment) Quarantine() (string, error) {
	_ = s.Close()
	dst := s.Path + ".quarantined"
	if err := os.Rename(s.Path, dst); err != nil {
		return "", fmt.Errorf("storage: quarantining %s: %w", filepath.Base(s.Path), err)
	}
	return dst, nil
}
