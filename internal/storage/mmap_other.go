//go:build !(linux || darwin)

package storage

import "os"

// mmapFile always declines on platforms without a wired-up mmap; reads fall
// back to pread (ReadAt).
func mmapFile(f *os.File, size int64) []byte { return nil }

func munmapFile(data []byte) {}
