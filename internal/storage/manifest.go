package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"verdictdb/internal/faultpoint"
)

// Manifest file names inside a data directory.
const (
	ManifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
)

// SegmentExt is the file extension of live segment files.
const SegmentExt = ".seg"

// ColumnDef records one table column in the manifest (Type holds the
// engine's ColType value).
type ColumnDef struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

// SegmentRef records one live segment of a table.
type SegmentRef struct {
	File   string `json:"file"` // base name inside the data directory
	Chunks int    `json:"chunks"`
	Rows   int    `json:"rows"`
}

// TableManifest records one table's durable state: its schema, sealed
// segments in chunk order, and the optional tail segment holding the open
// (< chunk-size) row suffix as of the last flush.
type TableManifest struct {
	Name     string       `json:"name"`
	Columns  []ColumnDef  `json:"columns"`
	Segments []SegmentRef `json:"segments,omitempty"`
	Tail     *SegmentRef  `json:"tail,omitempty"`
	// NextGen numbers segment files ("<table>-<gen>.seg"); monotonically
	// increasing so a retried or crashed write never reuses a live name.
	NextGen int64 `json:"nextgen"`
}

// Manifest is the data directory's catalog: which segment files are live
// and how they assemble into tables. Version bumps on every save.
type Manifest struct {
	Version int64            `json:"version"`
	Tables  []*TableManifest `json:"tables,omitempty"`
}

// Table returns the named table's entry, or nil.
func (m *Manifest) Table(name string) *TableManifest {
	for _, t := range m.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// DropTable removes the named table's entry; reports whether it existed.
func (m *Manifest) DropTable(name string) bool {
	for i, t := range m.Tables {
		if t.Name == name {
			m.Tables = append(m.Tables[:i], m.Tables[i+1:]...)
			return true
		}
	}
	return false
}

// LiveFiles returns the set of segment base names the manifest references.
func (m *Manifest) LiveFiles() map[string]bool {
	live := make(map[string]bool)
	for _, t := range m.Tables {
		for _, s := range t.Segments {
			live[s.File] = true
		}
		if t.Tail != nil {
			live[t.Tail.File] = true
		}
	}
	return live
}

// LoadManifest reads dir's manifest. A leftover MANIFEST.tmp (a save that
// crashed before its atomic rename) is removed — the previous committed
// manifest stays authoritative, which is exactly the half-written-manifest
// recovery contract. A missing manifest yields an empty one (fresh
// directory).
func LoadManifest(dir string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data directory: %w", err)
	}
	tmp := filepath.Join(dir, manifestTmpName)
	if _, err := os.Stat(tmp); err == nil {
		// Torn save: the temp file may hold anything from zero bytes to a
		// complete-but-unrenamed manifest. Either way the rename never
		// happened, so it was never the committed state.
		if err := os.Remove(tmp); err != nil {
			return nil, fmt.Errorf("storage: removing stale %s: %w", manifestTmpName, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return &Manifest{}, nil
		}
		return nil, fmt.Errorf("storage: reading manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, &CorruptError{Path: filepath.Join(dir, ManifestName), Detail: err.Error()}
	}
	return m, nil
}

// SaveManifest commits m to dir under a bumped version: serialize to
// MANIFEST.tmp, fsync, atomically rename over MANIFEST, then fsync the
// directory so the rename itself is durable. Readers (and crashes) see
// either the old manifest or the new one, never a mixture.
func SaveManifest(dir string, m *Manifest) error {
	if err := faultpoint.Hit(faultpoint.SiteStorageManifestWrite); err != nil {
		return fmt.Errorf("storage: writing manifest: %w", err)
	}
	m.Version++
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		m.Version--
		return fmt.Errorf("storage: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestTmpName)
	if err := writeFileSync(tmp, data); err != nil {
		m.Version--
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		m.Version--
		return fmt.Errorf("storage: committing manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

// writeFileSync writes data to path and fsyncs before closing.
func writeFileSync(path string, data []byte) (retErr error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating %s: %w", filepath.Base(path), err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("storage: closing %s: %w", filepath.Base(path), cerr)
		}
	}()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("storage: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: syncing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
