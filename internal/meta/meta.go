// Package meta maintains VerdictDB's sample metadata. As Section 2.3
// requires, all metadata lives inside the underlying database itself (a
// table named verdict_meta_samples), so a fresh VerdictDB connection to
// the same database rediscovers previously built samples.
package meta

import (
	"fmt"
	"strings"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

// MetaTable is the name of the metadata table inside the underlying DB.
const MetaTable = "verdict_meta_samples"

// SampleInfo describes one registered sample table.
type SampleInfo struct {
	SampleTable string
	BaseTable   string
	Type        sqlparser.SampleType
	Ratio       float64  // requested sampling parameter tau
	Columns     []string // ON columns for hashed/stratified samples
	SampleRows  int64
	BaseRows    int64
	Subsamples  int64 // b: number of variational subsamples assigned
	// UniverseKeys counts the distinct hash-column values in a hashed
	// (universe) sample — tau * |domain|. The planner refuses degenerate
	// universes (too few keys) per Appendix F's cardinality rule.
	UniverseKeys int64
}

// EffectiveRatio is |sample| / |base| — what the planner scores with.
func (s SampleInfo) EffectiveRatio() float64 {
	if s.BaseRows == 0 {
		return 0
	}
	return float64(s.SampleRows) / float64(s.BaseRows)
}

// ColumnSet returns the ON columns as a lower-cased set.
func (s SampleInfo) ColumnSet() map[string]bool {
	set := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		set[strings.ToLower(c)] = true
	}
	return set
}

// Catalog reads and writes sample metadata through the DB interface.
type Catalog struct {
	db drivers.DB
}

// Open returns a catalog bound to db, creating the metadata table if absent.
func Open(db drivers.DB) (*Catalog, error) {
	c := &Catalog{db: db}
	err := db.Exec(fmt.Sprintf(`create table if not exists %s (
		sample_table string, base_table string, sample_type string,
		ratio double, on_columns string, sample_rows bigint,
		base_rows bigint, subsamples bigint, universe_keys bigint)`, MetaTable))
	if err != nil {
		return nil, fmt.Errorf("meta: creating catalog table: %w", err)
	}
	return c, nil
}

// Register records a sample. Re-registering the same sample table replaces
// the previous record.
func (c *Catalog) Register(si SampleInfo) error {
	if err := c.Drop(si.SampleTable); err != nil {
		return err
	}
	sql := fmt.Sprintf(
		"insert into %s values ('%s', '%s', '%s', %g, '%s', %d, %d, %d, %d)",
		MetaTable,
		escape(si.SampleTable), escape(strings.ToLower(si.BaseTable)), si.Type.String(),
		si.Ratio, escape(strings.ToLower(strings.Join(si.Columns, ","))),
		si.SampleRows, si.BaseRows, si.Subsamples, si.UniverseKeys)
	return c.db.Exec(sql)
}

// Drop removes the record for a sample table (the table itself is the
// caller's responsibility). The engine has no DELETE, so the catalog is
// rewritten without the dropped row — metadata is tiny.
func (c *Catalog) Drop(sampleTable string) error {
	all, err := c.List()
	if err != nil {
		return err
	}
	keep := all[:0]
	found := false
	for _, si := range all {
		if strings.EqualFold(si.SampleTable, sampleTable) {
			found = true
			continue
		}
		keep = append(keep, si)
	}
	if !found {
		return nil
	}
	if err := c.db.Exec("drop table " + MetaTable); err != nil {
		return err
	}
	if _, err := Open(c.db); err != nil {
		return err
	}
	for _, si := range keep {
		if err := c.Register(si); err != nil {
			return err
		}
	}
	return nil
}

// List returns all registered samples.
func (c *Catalog) List() ([]SampleInfo, error) {
	rs, err := c.db.Query("select sample_table, base_table, sample_type, ratio, on_columns, sample_rows, base_rows, subsamples, universe_keys from " + MetaTable)
	if err != nil {
		return nil, err
	}
	out := make([]SampleInfo, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		si := SampleInfo{
			SampleTable: engine.ToStr(r[0]),
			BaseTable:   engine.ToStr(r[1]),
		}
		switch engine.ToStr(r[2]) {
		case "uniform":
			si.Type = sqlparser.UniformSample
		case "hashed":
			si.Type = sqlparser.HashedSample
		case "stratified":
			si.Type = sqlparser.StratifiedSample
		}
		si.Ratio, _ = engine.ToFloat(r[3])
		if cols := engine.ToStr(r[4]); cols != "" {
			si.Columns = strings.Split(cols, ",")
		}
		si.SampleRows, _ = engine.ToInt(r[5])
		si.BaseRows, _ = engine.ToInt(r[6])
		si.Subsamples, _ = engine.ToInt(r[7])
		si.UniverseKeys, _ = engine.ToInt(r[8])
		out = append(out, si)
	}
	return out, nil
}

// ForTable returns the samples registered for a base table.
func (c *Catalog) ForTable(base string) ([]SampleInfo, error) {
	all, err := c.List()
	if err != nil {
		return nil, err
	}
	var out []SampleInfo
	for _, si := range all {
		if strings.EqualFold(si.BaseTable, base) {
			out = append(out, si)
		}
	}
	return out, nil
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }
