// Package meta maintains VerdictDB's sample metadata. As Section 2.3
// requires, all metadata lives inside the underlying database itself (a
// table named verdict_meta_samples), so a fresh VerdictDB connection to
// the same database rediscovers previously built samples.
//
// On top of that durable SQL state the catalog keeps a versioned in-process
// snapshot: reads (List, ForTable, Snapshot) never touch the database, and
// every mutation (Register, Drop, Reload) installs a fresh snapshot under a
// bumped version number. The version is what the middleware's plan/rewrite
// cache keys on — a sample DDL bump invalidates every cached plan.
package meta

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

// MetaTable is the name of the metadata table inside the underlying DB.
const MetaTable = "verdict_meta_samples"

// SampleInfo describes one registered sample table.
type SampleInfo struct {
	SampleTable string
	BaseTable   string
	Type        sqlparser.SampleType
	Ratio       float64  // requested sampling parameter tau
	Columns     []string // ON columns for hashed/stratified samples
	SampleRows  int64
	BaseRows    int64
	Subsamples  int64 // b: number of variational subsamples assigned
	// UniverseKeys counts the distinct hash-column values in a hashed
	// (universe) sample — tau * |domain|. The planner refuses degenerate
	// universes (too few keys) per Appendix F's cardinality rule.
	UniverseKeys int64
	// BlockRows is the target rows per scramble block (the builder's block
	// size knob); 0 means the sample was built without block partitioning.
	BlockRows int64
	// BlockCounts[i] is the actual row count of block i+1 (block ids are
	// 1-based in the _vdb_block column). Because block membership is
	// assigned independently of tuple values, any block prefix is itself a
	// uniform random subsample of the sample — which is what lets the
	// progressive executor stop after a prefix and stay unbiased.
	BlockCounts []int64
}

// TotalBlockRows sums the per-block row counts.
func (s SampleInfo) TotalBlockRows() int64 {
	var n int64
	for _, c := range s.BlockCounts {
		n += c
	}
	return n
}

// BlockPrefixRows returns the number of sample rows in blocks 1..k.
func (s SampleInfo) BlockPrefixRows(k int) int64 {
	if k > len(s.BlockCounts) {
		k = len(s.BlockCounts)
	}
	var n int64
	for _, c := range s.BlockCounts[:k] {
		n += c
	}
	return n
}

// EffectiveRatio is |sample| / |base| — what the planner scores with.
func (s SampleInfo) EffectiveRatio() float64 {
	if s.BaseRows == 0 {
		return 0
	}
	return float64(s.SampleRows) / float64(s.BaseRows)
}

// ColumnSet returns the ON columns as a lower-cased set.
func (s SampleInfo) ColumnSet() map[string]bool {
	set := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		set[strings.ToLower(c)] = true
	}
	return set
}

// catalogState is one immutable snapshot of the catalog. Readers load it
// atomically and may hold it across a whole planning pass; writers build a
// new one and swap it in.
type catalogState struct {
	version int64
	infos   []SampleInfo
}

// Catalog reads and writes sample metadata. The SQL table is the durable
// source of truth; the in-process snapshot makes reads lock-free and gives
// every state a version number. Safe for concurrent use.
type Catalog struct {
	db drivers.DB

	mu    sync.Mutex                   // serializes writers (Register/Drop/Reload)
	state atomic.Pointer[catalogState] //verdict:guardedby mu:write lock-free reads via Load; Store only under mu
}

// Open returns a catalog bound to db, creating the metadata table if absent
// and loading any previously registered samples into the snapshot.
func Open(db drivers.DB) (*Catalog, error) {
	c := &Catalog{db: db}
	err := db.Exec(fmt.Sprintf(`create table if not exists %s (
		sample_table string, base_table string, sample_type string,
		ratio double, on_columns string, sample_rows bigint,
		base_rows bigint, subsamples bigint, universe_keys bigint,
		block_rows bigint, block_counts string)`, MetaTable))
	if err != nil {
		return nil, fmt.Errorf("meta: creating catalog table: %w", err)
	}
	infos, err := c.load()
	if err != nil {
		return nil, err
	}
	c.state.Store(&catalogState{version: 1, infos: infos}) //verdict:unguarded construction: c is not shared until Open returns
	return c, nil
}

// Version returns the current catalog version. It increases on every
// mutation; cache entries tagged with an older version are stale.
func (c *Catalog) Version() int64 {
	return c.state.Load().version
}

// Snapshot returns the registered samples together with the version they
// belong to, atomically. The returned slice is a fresh copy; callers may
// keep pointers into it but must treat each SampleInfo as read-only.
func (c *Catalog) Snapshot() ([]SampleInfo, int64) {
	st := c.state.Load()
	return append([]SampleInfo(nil), st.infos...), st.version
}

// List returns all registered samples from the in-process snapshot.
func (c *Catalog) List() ([]SampleInfo, error) {
	infos, _ := c.Snapshot()
	return infos, nil
}

// ForTable returns the samples registered for a base table.
func (c *Catalog) ForTable(base string) ([]SampleInfo, error) {
	st := c.state.Load()
	var out []SampleInfo
	for _, si := range st.infos {
		if strings.EqualFold(si.BaseTable, base) {
			out = append(out, si)
		}
	}
	return out, nil
}

// Register records a sample. Re-registering the same sample table replaces
// the previous record. Bumps the catalog version.
func (c *Catalog) Register(si SampleInfo) error {
	si.BaseTable = strings.ToLower(si.BaseTable)
	low := make([]string, len(si.Columns))
	for i, col := range si.Columns {
		low[i] = strings.ToLower(col)
	}
	si.Columns = low

	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state.Load()
	replacing := false
	next := make([]SampleInfo, 0, len(st.infos)+1)
	for _, old := range st.infos {
		if strings.EqualFold(old.SampleTable, si.SampleTable) {
			replacing = true
			continue
		}
		next = append(next, old)
	}
	next = append(next, si)
	if !replacing {
		// Fast path for a brand-new sample: a single durable INSERT, which
		// leaves the SQL table untouched on failure (no rewrite needed).
		if err := c.db.Exec(insertRowSQL(si)); err != nil {
			return err
		}
		c.state.Store(&catalogState{version: st.version + 1, infos: next})
		return nil
	}
	return c.commitLocked(st.version, next)
}

// Drop removes the record for a sample table (the table itself is the
// caller's responsibility) and bumps the catalog version. Dropping an
// unknown sample is a no-op and does not bump the version.
func (c *Catalog) Drop(sampleTable string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state.Load()
	next := make([]SampleInfo, 0, len(st.infos))
	found := false
	for _, si := range st.infos {
		if strings.EqualFold(si.SampleTable, sampleTable) {
			found = true
			continue
		}
		next = append(next, si)
	}
	if !found {
		return nil
	}
	return c.commitLocked(st.version, next)
}

// Reconcile re-verifies every registered sample against the underlying
// database and repairs the catalog: samples whose table has disappeared are
// dropped, and samples whose row count disagrees with the recorded one
// (e.g. after crash recovery quarantined a damaged segment) get their
// SampleRows and per-block counts recounted from the table itself. blockCol
// names the scramble-block column (passed in to keep meta independent of
// the sampling package); pass "" to skip block-count repair.
//
// The fast path — every sample present with a matching count — costs one
// count(*) per sample and leaves the catalog version untouched.
func (c *Catalog) Reconcile(blockCol string) error {
	infos, _ := c.Snapshot()
	for _, si := range infos {
		rs, err := c.db.Query("select count(*) from " + si.SampleTable)
		if err != nil {
			// The sample table did not survive (dropped behind our back or
			// lost to recovery): retire its record rather than serving plans
			// that reference a missing table.
			if derr := c.Drop(si.SampleTable); derr != nil {
				return derr
			}
			continue
		}
		n, _ := engine.ToInt(rs.Rows[0][0])
		if n == si.SampleRows {
			continue
		}
		si.SampleRows = n
		if si.BlockRows > 0 && blockCol != "" {
			counts, err := c.recountBlocks(si.SampleTable, blockCol)
			if err != nil {
				return err
			}
			si.BlockCounts = counts
		}
		if err := c.Register(si); err != nil {
			return err
		}
	}
	return nil
}

// recountBlocks reads per-block row counts back from a sample table
// (1-based block ids; ids the random assignment left empty report 0).
func (c *Catalog) recountBlocks(table, blockCol string) ([]int64, error) {
	rs, err := c.db.Query(fmt.Sprintf("select %s, count(*) from %s group by %s",
		blockCol, table, blockCol))
	if err != nil {
		return nil, err
	}
	byID := map[int64]int64{}
	var maxID int64
	for _, r := range rs.Rows {
		id, ok := engine.ToInt(r[0])
		if !ok || id < 1 {
			continue
		}
		n, _ := engine.ToInt(r[1])
		byID[id] = n
		if id > maxID {
			maxID = id
		}
	}
	counts := make([]int64, maxID)
	for i := range counts {
		counts[i] = byID[int64(i+1)]
	}
	return counts, nil
}

// Reload re-reads the metadata table from the underlying database —
// for catalogs whose SQL state was changed behind this process's back —
// and bumps the version so dependent caches refresh.
func (c *Catalog) Reload() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	infos, err := c.load()
	if err != nil {
		return err
	}
	st := c.state.Load()
	c.state.Store(&catalogState{version: st.version + 1, infos: infos})
	return nil
}

// commitLocked persists infos to the SQL table and installs them as the new
// snapshot under version+1. Caller holds c.mu. The engine has no DELETE, so
// removals rewrite the catalog table wholesale — metadata is tiny. If the
// rewrite fails partway, the snapshot is resynced from whatever durable
// state remains (under a bumped version) so memory and SQL never diverge.
//
//verdict:locked mu
func (c *Catalog) commitLocked(version int64, infos []SampleInfo) error {
	persist := func() error {
		if err := c.db.Exec("drop table if exists " + MetaTable); err != nil {
			return err
		}
		err := c.db.Exec(fmt.Sprintf(`create table %s (
			sample_table string, base_table string, sample_type string,
			ratio double, on_columns string, sample_rows bigint,
			base_rows bigint, subsamples bigint, universe_keys bigint,
			block_rows bigint, block_counts string)`, MetaTable))
		if err != nil {
			return fmt.Errorf("meta: recreating catalog table: %w", err)
		}
		for _, si := range infos {
			if err := c.db.Exec(insertRowSQL(si)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := persist(); err != nil {
		if rescued, lerr := c.load(); lerr == nil {
			c.state.Store(&catalogState{version: version + 1, infos: rescued})
		}
		return err
	}
	c.state.Store(&catalogState{version: version + 1, infos: infos})
	return nil
}

// insertRowSQL renders one sample's durable catalog row.
func insertRowSQL(si SampleInfo) string {
	return fmt.Sprintf(
		"insert into %s values ('%s', '%s', '%s', %g, '%s', %d, %d, %d, %d, %d, '%s')",
		MetaTable,
		escape(si.SampleTable), escape(strings.ToLower(si.BaseTable)), si.Type.String(),
		si.Ratio, escape(strings.ToLower(strings.Join(si.Columns, ","))),
		si.SampleRows, si.BaseRows, si.Subsamples, si.UniverseKeys,
		si.BlockRows, encodeBlockCounts(si.BlockCounts))
}

// encodeBlockCounts renders per-block counts as a comma-joined string (the
// catalog stays a plain SQL table, so nested data flattens to text).
func encodeBlockCounts(counts []int64) string {
	if len(counts) == 0 {
		return ""
	}
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// decodeBlockCounts parses a comma-joined block-count string.
func decodeBlockCounts(s string) []int64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		var n int64
		fmt.Sscanf(p, "%d", &n)
		out = append(out, n)
	}
	return out
}

// load reads the SQL metadata table into a fresh info slice.
func (c *Catalog) load() ([]SampleInfo, error) {
	rs, err := c.db.Query("select sample_table, base_table, sample_type, ratio, on_columns, sample_rows, base_rows, subsamples, universe_keys, block_rows, block_counts from " + MetaTable)
	if err != nil {
		return nil, err
	}
	out := make([]SampleInfo, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		si := SampleInfo{
			SampleTable: engine.ToStr(r[0]),
			BaseTable:   engine.ToStr(r[1]),
		}
		switch engine.ToStr(r[2]) {
		case "uniform":
			si.Type = sqlparser.UniformSample
		case "hashed":
			si.Type = sqlparser.HashedSample
		case "stratified":
			si.Type = sqlparser.StratifiedSample
		}
		si.Ratio, _ = engine.ToFloat(r[3])
		if cols := engine.ToStr(r[4]); cols != "" {
			si.Columns = strings.Split(cols, ",")
		}
		si.SampleRows, _ = engine.ToInt(r[5])
		si.BaseRows, _ = engine.ToInt(r[6])
		si.Subsamples, _ = engine.ToInt(r[7])
		si.UniverseKeys, _ = engine.ToInt(r[8])
		si.BlockRows, _ = engine.ToInt(r[9])
		si.BlockCounts = decodeBlockCounts(engine.ToStr(r[10]))
		out = append(out, si)
	}
	return out, nil
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }
