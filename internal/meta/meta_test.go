package meta

import (
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

func newCatalog(t *testing.T) (*Catalog, drivers.DB) {
	t.Helper()
	db := drivers.NewGeneric(engine.NewSeeded(1))
	cat, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return cat, db
}

func TestOpenIdempotent(t *testing.T) {
	_, db := newCatalog(t)
	// Re-opening over the same DB must not fail or wipe data.
	cat2, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat2.Register(SampleInfo{
		SampleTable: "s1", BaseTable: "t", Type: sqlparser.UniformSample,
		Ratio: 0.01, SampleRows: 100, BaseRows: 10000, Subsamples: 10,
	}); err != nil {
		t.Fatal(err)
	}
	cat3, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	all, err := cat3.List()
	if err != nil || len(all) != 1 {
		t.Fatalf("list after reopen: %d, %v", len(all), err)
	}
}

func TestRegisterRoundTripsAllFields(t *testing.T) {
	cat, _ := newCatalog(t)
	in := SampleInfo{
		SampleTable: "orders_h", BaseTable: "Orders", Type: sqlparser.HashedSample,
		Ratio: 0.025, Columns: []string{"user_id"},
		SampleRows: 1234, BaseRows: 98765, Subsamples: 35, UniverseKeys: 321,
		BlockRows: 512, BlockCounts: []int64{512, 500, 222},
	}
	if err := cat.Register(in); err != nil {
		t.Fatal(err)
	}
	all, err := cat.List()
	if err != nil || len(all) != 1 {
		t.Fatalf("%d %v", len(all), err)
	}
	got := all[0]
	if got.SampleTable != "orders_h" || got.BaseTable != "orders" ||
		got.Type != sqlparser.HashedSample || got.Ratio != 0.025 ||
		len(got.Columns) != 1 || got.Columns[0] != "user_id" ||
		got.SampleRows != 1234 || got.BaseRows != 98765 ||
		got.Subsamples != 35 || got.UniverseKeys != 321 ||
		got.BlockRows != 512 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.BlockCounts) != 3 || got.BlockCounts[0] != 512 ||
		got.BlockCounts[1] != 500 || got.BlockCounts[2] != 222 {
		t.Fatalf("block counts mismatch: %v", got.BlockCounts)
	}
	if got.TotalBlockRows() != 1234 {
		t.Fatalf("TotalBlockRows: %d", got.TotalBlockRows())
	}
	if got.BlockPrefixRows(2) != 1012 || got.BlockPrefixRows(99) != 1234 {
		t.Fatalf("BlockPrefixRows: %d, %d", got.BlockPrefixRows(2), got.BlockPrefixRows(99))
	}

	// The durable SQL table survives a fresh catalog open (block metadata
	// included) — the Section 2.3 rediscovery property.
	cat2, err := Open(cat.db)
	if err != nil {
		t.Fatal(err)
	}
	all2, _ := cat2.List()
	if len(all2) != 1 || len(all2[0].BlockCounts) != 3 || all2[0].BlockRows != 512 {
		t.Fatalf("reopen lost block metadata: %+v", all2)
	}
}

func TestDropRemovesOnlyTarget(t *testing.T) {
	cat, _ := newCatalog(t)
	for _, name := range []string{"a", "b", "c"} {
		if err := cat.Register(SampleInfo{
			SampleTable: name, BaseTable: "t", Type: sqlparser.UniformSample,
			Ratio: 0.01, SampleRows: 10, BaseRows: 1000, Subsamples: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Drop("b"); err != nil {
		t.Fatal(err)
	}
	all, _ := cat.List()
	if len(all) != 2 {
		t.Fatalf("after drop: %d", len(all))
	}
	for _, si := range all {
		if si.SampleTable == "b" {
			t.Fatal("b still present")
		}
	}
	// Dropping a missing sample is a no-op.
	if err := cat.Drop("nope"); err != nil {
		t.Fatal(err)
	}
}

func TestForTableCaseInsensitive(t *testing.T) {
	cat, _ := newCatalog(t)
	if err := cat.Register(SampleInfo{
		SampleTable: "s", BaseTable: "Lineitem", Type: sqlparser.UniformSample,
		Ratio: 0.01, SampleRows: 10, BaseRows: 1000, Subsamples: 4,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := cat.ForTable("LINEITEM")
	if err != nil || len(got) != 1 {
		t.Fatalf("case-insensitive lookup: %d %v", len(got), err)
	}
}

func TestEffectiveRatio(t *testing.T) {
	si := SampleInfo{SampleRows: 250, BaseRows: 10_000}
	if r := si.EffectiveRatio(); r != 0.025 {
		t.Fatalf("ratio %v", r)
	}
	if r := (SampleInfo{}).EffectiveRatio(); r != 0 {
		t.Fatalf("zero base ratio %v", r)
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	cat, db := newCatalog(t)
	v0 := cat.Version()
	si := SampleInfo{
		SampleTable: "s1", BaseTable: "t", Type: sqlparser.UniformSample,
		Ratio: 0.01, SampleRows: 10, BaseRows: 1000, Subsamples: 4,
	}
	if err := cat.Register(si); err != nil {
		t.Fatal(err)
	}
	v1 := cat.Version()
	if v1 <= v0 {
		t.Fatalf("Register did not bump version: %d -> %d", v0, v1)
	}
	infos, vSnap := cat.Snapshot()
	if vSnap != v1 || len(infos) != 1 {
		t.Fatalf("snapshot: version %d (want %d), %d infos", vSnap, v1, len(infos))
	}
	if err := cat.Drop("s1"); err != nil {
		t.Fatal(err)
	}
	if cat.Version() <= v1 {
		t.Fatal("Drop did not bump version")
	}
	v2 := cat.Version()
	// Dropping a missing sample is a no-op and must not bump.
	if err := cat.Drop("nope"); err != nil {
		t.Fatal(err)
	}
	if cat.Version() != v2 {
		t.Fatal("no-op Drop bumped version")
	}
	// Reload picks up external SQL-level changes and bumps.
	cat2, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat2.Register(si); err != nil {
		t.Fatal(err)
	}
	if err := cat.Reload(); err != nil {
		t.Fatal(err)
	}
	if cat.Version() <= v2 {
		t.Fatal("Reload did not bump version")
	}
	if all, _ := cat.List(); len(all) != 1 {
		t.Fatalf("Reload missed external registration: %d infos", len(all))
	}
}

func TestCatalogConcurrentReadersAndWriters(t *testing.T) {
	cat, _ := newCatalog(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			name := "s" + string(rune('a'+i%8))
			_ = cat.Register(SampleInfo{
				SampleTable: name, BaseTable: "t", Type: sqlparser.UniformSample,
				Ratio: 0.01, SampleRows: 10, BaseRows: 1000, Subsamples: 4,
			})
			_ = cat.Drop(name)
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := cat.List(); err != nil {
			t.Error(err)
			break
		}
		infos, v := cat.Snapshot()
		if v < 1 {
			t.Errorf("bad version %d", v)
			break
		}
		_ = infos
	}
	<-done
}

func TestEscapedNames(t *testing.T) {
	cat, _ := newCatalog(t)
	if err := cat.Register(SampleInfo{
		SampleTable: "weird's", BaseTable: "t", Type: sqlparser.UniformSample,
		Ratio: 0.01, SampleRows: 1, BaseRows: 10, Subsamples: 2,
	}); err != nil {
		t.Fatal(err)
	}
	all, err := cat.List()
	if err != nil || len(all) != 1 || all[0].SampleTable != "weird's" {
		t.Fatalf("quote escaping: %+v %v", all, err)
	}
}
