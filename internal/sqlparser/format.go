package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Dialect controls SQL rendering differences between engines. VerdictDB's
// Syntax Changer (Section 2.1) renders the rewritten logical query into each
// backend's dialect; only this layer knows per-engine quirks.
type Dialect struct {
	Name string
	// QuoteIdent wraps an identifier in the dialect's quoting style.
	QuoteIdent func(string) string
	// FuncName maps a canonical function name to the dialect spelling
	// (e.g. hash01 -> crc32-based expression). Identity when nil.
	FuncName func(string) string
	// NoRandInWhere mirrors Impala's restriction that rand() may not appear
	// in selection predicates; the rewriter avoids such forms when set.
	NoRandInWhere bool
}

// DefaultDialect renders canonical SQL understood by internal/engine.
var DefaultDialect = Dialect{
	Name:       "canonical",
	QuoteIdent: func(s string) string { return s },
}

func (d Dialect) quote(s string) string {
	if d.QuoteIdent == nil {
		return s
	}
	// Never quote qualified names wholesale.
	if strings.Contains(s, ".") {
		parts := strings.Split(s, ".")
		for i := range parts {
			parts[i] = d.QuoteIdent(parts[i])
		}
		return strings.Join(parts, ".")
	}
	return d.QuoteIdent(s)
}

func (d Dialect) funcName(name string) string {
	if d.FuncName == nil {
		return name
	}
	return d.FuncName(name)
}

// Format renders a statement in the default (canonical) dialect.
func Format(stmt Statement) string { return FormatDialect(stmt, DefaultDialect) }

// FormatExpr renders an expression in the default dialect.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	DefaultDialect.formatExpr(&sb, e)
	return sb.String()
}

// FormatDialect renders a statement in the given dialect.
func FormatDialect(stmt Statement, d Dialect) string {
	var sb strings.Builder
	d.formatStmt(&sb, stmt)
	return sb.String()
}

func (d Dialect) formatStmt(sb *strings.Builder, stmt Statement) {
	switch s := stmt.(type) {
	case *SelectStmt:
		d.formatSelect(sb, s)
	case *CreateTableStmt:
		sb.WriteString("CREATE TABLE ")
		if s.IfNotExists {
			sb.WriteString("IF NOT EXISTS ")
		}
		sb.WriteString(d.quote(s.Name))
		if s.AsSelect != nil {
			sb.WriteString(" AS ")
			d.formatSelect(sb, s.AsSelect)
			return
		}
		sb.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(d.quote(c.Name))
			sb.WriteString(" ")
			sb.WriteString(c.Type)
		}
		sb.WriteString(")")
	case *DropTableStmt:
		sb.WriteString("DROP TABLE ")
		if s.IfExists {
			sb.WriteString("IF EXISTS ")
		}
		sb.WriteString(d.quote(s.Name))
	case *InsertStmt:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(d.quote(s.Table))
		if len(s.Columns) > 0 {
			sb.WriteString(" (")
			for i, c := range s.Columns {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(d.quote(c))
			}
			sb.WriteString(")")
		}
		if s.Select != nil {
			sb.WriteString(" ")
			d.formatSelect(sb, s.Select)
			return
		}
		sb.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				d.formatExpr(sb, e)
			}
			sb.WriteString(")")
		}
	case *CreateSampleStmt:
		fmt.Fprintf(sb, "CREATE %s SAMPLE OF %s", strings.ToUpper(s.Type.String()), d.quote(s.Table))
		if len(s.Columns) > 0 {
			sb.WriteString(" ON (")
			sb.WriteString(strings.Join(s.Columns, ", "))
			sb.WriteString(")")
		}
		if s.Ratio > 0 {
			fmt.Fprintf(sb, " RATIO %g", s.Ratio)
		}
	case *ShowSamplesStmt:
		sb.WriteString("SHOW SAMPLES")
	case *BypassStmt:
		sb.WriteString("BYPASS ")
		sb.WriteString(s.SQL)
	case *ExplainStmt:
		sb.WriteString("EXPLAIN ")
		sb.WriteString(s.SQL)
	default:
		fmt.Fprintf(sb, "/* unknown statement %T */", stmt)
	}
}

func (d Dialect) formatSelect(sb *strings.Builder, s *SelectStmt) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case item.Star && item.StarTable != "":
			sb.WriteString(d.quote(item.StarTable))
			sb.WriteString(".*")
		case item.Star:
			sb.WriteString("*")
		default:
			d.formatExpr(sb, item.Expr)
			if item.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(d.quote(item.Alias))
			}
		}
	}
	if s.From != nil {
		sb.WriteString(" FROM ")
		d.formatTable(sb, s.From)
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		d.formatExpr(sb, s.Where)
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			d.formatExpr(sb, e)
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		d.formatExpr(sb, s.Having)
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			d.formatExpr(sb, o.Expr)
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT ")
		d.formatExpr(sb, s.Limit)
	}
	if s.Union != nil {
		sb.WriteString(" UNION ")
		if s.UnionAll {
			sb.WriteString("ALL ")
		}
		d.formatSelect(sb, s.Union)
	}
}

func (d Dialect) formatTable(sb *strings.Builder, t TableExpr) {
	switch tt := t.(type) {
	case *TableRef:
		sb.WriteString(d.quote(tt.Name))
		if tt.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(d.quote(tt.Alias))
		}
	case *DerivedTable:
		sb.WriteString("(")
		d.formatSelect(sb, tt.Select)
		sb.WriteString(")")
		if tt.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(d.quote(tt.Alias))
		}
	case *JoinExpr:
		d.formatTable(sb, tt.Left)
		sb.WriteString(" ")
		sb.WriteString(tt.Type.String())
		sb.WriteString(" ")
		// Parenthesize nested joins on the right for unambiguous re-parsing.
		if _, nested := tt.Right.(*JoinExpr); nested {
			sb.WriteString("(")
			d.formatTable(sb, tt.Right)
			sb.WriteString(")")
		} else {
			d.formatTable(sb, tt.Right)
		}
		if tt.On != nil {
			sb.WriteString(" ON ")
			d.formatExpr(sb, tt.On)
		} else if len(tt.Using) > 0 {
			sb.WriteString(" USING (")
			sb.WriteString(strings.Join(tt.Using, ", "))
			sb.WriteString(")")
		}
	}
}

func (d Dialect) formatExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			sb.WriteString(d.quote(x.Table))
			sb.WriteString(".")
		}
		sb.WriteString(d.quote(x.Name))
	case *Literal:
		d.formatLiteral(sb, x.Val)
	case *BinaryExpr:
		sb.WriteString("(")
		d.formatExpr(sb, x.L)
		sb.WriteString(" ")
		sb.WriteString(x.Op)
		sb.WriteString(" ")
		d.formatExpr(sb, x.R)
		sb.WriteString(")")
	case *UnaryExpr:
		if x.Op == "NOT" {
			sb.WriteString("(NOT ")
			d.formatExpr(sb, x.X)
			sb.WriteString(")")
			return
		}
		sb.WriteString("(")
		sb.WriteString(x.Op)
		d.formatExpr(sb, x.X)
		sb.WriteString(")")
	case *FuncCall:
		sb.WriteString(d.funcName(x.Name))
		sb.WriteString("(")
		if x.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if x.Star {
			sb.WriteString("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			d.formatExpr(sb, a)
		}
		sb.WriteString(")")
		if x.Over != nil {
			sb.WriteString(" OVER (")
			if len(x.Over.PartitionBy) > 0 {
				sb.WriteString("PARTITION BY ")
				for i, pe := range x.Over.PartitionBy {
					if i > 0 {
						sb.WriteString(", ")
					}
					d.formatExpr(sb, pe)
				}
			}
			sb.WriteString(")")
		}
	case *CaseExpr:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteString(" ")
			d.formatExpr(sb, x.Operand)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			d.formatExpr(sb, w.Cond)
			sb.WriteString(" THEN ")
			d.formatExpr(sb, w.Then)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			d.formatExpr(sb, x.Else)
		}
		sb.WriteString(" END")
	case *SubqueryExpr:
		sb.WriteString("(")
		d.formatSelect(sb, x.Select)
		sb.WriteString(")")
	case *InExpr:
		d.formatExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		if x.Subquery != nil {
			d.formatSelect(sb, x.Subquery)
		} else {
			for i, le := range x.List {
				if i > 0 {
					sb.WriteString(", ")
				}
				d.formatExpr(sb, le)
			}
		}
		sb.WriteString(")")
	case *BetweenExpr:
		sb.WriteString("(")
		d.formatExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		d.formatExpr(sb, x.Lo)
		sb.WriteString(" AND ")
		d.formatExpr(sb, x.Hi)
		sb.WriteString(")")
	case *LikeExpr:
		sb.WriteString("(")
		d.formatExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" LIKE ")
		d.formatExpr(sb, x.Pattern)
		sb.WriteString(")")
	case *IsNullExpr:
		sb.WriteString("(")
		d.formatExpr(sb, x.X)
		sb.WriteString(" IS ")
		if x.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("NULL)")
	case *ExistsExpr:
		if x.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("EXISTS (")
		d.formatSelect(sb, x.Select)
		sb.WriteString(")")
	case *CastExpr:
		sb.WriteString("CAST(")
		d.formatExpr(sb, x.X)
		sb.WriteString(" AS ")
		sb.WriteString(x.Type)
		sb.WriteString(")")
	case *IntervalExpr:
		fmt.Fprintf(sb, "INTERVAL '%s' %s", x.Value, x.Unit)
	default:
		fmt.Fprintf(sb, "/* unknown expr %T */", e)
	}
}

func (d Dialect) formatLiteral(sb *strings.Builder, v any) {
	switch val := v.(type) {
	case nil:
		sb.WriteString("NULL")
	case bool:
		if val {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case int64:
		sb.WriteString(strconv.FormatInt(val, 10))
	case int:
		sb.WriteString(strconv.Itoa(val))
	case float64:
		sb.WriteString(strconv.FormatFloat(val, 'g', -1, 64))
	case string:
		sb.WriteString("'")
		sb.WriteString(strings.ReplaceAll(val, "'", "''"))
		sb.WriteString("'")
	default:
		fmt.Fprintf(sb, "%v", val)
	}
}
