package sqlparser

// WalkExpr calls fn on e and every sub-expression in pre-order. If fn
// returns false, children of that node are not visited. Subqueries inside
// expressions are not descended into (the caller decides how to handle
// nested query blocks).
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
		if x.Over != nil {
			for _, pe := range x.Over.PartitionBy {
				WalkExpr(pe, fn)
			}
		}
	case *CaseExpr:
		WalkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *InExpr:
		WalkExpr(x.X, fn)
		for _, le := range x.List {
			WalkExpr(le, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *LikeExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	}
}

// CloneExpr returns a deep copy of e. Subqueries are cloned too.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		c := *x
		return &c
	case *Literal:
		c := *x
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: CloneExpr(x.X)}
	case *FuncCall:
		c := &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		if x.Over != nil {
			spec := &WindowSpec{}
			for _, pe := range x.Over.PartitionBy {
				spec.PartitionBy = append(spec.PartitionBy, CloneExpr(pe))
			}
			c.Over = spec
		}
		return c
	case *CaseExpr:
		c := &CaseExpr{Operand: CloneExpr(x.Operand), Else: CloneExpr(x.Else)}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, When{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)})
		}
		return c
	case *SubqueryExpr:
		return &SubqueryExpr{Select: CloneSelect(x.Select)}
	case *InExpr:
		c := &InExpr{X: CloneExpr(x.X), Not: x.Not}
		for _, le := range x.List {
			c.List = append(c.List, CloneExpr(le))
		}
		if x.Subquery != nil {
			c.Subquery = CloneSelect(x.Subquery)
		}
		return c
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Pattern: CloneExpr(x.Pattern), Not: x.Not}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *ExistsExpr:
		return &ExistsExpr{Select: CloneSelect(x.Select), Not: x.Not}
	case *CastExpr:
		return &CastExpr{X: CloneExpr(x.X), Type: x.Type}
	case *IntervalExpr:
		c := *x
		return &c
	}
	return e
}

// CloneSelect returns a deep copy of a select statement.
func CloneSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	c := &SelectStmt{Distinct: s.Distinct, UnionAll: s.UnionAll}
	for _, it := range s.Items {
		ci := SelectItem{Star: it.Star, StarTable: it.StarTable, Alias: it.Alias}
		if it.Expr != nil {
			ci.Expr = CloneExpr(it.Expr)
		}
		c.Items = append(c.Items, ci)
	}
	c.From = CloneTable(s.From)
	c.Where = CloneExpr(s.Where)
	for _, g := range s.GroupBy {
		c.GroupBy = append(c.GroupBy, CloneExpr(g))
	}
	c.Having = CloneExpr(s.Having)
	for _, o := range s.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	c.Limit = CloneExpr(s.Limit)
	c.Union = CloneSelect(s.Union)
	return c
}

// CloneTable returns a deep copy of a table expression.
func CloneTable(t TableExpr) TableExpr {
	switch tt := t.(type) {
	case nil:
		return nil
	case *TableRef:
		c := *tt
		return &c
	case *DerivedTable:
		return &DerivedTable{Select: CloneSelect(tt.Select), Alias: tt.Alias}
	case *JoinExpr:
		c := &JoinExpr{
			Left:  CloneTable(tt.Left),
			Right: CloneTable(tt.Right),
			Type:  tt.Type,
			On:    CloneExpr(tt.On),
		}
		c.Using = append(c.Using, tt.Using...)
		return c
	}
	return t
}

// RewriteExpr applies fn bottom-up, replacing each node with fn's return
// value. fn must not return nil for non-nil input.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		x.L = RewriteExpr(x.L, fn)
		x.R = RewriteExpr(x.R, fn)
	case *UnaryExpr:
		x.X = RewriteExpr(x.X, fn)
	case *FuncCall:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, fn)
		}
		if x.Over != nil {
			for i, pe := range x.Over.PartitionBy {
				x.Over.PartitionBy[i] = RewriteExpr(pe, fn)
			}
		}
	case *CaseExpr:
		x.Operand = RewriteExpr(x.Operand, fn)
		for i := range x.Whens {
			x.Whens[i].Cond = RewriteExpr(x.Whens[i].Cond, fn)
			x.Whens[i].Then = RewriteExpr(x.Whens[i].Then, fn)
		}
		x.Else = RewriteExpr(x.Else, fn)
	case *InExpr:
		x.X = RewriteExpr(x.X, fn)
		for i, le := range x.List {
			x.List[i] = RewriteExpr(le, fn)
		}
	case *BetweenExpr:
		x.X = RewriteExpr(x.X, fn)
		x.Lo = RewriteExpr(x.Lo, fn)
		x.Hi = RewriteExpr(x.Hi, fn)
	case *LikeExpr:
		x.X = RewriteExpr(x.X, fn)
		x.Pattern = RewriteExpr(x.Pattern, fn)
	case *IsNullExpr:
		x.X = RewriteExpr(x.X, fn)
	case *CastExpr:
		x.X = RewriteExpr(x.X, fn)
	}
	return fn(e)
}

// AggregateFuncs is the set of aggregate function names the engine and the
// middleware both understand.
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"stddev": true, "stddev_samp": true, "var": true, "variance": true,
	"var_samp": true, "percentile": true, "quantile": true, "median": true,
	"ndv": true, "approx_median": true, "approx_count_distinct": true,
}

// IsAggregate reports whether e is an aggregate function call (not a window
// application of one).
func IsAggregate(e Expr) bool {
	fc, ok := e.(*FuncCall)
	return ok && fc.Over == nil && AggregateFuncs[fc.Name]
}

// ContainsAggregate reports whether any node inside e (excluding subqueries)
// is an aggregate function call.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if IsAggregate(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// HasAggregates reports whether the select block computes any aggregate or
// uses GROUP BY.
func HasAggregates(s *SelectStmt) bool {
	if len(s.GroupBy) > 0 {
		return true
	}
	for _, it := range s.Items {
		if it.Expr != nil && ContainsAggregate(it.Expr) {
			return true
		}
	}
	return s.Having != nil && ContainsAggregate(s.Having)
}
