package sqlparser

import (
	"strings"
	"testing"
)

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", sql, err)
	}
	return sel
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 1.5e3 FROM t WHERE x <> 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{TokKeyword, TokIdent, TokOp, TokFloat, TokKeyword, TokIdent,
		TokKeyword, TokIdent, TokOp, TokString}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got kind %v want %v (%v)", i, kinds[i], want[i], toks[i])
		}
	}
	if toks[9].Text != "it's" {
		t.Errorf("string literal: got %q want %q", toks[9].Text, "it's")
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
}

func TestLexerBacktickIdent(t *testing.T) {
	toks, err := Tokenize("select `weird name` from `t`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokQuotedIdent || toks[1].Text != "weird name" {
		t.Fatalf("quoted ident: %v", toks[1])
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "select city, count(*) as c from orders where price > 100 group by city having count(*) > 5 order by c desc limit 10")
	if len(sel.Items) != 2 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "c" {
		t.Errorf("alias: %q", sel.Items[1].Alias)
	}
	fc, ok := sel.Items[1].Expr.(*FuncCall)
	if !ok || !fc.Star || fc.Name != "count" {
		t.Errorf("count(*): %#v", sel.Items[1].Expr)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil ||
		len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit == nil {
		t.Errorf("clauses missing: %+v", sel)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `select * from a inner join b on a.id = b.id left join c on b.x = c.x`)
	j, ok := sel.From.(*JoinExpr)
	if !ok || j.Type != LeftJoin {
		t.Fatalf("outer join: %#v", sel.From)
	}
	inner, ok := j.Left.(*JoinExpr)
	if !ok || inner.Type != InnerJoin {
		t.Fatalf("inner join: %#v", j.Left)
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustSelect(t, "select avg(sales) from (select city, sum(price) as sales from orders group by city) as t")
	dt, ok := sel.From.(*DerivedTable)
	if !ok || dt.Alias != "t" {
		t.Fatalf("derived: %#v", sel.From)
	}
	if len(dt.Select.GroupBy) != 1 {
		t.Errorf("inner group by")
	}
}

func TestParseWindow(t *testing.T) {
	sel := mustSelect(t, "select sum(count(*)) over (partition by g) from t group by g")
	fc := sel.Items[0].Expr.(*FuncCall)
	if fc.Over == nil || len(fc.Over.PartitionBy) != 1 {
		t.Fatalf("window: %#v", fc)
	}
	inner, ok := fc.Args[0].(*FuncCall)
	if !ok || inner.Name != "count" {
		t.Fatalf("window arg: %#v", fc.Args[0])
	}
}

func TestParseCase(t *testing.T) {
	sel := mustSelect(t, "select case when a > 1 then 'x' when a > 0 then 'y' else 'z' end from t")
	ce, ok := sel.Items[0].Expr.(*CaseExpr)
	if !ok || len(ce.Whens) != 2 || ce.Else == nil || ce.Operand != nil {
		t.Fatalf("case: %#v", sel.Items[0].Expr)
	}
	sel2 := mustSelect(t, "select case x when 1 then 'a' end from t")
	ce2 := sel2.Items[0].Expr.(*CaseExpr)
	if ce2.Operand == nil {
		t.Fatal("simple case operand missing")
	}
}

func TestParsePredicates(t *testing.T) {
	sel := mustSelect(t, `select * from t where a in (1,2,3) and b not like 'x%' and c between 1 and 2 and d is not null and not e = 1`)
	if sel.Where == nil {
		t.Fatal("where missing")
	}
	s := FormatExpr(sel.Where)
	for _, want := range []string{"IN (1, 2, 3)", "NOT LIKE", "BETWEEN 1 AND 2", "IS NOT NULL", "NOT "} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted where %q missing %q", s, want)
		}
	}
}

func TestParseScalarSubquery(t *testing.T) {
	sel := mustSelect(t, "select * from t where price > (select avg(price) from t)")
	be := sel.Where.(*BinaryExpr)
	if _, ok := be.R.(*SubqueryExpr); !ok {
		t.Fatalf("subquery: %#v", be.R)
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := mustSelect(t, "select * from t where id in (select id from s)")
	ie := sel.Where.(*InExpr)
	if ie.Subquery == nil {
		t.Fatal("in subquery missing")
	}
}

func TestParseExists(t *testing.T) {
	sel := mustSelect(t, "select * from t where exists (select 1 from s where s.id = t.id)")
	if _, ok := sel.Where.(*ExistsExpr); !ok {
		t.Fatalf("exists: %#v", sel.Where)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("create table if not exists foo (a int, b double, c varchar(10))")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if !ct.IfNotExists || ct.Name != "foo" || len(ct.Columns) != 3 {
		t.Fatalf("create: %+v", ct)
	}
	if ct.Columns[2].Type != "VARCHAR" {
		t.Errorf("type: %q", ct.Columns[2].Type)
	}
}

func TestParseCTAS(t *testing.T) {
	stmt, err := Parse("create table s as select * from t where rand() < 0.01")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.AsSelect == nil {
		t.Fatal("AS SELECT missing")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("insert into t (a, b) values (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	stmt2, err := Parse("insert into t select * from s")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.(*InsertStmt).Select == nil {
		t.Fatal("insert-select missing")
	}
}

func TestParseDrop(t *testing.T) {
	stmt, err := Parse("drop table if exists t")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*DropTableStmt).IfExists {
		t.Fatal("if exists")
	}
}

func TestParseCreateSample(t *testing.T) {
	stmt, err := Parse("create stratified sample of orders on (city, state) ratio 0.01")
	if err != nil {
		t.Fatal(err)
	}
	cs := stmt.(*CreateSampleStmt)
	if cs.Type != StratifiedSample || cs.Table != "orders" || len(cs.Columns) != 2 || cs.Ratio != 0.01 {
		t.Fatalf("sample: %+v", cs)
	}
}

func TestParseDateLiteralAndInterval(t *testing.T) {
	sel := mustSelect(t, "select * from t where d >= date '1994-01-01' and d < date '1994-01-01' + interval '1' year")
	s := FormatExpr(sel.Where)
	if !strings.Contains(s, "'1994-01-01'") || !strings.Contains(s, "INTERVAL '1' year") {
		t.Errorf("format: %s", s)
	}
}

func TestParseStarQualified(t *testing.T) {
	sel := mustSelect(t, "select t.*, 1 as one from t")
	if !sel.Items[0].Star || sel.Items[0].StarTable != "t" {
		t.Fatalf("t.*: %+v", sel.Items[0])
	}
	// Rewind path: t.col should still parse after lookahead.
	sel2 := mustSelect(t, "select t.a, t.b from t")
	if cr, ok := sel2.Items[0].Expr.(*ColumnRef); !ok || cr.Table != "t" || cr.Name != "a" {
		t.Fatalf("qualified col: %#v", sel2.Items[0].Expr)
	}
}

func TestParseUnion(t *testing.T) {
	sel := mustSelect(t, "select a from t union all select a from s")
	if sel.Union == nil || !sel.UnionAll {
		t.Fatalf("union: %+v", sel)
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := mustSelect(t, "select count(distinct user_id) from t")
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Distinct || len(fc.Args) != 1 {
		t.Fatalf("count distinct: %#v", fc)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"select city, count(*) as c from orders group by city",
		"select * from a inner join b on a.id = b.id where a.x > 5",
		"select avg(s) from (select sum(p) as s from t group by g) as d",
		"select case when a = 1 then 2 else 3 end from t",
		"select sum(x) over (partition by g), g from t",
		"select * from t where a in (1, 2) or b like 'x%'",
		"create table x as select * from y limit 5",
		"select count(distinct a) from t where b between 1 and 10",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		out := Format(stmt)
		stmt2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", out, q, err)
		}
		out2 := Format(stmt2)
		if out != out2 {
			t.Errorf("format not stable:\n  first:  %s\n  second: %s", out, out2)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	sel := mustSelect(t, "select a + b from t where c = 1")
	clone := CloneSelect(sel)
	// Mutate the clone; the original must not change.
	clone.Items[0].Expr.(*BinaryExpr).Op = "-"
	if sel.Items[0].Expr.(*BinaryExpr).Op != "+" {
		t.Fatal("clone aliases original")
	}
}

func TestAggregateDetection(t *testing.T) {
	sel := mustSelect(t, "select sum(x) + 1 from t")
	if !HasAggregates(sel) {
		t.Fatal("sum not detected")
	}
	sel2 := mustSelect(t, "select x + 1 from t")
	if HasAggregates(sel2) {
		t.Fatal("false positive")
	}
	sel3 := mustSelect(t, "select x from t group by x")
	if !HasAggregates(sel3) {
		t.Fatal("group by not detected")
	}
	// A window application of an aggregate is not a plain aggregate.
	sel4 := mustSelect(t, "select sum(x) over () from t")
	if IsAggregate(sel4.Items[0].Expr) {
		t.Fatal("window counted as aggregate")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"select",
		"select * from",
		"select * from t where",
		"select a from t group by",
		"create table",
		"select * from t join s", // missing ON
		"select case end from t",
		"insert into t values (1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestParseErrorsHaveContext(t *testing.T) {
	_, err := Parse("select * from t where ???")
	//verdict:errstr the test asserts the human-readable position context itself; parse errors have no sentinel taxonomy
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	sel := mustSelect(t, "select -5, -2.5, 1 - -2 from t")
	if v := sel.Items[0].Expr.(*Literal).Val; v != int64(-5) {
		t.Fatalf("neg int: %v", v)
	}
	if v := sel.Items[1].Expr.(*Literal).Val; v != -2.5 {
		t.Fatalf("neg float: %v", v)
	}
}

func TestParseBypassAndShow(t *testing.T) {
	stmt, err := Parse("bypass select * from t")
	if err != nil {
		t.Fatal(err)
	}
	bp := stmt.(*BypassStmt)
	if bp.SQL != "select * from t" {
		t.Fatalf("bypass sql: %q", bp.SQL)
	}
	if _, err := Parse("show samples"); err != nil {
		t.Fatal(err)
	}
}
