package sqlparser

import (
	"strconv"
	"strings"
)

// Expression grammar (lowest to highest precedence):
//
//	orExpr     := andExpr (OR andExpr)*
//	andExpr    := notExpr (AND notExpr)*
//	notExpr    := NOT notExpr | predicate
//	predicate  := addExpr (compOp addExpr | IN ... | BETWEEN ... | LIKE ... | IS [NOT] NULL)?
//	addExpr    := mulExpr (('+'|'-'|'||') mulExpr)*
//	mulExpr    := unary (('*'|'/'|'%') unary)*
//	unary      := '-' unary | primary
//	primary    := literal | caseExpr | cast | exists | funcCall | columnRef |
//	              '(' expr ')' | '(' select ')' | interval
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.tok.Kind == TokKeyword && p.tok.Text == "NOT" {
		// NOT may prefix IN / BETWEEN / LIKE.
		if pk := p.peekTok(); pk.Kind == TokKeyword &&
			(pk.Text == "IN" || pk.Text == "BETWEEN" || pk.Text == "LIKE") {
			p.advance()
			not = true
		}
	}
	switch {
	case p.tok.Kind == TokOp && isCompOp(p.tok.Text):
		op := p.tok.Text
		if op == "!=" {
			op = "<>"
		}
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: left, R: right}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokKeyword && p.tok.Text == "SELECT" {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InExpr{X: left, Subquery: sel, Not: not}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(TokOp, ",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, List: list, Not: not}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: left, Pattern: pat, Not: not}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Not: isNot}, nil
	}
	return left, nil
}

func isCompOp(op string) bool {
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "+" || p.tok.Text == "-" || p.tok.Text == "||") {
		op := p.tok.Text
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "*" || p.tok.Text == "/" || p.tok.Text == "%") {
		op := p.tok.Text
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokOp && p.tok.Text == "-" {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals.
		if lit, ok := x.(*Literal); ok {
			switch v := lit.Val.(type) {
			case int64:
				return &Literal{Val: -v}, nil
			case float64:
				return &Literal{Val: -v}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.tok.Kind == TokOp && p.tok.Text == "+" {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokInt:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			// Out-of-range integer literal: fall back to float.
			f, ferr := strconv.ParseFloat(p.tok.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad integer literal: %v", err)
			}
			p.advance()
			return &Literal{Val: f}, nil
		}
		p.advance()
		return &Literal{Val: v}, nil
	case TokFloat:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("bad float literal: %v", err)
		}
		p.advance()
		return &Literal{Val: f}, nil
	case TokString:
		s := p.tok.Text
		p.advance()
		return &Literal{Val: s}, nil
	case TokKeyword:
		switch p.tok.Text {
		case "NULL":
			p.advance()
			return &Literal{Val: nil}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: true}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: false}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "EXISTS":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Select: sel}, nil
		case "NOT":
			p.advance()
			if p.acceptKeyword("EXISTS") {
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &ExistsExpr{Select: sel, Not: true}, nil
			}
			x, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "NOT", X: x}, nil
		case "DATE":
			// DATE 'YYYY-MM-DD' literal: dates are ISO strings in the engine.
			p.advance()
			if p.tok.Kind != TokString {
				// "date" used as an identifier (column named date).
				return p.columnOrCall("date")
			}
			s := p.tok.Text
			p.advance()
			return &Literal{Val: s}, nil
		case "INTERVAL":
			p.advance()
			if p.tok.Kind != TokString && p.tok.Kind != TokInt {
				return nil, p.errf("expected interval quantity")
			}
			val := p.tok.Text
			p.advance()
			unit, err := p.identifier()
			if err != nil {
				return nil, err
			}
			return &IntervalExpr{Value: val, Unit: strings.ToLower(strings.TrimSuffix(unit, "s"))}, nil
		case "IF":
			// if(cond, a, b) function form.
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			args, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: "if", Args: args}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", p.tok.Text)
	case TokIdent, TokQuotedIdent:
		name := p.tok.Text
		p.advance()
		return p.columnOrCall(name)
	case TokOp:
		if p.tok.Text == "(" {
			p.advance()
			if p.tok.Kind == TokKeyword && p.tok.Text == "SELECT" {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if p.tok.Text == "*" {
			// Bare * only valid as count(*) argument; handled in columnOrCall.
			return nil, p.errf("unexpected *")
		}
	}
	return nil, p.errf("unexpected token in expression")
}

// columnOrCall handles an identifier already consumed: it may be a bare
// column, a qualified column (t.c), or a function call f(...).
func (p *Parser) columnOrCall(name string) (Expr, error) {
	if p.tok.Kind == TokOp && p.tok.Text == "." {
		p.advance()
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	if p.tok.Kind == TokOp && p.tok.Text == "(" {
		p.advance()
		fc := &FuncCall{Name: strings.ToLower(name)}
		if p.tok.Kind == TokOp && p.tok.Text == "*" {
			p.advance()
			fc.Star = true
		} else if !(p.tok.Kind == TokOp && p.tok.Text == ")") {
			if p.acceptKeyword("DISTINCT") {
				fc.Distinct = true
			}
			args, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			fc.Args = args
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if p.acceptKeyword("OVER") {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			spec := &WindowSpec{}
			if p.acceptKeyword("PARTITION") {
				if err := p.expectKeyword("BY"); err != nil {
					return nil, err
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					spec.PartitionBy = append(spec.PartitionBy, e)
					if p.accept(TokOp, ",") {
						continue
					}
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			fc.Over = spec
		}
		return fc, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *Parser) parseExprList() ([]Expr, error) {
	var args []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.accept(TokOp, ",") {
			continue
		}
		return args, nil
	}
}

func (p *Parser) parseCase() (Expr, error) {
	p.advance() // CASE
	ce := &CaseExpr{}
	if !(p.tok.Kind == TokKeyword && (p.tok.Text == "WHEN" || p.tok.Text == "END")) {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, When{Cond: cond, Then: then})
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	return ce, nil
}

func (p *Parser) parseCast() (Expr, error) {
	p.advance() // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{X: x, Type: typ}, nil
}
