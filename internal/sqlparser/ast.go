package sqlparser

// Statement is any top-level SQL statement.
type Statement interface{ stmtNode() }

// SelectStmt is a SELECT query block, possibly with set operations chained
// via Union.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil for FROM-less selects (e.g. SELECT 1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil if absent; must evaluate to a non-negative integer
	// Union, if non-nil, is a UNION [ALL] continuation of this block.
	Union    *SelectStmt
	UnionAll bool
}

// SelectItem is one projection in a select list.
type SelectItem struct {
	Star      bool   // SELECT *
	StarTable string // SELECT t.*  (table qualifier; empty for bare *)
	Expr      Expr   // nil when Star
	Alias     string // optional output name
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is a term in a FROM clause.
type TableExpr interface{ tableNode() }

// TableRef names a base table (or view) with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// DerivedTable is a parenthesized subquery in FROM; Alias is required by the
// engine but optional at parse time.
type DerivedTable struct {
	Select *SelectStmt
	Alias  string
}

// JoinType discriminates join flavors.
type JoinType int

// Join flavors.
const (
	InnerJoin JoinType = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
)

func (j JoinType) String() string {
	switch j {
	case InnerJoin:
		return "INNER JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	}
	return "JOIN"
}

// JoinExpr is a binary join between two table expressions.
type JoinExpr struct {
	Left, Right TableExpr
	Type        JoinType
	On          Expr     // nil for CROSS JOIN or USING
	Using       []string // non-empty for JOIN ... USING (c1, c2)
}

func (*TableRef) tableNode()     {}
func (*DerivedTable) tableNode() {}
func (*JoinExpr) tableNode()     {}

// Expr is any scalar (or aggregate) expression.
type Expr interface{ exprNode() }

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table string // may be empty
	Name  string
}

// Literal is a constant. Val is one of int64, float64, string, bool, or nil.
type Literal struct {
	Val any
}

// BinaryExpr applies a binary operator. Op is one of:
// + - * / % = <> < <= > >= AND OR ||
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies a unary operator: - or NOT.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is a scalar, aggregate, or window function application.
type FuncCall struct {
	Name     string // lower-cased
	Distinct bool   // e.g. count(distinct x)
	Star     bool   // count(*)
	Args     []Expr
	Over     *WindowSpec // non-nil for window functions
}

// WindowSpec is an OVER (...) clause. Only PARTITION BY is supported; that
// is all VerdictDB's rewrites require.
type WindowSpec struct {
	PartitionBy []Expr
}

// When is a single WHEN ... THEN ... arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is either a searched CASE (Operand nil) or a simple CASE.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr // nil if absent
}

// SubqueryExpr is a scalar subquery usable wherever an expression is.
type SubqueryExpr struct {
	Select *SelectStmt
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X        Expr
	List     []Expr
	Subquery *SelectStmt // nil if List used
	Not      bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// LikeExpr is x [NOT] LIKE pattern with % and _ wildcards.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// ExistsExpr is [NOT] EXISTS (subquery). Parsed so that the middleware can
// recognize and pass such queries through unchanged.
type ExistsExpr struct {
	Select *SelectStmt
	Not    bool
}

// CastExpr is CAST(x AS type). The engine treats types loosely; the target
// is kept for formatting fidelity.
type CastExpr struct {
	X    Expr
	Type string
}

// IntervalExpr is INTERVAL 'n' unit, used in date arithmetic. The engine
// folds date +/- interval on ISO-8601 date strings.
type IntervalExpr struct {
	Value string // the quoted quantity
	Unit  string // day | month | year (lower-cased)
}

func (*ColumnRef) exprNode()    {}
func (*Literal) exprNode()      {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*FuncCall) exprNode()     {}
func (*CaseExpr) exprNode()     {}
func (*SubqueryExpr) exprNode() {}
func (*InExpr) exprNode()       {}
func (*BetweenExpr) exprNode()  {}
func (*LikeExpr) exprNode()     {}
func (*IsNullExpr) exprNode()   {}
func (*ExistsExpr) exprNode()   {}
func (*CastExpr) exprNode()     {}
func (*IntervalExpr) exprNode() {}

func (*SelectStmt) stmtNode() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // upper-cased type keyword; informational
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols) or
// CREATE TABLE name AS SELECT ...
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	AsSelect    *SelectStmt
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...),(...) or
// INSERT INTO name [(cols)] SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

func (*CreateTableStmt) stmtNode() {}
func (*DropTableStmt) stmtNode()   {}
func (*InsertStmt) stmtNode()      {}

// SampleType enumerates VerdictDB sample flavors (Section 3.1).
type SampleType int

// Sample flavors.
const (
	UniformSample SampleType = iota
	HashedSample
	StratifiedSample
)

func (s SampleType) String() string {
	switch s {
	case UniformSample:
		return "uniform"
	case HashedSample:
		return "hashed"
	case StratifiedSample:
		return "stratified"
	}
	return "irregular"
}

// CreateSampleStmt is the VerdictDB extension statement
//
//	CREATE [UNIFORM|HASHED|STRATIFIED] SAMPLE OF tbl [ON (c1, ...)] [RATIO r]
//
// It is handled entirely by the middleware, never forwarded to the engine.
type CreateSampleStmt struct {
	Type    SampleType
	Table   string
	Columns []string
	Ratio   float64 // 0 means "use default"
}

// ShowSamplesStmt lists registered samples (middleware statement).
type ShowSamplesStmt struct{}

// BypassStmt forwards the wrapped statement verbatim to the engine.
type BypassStmt struct {
	Inner Statement
	SQL   string
}

// ExplainStmt asks the middleware to describe how it would execute the
// wrapped statement (sample plan, scores, rewritten SQL) without running it.
type ExplainStmt struct {
	Inner Statement
	SQL   string
}

func (*CreateSampleStmt) stmtNode() {}
func (*ShowSamplesStmt) stmtNode()  {}
func (*BypassStmt) stmtNode()       {}
func (*ExplainStmt) stmtNode()      {}
