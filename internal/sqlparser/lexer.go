package sqlparser

import (
	"fmt"
	"strings"
)

// Lexer turns a SQL string into a stream of tokens. It is case-insensitive
// for keywords and preserves the original case of identifiers.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, advancing the lexer.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case c == '\'':
		return l.lexString('\'')
	case c == '`':
		return l.lexQuotedIdent('`')
	case c == '"':
		return l.lexQuotedIdent('"')
	case isIdentStart(c):
		return l.lexWord()
	}
	// Operators and punctuation, longest match first.
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		return Token{Kind: TokOp, Text: two, Pos: start}
	}
	l.pos++
	switch c {
	case '+', '-', '*', '/', '%', '(', ')', ',', '=', '<', '>', '.', ';':
		return Token{Kind: TokOp, Text: string(c), Pos: start}
	case '?':
		return Token{Kind: TokParam, Text: "?", Pos: start}
	}
	return Token{Kind: TokIllegal, Text: string(c), Pos: start}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexNumber() Token {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			// Exponent must be followed by digits or a sign.
			if l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				seenExp = true
				l.pos++
				if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
					l.pos++
				}
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	kind := TokInt
	if seenDot || seenExp {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: text, Pos: start}
}

func (l *Lexer) lexString(quote byte) Token {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(next)
			default:
				sb.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{Kind: TokIllegal, Text: "unterminated string", Pos: start}
}

func (l *Lexer) lexQuotedIdent(quote byte) Token {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return Token{Kind: TokQuotedIdent, Text: sb.String(), Pos: start}
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{Kind: TokIllegal, Text: "unterminated quoted identifier", Pos: start}
}

func (l *Lexer) lexWord() Token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// Tokenize returns all tokens in src, excluding the trailing EOF. It is a
// convenience used by tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t := l.Next()
		if t.Kind == TokEOF {
			return out, nil
		}
		if t.Kind == TokIllegal {
			return nil, fmt.Errorf("sqlparser: illegal token %q at offset %d", t.Text, t.Pos)
		}
		out = append(out, t)
	}
}
