package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent SQL parser with one token of lookahead.
type Parser struct {
	lex  *Lexer
	tok  Token
	peek *Token
	src  string
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	p := &Parser{lex: NewLexer(sql), src: sql}
	p.advance()
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.Text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(sql string) (*SelectStmt, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlparser: expected SELECT statement, got %T", stmt)
	}
	return sel, nil
}

func (p *Parser) advance() {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return
	}
	p.tok = p.lex.Next()
}

func (p *Parser) peekTok() Token {
	if p.peek == nil {
		t := p.lex.Next()
		p.peek = &t
	}
	return *p.peek
}

func (p *Parser) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("sqlparser: %s (at offset %d near %q)", msg, p.tok.Pos, p.tok.Text)
}

// accept consumes the current token if it matches kind and (optionally) text.
func (p *Parser) accept(kind TokenKind, text string) bool {
	if p.tok.Kind != kind {
		return false
	}
	if text != "" && p.tok.Text != text {
		return false
	}
	p.advance()
	return true
}

func (p *Parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *Parser) expectOp(op string) error {
	if !p.accept(TokOp, op) {
		return p.errf("expected %q", op)
	}
	return nil
}

// identifier consumes an identifier (plain or quoted) or a non-reserved
// keyword usable as a name, returning its text.
func (p *Parser) identifier() (string, error) {
	switch p.tok.Kind {
	case TokIdent, TokQuotedIdent:
		name := p.tok.Text
		p.advance()
		return name, nil
	case TokKeyword:
		// Permit a few keywords as identifiers where unambiguous.
		switch p.tok.Text {
		case "DATE", "STRING", "INT", "DOUBLE", "SAMPLES", "SAMPLE", "IF":
			name := strings.ToLower(p.tok.Text)
			p.advance()
			return name, nil
		}
	}
	return "", p.errf("expected identifier")
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.tok.Kind == TokKeyword && p.tok.Text == "SELECT":
		return p.parseSelect()
	case p.tok.Kind == TokOp && p.tok.Text == "(":
		// Parenthesized select at top level.
		return p.parseSelect()
	case p.tok.Kind == TokKeyword && p.tok.Text == "CREATE":
		return p.parseCreate()
	case p.tok.Kind == TokKeyword && p.tok.Text == "DROP":
		return p.parseDrop()
	case p.tok.Kind == TokKeyword && p.tok.Text == "INSERT":
		return p.parseInsert()
	case p.tok.Kind == TokKeyword && p.tok.Text == "SHOW":
		p.advance()
		if err := p.expectKeyword("SAMPLES"); err != nil {
			return nil, err
		}
		return &ShowSamplesStmt{}, nil
	case p.tok.Kind == TokKeyword && p.tok.Text == "EXPLAIN":
		start := p.tok.Pos
		p.advance()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		rest := strings.TrimSpace(p.src[start+len("EXPLAIN"):])
		return &ExplainStmt{Inner: inner, SQL: strings.TrimSuffix(rest, ";")}, nil
	case p.tok.Kind == TokKeyword && p.tok.Text == "BYPASS":
		start := p.tok.Pos
		p.advance()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		rest := strings.TrimSpace(p.src[start+len("BYPASS"):])
		return &BypassStmt{Inner: inner, SQL: strings.TrimSuffix(rest, ";")}, nil
	}
	return nil, p.errf("unsupported statement")
}

func (p *Parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	// CREATE [UNIFORM|HASHED|STRATIFIED] SAMPLE ...
	if p.tok.Kind == TokKeyword {
		switch p.tok.Text {
		case "UNIFORM", "HASHED", "STRATIFIED", "SAMPLE":
			return p.parseCreateSample()
		}
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{}
	if p.tok.Kind == TokKeyword && p.tok.Text == "IF" {
		p.advance()
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokKeyword || p.tok.Text != "EXISTS" {
			return nil, p.errf("expected EXISTS")
		}
		p.advance()
		stmt.IfNotExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.AsSelect = sel
		return stmt, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, ColumnDef{Name: col, Type: typ})
		if p.accept(TokOp, ",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseTypeName() (string, error) {
	if p.tok.Kind != TokKeyword && p.tok.Kind != TokIdent {
		return "", p.errf("expected type name")
	}
	typ := strings.ToUpper(p.tok.Text)
	p.advance()
	// Optional (precision[, scale]) suffix, e.g. DECIMAL(12,2), VARCHAR(25).
	if p.accept(TokOp, "(") {
		for p.tok.Kind == TokInt || (p.tok.Kind == TokOp && p.tok.Text == ",") {
			p.advance()
		}
		if err := p.expectOp(")"); err != nil {
			return "", err
		}
	}
	return typ, nil
}

func (p *Parser) parseCreateSample() (Statement, error) {
	stmt := &CreateSampleStmt{Type: UniformSample}
	switch p.tok.Text {
	case "UNIFORM":
		stmt.Type = UniformSample
		p.advance()
	case "HASHED":
		stmt.Type = HashedSample
		p.advance()
	case "STRATIFIED":
		stmt.Type = StratifiedSample
		p.advance()
	}
	if err := p.expectKeyword("SAMPLE"); err != nil {
		return nil, err
	}
	// OF is not a keyword; accept identifier "of".
	if p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, "of") {
		p.advance()
	} else if !p.acceptKeyword("FROM") {
		return nil, p.errf("expected OF <table>")
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.acceptKeyword("ON") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.accept(TokOp, ",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, "ratio") {
		p.advance()
		if p.tok.Kind != TokFloat && p.tok.Kind != TokInt {
			return nil, p.errf("expected ratio value")
		}
		r, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("bad ratio: %v", err)
		}
		stmt.Ratio = r
		p.advance()
	}
	return stmt, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if p.tok.Kind == TokKeyword && p.tok.Text == "IF" {
		p.advance()
		if p.tok.Kind != TokKeyword || p.tok.Text != "EXISTS" {
			return nil, p.errf("expected EXISTS")
		}
		p.advance()
		stmt.IfExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.accept(TokOp, "(") {
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.accept(TokOp, ",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(TokOp, ",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.Rows = append(stmt.Rows, row)
			if p.accept(TokOp, ",") {
				continue
			}
			break
		}
		return stmt, nil
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Select = sel
	return stmt, nil
}

// qualifiedName parses ident(.ident)* and joins with dots.
func (p *Parser) qualifiedName() (string, error) {
	name, err := p.identifier()
	if err != nil {
		return "", err
	}
	for p.tok.Kind == TokOp && p.tok.Text == "." {
		p.advance()
		part, err := p.identifier()
		if err != nil {
			return "", err
		}
		name += "." + part
	}
	return name, nil
}

// parseSelect parses a (possibly parenthesized) SELECT with optional UNION
// continuations.
func (p *Parser) parseSelect() (*SelectStmt, error) {
	if p.accept(TokOp, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return p.parseUnionTail(sel)
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(TokOp, ",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(TokOp, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(TokOp, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	return p.parseUnionTail(sel)
}

func (p *Parser) parseUnionTail(sel *SelectStmt) (*SelectStmt, error) {
	if !p.acceptKeyword("UNION") {
		return sel, nil
	}
	all := p.acceptKeyword("ALL")
	next, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	sel.Union = next
	sel.UnionAll = all
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.tok.Kind == TokOp && p.tok.Text == "*" {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*' — needs two tokens of lookahead, so snapshot
	// the full parser position and rewind if the third token is not '*'.
	if p.tok.Kind == TokIdent || p.tok.Kind == TokQuotedIdent {
		if pk := p.peekTok(); pk.Kind == TokOp && pk.Text == "." {
			saveLex := *p.lex
			saveTok := p.tok
			savePeek := p.peek
			tbl := p.tok.Text
			p.advance() // ident
			p.advance() // '.'
			if p.tok.Kind == TokOp && p.tok.Text == "*" {
				p.advance()
				return SelectItem{Star: true, StarTable: tbl}, nil
			}
			restored := saveLex
			p.lex = &restored
			p.tok = saveTok
			p.peek = savePeek
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.identifier()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.tok.Kind == TokIdent || p.tok.Kind == TokQuotedIdent {
		item.Alias = p.tok.Text
		p.advance()
	}
	return item, nil
}

func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.tok.Kind == TokOp && p.tok.Text == ",":
			p.advance()
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Left: left, Right: right, Type: CrossJoin}
			continue
		case p.tok.Kind == TokKeyword && p.tok.Text == "JOIN":
			jt = InnerJoin
			p.advance()
		case p.tok.Kind == TokKeyword && p.tok.Text == "INNER":
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.tok.Kind == TokKeyword && (p.tok.Text == "LEFT" || p.tok.Text == "RIGHT" || p.tok.Text == "FULL"):
			kw := p.tok.Text
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			switch kw {
			case "LEFT":
				jt = LeftJoin
			case "RIGHT":
				jt = RightJoin
			default:
				jt = FullJoin
			}
		case p.tok.Kind == TokKeyword && p.tok.Text == "CROSS":
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = CrossJoin
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Left: left, Right: right, Type: jt}
		if jt != CrossJoin {
			if p.acceptKeyword("ON") {
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = on
			} else if p.acceptKeyword("USING") {
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				for {
					col, err := p.identifier()
					if err != nil {
						return nil, err
					}
					join.Using = append(join.Using, col)
					if p.accept(TokOp, ",") {
						continue
					}
					break
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			} else {
				return nil, p.errf("expected ON or USING after JOIN")
			}
		}
		left = join
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.accept(TokOp, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		dt := &DerivedTable{Select: sel}
		p.acceptKeyword("AS")
		if p.tok.Kind == TokIdent || p.tok.Kind == TokQuotedIdent {
			dt.Alias = p.tok.Text
			p.advance()
		}
		return dt, nil
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.identifier()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.tok.Kind == TokIdent || p.tok.Kind == TokQuotedIdent {
		ref.Alias = p.tok.Text
		p.advance()
	}
	return ref, nil
}
