// Package sqlparser implements a lexer, an abstract syntax tree, and a
// recursive-descent parser for the analytic SQL subset used by VerdictDB:
// SELECT with projections, equi- and theta-joins, derived tables, WHERE,
// GROUP BY, HAVING, ORDER BY, LIMIT, window functions, CASE expressions,
// scalar subqueries, plus CREATE TABLE [AS SELECT], INSERT, and DROP TABLE.
//
// The parser is dialect-neutral; dialect rendering differences are handled
// by the formatter (see format.go) together with internal/drivers.
package sqlparser

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokQuotedIdent // `ident` or "ident"
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokOp    // operators and punctuation
	TokParam // ? placeholder (parsed, not executed)
	TokIllegal
)

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // raw text; for keywords, upper-cased
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords is the set of reserved words recognized by the lexer. Words not
// in this set lex as identifiers.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "USING": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"NULL": true, "TRUE": true, "FALSE": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "IS": true, "EXISTS": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "IF": true,
	"OVER": true, "PARTITION": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true,
	"INT": true, "BIGINT": true, "DOUBLE": true, "FLOAT": true,
	"VARCHAR": true, "STRING": true, "BOOLEAN": true, "DATE": true,
	"DECIMAL": true, "CHAR": true, "TEXT": true,
	"CAST": true, "INTERVAL": true,
	// VerdictDB extension statements (handled by the middleware, not engines).
	"SAMPLE": true, "UNIFORM": true, "HASHED": true, "STRATIFIED": true,
	"SHOW": true, "SAMPLES": true, "BYPASS": true, "EXPLAIN": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[word] }
