package workload

// Query is one benchmark query with its paper identifier.
type Query struct {
	ID  string
	SQL string
	// DeclinedInPaper marks queries the paper reports as not sped up
	// (AQP infeasible or unsupported): tq-3, tq-10, tq-15, tq-20.
	DeclinedInPaper bool
}

// TPCHQueries are the 18 TPC-H-derived queries of Section 6.1 (tq-2 has no
// aggregates; tq-4, tq-21, tq-22 use EXISTS and are excluded, matching the
// paper). The SQL is adapted to the engine's dialect: date literals inline,
// EXTRACT via substr, correlated comparison subqueries kept (VerdictDB
// flattens them), EXISTS-style queries kept only where the paper ran them.
var TPCHQueries = []Query{
	{ID: "tq-1", SQL: `
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`},

	{ID: "tq-3", DeclinedInPaper: true, SQL: `
select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from customer c
inner join orders o on c.c_custkey = o.o_custkey
inner join lineitem l on l.l_orderkey = o.o_orderkey
where c_mktsegment = 'BUILDING'
  and o_orderdate < '1995-03-15' and l_shipdate > '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate limit 10`},

	{ID: "tq-5", SQL: `
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer c
inner join orders o on c.c_custkey = o.o_custkey
inner join lineitem l on l.l_orderkey = o.o_orderkey
inner join supplier s on l.l_suppkey = s.s_suppkey
inner join nation n on s.s_nationkey = n.n_nationkey
inner join region r on n.n_regionkey = r.r_regionkey
where r_name = 'ASIA' and o_orderdate >= '1994-01-01' and o_orderdate < '1995-01-01'
group by n_name
order by revenue desc`},

	{ID: "tq-6", SQL: `
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
  and l_discount between 0.05 and 0.07 and l_quantity < 24`},

	{ID: "tq-7", SQL: `
select n1.n_name as supp_nation, n2.n_name as cust_nation,
       substr(l_shipdate, 1, 4) as l_year,
       sum(l_extendedprice * (1 - l_discount)) as revenue
from supplier s
inner join lineitem l on s.s_suppkey = l.l_suppkey
inner join orders o on o.o_orderkey = l.l_orderkey
inner join customer c on c.c_custkey = o.o_custkey
inner join nation n1 on s.s_nationkey = n1.n_nationkey
inner join nation n2 on c.c_nationkey = n2.n_nationkey
where ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
    or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
  and l_shipdate between '1995-01-01' and '1996-12-31'
group by n1.n_name, n2.n_name, substr(l_shipdate, 1, 4)
order by supp_nation, cust_nation, l_year`},

	{ID: "tq-8", SQL: `
select o_year,
       sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share
from (select substr(o.o_orderdate, 1, 4) as o_year,
             l.l_extendedprice * (1 - l.l_discount) as volume,
             n2.n_name as nation
      from part p
      inner join lineitem l on p.p_partkey = l.l_partkey
      inner join supplier s on s.s_suppkey = l.l_suppkey
      inner join orders o on o.o_orderkey = l.l_orderkey
      inner join customer c on c.c_custkey = o.o_custkey
      inner join nation n1 on c.c_nationkey = n1.n_nationkey
      inner join region r on n1.n_regionkey = r.r_regionkey
      inner join nation n2 on s.s_nationkey = n2.n_nationkey
      where r.r_name = 'AMERICA' and o.o_orderdate between '1995-01-01' and '1996-12-31'
        and p.p_type = 'ECONOMY ANODIZED STEEL') as all_nations
group by o_year
order by o_year`},

	{ID: "tq-9", SQL: `
select nation, o_year, sum(amount) as sum_profit
from (select n.n_name as nation,
             substr(o.o_orderdate, 1, 4) as o_year,
             l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity as amount
      from part p
      inner join lineitem l on p.p_partkey = l.l_partkey
      inner join supplier s on s.s_suppkey = l.l_suppkey
      inner join partsupp ps on ps.ps_partkey = l.l_partkey and ps.ps_suppkey = l.l_suppkey
      inner join orders o on o.o_orderkey = l.l_orderkey
      inner join nation n on s.s_nationkey = n.n_nationkey
      where p.p_name like '%STEEL%') as profit
group by nation, o_year
order by nation, o_year desc`},

	{ID: "tq-10", DeclinedInPaper: true, SQL: `
select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer c
inner join orders o on c.c_custkey = o.o_custkey
inner join lineitem l on l.l_orderkey = o.o_orderkey
where o_orderdate >= '1993-10-01' and o_orderdate < '1994-01-01'
  and l_returnflag = 'R'
group by c_custkey, c_name
order by revenue desc limit 20`},

	{ID: "tq-11", SQL: `
select ps_partkey, sum(ps_supplycost * ps_availqty) as value
from partsupp ps
inner join supplier s on ps.ps_suppkey = s.s_suppkey
inner join nation n on s.s_nationkey = n.n_nationkey
where n_name = 'GERMANY'
group by ps_partkey
order by value desc limit 50`},

	{ID: "tq-12", SQL: `
select l_shipmode,
       sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH'
                then 1 else 0 end) as high_line_count,
       sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH'
                then 1 else 0 end) as low_line_count
from orders o
inner join lineitem l on o.o_orderkey = l.l_orderkey
where l_shipmode in ('MAIL', 'SHIP')
  and l_receiptdate >= '1994-01-01' and l_receiptdate < '1995-01-01'
group by l_shipmode
order by l_shipmode`},

	{ID: "tq-13", SQL: `
select c_count, count(*) as custdist
from (select c.c_custkey as c_custkey, count(o.o_orderkey) as c_count
      from customer c
      left join orders o on c.c_custkey = o.o_custkey and o.o_orderpriority <> '1-URGENT'
      group by c.c_custkey) as c_orders
group by c_count
order by custdist desc, c_count desc`},

	{ID: "tq-14", SQL: `
select 100.00 * sum(case when p_type like 'PROMO%'
                         then l_extendedprice * (1 - l_discount) else 0 end)
       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from lineitem l
inner join part p on l.l_partkey = p.p_partkey
where l_shipdate >= '1995-09-01' and l_shipdate < '1995-10-01'`},

	{ID: "tq-15", DeclinedInPaper: true, SQL: `
select s_suppkey, s_name, total_revenue
from supplier s
inner join (select l_suppkey as supplier_no,
                   sum(l_extendedprice * (1 - l_discount)) as total_revenue
            from lineitem
            where l_shipdate >= '1996-01-01' and l_shipdate < '1996-04-01'
            group by l_suppkey) as revenue on s.s_suppkey = revenue.supplier_no
where total_revenue > (select max(total_revenue) * 0.95
                       from (select sum(l_extendedprice * (1 - l_discount)) as total_revenue
                             from lineitem
                             where l_shipdate >= '1996-01-01' and l_shipdate < '1996-04-01'
                             group by l_suppkey) as rev2)
order by s_suppkey`},

	{ID: "tq-16", SQL: `
select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
from partsupp ps
inner join part p on p.p_partkey = ps.ps_partkey
where p_brand <> 'Brand#45' and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
group by p_brand, p_type, p_size
order by supplier_cnt desc, p_brand limit 50`},

	{ID: "tq-17", SQL: `
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem l
inner join part p on p.p_partkey = l.l_partkey
where p_brand = 'Brand#23' and p_container = 'MED BOX'
  and l_quantity < (select 0.2 * avg(l2.l_quantity)
                    from lineitem l2
                    where l2.l_partkey = p.p_partkey)`},

	{ID: "tq-18", SQL: `
select o_orderpriority, sum(l_quantity) as total_qty, count(*) as cnt
from orders o
inner join lineitem l on o.o_orderkey = l.l_orderkey
where o_totalprice > 300000
group by o_orderpriority
order by o_orderpriority`},

	{ID: "tq-19", SQL: `
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem l
inner join part p on p.p_partkey = l.l_partkey
where (p_brand = 'Brand#12' and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
       and l_quantity >= 1 and l_quantity <= 11 and p_size between 1 and 5
       and l_shipmode in ('AIR', 'REG AIR') and l_shipinstruct = 'DELIVER IN PERSON')
   or (p_brand = 'Brand#23' and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
       and l_quantity >= 10 and l_quantity <= 20 and p_size between 1 and 10
       and l_shipmode in ('AIR', 'REG AIR') and l_shipinstruct = 'DELIVER IN PERSON')
   or (p_brand = 'Brand#34' and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
       and l_quantity >= 20 and l_quantity <= 30 and p_size between 1 and 15
       and l_shipmode in ('AIR', 'REG AIR') and l_shipinstruct = 'DELIVER IN PERSON')`},

	{ID: "tq-20", DeclinedInPaper: true, SQL: `
select s_name, count(*) as cnt
from supplier s
inner join nation n on s.s_nationkey = n.n_nationkey
where n_name = 'CANADA'
  and s_suppkey in (select ps_suppkey from partsupp
                    where ps_partkey in (select p_partkey from part where p_name like 'forest%'))
group by s_name
order by s_name limit 20`},
}

// InstaQueries are the 15 micro-benchmark queries of Section 6.1: common
// aggregate functions over up to four joined tables with low-cardinality
// grouping attributes.
var InstaQueries = []Query{
	{ID: "iq-1", SQL: `select count(*) as c from order_products`},
	{ID: "iq-2", SQL: `select order_dow, count(*) as c from orders group by order_dow order by order_dow`},
	{ID: "iq-3", SQL: `select order_hour, count(*) as c from orders group by order_hour order by order_hour`},
	{ID: "iq-4", SQL: `select avg(days_since_prior) as avg_gap from orders`},
	{ID: "iq-5", SQL: `select sum(price) as revenue from order_products`},
	{ID: "iq-6", SQL: `select reordered, avg(price) as avg_price, count(*) as c
from order_products group by reordered order by reordered`},
	{ID: "iq-7", SQL: `select o.order_dow, sum(op.price) as revenue
from orders o inner join order_products op on o.order_id = op.order_id
group by o.order_dow order by o.order_dow`},
	{ID: "iq-8", SQL: `select p.department_id, count(*) as c
from order_products op inner join products p on op.product_id = p.product_id
group by p.department_id order by c desc limit 10`},
	{ID: "iq-9", SQL: `select d.department, sum(op.price) as revenue
from order_products op
inner join products p on op.product_id = p.product_id
inner join departments d on p.department_id = d.department_id
group by d.department order by revenue desc limit 10`},
	{ID: "iq-10", SQL: `select o.order_hour, avg(op.price) as avg_price
from orders o inner join order_products op on o.order_id = op.order_id
group by o.order_hour order by o.order_hour`},
	{ID: "iq-11", SQL: `select count(distinct user_id) as users from orders`},
	{ID: "iq-12", SQL: `select percentile(price, 0.5) as median_price from order_products`},
	{ID: "iq-13", SQL: `select stddev(price) as sd, var(price) as v, avg(price) as m from order_products`},
	{ID: "iq-14", SQL: `select o.order_dow, d.department, count(*) as c
from orders o
inner join order_products op on o.order_id = op.order_id
inner join products p on op.product_id = p.product_id
inner join departments d on p.department_id = d.department_id
where o.order_hour between 8 and 18
group by o.order_dow, d.department
order by c desc limit 20`},
	{ID: "iq-15", SQL: `select avg(basket) as avg_basket from
(select op.order_id as order_id, sum(op.price) as basket
 from order_products op group by op.order_id) as baskets`},
}

// AllQueries returns the full 33-query benchmark set.
func AllQueries() []Query {
	out := make([]Query, 0, len(TPCHQueries)+len(InstaQueries))
	out = append(out, TPCHQueries...)
	out = append(out, InstaQueries...)
	return out
}
