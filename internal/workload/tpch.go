// Package workload generates the three datasets of Section 6.1 — a TPC-H-
// like warehouse, an Instacart-like (insta) sales database, and the
// controlled synthetic dataset of Section 6.5 — plus the 33 benchmark
// queries (18 TPC-H-derived tq-* and 15 micro-benchmark iq-*).
//
// Generators are deterministic given a seed; row counts scale linearly with
// the scale factor so experiments can sweep data size (Figure 5).
package workload

import (
	"fmt"
	"math/rand"

	"verdictdb/internal/engine"
)

// TPCHScale describes generated row counts at scale 1.0 (proportions match
// TPC-H's SF ratios, scaled down to in-memory sizes).
const (
	tpchLineitemBase = 600_000
	tpchOrdersBase   = 150_000
	tpchCustomerBase = 15_000
	tpchPartBase     = 20_000
	tpchSupplierBase = 1_000
	tpchPartsuppBase = 80_000
)

var tpchNations = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationRegion maps nation index -> region index (fixed like TPC-H).
var nationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

var (
	returnFlags   = []string{"R", "A", "N"}
	lineStatuses  = []string{"O", "F"}
	shipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	partTypes     = []string{"ECONOMY ANODIZED STEEL", "STANDARD POLISHED BRASS", "PROMO BURNISHED COPPER",
		"SMALL PLATED TIN", "MEDIUM BRUSHED NICKEL", "LARGE POLISHED STEEL", "ECONOMY BRUSHED COPPER",
		"PROMO PLATED BRASS", "STANDARD ANODIZED TIN", "SMALL BURNISHED NICKEL"}
	partBrands     = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41", "Brand#42", "Brand#43", "Brand#44", "Brand#45", "Brand#51", "Brand#52", "Brand#53", "Brand#54", "Brand#55"}
	partContainers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG", "JUMBO PKG"}
)

func dateStr(year, dayOfYear int) string {
	month := dayOfYear/31 + 1
	if month > 12 {
		month = 12
	}
	day := dayOfYear%28 + 1
	return fmt.Sprintf("%04d-%02d-%02d", year, month, day)
}

// LoadTPCH creates and populates the TPC-H-like schema at the given scale.
func LoadTPCH(e *engine.Engine, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))

	// Fact tables scale linearly; dimension tables have floors so small
	// scales keep realistic domain cardinalities (a 0.05-scale run should
	// not collapse to a handful of suppliers — hashed samples and
	// count-distinct would degenerate).
	nLine := int(float64(tpchLineitemBase) * scale)
	nOrders := int(float64(tpchOrdersBase) * scale)
	nCust := maxInt(2000, int(float64(tpchCustomerBase)*scale))
	nPart := maxInt(2000, int(float64(tpchPartBase)*scale))
	nSupp := maxInt(1000, int(float64(tpchSupplierBase)*scale))
	nPS := maxInt(4*nPart, int(float64(tpchPartsuppBase)*scale))
	if nOrders < 10 || nLine < 20 {
		return fmt.Errorf("workload: scale %v too small", scale)
	}

	mk := func(name string, cols ...engine.Column) error {
		return e.CreateTable(name, cols)
	}
	col := func(n string, t engine.ColType) engine.Column { return engine.Column{Name: n, Type: t} }

	if err := mk("region", col("r_regionkey", engine.TInt), col("r_name", engine.TString)); err != nil {
		return err
	}
	if err := mk("nation", col("n_nationkey", engine.TInt), col("n_name", engine.TString), col("n_regionkey", engine.TInt)); err != nil {
		return err
	}
	if err := mk("supplier",
		col("s_suppkey", engine.TInt), col("s_name", engine.TString),
		col("s_nationkey", engine.TInt), col("s_acctbal", engine.TFloat)); err != nil {
		return err
	}
	if err := mk("customer",
		col("c_custkey", engine.TInt), col("c_name", engine.TString),
		col("c_nationkey", engine.TInt), col("c_acctbal", engine.TFloat),
		col("c_mktsegment", engine.TString), col("c_phone", engine.TString)); err != nil {
		return err
	}
	if err := mk("part",
		col("p_partkey", engine.TInt), col("p_name", engine.TString),
		col("p_mfgr", engine.TString), col("p_brand", engine.TString),
		col("p_type", engine.TString), col("p_size", engine.TInt),
		col("p_container", engine.TString), col("p_retailprice", engine.TFloat)); err != nil {
		return err
	}
	if err := mk("partsupp",
		col("ps_partkey", engine.TInt), col("ps_suppkey", engine.TInt),
		col("ps_availqty", engine.TInt), col("ps_supplycost", engine.TFloat)); err != nil {
		return err
	}
	if err := mk("orders",
		col("o_orderkey", engine.TInt), col("o_custkey", engine.TInt),
		col("o_orderstatus", engine.TString), col("o_totalprice", engine.TFloat),
		col("o_orderdate", engine.TString), col("o_orderpriority", engine.TString),
		col("o_shippriority", engine.TInt)); err != nil {
		return err
	}
	if err := mk("lineitem",
		col("l_orderkey", engine.TInt), col("l_partkey", engine.TInt),
		col("l_suppkey", engine.TInt), col("l_linenumber", engine.TInt),
		col("l_quantity", engine.TFloat), col("l_extendedprice", engine.TFloat),
		col("l_discount", engine.TFloat), col("l_tax", engine.TFloat),
		col("l_returnflag", engine.TString), col("l_linestatus", engine.TString),
		col("l_shipdate", engine.TString), col("l_commitdate", engine.TString),
		col("l_receiptdate", engine.TString), col("l_shipinstruct", engine.TString),
		col("l_shipmode", engine.TString)); err != nil {
		return err
	}

	// region / nation
	var rows [][]engine.Value
	for i, r := range tpchRegions {
		rows = append(rows, []engine.Value{int64(i), r})
	}
	if err := e.InsertRows("region", rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i, n := range tpchNations {
		rows = append(rows, []engine.Value{int64(i), n, int64(nationRegion[i])})
	}
	if err := e.InsertRows("nation", rows); err != nil {
		return err
	}

	// supplier
	rows = make([][]engine.Value, 0, nSupp)
	for i := 1; i <= nSupp; i++ {
		rows = append(rows, []engine.Value{
			int64(i), fmt.Sprintf("Supplier#%09d", i),
			int64(rng.Intn(len(tpchNations))),
			rng.Float64()*20000 - 1000,
		})
	}
	if err := e.InsertRows("supplier", rows); err != nil {
		return err
	}

	// customer
	rows = make([][]engine.Value, 0, nCust)
	for i := 1; i <= nCust; i++ {
		nk := rng.Intn(len(tpchNations))
		rows = append(rows, []engine.Value{
			int64(i), fmt.Sprintf("Customer#%09d", i),
			int64(nk), rng.Float64()*11000 - 1000,
			segments[rng.Intn(len(segments))],
			fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nk, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000)),
		})
	}
	if err := e.InsertRows("customer", rows); err != nil {
		return err
	}

	// part
	rows = make([][]engine.Value, 0, nPart)
	for i := 1; i <= nPart; i++ {
		rows = append(rows, []engine.Value{
			int64(i), fmt.Sprintf("part %d %s", i, partTypes[rng.Intn(len(partTypes))]),
			fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5)),
			partBrands[rng.Intn(len(partBrands))],
			partTypes[rng.Intn(len(partTypes))],
			int64(1 + rng.Intn(50)),
			partContainers[rng.Intn(len(partContainers))],
			900 + rng.Float64()*1100,
		})
	}
	if err := e.InsertRows("part", rows); err != nil {
		return err
	}

	// partsupp: like TPC-H, each part is supplied by a fixed set of
	// suppliers; lineitem draws its (partkey, suppkey) pairs from here so
	// the tq-9 join is total.
	suppPerPart := nPS / nPart
	if suppPerPart < 1 {
		suppPerPart = 1
	}
	type pair struct{ part, supp int64 }
	pairs := make([]pair, 0, nPart*suppPerPart)
	rows = make([][]engine.Value, 0, nPart*suppPerPart)
	for p := 1; p <= nPart; p++ {
		for s := 0; s < suppPerPart; s++ {
			sk := int64((p*7+s*13)%nSupp + 1)
			pairs = append(pairs, pair{part: int64(p), supp: sk})
			rows = append(rows, []engine.Value{
				int64(p), sk,
				int64(1 + rng.Intn(9999)), rng.Float64() * 1000,
			})
		}
	}
	if err := e.InsertRows("partsupp", rows); err != nil {
		return err
	}

	// orders
	rows = make([][]engine.Value, 0, nOrders)
	for i := 1; i <= nOrders; i++ {
		year := 1992 + rng.Intn(7)
		rows = append(rows, []engine.Value{
			int64(i), int64(1 + rng.Intn(nCust)),
			[]string{"O", "F", "P"}[rng.Intn(3)],
			1000 + rng.Float64()*450000,
			dateStr(year, rng.Intn(365)),
			priorities[rng.Intn(len(priorities))],
			int64(0),
		})
	}
	if err := e.InsertRows("orders", rows); err != nil {
		return err
	}

	// lineitem
	rows = make([][]engine.Value, 0, nLine)
	for i := 0; i < nLine; i++ {
		orderkey := int64(1 + rng.Intn(nOrders))
		qty := float64(1 + rng.Intn(50))
		price := qty * (900 + rng.Float64()*1100)
		year := 1992 + rng.Intn(7)
		ship := dateStr(year, rng.Intn(365))
		ps := pairs[rng.Intn(len(pairs))]
		rows = append(rows, []engine.Value{
			orderkey, ps.part, ps.supp,
			int64(1 + i%7), qty, price,
			float64(rng.Intn(11)) / 100.0, // discount 0.00-0.10
			float64(rng.Intn(9)) / 100.0,  // tax
			returnFlags[rng.Intn(len(returnFlags))],
			lineStatuses[rng.Intn(len(lineStatuses))],
			ship,
			dateStr(year, rng.Intn(365)),
			dateStr(year, rng.Intn(365)),
			shipInstructs[rng.Intn(len(shipInstructs))],
			shipModes[rng.Intn(len(shipModes))],
		})
	}
	return e.InsertRows("lineitem", rows)
}

// TPCHFactTables lists the tables VerdictDB samples for the tq workload.
var TPCHFactTables = []string{"lineitem", "orders", "partsupp"}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
