package workload

import (
	"strings"
	"testing"

	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

func TestLoadTPCHShapes(t *testing.T) {
	e := engine.NewSeeded(1)
	if err := LoadTPCH(e, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if n := e.RowCount("lineitem"); n != 30_000 {
		t.Errorf("lineitem rows %d", n)
	}
	if n := e.RowCount("orders"); n != 7_500 {
		t.Errorf("orders rows %d", n)
	}
	// Dimension floors hold at small scale.
	if n := e.RowCount("supplier"); n < 1000 {
		t.Errorf("supplier rows %d below floor", n)
	}
	if n := e.RowCount("nation"); n != 25 {
		t.Errorf("nation rows %d", n)
	}
	if n := e.RowCount("region"); n != 5 {
		t.Errorf("region rows %d", n)
	}
}

func TestTPCHLineitemJoinsTotal(t *testing.T) {
	e := engine.NewSeeded(2)
	if err := LoadTPCH(e, 0.02, 2); err != nil {
		t.Fatal(err)
	}
	// Every lineitem row must join orders and partsupp (TPC-H invariant).
	rs, err := e.Query(`select count(*) from lineitem l
		inner join orders o on l.l_orderkey = o.o_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := engine.ToInt(rs.Rows[0][0]); got != int64(e.RowCount("lineitem")) {
		t.Errorf("lineitem-orders join lost rows: %d of %d", got, e.RowCount("lineitem"))
	}
	rs2, err := e.Query(`select count(*) from lineitem l
		inner join partsupp ps on ps.ps_partkey = l.l_partkey and ps.ps_suppkey = l.l_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := engine.ToInt(rs2.Rows[0][0]); got < int64(e.RowCount("lineitem")) {
		t.Errorf("lineitem-partsupp join lost rows: %d of %d", got, e.RowCount("lineitem"))
	}
}

func TestTPCHDeterministic(t *testing.T) {
	a := engine.NewSeeded(3)
	b := engine.NewSeeded(3)
	if err := LoadTPCH(a, 0.02, 9); err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(b, 0.02, 9); err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Query("select sum(l_extendedprice) from lineitem")
	qb, _ := b.Query("select sum(l_extendedprice) from lineitem")
	if engine.ToStr(qa.Rows[0][0]) != engine.ToStr(qb.Rows[0][0]) {
		t.Fatal("same seed, different data")
	}
}

func TestLoadInstaShapes(t *testing.T) {
	e := engine.NewSeeded(1)
	if err := LoadInsta(e, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if n := e.RowCount("order_products"); n != 50_000 {
		t.Errorf("order_products rows %d", n)
	}
	if n := e.RowCount("orders"); n != 5_000 {
		t.Errorf("orders rows %d", n)
	}
	// Every order_products row joins a product and an order.
	rs, err := e.Query(`select count(*) from order_products op
		inner join products p on op.product_id = p.product_id`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := engine.ToInt(rs.Rows[0][0]); got != 50_000 {
		t.Errorf("op-products join: %d", got)
	}
	// dow domain is 0..6.
	rs2, _ := e.Query("select min(order_dow), max(order_dow) from orders")
	lo, _ := engine.ToInt(rs2.Rows[0][0])
	hi, _ := engine.ToInt(rs2.Rows[0][1])
	if lo != 0 || hi != 6 {
		t.Errorf("dow range [%d,%d]", lo, hi)
	}
}

func TestLoadSyntheticMoments(t *testing.T) {
	e := engine.NewSeeded(1)
	if err := LoadSynthetic(e, 50_000, 5); err != nil {
		t.Fatal(err)
	}
	rs, err := e.Query("select avg(x), stddev(x), min(u), max(u) from syn")
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := engine.ToFloat(rs.Rows[0][0])
	sd, _ := engine.ToFloat(rs.Rows[0][1])
	if mean < 9.5 || mean > 10.5 {
		t.Errorf("mean %v", mean)
	}
	if sd < 9.5 || sd > 10.5 {
		t.Errorf("sd %v", sd)
	}
	umin, _ := engine.ToFloat(rs.Rows[0][2])
	umax, _ := engine.ToFloat(rs.Rows[0][3])
	if umin < 0 || umax >= 1 {
		t.Errorf("u range [%v,%v]", umin, umax)
	}
}

func TestAllQueriesParse(t *testing.T) {
	for _, q := range AllQueries() {
		if _, err := sqlparser.Parse(q.SQL); err != nil {
			t.Errorf("%s does not parse: %v", q.ID, err)
		}
	}
	if len(AllQueries()) != 33 {
		t.Errorf("query count %d, want 33 (18 tq + 15 iq)", len(AllQueries()))
	}
}

func TestAllQueriesExecuteExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := engine.NewSeeded(4)
	if err := LoadTPCH(e, 0.02, 4); err != nil {
		t.Fatal(err)
	}
	for _, q := range TPCHQueries {
		if _, err := e.Query(q.SQL); err != nil {
			t.Errorf("%s failed exactly: %v", q.ID, err)
		}
	}
	e2 := engine.NewSeeded(5)
	if err := LoadInsta(e2, 0.02, 5); err != nil {
		t.Fatal(err)
	}
	for _, q := range InstaQueries {
		if _, err := e2.Query(q.SQL); err != nil {
			t.Errorf("%s failed exactly: %v", q.ID, err)
		}
	}
}

func TestQueryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, q := range AllQueries() {
		if seen[q.ID] {
			t.Errorf("duplicate id %s", q.ID)
		}
		seen[q.ID] = true
		if !strings.HasPrefix(q.ID, "tq-") && !strings.HasPrefix(q.ID, "iq-") {
			t.Errorf("bad id %s", q.ID)
		}
	}
}
