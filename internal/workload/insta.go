package workload

import (
	"fmt"
	"math/rand"

	"verdictdb/internal/engine"
)

// The insta dataset mirrors the Instacart grocery schema the paper scales
// 100x (Section 6.1): orders, order_products, products, aisles, departments.
// Row proportions follow the public dataset (roughly 10 order_products rows
// per order); absolute counts scale linearly.

const (
	instaOrdersBase        = 100_000
	instaOrderProductsBase = 1_000_000
	instaProductsBase      = 5_000
	instaAisles            = 134
	instaDepartments       = 21
)

var departmentNames = []string{
	"frozen", "other", "bakery", "produce", "alcohol", "international",
	"beverages", "pets", "dry goods pasta", "bulk", "personal care",
	"meat seafood", "pantry", "breakfast", "canned goods", "dairy eggs",
	"household", "babies", "snacks", "deli", "missing",
}

// LoadInsta creates and populates the insta-like grocery schema.
func LoadInsta(e *engine.Engine, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	nOrders := int(float64(instaOrdersBase) * scale)
	nOP := int(float64(instaOrderProductsBase) * scale)
	nProducts := instaProductsBase
	if nOrders < 10 {
		return fmt.Errorf("workload: insta scale %v too small", scale)
	}
	nUsers := nOrders / 8
	if nUsers < 2 {
		nUsers = 2
	}

	col := func(n string, t engine.ColType) engine.Column { return engine.Column{Name: n, Type: t} }
	if err := e.CreateTable("departments",
		[]engine.Column{col("department_id", engine.TInt), col("department", engine.TString)}); err != nil {
		return err
	}
	if err := e.CreateTable("aisles",
		[]engine.Column{col("aisle_id", engine.TInt), col("aisle", engine.TString)}); err != nil {
		return err
	}
	if err := e.CreateTable("products", []engine.Column{
		col("product_id", engine.TInt), col("product_name", engine.TString),
		col("aisle_id", engine.TInt), col("department_id", engine.TInt),
		col("price", engine.TFloat),
	}); err != nil {
		return err
	}
	if err := e.CreateTable("orders", []engine.Column{
		col("order_id", engine.TInt), col("user_id", engine.TInt),
		col("order_dow", engine.TInt), col("order_hour", engine.TInt),
		col("days_since_prior", engine.TInt),
	}); err != nil {
		return err
	}
	if err := e.CreateTable("order_products", []engine.Column{
		col("order_id", engine.TInt), col("product_id", engine.TInt),
		col("add_to_cart_order", engine.TInt), col("reordered", engine.TInt),
		col("quantity", engine.TInt), col("price", engine.TFloat),
	}); err != nil {
		return err
	}

	var rows [][]engine.Value
	for i := 0; i < instaDepartments; i++ {
		rows = append(rows, []engine.Value{int64(i + 1), departmentNames[i%len(departmentNames)]})
	}
	if err := e.InsertRows("departments", rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i := 1; i <= instaAisles; i++ {
		rows = append(rows, []engine.Value{int64(i), fmt.Sprintf("aisle-%d", i)})
	}
	if err := e.InsertRows("aisles", rows); err != nil {
		return err
	}

	prodPrice := make([]float64, nProducts+1)
	rows = make([][]engine.Value, 0, nProducts)
	for i := 1; i <= nProducts; i++ {
		price := 1 + rng.Float64()*24
		prodPrice[i] = price
		rows = append(rows, []engine.Value{
			int64(i), fmt.Sprintf("product-%d", i),
			int64(1 + rng.Intn(instaAisles)), int64(1 + rng.Intn(instaDepartments)),
			price,
		})
	}
	if err := e.InsertRows("products", rows); err != nil {
		return err
	}

	// Orders: hour-of-day and day-of-week follow a plausible skew.
	rows = make([][]engine.Value, 0, nOrders)
	for i := 1; i <= nOrders; i++ {
		hour := int64(8 + rng.Intn(14)) // daytime-heavy
		if rng.Float64() < 0.15 {
			hour = int64(rng.Intn(24))
		}
		rows = append(rows, []engine.Value{
			int64(i), int64(1 + rng.Intn(nUsers)),
			int64(rng.Intn(7)), hour, int64(rng.Intn(31)),
		})
	}
	if err := e.InsertRows("orders", rows); err != nil {
		return err
	}

	// Order products: product popularity is Zipf-ish.
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(nProducts-1))
	rows = make([][]engine.Value, 0, nOP)
	for i := 0; i < nOP; i++ {
		pid := int64(zipf.Uint64() + 1)
		qty := int64(1 + rng.Intn(4))
		rows = append(rows, []engine.Value{
			int64(1 + rng.Intn(nOrders)), pid,
			int64(1 + i%12), int64(rng.Intn(2)),
			qty, prodPrice[pid] * float64(qty),
		})
	}
	return e.InsertRows("order_products", rows)
}

// InstaFactTables lists the tables VerdictDB samples for the iq workload.
var InstaFactTables = []string{"orders", "order_products"}

// LoadSynthetic creates the controlled dataset of Section 6.5: n rows with
// attribute values of mean 10.0 and standard deviation 10.0, a uniform
// selectivity column u in [0,1), and a low-cardinality group column.
func LoadSynthetic(e *engine.Engine, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if err := e.CreateTable("syn", []engine.Column{
		{Name: "x", Type: engine.TFloat},
		{Name: "u", Type: engine.TFloat},
		{Name: "g", Type: engine.TInt},
	}); err != nil {
		return err
	}
	rows := make([][]engine.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []engine.Value{
			10.0 + 10.0*rng.NormFloat64(),
			rng.Float64(),
			int64(i % 10),
		})
	}
	return e.InsertRows("syn", rows)
}
