package baselines

import (
	"fmt"
	"time"

	"verdictdb/internal/engine"
	"verdictdb/internal/sketch"
)

// NativeApprox models the built-in approximate aggregates of commercial
// engines compared in Table 2: Impala's ndv (HyperLogLog) and Redshift's
// approximate percentile. Their defining property is a full scan feeding a
// bounded sketch — cheap in memory, expensive in I/O.
type NativeApprox struct {
	eng *engine.Engine
}

// NewNativeApprox wraps an engine.
func NewNativeApprox(e *engine.Engine) *NativeApprox {
	return &NativeApprox{eng: e}
}

// NDV estimates count-distinct of a column with HyperLogLog over a full
// table scan, returning the estimate, rows scanned, and elapsed time.
func (n *NativeApprox) NDV(table, column string) (float64, int64, time.Duration, error) {
	start := time.Now()
	t, err := n.eng.Lookup(table)
	if err != nil {
		return 0, 0, 0, err
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return 0, 0, 0, fmt.Errorf("baselines: no column %s.%s", table, column)
	}
	h := sketch.NewHLL(12)
	for _, row := range t.Rows {
		if row[ci] == nil {
			continue
		}
		h.AddString(engine.GroupKey(row[ci]))
	}
	return h.Estimate(), int64(len(t.Rows)), time.Since(start), nil
}

// ApproxMedian estimates the median of a column with a reservoir quantile
// sketch over a full table scan.
func (n *NativeApprox) ApproxMedian(table, column string) (float64, int64, time.Duration, error) {
	start := time.Now()
	t, err := n.eng.Lookup(table)
	if err != nil {
		return 0, 0, 0, err
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return 0, 0, 0, fmt.Errorf("baselines: no column %s.%s", table, column)
	}
	qs := sketch.NewQuantileSketch(4096, 17)
	for _, row := range t.Rows {
		f, ok := engine.ToFloat(row[ci])
		if !ok {
			continue
		}
		qs.Add(f)
	}
	return qs.Median(), int64(len(t.Rows)), time.Since(start), nil
}
