package baselines

import (
	"fmt"
	"time"

	"verdictdb/internal/engine"
	"verdictdb/internal/sketch"
)

// NativeApprox models the built-in approximate aggregates of commercial
// engines compared in Table 2: Impala's ndv (HyperLogLog) and Redshift's
// approximate percentile. Their defining property is a full scan feeding a
// bounded sketch — cheap in memory, expensive in I/O.
type NativeApprox struct {
	eng *engine.Engine
}

// NewNativeApprox wraps an engine.
func NewNativeApprox(e *engine.Engine) *NativeApprox {
	return &NativeApprox{eng: e}
}

// NDV estimates count-distinct of a column with HyperLogLog over a full
// table scan, returning the estimate, rows scanned, and elapsed time.
func (n *NativeApprox) NDV(table, column string) (float64, int64, time.Duration, error) {
	start := time.Now()
	t, err := n.eng.Lookup(table)
	if err != nil {
		return 0, 0, 0, err
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return 0, 0, 0, fmt.Errorf("baselines: no column %s.%s", table, column)
	}
	h := sketch.NewHLL(12)
	if err := t.ScanColumn(ci, func(v engine.Value) error {
		if v != nil {
			h.AddString(engine.GroupKey(v))
		}
		return nil
	}); err != nil {
		return 0, 0, 0, err
	}
	return h.Estimate(), int64(t.NumRows()), time.Since(start), nil
}

// ApproxMedian estimates the median of a column with a reservoir quantile
// sketch over a full table scan.
func (n *NativeApprox) ApproxMedian(table, column string) (float64, int64, time.Duration, error) {
	start := time.Now()
	t, err := n.eng.Lookup(table)
	if err != nil {
		return 0, 0, 0, err
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return 0, 0, 0, fmt.Errorf("baselines: no column %s.%s", table, column)
	}
	qs := sketch.NewQuantileSketch(4096, 17)
	if err := t.ScanColumn(ci, func(v engine.Value) error {
		if f, ok := engine.ToFloat(v); ok {
			qs.Add(f)
		}
		return nil
	}); err != nil {
		return 0, 0, 0, err
	}
	return qs.Median(), int64(t.NumRows()), time.Since(start), nil
}
