// Package baselines implements the comparison systems of Section 6.3:
//
//   - Snappy: a SnappyData-like AQP engine that is tightly integrated with
//     the execution engine. It reads stratified/uniform samples directly
//     through Go APIs (no SQL rewriting, no middleware round trip, no
//     subsample bookkeeping), which makes it slightly faster on flat
//     queries — but, like SnappyData, it cannot join two sample tables: when
//     a query joins two sampled relations it silently uses the base table
//     for the second one, losing the speedup (the Figure 6 crossover).
//
//   - Native approximate aggregates (Table 2): HyperLogLog ndv and
//     sketch-based approximate median that scan the full table.
package baselines

import (
	"fmt"
	"strings"
	"time"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

// Snappy is the tightly-integrated AQP baseline.
type Snappy struct {
	eng *engine.Engine
	cat *meta.Catalog
}

// NewSnappy wraps an engine and a sample catalog.
func NewSnappy(db drivers.DB, cat *meta.Catalog) (*Snappy, error) {
	d, ok := db.(*drivers.Driver)
	if !ok {
		return nil, fmt.Errorf("baselines: Snappy needs direct engine access (tight integration)")
	}
	return &Snappy{eng: d.Engine(), cat: cat}, nil
}

// Result is an integrated-AQP answer.
type Result struct {
	Cols        []string
	Rows        [][]engine.Value
	Approximate bool
	// SampledTables are the relations replaced by samples (at most one).
	SampledTables []string
	Elapsed       time.Duration
}

// Query answers an aggregate query approximately. Being engine-integrated,
// it rewrites the plan in-process: it substitutes at most ONE base table
// with a sample (preferring a stratified sample covering the GROUP BY) and
// scales aggregates by stored inclusion probabilities. Queries joining two
// sampled relations fall back to sampling only the largest one.
func (s *Snappy) Query(sql string) (*Result, error) {
	start := time.Now()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("baselines: Snappy answers SELECT only")
	}
	if !sqlparser.HasAggregates(sel) {
		rs, err := s.eng.ExecStmt(sel)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: rs.Cols, Rows: rs.Rows, Elapsed: time.Since(start)}, nil
	}

	// Collect base tables and pick the single largest sampled relation.
	type refInfo struct {
		ref   *sqlparser.TableRef
		alias string
		si    *meta.SampleInfo
	}
	var refs []refInfo
	var walk func(t sqlparser.TableExpr)
	walk = func(t sqlparser.TableExpr) {
		switch tt := t.(type) {
		case *sqlparser.TableRef:
			alias := tt.Alias
			if alias == "" {
				alias = tt.Name
			}
			refs = append(refs, refInfo{ref: tt, alias: alias})
		case *sqlparser.JoinExpr:
			walk(tt.Left)
			walk(tt.Right)
		case *sqlparser.DerivedTable:
			// Integrated engines typically sample base scans only.
		}
	}
	clone := sqlparser.CloneSelect(sel)
	walk(clone.From)

	groupCols := map[string]bool{}
	for _, g := range clone.GroupBy {
		if cr, ok := g.(*sqlparser.ColumnRef); ok {
			groupCols[strings.ToLower(cr.Name)] = true
		}
	}

	best := -1
	var bestRows int64
	for i := range refs {
		samples, err := s.cat.ForTable(refs[i].ref.Name)
		if err != nil {
			return nil, err
		}
		var pick *meta.SampleInfo
		for j := range samples {
			si := samples[j]
			switch si.Type {
			case sqlparser.StratifiedSample:
				covers := len(si.Columns) > 0
				for _, c := range si.Columns {
					if !groupCols[c] {
						covers = false
					}
				}
				if covers || pick == nil {
					p := si
					pick = &p
				}
			case sqlparser.UniformSample:
				if pick == nil {
					p := si
					pick = &p
				}
			}
		}
		if pick != nil {
			refs[i].si = pick
			if pick.BaseRows > bestRows {
				bestRows = pick.BaseRows
				best = i
			}
		}
	}
	if best < 0 {
		rs, err := s.eng.ExecStmt(clone)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: rs.Cols, Rows: rs.Rows, Elapsed: time.Since(start)}, nil
	}

	// SnappyData limitation: only the chosen relation is sampled; all other
	// relations read base tables even when samples exist.
	chosen := refs[best]
	chosen.ref.Name = chosen.si.SampleTable
	if chosen.ref.Alias == "" {
		chosen.ref.Alias = chosen.alias
	}

	// Scale aggregates in-process: sum/count multiply by 1/verdict_prob via
	// direct expression surgery (integrated engines do this inside their
	// operators; expression surgery is the closest in-engine equivalent).
	probRef := &sqlparser.ColumnRef{Table: chosen.ref.Alias, Name: "verdict_prob"}
	for i := range clone.Items {
		if clone.Items[i].Expr == nil {
			continue
		}
		clone.Items[i].Expr = sqlparser.RewriteExpr(clone.Items[i].Expr, func(e sqlparser.Expr) sqlparser.Expr {
			fc, ok := e.(*sqlparser.FuncCall)
			if !ok || fc.Over != nil || !sqlparser.AggregateFuncs[fc.Name] {
				return e
			}
			switch fc.Name {
			case "count":
				if fc.Distinct {
					return e // integrated engines use sketches here instead
				}
				var arg sqlparser.Expr = &sqlparser.Literal{Val: 1.0}
				if !fc.Star && len(fc.Args) > 0 {
					// count(x): count only non-null x; approximate via
					// HT on an indicator.
					arg = &sqlparser.CaseExpr{
						Whens: []sqlparser.When{{
							Cond: &sqlparser.IsNullExpr{X: sqlparser.CloneExpr(fc.Args[0]), Not: true},
							Then: &sqlparser.Literal{Val: 1.0},
						}},
						Else: &sqlparser.Literal{Val: 0.0},
					}
				}
				return &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
					&sqlparser.BinaryExpr{Op: "/", L: arg, R: sqlparser.CloneExpr(probRef)},
				}}
			case "sum":
				return &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
					&sqlparser.BinaryExpr{Op: "/", L: sqlparser.CloneExpr(fc.Args[0]), R: sqlparser.CloneExpr(probRef)},
				}}
			default:
				// avg/min/max/percentile run unweighted on the sample —
				// the same simplification SnappyData's closed forms make
				// for non-additive aggregates on stratified samples.
				return e
			}
		})
	}
	// HAVING references aggregates; apply the same surgery.
	if clone.Having != nil {
		// Conservative: drop approximation for HAVING queries.
		rs, err := s.eng.ExecStmt(sel)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: rs.Cols, Rows: rs.Rows, Elapsed: time.Since(start)}, nil
	}

	rs, err := s.eng.ExecStmt(clone)
	if err != nil {
		return nil, err
	}
	return &Result{
		Cols: rs.Cols, Rows: rs.Rows,
		Approximate:   true,
		SampledTables: []string{chosen.si.SampleTable},
		Elapsed:       time.Since(start),
	}, nil
}
