package core

import (
	"fmt"

	"verdictdb/internal/sampling"
)

// This repo materializes verdict_sid when a sample is created (like the
// released VerdictDB). The paper's Query 3 instead assigns subsample ids
// on the fly with rand() at query time, which footnote 7 argues avoids the
// risk of consistently unlucky precomputed subsamples. Both forms are
// provided; benchmarks and tests show they produce statistically equivalent
// error estimates.

// VariationalClause renders the Query-3 style derived table that assigns a
// fresh random subsample id in [1, b] to (roughly) a b*ns/n fraction of the
// sample's tuples and discards the rest:
//
//	select *, 1 + floor(rand() * b) as verdict_sid
//	from <sampleTable>
//	where rand() < b*ns/n
//
// n is the sample's row count, ns the subsample size, b the subsample
// count. When b*ns >= n every tuple is kept (a full partition, matching the
// stored-sid default of b = ns = sqrt(n)).
func VariationalClause(sampleTable string, n, ns, b int64) string {
	keep := float64(b) * float64(ns) / float64(n)
	if keep >= 1 {
		return fmt.Sprintf(
			"(select *, 1 + floor(rand() * %d) as %s from %s) as verdict_v",
			b, sampling.SidCol, sampleTable)
	}
	return fmt.Sprintf(
		"(select *, 1 + floor(rand() * %d) as %s from %s where rand() < %.12g) as verdict_v",
		b, sampling.SidCol, sampleTable, keep)
}

// VariationalAggregate renders the Query-4 style one-shot subsample
// aggregation over a variational clause: per-(group, sid) aggregates plus
// subsample sizes, ready for middleware-side combination.
func VariationalAggregate(sampleTable string, n, ns, b int64, aggExprSQL, groupColsSQL string) string {
	clause := VariationalClause(sampleTable, n, ns, b)
	if groupColsSQL == "" {
		return fmt.Sprintf(
			"select %s as %s, %s, count(*) as %s from %s group by %s",
			sampling.SidCol, sampling.SidCol, aggExprSQL, sizeCol, clause, sampling.SidCol)
	}
	return fmt.Sprintf(
		"select %s, %s as %s, %s, count(*) as %s from %s group by %s, %s",
		groupColsSQL, sampling.SidCol, sampling.SidCol, aggExprSQL, sizeCol, clause,
		groupColsSQL, sampling.SidCol)
}
