package core

import (
	"testing"

	"verdictdb/internal/meta"
	"verdictdb/internal/sqlparser"
)

func occFor(t *testing.T, sql string) (map[string]*tableOccurrence, *sqlparser.SelectStmt) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(sel, occ); err != nil {
		t.Fatal(err)
	}
	return occ, sel
}

func sample(base, name string, typ sqlparser.SampleType, ratio float64, rows, baseRows int64, cols ...string) meta.SampleInfo {
	return meta.SampleInfo{
		SampleTable: name, BaseTable: base, Type: typ, Ratio: ratio,
		Columns: cols, SampleRows: rows, BaseRows: baseRows, Subsamples: 32,
	}
}

func TestCollectOccurrencesJoinCols(t *testing.T) {
	occ, _ := occFor(t, `select count(*) from orders o
		inner join order_products op on o.order_id = op.order_id
		inner join products p on op.product_id = p.product_id`)
	if len(occ) != 3 {
		t.Fatalf("occurrences: %d", len(occ))
	}
	if peers := occ["o"].JoinCols["order_id"]; len(peers) != 1 || peers[0].Alias != "op" {
		t.Errorf("o join cols: %+v", occ["o"].JoinCols)
	}
	if peers := occ["op"].JoinCols["product_id"]; len(peers) != 1 || peers[0].Alias != "p" {
		t.Errorf("op join cols: %+v", occ["op"].JoinCols)
	}
}

func TestPlannerRejectsTwoIndependentSamples(t *testing.T) {
	occ, sel := occFor(t, `select count(*) from a inner join b on a.k = b.k`)
	samples := []meta.SampleInfo{
		sample("a", "a_u", sqlparser.UniformSample, 0.01, 1000, 100_000),
		sample("b", "b_u", sqlparser.UniformSample, 0.01, 1000, 100_000),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	plans, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no plan at all — expected single-sample plan")
	}
	// The chosen plan must sample at most one of a, b.
	sampled := 0
	for _, c := range plans[0].Plan.Choices {
		if c.Sample != nil {
			sampled++
		}
	}
	if sampled != 1 {
		t.Fatalf("plan samples %d relations, want 1 (uniform x uniform joins are invalid)", sampled)
	}
}

func TestPlannerPrefersAlignedUniverseJoin(t *testing.T) {
	occ, sel := occFor(t, `select count(*) from a inner join b on a.k = b.k`)
	samples := []meta.SampleInfo{
		sample("a", "a_u", sqlparser.UniformSample, 0.005, 500, 100_000),
		sample("a", "a_h", sqlparser.HashedSample, 0.01, 1000, 100_000, "k"),
		sample("b", "b_u", sqlparser.UniformSample, 0.005, 500, 100_000),
		sample("b", "b_h", sqlparser.HashedSample, 0.01, 1000, 100_000, "k"),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	plans, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatalf("plan failed: %v %v", ok, err)
	}
	// Universe samples on the join key (ratio 0.01) beat the 0.5% uniform
	// samples; a single hashed sample joined to the base table on its hash
	// key is equally valid and cheaper, so require: at least one hashed
	// sample, no uniform samples.
	hashed, uniform := 0, 0
	for _, c := range plans[0].Plan.Choices {
		if c.Sample == nil {
			continue
		}
		switch c.Sample.Type {
		case sqlparser.HashedSample:
			hashed++
		case sqlparser.UniformSample:
			uniform++
		}
	}
	if hashed < 1 || uniform > 0 {
		t.Fatalf("universe join not preferred: %s", plans[0].Plan.Key())
	}
}

func TestPlannerBudgetRejectsOversizedSamples(t *testing.T) {
	occ, sel := occFor(t, `select count(*) from big`)
	samples := []meta.SampleInfo{
		// 10% sample of a large table blows the default 2% budget.
		sample("big", "big_u", sqlparser.UniformSample, 0.10, 100_000, 1_000_000),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	_, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("over-budget plan accepted")
	}
}

func TestPlannerSmallTableExemptFromBudget(t *testing.T) {
	occ, sel := occFor(t, `select count(*) from small`)
	samples := []meta.SampleInfo{
		sample("small", "small_u", sqlparser.UniformSample, 0.10, 500, 5_000),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	_, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatalf("small-table sample rejected (ok=%v err=%v)", ok, err)
	}
}

func TestPlannerStratifiedAdvantage(t *testing.T) {
	occ, sel := occFor(t, `select city, count(*) from t group by city`)
	samples := []meta.SampleInfo{
		sample("t", "t_u", sqlparser.UniformSample, 0.01, 1000, 100_000),
		sample("t", "t_s", sqlparser.StratifiedSample, 0.01, 1100, 100_000, "city"),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	plans, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatal(err)
	}
	c := plans[0].Plan.Choices["t"]
	if c.Sample == nil || c.Sample.Type != sqlparser.StratifiedSample {
		t.Fatalf("stratified sample not preferred: %s", plans[0].Plan.Key())
	}
}

func TestPlannerConsolidation(t *testing.T) {
	// count + avg share a plan; count(distinct k) needs the hashed sample:
	// two consolidated plans (Table 4's shape).
	occ, sel := occFor(t, `select count(*), avg(x), count(distinct k) from t`)
	samples := []meta.SampleInfo{
		sample("t", "t_u", sqlparser.UniformSample, 0.01, 1000, 100_000),
		sample("t", "t_h", sqlparser.HashedSample, 0.01, 1000, 100_000, "k"),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	plans, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("consolidated plans: %d, want 2", len(plans))
	}
	// The mean-like plan answers items 0 and 1 together.
	for _, cp := range plans {
		if len(cp.ItemIdx) == 2 && (cp.ItemIdx[0] != 0 || cp.ItemIdx[1] != 1) {
			t.Errorf("mean-like consolidation wrong: %v", cp.ItemIdx)
		}
	}
}

func TestPlannerAllDistinctOneQuery(t *testing.T) {
	// Two count-distincts on the same column consolidate into one plan.
	occ, sel := occFor(t, `select count(distinct k), count(distinct k) from t`)
	samples := []meta.SampleInfo{
		sample("t", "t_h", sqlparser.HashedSample, 0.01, 1000, 100_000, "k"),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	plans, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(plans) != 1 || len(plans[0].ItemIdx) != 2 {
		t.Fatalf("distinct consolidation: %+v", plans)
	}
}

func TestPlannerExtremeSeparation(t *testing.T) {
	occ, sel := occFor(t, `select count(*), max(x) from t`)
	samples := []meta.SampleInfo{
		sample("t", "t_u", sqlparser.UniformSample, 0.01, 1000, 100_000),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	plans, extremeIdx, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(extremeIdx) != 1 || extremeIdx[0] != 1 {
		t.Fatalf("extreme items: %v", extremeIdx)
	}
	if len(plans) != 1 || len(plans[0].ItemIdx) != 1 || plans[0].ItemIdx[0] != 0 {
		t.Fatalf("mean-like plan items: %+v", plans)
	}
}

func TestPlannerCountDistinctRequiresHashed(t *testing.T) {
	occ, sel := occFor(t, `select count(distinct k) from t`)
	samples := []meta.SampleInfo{
		sample("t", "t_u", sqlparser.UniformSample, 0.01, 1000, 100_000),
	}
	p := NewPlanner(DefaultPlannerConfig(), samples)
	_, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("count-distinct planned without a hashed sample")
	}
}

func TestPlannerTopKPruning(t *testing.T) {
	occ, sel := occFor(t, `select count(*) from t`)
	// 30 candidate samples; TopK=3 must still find the best (largest
	// effective ratio within budget).
	var samples []meta.SampleInfo
	for i := 0; i < 30; i++ {
		ratio := 0.001 + float64(i)*0.0005
		rows := int64(ratio * 1_000_000)
		samples = append(samples, meta.SampleInfo{
			SampleTable: "t_u_" + string(rune('a'+i)), BaseTable: "t",
			Type: sqlparser.UniformSample, Ratio: ratio,
			SampleRows: rows, BaseRows: 1_000_000, Subsamples: 32,
		})
	}
	cfg := DefaultPlannerConfig()
	cfg.TopK = 3
	p := NewPlanner(cfg, samples)
	plans, _, ok, err := p.PlanQuery(sel, occ)
	if err != nil || !ok {
		t.Fatal(err)
	}
	chosen := plans[0].Plan.Choices["t"].Sample
	// Best within the 2% budget is ratio closest to 0.02 from below-ish;
	// samples go up to 0.0155 so the largest one wins.
	if chosen.Ratio < 0.015 {
		t.Fatalf("top-k pruning lost the best sample: chose ratio %v", chosen.Ratio)
	}
}

func TestClassifyItemsMixedDistinctAndMean(t *testing.T) {
	sel, err := sqlparser.ParseSelect("select sum(x) / count(distinct k) from t")
	if err != nil {
		t.Fatal(err)
	}
	meanlike, distincts, extremes, unsupported := classifyItems(sel)
	if unsupported {
		t.Fatal("mixed item marked unsupported")
	}
	if len(meanlike.ItemIdx) != 1 || len(distincts) != 0 || len(extremes) != 0 {
		t.Fatalf("classification: mean=%v distinct=%v extreme=%v", meanlike.ItemIdx, distincts, extremes)
	}
}
