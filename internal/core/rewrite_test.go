package core

import (
	"math"
	"strings"
	"testing"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/meta"
	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
	"verdictdb/internal/stats"
)

func mustOpenCatalog(t *testing.T, db drivers.DB) *meta.Catalog {
	t.Helper()
	cat, err := meta.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustBuilder(t *testing.T, db drivers.DB, cat *meta.Catalog) *sampling.Builder {
	t.Helper()
	return sampling.NewBuilder(db, cat)
}

func TestRewriteInnerOuterStructure(t *testing.T) {
	sel, err := sqlparser.ParseSelect("select city, count(*) as c, sum(price) as s from orders group by city")
	if err != nil {
		t.Fatal(err)
	}
	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(sel, occ); err != nil {
		t.Fatal(err)
	}
	si := sample("orders", "orders_s", sqlparser.UniformSample, 0.01, 1000, 100_000)
	plan := CandidatePlan{Choices: map[string]TableChoice{
		"orders": {Occurrence: occ["orders"], Sample: &si},
	}}
	ro, err := Rewrite(sel, plan, []int{1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ro.B != 32 {
		t.Errorf("B = %d", ro.B)
	}
	// Column metadata: city(group), c(agg), s(agg), then two error cols.
	kinds := []ColKind{ColGroup, ColAgg, ColAgg, ColErr, ColErr}
	if len(ro.Columns) != len(kinds) {
		t.Fatalf("columns: %+v", ro.Columns)
	}
	for i, k := range kinds {
		if ro.Columns[i].Kind != k {
			t.Errorf("col %d kind %v want %v", i, ro.Columns[i].Kind, k)
		}
	}
	sql := sqlparser.Format(ro.Stmt)
	for _, want := range []string{
		"verdict_sid", "verdict_size", "/ orders.verdict_prob",
		"stddev", "sqrt", "GROUP BY",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("rewritten SQL missing %q:\n%s", want, sql)
		}
	}
	// Inner group-by must include sid; outer must not.
	inner := ro.Stmt.From.(*sqlparser.DerivedTable).Select
	foundSid := false
	for _, g := range inner.GroupBy {
		if cr, ok := g.(*sqlparser.ColumnRef); ok && cr.Name == "verdict_sid" {
			foundSid = true
		}
	}
	if !foundSid {
		t.Error("inner query does not group by verdict_sid")
	}
	if len(ro.Stmt.GroupBy) != 1 {
		t.Errorf("outer group by: %d terms", len(ro.Stmt.GroupBy))
	}
}

func TestRewriteRejectsNonGroupColumn(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select city, count(*) from orders group by state")
	occ := map[string]*tableOccurrence{}
	_ = collectAllOccurrences(sel, occ)
	si := sample("orders", "orders_s", sqlparser.UniformSample, 0.01, 1000, 100_000)
	plan := CandidatePlan{Choices: map[string]TableChoice{
		"orders": {Occurrence: occ["orders"], Sample: &si},
	}}
	if _, err := Rewrite(sel, plan, []int{1}, true); err == nil {
		t.Fatal("select item not in GROUP BY must be rejected")
	}
}

func TestVariationalClauseSQL(t *testing.T) {
	// Full partition: no WHERE filter.
	full := VariationalClause("s", 10_000, 100, 100)
	if strings.Contains(full, "where") {
		t.Errorf("full partition should not filter: %s", full)
	}
	// Partial: Query 3's shape with a filter.
	part := VariationalClause("s", 10_000_000, 10_000, 100)
	for _, want := range []string{"rand()", "floor", "verdict_sid", "where"} {
		if !strings.Contains(strings.ToLower(part), want) {
			t.Errorf("clause missing %q: %s", want, part)
		}
	}
}

func TestVariationalClauseExecutes(t *testing.T) {
	// The on-the-fly Query 3/4 pipeline must run on the engine and yield
	// calibrated per-subsample aggregates.
	e := engine.NewSeeded(13)
	if err := e.CreateTable("s", []engine.Column{{Name: "x", Type: engine.TFloat}}); err != nil {
		t.Fatal(err)
	}
	const n = 40_000
	rows := make([][]engine.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []engine.Value{float64(i % 100)})
	}
	if err := e.InsertRows("s", rows); err != nil {
		t.Fatal(err)
	}
	ns := int64(200)
	b := int64(n) / ns
	sql := VariationalAggregate("s", n, ns, b, "avg(x) as est", "")
	rs, err := e.Query(sql)
	if err != nil {
		t.Fatalf("%v (sql: %s)", err, sql)
	}
	if int64(len(rs.Rows)) < b/2 {
		t.Fatalf("subsample rows: %d (b=%d)", len(rs.Rows), b)
	}
	// Combine like the middleware: weighted mean and subsampling SE.
	var ests, sizes []float64
	estIdx, sizeIdx := rs.ColIndex("est"), rs.ColIndex("verdict_size")
	for _, r := range rs.Rows {
		ev, _ := engine.ToFloat(r[estIdx])
		sv, _ := engine.ToFloat(r[sizeIdx])
		ests = append(ests, ev)
		sizes = append(sizes, sv)
	}
	var num, den float64
	for i := range ests {
		num += ests[i] * sizes[i]
		den += sizes[i]
	}
	point := num / den
	if math.Abs(point-49.5) > 1.0 {
		t.Errorf("on-the-fly point estimate %v want ~49.5", point)
	}
	se := stats.Stddev(ests) * math.Sqrt(stats.Mean(sizes)) / math.Sqrt(den)
	// True SE of the mean of n uniform{0..99} values.
	trueSE := 28.87 / math.Sqrt(float64(n))
	if se < trueSE/3 || se > trueSE*3 {
		t.Errorf("on-the-fly SE %v want ~%v", se, trueSE)
	}
}

func TestStoredAndOnTheFlySidAgree(t *testing.T) {
	// The stored-sid middleware path and the Query-3 on-the-fly path must
	// give comparable error estimates for the same query.
	e := engine.NewSeeded(21)
	if err := e.CreateTable("t", []engine.Column{{Name: "x", Type: engine.TFloat}}); err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	rows := make([][]engine.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []engine.Value{float64(i % 100)})
	}
	if err := e.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	db := drivers.NewGeneric(e)
	cat := mustOpenCatalog(t, db)
	b := mustBuilder(t, db, cat)
	si, err := b.CreateUniform("t", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.IOBudget = 0.2 // the test sample is 10% of the base
	mw := New(db, cat, opts)
	a, err := mw.Query("select avg(x) as m from t")
	if err != nil {
		t.Fatal(err)
	}
	_, _, ok := a.ConfidenceInterval(0, 0)
	if !a.Approximate || !ok {
		t.Fatalf("stored-sid path: approx=%v", a.Approximate)
	}
	storedSE := a.StdErr[0][0]

	// Query 3 targets sample tables without a precomputed sid; strip it.
	if _, err := e.Exec("create table t_plain as select x from " + si.SampleTable); err != nil {
		t.Fatal(err)
	}
	nsOT := int64(math.Sqrt(float64(si.SampleRows)))
	sqlOT := VariationalAggregate("t_plain", si.SampleRows, nsOT, si.SampleRows/nsOT, "avg(x) as est", "")
	rs, err := e.Query(sqlOT)
	if err != nil {
		t.Fatal(err)
	}
	var ests, sizes []float64
	estIdx, sizeIdx := rs.ColIndex("est"), rs.ColIndex("verdict_size")
	for _, r := range rs.Rows {
		ev, _ := engine.ToFloat(r[estIdx])
		sv, _ := engine.ToFloat(r[sizeIdx])
		ests = append(ests, ev)
		sizes = append(sizes, sv)
	}
	var den float64
	for _, s := range sizes {
		den += s
	}
	otSE := stats.Stddev(ests) * math.Sqrt(stats.Mean(sizes)) / math.Sqrt(den)
	if otSE < storedSE/3 || otSE > storedSE*3 {
		t.Errorf("on-the-fly SE %v vs stored-sid SE %v disagree wildly", otSE, storedSE)
	}
}
