package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"verdictdb/internal/drivers"
	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

// Explain describes — without executing anything against base data — how
// the middleware would answer a SELECT: support status, the consolidated
// sample plans with scores and I/O costs, extreme-statistic decomposition,
// and the rewritten SQL that would be sent to the engine. ctx bounds the
// catalog and cardinality probes Explain issues while planning.
func (m *Middleware) Explain(ctx context.Context, sel *sqlparser.SelectStmt) (*Answer, error) {
	a := &Answer{
		Cols:       []string{"step", "detail"},
		Confidence: m.opts.Confidence,
	}
	add := func(step, detail string) {
		a.Rows = append(a.Rows, []engine.Value{step, detail})
	}

	status := Analyze(sel)
	add("support", status.String())
	if status != Supported {
		add("execution", "passthrough to underlying engine")
		a.StdErr = nanMatrix(len(a.Rows), 2)
		return a, nil
	}

	flat, err := FlattenComparisonSubqueries(sel)
	if err != nil {
		return nil, err
	}
	if flattened := sqlparser.Format(flat) != sqlparser.Format(sel); flattened {
		add("flatten", "comparison subqueries converted to joins")
	}

	occ := map[string]*tableOccurrence{}
	if err := collectAllOccurrences(flat, occ); err != nil {
		return nil, err
	}
	var aliases []string
	for al, o := range occ {
		aliases = append(aliases, fmt.Sprintf("%s=%s", al, o.Base))
	}
	sort.Strings(aliases)
	add("tables", strings.Join(aliases, ", "))

	all, err := m.cat.List()
	if err != nil {
		return nil, err
	}
	planner := NewPlanner(m.opts.Planner, all)
	plans, extremeIdx, ok, err := planner.PlanQuery(flat, occ)
	if err != nil {
		return nil, err
	}
	if !ok {
		add("plan", "no admissible sample plan within the I/O budget")
		add("execution", "passthrough to underlying engine")
		a.StdErr = nanMatrix(len(a.Rows), 2)
		return a, nil
	}
	if decline, err := m.groupCardinalityTooHigh(ctx, flat, plans[0].Plan); err == nil && decline {
		add("plan", "declined: grouping cardinality too high for the sample")
		add("execution", "passthrough to underlying engine")
		a.StdErr = nanMatrix(len(a.Rows), 2)
		return a, nil
	}

	multi := len(plans) > 1 || len(extremeIdx) > 0
	for i, cp := range plans {
		var choices []string
		for al, c := range cp.Plan.Choices {
			if c.Sample != nil {
				choices = append(choices, fmt.Sprintf("%s->%s", al, c.Sample.SampleTable))
			} else {
				choices = append(choices, fmt.Sprintf("%s->base", al))
			}
		}
		sort.Strings(choices)
		add(fmt.Sprintf("plan %d", i+1),
			fmt.Sprintf("items %v via %s (score %.4f, cost %d rows)",
				cp.ItemIdx, strings.Join(choices, ", "), cp.Plan.Score, cp.Plan.Cost))
		ro, err := Rewrite(flat, cp.Plan, cp.ItemIdx, !multi)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("rewritten %d", i+1), drivers.Render(m.db, ro.Stmt))
		add(fmt.Sprintf("subsamples %d", i+1), fmt.Sprintf("b = %d", ro.B))
	}
	if len(extremeIdx) > 0 {
		add("extreme", fmt.Sprintf("items %v answered exactly from base tables (min/max)", extremeIdx))
	}
	add("error estimation", methodName(m.opts.Method))
	a.StdErr = nanMatrix(len(a.Rows), 2)
	return a, nil
}

func methodName(m ErrorMethod) string {
	switch m {
	case MethodVariational:
		return "variational subsampling"
	case MethodNone:
		return "none"
	case MethodTraditionalSubsampling:
		return "traditional subsampling (O(b*n))"
	case MethodConsolidatedBootstrap:
		return "consolidated bootstrap (O(b*n))"
	}
	return "unknown"
}
