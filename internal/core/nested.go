package core

import (
	"fmt"
	"strings"

	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
)

// nestedInfo describes the variational table built for a derived aggregate
// block.
type nestedInfo struct {
	b int64
	// complete is true when the block's GROUP BY includes the universe
	// (hashed) sample's hash column: every surviving group then contains
	// ALL of its base tuples, so inner aggregates are exact per group and
	// the enclosing query sees each group row with inclusion probability
	// ratio (the universe τ). This is what makes per-entity statistics
	// (e.g. average basket value) unbiased — Bernoulli samples cannot
	// preserve small groups, universe samples can (Section 5.1).
	complete bool
	ratio    float64
}

// rewriteNested turns a derived table containing aggregates into its
// variational table (Section 5.2, Query 7): the block is re-grouped by
// (original groups, sid) and each aggregate becomes its per-subsample
// estimator, so the enclosing query sees one row per (group, subsample)
// carrying an estimate of the true aggregate plus a verdict_sid column.
//
// info.b is 0 if the block touched no samples.
func (rw *rewriter) rewriteNested(sel *sqlparser.SelectStmt) (*sqlparser.SelectStmt, nestedInfo, error) {
	newFrom, src, err := rw.substituteFrom(sel.From)
	if err != nil {
		return nil, nestedInfo{}, err
	}
	if src.sid == nil {
		return nil, nestedInfo{}, nil
	}
	info := nestedInfo{b: src.b, ratio: src.ratio}
	if src.hashed && groupsContainHashCol(sel.GroupBy, src.hashedCols) {
		info.complete = true
		// Groups are complete: aggregate them exactly (probability 1
		// within the group) and let the enclosing level scale by τ.
		src.prob = nil
	}
	out := &sqlparser.SelectStmt{
		From:  newFrom,
		Where: sqlparser.CloneExpr(sel.Where),
	}
	if bp := rw.takeBlockPred(); bp != nil {
		out.Where = andExpr(out.Where, bp)
	}
	for _, g := range sel.GroupBy {
		out.GroupBy = append(out.GroupBy, sqlparser.CloneExpr(g))
	}

	substitute := func(e sqlparser.Expr) (sqlparser.Expr, error) {
		if info.complete {
			// Complete groups need no estimator surgery: the original
			// aggregates are exact within each surviving group.
			return sqlparser.CloneExpr(e), nil
		}
		var subErr error
		res := sqlparser.RewriteExpr(sqlparser.CloneExpr(e), func(x sqlparser.Expr) sqlparser.Expr {
			fc, ok := x.(*sqlparser.FuncCall)
			if !ok || fc.Over != nil || !sqlparser.AggregateFuncs[fc.Name] {
				return x
			}
			est, err := inlineSubsampleEstimator(fc, src)
			if err != nil {
				subErr = err
				return x
			}
			return est
		})
		if subErr != nil {
			return nil, subErr
		}
		return res, nil
	}

	for i, it := range sel.Items {
		if it.Star {
			return nil, nestedInfo{}, fmt.Errorf("core: SELECT * not supported in nested aggregate blocks")
		}
		name := it.Alias
		if name == "" {
			name = deriveName(it.Expr, i)
		}
		if sqlparser.ContainsAggregate(it.Expr) {
			est, err := substitute(it.Expr)
			if err != nil {
				return nil, nestedInfo{}, err
			}
			out.Items = append(out.Items, sqlparser.SelectItem{Expr: est, Alias: name})
		} else {
			out.Items = append(out.Items, sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: name})
		}
	}
	// Per-subsample grouping: append sid.
	out.Items = append(out.Items, sqlparser.SelectItem{
		Expr: sqlparser.CloneExpr(src.sid), Alias: sampling.SidCol,
	})
	out.GroupBy = append(out.GroupBy, sqlparser.CloneExpr(src.sid))

	if sel.Having != nil {
		h, err := substitute(sel.Having)
		if err != nil {
			return nil, nestedInfo{}, err
		}
		out.Having = h
	}
	// ORDER BY / LIMIT inside a derived aggregate block would change which
	// rows survive per subsample; the paper's supported query class keeps
	// ordering at the top level, so it is dropped here (LIMIT would be
	// statistically meaningless per subsample).
	return out, info, nil
}

// groupsContainHashCol reports whether some GROUP BY term is a column the
// universe sample hashes on (matched by qualified "alias.col" or bare name).
func groupsContainHashCol(groupBy []sqlparser.Expr, hashedCols map[string]bool) bool {
	for _, g := range groupBy {
		cr, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			continue
		}
		name := strings.ToLower(cr.Name)
		if cr.Table != "" {
			if hashedCols[strings.ToLower(cr.Table)+"."+name] {
				return true
			}
			continue
		}
		//verdict:unordered existence check; any-order traversal yields the same answer
		for k := range hashedCols {
			if strings.HasSuffix(k, "."+name) {
				return true
			}
		}
	}
	return false
}

// inlineSubsampleEstimator builds the single-level per-subsample estimator
// used by variational tables of nested blocks.
func inlineSubsampleEstimator(fc *sqlparser.FuncCall, src vsource) (sqlparser.Expr, error) {
	var arg sqlparser.Expr
	if len(fc.Args) > 0 {
		arg = sqlparser.CloneExpr(fc.Args[0])
	}
	sum := func(e sqlparser.Expr) sqlparser.Expr {
		return &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{e}}
	}
	htOne := func() sqlparser.Expr { return overProb(floatLit(1), src.prob) }
	switch classifyAgg(fc) {
	case AggCount:
		if src.replicated {
			return sum(htOne()), nil
		}
		return &sqlparser.BinaryExpr{Op: "*", L: sum(htOne()), R: intLit(src.b)}, nil
	case AggSum:
		if src.replicated {
			return sum(overProb(arg, src.prob)), nil
		}
		return &sqlparser.BinaryExpr{Op: "*", L: sum(overProb(arg, src.prob)), R: intLit(src.b)}, nil
	case AggAvg:
		return &sqlparser.BinaryExpr{Op: "/",
			L: sum(overProb(arg, src.prob)),
			R: sum(htOne())}, nil
	case AggVar, AggStddev:
		mean := &sqlparser.BinaryExpr{Op: "/",
			L: sum(overProb(sqlparser.CloneExpr(arg), src.prob)),
			R: sum(htOne())}
		meanSq := &sqlparser.BinaryExpr{Op: "/",
			L: sum(overProb(&sqlparser.BinaryExpr{Op: "*", L: sqlparser.CloneExpr(arg), R: sqlparser.CloneExpr(arg)}, src.prob)),
			R: sum(htOne())}
		variance := &sqlparser.BinaryExpr{Op: "-", L: meanSq,
			R: &sqlparser.FuncCall{Name: "pow", Args: []sqlparser.Expr{mean, intLit(2)}}}
		if classifyAgg(fc) == AggStddev {
			return &sqlparser.FuncCall{Name: "sqrt", Args: []sqlparser.Expr{
				&sqlparser.FuncCall{Name: "abs", Args: []sqlparser.Expr{variance}},
			}}, nil
		}
		return variance, nil
	case AggQuantile:
		q, err := quantileFraction(fc)
		if err != nil {
			return nil, err
		}
		return &sqlparser.FuncCall{Name: "percentile", Args: []sqlparser.Expr{arg, floatLit(q)}}, nil
	case AggCountDistinct:
		return &sqlparser.BinaryExpr{Op: "/",
			L: &sqlparser.BinaryExpr{Op: "*",
				L: &sqlparser.FuncCall{Name: "count", Distinct: true, Args: []sqlparser.Expr{arg}},
				R: intLit(src.b)},
			R: floatLit(src.ratio)}, nil
	case AggExtreme:
		// min/max in a nested block: keep it as-is per subsample (a
		// conservative estimate; the middleware never approximates extreme
		// stats at the top level).
		return sqlparser.CloneExpr(fc), nil
	}
	return nil, fmt.Errorf("core: aggregate %s not supported in nested block", fc.Name)
}
