package core

import (
	"math"
	"testing"

	"verdictdb/internal/engine"
)

func TestAnswerAccessors(t *testing.T) {
	a := &Answer{
		Cols:       []string{"g", "v"},
		Rows:       [][]engine.Value{{"x", 100.0}, {"y", 200.0}},
		StdErr:     [][]float64{{math.NaN(), 10.0}, {math.NaN(), math.NaN()}},
		Confidence: 0.95,
	}
	if a.ColIndex("V") != 1 || a.ColIndex("missing") != -1 {
		t.Fatal("ColIndex")
	}
	if a.Value(0, "g") != "x" || a.Value(5, "g") != nil {
		t.Fatal("Value")
	}
	if a.Float(1, "v") != 200 {
		t.Fatal("Float")
	}
	if !math.IsNaN(a.Float(0, "g")) {
		t.Fatal("Float on string should be NaN")
	}

	lo, hi, ok := a.ConfidenceInterval(0, 1)
	if !ok {
		t.Fatal("interval missing")
	}
	// z(0.95) ~ 1.96: [100-19.6, 100+19.6]
	if math.Abs(lo-80.4) > 0.1 || math.Abs(hi-119.6) > 0.1 {
		t.Fatalf("interval [%v, %v]", lo, hi)
	}
	if _, _, ok := a.ConfidenceInterval(1, 1); ok {
		t.Fatal("NaN stderr should give no interval")
	}
	if _, _, ok := a.ConfidenceInterval(0, 0); ok {
		t.Fatal("group col should give no interval")
	}

	re := a.RelativeError(0, 1)
	if math.Abs(re-0.196) > 0.001 {
		t.Fatalf("relative error %v", re)
	}
	if worst := a.MaxRelativeError(); math.Abs(worst-re) > 1e-12 {
		t.Fatalf("max relative error %v", worst)
	}
}

func TestMergerCombinesPlans(t *testing.T) {
	// Two partial results covering different aggregate items of a 3-item
	// query: g (group), a (plan 1), b (plan 2).
	mg := newMerger(3)
	rs1 := &engine.ResultSet{
		Cols: []string{"g", "a", "a_err"},
		Rows: [][]engine.Value{{"x", 1.0, 0.1}, {"y", 2.0, 0.2}},
	}
	cols1 := []OutputCol{
		{Kind: ColGroup, ItemIdx: 0, Name: "g"},
		{Kind: ColAgg, ItemIdx: 1, Name: "a"},
		{Kind: ColErr, ItemIdx: 1, Name: "a_err"},
	}
	rs2 := &engine.ResultSet{
		Cols: []string{"g", "b"},
		Rows: [][]engine.Value{{"y", 20.0}, {"x", 10.0}}, // different order
	}
	cols2 := []OutputCol{
		{Kind: ColGroup, ItemIdx: 0, Name: "g"},
		{Kind: ColAgg, ItemIdx: 2, Name: "b"},
	}
	mg.add(rs1, cols1)
	mg.add(rs2, cols2)
	rows, errs := mg.result()
	if len(rows) != 2 {
		t.Fatalf("merged rows: %d", len(rows))
	}
	// First-seen order: x then y.
	if rows[0][0] != "x" || rows[0][1] != 1.0 || rows[0][2] != 10.0 {
		t.Fatalf("row x: %v", rows[0])
	}
	if rows[1][0] != "y" || rows[1][1] != 2.0 || rows[1][2] != 20.0 {
		t.Fatalf("row y: %v", rows[1])
	}
	if errs[0][1] != 0.1 || !math.IsNaN(errs[0][2]) {
		t.Fatalf("errors: %v", errs[0])
	}
}

func TestMergerGroupMissingInOnePlan(t *testing.T) {
	mg := newMerger(2)
	mg.add(&engine.ResultSet{
		Cols: []string{"g", "a"},
		Rows: [][]engine.Value{{"x", 1.0}},
	}, []OutputCol{
		{Kind: ColGroup, ItemIdx: 0, Name: "g"},
		{Kind: ColAgg, ItemIdx: 1, Name: "a"},
	})
	mg.add(&engine.ResultSet{
		Cols: []string{"g", "a"},
		Rows: [][]engine.Value{{"z", 9.0}},
	}, []OutputCol{
		{Kind: ColGroup, ItemIdx: 0, Name: "g"},
		{Kind: ColAgg, ItemIdx: 1, Name: "a"},
	})
	rows, _ := mg.result()
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
}

func TestMergerDropsRowsWithIncompleteSeenFlags(t *testing.T) {
	// Two consolidated plans answer different aggregate items. Group "y" is
	// present in plan 1's sample but missed by plan 2's: the merged result
	// must drop it (the documented semantics) instead of emitting a row with
	// a nil cell for item 2.
	mg := newMerger(3)
	mg.add(&engine.ResultSet{
		Cols: []string{"g", "a"},
		Rows: [][]engine.Value{{"x", 1.0}, {"y", 2.0}},
	}, []OutputCol{
		{Kind: ColGroup, ItemIdx: 0, Name: "g"},
		{Kind: ColAgg, ItemIdx: 1, Name: "a"},
	})
	mg.add(&engine.ResultSet{
		Cols: []string{"g", "b"},
		Rows: [][]engine.Value{{"x", 10.0}},
	}, []OutputCol{
		{Kind: ColGroup, ItemIdx: 0, Name: "g"},
		{Kind: ColAgg, ItemIdx: 2, Name: "b"},
	})
	rows, errs := mg.result()
	if len(rows) != 1 || len(errs) != 1 {
		t.Fatalf("expected only the complete row, got %d rows", len(rows))
	}
	if rows[0][0] != "x" || rows[0][1] != 1.0 || rows[0][2] != 10.0 {
		t.Fatalf("surviving row: %v", rows[0])
	}
	for _, row := range rows {
		for _, v := range row {
			if v == nil {
				t.Fatal("merged answer contains a nil aggregate cell")
			}
		}
	}
}

func TestAnswerNegativeIndexes(t *testing.T) {
	a := &Answer{
		Cols:       []string{"g", "v"},
		Rows:       [][]engine.Value{{"x", 100.0}},
		StdErr:     [][]float64{{math.NaN(), 10.0}},
		Confidence: 0.95,
	}
	// row=-1 / col=-1 (e.g. a failed ColIndex lookup passed straight
	// through) must return the documented "absent" values, not panic.
	if v := a.Value(-1, "g"); v != nil {
		t.Fatalf("Value(-1): %v", v)
	}
	if !math.IsNaN(a.Float(-1, "v")) {
		t.Fatal("Float(-1) should be NaN")
	}
	if _, _, ok := a.ConfidenceInterval(-1, 1); ok {
		t.Fatal("ConfidenceInterval(-1, 1) should be absent")
	}
	if _, _, ok := a.ConfidenceInterval(0, -1); ok {
		t.Fatal("ConfidenceInterval(0, -1) should be absent")
	}
	if _, _, ok := a.ConfidenceInterval(0, a.ColIndex("missing")); ok {
		t.Fatal("ConfidenceInterval with failed ColIndex should be absent")
	}
	if re := a.RelativeError(-1, -1); !math.IsNaN(re) {
		t.Fatalf("RelativeError(-1, -1): %v", re)
	}
}

func TestNanMatrix(t *testing.T) {
	m := nanMatrix(2, 3)
	for _, row := range m {
		for _, v := range row {
			if !math.IsNaN(v) {
				t.Fatal("non-NaN entry")
			}
		}
	}
}
