package core

import (
	"fmt"
	"strings"

	"verdictdb/internal/sampling"
	"verdictdb/internal/sqlparser"
)

// ColKind classifies an output column of a rewritten query.
type ColKind int

// Output column kinds.
const (
	ColGroup ColKind = iota
	ColAgg
	ColErr
	// ColSubCount is the per-group contributing-subsample count appended by
	// progressive rewrites; the merger ignores it (it never reaches users),
	// the executor's stopping rule reads it.
	ColSubCount
)

// OutputCol maps a rewritten query's output column back to the original
// query's select items.
type OutputCol struct {
	Kind    ColKind
	ItemIdx int // index into the original select items
	Name    string
}

// RewriteOutput is a rewritten query plus the metadata the answer rewriter
// needs to reassemble user-facing results.
type RewriteOutput struct {
	Stmt         *sqlparser.SelectStmt
	Columns      []OutputCol
	B            int64
	SampleTables []string
}

// BlockContext constrains a rewrite to a scramble block prefix: the sampled
// occurrence Alias only reads blocks 1..Bound, and every Horvitz-Thompson
// weight is corrected by Frac — the fraction of the sample's rows inside the
// prefix — so point estimates stay unbiased on the partial scan. Block ids
// are value-independent, making a prefix a uniform subsample of the sample.
type BlockContext struct {
	Alias string  // plan-choices alias (lower-case) of the sampled occurrence
	Bound int64   // highest block id included (inclusive, 1-based)
	Frac  float64 // fraction of the sample's rows within blocks 1..Bound
}

// rewriter holds per-rewrite state.
type rewriter struct {
	plan         CandidatePlan
	sampleTables []string
	nameSeq      int

	// block constrains the rewrite to a block prefix (nil for full-sample
	// rewrites). blockPred is the pending block-range predicate, drained by
	// the query block that owns the substituted table reference.
	block        *BlockContext
	blockPred    sqlparser.Expr
	blockApplied bool
}

// takeBlockPred returns and clears the pending block-range predicate; the
// innermost query block enclosing the sampled table drains it into WHERE.
func (rw *rewriter) takeBlockPred() sqlparser.Expr {
	p := rw.blockPred
	rw.blockPred = nil
	return p
}

// andExpr conjoins two predicates, treating nil as TRUE.
func andExpr(a, b sqlparser.Expr) sqlparser.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return &sqlparser.BinaryExpr{Op: "AND", L: a, R: b}
}

// partials records the inner-query partial-aggregate columns backing one
// original aggregate call.
type partials struct {
	kind  AggKind
	cols  []string // inner output aliases
	ratio float64  // universe ratio for count-distinct
	q     float64  // percentile fraction
	// replicated marks partials over a Bernoulli-nested variational table:
	// each subsample's partial is a complete estimate, so the full-sample
	// combination is the mean across subsamples, not the HT sum.
	replicated bool
}

const (
	innerAlias  = "vt1"
	sizeCol     = "verdict_size"
	errSuffix   = "_verdict_err"
	groupPrefix = "verdict_g"
	subCountCol = "verdict_nsub"
)

// Rewrite builds the variational-subsampling form of sel for the given plan
// (Appendix G shape): an inner query grouping by (groups, sid) computing
// Horvitz-Thompson partial aggregates, wrapped in an outer query that
// weight-averages the subsamples into an unbiased point estimate and a
// standard error per aggregate.
//
// itemIdx lists the aggregate select items this plan answers; all non-agg
// (grouping) items are always included. includeOrderLimit controls whether
// ORDER BY / LIMIT / HAVING attach to the outer query (the middleware turns
// this off when results from several consolidated plans must be merged
// first).
func Rewrite(sel *sqlparser.SelectStmt, plan CandidatePlan, itemIdx []int, includeOrderLimit bool) (*RewriteOutput, error) {
	return RewriteWithBlocks(sel, plan, itemIdx, includeOrderLimit, nil)
}

// RewriteWithBlocks is Rewrite restricted to a scramble block prefix: the
// progressive executor calls it once per prefix with a growing Bound and the
// matching row fraction. bc == nil yields the plain full-sample rewrite.
func RewriteWithBlocks(sel *sqlparser.SelectStmt, plan CandidatePlan, itemIdx []int, includeOrderLimit bool, bc *BlockContext) (*RewriteOutput, error) {
	rw := &rewriter{plan: plan, block: bc}
	newFrom, src, err := rw.substituteFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if src.sid == nil {
		return nil, fmt.Errorf("core: plan substituted no samples")
	}
	if bc != nil && !rw.blockApplied {
		return nil, fmt.Errorf("core: block context alias %q matched no sampled occurrence", bc.Alias)
	}

	wanted := make(map[int]bool, len(itemIdx))
	for _, i := range itemIdx {
		wanted[i] = true
	}

	// ---- Inner query ----
	inner := &sqlparser.SelectStmt{From: newFrom, Where: sqlparser.CloneExpr(sel.Where)}
	if bp := rw.takeBlockPred(); bp != nil {
		inner.Where = andExpr(inner.Where, bp)
	}

	// Group columns.
	type groupInfo struct {
		expr  sqlparser.Expr
		alias string
	}
	groups := make([]groupInfo, len(sel.GroupBy))
	usedAliases := map[string]bool{}
	for i, g := range sel.GroupBy {
		alias := fmt.Sprintf("%s%d", groupPrefix, i)
		if cr, ok := g.(*sqlparser.ColumnRef); ok && !usedAliases[strings.ToLower(cr.Name)] {
			alias = cr.Name
		}
		usedAliases[strings.ToLower(alias)] = true
		groups[i] = groupInfo{expr: g, alias: alias}
		inner.Items = append(inner.Items, sqlparser.SelectItem{Expr: sqlparser.CloneExpr(g), Alias: alias})
		inner.GroupBy = append(inner.GroupBy, sqlparser.CloneExpr(g))
	}

	// Partial aggregates for every distinct aggregate call referenced by the
	// answered items, HAVING, and ORDER BY.
	partialByKey := map[string]*partials{}
	registerAggs := func(e sqlparser.Expr) error {
		for _, fc := range aggsIn(e) {
			key := sqlparser.FormatExpr(fc)
			if _, ok := partialByKey[key]; ok {
				continue
			}
			p, err := rw.addPartials(inner, fc, src)
			if err != nil {
				return err
			}
			partialByKey[key] = p
		}
		return nil
	}
	for i, it := range sel.Items {
		if wanted[i] {
			if err := registerAggs(it.Expr); err != nil {
				return nil, err
			}
		}
	}
	if includeOrderLimit {
		if sel.Having != nil {
			if err := registerAggs(sel.Having); err != nil {
				return nil, err
			}
		}
		for _, ob := range sel.OrderBy {
			if sqlparser.ContainsAggregate(ob.Expr) {
				if err := registerAggs(ob.Expr); err != nil {
					return nil, err
				}
			}
		}
	}

	// Subsample id and size.
	inner.Items = append(inner.Items,
		sqlparser.SelectItem{Expr: sqlparser.CloneExpr(src.sid), Alias: sampling.SidCol},
		sqlparser.SelectItem{Expr: &sqlparser.FuncCall{Name: "count", Star: true}, Alias: sizeCol},
	)
	inner.GroupBy = append(inner.GroupBy, sqlparser.CloneExpr(src.sid))

	// ---- Outer query ----
	outer := &sqlparser.SelectStmt{
		From: &sqlparser.DerivedTable{Select: inner, Alias: innerAlias},
	}
	for _, g := range groups {
		outer.GroupBy = append(outer.GroupBy, &sqlparser.ColumnRef{Table: innerAlias, Name: g.alias})
	}

	groupAliasFor := func(e sqlparser.Expr) (string, bool) {
		f := sqlparser.FormatExpr(e)
		for _, g := range groups {
			if sqlparser.FormatExpr(g.expr) == f {
				return g.alias, true
			}
		}
		return "", false
	}

	// substitute rewrites an expression over the original relations into one
	// over vt1: aggregate calls become either full-sample or per-subsample
	// estimators; other column refs must match a grouping expression.
	substitute := func(e sqlparser.Expr, perSubsample bool) (sqlparser.Expr, error) {
		var subErr error
		out := sqlparser.RewriteExpr(sqlparser.CloneExpr(e), func(x sqlparser.Expr) sqlparser.Expr {
			if fc, ok := x.(*sqlparser.FuncCall); ok && fc.Over == nil && sqlparser.AggregateFuncs[fc.Name] {
				p := partialByKey[sqlparser.FormatExpr(fc)]
				if p == nil {
					subErr = fmt.Errorf("core: aggregate %s not planned", sqlparser.FormatExpr(fc))
					return x
				}
				if perSubsample {
					return perSubsampleEstimator(p, src.b)
				}
				return fullEstimator(p)
			}
			return x
		})
		if subErr != nil {
			return nil, subErr
		}
		// Remaining column refs must be grouping expressions.
		out = sqlparser.RewriteExpr(out, func(x sqlparser.Expr) sqlparser.Expr {
			if cr, ok := x.(*sqlparser.ColumnRef); ok {
				if strings.EqualFold(cr.Table, innerAlias) {
					return x
				}
				if alias, ok := groupAliasFor(cr); ok {
					return &sqlparser.ColumnRef{Table: innerAlias, Name: alias}
				}
				subErr = fmt.Errorf("core: non-grouping column %s in aggregate context", sqlparser.FormatExpr(cr))
			}
			return x
		})
		if subErr != nil {
			return nil, subErr
		}
		return out, nil
	}

	out := &RewriteOutput{B: src.b, SampleTables: rw.sampleTables}
	var errItems []sqlparser.SelectItem
	for i, it := range sel.Items {
		isAgg := it.Expr != nil && sqlparser.ContainsAggregate(it.Expr)
		switch {
		case !isAgg:
			if it.Star {
				return nil, fmt.Errorf("core: SELECT * not supported with aggregates")
			}
			alias, ok := groupAliasFor(it.Expr)
			if !ok {
				return nil, fmt.Errorf("core: select item %q is neither aggregate nor grouping expression", sqlparser.FormatExpr(it.Expr))
			}
			name := it.Alias
			if name == "" {
				name = deriveName(it.Expr, i)
			}
			outer.Items = append(outer.Items, sqlparser.SelectItem{
				Expr:  &sqlparser.ColumnRef{Table: innerAlias, Name: alias},
				Alias: name,
			})
			out.Columns = append(out.Columns, OutputCol{Kind: ColGroup, ItemIdx: i, Name: name})
		case wanted[i]:
			point, err := substitute(it.Expr, false)
			if err != nil {
				return nil, err
			}
			name := it.Alias
			if name == "" {
				name = deriveName(it.Expr, i)
			}
			outer.Items = append(outer.Items, sqlparser.SelectItem{Expr: point, Alias: name})
			out.Columns = append(out.Columns, OutputCol{Kind: ColAgg, ItemIdx: i, Name: name})

			perSub, err := substitute(it.Expr, true)
			if err != nil {
				return nil, err
			}
			errItems = append(errItems, sqlparser.SelectItem{
				Expr:  errorExpr(perSub),
				Alias: name + errSuffix,
			})
			out.Columns = append(out.Columns, OutputCol{Kind: ColErr, ItemIdx: i, Name: name + errSuffix})
		default:
			// Aggregate item answered by a different consolidated plan (or
			// the exact extreme query); skipped here.
		}
	}
	// Error columns go last so positional ORDER BY stays valid.
	nErrStart := len(outer.Items)
	outer.Items = append(outer.Items, errItems...)
	// Reorder metadata to match (groups/aggs first, then errors).
	reordered := make([]OutputCol, 0, len(out.Columns))
	var errCols []OutputCol
	for _, c := range out.Columns {
		if c.Kind == ColErr {
			errCols = append(errCols, c)
		} else {
			reordered = append(reordered, c)
		}
	}
	if len(reordered) != nErrStart {
		return nil, fmt.Errorf("core: internal column accounting error")
	}
	out.Columns = append(reordered, errCols...)

	// Progressive rewrites expose how many subsamples contributed to each
	// group: the executor refuses to stop early on groups estimated from too
	// few subsamples (where a stddev over one value degenerates to zero).
	if bc != nil {
		outer.Items = append(outer.Items, sqlparser.SelectItem{
			Expr:  &sqlparser.FuncCall{Name: "count", Star: true},
			Alias: subCountCol,
		})
		out.Columns = append(out.Columns, OutputCol{Kind: ColSubCount, ItemIdx: -1, Name: subCountCol})
	}

	if includeOrderLimit {
		if sel.Having != nil {
			h, err := substitute(sel.Having, false)
			if err != nil {
				return nil, err
			}
			outer.Having = h
		}
		for _, ob := range sel.OrderBy {
			newOb := sqlparser.OrderItem{Desc: ob.Desc}
			switch {
			case isPositional(ob.Expr):
				newOb.Expr = sqlparser.CloneExpr(ob.Expr)
			case isAliasRef(ob.Expr, outer.Items):
				newOb.Expr = sqlparser.CloneExpr(ob.Expr)
			default:
				oe, err := substitute(ob.Expr, false)
				if err != nil {
					return nil, err
				}
				newOb.Expr = oe
			}
			outer.OrderBy = append(outer.OrderBy, newOb)
		}
		outer.Limit = sqlparser.CloneExpr(sel.Limit)
	}

	out.Stmt = outer
	return out, nil
}

// addPartials appends the inner partial-aggregate columns for one aggregate
// call and returns their descriptor.
func (rw *rewriter) addPartials(inner *sqlparser.SelectStmt, fc *sqlparser.FuncCall, src vsource) (*partials, error) {
	kind := classifyAgg(fc)
	p := &partials{kind: kind, ratio: 1, replicated: src.replicated}
	name := func(suffix string) string {
		rw.nameSeq++
		return fmt.Sprintf("vp%d_%s", rw.nameSeq, suffix)
	}
	add := func(alias string, e sqlparser.Expr) {
		inner.Items = append(inner.Items, sqlparser.SelectItem{Expr: e, Alias: alias})
		p.cols = append(p.cols, alias)
	}
	var arg sqlparser.Expr
	if len(fc.Args) > 0 {
		arg = sqlparser.CloneExpr(fc.Args[0])
	}
	switch kind {
	case AggCount:
		a := name("a")
		add(a, &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(floatLit(1), src.prob),
		}})
	case AggSum:
		a := name("a")
		add(a, &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(arg, src.prob),
		}})
	case AggAvg:
		add(name("a"), &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(arg, src.prob),
		}})
		add(name("b"), &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(floatLit(1), src.prob),
		}})
	case AggVar, AggStddev:
		add(name("a"), &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(sqlparser.CloneExpr(arg), src.prob),
		}})
		add(name("b"), &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(&sqlparser.BinaryExpr{Op: "*", L: sqlparser.CloneExpr(arg), R: sqlparser.CloneExpr(arg)}, src.prob),
		}})
		add(name("c"), &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{
			overProb(floatLit(1), src.prob),
		}})
	case AggQuantile:
		q, err := quantileFraction(fc)
		if err != nil {
			return nil, err
		}
		p.q = q
		add(name("a"), &sqlparser.FuncCall{Name: "percentile", Args: []sqlparser.Expr{
			arg, floatLit(q),
		}})
	case AggCountDistinct:
		p.ratio = src.ratio
		add(name("a"), &sqlparser.FuncCall{Name: "count", Distinct: true, Args: []sqlparser.Expr{arg}})
	default:
		return nil, fmt.Errorf("core: aggregate %s cannot be rewritten", fc.Name)
	}
	return p, nil
}

// fullEstimator builds the full-sample (point) estimator over the inner
// rows for one aggregate.
func fullEstimator(p *partials) sqlparser.Expr {
	col := func(i int) sqlparser.Expr {
		return &sqlparser.ColumnRef{Table: innerAlias, Name: p.cols[i]}
	}
	sum := func(e sqlparser.Expr) sqlparser.Expr {
		return &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{e}}
	}
	mean := func(e sqlparser.Expr) sqlparser.Expr {
		return &sqlparser.FuncCall{Name: "avg", Args: []sqlparser.Expr{e}}
	}
	switch p.kind {
	case AggCount, AggSum:
		if p.replicated {
			// Each subsample's partial already estimates the population
			// quantity: combine by mean across subsamples.
			return mean(col(0))
		}
		return sum(col(0))
	case AggAvg:
		return &sqlparser.BinaryExpr{Op: "/", L: sum(col(0)), R: sum(col(1))}
	case AggVar, AggStddev:
		mean := &sqlparser.BinaryExpr{Op: "/", L: sum(col(0)), R: sum(col(2))}
		meanSq := &sqlparser.BinaryExpr{Op: "/", L: sum(col(1)), R: sum(col(2))}
		variance := &sqlparser.BinaryExpr{Op: "-", L: meanSq,
			R: &sqlparser.FuncCall{Name: "pow", Args: []sqlparser.Expr{mean, intLit(2)}}}
		if p.kind == AggStddev {
			return &sqlparser.FuncCall{Name: "sqrt", Args: []sqlparser.Expr{
				&sqlparser.FuncCall{Name: "abs", Args: []sqlparser.Expr{variance}},
			}}
		}
		return variance
	case AggQuantile:
		// Subsample-size-weighted average of per-subsample percentiles.
		num := sum(&sqlparser.BinaryExpr{Op: "*", L: col(0),
			R: &sqlparser.ColumnRef{Table: innerAlias, Name: sizeCol}})
		den := sum(&sqlparser.ColumnRef{Table: innerAlias, Name: sizeCol})
		return &sqlparser.BinaryExpr{Op: "/", L: num, R: den}
	case AggCountDistinct:
		if p.replicated {
			return mean(col(0))
		}
		// Universe-sample scaling: distinct values hash-partition across
		// subsamples, so the sample-wide distinct count is the sum.
		return &sqlparser.BinaryExpr{Op: "/", L: sum(col(0)), R: floatLit(p.ratio)}
	}
	return nil
}

// perSubsampleEstimator builds the per-subsample estimator (evaluated per
// inner row, i.e. per (group, sid)) for one aggregate.
func perSubsampleEstimator(p *partials, b int64) sqlparser.Expr {
	col := func(i int) sqlparser.Expr {
		return &sqlparser.ColumnRef{Table: innerAlias, Name: p.cols[i]}
	}
	switch p.kind {
	case AggCount, AggSum:
		if p.replicated {
			return col(0) // already a complete per-subsample estimate
		}
		// A subsample is a 1/b thinning of the sample: scale partial HT
		// sums by b.
		return &sqlparser.BinaryExpr{Op: "*", L: col(0), R: intLit(b)}
	case AggAvg:
		return &sqlparser.BinaryExpr{Op: "/", L: col(0), R: col(1)}
	case AggVar, AggStddev:
		mean := &sqlparser.BinaryExpr{Op: "/", L: col(0), R: col(2)}
		meanSq := &sqlparser.BinaryExpr{Op: "/", L: col(1), R: col(2)}
		variance := &sqlparser.BinaryExpr{Op: "-", L: meanSq,
			R: &sqlparser.FuncCall{Name: "pow", Args: []sqlparser.Expr{mean, intLit(2)}}}
		if p.kind == AggStddev {
			return &sqlparser.FuncCall{Name: "sqrt", Args: []sqlparser.Expr{
				&sqlparser.FuncCall{Name: "abs", Args: []sqlparser.Expr{variance}},
			}}
		}
		return variance
	case AggQuantile:
		return col(0)
	case AggCountDistinct:
		if p.replicated {
			return col(0)
		}
		return &sqlparser.BinaryExpr{Op: "/",
			L: &sqlparser.BinaryExpr{Op: "*", L: col(0), R: intLit(b)},
			R: floatLit(p.ratio)}
	}
	return nil
}

// errorExpr wraps a per-subsample estimator into the standard-error formula
// of Appendix G:
//
//	stddev(est_i) * sqrt(avg(sub_size)) / sqrt(sum(sub_size))
func errorExpr(perSub sqlparser.Expr) sqlparser.Expr {
	size := func() sqlparser.Expr { return &sqlparser.ColumnRef{Table: innerAlias, Name: sizeCol} }
	sd := &sqlparser.FuncCall{Name: "stddev", Args: []sqlparser.Expr{perSub}}
	sqrtAvg := &sqlparser.FuncCall{Name: "sqrt", Args: []sqlparser.Expr{
		&sqlparser.FuncCall{Name: "avg", Args: []sqlparser.Expr{size()}},
	}}
	sqrtSum := &sqlparser.FuncCall{Name: "sqrt", Args: []sqlparser.Expr{
		&sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{size()}},
	}}
	return &sqlparser.BinaryExpr{
		Op: "/",
		L:  &sqlparser.BinaryExpr{Op: "*", L: sd, R: sqrtAvg},
		R:  sqrtSum,
	}
}

func quantileFraction(fc *sqlparser.FuncCall) (float64, error) {
	if fc.Name == "median" || fc.Name == "approx_median" || len(fc.Args) < 2 {
		return 0.5, nil
	}
	lit, ok := fc.Args[1].(*sqlparser.Literal)
	if !ok {
		return 0, fmt.Errorf("core: percentile fraction must be a literal")
	}
	switch v := lit.Val.(type) {
	case int64:
		return float64(v), nil
	case float64:
		return v, nil
	}
	return 0, fmt.Errorf("core: bad percentile fraction")
}

func deriveName(e sqlparser.Expr, pos int) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return x.Name
	case *sqlparser.FuncCall:
		return x.Name
	}
	return fmt.Sprintf("_c%d", pos)
}

func isPositional(e sqlparser.Expr) bool {
	lit, ok := e.(*sqlparser.Literal)
	if !ok {
		return false
	}
	_, isInt := lit.Val.(int64)
	return isInt
}

func isAliasRef(e sqlparser.Expr, items []sqlparser.SelectItem) bool {
	cr, ok := e.(*sqlparser.ColumnRef)
	if !ok || cr.Table != "" {
		return false
	}
	for _, it := range items {
		if strings.EqualFold(it.Alias, cr.Name) {
			return true
		}
	}
	return false
}
