package core

import (
	"sync"
	"sync/atomic"

	"verdictdb/internal/sqlparser"
)

// This file implements the middleware's plan/rewrite cache. A serving
// deployment sees the same query shapes over and over (dashboards refresh,
// applications template their SQL), and the parse→analyze→flatten→plan→
// rewrite→render pipeline — plus the planner's ndv() cardinality probes —
// is pure per-catalog-version overhead when repeated. The cache maps
// normalized SQL text to a fully built planEntry tagged with the catalog
// version it was planned under; any sample DDL bumps the version and makes
// the entry stale. Entries are immutable after construction: the execute
// path clones anything an Answer could mutate, so concurrent hits stay
// private to their query.

// planStep is one rendered partial query of a cached plan: the SQL sent to
// the engine plus the output-column mapping the answer merger needs.
type planStep struct {
	sql          string
	columns      []OutputCol
	sampleTables []string
}

// planEntry is everything needed to execute one cached query shape.
// All fields are read-only after buildEntry returns.
type planEntry struct {
	version int64 // catalog version this entry was planned under

	// passthrough entries record a deterministic "cannot approximate"
	// decision (unsupported shape, no admissible plan, high-cardinality
	// groups) so repeated unsupported shapes skip the pipeline too.
	passthrough bool
	status      SupportStatus

	flat  *sqlparser.SelectStmt // flattened statement (read-only)
	names []string              // output column names in item order
	multi bool                  // order/limit applied middleware-side

	// guardGroups marks entries subject to the post-execution
	// high-cardinality guard; planSampleRows is the smallest sampled plan's
	// row cost — the guard's denominator.
	guardGroups    bool
	planSampleRows int64

	steps   []planStep
	extreme *planStep // exact extreme-statistics query, nil if none

	// prog is the progressive-execution handle: non-nil when the entry's
	// plan qualifies for block-prefix execution (single consolidated plan
	// over one block-partitioned sample, variational error estimation, no
	// extreme/count-distinct items, no nested aggregate blocks).
	prog *progressiveInfo

	// seq is the cache's insertion sequence number, written under the
	// cache mutex at put time; eviction uses it to tell a live entry from
	// a dead duplicate of the same key in the FIFO order.
	seq int64 //verdict:guardedby planCache.mu
}

// planCache is a bounded, thread-safe map from normalized SQL to planEntry.
// Eviction is FIFO — shapes churn rarely and the cap only bounds memory.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry //verdict:guardedby mu
	order   []orderItem           //verdict:guardedby mu
	cap     int
	nextSeq int64 //verdict:guardedby mu

	// gen counts flushes. A put whose pipeline began before a flush must
	// not resurrect pre-flush state, so builders capture generation()
	// first and put() drops the entry when it moved.
	gen atomic.Int64

	hits   atomic.Int64
	misses atomic.Int64
}

// orderItem records one insertion for FIFO eviction; seq disambiguates
// re-inserted keys from their dead duplicates.
type orderItem struct {
	key string
	seq int64
}

const defaultPlanCacheCap = 512

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{entries: make(map[string]*planEntry), cap: capacity}
}

// lookup returns the entry for key if present and current at version.
// Stale entries are evicted on sight. Misses are not counted here — only a
// full pipeline run (countMiss) records one, so statements that can never
// be cached (DDL, DML, extension statements) don't distort the hit rate.
func (pc *planCache) lookup(key string, version int64) *planEntry {
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if ok && e.version != version {
		delete(pc.entries, key)
		e, ok = nil, false
	}
	pc.mu.Unlock()
	if !ok {
		return nil
	}
	pc.hits.Add(1)
	return e
}

// generation returns the current flush generation; capture it before
// building an entry and pass it to put.
func (pc *planCache) generation() int64 { return pc.gen.Load() }

// countMiss records one cache miss (a SELECT that ran the full pipeline).
func (pc *planCache) countMiss() { pc.misses.Add(1) }

// put stores an entry built under flush generation gen, evicting the
// oldest entries beyond capacity. Entries whose pipeline straddled a flush
// are dropped — their planning inputs (row counts, base data) predate it.
func (pc *planCache) put(key string, e *planEntry, gen int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.gen.Load() != gen {
		return
	}
	e.seq = pc.nextSeq
	pc.nextSeq++
	pc.entries[key] = e
	pc.order = append(pc.order, orderItem{key: key, seq: e.seq})
	for len(pc.entries) > pc.cap && len(pc.order) > 0 {
		it := pc.order[0]
		pc.order = pc.order[1:]
		if cur, ok := pc.entries[it.key]; ok && cur.seq == it.seq {
			delete(pc.entries, it.key)
		}
		// Otherwise it was a dead duplicate (stale-evicted or replaced
		// key); skip it rather than evicting the newer live entry.
	}
	// Dead duplicates accumulate under catalog churn; compact once the
	// order list outgrows the live set by enough.
	if len(pc.order) > 2*pc.cap && len(pc.order) > 2*len(pc.entries) {
		kept := pc.order[:0]
		for _, it := range pc.order {
			if cur, ok := pc.entries[it.key]; ok && cur.seq == it.seq {
				kept = append(kept, it)
			}
		}
		pc.order = kept
	}
}

// flush drops every entry (data changed without a catalog version bump)
// and advances the generation so in-flight builds don't repopulate the
// cache with pre-flush state.
func (pc *planCache) flush() {
	pc.mu.Lock()
	pc.gen.Add(1)
	pc.entries = make(map[string]*planEntry)
	pc.order = nil
	pc.mu.Unlock()
}

// stats reports cumulative hit/miss counts.
func (pc *planCache) stats() (hits, misses int64) {
	return pc.hits.Load(), pc.misses.Load()
}

// len reports the live entry count.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// normalizeSQL canonicalizes a SQL string for cache keying: whitespace runs
// collapse to one space, keywords and identifiers fold to lower case, and
// trailing semicolons drop — while quoted literals and quoted identifiers
// are preserved byte-for-byte. Queries differing only in formatting share a
// cache entry; queries differing in any literal do not.
func normalizeSQL(s string) string {
	s = trimSQL(s)
	var b []byte
	b = make([]byte, 0, len(s))
	pendingSpace := false
	i := 0
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == '\'' || ch == '"' || ch == '`':
			// Copy the quoted run verbatim, honoring doubled-quote escapes.
			q := ch
			j := i + 1
			for j < len(s) {
				if s[j] == q {
					if j+1 < len(s) && s[j+1] == q {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			if pendingSpace && len(b) > 0 {
				b = append(b, ' ')
			}
			pendingSpace = false
			b = append(b, s[i:j]...)
			i = j
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			pendingSpace = true
			i++
		default:
			if pendingSpace && len(b) > 0 {
				b = append(b, ' ')
			}
			pendingSpace = false
			if ch >= 'A' && ch <= 'Z' {
				ch += 'a' - 'A'
			}
			b = append(b, ch)
			i++
		}
	}
	return string(b)
}

// trimSQL strips surrounding whitespace and trailing semicolons.
func trimSQL(s string) string {
	start, end := 0, len(s)
	for start < end && isSpaceByte(s[start]) {
		start++
	}
	for end > start && (isSpaceByte(s[end-1]) || s[end-1] == ';') {
		end--
	}
	return s[start:end]
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
