package core

import (
	"context"
	"strings"
	"testing"

	"verdictdb/internal/engine"
	"verdictdb/internal/sqlparser"
)

func TestExplainSupportedQuery(t *testing.T) {
	env := newEnv(t, Options{})
	sel, err := sqlparser.ParseSelect("select city, count(*) as c from orders group by city")
	if err != nil {
		t.Fatal(err)
	}
	a, err := env.m.Explain(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	steps := map[string]string{}
	for _, r := range a.Rows {
		steps[engine.ToStr(r[0])] = engine.ToStr(r[1])
	}
	if steps["support"] != "supported" {
		t.Fatalf("support: %q", steps["support"])
	}
	if !strings.Contains(steps["plan 1"], "orders->") {
		t.Errorf("plan row: %q", steps["plan 1"])
	}
	if !strings.Contains(strings.ToLower(steps["rewritten 1"]), "verdict_sid") {
		t.Errorf("rewritten SQL missing sid: %q", steps["rewritten 1"])
	}
	if !strings.Contains(steps["error estimation"], "variational") {
		t.Errorf("method: %q", steps["error estimation"])
	}
}

func TestExplainDeclinedQuery(t *testing.T) {
	env := newEnv(t, Options{})
	// High-cardinality grouping declines AQP.
	sel, err := sqlparser.ParseSelect("select order_id, count(*) from orders group by order_id")
	if err != nil {
		t.Fatal(err)
	}
	a, err := env.m.Explain(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, r := range a.Rows {
		joined += engine.ToStr(r[0]) + "=" + engine.ToStr(r[1]) + ";"
	}
	if !strings.Contains(joined, "passthrough") {
		t.Fatalf("declined explain lacks passthrough: %s", joined)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	env := newEnv(t, Options{})
	sel, _ := sqlparser.ParseSelect("select count(*) from orders")
	a, err := env.m.Explain(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	// Explain must not report engine time from running the rewritten query.
	if a.ElapsedNanos != 0 {
		t.Fatalf("explain spent %dns executing", a.ElapsedNanos)
	}
	if a.Approximate {
		t.Fatal("explain output marked approximate")
	}
}

func TestExplainExtremeDecomposition(t *testing.T) {
	env := newEnv(t, Options{})
	sel, _ := sqlparser.ParseSelect("select count(*) as c, max(price) as m from orders")
	a, err := env.m.Explain(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range a.Rows {
		if engine.ToStr(r[0]) == "extreme" {
			found = true
		}
	}
	if !found {
		t.Fatal("extreme decomposition not explained")
	}
}
