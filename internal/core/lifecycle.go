package core

import (
	"context"
	"errors"
	"runtime/debug"

	"verdictdb/internal/engine"
)

// Query-lifecycle plumbing for the middleware: which errors mean "the user
// aborted this query" (and must not trigger the exact-execution fallback),
// the catalog-drift sentinel for progressive execution, panic containment at
// the middleware boundary, and the per-query memory-budget default.

// ErrCatalogChanged reports that sample DDL bumped the catalog version while
// a progressive query was between block prefixes. The partial answers already
// delivered were correct for the catalog they were planned under, but later
// prefixes would mix plans across versions; the caller should re-issue the
// query (the stale cached plan is already invalidated by the version bump).
var ErrCatalogChanged = errors.New("core: sample catalog changed during progressive execution")

// queryAborted reports whether err means the query was deliberately stopped
// (cancellation, deadline, memory budget, catalog drift) or crashed in a way
// that is already contained (*engine.InternalError). The middleware's
// fallback contract — "a failing rewritten query falls back to exact
// execution" — exists for stale catalogs and dialect corner cases; re-running
// a cancelled or budget-killed query as a full exact scan would invert the
// user's intent, so these errors propagate instead.
func queryAborted(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	if errors.Is(err, engine.ErrMemoryBudget) || errors.Is(err, ErrCatalogChanged) {
		return true
	}
	var ie *engine.InternalError
	return errors.As(err, &ie)
}

// containPanic converts a panic escaping the middleware (merger, guard
// rails, fault-injection sites in core) into the same *engine.InternalError
// the engine's own boundary produces, so one query's crash never takes down
// the process. Deferred at the public entry points.
func containPanic(errp *error, query string) {
	if r := recover(); r != nil {
		*errp = &engine.InternalError{Query: query, Panic: r, Stack: debug.Stack()}
	}
}

// budgetCtx applies the middleware's configured per-query memory budget to
// ctx unless the caller already set one (an explicit WithMemoryBudget on the
// query's context wins over the middleware-wide default).
func (m *Middleware) budgetCtx(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() //verdict:ctx-shim nil-ctx guard: context-free Query/Explain entry points delegate here with nil
	}
	if m.opts.MemoryBudgetBytes > 0 && engine.MemoryBudgetFrom(ctx, -1) < 0 {
		ctx = engine.WithMemoryBudget(ctx, m.opts.MemoryBudgetBytes)
	}
	return ctx
}
